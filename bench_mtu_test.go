package npqm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/traffic"
)

// BenchmarkEngineMTU sweeps packet size — the dimension the original matrix
// holds fixed at 320 bytes — across the two engine shapes and the two
// delivery modes. Small packets measure fixed per-command overhead;
// 1500-byte packets (24 segments) measure the per-segment path the bulk run
// allocation amortizes; the IMIX mix (64/576/1500 weighted 7:4:1) is the
// realistic blend. Shards and datapath stay fixed (4, sync) so the
// packet-size effect is isolated.
//
//   - shape=sharded is the per-packet round trip of BenchmarkEngineSharded:
//     each iteration enqueues one packet and dequeues it back.
//   - shape=pipeline is the ingress/egress shape of
//     BenchmarkEngineShardedPipeline: producers offer with pool-watermark
//     pacing while two consumers drain, and the headline metric is
//     Mdeliv/s — packets delivered inside the timed window.
//   - delivery=copy is the classic datapath: the engine copies the payload
//     into segments on enqueue and reassembles it into a pooled buffer on
//     dequeue. delivery=view is the zero-copy pipeline: producers reserve
//     segment runs and fill them in place, consumers read segment-chain
//     views and release them — the payload crosses the engine without the
//     engine ever copying a byte.
func BenchmarkEngineMTU(b *testing.B) {
	for _, shape := range []string{"sharded", "pipeline"} {
		for _, size := range []string{"64", "1500", "imix"} {
			for _, delivery := range []string{"copy", "view"} {
				b.Run(fmt.Sprintf("shape=%s/pkt=%s/delivery=%s", shape, size, delivery), func(b *testing.B) {
					mixCfg := traffic.SizeMixConfig{Kind: traffic.MixIMIX}
					if size != "imix" {
						mixCfg.Kind = traffic.MixFixed
						if size == "64" {
							mixCfg.Fixed = 64
						} else {
							mixCfg.Fixed = 1500
						}
					}
					probe, err := traffic.NewSizeMix(mixCfg)
					if err != nil {
						b.Fatal(err)
					}
					payload := make([]byte, probe.Max()) // shared, read-only
					maxSegs := (probe.Max() + 63) / 64
					view := delivery == "view"
					if shape == "sharded" {
						benchMTUSharded(b, mixCfg, payload, view)
						return
					}
					benchMTUPipeline(b, mixCfg, payload, maxSegs, probe.Mean(), view)
				})
			}
		}
	}
}

// benchIngest offers one packet: the copy path's segmenting enqueue, or the
// zero-copy path's reserve → fill-in-place → commit.
func benchIngest(cm *ConcurrentQueueManager, f uint32, pkt []byte, view bool) error {
	if !view {
		_, err := cm.EnqueuePacket(f, pkt)
		return err
	}
	r, err := cm.ReservePacket(f, len(pkt))
	if err != nil {
		return err
	}
	off := 0
	r.Range(func(seg []byte) bool {
		off += copy(seg, pkt[off:])
		return true
	})
	return r.Commit()
}

// benchMTUSharded is the enqueue/dequeue round trip: per-packet cost with
// no cross-goroutine handoff, the closest measure of the per-segment path.
func benchMTUSharded(b *testing.B, mixCfg traffic.SizeMixConfig, payload []byte, view bool) {
	cm, err := NewConcurrentEngine(ConcurrentConfig{
		Flows:    DefaultFlows,
		Segments: 1 << 17,
		Shards:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	var gid atomic.Uint32
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		seed := uint64(gid.Add(1))
		fd := benchFlowDist(b, seed)
		mc := mixCfg
		mc.Seed = seed
		mix, err := traffic.NewSizeMix(mc)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			f := fd.Next()
			pkt := payload[:mix.Next()]
			if err := benchIngest(cm, f, pkt, view); err != nil {
				b.Error(err)
				return
			}
			if view {
				v, err := cm.DequeuePacketView(f)
				if err != nil {
					b.Error(err)
					return
				}
				v.Release()
				continue
			}
			data, err := cm.DequeuePacket(f)
			if err != nil {
				b.Error(err)
				return
			}
			cm.ReleaseBuffer(data)
		}
	})
}

// benchMTUPipeline is the ingress/egress shape: producers offer under
// watermark flow control, two consumers drain, deliveries are counted only
// inside the timed window.
func benchMTUPipeline(b *testing.B, mixCfg traffic.SizeMixConfig, payload []byte, maxSegs int, meanBytes float64, view bool) {
	cm, err := NewConcurrentEngine(ConcurrentConfig{
		Flows:    DefaultFlows,
		Segments: 1 << 17,
		Shards:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var consWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				var served int
				if view {
					out := cm.DequeueNextViewBatch(64)
					cm.ReleaseViews(out)
					served = len(out)
				} else {
					out := cm.DequeueNextBatch(64)
					for _, d := range out {
						cm.ReleaseBuffer(d.Data)
					}
					served = len(out)
				}
				if served == 0 {
					select {
					case <-stop:
						return
					default:
						runtime.Gosched()
					}
				}
			}
		}()
	}
	// Watermark sized to the worst case of every producer posting a full
	// 32-packet pacing window of maximum-size packets.
	lowWater := (1<<17)/8 + runtime.GOMAXPROCS(0)*4*32*maxSegs
	var gid atomic.Uint32
	b.SetParallelism(4)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		seed := uint64(gid.Add(1))
		fd := benchFlowDist(b, seed)
		mc := mixCfg
		mc.Seed = seed
		mix, err := traffic.NewSizeMix(mc)
		if err != nil {
			b.Error(err)
			return
		}
		pace := 0
		for pb.Next() {
			f := fd.Next()
			pkt := payload[:mix.Next()]
			if pace == 0 {
				for cm.FreeSegments() < lowWater {
					runtime.Gosched()
				}
				pace = 32
			}
			pace--
			for {
				err := benchIngest(cm, f, pkt, view)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrNoFreeSegments) {
					b.Error(err)
					return
				}
				runtime.Gosched() // pool full: wait for the consumers
			}
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	consWG.Wait()
	window := cm.Stats().DequeuedPackets
	for {
		if view {
			out := cm.DequeueNextViewBatch(256)
			if len(out) == 0 {
				break
			}
			cm.ReleaseViews(out)
			continue
		}
		out := cm.DequeueNextBatch(256)
		if len(out) == 0 {
			break
		}
		for _, d := range out {
			cm.ReleaseBuffer(d.Data)
		}
	}
	st := cm.Stats()
	b.ReportMetric(float64(window)/elapsed.Seconds()/1e6, "Mdeliv/s")
	b.ReportMetric(float64(st.DequeuedPackets)/float64(b.N), "deliv/op")
	b.ReportMetric(meanBytes, "B/pkt")
}
