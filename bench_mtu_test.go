package npqm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/traffic"
)

// BenchmarkEngineMTU sweeps packet size — the dimension the original matrix
// holds fixed at 320 bytes — across the two engine shapes. Small packets
// measure fixed per-command overhead; 1500-byte packets (24 segments)
// measure the per-segment path the bulk run allocation amortizes; the IMIX
// mix (64/576/1500 weighted 7:4:1) is the realistic blend. Shards and
// datapath stay fixed (4, sync) so the packet-size effect is isolated.
//
//   - shape=sharded is the per-packet round trip of BenchmarkEngineSharded:
//     each iteration enqueues one packet and dequeues it back.
//   - shape=pipeline is the ingress/egress shape of
//     BenchmarkEngineShardedPipeline: producers offer with pool-watermark
//     pacing while two consumers drain, and the headline metric is
//     Mdeliv/s — packets delivered inside the timed window.
func BenchmarkEngineMTU(b *testing.B) {
	for _, shape := range []string{"sharded", "pipeline"} {
		for _, size := range []string{"64", "1500", "imix"} {
			b.Run(fmt.Sprintf("shape=%s/pkt=%s", shape, size), func(b *testing.B) {
				mixCfg := traffic.SizeMixConfig{Kind: traffic.MixIMIX}
				if size != "imix" {
					mixCfg.Kind = traffic.MixFixed
					if size == "64" {
						mixCfg.Fixed = 64
					} else {
						mixCfg.Fixed = 1500
					}
				}
				probe, err := traffic.NewSizeMix(mixCfg)
				if err != nil {
					b.Fatal(err)
				}
				payload := make([]byte, probe.Max()) // shared, read-only
				maxSegs := (probe.Max() + 63) / 64
				if shape == "sharded" {
					benchMTUSharded(b, mixCfg, payload)
					return
				}
				benchMTUPipeline(b, mixCfg, payload, maxSegs, probe.Mean())
			})
		}
	}
}

// benchMTUSharded is the enqueue/dequeue round trip: per-packet cost with
// no cross-goroutine handoff, the closest measure of the per-segment path.
func benchMTUSharded(b *testing.B, mixCfg traffic.SizeMixConfig, payload []byte) {
	cm, err := NewConcurrentEngine(ConcurrentConfig{
		Flows:    DefaultFlows,
		Segments: 1 << 17,
		Shards:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	var gid atomic.Uint32
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		seed := uint64(gid.Add(1))
		fd := benchFlowDist(b, seed)
		mc := mixCfg
		mc.Seed = seed
		mix, err := traffic.NewSizeMix(mc)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			f := fd.Next()
			pkt := payload[:mix.Next()]
			if _, err := cm.EnqueuePacket(f, pkt); err != nil {
				b.Error(err)
				return
			}
			data, err := cm.DequeuePacket(f)
			if err != nil {
				b.Error(err)
				return
			}
			cm.Release(data)
		}
	})
}

// benchMTUPipeline is the ingress/egress shape: producers offer under
// watermark flow control, two consumers drain, deliveries are counted only
// inside the timed window.
func benchMTUPipeline(b *testing.B, mixCfg traffic.SizeMixConfig, payload []byte, maxSegs int, meanBytes float64) {
	cm, err := NewConcurrentEngine(ConcurrentConfig{
		Flows:    DefaultFlows,
		Segments: 1 << 17,
		Shards:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var consWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				out := cm.DequeueNextBatch(64)
				for _, d := range out {
					cm.Release(d.Data)
				}
				if len(out) == 0 {
					select {
					case <-stop:
						return
					default:
						runtime.Gosched()
					}
				}
			}
		}()
	}
	// Watermark sized to the worst case of every producer posting a full
	// 32-packet pacing window of maximum-size packets.
	lowWater := (1<<17)/8 + runtime.GOMAXPROCS(0)*4*32*maxSegs
	var gid atomic.Uint32
	b.SetParallelism(4)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		seed := uint64(gid.Add(1))
		fd := benchFlowDist(b, seed)
		mc := mixCfg
		mc.Seed = seed
		mix, err := traffic.NewSizeMix(mc)
		if err != nil {
			b.Error(err)
			return
		}
		pace := 0
		for pb.Next() {
			f := fd.Next()
			pkt := payload[:mix.Next()]
			if pace == 0 {
				for cm.FreeSegments() < lowWater {
					runtime.Gosched()
				}
				pace = 32
			}
			pace--
			for {
				_, err := cm.EnqueuePacket(f, pkt)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrNoFreeSegments) {
					b.Error(err)
					return
				}
				runtime.Gosched() // pool full: wait for the consumers
			}
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	consWG.Wait()
	window := cm.Stats().DequeuedPackets
	for {
		out := cm.DequeueNextBatch(256)
		if len(out) == 0 {
			break
		}
		for _, d := range out {
			cm.Release(d.Data)
		}
	}
	st := cm.Stats()
	b.ReportMetric(float64(window)/elapsed.Seconds()/1e6, "Mdeliv/s")
	b.ReportMetric(float64(st.DequeuedPackets)/float64(b.N), "deliv/op")
	b.ReportMetric(meanBytes, "B/pkt")
}
