package npqm

import (
	"sync"

	"npqm/internal/engine"
)

// ConcurrentQueueManager is the goroutine-safe, sharded variant of
// QueueManager: the flow space is hash-partitioned across queue-manager
// shards, so enqueues and dequeues on different shards proceed in
// parallel, while segment memory stays one shared pool — as in the paper,
// where every per-flow queue allocates 64-byte segments from a single data
// memory. Shards draw from the pool through per-shard magazine caches (a
// lock-free depot underneath), so a single hot flow can consume nearly the
// whole buffer and admission policies see true pool-wide occupancy.
// Per-flow FIFO order is preserved — a flow always maps to the same shard.
//
// Two datapaths are available. The default is synchronous: every call
// locks the owning shard, operates, returns. Start switches to the
// asynchronous command-ring datapath — the software rendering of the
// paper's command FIFOs: callers post commands into a bounded ring per
// shard and a per-shard worker goroutine drains them run-to-completion as
// the shard's single writer, so producers pipeline instead of serializing
// on lock handoff. The synchronous API keeps working after Start as a thin
// blocking wrapper over the rings; EnqueueAsync posts fire-and-forget.
//
// # Error contract
//
// Datapath methods return these classifiable sentinels (use errors.Is):
// ErrQueueEmpty / ErrNoPacket (nothing to serve), ErrNoFreeSegments (pool
// exhausted with no admission policy), ErrQueueLimit (per-flow cap),
// ErrAdmissionDrop (policy refusal — counted, not a caller error),
// ErrClosed (after Close). Configuration methods taking a flow ID
// (SetFlowLimit, SetWeight) return ErrUnknownFlow for flows outside the
// configured flow space.
type ConcurrentQueueManager struct {
	e *engine.Engine

	// reqPool recycles the []engine.EnqueueReq conversion buffers of
	// EnqueueBatch so the facade adds no per-burst allocation on top of the
	// engine's allocation-free batch path.
	reqPool sync.Pool
}

// Sentinel errors of the concurrent engine, re-exported for errors.Is.
var (
	// ErrClosed is returned by every datapath call after Close.
	ErrClosed = engine.ErrClosed
	// ErrUnknownFlow is returned by SetFlowLimit and SetWeight for flow
	// IDs outside the configured flow space.
	ErrUnknownFlow = engine.ErrUnknownFlow
)

// PacketEnqueue is one packet of an EnqueueBatch call.
type PacketEnqueue struct {
	Flow uint32
	Data []byte
}

// EngineStats is the aggregate cross-shard statistics snapshot.
type EngineStats = engine.Stats

// NewConcurrentQueueManager allocates a sharded queue manager with the
// given flow count (0 means 32K), shared segment pool, and shard count
// (0 means 8; rounded up to a power of two). All shards allocate from the
// one pool.
func NewConcurrentQueueManager(flows, segments, shards int) (*ConcurrentQueueManager, error) {
	e, err := engine.New(engine.Config{
		Shards:      shards,
		NumFlows:    flows,
		NumSegments: segments,
		StoreData:   true,
	})
	if err != nil {
		return nil, err
	}
	return &ConcurrentQueueManager{e: e}, nil
}

// Shards returns the shard count.
func (cm *ConcurrentQueueManager) Shards() int { return cm.e.Shards() }

// Start switches the manager onto the asynchronous command-ring datapath:
// one bounded MPSC command ring and one worker goroutine per shard, with
// the worker as the shard's single writer. Safe while traffic flows;
// idempotent; ErrClosed after Close.
func (cm *ConcurrentQueueManager) Start() error { return cm.e.Start() }

// Drain blocks until every command posted before the call — including
// EnqueueAsync backlogs — has been executed. No-op on the synchronous
// datapath.
func (cm *ConcurrentQueueManager) Drain() error { return cm.e.Drain() }

// Close shuts the manager down: pending ring commands drain (no packet or
// counter is lost), workers exit, and later datapath calls return
// ErrClosed. Idempotent. The observation surface (Stats, Len, ActiveFlows,
// CheckInvariants, ...) keeps working against the quiescent state.
func (cm *ConcurrentQueueManager) Close() error { return cm.e.Close() }

// EnqueueAsync posts a fire-and-forget enqueue on the ring datapath: it
// returns once the command is in the shard's ring (blocking only for ring
// backpressure) and the outcome — linked, dropped, or refused — is
// reported through Stats counters. The engine reads data when the command
// executes: do not mutate the buffer until the command has been processed
// (reusing one read-only payload across posts is fine). The only error is
// ErrClosed.
func (cm *ConcurrentQueueManager) EnqueueAsync(q uint32, data []byte) error {
	return cm.e.EnqueueAsync(q, data)
}

// RingOccupancy returns the total number of commands waiting in the shard
// rings (0 on the synchronous datapath) — the backlog the workers have yet
// to execute.
func (cm *ConcurrentQueueManager) RingOccupancy() int { return cm.e.RingOccupancy() }

// EnqueuePacket segments data onto flow q; it returns the segment count.
// Safe for concurrent use.
func (cm *ConcurrentQueueManager) EnqueuePacket(q uint32, data []byte) (int, error) {
	return cm.e.EnqueuePacket(q, data)
}

// DequeuePacket removes and reassembles the packet at the head of flow q.
// The returned buffer is pooled; hand it back with Release when done.
func (cm *ConcurrentQueueManager) DequeuePacket(q uint32) ([]byte, error) {
	return cm.e.DequeuePacket(q)
}

// ReleaseBuffer recycles a buffer returned by DequeuePacket, DequeueBatch,
// DequeueNext or DequeueNextBatch.
func (cm *ConcurrentQueueManager) ReleaseBuffer(buf []byte) { cm.e.ReleaseBuffer(buf) }

// Release recycles a buffer returned by DequeuePacket or DequeueBatch.
//
// Deprecated: use ReleaseBuffer, which names the copy-path buffer
// explicitly now that zero-copy PacketViews have their own Release.
func (cm *ConcurrentQueueManager) Release(buf []byte) { cm.e.ReleaseBuffer(buf) }

// DequeuePacketView removes the packet at the head of flow q as a
// zero-copy view over its segment chain — no reassembly buffer, no copy.
// The caller owns the view and must Release it exactly once; its segments
// stay checked out of the shared pool (lent) until then.
func (cm *ConcurrentQueueManager) DequeuePacketView(q uint32) (PacketView, error) {
	return cm.e.DequeuePacketView(q)
}

// DequeueNextView serves one packet chosen by the configured egress
// discipline as a zero-copy view. ok is false when the manager holds no
// packets. Release the view when done.
func (cm *ConcurrentQueueManager) DequeueNextView() (DequeuedView, bool) {
	return cm.e.DequeueNextView()
}

// DequeueNextViewBatch serves up to max packets chosen by the configured
// egress discipline as zero-copy views, rotating the starting shard per
// call. Release every view exactly once.
func (cm *ConcurrentQueueManager) DequeueNextViewBatch(max int) []DequeuedView {
	return cm.e.DequeueNextViewBatch(max)
}

// ReleaseViews releases every view in ds in one pool transaction per
// shard — the efficient settlement for a DequeueNextViewBatch. Retained
// views are skipped, and each entry's view is cleared so re-running the
// slice cannot double-release.
func (cm *ConcurrentQueueManager) ReleaseViews(ds []DequeuedView) {
	cm.e.ReleaseViews(ds)
}

// DequeueViewBatch dequeues the head packet of every listed flow as a
// zero-copy view, locking each shard once. views[i] is valid exactly when
// errs[i] is nil; Release each valid view exactly once.
func (cm *ConcurrentQueueManager) DequeueViewBatch(flows []uint32) ([]PacketView, []error) {
	return cm.e.DequeueViewBatch(flows)
}

// ReservePacket opens an n-byte write-in-place reservation on flow q: the
// segment run is allocated and charged against admission now, the caller
// fills the per-segment slices via Reservation.Range (readv-style), and
// Commit splices the packet onto the queue without the payload ever being
// copied. Abort returns the segments untouched.
func (cm *ConcurrentQueueManager) ReservePacket(q uint32, n int) (Reservation, error) {
	return cm.e.ReservePacket(q, n)
}

// ServeViews registers sink as port's zero-copy transmitter — Serve with
// packet views instead of reassembled buffers. The manager drops its
// reference to each view when SendView returns; a sink that completes
// transmission asynchronously must Retain the view first.
func (cm *ConcurrentQueueManager) ServeViews(port int, sink SinkV) error {
	return cm.e.ServeViews(port, sink)
}

// LentSegments returns the number of segments currently checked out in
// packet views and open reservations.
func (cm *ConcurrentQueueManager) LentSegments() int { return cm.e.LentSegments() }

// EnqueueBatch enqueues a burst of packets, locking each shard once. A nil
// errs means every packet was accepted; otherwise errs[i] reports the
// outcome of batch[i]. The return value is the total segment count linked.
// The all-accepted path performs no allocation.
func (cm *ConcurrentQueueManager) EnqueueBatch(batch []PacketEnqueue) (int, []error) {
	var box *[]engine.EnqueueReq
	if v := cm.reqPool.Get(); v != nil {
		box = v.(*[]engine.EnqueueReq)
	} else {
		box = new([]engine.EnqueueReq)
	}
	reqs := (*box)[:0]
	for _, p := range batch {
		reqs = append(reqs, engine.EnqueueReq{Flow: p.Flow, Data: p.Data})
	}
	n, errs := cm.e.EnqueueBatch(reqs)
	clear(reqs) // drop payload references before pooling
	*box = reqs
	cm.reqPool.Put(box)
	return n, errs
}

// DequeueBatch dequeues the head packet of every listed flow, locking each
// shard once. Buffers are pooled; Release them when done.
func (cm *ConcurrentQueueManager) DequeueBatch(flows []uint32) ([][]byte, []error) {
	return cm.e.DequeueBatch(flows)
}

// MovePacket relinks the head packet of one flow onto another — pure
// pointer surgery on the shared slab whether or not the flows share a
// shard; data is never copied.
func (cm *ConcurrentQueueManager) MovePacket(from, to uint32) (int, error) {
	return cm.e.MovePacket(from, to)
}

// DeletePacket drops the head packet of flow q, returning its segment count.
func (cm *ConcurrentQueueManager) DeletePacket(q uint32) (int, error) {
	return cm.e.DeletePacket(q)
}

// Len returns the number of queued segments on flow q.
func (cm *ConcurrentQueueManager) Len(q uint32) (int, error) { return cm.e.Len(q) }

// SetFlowLimit caps flow q at limit segments (0 removes the cap). Flows
// outside the configured flow space report ErrUnknownFlow.
func (cm *ConcurrentQueueManager) SetFlowLimit(q uint32, limit int) error {
	return cm.e.SetFlowLimit(q, limit)
}

// FreeSegments returns the shared pool's free population.
func (cm *ConcurrentQueueManager) FreeSegments() int { return cm.e.FreeSegments() }

// DequeueNext serves one packet chosen by the configured egress
// discipline (round-robin unless set otherwise). ok is false when the
// engine holds no packets. Release the data when done.
func (cm *ConcurrentQueueManager) DequeueNext() (DequeuedPacket, bool) {
	return cm.e.DequeueNext()
}

// DequeueNextBatch serves up to max packets chosen by the configured
// egress discipline, rotating the starting shard per call. Buffers are
// pooled; Release each packet's Data when done.
func (cm *ConcurrentQueueManager) DequeueNextBatch(max int) []DequeuedPacket {
	return cm.e.DequeueNextBatch(max)
}

// SetAdmission swaps the admission policy on every shard; safe while
// traffic flows (counters are not reset).
func (cm *ConcurrentQueueManager) SetAdmission(cfg AdmissionConfig) error {
	return cm.e.SetAdmission(cfg)
}

// SetEgress swaps the egress discipline on every shard; safe while
// traffic flows. Per-flow weights survive the switch.
func (cm *ConcurrentQueueManager) SetEgress(cfg EgressConfig) error {
	return cm.e.SetEgress(cfg)
}

// SetWeight sets flow q's egress weight for WRR (packets per visit) and
// DRR (quantum multiplier). Weights must be positive; flows outside the
// configured flow space report ErrUnknownFlow.
func (cm *ConcurrentQueueManager) SetWeight(q uint32, weight int) error {
	return cm.e.SetWeight(q, weight)
}

// NumClasses returns the per-port scheduling class count (1 = flat).
func (cm *ConcurrentQueueManager) NumClasses() int { return cm.e.NumClasses() }

// SetFlowClass moves flow q into a scheduling class (all flows start in
// class 0; see ClassLayer for configuring the class level). A backlogged
// flow moves with its queue and per-flow FIFO order is unaffected. Safe
// while traffic flows.
func (cm *ConcurrentQueueManager) SetFlowClass(q uint32, class int) error {
	return cm.e.SetFlowClass(q, class)
}

// FlowClass returns the scheduling class flow q is currently mapped to.
func (cm *ConcurrentQueueManager) FlowClass(q uint32) (int, error) { return cm.e.FlowClass(q) }

// SetClassWeight sets a class's weight for class-level WRR (packets per
// visit) and DRR (quantum multiplier). Weights must be positive. Safe
// while traffic flows.
func (cm *ConcurrentQueueManager) SetClassWeight(class, weight int) error {
	return cm.e.SetClassWeight(class, weight)
}

// ClassStats returns per-class backlog occupancy and weights.
func (cm *ConcurrentQueueManager) ClassStats() []ClassStat { return cm.e.ClassStats() }

// NumTenants returns the per-port scheduling tenant count (1 = flat).
func (cm *ConcurrentQueueManager) NumTenants() int { return cm.e.NumTenants() }

// SetFlowTenant moves flow q into a scheduling tenant (all flows start in
// tenant 0; see TenantLayer for configuring the tenant level). A
// backlogged flow moves with its queue and per-flow FIFO order is
// unaffected. Safe while traffic flows.
func (cm *ConcurrentQueueManager) SetFlowTenant(q uint32, tenant int) error {
	return cm.e.SetFlowTenant(q, tenant)
}

// FlowTenant returns the scheduling tenant flow q is currently mapped to.
func (cm *ConcurrentQueueManager) FlowTenant(q uint32) (int, error) { return cm.e.FlowTenant(q) }

// SetTenantWeight sets a tenant's weight for tenant-level WRR (packets
// per visit) and DRR (quantum multiplier). Weights must be positive. Safe
// while traffic flows.
func (cm *ConcurrentQueueManager) SetTenantWeight(tenant, weight int) error {
	return cm.e.SetTenantWeight(tenant, weight)
}

// TenantStats returns per-tenant backlog occupancy and weights.
func (cm *ConcurrentQueueManager) TenantStats() []TenantStat { return cm.e.TenantStats() }

// NumPorts returns the configured output-port count.
func (cm *ConcurrentQueueManager) NumPorts() int { return cm.e.NumPorts() }

// Serve registers sink as port's transmitter and hands the port to its
// home shard's pacer: push-mode delivery — the pacer picks packets via
// the configured class and flow disciplines, paces them against the
// port's token-bucket shaper on a timing wheel, and calls sink.Transmit
// (which may block for backpressure) until the manager closes or sink
// returns an error. Serving any number of ports costs one goroutine per
// shard, not one per port; a Transmit always runs on the port's home
// pacer goroutine, never concurrently with itself. Close waits for the
// pacers, so a Sink must not block forever.
func (cm *ConcurrentQueueManager) Serve(port int, sink Sink) error {
	return cm.e.Serve(port, sink)
}

// SetFlowPort moves flow q onto port (all flows start on port 0); a
// backlogged flow moves with its queue. Safe while traffic flows.
func (cm *ConcurrentQueueManager) SetFlowPort(q uint32, port int) error {
	return cm.e.SetFlowPort(q, port)
}

// FlowPort returns the port flow q is currently mapped to.
func (cm *ConcurrentQueueManager) FlowPort(q uint32) (int, error) { return cm.e.FlowPort(q) }

// SetPortRate reshapes port at runtime (rate 0 removes shaping).
func (cm *ConcurrentQueueManager) SetPortRate(port int, cfg ShaperConfig) error {
	return cm.e.SetPortRate(port, cfg)
}

// Pause stops port's transmission — its worker parks and the backlog
// holds — modeling link-level flow control. Idempotent.
func (cm *ConcurrentQueueManager) Pause(port int) error { return cm.e.Pause(port) }

// Resume reverses Pause. Idempotent.
func (cm *ConcurrentQueueManager) Resume(port int) error { return cm.e.Resume(port) }

// PortStats returns per-port transmit counters and shaper occupancy.
func (cm *ConcurrentQueueManager) PortStats() []PortStat { return cm.e.PortStats() }

// ActiveFlows returns the number of flows holding queued segments.
func (cm *ConcurrentQueueManager) ActiveFlows() int { return cm.e.ActiveFlows() }

// Stats returns cumulative traffic counters and occupancy across shards.
func (cm *ConcurrentQueueManager) Stats() EngineStats { return cm.e.Stats() }

// CheckInvariants validates every shard's pointer structures and global
// segment conservation (for tests/debugging; only a consistent global
// check when no other goroutine is operating on the manager).
func (cm *ConcurrentQueueManager) CheckInvariants() error { return cm.e.CheckInvariants() }
