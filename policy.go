package npqm

// Facade over the policy layer: admission-policy and egress-discipline
// constructors re-exported so applications configure buffer management
// without importing internal packages. See internal/policy for semantics.

import (
	"npqm/internal/engine"
	"npqm/internal/policy"
)

// AdmissionConfig selects and parameterizes an admission policy; build one
// with TailDrop, LQD, or RED (the zero value admits everything the pool
// can hold). Policies consult the occupancy of the single shared segment
// pool: RED thresholds are fractions of the whole buffer, LQD evicts the
// globally longest queue wherever it lives, and tail-drop's pool check is
// pool-wide.
type AdmissionConfig = policy.Config

// EgressConfig parameterizes the integrated egress scheduler; build one
// with RoundRobinEgress, PriorityEgress, WRREgress, or DRREgress (the zero
// value is round-robin), and optionally layer class and tenant scheduling
// on top with ClassLayer and TenantLayer.
//
// Disciplines arbitrate within each shard; across shards, batches rotate
// the starting shard so every shard gets egress bandwidth. Strict global
// priority or exact global weight ratios therefore need the competing
// flows on one shard — use Shards: 1 or flow IDs that hash together.
// Class- and tenant-level arbitration has no such caveat when the units
// span flows of one shard's port unit; see examples/ethswitch for the
// 802.1p pattern and its two-tenant variant.
type EgressConfig = policy.EgressConfig

// LevelSpec configures one intermediate level (tenant or class) of the
// egress hierarchy; normally built through ClassLayer/TenantLayer.
type LevelSpec = policy.LevelSpec

// EgressKind names a scheduling discipline — used to pick the
// intermediate-level disciplines in ClassLayer and TenantLayer (the flow
// level is normally built with RoundRobinEgress and friends).
type EgressKind = policy.EgressKind

// The tier names a LevelSpec can carry.
const (
	TierTenant = policy.TierTenant
	TierClass  = policy.TierClass
)

// The scheduling disciplines, re-exported for ClassLayer.
const (
	EgressRR   = policy.EgressRR
	EgressPrio = policy.EgressPrio
	EgressWRR  = policy.EgressWRR
	EgressDRR  = policy.EgressDRR
)

// DequeuedPacket is one packet served by the integrated egress scheduler.
type DequeuedPacket = engine.Dequeued

// DequeuedView is one packet served by the zero-copy egress paths: flow,
// exact byte count, and a PacketView over the segment chain.
type DequeuedView = engine.DequeuedView

// Reservation is an open write-in-place ingest: fill the reserved segment
// slices through Range, then Commit (splice onto the queue) or Abort
// (return the segments). See ConcurrentQueueManager.ReservePacket.
type Reservation = engine.Reservation

// ShaperConfig parameterizes a port's token-bucket shaper; build one with
// PortShaper (the zero value is unshaped). The bucket earns
// RateBytesPerSec of credit per second up to BurstBytes and transmits
// only while non-negative, so a served port drains at line rate with at
// most one burst of slack.
type ShaperConfig = policy.ShaperConfig

// Sink consumes the packets a served port transmits (push-mode delivery).
// Transmit may block — that is the backpressure path — and returning an
// error stops the port's worker. See ConcurrentQueueManager.Serve.
type Sink = engine.Sink

// SinkFunc adapts a function to the Sink interface.
type SinkFunc = engine.SinkFunc

// SinkV consumes the packet views a port served through ServeViews
// transmits — the zero-copy counterpart of Sink. The engine releases its
// reference when SendView returns; asynchronous sinks Retain first.
type SinkV = engine.SinkV

// SinkVFunc adapts a function to the SinkV interface.
type SinkVFunc = engine.SinkVFunc

// PortStat is one output port's transmit statistics (see PortStats).
type PortStat = engine.PortStat

// ClassStat is one scheduling class's backlog statistics (see ClassStats).
type ClassStat = engine.ClassStat

// TenantStat is one scheduling tenant's backlog statistics (see
// TenantStats).
type TenantStat = engine.TenantStat

// PortShaper returns a token-bucket shaper configuration: rate is the
// sustained drain in bytes per second (0 = unshaped), burst the bucket
// depth in bytes (0 takes 10ms of rate, floored at 64KiB).
func PortShaper(rate, burst int64) ShaperConfig {
	return policy.ShaperConfig{RateBytesPerSec: rate, BurstBytes: burst}
}

// ErrAdmissionDrop is returned by enqueue paths when the admission policy
// refuses the arrival; classify with errors.Is. The drop is counted in
// EngineStats.DroppedPackets — it is policy behavior, not a caller error.
var ErrAdmissionDrop = engine.ErrAdmissionDrop

// TailDrop returns an admission policy that drops arrivals beyond a
// per-queue segment cap (0 = pool-limited only) or when the pool is full.
func TailDrop(limit int) AdmissionConfig {
	return policy.Config{Kind: policy.KindTailDrop, Limit: limit}
}

// LQD returns the Longest Queue Drop shared-buffer policy: when the pool
// is exhausted, arrivals are admitted by pushing out the head packet of
// the globally longest queue — on whichever shard it lives
// (1.5-competitive for shared-memory switches; the guarantee is stated
// for one global buffer, which the shared segment store provides).
func LQD() AdmissionConfig {
	return policy.Config{Kind: policy.KindLQD}
}

// RED returns a Random Early Detection policy over shared-pool occupancy.
// minTh and maxTh are occupancy fractions of the whole buffer in (0, 1];
// maxP is the drop probability at maxTh; weight is the EWMA weight. Zero
// values take the classic defaults (0.25, 0.75, 0.1, 0.002).
func RED(minTh, maxTh, maxP, weight float64) AdmissionConfig {
	return policy.Config{Kind: policy.KindRED, MinTh: minTh, MaxTh: maxTh, MaxP: maxP, Weight: weight}
}

// RoundRobinEgress serves active flows in cyclic flow-ID order.
func RoundRobinEgress() EgressConfig {
	return policy.EgressConfig{Kind: policy.EgressRR}
}

// PriorityEgress always serves the lowest-numbered active flow (flow 0 is
// the highest priority, as in 802.1p class selection).
func PriorityEgress() EgressConfig {
	return policy.EgressConfig{Kind: policy.EgressPrio}
}

// WRREgress serves each active flow its weight in packets per visit; set
// per-flow weights with SetWeight (defaultWeight covers the rest, 0 = 1).
func WRREgress(defaultWeight int) EgressConfig {
	return policy.EgressConfig{Kind: policy.EgressWRR, DefaultWeight: defaultWeight}
}

// DRREgress is deficit round-robin: each visit a flow earns
// quantumBytes*weight of byte credit and sends the head packets it covers,
// making weighted sharing fair for variable-length packets (0 = 512).
func DRREgress(quantumBytes int) EgressConfig {
	return policy.EgressConfig{Kind: policy.EgressDRR, QuantumBytes: quantumBytes}
}

// ClassLayer layers a class scheduling level onto an egress
// configuration: flows are grouped into numClasses classes (SetFlowClass;
// every flow starts in class 0), kind arbitrates among a port's
// backlogged classes first, and cfg's own discipline then arbitrates
// among the flows of the winning class. weights, when given, are the
// per-class WRR/DRR weights (class index order; missing or zero entries
// default to 1). The class count is fixed at construction.
//
// 802.1p-style strict priorities become one line:
//
//	Egress: npqm.ClassLayer(npqm.RoundRobinEgress(), 8, npqm.EgressPrio)
func ClassLayer(cfg EgressConfig, numClasses int, kind EgressKind, weights ...int) EgressConfig {
	spec := policy.LevelSpec{Tier: policy.TierClass, Kind: kind, Units: numClasses}
	if len(weights) > 0 {
		spec.Weights = weights
	}
	return cfg.WithLevel(spec)
}

// TenantLayer layers a tenant scheduling level onto an egress
// configuration, outside any class level: flows are grouped into
// numTenants tenants (SetFlowTenant; every flow starts in tenant 0),
// kind arbitrates among a port's backlogged tenants first, and the rest
// of cfg's hierarchy — the optional class level, then the flow
// discipline — arbitrates within the winning tenant. weights, when
// given, are the per-tenant WRR/DRR weights (tenant index order;
// missing or zero entries default to 1). The tenant count is fixed at
// construction.
//
// A three-level tenant → class → flow hierarchy composes:
//
//	Egress: npqm.TenantLayer(
//	    npqm.ClassLayer(npqm.RoundRobinEgress(), 8, npqm.EgressPrio),
//	    4, npqm.EgressWRR, 3, 1, 1, 1)
func TenantLayer(cfg EgressConfig, numTenants int, kind EgressKind, weights ...int) EgressConfig {
	spec := policy.LevelSpec{Tier: policy.TierTenant, Kind: kind, Units: numTenants}
	if len(weights) > 0 {
		spec.Weights = weights
	}
	return cfg.WithLevel(spec)
}

// ConcurrentConfig sizes a policy-aware sharded engine for
// NewConcurrentEngine.
type ConcurrentConfig struct {
	// Flows is the flow-ID space (0 means 32K).
	Flows int
	// Segments is the shared segment pool all shards draw from (required).
	Segments int
	// Shards is the shard count (0 means 8; rounded up to a power of two).
	Shards int
	// Admission is the buffer admission policy (zero value: accept all).
	Admission AdmissionConfig
	// Egress is the integrated scheduler discipline (zero value: RR).
	Egress EgressConfig
	// Tenants is the tenant count for the optional tenant scheduling
	// level — shorthand for a round-robin TenantLayer on Egress (0 or 1
	// means no tenant level; when Egress already carries a tenant
	// LevelSpec the two counts must agree).
	Tenants int
	// Ports is the output-port count (0 means 1). Flows start on port 0;
	// SetFlowPort re-homes them, and Serve attaches a push-mode Sink per
	// port.
	Ports int
	// PortRate is the token-bucket shaper installed on every port (zero
	// value: unshaped); reshape individual ports with SetPortRate.
	PortRate ShaperConfig
	// RingCapacity is the per-shard command-ring depth for the
	// asynchronous datapath entered with Start (0 means 1024; rounded up
	// to a power of two). A full ring applies backpressure to producers.
	RingCapacity int
	// ResidenceSample enables residence-time sampling: every Nth packet
	// enqueued on a shard is stamped and its enqueue→dequeue time feeds
	// the EngineStats residence histogram (p50/p99/max). 0 disables.
	ResidenceSample int
	// BusyPoll makes the asynchronous datapath's shard workers spin
	// briefly (bounded budget, yielding between polls) before parking when
	// their command ring runs empty — lower wakeup latency at the price of
	// CPU while traffic pauses. Workers still park once the budget drains.
	BusyPoll bool
	// WorkSteal lets idle shard workers execute commands from a
	// backlogged sibling's ring, serialized by the shard mutex, so a
	// skewed flow distribution cannot pin one worker at 100% while the
	// rest sleep. Per-flow FIFO and conservation are preserved.
	WorkSteal bool
}

// NewConcurrentEngine allocates a sharded queue manager with admission and
// egress policies threaded through the datapath. It generalizes
// NewConcurrentQueueManager, which remains the policy-free shorthand.
func NewConcurrentEngine(cfg ConcurrentConfig) (*ConcurrentQueueManager, error) {
	e, err := engine.New(engine.Config{
		Shards:          cfg.Shards,
		NumFlows:        cfg.Flows,
		NumSegments:     cfg.Segments,
		StoreData:       true,
		Admission:       cfg.Admission,
		Egress:          cfg.Egress,
		NumTenants:      cfg.Tenants,
		NumPorts:        cfg.Ports,
		PortRate:        cfg.PortRate,
		RingCapacity:    cfg.RingCapacity,
		ResidenceSample: cfg.ResidenceSample,
		BusyPoll:        cfg.BusyPoll,
		WorkSteal:       cfg.WorkSteal,
	})
	if err != nil {
		return nil, err
	}
	return &ConcurrentQueueManager{e: e}, nil
}
