// Command qmtables regenerates the tables and figures of "Queue Management
// in Network Processors" (DATE 2005) from this repository's models, printing
// measured values alongside the paper's published numbers.
//
// Usage:
//
//	qmtables                 # full report (all tables and figures)
//	qmtables -table 1        # a single table (1..5)
//	qmtables -fig 2          # a single figure (1..2)
//	qmtables -headline       # just the MMS headline throughput
//	qmtables -seed 7 -decisions 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"npqm/internal/core"
	"npqm/internal/tables"
)

func main() {
	var (
		table     = flag.Int("table", 0, "print only this table (1..5)")
		fig       = flag.Int("fig", 0, "print only this figure (1..2)")
		headline  = flag.Bool("headline", false, "print only the MMS headline throughput")
		seed      = flag.Uint64("seed", tables.DefaultSeed, "simulation seed")
		decisions = flag.Int("decisions", 400_000, "DDR simulation length per Table 1 cell")
	)
	flag.Parse()

	if err := run(*table, *fig, *headline, *seed, *decisions); err != nil {
		fmt.Fprintf(os.Stderr, "qmtables: %v\n", err)
		os.Exit(1)
	}
}

func run(table, fig int, headline bool, seed uint64, decisions int) error {
	switch {
	case headline:
		fmt.Printf("MMS headline: %.3f Gbps sustained at 125 MHz (paper: 6.145 Gbps / 12 Mops/s)\n",
			core.HeadlineThroughputGbps())
		return nil
	case table != 0:
		return printTable(table, seed, decisions)
	case fig != 0:
		return printFigure(fig)
	default:
		out, err := tables.RenderAll(seed, decisions)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
}

func printTable(n int, seed uint64, decisions int) error {
	switch n {
	case 1:
		rows, err := tables.Table1(seed, decisions)
		if err != nil {
			return err
		}
		fmt.Print(tables.RenderTable1(rows))
	case 2:
		rows, err := tables.Table2()
		if err != nil {
			return err
		}
		fmt.Print(tables.RenderTable2(rows))
	case 3:
		fmt.Print(tables.RenderTable3(tables.Table3()))
	case 4:
		fmt.Print(tables.RenderTable4(tables.Table4()))
	case 5:
		rows, err := tables.Table5(seed)
		if err != nil {
			return err
		}
		fmt.Print(tables.RenderTable5(rows))
	default:
		return fmt.Errorf("no table %d (the paper has 1..5)", n)
	}
	return nil
}

func printFigure(n int) error {
	switch n {
	case 1:
		fmt.Print(tables.RenderFigure1())
	case 2:
		fmt.Print(tables.RenderFigure2())
	default:
		return fmt.Errorf("no figure %d (the paper has 1..2)", n)
	}
	return nil
}
