// Command benchjson runs (or parses) the repository's Go benchmarks and
// emits a machine-readable JSON summary, so CI and the experiment log can
// track performance without scraping `go test -bench` text.
//
// Usage:
//
//	benchjson -bench 'EngineHierarchy|EnginePorts' -o BENCH_6.json
//	go test -bench . -benchmem | benchjson -o BENCH_6.json
//	benchjson -i bench.txt -o -          # parse a saved log, JSON to stdout
//
// With -bench the tool execs `go test -run NONE -bench <pattern> -benchmem`
// in the current module and parses its output; without it, input comes from
// -i (default stdin). Each benchmark maps to its ns/op, allocs/op, and a
// derived Mpkt/s throughput: the benchmark's own Mdeliv/s metric when it
// reports one (the delivered-packet rate, the honest number for pipeline
// benchmarks), otherwise operations per second in millions (exact for the
// one-packet-per-op round-trip benchmarks). All other custom metrics are
// preserved under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's summary row.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_op"`
	MpktPerSec float64 `json:"mpkt_s"`
	BytesPerOp float64 `json:"bytes_op,omitempty"`
	AllocsOp   float64 `json:"allocs_op"`
	// Metrics holds every reported unit not folded into the fields above
	// (e.g. "MB/s", "loss", "deliv/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole JSON document.
type Report struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func main() {
	var (
		bench = flag.String("bench", "", "run `go test -bench` with this pattern instead of reading input")
		pkg   = flag.String("pkg", ".", "package to benchmark with -bench")
		count = flag.Int("count", 1, "-count passed to go test with -bench")
		btime = flag.String("benchtime", "", "-benchtime passed to go test with -bench (e.g. 0.3s, 100x)")
		in    = flag.String("i", "-", "input file with benchmark output (- = stdin)")
		out   = flag.String("o", "BENCH_6.json", "output JSON file (- = stdout)")
	)
	flag.Parse()

	if err := run(*bench, *pkg, *count, *btime, *in, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(bench, pkg string, count int, btime, in, out string) error {
	var src io.Reader
	switch {
	case bench != "":
		args := []string{"test", "-run", "NONE",
			"-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
		if btime != "" {
			args = append(args, "-benchtime", btime)
		}
		cmd := exec.Command("go", append(args, pkg)...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
		os.Stderr.Write(raw) // keep the human-readable table visible
		src = strings.NewReader(string(raw))
	case in == "-":
		src = os.Stdin
	default:
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	rep, err := parse(src)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// parse reads `go test -bench` output. Repeated runs of one benchmark
// (-count > 1) are averaged.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]Result{}}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &rep.Goos}, {"goarch: ", &rep.Goarch},
			{"pkg: ", &rep.Pkg}, {"cpu: ", &rep.CPU},
		} {
			if strings.HasPrefix(line, hdr.prefix) {
				*hdr.dst = strings.TrimPrefix(line, hdr.prefix)
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, Metrics: map[string]float64{}}
		// The tail is tab-separated "value unit" pairs.
		for _, field := range strings.Split(m[3], "\t") {
			parts := strings.Fields(field)
			if len(parts) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				continue
			}
			switch parts[1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				res.Metrics[parts[1]] = v
			}
		}
		if md, ok := res.Metrics["Mdeliv/s"]; ok {
			res.MpktPerSec = md
		} else if res.NsPerOp > 0 {
			res.MpktPerSec = 1e3 / res.NsPerOp // Mops/s; 1 packet per op
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		// Average repeated runs (-count > 1).
		if prev, ok := rep.Benchmarks[name]; ok {
			res = averaged(prev, res, float64(counts[name]))
		}
		counts[name]++
		rep.Benchmarks[name] = res
	}
	return rep, sc.Err()
}

// averaged folds one more run into a running mean over n prior runs.
func averaged(prev, cur Result, n float64) Result {
	mix := func(a, b float64) float64 { return (a*n + b) / (n + 1) }
	out := Result{
		Iterations: prev.Iterations + cur.Iterations,
		NsPerOp:    mix(prev.NsPerOp, cur.NsPerOp),
		MpktPerSec: mix(prev.MpktPerSec, cur.MpktPerSec),
		BytesPerOp: mix(prev.BytesPerOp, cur.BytesPerOp),
		AllocsOp:   mix(prev.AllocsOp, cur.AllocsOp),
	}
	if prev.Metrics != nil || cur.Metrics != nil {
		out.Metrics = map[string]float64{}
		for k, v := range prev.Metrics {
			out.Metrics[k] = v
		}
		for k, v := range cur.Metrics {
			out.Metrics[k] = mix(out.Metrics[k], v)
		}
	}
	return out
}
