// Command benchjson runs (or parses) the repository's Go benchmarks and
// emits a machine-readable JSON summary, so CI and the experiment log can
// track performance without scraping `go test -bench` text.
//
// Usage:
//
//	benchjson -bench 'EngineHierarchy|EnginePorts' -o BENCH_7.json
//	benchjson -bench 'EngineSharded' -cpu 1,2,4,8 -o BENCH_7.json
//	go test -bench . -benchmem | benchjson -o BENCH_7.json
//	benchjson -i bench.txt -o -          # parse a saved log, JSON to stdout
//
// With -bench the tool execs `go test -run NONE -bench <pattern> -benchmem`
// in the current module and parses its output; without it, input comes from
// -i (default stdin). Each benchmark maps to its ns/op, allocs/op, and a
// derived Mpkt/s throughput: the benchmark's own Mdeliv/s metric when it
// reports one (the delivered-packet rate, the honest number for pipeline
// benchmarks), otherwise operations per second in millions (exact for the
// one-packet-per-op round-trip benchmarks). All other custom metrics are
// preserved under "metrics".
//
// Schema v2: every entry carries "cpus" — the GOMAXPROCS the run used,
// parsed from the `-N` suffix go test appends for N != 1 (absent suffix
// means 1). Entries at different -cpu values therefore key separately, and
// a v2 reader compares rows only at matching cpus.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's summary row.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_op"`
	MpktPerSec float64 `json:"mpkt_s"`
	BytesPerOp float64 `json:"bytes_op,omitempty"`
	AllocsOp   float64 `json:"allocs_op"`
	// CPUs is the GOMAXPROCS value the run used (the `-N` name suffix;
	// 1 when go test printed none).
	CPUs int `json:"cpus"`
	// Metrics holds every reported unit not folded into the fields above
	// (e.g. "MB/s", "loss", "deliv/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole JSON document.
type Report struct {
	SchemaVersion int               `json:"schema_version"`
	Goos          string            `json:"goos,omitempty"`
	Goarch        string            `json:"goarch,omitempty"`
	Pkg           string            `json:"pkg,omitempty"`
	CPU           string            `json:"cpu,omitempty"`
	Benchmarks    map[string]Result `json:"benchmarks"`
}

// schemaVersion is bumped whenever the JSON shape changes in a way readers
// must know about. v2 added per-entry "cpus".
const schemaVersion = 2

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// cpuSuffix matches the `-N` GOMAXPROCS suffix go test appends to a
// benchmark name when N != 1.
var cpuSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	var (
		bench = flag.String("bench", "", "run `go test -bench` with this pattern instead of reading input")
		pkg   = flag.String("pkg", ".", "package to benchmark with -bench")
		count = flag.Int("count", 1, "-count passed to go test with -bench")
		btime = flag.String("benchtime", "", "-benchtime passed to go test with -bench (e.g. 0.3s, 100x)")
		cpu   = flag.String("cpu", "", "-cpu list passed to go test with -bench (e.g. 1,2,4,8)")
		in    = flag.String("i", "-", "input file with benchmark output (- = stdin)")
		out   = flag.String("o", "BENCH_7.json", "output JSON file (- = stdout)")
	)
	flag.Parse()

	if err := run(*bench, *pkg, *count, *btime, *cpu, *in, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(bench, pkg string, count int, btime, cpu, in, out string) error {
	var src io.Reader
	switch {
	case bench != "":
		args := []string{"test", "-run", "NONE",
			"-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
		if btime != "" {
			args = append(args, "-benchtime", btime)
		}
		if cpu != "" {
			args = append(args, "-cpu", cpu)
		}
		cmd := exec.Command("go", append(args, pkg)...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
		os.Stderr.Write(raw) // keep the human-readable table visible
		src = strings.NewReader(string(raw))
	case in == "-":
		src = os.Stdin
	default:
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	rep, err := parse(src)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// parse reads `go test -bench` output. Repeated runs of one benchmark
// (-count > 1) are folded per field by median, as benchstat does — on a
// shared/noisy host a single scheduling spike would otherwise drag a mean
// arbitrarily far from the typical run.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{SchemaVersion: schemaVersion, Benchmarks: map[string]Result{}}
	samples := map[string][]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &rep.Goos}, {"goarch: ", &rep.Goarch},
			{"pkg: ", &rep.Pkg}, {"cpu: ", &rep.CPU},
		} {
			if strings.HasPrefix(line, hdr.prefix) {
				*hdr.dst = strings.TrimPrefix(line, hdr.prefix)
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, CPUs: 1, Metrics: map[string]float64{}}
		if sm := cpuSuffix.FindStringSubmatch(name); sm != nil {
			if n, err := strconv.Atoi(sm[1]); err == nil && n > 0 {
				res.CPUs = n
			}
		}
		// The tail is tab-separated "value unit" pairs.
		for _, field := range strings.Split(m[3], "\t") {
			parts := strings.Fields(field)
			if len(parts) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				continue
			}
			switch parts[1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				res.Metrics[parts[1]] = v
			}
		}
		if md, ok := res.Metrics["Mdeliv/s"]; ok {
			res.MpktPerSec = md
		} else if res.NsPerOp > 0 {
			res.MpktPerSec = 1e3 / res.NsPerOp // Mops/s; 1 packet per op
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		samples[name] = append(samples[name], res)
	}
	for name, runs := range samples {
		rep.Benchmarks[name] = folded(runs)
	}
	return rep, sc.Err()
}

// folded reduces repeated runs of one benchmark to per-field medians
// (iterations sum; cpus is constant across runs of one name).
func folded(runs []Result) Result {
	if len(runs) == 1 {
		return runs[0]
	}
	pick := func(get func(Result) float64) float64 {
		vs := make([]float64, len(runs))
		for i, r := range runs {
			vs[i] = get(r)
		}
		sort.Float64s(vs)
		if n := len(vs); n%2 == 1 {
			return vs[n/2]
		} else {
			return (vs[n/2-1] + vs[n/2]) / 2
		}
	}
	out := Result{
		NsPerOp:    pick(func(r Result) float64 { return r.NsPerOp }),
		MpktPerSec: pick(func(r Result) float64 { return r.MpktPerSec }),
		BytesPerOp: pick(func(r Result) float64 { return r.BytesPerOp }),
		AllocsOp:   pick(func(r Result) float64 { return r.AllocsOp }),
		CPUs:       runs[0].CPUs,
	}
	keys := map[string]bool{}
	for _, r := range runs {
		out.Iterations += r.Iterations
		for k := range r.Metrics {
			keys[k] = true
		}
	}
	if len(keys) > 0 {
		out.Metrics = map[string]float64{}
		for k := range keys {
			out.Metrics[k] = pick(func(r Result) float64 { return r.Metrics[k] })
		}
	}
	return out
}
