// Command qmsim runs a single parameterized experiment from the paper's
// models and prints CSV, for sweeps beyond the published configurations.
//
// Usage:
//
//	qmsim -model ddr    -banks 8 -sched reorder -rw -decisions 500000
//	qmsim -model mms    -load 5.5 -segments 5 -depth 2
//	qmsim -model ixp    -queues 128 -engines 4
//	qmsim -model npu    -copy line -clock 200
//	qmsim -model engine -shards 16 -parallel 8 -flows 32768 -ops 2000000
//	qmsim -model engine -policy lqd -pool 4096 -egress drr -ops 500000
//	qmsim -model engine -policy lqd -pool 8192 -zipf 1.2 -ops 500000
//	qmsim -model engine -datapath ring -shards 16 -parallel 8 -residence 64
//	qmsim -delivery view -pkt 1500 -ops 2000000
//	qmsim -ports 4 -rate 125000000 -egress drr
//	qmsim -classes 8 -class-egress wrr -class-weights 4,4,2,2,1,1,1,1
//	qmsim -tenants 4 -tenant-egress wrr -tenant-weights 3,1,1,1 -classes 8
//
// -ports and -rate select the push-mode transmit path: flows are spread
// across N output ports (flow % N), each port is served push-mode
// (engine.Serve, paced by the per-shard timing-wheel pacer) and — with
// -rate — a token-bucket shaper of that many bytes per second (-burst
// overrides the bucket depth), modeling shaped uplinks instead of an
// unbounded consumer loop. The CSV then grows a per-port block:
// transmissions, throttle waits, shaper credit, and achieved Gbps per
// port. Setting -ports or -rate implies -model engine.
//
// -classes layers a class scheduling level over the flow level: flows are
// spread across N classes (flow % N), -class-egress picks the discipline
// arbitrating among a port's backlogged classes (the -egress discipline
// then arbitrates within the winning class), and -class-weights sets the
// per-class WRR/DRR weights. The CSV grows a per-class block mirroring
// the per-port one: deliveries, bytes, and the achieved share per class
// — full-run (which converges to the admission mix once the end-of-run
// drain completes) and at the end-of-offer cutoff, where the level
// discipline's weighted shares are visible. Any class flag implies
// -model engine.
//
// -tenants layers a tenant level outside the class level, completing the
// three-deep tenant → class → flow hierarchy: flows are spread across N
// tenants ((flow / classes) % N, so tenants cut across classes),
// -tenant-egress picks the tenant-level discipline and -tenant-weights
// the per-tenant WRR/DRR weights. The CSV grows a per-tenant block
// mirroring the per-class one. Any tenant flag implies -model engine.
//
// -delivery selects how packets cross the engine boundary: "copy"
// reassembles each packet into a pooled buffer on dequeue and copies the
// payload on enqueue; "view" runs the zero-copy pipeline — producers
// reserve segment runs and fill them in place (ReservePacket), consumers
// and port sinks read segment-chain views released back to the pool in
// bulk. The copied_bytes CSV column prices the difference: it is exactly
// 0 in a pure view run. Setting -delivery implies -model engine.
//
// The engine's segment pool is one shared buffer: -limit, -minth/-maxth and
// LQD eviction are pool-wide, and a skewed workload (-zipf > 1 concentrates
// traffic on few flows) can push one flow to nearly the whole pool.
//
// -datapath selects how producers reach the engine: "sync" locks the
// owning shard per call; "ring" posts commands into per-shard rings
// drained by worker goroutines (the paper's command-FIFO structure), with
// producers firing asynchronously. The CSV reports the command-ring peak
// occupancy and the blocking-enqueue completion latency either way (both
// are trivially small on the sync path).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"npqm/internal/core"
	"npqm/internal/ddr"
	"npqm/internal/engine"
	"npqm/internal/ixp"
	"npqm/internal/npu"
	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/stats"
	"npqm/internal/traffic"
)

func main() {
	var (
		model     = flag.String("model", "mms", "model to run: ddr, mms, ixp, npu, engine")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		banks     = flag.Int("banks", 8, "ddr: bank count")
		schedName = flag.String("sched", "reorder", "ddr: scheduler (fcfs, reorder)")
		rw        = flag.Bool("rw", false, "ddr: enable write-after-read turnaround")
		lookahead = flag.Int("lookahead", 1, "ddr: reorder lookahead depth")
		decisions = flag.Int("decisions", 400_000, "ddr: scheduling decisions")
		load      = flag.Float64("load", 4.8, "mms: offered load in Gbps")
		segments  = flag.Int("segments", 5, "mms: segments per packet burst")
		depth     = flag.Int("depth", 2, "mms: per-port FIFO depth")
		queues    = flag.Int("queues", 128, "ixp: queue count")
		engines   = flag.Int("engines", 6, "ixp: microengine count")
		copyEng   = flag.String("copy", "word", "npu: copy engine (word, line, dma)")
		clock     = flag.Float64("clock", 100, "npu: CPU clock in MHz")
		shards    = flag.Int("shards", 16, "engine: shard count (rounded to power of two)")
		parallel  = flag.Int("parallel", 4, "engine: producer goroutines (consumers match)")
		flows     = flag.Int("flows", 32768, "engine: flow-ID space")
		pool      = flag.Int("pool", 1<<17, "engine: total segment pool")
		pktBytes  = flag.Int("pkt", 320, "engine: packet size in bytes (fixed mix)")
		pktMix    = flag.String("pktmix", "fixed", "engine: packet-size mix (fixed = every packet -pkt bytes, imix = 64/576/1500 weighted 7:4:1)")
		ops       = flag.Int("ops", 1_000_000, "engine: packets to push through")
		polName   = flag.String("policy", "none", "engine: admission policy (none, tail, lqd, red)")
		limit     = flag.Int("limit", 0, "engine: tail-drop per-flow segment cap (0 = pool only)")
		minth     = flag.Float64("minth", 0.25, "engine: RED min threshold (fraction of pool)")
		maxth     = flag.Float64("maxth", 0.75, "engine: RED max threshold (fraction of pool)")
		maxp      = flag.Float64("maxp", 0.1, "engine: RED max drop probability")
		wq        = flag.Float64("wq", 0.002, "engine: RED EWMA weight")
		egName    = flag.String("egress", "rr", "engine: egress discipline (rr, prio, wrr, drr)")
		quantum   = flag.Int("quantum", 512, "engine: DRR byte quantum per weight unit")
		burst     = flag.Int("burst", 1, "engine: packets per flow burst (bursty arrivals)")
		zipf      = flag.Float64("zipf", 0, "engine: Zipf skew exponent for flow selection (0 = uniform stride, >1 = skewed)")
		datapath  = flag.String("datapath", "sync", "engine: datapath (sync = lock per call, ring = async command rings)")
		delivery  = flag.String("delivery", "copy", "engine: delivery mode (copy = reassembled pooled buffers, view = zero-copy segment views with write-in-place ingest)")
		ringCap   = flag.Int("ringcap", 0, "engine: per-shard command-ring capacity (0 = default 1024)")
		residence = flag.Int("residence", 0, "engine: sample every Nth packet's enqueue→dequeue residence time (0 = off)")
		ports     = flag.Int("ports", 1, "engine: output ports (flows spread flow %% N; >1 or -rate switches egress to push-mode port workers)")
		rate      = flag.Int64("rate", 0, "engine: per-port shaper rate in bytes/sec (0 = unshaped)")
		burstB    = flag.Int64("burst-bytes", 0, "engine: per-port shaper bucket depth in bytes (0 = 10ms of rate)")
		classes   = flag.Int("classes", 0, "engine: scheduling classes layered over the flow level (0/1 = flat; flows spread flow %% N)")
		classEg   = flag.String("class-egress", "rr", "engine: class-level discipline (rr, prio, wrr, drr)")
		classW    = flag.String("class-weights", "", "engine: comma-separated per-class WRR/DRR weights (missing entries = 1)")
		tenants   = flag.Int("tenants", 0, "engine: scheduling tenants layered outside the class level (0/1 = flat; flows spread (flow / classes) %% N)")
		tenantEg  = flag.String("tenant-egress", "rr", "engine: tenant-level discipline (rr, prio, wrr, drr)")
		tenantW   = flag.String("tenant-weights", "", "engine: comma-separated per-tenant WRR/DRR weights (missing entries = 1)")
	)
	flag.Parse()
	// -ports / -rate / the class layer only make sense on the engine model;
	// let those invocations stay short (qmsim -ports 4 -rate 125000000,
	// qmsim -classes 8 -class-egress prio).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !explicit["model"] && (explicit["ports"] || explicit["rate"] ||
		explicit["classes"] || explicit["class-egress"] || explicit["class-weights"] ||
		explicit["tenants"] || explicit["tenant-egress"] || explicit["tenant-weights"] ||
		explicit["delivery"]) {
		*model = "engine"
	}

	var err error
	switch *model {
	case "ddr":
		err = runDDR(*banks, *schedName, *rw, *lookahead, *seed, *decisions)
	case "mms":
		err = runMMS(*load, *segments, *depth, *seed)
	case "ixp":
		err = runIXP(*queues, *engines)
	case "npu":
		err = runNPU(*copyEng, *clock)
	case "engine":
		err = runEngine(engineArgs{
			shards: *shards, parallel: *parallel, flows: *flows, pool: *pool,
			pktBytes: *pktBytes, pktMix: *pktMix, ops: *ops, seed: *seed,
			policy: *polName, limit: *limit,
			minth: *minth, maxth: *maxth, maxp: *maxp, wq: *wq,
			egress: *egName, quantum: *quantum, burst: *burst,
			zipf:     *zipf,
			datapath: *datapath, delivery: *delivery, ringCap: *ringCap, residence: *residence,
			ports: *ports, rate: *rate, burstBytes: *burstB,
			classes: *classes, classEgress: *classEg, classWeights: *classW,
			tenants: *tenants, tenantEgress: *tenantEg, tenantWeights: *tenantW,
		})
	default:
		err = fmt.Errorf("unknown model %q (want ddr, mms, ixp, npu, engine)", *model)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmsim: %v\n", err)
		os.Exit(1)
	}
}

func runDDR(banks int, schedName string, rw bool, lookahead int, seed uint64, decisions int) error {
	var sched ddr.SchedulerKind
	switch schedName {
	case "fcfs":
		sched = ddr.FCFSRoundRobin
	case "reorder":
		sched = ddr.Reorder
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}
	res, err := ddr.RunSaturated(ddr.Config{
		Banks: banks, Scheduler: sched, RWInterleave: rw, LookAhead: lookahead,
	}, seed, decisions)
	if err != nil {
		return err
	}
	fmt.Println("banks,scheduler,rw,lookahead,loss,utilization,goodput_gbps,conflict_halfslots,turnaround_halfslots")
	fmt.Printf("%d,%s,%v,%d,%.4f,%.4f,%.3f,%d,%d\n",
		banks, sched, rw, lookahead, res.Loss, res.Utilization, res.GoodputGbps(),
		res.ConflictStalls, res.TurnaroundStalls)
	return nil
}

func runMMS(load float64, segments, depth int, seed uint64) error {
	p, err := core.RunLoad(core.LoadConfig{
		LoadGbps:       load,
		PacketSegments: segments,
		Seed:           seed,
		MMS:            core.Config{FIFODepth: depth},
	})
	if err != nil {
		return err
	}
	fmt.Println("load_gbps,fifo_cycles,exec_cycles,data_cycles,total_cycles,achieved_gbps,bank_conflict_rate")
	fmt.Printf("%.2f,%.1f,%.1f,%.1f,%.1f,%.3f,%.3f\n",
		p.LoadGbps, p.FIFODelay, p.ExecDelay, p.DataDelay, p.TotalDelay, p.AchievedGbps, p.BankConflict)
	return nil
}

func runIXP(queues, engines int) error {
	p, err := ixp.ProfileForQueues(queues)
	if err != nil {
		return err
	}
	res, err := ixp.Run(ixp.Config{Profile: p, Engines: engines})
	if err != nil {
		return err
	}
	fmt.Println("queues,engines,kpps,mbps_at_64B,scratch_busy,sram_busy,sdram_busy")
	fmt.Printf("%d,%d,%.1f,%.1f,%.3f,%.3f,%.3f\n",
		queues, engines, res.Kpps, res.MbpsAt64B(),
		res.UnitBusy[ixp.Scratch], res.UnitBusy[ixp.SRAM], res.UnitBusy[ixp.SDRAM])
	return nil
}

type engineArgs struct {
	shards, parallel, flows, pool, pktBytes, ops int
	pktMix                                       string
	seed                                         uint64
	policy                                       string
	limit                                        int
	minth, maxth, maxp, wq                       float64
	egress                                       string
	quantum                                      int
	burst                                        int
	zipf                                         float64
	datapath                                     string
	delivery                                     string
	ringCap                                      int
	residence                                    int
	ports                                        int
	rate, burstBytes                             int64
	classes                                      int
	classEgress, classWeights                    string
	tenants                                      int
	tenantEgress, tenantWeights                  string
}

// parseLevelWeights turns "-class-weights 4,4,2,2" (or the tenant
// equivalent) into the per-unit weight slice the egress config takes
// (unit index order).
func parseLevelWeights(s, tier string, units int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > units {
		return nil, fmt.Errorf("%d %s weights for %d %ss", len(parts), tier, units, tier)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%s weight %q: %w", tier, p, err)
		}
		out[i] = w
	}
	return out, nil
}

// compLatEvery is how often a producer swaps a fire-and-forget post for a
// blocking enqueue to sample command completion latency.
const compLatEvery = 512

// runEngine drives the sharded concurrent engine: parallel producers offer
// packets across the flow space while matching consumers drain through the
// integrated egress scheduler, with the selected admission policy deciding
// drops under pool pressure. The CSV reports goodput plus the policy
// columns (drops, push-outs, peak occupancy), the ring-datapath telemetry
// (peak command-ring occupancy, completion latency), and the residence
// quantiles when -residence is set — shrink -pool to put the admission
// policy under stress.
func runEngine(a engineArgs) error {
	if a.parallel < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", a.parallel)
	}
	if a.ops < 1 {
		return fmt.Errorf("ops must be >= 1, got %d", a.ops)
	}
	if a.pktBytes < 1 {
		return fmt.Errorf("pkt must be >= 1, got %d", a.pktBytes)
	}
	var mixKind traffic.SizeMixKind
	switch a.pktMix {
	case "", "fixed":
		mixKind = traffic.MixFixed
	case "imix":
		mixKind = traffic.MixIMIX
	default:
		return fmt.Errorf("unknown pktmix %q (want fixed or imix)", a.pktMix)
	}
	// One probe instance sizes the shared payload buffer and prices the
	// bytes columns; producers draw their own seeded instances.
	mixProbe, err := traffic.NewSizeMix(traffic.SizeMixConfig{
		Kind: mixKind, Fixed: a.pktBytes, Seed: a.seed,
	})
	if err != nil {
		return err
	}
	if a.burst < 1 {
		a.burst = 1
	}
	if a.zipf != 0 && a.zipf <= 1 {
		return fmt.Errorf("zipf exponent must be > 1 (or 0 for uniform), got %g", a.zipf)
	}
	var ringMode bool
	switch a.datapath {
	case "sync":
	case "ring":
		ringMode = true
	default:
		return fmt.Errorf("unknown datapath %q (want sync or ring)", a.datapath)
	}
	// -delivery view swaps both ends of the datapath for the zero-copy
	// pipeline: producers reserve segment runs and fill them in place
	// (never handing the engine a buffer to copy), consumers take packet
	// views over the segment chains and release them after reading. In a
	// pure view run the copied_bytes CSV column is exactly 0.
	var viewMode bool
	switch a.delivery {
	case "", "copy":
	case "view":
		viewMode = true
	default:
		return fmt.Errorf("unknown delivery %q (want copy or view)", a.delivery)
	}
	if a.ports < 1 {
		return fmt.Errorf("ports must be >= 1, got %d", a.ports)
	}
	// Push-mode transmit: dedicated port workers instead of pull-loop
	// consumers, engaged by a multi-port layout or a shaper rate.
	pushMode := a.ports > 1 || a.rate > 0
	kind, err := policy.ParseKind(a.policy)
	if err != nil {
		return err
	}
	egKind, err := policy.ParseEgressKind(a.egress)
	if err != nil {
		return err
	}
	classKind, err := policy.ParseEgressKind(a.classEgress)
	if err != nil {
		return err
	}
	if a.classes < 0 {
		return fmt.Errorf("classes must be >= 0, got %d", a.classes)
	}
	classWeights, err := parseLevelWeights(a.classWeights, "class", a.classes)
	if err != nil {
		return err
	}
	tenantKind, err := policy.ParseEgressKind(a.tenantEgress)
	if err != nil {
		return err
	}
	if a.tenants < 0 {
		return fmt.Errorf("tenants must be >= 0, got %d", a.tenants)
	}
	tenantWeights, err := parseLevelWeights(a.tenantWeights, "tenant", a.tenants)
	if err != nil {
		return err
	}
	egCfg := policy.EgressConfig{Kind: egKind, QuantumBytes: a.quantum}
	if a.classes > 1 {
		egCfg = egCfg.WithLevel(policy.LevelSpec{
			Tier: policy.TierClass, Kind: classKind,
			Units: a.classes, Weights: classWeights,
		})
	}
	if a.tenants > 1 {
		egCfg = egCfg.WithLevel(policy.LevelSpec{
			Tier: policy.TierTenant, Kind: tenantKind,
			Units: a.tenants, Weights: tenantWeights,
		})
	}
	e, err := engine.New(engine.Config{
		Shards:      a.shards,
		NumFlows:    a.flows,
		NumSegments: a.pool,
		StoreData:   true,
		Admission: policy.Config{
			Kind: kind, Limit: a.limit,
			MinTh: a.minth, MaxTh: a.maxth, MaxP: a.maxp, Weight: a.wq,
			Seed: a.seed,
		},
		Egress:          egCfg,
		NumPorts:        a.ports,
		PortRate:        policy.ShaperConfig{RateBytesPerSec: a.rate, BurstBytes: a.burstBytes},
		RingCapacity:    a.ringCap,
		ResidenceSample: a.residence,
	})
	if err != nil {
		return err
	}
	if a.ports > 1 {
		for f := 0; f < a.flows; f++ {
			if err := e.SetFlowPort(uint32(f), f%a.ports); err != nil {
				return err
			}
		}
	}
	if a.classes > 1 {
		for f := 0; f < a.flows; f++ {
			if err := e.SetFlowClass(uint32(f), f%a.classes); err != nil {
				return err
			}
		}
	}
	// Tenants cut across classes: (flow / classes) % tenants, so every
	// tenant holds flows of every class and the two levels arbitrate
	// independently.
	tenantOf := func(f uint32) int {
		cdiv := a.classes
		if cdiv < 1 {
			cdiv = 1
		}
		return (int(f) / cdiv) % a.tenants
	}
	if a.tenants > 1 {
		for f := 0; f < a.flows; f++ {
			if err := e.SetFlowTenant(uint32(f), tenantOf(uint32(f))); err != nil {
				return err
			}
		}
	}
	// Per-class and per-tenant delivery tallies for the CSV blocks; the
	// flow→unit maps are the static spreads above, so the tallies index
	// directly.
	var classPkts, tenantPkts []atomic.Uint64
	if a.classes > 1 {
		classPkts = make([]atomic.Uint64, a.classes)
	}
	if a.tenants > 1 {
		tenantPkts = make([]atomic.Uint64, a.tenants)
	}
	countClass := func(f uint32) {
		if classPkts != nil {
			classPkts[int(f)%a.classes].Add(1)
		}
		if tenantPkts != nil {
			tenantPkts[tenantOf(f)].Add(1)
		}
	}
	if ringMode {
		if err := e.Start(); err != nil {
			return err
		}
	}
	perProducer := a.ops / a.parallel
	// One zeroed max-size payload shared by every producer; each packet is a
	// per-draw prefix slice of it. The engine copies payloads on enqueue and
	// nobody mutates the buffer, so sharing it read-only is safe on both
	// datapaths.
	payload := make([]byte, mixProbe.Max())
	var prodWG, consWG sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var peakResident atomic.Int64
	var peakRing atomic.Int64
	// Per-producer completion-latency histograms (1µs buckets to 4ms),
	// merged after the run.
	compLat := make([]*stats.Histogram, a.parallel)
	done := make(chan struct{})
	start := time.Now()

	for p := 0; p < a.parallel; p++ {
		compLat[p] = stats.NewHistogram(4096, 1000)
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			// Flow selection: a seeded uniform stride, or (with -zipf)
			// Zipf-skewed arrivals concentrating on few hot flows — the
			// workload where a shared pool beats a static split — with
			// -burst consecutive packets per flow either way.
			fdKind := traffic.FlowUniform
			if a.zipf > 1 {
				fdKind = traffic.FlowZipf
			}
			fd, err := traffic.NewFlowDist(traffic.FlowDistConfig{
				Kind: fdKind, Flows: a.flows, Skew: a.zipf,
				Burst: a.burst, Seed: a.seed + uint64(p),
			})
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			mix, err := traffic.NewSizeMix(traffic.SizeMixConfig{
				Kind: mixKind, Fixed: a.pktBytes, Seed: a.seed + uint64(p),
			})
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			// Write-in-place ingest for -delivery view: reserve the run,
			// scatter the payload into the reserved segment slices (the
			// copy here stands in for a NIC writing segments as they
			// arrive — the engine itself never copies), splice.
			reserve := func(f uint32, pkt []byte) error {
				r, err := e.ReservePacket(f, len(pkt))
				if err != nil {
					return err
				}
				off := 0
				r.Range(func(seg []byte) bool {
					off += copy(seg, pkt[off:])
					return true
				})
				return r.Commit()
			}
			for n := 0; n < perProducer; n++ {
				f := fd.Next()
				pkt := payload[:mix.Next()]
				var err error
				// Both datapaths sample the blocking call's latency on the
				// same 1-in-compLatEvery schedule, so the measurement
				// overhead (two clock reads and a histogram add) is charged
				// identically and the mpps columns stay comparable.
				switch sample := n%compLatEvery == 0; {
				case viewMode && sample:
					// Reserve+commit is always blocking; on the ring
					// datapath the sample times both command round trips.
					t0 := time.Now()
					err = reserve(f, pkt)
					compLat[p].Add(float64(time.Since(t0).Nanoseconds()))
				case viewMode:
					err = reserve(f, pkt)
				case ringMode && !sample:
					// Fire and forget; outcomes land in the counters.
					err = e.EnqueueAsync(f, pkt)
				case sample:
					// Blocking enqueue — on the ring datapath this is the
					// post-to-completion round trip, sampled as completion
					// latency; on the sync datapath it times the locked
					// call, for comparison.
					t0 := time.Now()
					_, err = e.EnqueuePacket(f, pkt)
					compLat[p].Add(float64(time.Since(t0).Nanoseconds()))
				default:
					_, err = e.EnqueuePacket(f, pkt)
				}
				switch {
				case err == nil:
				case errors.Is(err, engine.ErrAdmissionDrop):
					// Counted by the engine; the policy is the backpressure.
				case errors.Is(err, queue.ErrNoFreeSegments):
					// No admission policy: drop at the physical limit, as a
					// line card does when buffer memory is gone.
				default:
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(p)
	}

	switch {
	case pushMode && viewMode:
		// Push-mode zero-copy egress: the port workers hand the sink a
		// view per packet; the engine releases it when SendView returns.
		for p := 0; p < a.ports; p++ {
			if err := e.ServeViews(p, engine.SinkVFunc(func(_ int, d engine.DequeuedView) error {
				countClass(d.Flow)
				return nil
			})); err != nil {
				return err
			}
		}
	case pushMode:
		// Push-mode egress: one engine-owned worker per port delivers into
		// a releasing sink, paced by the per-port shaper.
		for p := 0; p < a.ports; p++ {
			if err := e.Serve(p, engine.SinkFunc(func(d engine.Dequeued) error {
				countClass(d.Flow)
				e.ReleaseBuffer(d.Data)
				return nil
			})); err != nil {
				return err
			}
		}
	default:
		for c := 0; c < a.parallel; c++ {
			consWG.Add(1)
			go func() {
				defer consWG.Done()
				for {
					var served int
					if viewMode {
						batch := e.DequeueNextViewBatch(64)
						for _, d := range batch {
							countClass(d.Flow)
						}
						e.ReleaseViews(batch)
						served = len(batch)
					} else {
						batch := e.DequeueNextBatch(64)
						for _, d := range batch {
							countClass(d.Flow)
							e.ReleaseBuffer(d.Data)
						}
						served = len(batch)
					}
					if served == 0 {
						select {
						case <-done:
							return
						default:
							// Yield so producers get CPU on few-core hosts;
							// without this the consumer burns its timeslice
							// polling an empty engine and the CSV measures
							// scheduler timeslices, not policy behavior.
							runtime.Gosched()
						}
					}
				}
			}()
		}
	}

	// Sample buffer and command-ring occupancy while the run is hot.
	sampler := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampler:
				return
			case <-tick.C:
				st := e.Stats()
				if r := int64(st.QueuedSegments); r > peakResident.Load() {
					peakResident.Store(r)
				}
				if r := int64(e.RingOccupancy()); r > peakRing.Load() {
					peakRing.Store(r)
				}
			}
		}
	}()

	prodWG.Wait()
	if ringMode {
		// Let the workers finish the async backlog before the cutoff
		// snapshot, so the resident column reflects buffered packets, not
		// commands still in flight in the rings.
		if r := int64(e.RingOccupancy()); r > peakRing.Load() {
			peakRing.Store(r)
		}
		if err := e.Drain(); err != nil {
			return err
		}
	}
	// Sample at end-of-offer: the resident column reports the backlog the
	// consumers still faced when the offered load stopped (not the
	// post-drain zero), and short runs never report an idle buffer.
	residentAtCutoff := e.Stats().QueuedSegments
	if int64(residentAtCutoff) > peakResident.Load() {
		peakResident.Store(int64(residentAtCutoff))
	}
	// Snapshot per-class/per-tenant deliveries at the same cutoff: while
	// the backlog persisted, the level disciplines governed who was
	// served, so the cutoff shares show the scheduler. The full-run
	// totals converge to the admission mix once the drain below delivers
	// everything that was ever admitted.
	cutClass := make([]uint64, len(classPkts))
	for c := range classPkts {
		cutClass[c] = classPkts[c].Load()
	}
	cutTenant := make([]uint64, len(tenantPkts))
	for t := range tenantPkts {
		cutTenant[t] = tenantPkts[t].Load()
	}
	close(done)
	consWG.Wait()
	close(sampler)
	if firstErr != nil {
		return firstErr
	}
	if pushMode {
		// Let the port workers transmit the cutoff backlog at their shaped
		// rate; the deadline only guards against rates so low the drain
		// would outlive anyone's patience.
		deadline := time.Now().Add(2 * time.Minute)
		for e.Stats().QueuedSegments > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	// Drain whatever the consumers left at the cutoff.
	for {
		if viewMode {
			batch := e.DequeueNextViewBatch(256)
			if len(batch) == 0 {
				break
			}
			for _, d := range batch {
				countClass(d.Flow)
			}
			e.ReleaseViews(batch)
			continue
		}
		batch := e.DequeueNextBatch(256)
		if len(batch) == 0 {
			break
		}
		for _, d := range batch {
			countClass(d.Flow)
			e.ReleaseBuffer(d.Data)
		}
	}
	elapsed := time.Since(start)
	st := e.Stats()
	portStats := e.PortStats()
	classStats := e.ClassStats()
	tenantStats := e.TenantStats()
	if err := e.CheckInvariants(); err != nil {
		return err
	}
	if err := e.Close(); err != nil {
		return err
	}
	lat := compLat[0]
	for _, h := range compLat[1:] {
		lat.Merge(h)
	}
	// Delivered bytes are priced at the mix's mean packet size (exact for
	// the fixed mix; the IMIX blend converges on its 7:4:1 mean).
	meanPkt := mixProbe.Mean()
	mpps := float64(st.DequeuedPackets) / elapsed.Seconds() / 1e6
	gbps := float64(st.DequeuedPackets) * meanPkt * 8 / elapsed.Seconds() / 1e9
	occPct := 100 * float64(peakResident.Load()) / float64(a.pool)
	if occPct > 100 {
		// Stats snapshots shards one critical section at a time, not as an
		// atomic cut, so a sampled sum can transiently exceed the pool.
		occPct = 100
	}
	delivMode := "copy"
	if viewMode {
		delivMode = "view"
	}
	fmt.Println("shards,parallel,flows,policy,egress,datapath,delivery,pktmix,pkt_bytes,offered,delivered,dropped,pushed_out,rejected,resident,peak_occupancy_pct,ring_occ_peak,comp_p50_us,comp_p99_us,res_p50_us,res_p99_us,copied_bytes,elapsed_s,mpps,gbps")
	fmt.Printf("%d,%d,%d,%s,%s,%s,%s,%s,%.0f,%d,%d,%d,%d,%d,%d,%.1f,%d,%.1f,%.1f,%.1f,%.1f,%d,%.3f,%.3f,%.3f\n",
		e.Shards(), a.parallel, a.flows, kind, egKind, a.datapath, delivMode, mixKind, meanPkt,
		uint64(a.parallel)*uint64(perProducer), st.DequeuedPackets,
		st.DroppedPackets, st.PushedOutPackets, st.Rejected,
		residentAtCutoff, occPct, peakRing.Load(),
		lat.Quantile(0.50)/1e3, lat.Quantile(0.99)/1e3,
		st.ResidenceP50Ns/1e3, st.ResidenceP99Ns/1e3,
		st.CopiedBytes, elapsed.Seconds(), mpps, gbps)
	if pushMode {
		// Per-port block: what each shaped output port actually carried,
		// and (for shaped ports) how tightly the pacer tracked the rate —
		// mean and p99 inter-departure gap in µs, zeros when unshaped.
		fmt.Println("port,rate_bps,tx_packets,tx_bytes,throttled,shaper_tokens,gap_samples,mean_gap_us,p99_gap_us,port_gbps")
		for _, p := range portStats {
			fmt.Printf("%d,%d,%d,%d,%d,%d,%d,%.1f,%.1f,%.3f\n",
				p.Port, p.RateBytesPerSec*8, p.TransmittedPackets, p.TransmittedBytes,
				p.Throttled, p.ShaperTokens,
				p.GapSamples, float64(p.MeanGapNs)/1e3, float64(p.P99GapNs)/1e3,
				float64(p.TransmittedBytes)*8/elapsed.Seconds()/1e9)
		}
	}
	if a.classes > 1 {
		// Per-class block, mirroring the per-port one: what each scheduling
		// class was actually granted under the class-level discipline.
		var total, cutTotal uint64
		for c := range classPkts {
			total += classPkts[c].Load()
			cutTotal += cutClass[c]
		}
		fmt.Println("class,class_kind,weight,delivered,delivered_bytes,share_pct,cutoff_delivered,cutoff_share_pct")
		for c := 0; c < a.classes; c++ {
			n := classPkts[c].Load()
			share := 0.0
			if total > 0 {
				share = 100 * float64(n) / float64(total)
			}
			cutShare := 0.0
			if cutTotal > 0 {
				cutShare = 100 * float64(cutClass[c]) / float64(cutTotal)
			}
			weight := 1
			if c < len(classStats) {
				weight = classStats[c].Weight
			}
			fmt.Printf("%d,%s,%d,%d,%d,%.1f,%d,%.1f\n",
				c, classKind, weight, n, uint64(float64(n)*meanPkt), share, cutClass[c], cutShare)
		}
	}
	if a.tenants > 1 {
		// Per-tenant block: what each tenant was granted under the
		// outermost level of the hierarchy.
		var total, cutTotal uint64
		for t := range tenantPkts {
			total += tenantPkts[t].Load()
			cutTotal += cutTenant[t]
		}
		fmt.Println("tenant,tenant_kind,weight,delivered,delivered_bytes,share_pct,cutoff_delivered,cutoff_share_pct")
		for t := 0; t < a.tenants; t++ {
			n := tenantPkts[t].Load()
			share := 0.0
			if total > 0 {
				share = 100 * float64(n) / float64(total)
			}
			cutShare := 0.0
			if cutTotal > 0 {
				cutShare = 100 * float64(cutTenant[t]) / float64(cutTotal)
			}
			weight := 1
			if t < len(tenantStats) {
				weight = tenantStats[t].Weight
			}
			fmt.Printf("%d,%s,%d,%d,%d,%.1f,%d,%.1f\n",
				t, tenantKind, weight, n, uint64(float64(n)*meanPkt), share, cutTenant[t], cutShare)
		}
	}
	return nil
}

func runNPU(copyEng string, clock float64) error {
	var e npu.CopyEngine
	switch copyEng {
	case "word":
		e = npu.WordCopy
	case "line":
		e = npu.LineCopy
	case "dma":
		e = npu.DMACopy
	default:
		return fmt.Errorf("unknown copy engine %q", copyEng)
	}
	enq := npu.EnqueueCost(true, e)
	deq := npu.DequeueCost(e)
	fmt.Println("copy_engine,clock_mhz,enqueue_cycles,dequeue_cycles,transit_mbps,scaled_transit_mbps")
	fmt.Printf("%s,%.0f,%d,%d,%.1f,%.1f\n",
		e, clock, enq.CPUCycles(), deq.CPUCycles(),
		npu.TransitMbps(e, clock), npu.ScaledTransitMbps(e, clock))
	return nil
}
