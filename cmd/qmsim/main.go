// Command qmsim runs a single parameterized experiment from the paper's
// models and prints CSV, for sweeps beyond the published configurations.
//
// Usage:
//
//	qmsim -model ddr    -banks 8 -sched reorder -rw -decisions 500000
//	qmsim -model mms    -load 5.5 -segments 5 -depth 2
//	qmsim -model ixp    -queues 128 -engines 4
//	qmsim -model npu    -copy line -clock 200
//	qmsim -model engine -shards 16 -parallel 8 -flows 32768 -ops 2000000
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"npqm/internal/core"
	"npqm/internal/ddr"
	"npqm/internal/engine"
	"npqm/internal/ixp"
	"npqm/internal/npu"
	"npqm/internal/queue"
)

func main() {
	var (
		model     = flag.String("model", "mms", "model to run: ddr, mms, ixp, npu, engine")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		banks     = flag.Int("banks", 8, "ddr: bank count")
		schedName = flag.String("sched", "reorder", "ddr: scheduler (fcfs, reorder)")
		rw        = flag.Bool("rw", false, "ddr: enable write-after-read turnaround")
		lookahead = flag.Int("lookahead", 1, "ddr: reorder lookahead depth")
		decisions = flag.Int("decisions", 400_000, "ddr: scheduling decisions")
		load      = flag.Float64("load", 4.8, "mms: offered load in Gbps")
		segments  = flag.Int("segments", 5, "mms: segments per packet burst")
		depth     = flag.Int("depth", 2, "mms: per-port FIFO depth")
		queues    = flag.Int("queues", 128, "ixp: queue count")
		engines   = flag.Int("engines", 6, "ixp: microengine count")
		copyEng   = flag.String("copy", "word", "npu: copy engine (word, line, dma)")
		clock     = flag.Float64("clock", 100, "npu: CPU clock in MHz")
		shards    = flag.Int("shards", 16, "engine: shard count (rounded to power of two)")
		parallel  = flag.Int("parallel", 4, "engine: producer goroutines (consumers match)")
		flows     = flag.Int("flows", 32768, "engine: flow-ID space")
		pool      = flag.Int("pool", 1<<17, "engine: total segment pool")
		pktBytes  = flag.Int("pkt", 320, "engine: packet size in bytes")
		ops       = flag.Int("ops", 1_000_000, "engine: packets to push through")
	)
	flag.Parse()

	var err error
	switch *model {
	case "ddr":
		err = runDDR(*banks, *schedName, *rw, *lookahead, *seed, *decisions)
	case "mms":
		err = runMMS(*load, *segments, *depth, *seed)
	case "ixp":
		err = runIXP(*queues, *engines)
	case "npu":
		err = runNPU(*copyEng, *clock)
	case "engine":
		err = runEngine(*shards, *parallel, *flows, *pool, *pktBytes, *ops)
	default:
		err = fmt.Errorf("unknown model %q (want ddr, mms, ixp, npu, engine)", *model)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmsim: %v\n", err)
		os.Exit(1)
	}
}

func runDDR(banks int, schedName string, rw bool, lookahead int, seed uint64, decisions int) error {
	var sched ddr.SchedulerKind
	switch schedName {
	case "fcfs":
		sched = ddr.FCFSRoundRobin
	case "reorder":
		sched = ddr.Reorder
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}
	res, err := ddr.RunSaturated(ddr.Config{
		Banks: banks, Scheduler: sched, RWInterleave: rw, LookAhead: lookahead,
	}, seed, decisions)
	if err != nil {
		return err
	}
	fmt.Println("banks,scheduler,rw,lookahead,loss,utilization,goodput_gbps,conflict_halfslots,turnaround_halfslots")
	fmt.Printf("%d,%s,%v,%d,%.4f,%.4f,%.3f,%d,%d\n",
		banks, sched, rw, lookahead, res.Loss, res.Utilization, res.GoodputGbps(),
		res.ConflictStalls, res.TurnaroundStalls)
	return nil
}

func runMMS(load float64, segments, depth int, seed uint64) error {
	p, err := core.RunLoad(core.LoadConfig{
		LoadGbps:       load,
		PacketSegments: segments,
		Seed:           seed,
		MMS:            core.Config{FIFODepth: depth},
	})
	if err != nil {
		return err
	}
	fmt.Println("load_gbps,fifo_cycles,exec_cycles,data_cycles,total_cycles,achieved_gbps,bank_conflict_rate")
	fmt.Printf("%.2f,%.1f,%.1f,%.1f,%.1f,%.3f,%.3f\n",
		p.LoadGbps, p.FIFODelay, p.ExecDelay, p.DataDelay, p.TotalDelay, p.AchievedGbps, p.BankConflict)
	return nil
}

func runIXP(queues, engines int) error {
	p, err := ixp.ProfileForQueues(queues)
	if err != nil {
		return err
	}
	res, err := ixp.Run(ixp.Config{Profile: p, Engines: engines})
	if err != nil {
		return err
	}
	fmt.Println("queues,engines,kpps,mbps_at_64B,scratch_busy,sram_busy,sdram_busy")
	fmt.Printf("%d,%d,%.1f,%.1f,%.3f,%.3f,%.3f\n",
		queues, engines, res.Kpps, res.MbpsAt64B(),
		res.UnitBusy[ixp.Scratch], res.UnitBusy[ixp.SRAM], res.UnitBusy[ixp.SDRAM])
	return nil
}

// runEngine drives the sharded concurrent engine with parallel producer
// and consumer goroutines and reports aggregate packet throughput — the
// software-scaling counterpart of the paper's hardware tables.
func runEngine(shards, parallel, flows, pool, pktBytes, ops int) error {
	if parallel < 1 {
		return fmt.Errorf("parallel must be >= 1, got %d", parallel)
	}
	if ops < 1 {
		return fmt.Errorf("ops must be >= 1, got %d", ops)
	}
	e, err := engine.New(engine.Config{
		Shards:      shards,
		NumFlows:    flows,
		NumSegments: pool,
		StoreData:   true,
	})
	if err != nil {
		return err
	}
	perProducer := ops / parallel
	pkt := make([]byte, pktBytes)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	start := time.Now()
	for p := 0; p < parallel; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Each worker is a producer/consumer pair: enqueue onto a
			// strided flow, then drain the flow it filled, so the pool
			// never exhausts and every packet transits the engine once.
			var i uint32
			for n := 0; n < perProducer; n++ {
				f := uint32(p)*2654435761 + i*40503
				i++
				f %= uint32(flows)
				if _, err := e.EnqueuePacket(f, pkt); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				data, err := e.DequeuePacket(f)
				if err != nil && !errors.Is(err, queue.ErrQueueEmpty) {
					errOnce.Do(func() { firstErr = err })
					return
				}
				if err == nil {
					e.Release(data)
				}
			}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	elapsed := time.Since(start)
	st := e.Stats()
	if err := e.CheckInvariants(); err != nil {
		return err
	}
	mpps := float64(st.DequeuedPackets) / elapsed.Seconds() / 1e6
	gbps := float64(st.DequeuedPackets) * float64(pktBytes) * 8 / elapsed.Seconds() / 1e9
	fmt.Println("shards,parallel,flows,pkt_bytes,packets,elapsed_s,mpps,gbps,rejected")
	fmt.Printf("%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%d\n",
		e.Shards(), parallel, flows, pktBytes, st.DequeuedPackets,
		elapsed.Seconds(), mpps, gbps, st.Rejected)
	return nil
}

func runNPU(copyEng string, clock float64) error {
	var e npu.CopyEngine
	switch copyEng {
	case "word":
		e = npu.WordCopy
	case "line":
		e = npu.LineCopy
	case "dma":
		e = npu.DMACopy
	default:
		return fmt.Errorf("unknown copy engine %q", copyEng)
	}
	enq := npu.EnqueueCost(true, e)
	deq := npu.DequeueCost(e)
	fmt.Println("copy_engine,clock_mhz,enqueue_cycles,dequeue_cycles,transit_mbps,scaled_transit_mbps")
	fmt.Printf("%s,%.0f,%d,%d,%.1f,%.1f\n",
		e, clock, enq.CPUCycles(), deq.CPUCycles(),
		npu.TransitMbps(e, clock), npu.ScaledTransitMbps(e, clock))
	return nil
}
