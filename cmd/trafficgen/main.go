// Command trafficgen emits a synthetic arrival trace as CSV, using the same
// generators the experiments run (CBR, Poisson, bursty on-off; 64-byte,
// IMIX or uniform packet sizes).
//
// Usage:
//
//	trafficgen -rate 2.5 -flows 1024 -proc onoff -sizes imix -n 10000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"npqm/internal/traffic"
)

func main() {
	var (
		rate  = flag.Float64("rate", 1.0, "offered load in Gbps")
		flows = flag.Int("flows", 1024, "number of active flows")
		proc  = flag.String("proc", "poisson", "arrival process: cbr, poisson, onoff")
		sizes = flag.String("sizes", "64", "packet sizes: 64, imix, uniform")
		n     = flag.Int("n", 10000, "packets to generate")
		seed  = flag.Uint64("seed", 1, "generator seed")
		burst = flag.Int("burst", 8, "onoff: mean burst length in packets")
	)
	flag.Parse()

	cfg := traffic.Config{RateGbps: *rate, Flows: *flows, Seed: *seed, BurstMean: *burst}
	switch *proc {
	case "cbr":
		cfg.Proc = traffic.CBR
	case "poisson":
		cfg.Proc = traffic.Poisson
	case "onoff":
		cfg.Proc = traffic.OnOff
	default:
		fmt.Fprintf(os.Stderr, "trafficgen: unknown process %q\n", *proc)
		os.Exit(1)
	}
	switch *sizes {
	case "64":
		cfg.Sizes = traffic.Min64
	case "imix":
		cfg.Sizes = traffic.IMIX
	case "uniform":
		cfg.Sizes = traffic.Uniform
	default:
		fmt.Fprintf(os.Stderr, "trafficgen: unknown size distribution %q\n", *sizes)
		os.Exit(1)
	}

	g, err := traffic.NewGenerator(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trafficgen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "time_ns,flow,bytes")
	arrivals := g.Take(*n)
	for _, a := range arrivals {
		fmt.Fprintf(w, "%.1f,%d,%d\n", a.TimeNs, a.Flow, a.Bytes)
	}
	fmt.Fprintf(os.Stderr, "trafficgen: %d packets, measured %.3f Gbps\n",
		len(arrivals), traffic.MeasuredGbps(arrivals))
}
