module npqm

go 1.24
