// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in DESIGN.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark both exercises the model under test (so -benchmem and
// ns/op are meaningful for the simulator itself) and reports the headline
// reproduction metric via b.ReportMetric, so the paper-facing number is
// visible in the benchmark output.
package npqm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/core"
	"npqm/internal/ddr"
	"npqm/internal/ixp"
	"npqm/internal/npu"
	"npqm/internal/queue"
	"npqm/internal/segstore"
	"npqm/internal/traffic"
)

// benchFlowDist builds the uniform flow picker the engine benchmarks share
// (see internal/traffic): a multiplicative stride seeded per goroutine so
// concurrent workers mostly land on different shards.
func benchFlowDist(b *testing.B, seed uint64) *traffic.FlowDist {
	fd, err := traffic.NewFlowDist(traffic.FlowDistConfig{Flows: DefaultFlows, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return fd
}

// benchZipfSkew is the Zipf exponent of the skewed benchmark dimension:
// heavy enough that a handful of flows (and so a handful of shards)
// carry most of the traffic — the load shape work stealing exists for.
const benchZipfSkew = 1.3

// benchFlowDistKind builds the picker for a named benchmark dimension:
// "uniform" (the stride above) or "zipf" (flow 0 hottest).
func benchFlowDistKind(b *testing.B, seed uint64, dist string) *traffic.FlowDist {
	if dist != "zipf" {
		return benchFlowDist(b, seed)
	}
	fd, err := traffic.NewFlowDist(traffic.FlowDistConfig{
		Kind: traffic.FlowZipf, Flows: DefaultFlows, Skew: benchZipfSkew, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return fd
}

// benchName appends the non-default dimension values, so pre-existing
// benchmark names (uniform traffic) stay comparable across BENCH_N.json
// generations.
func benchName(base, dist string) string {
	if dist != "uniform" {
		base += "/dist=" + dist
	}
	return base
}

// BenchmarkTable1DDRSchedulers regenerates the DDR throughput-loss cells:
// one sub-benchmark per (banks, scheduler, penalty-model) configuration.
func BenchmarkTable1DDRSchedulers(b *testing.B) {
	for _, banks := range []int{1, 4, 8, 12, 16} {
		for _, sched := range []ddr.SchedulerKind{ddr.FCFSRoundRobin, ddr.Reorder} {
			for _, rw := range []bool{false, true} {
				name := fmt.Sprintf("banks=%d/%v/rw=%v", banks, sched, rw)
				b.Run(name, func(b *testing.B) {
					var loss float64
					for i := 0; i < b.N; i++ {
						res, err := ddr.RunSaturated(ddr.Config{
							Banks: banks, Scheduler: sched, RWInterleave: rw,
						}, 12345, 20_000)
						if err != nil {
							b.Fatal(err)
						}
						loss = res.Loss
					}
					b.ReportMetric(loss, "loss")
				})
			}
		}
	}
}

// BenchmarkTable2IXP1200 regenerates the IXP packet-rate cells.
func BenchmarkTable2IXP1200(b *testing.B) {
	for _, queues := range []int{16, 128, 1024} {
		for _, engines := range []int{1, 6} {
			b.Run(fmt.Sprintf("queues=%d/engines=%d", queues, engines), func(b *testing.B) {
				p, err := ixp.ProfileForQueues(queues)
				if err != nil {
					b.Fatal(err)
				}
				var kpps float64
				for i := 0; i < b.N; i++ {
					res, err := ixp.Run(ixp.Config{Profile: p, Engines: engines, Packets: 500})
					if err != nil {
						b.Fatal(err)
					}
					kpps = res.Kpps
				}
				b.ReportMetric(kpps, "Kpps")
			})
		}
	}
}

// BenchmarkTable3NPUOps regenerates the reference-NPU cycle counts for all
// three copy engines.
func BenchmarkTable3NPUOps(b *testing.B) {
	for _, engine := range npu.CopyEngines() {
		b.Run(engine.String(), func(b *testing.B) {
			var pair int
			for i := 0; i < b.N; i++ {
				enq := npu.EnqueueCost(true, engine)
				deq := npu.DequeueCost(engine)
				pair = enq.CPUCycles() + deq.CPUCycles()
			}
			b.ReportMetric(float64(pair), "cycles/pkt")
			b.ReportMetric(npu.TransitMbps(engine, npu.ClockMHz), "Mbps")
		})
	}
}

// BenchmarkTable4MMSCommands measures the functional execution of each MMS
// command and reports its modeled hardware latency.
func BenchmarkTable4MMSCommands(b *testing.B) {
	for _, cmd := range core.Commands() {
		b.Run(cmd.String(), func(b *testing.B) {
			m, err := core.New(core.Config{NumQueues: 64, NumSegments: 4096})
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, queue.SegmentBytes)
			// Pre-populate so every command has a target.
			for q := queue.QueueID(0); q < 64; q++ {
				for s := 0; s < 8; s++ {
					if _, err := m.Do(core.Request{Cmd: core.CmdEnqueue, Queue: q, Payload: payload, EOP: true}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queue.QueueID(i % 64)
				req := core.Request{Cmd: cmd, Queue: q, Dest: (q + 1) % 64, Payload: payload, EOP: true, Length: 32}
				if _, err := m.Do(req); err != nil {
					b.Fatal(err)
				}
				// Keep queue populations steady: destructive commands are
				// balanced by an enqueue, and the enqueue by a dequeue, so
				// the pool neither drains nor exhausts at any b.N.
				switch cmd {
				case core.CmdDequeue, core.CmdDelete:
					if _, err := m.Do(core.Request{Cmd: core.CmdEnqueue, Queue: q, Payload: payload, EOP: true}); err != nil {
						b.Fatal(err)
					}
				case core.CmdEnqueue:
					if _, err := m.Do(core.Request{Cmd: core.CmdDequeue, Queue: q}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(cmd.Cycles()), "hw-cycles")
		})
	}
}

// BenchmarkTable5MMSLoad regenerates the delay decomposition rows.
func BenchmarkTable5MMSLoad(b *testing.B) {
	for _, load := range core.Table5Loads {
		b.Run(fmt.Sprintf("load=%.2fGbps", load), func(b *testing.B) {
			var p core.LoadPoint
			for i := 0; i < b.N; i++ {
				var err error
				p, err = core.RunLoad(core.LoadConfig{
					LoadGbps: load, Seed: 7,
					WarmupCommands: 500, MeasureCommands: 5_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.FIFODelay, "fifo-cycles")
			b.ReportMetric(p.DataDelay, "data-cycles")
			b.ReportMetric(p.TotalDelay, "total-cycles")
		})
	}
}

// BenchmarkFig1NPUPath walks a packet through the Figure 1 software path:
// free-list pop, segment link, copy — the full enqueue+dequeue transit.
func BenchmarkFig1NPUPath(b *testing.B) {
	qm, err := queue.New(queue.Config{NumQueues: 1024, NumSegments: 8192, StoreData: true})
	if err != nil {
		b.Fatal(err)
	}
	pkt := make([]byte, 64)
	var cycles int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queue.QueueID(i % 1024)
		if _, err := qm.EnqueuePacket(q, pkt); err != nil {
			b.Fatal(err)
		}
		if _, _, err := qm.DequeuePacket(q); err != nil {
			b.Fatal(err)
		}
		cycles = npu.EnqueueCost(true, npu.WordCopy).CPUCycles() + npu.DequeueCost(npu.WordCopy).CPUCycles()
	}
	b.ReportMetric(float64(cycles), "hw-cycles/pkt")
}

// BenchmarkFig2MMSPipeline drives packets through all five Figure 2 blocks:
// segmentation, scheduler-ordered enqueues, DQM, DMC accounting, reassembly.
func BenchmarkFig2MMSPipeline(b *testing.B) {
	m, err := core.New(core.Config{NumQueues: 1024, NumSegments: 16384, StoreData: true})
	if err != nil {
		b.Fatal(err)
	}
	pkt := make([]byte, 320) // 5 segments, the Table 5 reference burst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queue.QueueID(i % 1024)
		if _, err := m.Seg.Push(q, pkt); err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.Reasm.Pop(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLookAhead quantifies the DESIGN.md ablation: how much a
// deeper reorder window would improve on the paper's head-only scheduler.
func BenchmarkAblationLookAhead(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lookahead=%d", depth), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				res, err := ddr.RunSaturated(ddr.Config{
					Banks: 4, Scheduler: ddr.Reorder, LookAhead: depth,
				}, 5, 20_000)
				if err != nil {
					b.Fatal(err)
				}
				loss = res.Loss
			}
			b.ReportMetric(loss, "loss")
		})
	}
}

// BenchmarkAblationFIFODepth quantifies the MMS FIFO sizing trade-off that
// shapes Table 5's saturation row.
func BenchmarkAblationFIFODepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var p core.LoadPoint
			for i := 0; i < b.N; i++ {
				var err error
				p, err = core.RunLoad(core.LoadConfig{
					LoadGbps: 6.14, Seed: 7,
					MMS:            core.Config{FIFODepth: depth},
					WarmupCommands: 500, MeasureCommands: 5_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.FIFODelay, "fifo-cycles")
		})
	}
}

// BenchmarkAblationBanks sweeps DDR bank counts beyond the paper's 16 to
// show diminishing returns of interleaving.
func BenchmarkAblationBanks(b *testing.B) {
	for _, banks := range []int{2, 8, 32, 64} {
		b.Run(fmt.Sprintf("banks=%d", banks), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				res, err := ddr.RunSaturated(ddr.Config{
					Banks: banks, Scheduler: ddr.Reorder, RWInterleave: true,
				}, 5, 20_000)
				if err != nil {
					b.Fatal(err)
				}
				loss = res.Loss
			}
			b.ReportMetric(loss, "loss")
		})
	}
}

// BenchmarkEngineSharded sweeps both datapaths over the shard counts with
// GOMAXPROCS producer goroutines, so the speedup of sharding — and of the
// asynchronous command rings over lock-per-operation calls — is measured
// rather than asserted. The sync variant is the seed's per-packet round
// trip: every call takes the shard mutex, so producers serialize on lock
// handoff as cores contend. The ring variant is the paper's structure:
// producers post fire-and-forget enqueue commands and collect the packets
// with one batched dequeue (one completion wakeup per burst); per-flow
// FIFO through the ring guarantees every dequeue finds its packet.
// Throughput compares via MB/s (the ring variant moves a 64-packet burst
// per iteration).
func BenchmarkEngineSharded(b *testing.B) {
	const burst = 64
	for _, dist := range []string{"uniform", "zipf"} {
		for _, datapath := range []string{"sync", "ring", "ring-steal"} {
			if datapath == "ring-steal" && dist != "zipf" {
				// Stealing exists for skewed load; the uniform matrix stays
				// the BENCH_6-comparable baseline.
				continue
			}
			for _, shards := range []int{1, 4, 16, 64} {
				b.Run(benchName(fmt.Sprintf("datapath=%s/shards=%d", datapath, shards), dist), func(b *testing.B) {
					// Size the pool so the ring variant's worst-case in-flight
					// demand (every producer holding a full burst of 5-segment
					// packets) always fits: silent pool rejections on the
					// fire-and-forget path would otherwise fail the paired
					// dequeue on high-core machines.
					pool := 1 << 17
					if need := runtime.GOMAXPROCS(0) * 4 * burst * 5 * 2; need > pool {
						pool = need
					}
					cm, err := NewConcurrentEngine(ConcurrentConfig{
						Flows:     DefaultFlows,
						Segments:  pool,
						Shards:    shards,
						WorkSteal: datapath == "ring-steal",
					})
					if err != nil {
						b.Fatal(err)
					}
					pkt := make([]byte, 320) // 5 segments, the Table 5 reference burst
					var gid atomic.Uint32
					// Several producer goroutines per core: the datapaths are
					// being compared exactly on how they behave when producers
					// outnumber cores — lock handoff versus command posting.
					b.SetParallelism(4)
					if datapath == "sync" {
						b.SetBytes(int64(len(pkt)))
						b.RunParallel(func(pb *testing.PB) {
							fd := benchFlowDistKind(b, uint64(gid.Add(1)), dist)
							for pb.Next() {
								f := fd.Next()
								if _, err := cm.EnqueuePacket(f, pkt); err != nil {
									b.Error(err)
									return
								}
								data, err := cm.DequeuePacket(f)
								if err != nil {
									b.Error(err)
									return
								}
								cm.ReleaseBuffer(data)
							}
						})
						return
					}
					if err := cm.Start(); err != nil {
						b.Fatal(err)
					}
					defer cm.Close()
					b.SetBytes(int64(len(pkt) * burst))
					b.RunParallel(func(pb *testing.PB) {
						fd := benchFlowDistKind(b, uint64(gid.Add(1)), dist)
						flows := make([]uint32, burst)
						for pb.Next() {
							for j := range flows {
								f := fd.Next()
								flows[j] = f
								if err := cm.EnqueueAsync(f, pkt); err != nil {
									b.Error(err)
									return
								}
							}
							pkts, errs := cm.DequeueBatch(flows)
							for j, err := range errs {
								if err != nil {
									b.Error(err)
									return
								}
								cm.ReleaseBuffer(pkts[j])
							}
						}
					})
				})
			}
		}
	}
}

// BenchmarkEngineShardedPipeline measures the two datapaths in the shape
// the paper's architecture is actually built for: an ingress/egress
// pipeline, with producer goroutines offering packets while separate
// consumers drain through the integrated egress scheduler. On the sync
// datapath producers and consumers contend on the shard mutexes; on the
// ring datapath producers post fire-and-forget commands and the per-shard
// workers execute them run-to-completion. The headline metric is
// Mdeliv/s — packets actually delivered per second (drops under pool
// pressure are excluded, so a datapath cannot look fast by shedding
// load); deliv/op reports the delivered fraction of offered packets.
func BenchmarkEngineShardedPipeline(b *testing.B) {
	const drainBatch = 64
	for _, dist := range []string{"uniform", "zipf"} {
		for _, datapath := range []string{"sync", "ring", "ring-steal"} {
			if datapath == "ring-steal" && dist != "zipf" {
				continue // stealing is the skewed-load variant
			}
			for _, shards := range []int{1, 4, 16, 64} {
				b.Run(benchName(fmt.Sprintf("datapath=%s/shards=%d", datapath, shards), dist), func(b *testing.B) {
					cm, err := NewConcurrentEngine(ConcurrentConfig{
						Flows:     DefaultFlows,
						Segments:  1 << 17,
						Shards:    shards,
						WorkSteal: datapath == "ring-steal",
					})
					if err != nil {
						b.Fatal(err)
					}
					ring := datapath != "sync"
					if ring {
						if err := cm.Start(); err != nil {
							b.Fatal(err)
						}
						defer cm.Close()
					}
					stop := make(chan struct{})
					var consWG sync.WaitGroup
					for c := 0; c < 2; c++ {
						consWG.Add(1)
						go func() {
							defer consWG.Done()
							for {
								out := cm.DequeueNextBatch(drainBatch)
								for _, d := range out {
									cm.ReleaseBuffer(d.Data)
								}
								if len(out) == 0 {
									select {
									case <-stop:
										return
									default:
										runtime.Gosched()
									}
								}
							}
						}()
					}
					pkt := make([]byte, 320)
					// Watermark flow control for the fire-and-forget producers:
					// pause posting while the pool runs low, as a NIC driver
					// paces against its descriptor ring. Without it the async
					// path degenerates into a drop machine under a slow egress
					// and the comparison would reward load shedding. The
					// watermark includes the worst-case overshoot of the
					// 32-packet amortized check below (producers × window × 5
					// segments), so high-core machines stay rejection-free.
					lowWater := (1<<17)/8 + runtime.GOMAXPROCS(0)*4*32*5
					var gid atomic.Uint32
					b.SetParallelism(4)
					b.ResetTimer()
					start := time.Now()
					b.RunParallel(func(pb *testing.PB) {
						fd := benchFlowDistKind(b, uint64(gid.Add(1)), dist)
						pace := 0
						for pb.Next() {
							f := fd.Next()
							if ring {
								// Watermark check amortized over a small window:
								// the scan reads every shard's mirror and ring,
								// and paying it per packet would charge O(shards)
								// loads to the ring datapath only. In-flight ring
								// commands are demand the pool check cannot see
								// yet; pace against both.
								if pace == 0 {
									for cm.FreeSegments() < lowWater+cm.RingOccupancy()*5 {
										runtime.Gosched()
									}
									pace = 32
								}
								pace--
								if err := cm.EnqueueAsync(f, pkt); err != nil {
									b.Error(err)
									return
								}
								continue
							}
							for {
								_, err := cm.EnqueuePacket(f, pkt)
								if err == nil {
									break
								}
								if !errors.Is(err, ErrNoFreeSegments) {
									b.Error(err)
									return
								}
								runtime.Gosched() // pool full: wait for the consumers
							}
						}
					})
					elapsed := time.Since(start)
					b.StopTimer()
					close(stop)
					consWG.Wait()
					// Snapshot deliveries before the post-window drain: packets
					// still buffered or in flight at the cutoff must not count
					// toward the timed window's delivery rate, or a datapath
					// could look fast by buffering instead of delivering.
					window := cm.Stats().DequeuedPackets
					if ring {
						if err := cm.Drain(); err != nil {
							b.Fatal(err)
						}
					}
					for {
						out := cm.DequeueNextBatch(256)
						if len(out) == 0 {
							break
						}
						for _, d := range out {
							cm.ReleaseBuffer(d.Data)
						}
					}
					st := cm.Stats()
					b.ReportMetric(float64(window)/elapsed.Seconds()/1e6, "Mdeliv/s")
					b.ReportMetric(float64(st.DequeuedPackets)/float64(b.N), "deliv/op")
					b.ReportMetric(float64(st.Rejected)/float64(b.N), "rej/op")
				})
			}
		}
	}
}

// BenchmarkEnginePorts measures the port-level transmit subsystem against
// the pull loop it replaces, at 1/4/16 output ports. Producers offer
// packets with pool-watermark pacing while the egress side drains one of
// three ways: "pull" is the pre-port baseline — one goroutine per port
// calling DequeueNextBatch; "push" registers a per-port Sink and lets the
// engine's port workers deliver (the acceptance bar is push within 10% of
// pull); "shaped" adds a 1 GiB/s-per-port token bucket, measuring the
// shaper's bookkeeping overhead rather than actual throttling. The
// headline metric is Mdeliv/s — packets delivered inside the timed
// window.
func BenchmarkEnginePorts(b *testing.B) {
	const drainBatch = 64
	for _, mode := range []string{"pull", "push", "shaped"} {
		for _, ports := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("mode=%s/ports=%d", mode, ports), func(b *testing.B) {
				cfg := ConcurrentConfig{
					Flows:    DefaultFlows,
					Segments: 1 << 17,
					Shards:   8,
					Ports:    ports,
				}
				if mode == "shaped" {
					cfg.PortRate = PortShaper(1<<30, 1<<20)
				}
				cm, err := NewConcurrentEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < DefaultFlows; f++ {
					if err := cm.SetFlowPort(uint32(f), f%ports); err != nil {
						b.Fatal(err)
					}
				}
				stop := make(chan struct{})
				var consWG sync.WaitGroup
				if mode == "pull" {
					for c := 0; c < ports; c++ {
						consWG.Add(1)
						go func() {
							defer consWG.Done()
							for {
								out := cm.DequeueNextBatch(drainBatch)
								for _, d := range out {
									cm.ReleaseBuffer(d.Data)
								}
								if len(out) == 0 {
									select {
									case <-stop:
										return
									default:
										runtime.Gosched()
									}
								}
							}
						}()
					}
				} else {
					for p := 0; p < ports; p++ {
						if err := cm.Serve(p, SinkFunc(func(d DequeuedPacket) error {
							cm.ReleaseBuffer(d.Data)
							return nil
						})); err != nil {
							b.Fatal(err)
						}
					}
				}
				pkt := make([]byte, 320)
				// Watermark flow control as in the pipeline benchmark: pace
				// producers against pool occupancy so no mode can look fast
				// by shedding load at the physical limit.
				lowWater := (1 << 17) / 8
				var gid atomic.Uint32
				b.SetParallelism(2)
				b.ResetTimer()
				start := time.Now()
				b.RunParallel(func(pb *testing.PB) {
					fd := benchFlowDist(b, uint64(gid.Add(1)))
					for pb.Next() {
						f := fd.Next()
						for {
							_, err := cm.EnqueuePacket(f, pkt)
							if err == nil {
								break
							}
							if !errors.Is(err, ErrNoFreeSegments) {
								b.Error(err)
								return
							}
							if cm.FreeSegments() < lowWater {
								runtime.Gosched() // pool full: wait for egress
								continue
							}
							runtime.Gosched()
						}
					}
				})
				elapsed := time.Since(start)
				b.StopTimer()
				// Deliveries inside the timed window only — snapshot before
				// any consumer is told to stop, so pull-mode's exit-path
				// backlog drain cannot count where push-mode's would not and
				// skew the pull-vs-push comparison.
				window := cm.Stats().DequeuedPackets
				close(stop)
				consWG.Wait()
				deadline := time.Now().Add(30 * time.Second)
				for cm.Stats().QueuedSegments > 0 && time.Now().Before(deadline) {
					if mode == "pull" {
						out := cm.DequeueNextBatch(256)
						for _, d := range out {
							cm.ReleaseBuffer(d.Data)
						}
					} else {
						time.Sleep(time.Millisecond)
					}
				}
				if err := cm.Close(); err != nil {
					b.Fatal(err)
				}
				st := cm.Stats()
				if mode != "pull" && st.TransmittedPackets != st.DequeuedPackets {
					b.Fatalf("port workers transmitted %d of %d dequeued packets",
						st.TransmittedPackets, st.DequeuedPackets)
				}
				b.ReportMetric(float64(window)/elapsed.Seconds()/1e6, "Mdeliv/s")
				b.ReportMetric(float64(st.Throttled)/float64(b.N), "throttle/op")
			})
		}
	}
}

// BenchmarkEngineHierarchy measures the level-stack scheduler on the
// push-mode transmit path: "flat" is the single-list baseline (depth-0
// stack — no per-level cost at all), "classes8" layers eight WRR classes
// over the same single port, "tenants8" layers eight WRR tenants outside
// those classes (the full three-level tenant → class → flow stack), and
// "wide" spreads the flows over 1024 shaped ports in eight classes — the
// configuration the per-shard timing-wheel pacer exists for (one pacer
// goroutine per shard, not one worker per port). The shaped rate sits far
// above the offered load so the benchmark measures scheduling and pacing
// bookkeeping, not throttling. The headline metric is Mdeliv/s — packets
// delivered inside the timed window; benchstat gates the ns/op of all
// cases in CI. (The ~10% hierarchy acceptance bar is measured in the
// drain-dominated qmsim scenario recorded in EXPERIMENTS.md, not here:
// under this benchmark's pool-full lockstep every delivery admits one
// packet, which taxes the sparse-port wakeup path hardest on few-core
// hosts.)
func BenchmarkEngineHierarchy(b *testing.B) {
	cases := []struct {
		name   string
		ports  int
		shaped bool
		egress EgressConfig
	}{
		{"flat", 1, false, RoundRobinEgress()},
		{"classes8", 1, false, ClassLayer(RoundRobinEgress(), 8, EgressWRR, 4, 4, 2, 2, 1, 1, 1, 1)},
		{"tenants8", 1, false, TenantLayer(
			ClassLayer(RoundRobinEgress(), 8, EgressWRR, 4, 4, 2, 2, 1, 1, 1, 1),
			8, EgressWRR, 4, 4, 2, 2, 1, 1, 1, 1)},
		{"wide", 1024, true, ClassLayer(RoundRobinEgress(), 8, EgressWRR, 4, 4, 2, 2, 1, 1, 1, 1)},
	}
	for _, dist := range []string{"uniform", "zipf"} {
		for _, tc := range cases {
			b.Run(benchName(tc.name, dist), func(b *testing.B) {
				cfg := ConcurrentConfig{
					Flows:    DefaultFlows,
					Segments: 1 << 17,
					Shards:   8,
					Ports:    tc.ports,
					Egress:   tc.egress,
				}
				if tc.shaped {
					cfg.PortRate = PortShaper(1<<30, 1<<20)
				}
				cm, err := NewConcurrentEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < DefaultFlows; f++ {
					if tc.ports > 1 {
						if err := cm.SetFlowPort(uint32(f), f%tc.ports); err != nil {
							b.Fatal(err)
						}
					}
					if nc := cm.NumClasses(); nc > 1 {
						if err := cm.SetFlowClass(uint32(f), f%nc); err != nil {
							b.Fatal(err)
						}
					}
					// Tenants cut across classes ((f/8)%8) so both levels
					// actually rotate instead of collapsing onto one axis.
					if nt := cm.NumTenants(); nt > 1 {
						if err := cm.SetFlowTenant(uint32(f), (f/8)%nt); err != nil {
							b.Fatal(err)
						}
					}
				}
				for p := 0; p < tc.ports; p++ {
					if err := cm.Serve(p, SinkFunc(func(d DequeuedPacket) error {
						cm.ReleaseBuffer(d.Data)
						return nil
					})); err != nil {
						b.Fatal(err)
					}
				}
				pkt := make([]byte, 320)
				// Watermark flow control as in the ports benchmark: pace
				// producers against pool occupancy so no configuration can look
				// fast by shedding load.
				lowWater := (1 << 17) / 8
				var gid atomic.Uint32
				b.SetParallelism(2)
				b.ResetTimer()
				start := time.Now()
				b.RunParallel(func(pb *testing.PB) {
					fd := benchFlowDistKind(b, uint64(gid.Add(1)), dist)
					for pb.Next() {
						f := fd.Next()
						for {
							_, err := cm.EnqueuePacket(f, pkt)
							if err == nil {
								break
							}
							if !errors.Is(err, ErrNoFreeSegments) {
								b.Error(err)
								return
							}
							if cm.FreeSegments() < lowWater {
								runtime.Gosched() // pool full: wait for egress
								continue
							}
							runtime.Gosched()
						}
					}
				})
				elapsed := time.Since(start)
				b.StopTimer()
				// Deliveries inside the timed window only (see EnginePorts).
				window := cm.Stats().DequeuedPackets
				deadline := time.Now().Add(30 * time.Second)
				for cm.Stats().QueuedSegments > 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if err := cm.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(window)/elapsed.Seconds()/1e6, "Mdeliv/s")
			})
		}
	}
}

// BenchmarkEngineShardedBatch is the batched variant: bursts of 64 packets
// per EnqueueBatch/DequeueBatch call, locking each shard once per burst.
func BenchmarkEngineShardedBatch(b *testing.B) {
	const burst = 64
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cm, err := NewConcurrentQueueManager(DefaultFlows, 1<<17, shards)
			if err != nil {
				b.Fatal(err)
			}
			pkt := make([]byte, 320)
			b.SetBytes(int64(len(pkt) * burst))
			var gid atomic.Uint32
			b.RunParallel(func(pb *testing.PB) {
				batch := make([]PacketEnqueue, burst)
				flows := make([]uint32, burst)
				fd := benchFlowDist(b, uint64(gid.Add(1)))
				for pb.Next() {
					for j := range batch {
						f := fd.Next()
						batch[j] = PacketEnqueue{Flow: f, Data: pkt}
						flows[j] = f
					}
					if _, errs := cm.EnqueueBatch(batch); errs != nil {
						for _, err := range errs {
							if err != nil {
								b.Error(err)
								return
							}
						}
					}
					pkts, errs := cm.DequeueBatch(flows)
					for j, err := range errs {
						if err != nil {
							b.Error(err)
							return
						}
						cm.ReleaseBuffer(pkts[j])
					}
				}
			})
		})
	}
}

// BenchmarkEnginePolicy measures the admission-policy overhead on the
// enqueue/dequeue round trip: "none" is the policy-free baseline; the
// acceptance bar is tail-drop within 10% of it (the tail check is two
// integer compares under a lock already held). The traffic pattern keeps
// queues shallow so no policy actually drops — this isolates the cost of
// consulting the policy, not of dropping.
func BenchmarkEnginePolicy(b *testing.B) {
	cases := []struct {
		name string
		adm  AdmissionConfig
	}{
		{"none", AdmissionConfig{}},
		{"tail", TailDrop(64)},
		{"lqd", LQD()},
		{"red", RED(0.25, 0.75, 0.1, 0.002)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cm, err := NewConcurrentEngine(ConcurrentConfig{
				Flows:     DefaultFlows,
				Segments:  1 << 17,
				Shards:    16,
				Admission: tc.adm,
			})
			if err != nil {
				b.Fatal(err)
			}
			pkt := make([]byte, 320)
			b.SetBytes(int64(len(pkt)))
			var gid atomic.Uint32
			b.RunParallel(func(pb *testing.PB) {
				fd := benchFlowDist(b, uint64(gid.Add(1)))
				for pb.Next() {
					f := fd.Next()
					if _, err := cm.EnqueuePacket(f, pkt); err != nil {
						b.Error(err)
						return
					}
					data, err := cm.DequeuePacket(f)
					if err != nil {
						b.Error(err)
						return
					}
					cm.ReleaseBuffer(data)
				}
			})
		})
	}
}

// BenchmarkEngineEgress measures the integrated scheduler's pick+dequeue
// path for each discipline, against a standing backlog refilled per
// iteration.
func BenchmarkEngineEgress(b *testing.B) {
	for _, eg := range []EgressConfig{
		RoundRobinEgress(), PriorityEgress(), WRREgress(2), DRREgress(512),
	} {
		b.Run(eg.Kind.String(), func(b *testing.B) {
			cm, err := NewConcurrentEngine(ConcurrentConfig{
				Flows:    1024,
				Segments: 1 << 15,
				Shards:   16,
				Egress:   eg,
			})
			if err != nil {
				b.Fatal(err)
			}
			pkt := make([]byte, 320)
			for f := uint32(0); f < 1024; f++ {
				if _, err := cm.EnqueuePacket(f, pkt); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(pkt)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, ok := cm.DequeueNext()
				if !ok {
					b.Fatal("scheduler idle with backlog")
				}
				cm.ReleaseBuffer(out.Data)
				if _, err := cm.EnqueuePacket(out.Flow, pkt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueueEngine measures the raw functional engine (no timing),
// the fast path a downstream user of the library hits.
func BenchmarkQueueEngine(b *testing.B) {
	qm, err := NewQueueManager(DefaultFlows, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	pkt := make([]byte, 320)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := uint32(i % DefaultFlows)
		if _, err := qm.EnqueuePacket(q, pkt); err != nil {
			b.Fatal(err)
		}
		if _, err := qm.DequeuePacket(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegstore compares the shared segment store against the old
// static per-shard pool split at the allocation layer. Each worker holds a
// live set of segments and churns (alloc one, trim to target): "uniform"
// sizes every worker's target just under an even pool share; "zipf" skews
// demand so the hottest workers want several times their share. Under the
// static split the hot workers' allocations fail once their private pool
// is exhausted — capacity stranded in the cold workers' pools — while the
// shared store serves the skew from one pool. The fail metric reports
// failed allocations per successful one.
func BenchmarkSegstore(b *testing.B) {
	const pool = 1 << 16
	workers := runtime.GOMAXPROCS(0)
	targets := func(dist string) []int {
		t := make([]int, workers)
		switch dist {
		case "uniform":
			for w := range t {
				t[w] = pool * 9 / 10 / workers
			}
		case "zipf":
			weights := make([]float64, workers)
			var sum float64
			for w := range weights {
				weights[w] = 1 / float64(w+1)
				sum += weights[w]
			}
			for w := range t {
				t[w] = int(float64(pool) * 0.9 * weights[w] / sum)
			}
		}
		return t
	}
	for _, mode := range []string{"shared", "static"} {
		for _, dist := range []string{"uniform", "zipf"} {
			b.Run(fmt.Sprintf("%s/%s", mode, dist), func(b *testing.B) {
				tgt := targets(dist)
				srcs := make([]segstore.Source, workers)
				switch mode {
				case "shared":
					st, err := segstore.New(segstore.Config{NumSegments: pool})
					if err != nil {
						b.Fatal(err)
					}
					for w := range srcs {
						srcs[w] = st.NewCache()
					}
				case "static":
					per := pool / workers
					for w := range srcs {
						p, err := segstore.NewPrivate(segstore.Config{NumSegments: per})
						if err != nil {
							b.Fatal(err)
						}
						srcs[w] = p
					}
				}
				var fails, oks atomic.Uint64
				var gid atomic.Uint32
				b.RunParallel(func(pb *testing.PB) {
					w := int(gid.Add(1)-1) % workers
					src := srcs[w]
					held := make([]int32, 0, tgt[w]+1)
					for pb.Next() {
						if s, ok := src.Alloc(); ok {
							held = append(held, s)
							oks.Add(1)
						} else {
							fails.Add(1)
						}
						for len(held) > tgt[w] {
							src.Free(held[len(held)-1])
							held = held[:len(held)-1]
						}
					}
					for _, s := range held {
						src.Free(s)
					}
				})
				if oks.Load() > 0 {
					b.ReportMetric(float64(fails.Load())/float64(oks.Load()), "fails/alloc")
				}
			})
		}
	}
}
