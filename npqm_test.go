package npqm

import (
	"bytes"
	"strings"
	"testing"
)

func TestQueueManagerFacade(t *testing.T) {
	qm, err := NewQueueManager(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	pkt := bytes.Repeat([]byte{0x42}, 200)
	n, err := qm.EnqueuePacket(3, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("segments = %d", n)
	}
	if l, _ := qm.Len(3); l != 4 {
		t.Fatalf("len = %d", l)
	}
	bytes_, segs, err := qm.PacketLen(3)
	if err != nil || bytes_ != 200 || segs != 4 {
		t.Fatalf("packetlen = %d,%d (%v)", bytes_, segs, err)
	}
	if _, err := qm.MovePacket(3, 5); err != nil {
		t.Fatal(err)
	}
	got, err := qm.DequeuePacket(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Fatal("round trip corrupted")
	}
	if qm.FreeSegments() != 64 {
		t.Fatalf("free = %d", qm.FreeSegments())
	}
	if err := qm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueManagerDeletePacket(t *testing.T) {
	qm, _ := NewQueueManager(4, 16)
	qm.EnqueuePacket(0, make([]byte, 100))
	n, err := qm.DeletePacket(0)
	if err != nil || n != 2 {
		t.Fatalf("deleted %d (%v)", n, err)
	}
}

func TestMMSFacade(t *testing.T) {
	m, err := NewMMS(256)
	if err != nil {
		t.Fatal(err)
	}
	pkt := bytes.Repeat([]byte{7}, 150)
	if _, err := m.Push(100, pkt); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Backlog(100); n != 3 {
		t.Fatalf("backlog = %d", n)
	}
	if _, err := m.Move(100, 200); err != nil {
		t.Fatal(err)
	}
	got, err := m.Pop(200)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Fatal("MMS round trip corrupted")
	}
	cycles := m.CommandCycles()
	if cycles["Enqueue"] != 10 || cycles["Dequeue"] != 11 {
		t.Fatalf("command cycles = %v", cycles)
	}
}

func TestHeadline(t *testing.T) {
	g := HeadlineThroughputGbps()
	if g < 5.9 || g > 6.2 {
		t.Fatalf("headline = %v", g)
	}
}

func TestSoftwareTransitMbps(t *testing.T) {
	word, err := SoftwareTransitMbps("word", 100)
	if err != nil {
		t.Fatal(err)
	}
	line, err := SoftwareTransitMbps("line", 100)
	if err != nil {
		t.Fatal(err)
	}
	if line <= word {
		t.Fatal("line copy should beat word copy")
	}
	if _, err := SoftwareTransitMbps("quantum", 100); err == nil {
		t.Fatal("unknown engine accepted")
	}
	// The paper's central comparison: hardware is an order of magnitude
	// beyond the software baselines.
	if HeadlineThroughputGbps()*1000 < 10*line {
		t.Fatal("MMS should be >=10x the best software baseline")
	}
}

func TestIXPKpps(t *testing.T) {
	one, err := IXPKpps(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one < 900 || one > 1000 {
		t.Fatalf("16-queue 1-ME = %v Kpps, paper says 956", one)
	}
	if _, err := IXPKpps(1<<20, 1); err == nil {
		t.Fatal("out-of-tier queue count accepted")
	}
	if _, err := IXPKpps(16, 9); err == nil {
		t.Fatal("bad engine count accepted")
	}
}

func TestReport(t *testing.T) {
	var sb strings.Builder
	if err := Report(&sb, 1, 30_000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Figure 1", "Figure 2", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestConcurrentQueueManager(t *testing.T) {
	cm, err := NewConcurrentQueueManager(1024, 8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", cm.Shards())
	}
	pkt := bytes.Repeat([]byte{0x77}, 300)
	if _, err := cm.EnqueuePacket(9, pkt); err != nil {
		t.Fatal(err)
	}
	got, err := cm.DequeuePacket(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Fatalf("round trip lost data: %d bytes", len(got))
	}
	cm.ReleaseBuffer(got)

	batch := make([]PacketEnqueue, 50)
	for i := range batch {
		batch[i] = PacketEnqueue{Flow: uint32(i % 10), Data: pkt}
	}
	segs, errs := cm.EnqueueBatch(batch)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch[%d]: %v", i, err)
		}
	}
	if segs != 50*5 {
		t.Fatalf("batch segments = %d, want 250", segs)
	}
	st := cm.Stats()
	if st.EnqueuedPackets != 51 || st.QueuedSegments != 250 {
		t.Fatalf("stats = %+v", st)
	}
	flows := make([]uint32, 50)
	for i := range flows {
		flows[i] = uint32(i % 10)
	}
	pkts, derrs := cm.DequeueBatch(flows)
	for i, err := range derrs {
		if err != nil {
			t.Fatalf("dequeue[%d]: %v", i, err)
		}
		cm.ReleaseBuffer(pkts[i])
	}
	if err := cm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if cm.FreeSegments() != 8192 {
		t.Fatalf("FreeSegments = %d, want 8192", cm.FreeSegments())
	}
}
