// iprouter: per-flow queuing for an IP router with NAT — two more of the
// applications the paper's Section 6 lists ("IP routing", "Network Address
// Translation").
//
// IMIX traffic over many 5-tuple flows is classified onto the 32K flow
// queues by hashing, NAT rewrites the source (with the translation table
// keyed by flow), and a deficit-round-robin scheduler shares the egress
// link fairly by bytes across the active flows despite their different
// packet sizes.
package main

import (
	"fmt"
	"log"

	"npqm/internal/packet"
	"npqm/internal/queue"
	"npqm/internal/sched"
	"npqm/internal/traffic"
)

const (
	flowQueues = 256 // active flow queues for this port
	packets    = 30000
)

func main() {
	qm, err := queue.New(queue.Config{NumQueues: flowQueues, NumSegments: 1 << 14, StoreData: false})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := traffic.NewGenerator(traffic.Config{
		RateGbps: 2.0, Flows: flowQueues, Sizes: traffic.IMIX,
		Proc: traffic.Poisson, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// NAT table: flow key -> translated source (allocated on first use).
	nat := make(map[packet.FlowKey]uint32)
	nextNATPort := uint32(1 << 20)

	// Per-queue packet-length FIFOs (the router keeps packet descriptors;
	// the queue engine keeps the segments).
	headLens := make([][]int, flowQueues)
	enqueued := make([]int, flowQueues)

	for i := 0; i < packets; i++ {
		a := gen.Next()
		// The 5-tuple is stable per generated flow, so NAT bindings are
		// allocated once per flow and reused by its later packets.
		key := packet.FlowKey{
			SrcIP:   0x0a000000 | a.Flow,
			DstIP:   0xc0a80000 | (a.Flow * 7 % (1 << 16)),
			SrcPort: uint16(1024 + a.Flow%60000),
			DstPort: 443,
			Proto:   6,
		}
		if _, ok := nat[key]; !ok {
			nat[key] = nextNATPort
			nextNATPort++
		}
		q := key.Hash(flowQueues)
		segs := packet.SegmentCount(a.Bytes)
		ok := true
		for s := 0; s < segs; s++ {
			last := s == segs-1
			n := packet.SegmentBytes
			if last && a.Bytes%packet.SegmentBytes != 0 {
				n = a.Bytes % packet.SegmentBytes
			}
			if _, err := qm.Enqueue(queue.QueueID(q), make([]byte, n), last); err != nil {
				ok = false
				break
			}
		}
		if ok {
			headLens[q] = append(headLens[q], a.Bytes)
			enqueued[q]++
		}
	}

	// Drain the egress link with DRR (quantum = one max-size packet).
	quanta := make([]int, flowQueues)
	for i := range quanta {
		quanta[i] = 1518
	}
	drr, err := sched.NewDeficitRoundRobin(quanta)
	if err != nil {
		log.Fatal(err)
	}
	backlog := func(q int) int { return len(headLens[q]) }
	head := func(q int) int { return headLens[q][0] }

	sentBytes := make([]int, flowQueues)
	var sentPackets int
	for {
		q, ok := drr.NextPacket(backlog, head)
		if !ok {
			break
		}
		if _, _, err := qm.DequeuePacket(queue.QueueID(q)); err != nil {
			log.Fatalf("queue %d: %v", q, err)
		}
		sentBytes[q] += headLens[q][0]
		headLens[q] = headLens[q][1:]
		sentPackets++
	}

	var minB, maxB, total int
	minB = 1 << 30
	active := 0
	for q := 0; q < flowQueues; q++ {
		if enqueued[q] == 0 {
			continue
		}
		active++
		total += sentBytes[q]
		if sentBytes[q] < minB {
			minB = sentBytes[q]
		}
		if sentBytes[q] > maxB {
			maxB = sentBytes[q]
		}
	}
	fmt.Printf("IP router: %d IMIX packets over %d active flow queues, %d NAT bindings\n",
		sentPackets, active, len(nat))
	fmt.Printf("  DRR byte shares: min %d, max %d, mean %d (per active flow)\n",
		minB, maxB, total/active)
	fmt.Printf("  pool free after drain: %d/%d segments\n", qm.FreeSegments(), qm.NumSegments())
	if err := qm.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  invariants hold")
}
