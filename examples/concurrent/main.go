// Concurrent: the sharded engine under a producer/consumer fleet — M
// goroutines enqueue packets across the full 32K-flow space while K
// goroutines drain them through the engine's integrated egress scheduler,
// the way a multi-core packet processor splits RX and TX work. Admission
// runs the shared-buffer Longest Queue Drop policy, so when producers
// outrun consumers the buffer sheds load by pushing out the hoarding
// flows instead of blocking the RX path. At the end the example prints
// aggregate throughput and verifies segment conservation (enqueued =
// dequeued + pushed-out + resident).
package main

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"npqm"
)

const (
	producers  = 4
	consumers  = 2
	flows      = 32 * 1024
	shards     = 16
	segments   = 1 << 17 // 128K segments = 8 MB of 64-byte buffers
	perProd    = 100_000
	packetSize = 320 // 5 segments, the paper's Table 5 reference burst
)

func main() {
	cm, err := npqm.NewConcurrentEngine(npqm.ConcurrentConfig{
		Flows:     flows,
		Segments:  segments,
		Shards:    shards,
		Admission: npqm.LQD(),
		Egress:    npqm.RoundRobinEgress(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded engine: %d shards, %d flows, %d segments (%d KB buffer), LQD admission\n",
		cm.Shards(), flows, segments, segments*npqm.SegmentBytes/1024)
	fmt.Printf("%d producers x %d packets, %d consumers on the integrated scheduler\n\n",
		producers, perProd, consumers)

	var produced, consumed, dropped atomic.Uint64
	var prodWG, consWG sync.WaitGroup
	start := time.Now()

	// Producers: each walks its own stride through the flow space in
	// bursts, using the batched enqueue path (one shard lock per burst
	// per shard instead of one per packet). Under LQD every burst is
	// admitted — overload is shed by push-out, not producer spinning.
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			const burst = 64
			pkt := make([]byte, packetSize)
			i := uint32(0)
			for sent := 0; sent < perProd; {
				n := burst
				if perProd-sent < n {
					n = perProd - sent
				}
				batch := make([]npqm.PacketEnqueue, 0, n)
				for j := 0; j < n; j++ {
					f := (uint32(p)*2654435761 + i*40503) % flows
					i++
					batch = append(batch, npqm.PacketEnqueue{Flow: f, Data: pkt})
				}
				_, errs := cm.EnqueueBatch(batch)
				if errs == nil { // nil means every packet was accepted
					produced.Add(uint64(len(batch)))
					sent += n
					continue
				}
				for _, err := range errs {
					switch {
					case err == nil:
						produced.Add(1)
					case errors.Is(err, npqm.ErrAdmissionDrop):
						// LQD admits by evicting the globally longest
						// queue; under heavy multi-producer contention an
						// arrival can lose the race for freed space a few
						// times and be dropped. Rare, and counted by the
						// engine's drop statistics.
						dropped.Add(1)
					case errors.Is(err, npqm.ErrNoFreeSegments):
						// Physical-limit refusal: free segments existed
						// pool-wide but stayed stranded in other shards'
						// caches across the bounded flush retries. Treat
						// like a full buffer and move on.
					default:
						log.Fatalf("enqueue failed: %v", err)
					}
				}
				sent += n
			}
		}(p)
	}

	// Consumers: no flow polling — the engine's egress scheduler picks the
	// next active flows and each batch locks each shard at most once.
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				batch := cm.DequeueNextBatch(64)
				for _, pkt := range batch {
					consumed.Add(1)
					cm.ReleaseBuffer(pkt.Data)
				}
				if len(batch) == 0 {
					select {
					case <-done:
						return
					default:
						runtime.Gosched()
					}
				}
			}
		}()
	}

	prodWG.Wait()
	close(done)
	consWG.Wait()
	elapsed := time.Since(start)
	transited := consumed.Load() // packets that made it through the timed window

	// Drain whatever the consumers left behind after the cutoff.
	for {
		batch := cm.DequeueNextBatch(256)
		if len(batch) == 0 {
			break
		}
		for _, pkt := range batch {
			consumed.Add(1)
			cm.ReleaseBuffer(pkt.Data)
		}
	}

	st := cm.Stats()
	if produced.Load() != consumed.Load()+st.PushedOutPackets {
		log.Fatalf("packet conservation violated: %d produced, %d consumed + %d pushed out",
			produced.Load(), consumed.Load(), st.PushedOutPackets)
	}
	if dropped.Load() != st.DroppedPackets {
		log.Fatalf("drop accounting mismatch: saw %d, engine counted %d",
			dropped.Load(), st.DroppedPackets)
	}
	if err := cm.CheckInvariants(); err != nil {
		log.Fatalf("invariants: %v", err)
	}

	mpps := float64(transited) / elapsed.Seconds() / 1e6
	gbps := float64(transited) * packetSize * 8 / elapsed.Seconds() / 1e9
	fmt.Printf("transited %d packets in %v (+%d drained after cutoff): %.2f Mpps, %.2f Gbps\n",
		transited, elapsed.Round(time.Millisecond), consumed.Load()-transited, mpps, gbps)
	fmt.Printf("LQD pushed out %d packets (%d segments) under overload; %d arrivals dropped in eviction races\n",
		st.PushedOutPackets, st.PushedOutSegments, st.DroppedPackets)
	fmt.Printf("pool restored: %d/%d segments free, %d flows active\n\n",
		cm.FreeSegments(), segments, cm.ActiveFlows())
	fmt.Printf("paper context: the MMS sustains %.2f Gbps in hardware at 125 MHz;\n",
		npqm.HeadlineThroughputGbps())
	fmt.Println("sharding is how software chases that number on multi-core.")
}
