// Concurrent: the sharded engine under a producer/consumer fleet — M
// goroutines enqueue packets across the full 32K-flow space while K
// goroutines drain them, the way a multi-core packet processor splits RX
// and TX work. At the end the example prints aggregate throughput, the
// per-shard load spread, and verifies segment conservation.
package main

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"npqm"
)

const (
	producers  = 4
	consumers  = 2
	flows      = 32 * 1024
	shards     = 16
	segments   = 1 << 17 // 128K segments = 8 MB of 64-byte buffers
	perProd    = 100_000
	packetSize = 320 // 5 segments, the paper's Table 5 reference burst
)

func main() {
	cm, err := npqm.NewConcurrentQueueManager(flows, segments, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded engine: %d shards, %d flows, %d segments (%d KB buffer)\n",
		cm.Shards(), flows, segments, segments*npqm.SegmentBytes/1024)
	fmt.Printf("%d producers x %d packets, %d consumers\n\n", producers, perProd, consumers)

	var produced, consumed atomic.Uint64
	var prodWG, consWG sync.WaitGroup
	start := time.Now()

	// Producers: each walks its own stride through the flow space in
	// bursts, using the batched enqueue path (one shard lock per burst
	// per shard instead of one per packet). When the segment pool fills,
	// rejected packets are retried after yielding — backpressure, the way
	// an RX ring throttles when buffer memory is exhausted.
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			const burst = 64
			pkt := make([]byte, packetSize)
			i := uint32(0)
			for sent := 0; sent < perProd; {
				n := burst
				if perProd-sent < n {
					n = perProd - sent
				}
				batch := make([]npqm.PacketEnqueue, 0, n)
				for j := 0; j < n; j++ {
					f := (uint32(p)*2654435761 + i*40503) % flows
					i++
					batch = append(batch, npqm.PacketEnqueue{Flow: f, Data: pkt})
				}
				for len(batch) > 0 {
					_, errs := cm.EnqueueBatch(batch)
					var retry []npqm.PacketEnqueue
					for k, err := range errs {
						if err == nil {
							produced.Add(1)
						} else {
							retry = append(retry, batch[k])
						}
					}
					batch = retry
					if len(batch) > 0 {
						runtime.Gosched() // pool full: let consumers drain
					}
				}
				sent += n
			}
		}(p)
	}

	// Consumers: sweep the flow space round-robin until producers finish
	// and the queues are drained.
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			f := uint32(c * (flows / consumers))
			idle := 0
			for {
				data, err := cm.DequeuePacket(f % flows)
				f++
				if err == nil {
					consumed.Add(1)
					cm.Release(data)
					idle = 0
					continue
				}
				idle++
				if idle > flows { // a full empty sweep
					select {
					case <-done:
						return
					default:
						idle = 0
					}
				}
			}
		}(c)
	}

	prodWG.Wait()
	close(done)
	consWG.Wait()
	elapsed := time.Since(start)
	transited := consumed.Load() // packets that made it through the timed window

	// Drain whatever the consumers left behind after the cutoff.
	for f := uint32(0); f < flows; f++ {
		for {
			data, err := cm.DequeuePacket(f)
			if err != nil {
				if !errors.Is(err, npqm.ErrQueueEmpty) {
					log.Fatalf("drain flow %d: %v", f, err)
				}
				break
			}
			consumed.Add(1)
			cm.Release(data)
		}
	}

	if produced.Load() != consumed.Load() {
		log.Fatalf("packet conservation violated: %d produced, %d consumed",
			produced.Load(), consumed.Load())
	}
	if err := cm.CheckInvariants(); err != nil {
		log.Fatalf("invariants: %v", err)
	}

	st := cm.Stats()
	mpps := float64(transited) / elapsed.Seconds() / 1e6
	gbps := float64(transited) * packetSize * 8 / elapsed.Seconds() / 1e9
	fmt.Printf("transited %d packets in %v (+%d drained after cutoff): %.2f Mpps, %.2f Gbps\n",
		transited, elapsed.Round(time.Millisecond), consumed.Load()-transited, mpps, gbps)
	fmt.Printf("enqueue retries under backpressure: %d\n", st.Rejected)
	fmt.Printf("pool restored: %d/%d segments free\n\n", cm.FreeSegments(), segments)
	fmt.Printf("paper context: the MMS sustains %.2f Gbps in hardware at 125 MHz;\n",
		npqm.HeadlineThroughputGbps())
	fmt.Println("sharding is how software chases that number on multi-core.")
}
