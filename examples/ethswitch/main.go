// ethswitch: an Ethernet switch output port with 802.1p QoS, one of the
// applications the paper lists as accelerated by the MMS ("Ethernet
// switching (with QoS e.g. 802.1p, 802.1q)").
//
// Tagged frames are classified by their priority code point (PCP) onto
// eight class queues in the queue manager. The egress side drains at a
// fixed line rate under two schedulers — strict priority and 4:2:1:1
// weighted round robin — and the example reports per-class delivered
// throughput and drops under 2:1 congestion, showing the high-priority
// class protected by strict priority and bandwidth shared by WRR.
package main

import (
	"fmt"
	"log"

	"npqm/internal/packet"
	"npqm/internal/queue"
	"npqm/internal/sched"
	"npqm/internal/traffic"
)

const (
	classes   = 8
	lineGbps  = 1.0 // egress line rate
	offerGbps = 2.0 // offered load: 2:1 congestion
	frames    = 40000
)

func main() {
	for _, policy := range []string{"strict", "wrr"} {
		if err := run(policy); err != nil {
			log.Fatal(err)
		}
	}
}

func run(policy string) error {
	qm, err := queue.New(queue.Config{NumQueues: classes, NumSegments: 2048, StoreData: false})
	if err != nil {
		return err
	}

	var pick func(backlog func(int) int) (int, bool)
	switch policy {
	case "strict":
		sp, err := sched.NewStrictPriority(classes)
		if err != nil {
			return err
		}
		pick = sp.Next
	case "wrr":
		// Classes 0-1 get weight 4, 2-3 weight 2, rest weight 1.
		w, err := sched.NewWeightedRoundRobin([]int{4, 4, 2, 2, 1, 1, 1, 1})
		if err != nil {
			return err
		}
		pick = w.Next
	}

	gen, err := traffic.NewGenerator(traffic.Config{
		RateGbps: offerGbps, Flows: classes, Sizes: traffic.Min64,
		Proc: traffic.OnOff, Seed: 99,
	})
	if err != nil {
		return err
	}

	var (
		offered   [classes]int
		delivered [classes]int
		dropped   [classes]int
	)
	backlog := func(q int) int {
		n, _ := qm.Len(queue.QueueID(q))
		return n
	}

	// Egress drains one 64-byte frame per frame-time at lineGbps.
	frameTimeNs := float64(64*8) / lineGbps
	nextDrainNs := 0.0
	src := packet.MAC{0x02, 0, 0, 0, 0, 1}

	for i := 0; i < frames; i++ {
		a := gen.Next()
		// Build and parse a tagged frame: PCP = flow index (class).
		pcp := uint8(a.Flow % classes)
		frame := packet.BuildEth(packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, src, 1, pcp,
			packet.EtherTypeIPv4, make([]byte, 46))
		parsed, err := packet.ParseEth(frame)
		if err != nil {
			return err
		}
		// 802.1p: higher PCP = higher priority; queue 0 is served first by
		// the strict-priority scheduler, so PCP 7 maps to queue 0.
		class := int(7 - parsed.PCP)
		offered[class]++

		// Drain the egress port up to this arrival's time.
		for nextDrainNs <= a.TimeNs {
			if q, ok := pick(backlog); ok {
				if err := qm.DeleteSegment(queue.QueueID(q)); err != nil {
					return err
				}
				delivered[q]++
			}
			nextDrainNs += frameTimeNs
		}

		// Enqueue the new frame (one segment per 64-byte frame); tail-drop
		// on pool exhaustion.
		if _, err := qm.Enqueue(queue.QueueID(class), frame[:64], true); err != nil {
			dropped[class]++
		}
	}

	fmt.Printf("== %s scheduler: %d frames offered at %.1f Gbps into a %.1f Gbps port ==\n",
		policy, frames, offerGbps, lineGbps)
	fmt.Printf("%5s %5s %9s %9s %9s %9s\n", "queue", "pcp", "offered", "sent", "dropped", "queued")
	for c := 0; c < classes; c++ {
		fmt.Printf("%5d %5d %9d %9d %9d %9d\n", c, 7-c, offered[c], delivered[c], dropped[c], backlog(c))
	}
	if err := qm.CheckInvariants(); err != nil {
		return fmt.Errorf("invariant violation: %w", err)
	}
	fmt.Println()
	return nil
}
