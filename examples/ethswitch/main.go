// ethswitch: an Ethernet switch output port with 802.1p QoS, one of the
// applications the paper lists as accelerated by the MMS ("Ethernet
// switching (with QoS e.g. 802.1p, 802.1q)").
//
// Tagged frames are classified by their priority code point (PCP) onto
// eight class queues. Where this example used to hand-roll scheduler loops
// around internal/sched, classification and service now both run through
// the policy-aware engine: a tail-drop admission policy caps each class's
// share of the shared buffer, and the egress side drains at a fixed line
// rate through the engine's integrated scheduler — strict priority and
// 4:4:2:2:1:1:1:1 weighted round robin — under 2:1 congestion, showing
// the high-priority class protected by strict priority and bandwidth
// shared by WRR.
package main

import (
	"errors"
	"fmt"
	"log"

	"npqm"
	"npqm/internal/packet"
	"npqm/internal/traffic"
)

const (
	classes   = 8
	lineGbps  = 1.0 // egress line rate
	offerGbps = 2.0 // offered load: 2:1 congestion
	frames    = 40000
	perClass  = 256 // tail-drop cap per class queue (segments)
)

func main() {
	for _, policy := range []string{"strict", "wrr"} {
		if err := run(policy); err != nil {
			log.Fatal(err)
		}
	}
}

func run(policy string) error {
	egress := npqm.PriorityEgress()
	if policy == "wrr" {
		egress = npqm.WRREgress(1)
	}
	// One shard: eight class queues share one pool and one scheduler, like
	// a single output port. Class 0 is the highest priority (PCP 7).
	cm, err := npqm.NewConcurrentEngine(npqm.ConcurrentConfig{
		Flows:     classes,
		Segments:  2048,
		Shards:    1,
		Admission: npqm.TailDrop(perClass),
		Egress:    egress,
	})
	if err != nil {
		return err
	}
	if policy == "wrr" {
		// Classes 0-1 get weight 4, 2-3 weight 2, rest weight 1.
		for class, w := range []int{4, 4, 2, 2, 1, 1, 1, 1} {
			if err := cm.SetWeight(uint32(class), w); err != nil {
				return err
			}
		}
	}

	gen, err := traffic.NewGenerator(traffic.Config{
		RateGbps: offerGbps, Flows: classes, Sizes: traffic.Min64,
		Proc: traffic.OnOff, Seed: 99,
	})
	if err != nil {
		return err
	}

	var (
		offered   [classes]int
		delivered [classes]int
		dropped   [classes]int
	)

	// Egress drains one 64-byte frame per frame-time at lineGbps.
	frameTimeNs := float64(64*8) / lineGbps
	nextDrainNs := 0.0
	src := packet.MAC{0x02, 0, 0, 0, 0, 1}

	for i := 0; i < frames; i++ {
		a := gen.Next()
		// Build and parse a tagged frame: PCP = flow index (class).
		pcp := uint8(a.Flow % classes)
		frame := packet.BuildEth(packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, src, 1, pcp,
			packet.EtherTypeIPv4, make([]byte, 46))
		parsed, err := packet.ParseEth(frame)
		if err != nil {
			return err
		}
		// 802.1p: higher PCP = higher priority; queue 0 is served first by
		// the priority egress, so PCP 7 maps to queue 0.
		class := int(7 - parsed.PCP)
		offered[class]++

		// Drain the egress port up to this arrival's time: the engine's
		// integrated scheduler picks the class to serve.
		for nextDrainNs <= a.TimeNs {
			if pkt, ok := cm.DequeueNext(); ok {
				delivered[pkt.Flow]++
				cm.Release(pkt.Data)
			}
			nextDrainNs += frameTimeNs
		}

		// Enqueue the new frame; the admission policy tail-drops beyond
		// each class's segment cap.
		if _, err := cm.EnqueuePacket(uint32(class), frame[:64]); err != nil {
			if !errors.Is(err, npqm.ErrAdmissionDrop) {
				return err
			}
			dropped[class]++
		}
	}

	st := cm.Stats()
	fmt.Printf("== %s scheduler: %d frames offered at %.1f Gbps into a %.1f Gbps port ==\n",
		policy, frames, offerGbps, lineGbps)
	fmt.Printf("%5s %5s %9s %9s %9s %9s\n", "queue", "pcp", "offered", "sent", "dropped", "queued")
	for c := 0; c < classes; c++ {
		n, err := cm.Len(uint32(c))
		if err != nil {
			return err
		}
		fmt.Printf("%5d %5d %9d %9d %9d %9d\n", c, 7-c, offered[c], delivered[c], dropped[c], n)
	}
	if err := cm.CheckInvariants(); err != nil {
		return fmt.Errorf("invariant violation: %w", err)
	}
	fmt.Printf("engine: %d admission drops counted, %d flows still active\n\n",
		st.DroppedPackets, st.ActiveFlows)
	return nil
}
