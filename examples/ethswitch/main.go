// ethswitch: an Ethernet switch output port with 802.1p QoS, one of the
// applications the paper lists as accelerated by the MMS ("Ethernet
// switching (with QoS e.g. 802.1p, 802.1q)").
//
// Tagged frames are classified by their priority code point (PCP) onto
// eight class queues. The 802.1p priorities are expressed directly with
// the engine's class layer: ClassLayer wraps the flow-level egress
// config with an eight-class scheduling level, SetFlowClass homes each
// class queue in its class, and the port's scheduler arbitrates classes
// first — strict priority, then 4:4:2:2:1:1:1:1 weighted round robin —
// before round-robining flows within the winning class. Egress runs on
// the push-mode transmit path: the classes feed one output port whose
// token-bucket shaper enforces the line rate in real time, paced by the
// per-shard timing wheel, into a counting sink. Ingress offers 2:1
// congestion (paced in real time), a tail-drop admission policy caps
// each class's share of the shared buffer, and a mid-run Pause/Resume
// on the port models link-level flow control: transmission stops, the
// backlog holds, drops spike at the caps, and service resumes where it
// left off.
//
// The third run adds the tenant level: two customers share the port
// under 3:1 weighted round robin (TenantLayer outside ClassLayer — the
// full tenant → class → flow stack), each with its own eight 802.1p
// class queues. While both tenants stay backlogged, the premium tenant's
// share of the transmitted frames must track its 3:1 weight — the run
// checks that parity at the congestion cutoff and fails if the
// hierarchy's outer level drifts from its configuration.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"npqm"
	"npqm/internal/packet"
	"npqm/internal/traffic"
)

const (
	classes   = 8
	frames    = 40000
	perClass  = 256          // tail-drop cap per class queue (segments)
	lineRate  = 4 << 20      // egress line rate, bytes/sec (scaled-down link)
	offerRate = 2 * lineRate // offered load: 2:1 congestion
	burstSize = 64           // frames offered per pacing tick
	pauseAt   = frames / 2   // frame index where the link "deasserts"
	pauseFor  = 60 * time.Millisecond
)

func main() {
	for _, policy := range []string{"strict", "wrr", "tenant"} {
		if err := run(policy); err != nil {
			log.Fatal(err)
		}
	}
}

func run(policy string) error {
	// The whole 802.1p policy is the class layer: eight classes over a
	// round-robin flow level, arbitrated strict-priority or 4:4:2:2:1:1:1:1
	// weighted round robin. The tenant run wraps that in a third level —
	// two customers arbitrated 3:1 outside the class priorities.
	egress := npqm.ClassLayer(npqm.RoundRobinEgress(), classes, npqm.EgressPrio)
	tenants := 1
	tenantWeights := []int{1}
	switch policy {
	case "wrr":
		egress = npqm.ClassLayer(npqm.RoundRobinEgress(), classes, npqm.EgressWRR,
			4, 4, 2, 2, 1, 1, 1, 1)
	case "tenant":
		tenants = 2
		tenantWeights = []int{3, 1}
		egress = npqm.TenantLayer(egress, tenants, npqm.EgressWRR, tenantWeights...)
	}
	flows := classes * tenants
	// One shard: the class queues share one pool, one scheduler and one
	// shaped output port, like a single line card. Class 0 is the highest
	// priority (PCP 7); queue q belongs to tenant q/classes, class
	// q%classes.
	cm, err := npqm.NewConcurrentEngine(npqm.ConcurrentConfig{
		Flows:     flows,
		Segments:  2048,
		Shards:    1,
		Admission: npqm.TailDrop(perClass),
		Egress:    egress,
		Ports:     1,
		PortRate:  npqm.PortShaper(lineRate, 2048),
	})
	if err != nil {
		return err
	}
	// Home each queue in its scheduling class and tenant (flows start in
	// class 0, tenant 0).
	for q := 0; q < flows; q++ {
		if err := cm.SetFlowClass(uint32(q), q%classes); err != nil {
			return err
		}
		if tenants > 1 {
			if err := cm.SetFlowTenant(uint32(q), q/classes); err != nil {
				return err
			}
		}
	}

	// Push-mode egress on the zero-copy path: the engine's port worker
	// hands this sink a view over each frame's segment chain — read in
	// place, never reassembled into a buffer. The engine releases the view
	// when SendView returns (a NIC-style sink finishing transmission
	// asynchronously would Retain it first).
	delivered := make([]atomic.Uint64, flows)
	var txBytes atomic.Uint64
	if err := cm.ServeViews(0, npqm.SinkVFunc(func(_ int, d npqm.DequeuedView) error {
		delivered[d.Flow].Add(1)
		txBytes.Add(uint64(d.View.Len()))
		return nil
	})); err != nil {
		return err
	}

	gen, err := traffic.NewGenerator(traffic.Config{
		RateGbps: 2.0, Flows: flows, Sizes: traffic.Min64,
		Proc: traffic.OnOff, Seed: 99,
	})
	if err != nil {
		return err
	}

	var (
		offered      = make([]int, flows)
		dropped      = make([]int, flows)
		dropsAtPause [2]uint64 // drops before/after the pause window
	)
	src := packet.MAC{0x02, 0, 0, 0, 0, 1}

	// Offer 2:1 congestion in real time: bursts on an absolute schedule.
	burstEvery := time.Duration(burstSize * 64 * int(time.Second) / offerRate)
	start := time.Now()
	paused := false
	for i := 0; i < frames; i++ {
		if i%burstSize == 0 {
			next := start.Add(time.Duration(i/burstSize) * burstEvery)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		if i == pauseAt {
			// Link-level flow control deasserts: the port stops
			// transmitting, the backlog holds, arrivals keep coming.
			if err := cm.Pause(0); err != nil {
				return err
			}
			dropsAtPause[0] = cm.Stats().DroppedPackets
			paused = true
		}
		if paused && time.Since(start.Add(time.Duration(pauseAt/burstSize)*burstEvery)) >= pauseFor {
			if err := cm.Resume(0); err != nil {
				return err
			}
			dropsAtPause[1] = cm.Stats().DroppedPackets
			paused = false
		}
		a := gen.Next()
		// Build and parse a tagged frame: PCP = flow index (class); the
		// generator's flow also selects the arriving tenant.
		pcp := uint8(a.Flow % classes)
		tenant := int(a.Flow) / classes % tenants
		frame := packet.BuildEth(packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, src, 1, pcp,
			packet.EtherTypeIPv4, make([]byte, 46))
		parsed, err := packet.ParseEth(frame)
		if err != nil {
			return err
		}
		// 802.1p: higher PCP = higher priority; class queue 0 is served
		// first by the priority egress, so PCP 7 maps to class 0.
		class := tenant*classes + int(7-parsed.PCP)
		offered[class]++

		// Write-in-place ingest: reserve the frame's segment run (admission
		// tail-drops beyond each class's cap while the port lags the
		// offered load), scatter the frame into the reserved slices as a
		// readv-style receiver would, then splice it onto the queue. The
		// engine never copies the payload — CopiedBytes stays zero.
		r, err := cm.ReservePacket(uint32(class), 64)
		if err != nil {
			if !errors.Is(err, npqm.ErrAdmissionDrop) {
				return err
			}
			dropped[class]++
			continue
		}
		off := 0
		r.Range(func(seg []byte) bool {
			off += copy(seg, frame[off:64])
			return true
		})
		if err := r.Commit(); err != nil {
			return err
		}
	}
	if paused {
		if err := cm.Resume(0); err != nil {
			return err
		}
		dropsAtPause[1] = cm.Stats().DroppedPackets
	}

	// End of offer: snapshot the standing backlog and what each queue
	// had delivered under congestion, then let the shaped port drain.
	queued := make([]int, flows)
	deliveredAtCutoff := make([]uint64, flows)
	for q := 0; q < flows; q++ {
		n, err := cm.Len(uint32(q))
		if err != nil {
			return err
		}
		queued[q] = n
		deliveredAtCutoff[q] = delivered[q].Load()
	}
	deadline := time.Now().Add(10 * time.Second)
	for cm.Stats().QueuedSegments > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	st := cm.Stats()
	pst := cm.PortStats()[0]
	if err := cm.CheckInvariants(); err != nil {
		return fmt.Errorf("invariant violation: %w", err)
	}
	if err := cm.Close(); err != nil {
		return err
	}
	fmt.Printf("== %s scheduler: %d frames offered at 2:1 over a %d B/s shaped port ==\n",
		policy, frames, lineRate)
	fmt.Printf("%5s %6s %5s %9s %9s %9s %12s\n", "queue", "tenant", "pcp", "offered", "sent", "dropped", "queued@cutoff")
	for q := 0; q < flows; q++ {
		fmt.Printf("%5d %6d %5d %9d %9d %9d %12d\n",
			q, q/classes, 7-q%classes, offered[q], delivered[q].Load(), dropped[q], queued[q])
	}
	if tenants > 1 {
		// Tenant parity: while both tenants stayed backlogged the WRR
		// level granted service 3:1, so the cutoff shares must track the
		// weights (the post-cutoff drain no longer competes).
		var cut [2]uint64
		for q := 0; q < flows; q++ {
			cut[q/classes] += deliveredAtCutoff[q]
		}
		total := cut[0] + cut[1]
		if total == 0 || cut[1] == 0 {
			return fmt.Errorf("tenant parity: no congested service to compare (%d/%d)", cut[0], cut[1])
		}
		ratio := float64(cut[0]) / float64(cut[1])
		fmt.Printf("tenants@cutoff: premium %d (%.0f%%), best-effort %d (%.0f%%) — served ratio %.2f vs %d:%d configured\n",
			cut[0], 100*float64(cut[0])/float64(total),
			cut[1], 100*float64(cut[1])/float64(total),
			ratio, tenantWeights[0], tenantWeights[1])
		want := float64(tenantWeights[0]) / float64(tenantWeights[1])
		if ratio < want*0.7 || ratio > want*1.5 {
			return fmt.Errorf("tenant parity check failed: served ratio %.2f drifted from the configured %.0f:1", ratio, want)
		}
	}
	fmt.Printf("port: %d frames (%d bytes) transmitted, %d shaper waits; pause window added %d drops\n",
		pst.TransmittedPackets, pst.TransmittedBytes, pst.Throttled, dropsAtPause[1]-dropsAtPause[0])
	fmt.Printf("engine: %d admission drops counted, %d flows still active\n",
		st.DroppedPackets, st.ActiveFlows)
	fmt.Printf("zero-copy: %d bytes read in place by the sink, %d bytes copied by the engine, %d segments lent\n\n",
		txBytes.Load(), st.CopiedBytes, st.LentSegments)
	return nil
}
