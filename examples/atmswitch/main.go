// atmswitch: ATM cell switching with AAL5 segmentation and reassembly —
// the workload the first hardware queue managers were built for and one of
// the applications the paper lists ("ATM switching", "IP over ATM
// internetworking").
//
// AAL5 frames are cut into 48-byte cell payloads, switched per-VC through
// the queue manager (one flow per VPI/VCI), and reassembled at the output
// when the end-of-frame cell arrives. The example verifies every frame
// survives the trip byte-for-byte and prints per-VC statistics.
package main

import (
	"bytes"
	"fmt"
	"log"

	"npqm/internal/packet"
	"npqm/internal/queue"
	"npqm/internal/xrand"
)

const (
	numVCs = 64
	frames = 2000
)

func main() {
	qm, err := queue.New(queue.Config{NumQueues: numVCs, NumSegments: 1 << 15, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	rng := xrand.New(2005)

	// Generate AAL5 frames per VC, remember them for verification.
	sent := make(map[uint16][][]byte)
	var cellsIn int
	for i := 0; i < frames; i++ {
		vc := uint16(rng.Intn(numVCs))
		frame := make([]byte, 40+rng.Intn(1460))
		for j := range frame {
			frame[j] = byte(rng.Uint32())
		}
		sent[vc] = append(sent[vc], frame)

		// Segment into cells and enqueue each cell on the VC's flow queue.
		// A 48-byte cell payload fits one 64-byte segment; the AAL5
		// end-of-frame bit maps onto the queue engine's EOP marker.
		for _, cell := range packet.CellsForPacket(0, vc, frame) {
			cellsIn++
			if _, err := qm.Enqueue(queue.QueueID(vc), cell.Payload[:], cell.EndOfFrame()); err != nil {
				log.Fatalf("VC %d: %v", vc, err)
			}
		}
	}

	// Reassemble everything at the output side.
	var framesOut, cellsOut, corrupt int
	for vc := uint16(0); vc < numVCs; vc++ {
		for i := 0; ; i++ {
			raw, segs, err := qm.DequeuePacket(queue.QueueID(vc))
			if err != nil {
				break // VC drained
			}
			cellsOut += segs
			// AAL5 pads the last cell: trim to the original length.
			orig := sent[vc][i]
			if len(raw) < len(orig) || !bytes.Equal(raw[:len(orig)], orig) {
				corrupt++
			}
			framesOut++
		}
	}

	fmt.Printf("ATM switch: %d AAL5 frames over %d VCs\n", frames, numVCs)
	fmt.Printf("  cells in:     %d\n", cellsIn)
	fmt.Printf("  cells out:    %d\n", cellsOut)
	fmt.Printf("  frames out:   %d\n", framesOut)
	fmt.Printf("  corrupted:    %d\n", corrupt)
	fmt.Printf("  pool free:    %d/%d segments\n", qm.FreeSegments(), qm.NumSegments())
	if corrupt > 0 || framesOut != frames {
		log.Fatal("reassembly failed")
	}
	if err := qm.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  all frames reassembled byte-for-byte; invariants hold")
}
