// Quickstart: the minimal tour of the public API — create a queue manager,
// push packets onto per-flow queues, move a packet between flows without
// copying, and pull it back out.
package main

import (
	"bytes"
	"fmt"
	"log"

	"npqm"
)

func main() {
	// A queue manager with 1024 flows over a 4096-segment pool (256 KB of
	// buffer memory at 64 bytes per segment).
	qm, err := npqm.NewQueueManager(1024, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// Enqueue a 200-byte packet on flow 7: it is cut into four 64-byte
	// segments, the last one marked end-of-packet.
	pkt := bytes.Repeat([]byte{0xab}, 200)
	segs, err := qm.EnqueuePacket(7, pkt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enqueued %d bytes as %d segments on flow 7\n", len(pkt), segs)

	// Move the packet to flow 42 — pure pointer surgery, no data copy;
	// this is the MMS "Move" command (11 cycles in hardware).
	if _, err := qm.MovePacket(7, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("moved head packet from flow 7 to flow 42 (no copy)")

	// Dequeue and reassemble.
	got, err := qm.DequeuePacket(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dequeued %d bytes, intact: %v\n", len(got), bytes.Equal(got, pkt))
	fmt.Printf("pool back to %d free segments\n", qm.FreeSegments())

	// The timed hardware model answers performance questions.
	fmt.Printf("\nMMS headline throughput: %.2f Gbps at 125 MHz (paper: 6.145)\n",
		npqm.HeadlineThroughputGbps())
	word, _ := npqm.SoftwareTransitMbps("word", 100)
	fmt.Printf("software baseline (PowerPC 405 @ 100 MHz, word copy): %.0f Mbps\n", word)
}
