// npucompare: the paper's bottom line in one program — the same queue
// management workload priced on every platform the paper measures:
//
//   - software on the IXP1200's microengines (Table 2),
//   - software on the PowerPC-based reference NPU, with each of the three
//     copy engines (Table 3 / Section 5.3),
//   - the hardware MMS (Section 6).
//
// "Even with state-of-the-art VLSI technology ... a single processor can
// only achieve a throughput in the order of hundreds of Mbps ... in order
// to support the multi Gigabit per second rates of today's networks we
// need specialized hardware modules."
package main

import (
	"fmt"
	"log"

	"npqm/internal/core"
	"npqm/internal/ixp"
	"npqm/internal/npu"
)

func main() {
	fmt.Println("Queue management throughput, 64-byte packets, per platform")
	fmt.Println()

	// IXP1200 software rows.
	for _, queues := range []int{16, 128, 1024} {
		p, err := ixp.ProfileForQueues(queues)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ixp.Run(ixp.Config{Profile: p, Engines: 6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-44s %9.1f Mbps\n",
			fmt.Sprintf("IXP1200, 6 microengines @ 200 MHz, %d queues", queues),
			res.MbpsAt64B())
	}

	// Reference NPU software rows.
	for _, engine := range npu.CopyEngines() {
		fmt.Printf("  %-44s %9.1f Mbps\n",
			fmt.Sprintf("PowerPC 405 @ 100 MHz, %s", engine),
			npu.TransitMbps(engine, npu.ClockMHz))
	}
	fmt.Printf("  %-44s %9.1f Mbps\n",
		"PowerPC 405 @ 300 MHz (bus-capped), line-copy",
		npu.ScaledTransitMbps(npu.LineCopy, 300))

	// Hardware MMS.
	fmt.Printf("  %-44s %9.1f Mbps   <= the paper's contribution\n",
		"MMS hardware @ 125 MHz, 32K queues",
		core.HeadlineThroughputGbps()*1000)

	fmt.Println()
	best := npu.ScaledTransitMbps(npu.LineCopy, 300)
	mms := core.HeadlineThroughputGbps() * 1000
	fmt.Printf("hardware/software gap: %.0fx over the best software configuration\n", mms/best)

	// And the MMS does it while holding delay bounded: show one load point.
	lp, err := core.RunLoad(core.LoadConfig{LoadGbps: 4.8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MMS at 4.8 Gbps: %.1f cycles total command delay (%.0f ns)\n",
		lp.TotalDelay, lp.TotalDelay*core.CycleNs)
}
