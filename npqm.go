// Package npqm is a Go reproduction of "Queue Management in Network
// Processors" (Papaefstathiou et al., DATE 2005): a segment-based,
// per-flow hardware queue manager (the MMS) together with the software
// baselines the paper measures it against (queue management on the Intel
// IXP1200 and on a PowerPC-based reference NPU) and the behavioral
// DDR-SDRAM model underlying its memory analysis.
//
// The package exposes a facade over the internal models:
//
//   - QueueManager: the functional linked-list queue engine (32K flows,
//     64-byte segments, enqueue/dequeue/delete/overwrite/append/move);
//   - ConcurrentQueueManager: the goroutine-safe sharded engine — the flow
//     space hash-partitioned over shards for multi-core use, all shards
//     allocating from one shared segment store as the paper's MMS does;
//   - MMS: the timed hardware model (Table 4 command latencies, Table 5
//     delay decomposition, 6.1 Gbps headline throughput);
//   - Report and the Run* helpers: regenerate every table and figure of
//     the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package npqm

import (
	"fmt"
	"io"

	"npqm/internal/core"
	"npqm/internal/ixp"
	"npqm/internal/npu"
	"npqm/internal/queue"
	"npqm/internal/tables"
)

// SegmentBytes is the fixed segment size of the queue engine (64 bytes).
const SegmentBytes = queue.SegmentBytes

// Sentinel errors of the queue engine, re-exported so callers can classify
// failures with errors.Is without importing internal packages.
var (
	ErrQueueEmpty     = queue.ErrQueueEmpty
	ErrNoFreeSegments = queue.ErrNoFreeSegments
	ErrQueueLimit     = queue.ErrQueueLimit
	ErrNoPacket       = queue.ErrNoPacket
	ErrWriterDone     = queue.ErrWriterDone
)

// PacketView is a dequeued packet exposed as a zero-copy view over its
// 64-byte segment chain: iterate the payload in place with Range or
// Segments, then Release to return the whole chain to the pool in one
// bulk operation. Views are reference counted (Retain/Release) and safe
// to release from any goroutine. See DESIGN.md's zero-copy section for
// the lifetime rules.
type PacketView = queue.PacketView

// PacketWriter is an open write-in-place reservation on the functional
// queue engine: fill the reserved per-segment slices through Range (the
// iovecs a readv-style receiver scatters into), then Commit to splice the
// packet onto its queue or Abort to return the segments.
type PacketWriter = queue.PacketWriter

// DefaultFlows is the MMS per-flow queue count (32K).
const DefaultFlows = queue.DefaultNumQueues

// QueueManager is the functional queue engine: hardware-style linked-list
// queues over a segment pool, as described in Sections 5.2 and 6.
type QueueManager struct {
	m *queue.Manager
}

// NewQueueManager allocates a queue manager with the given flow count
// (0 means 32K) and segment pool size.
func NewQueueManager(flows, segments int) (*QueueManager, error) {
	m, err := queue.New(queue.Config{NumQueues: flows, NumSegments: segments, StoreData: true})
	if err != nil {
		return nil, err
	}
	return &QueueManager{m: m}, nil
}

// EnqueuePacket segments data onto flow q; it returns the segment count.
func (qm *QueueManager) EnqueuePacket(q uint32, data []byte) (int, error) {
	return qm.m.EnqueuePacket(queue.QueueID(q), data)
}

// DequeuePacket removes and reassembles the packet at the head of flow q.
func (qm *QueueManager) DequeuePacket(q uint32) ([]byte, error) {
	data, _, err := qm.m.DequeuePacket(queue.QueueID(q))
	return data, err
}

// DequeuePacketView removes the packet at the head of flow q as a
// zero-copy view over its segment chain — no reassembly buffer, no copy.
// The caller must Release the view exactly once; its segments stay
// checked out of the pool (lent, visible in CheckInvariants' conservation
// law) until then.
func (qm *QueueManager) DequeuePacketView(q uint32) (PacketView, error) {
	return qm.m.DequeuePacketView(queue.QueueID(q))
}

// ReservePacket opens an n-byte write-in-place reservation on flow q:
// the segment run is allocated and linked now, the caller fills it
// through PacketWriter.Range, and Commit makes the packet visible in
// O(1) without the payload ever being copied.
func (qm *QueueManager) ReservePacket(q uint32, n int) (PacketWriter, error) {
	return qm.m.ReservePacket(queue.QueueID(q), n)
}

// MovePacket relinks the head packet of one flow onto another without
// copying data; it returns the number of segments moved.
func (qm *QueueManager) MovePacket(from, to uint32) (int, error) {
	return qm.m.MovePacket(queue.QueueID(from), queue.QueueID(to))
}

// DeletePacket drops the head packet of flow q, returning its segment count.
func (qm *QueueManager) DeletePacket(q uint32) (int, error) {
	return qm.m.DeletePacket(queue.QueueID(q))
}

// Len returns the number of queued segments on flow q.
func (qm *QueueManager) Len(q uint32) (int, error) {
	return qm.m.Len(queue.QueueID(q))
}

// PacketLen returns the byte and segment length of the head packet of q.
func (qm *QueueManager) PacketLen(q uint32) (bytes, segments int, err error) {
	return qm.m.PacketLen(queue.QueueID(q))
}

// FreeSegments returns the remaining pool capacity.
func (qm *QueueManager) FreeSegments() int { return qm.m.FreeSegments() }

// CheckInvariants validates the pointer structures (for tests/debugging).
func (qm *QueueManager) CheckInvariants() error { return qm.m.CheckInvariants() }

// MMS is the timed hardware queue manager of Section 6.
type MMS struct {
	m *core.MMS
}

// NewMMS builds an MMS with the paper's reference configuration (32K flows,
// 4 ports, 8 DDR banks) and the given segment pool size (0 means 64K).
func NewMMS(segments int) (*MMS, error) {
	m, err := core.New(core.Config{NumSegments: segments, StoreData: true})
	if err != nil {
		return nil, err
	}
	return &MMS{m: m}, nil
}

// Push segments a packet onto flow q through the Segmentation block.
func (h *MMS) Push(q uint32, data []byte) (segments int, err error) {
	return h.m.Seg.Push(queue.QueueID(q), data)
}

// Pop reassembles and removes the head packet of flow q through the
// Reassembly block.
func (h *MMS) Pop(q uint32) ([]byte, error) {
	data, _, err := h.m.Reasm.Pop(queue.QueueID(q))
	return data, err
}

// Move relinks the head packet between flows (the MMS Move command).
func (h *MMS) Move(from, to uint32) (int, error) {
	resp, err := h.m.Do(core.Request{Cmd: core.CmdMove, Queue: queue.QueueID(from), Dest: queue.QueueID(to)})
	if err != nil {
		return 0, err
	}
	return resp.Moved, nil
}

// Backlog returns the number of queued segments on flow q.
func (h *MMS) Backlog(q uint32) (int, error) {
	return h.m.Queues().Len(queue.QueueID(q))
}

// CommandCycles returns the execution latency of each MMS command in
// 125 MHz cycles (Table 4).
func (h *MMS) CommandCycles() map[string]int {
	out := make(map[string]int)
	for cmd, cycles := range core.Table4() {
		out[cmd.String()] = cycles
	}
	return out
}

// HeadlineThroughputGbps is the sustained forwarding throughput of the MMS
// (the paper's 6.145 Gbps at 125 MHz).
func HeadlineThroughputGbps() float64 { return core.HeadlineThroughputGbps() }

// SoftwareTransitMbps returns the reference-NPU software throughput for the
// given copy engine name ("word", "line", "dma") at the given clock — the
// Section 5 baseline the MMS is compared against.
func SoftwareTransitMbps(copyEngine string, clockMHz float64) (float64, error) {
	var e npu.CopyEngine
	switch copyEngine {
	case "word":
		e = npu.WordCopy
	case "line":
		e = npu.LineCopy
	case "dma":
		e = npu.DMACopy
	default:
		return 0, fmt.Errorf("npqm: unknown copy engine %q (want word, line or dma)", copyEngine)
	}
	return npu.TransitMbps(e, clockMHz), nil
}

// IXPKpps returns the IXP1200 software queue-management packet rate for the
// given queue count and microengine count (Table 2).
func IXPKpps(queues, engines int) (float64, error) {
	p, err := ixp.ProfileForQueues(queues)
	if err != nil {
		return 0, err
	}
	res, err := ixp.Run(ixp.Config{Profile: p, Engines: engines})
	if err != nil {
		return 0, err
	}
	return res.Kpps, nil
}

// Report writes the full paper-vs-measured reproduction report (all five
// tables, both figures) to w. decisions controls the DDR simulation length
// (0 means 400000).
func Report(w io.Writer, seed uint64, decisions int) error {
	if decisions == 0 {
		decisions = 400_000
	}
	out, err := tables.RenderAll(seed, decisions)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, out)
	return err
}
