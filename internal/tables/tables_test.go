package tables

import (
	"math"
	"strings"
	"testing"
)

const quickDecisions = 100_000

func TestTable1AgainstPaper(t *testing.T) {
	rows, err := Table1(DefaultSeed, quickDecisions)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Conflict-only columns are tight; RW columns carry the model
		// ambiguity documented in EXPERIMENTS.md.
		if math.Abs(r.NoOptConflicts-r.PaperNoOptConflicts) > 0.015 {
			t.Errorf("banks %d no-opt conflicts: %.3f vs paper %.3f", r.Banks, r.NoOptConflicts, r.PaperNoOptConflicts)
		}
		if math.Abs(r.OptConflicts-r.PaperOptConflicts) > 0.015 {
			t.Errorf("banks %d opt conflicts: %.3f vs paper %.3f", r.Banks, r.OptConflicts, r.PaperOptConflicts)
		}
		if math.Abs(r.NoOptConflictsRW-r.PaperNoOptConflictsRW) > 0.06 {
			t.Errorf("banks %d no-opt RW: %.3f vs paper %.3f", r.Banks, r.NoOptConflictsRW, r.PaperNoOptConflictsRW)
		}
		if math.Abs(r.OptConflictsRW-r.PaperOptConflictsRW) > 0.06 {
			t.Errorf("banks %d opt RW: %.3f vs paper %.3f", r.Banks, r.OptConflictsRW, r.PaperOptConflictsRW)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table 1") || strings.Count(out, "\n") < 6 {
		t.Fatalf("render too short:\n%s", out)
	}
}

func TestTable2AgainstPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if rel := math.Abs(r.OneME-r.PaperOne) / r.PaperOne; rel > 0.05 {
			t.Errorf("queues %d 1ME off %.1f%%", r.Queues, rel*100)
		}
		if rel := math.Abs(r.SixME-r.PaperSix) / r.PaperSix; rel > 0.05 {
			t.Errorf("queues %d 6ME off %.1f%%", r.Queues, rel*100)
		}
	}
	if !strings.Contains(RenderTable2(rows), "IXP1200") {
		t.Fatal("render missing title")
	}
}

func TestTable3AgainstPaper(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][2]string{
		"Dequeue Free List": {"34", "42"},
		"Enqueue Segment":   {"46,68", "52"},
		"Copy a segment":    {"136", "136"},
		"Total":             {"216,238", "230"},
	}
	for _, r := range rows {
		w, ok := want[r.Function]
		if !ok {
			t.Errorf("unexpected function %q", r.Function)
			continue
		}
		if r.Enqueue != w[0] || r.Dequeue != w[1] {
			t.Errorf("%s: got %s/%s want %s/%s", r.Function, r.Enqueue, r.Dequeue, w[0], w[1])
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "line-copy") || !strings.Contains(out, "DMA") {
		t.Fatal("render missing the Section 5.3 optimizations")
	}
}

func TestTable4AgainstPaper(t *testing.T) {
	rows := Table4()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, Table 4 has 9 commands", len(rows))
	}
	for _, r := range rows {
		if r.Cycles != r.Paper {
			t.Errorf("%s: %d vs paper %d", r.Command, r.Cycles, r.Paper)
		}
	}
	if !strings.Contains(RenderTable4(rows), "Enqueue") {
		t.Fatal("render broken")
	}
}

func TestTable5AgainstPaper(t *testing.T) {
	rows, err := Table5(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Point.ExecDelay-r.PaperExec) > 0.05 {
			t.Errorf("load %v exec %.2f vs paper %.1f", r.LoadGbps, r.Point.ExecDelay, r.PaperExec)
		}
		if math.Abs(r.Point.DataDelay-r.PaperData) > 3 {
			t.Errorf("load %v data %.1f vs paper %.1f", r.LoadGbps, r.Point.DataDelay, r.PaperData)
		}
	}
	out := RenderTable5(rows)
	if !strings.Contains(out, "headline") {
		t.Fatal("render missing headline")
	}
}

func TestFigures(t *testing.T) {
	f1 := RenderFigure1()
	for _, block := range []string{"PowerPC 405", "ZBT SRAM", "DDR SDRAM", "Ethernet MAC"} {
		if !strings.Contains(f1, block) {
			t.Errorf("Figure 1 render missing %q", block)
		}
	}
	f2 := RenderFigure2()
	for _, block := range []string{"Internal Scheduler", "Data Queue Manager", "Data Memory Controller", "Segmentation", "Reassembly", "BACKPRESSURE"} {
		if !strings.Contains(f2, block) {
			t.Errorf("Figure 2 render missing %q", block)
		}
	}
}

func TestRenderAll(t *testing.T) {
	out, err := RenderAll(DefaultSeed, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, title := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Figure 1", "Figure 2"} {
		if !strings.Contains(out, title) {
			t.Errorf("report missing %s", title)
		}
	}
}
