// Package tables regenerates every table and figure of the paper's
// evaluation, rendering paper-published values side by side with the values
// measured from this reproduction's models. cmd/qmtables is a thin wrapper
// around this package; the root benchmark harness exercises the same
// drivers.
package tables

import (
	"fmt"
	"strings"

	"npqm/internal/core"
	"npqm/internal/ddr"
	"npqm/internal/ixp"
	"npqm/internal/npu"
)

// DefaultSeed seeds every stochastic experiment for reproducible output.
const DefaultSeed = 20050307 // DATE'05 conference date

// Table1 regenerates the DDR throughput-loss table.
type Table1Row struct {
	Banks                 int
	NoOptConflicts        float64
	NoOptConflictsRW      float64
	OptConflicts          float64
	OptConflictsRW        float64
	PaperNoOptConflicts   float64
	PaperNoOptConflictsRW float64
	PaperOptConflicts     float64
	PaperOptConflictsRW   float64
}

// PaperTable1 holds the published values.
var PaperTable1 = map[int][4]float64{
	// banks: {noOpt/conflicts, noOpt/conflicts+RW, opt/conflicts, opt/conflicts+RW}
	1:  {0.750, 0.75, 0.750, 0.750},
	4:  {0.522, 0.5, 0.260, 0.331},
	8:  {0.384, 0.39, 0.046, 0.199},
	12: {0.305, 0.347, 0.012, 0.159},
	16: {0.253, 0.317, 0.003, 0.139},
}

// Table1 runs the four scheduler/penalty configurations over the paper's
// bank counts. decisions controls the simulation length per cell.
func Table1(seed uint64, decisions int) ([]Table1Row, error) {
	banks := []int{1, 4, 8, 12, 16}
	rows := make([]Table1Row, 0, len(banks))
	for _, b := range banks {
		row := Table1Row{Banks: b}
		p := PaperTable1[b]
		row.PaperNoOptConflicts, row.PaperNoOptConflictsRW = p[0], p[1]
		row.PaperOptConflicts, row.PaperOptConflictsRW = p[2], p[3]
		cells := []struct {
			dst   *float64
			sched ddr.SchedulerKind
			rw    bool
		}{
			{&row.NoOptConflicts, ddr.FCFSRoundRobin, false},
			{&row.NoOptConflictsRW, ddr.FCFSRoundRobin, true},
			{&row.OptConflicts, ddr.Reorder, false},
			{&row.OptConflictsRW, ddr.Reorder, true},
		}
		for _, c := range cells {
			res, err := ddr.RunSaturated(ddr.Config{
				Banks: b, Scheduler: c.sched, RWInterleave: c.rw,
			}, seed, decisions)
			if err != nil {
				return nil, err
			}
			*c.dst = res.Loss
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table 1, with the paper
// value in parentheses after each measured value.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: DDR-DRAM throughput loss using 1 to 16 banks (measured, paper in parens)\n")
	fmt.Fprintf(&b, "%5s | %-22s %-22s | %-22s %-22s\n", "banks",
		"no-opt conflicts", "no-opt conf+RW", "opt conflicts", "opt conf+RW")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d | %6.3f (%5.3f)%8s %6.3f (%5.3f)%8s | %6.3f (%5.3f)%8s %6.3f (%5.3f)\n",
			r.Banks,
			r.NoOptConflicts, r.PaperNoOptConflicts, "",
			r.NoOptConflictsRW, r.PaperNoOptConflictsRW, "",
			r.OptConflicts, r.PaperOptConflicts, "",
			r.OptConflictsRW, r.PaperOptConflictsRW)
	}
	return b.String()
}

// Table2Row pairs measured and paper packet rates.
type Table2Row struct {
	Queues       int
	OneME, SixME float64 // measured Kpps
	PaperOne     float64
	PaperSix     float64
}

// PaperTable2 holds the published Kpps values.
var PaperTable2 = map[int][2]float64{
	16:   {956, 5600},
	128:  {390, 2300},
	1024: {60, 300},
}

// Table2 runs the IXP1200 model for the paper's queue counts.
func Table2() ([]Table2Row, error) {
	raw, err := ixp.RunTable2()
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, 0, len(raw))
	for _, r := range raw {
		p := PaperTable2[r.Queues]
		rows = append(rows, Table2Row{
			Queues:   r.Queues,
			OneME:    r.OneEngine.Kpps,
			SixME:    r.SixEngines.Kpps,
			PaperOne: p[0],
			PaperSix: p[1],
		})
	}
	return rows, nil
}

// RenderTable2 formats the IXP table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Maximum rate serviced when queue management runs on IXP1200\n")
	fmt.Fprintf(&b, "%-12s | %-24s | %-24s\n", "queues", "1 microengine", "6 microengines")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d | %7.0f Kpps (%5.0f)    | %7.2f Mpps (%4.1f)\n",
			r.Queues, r.OneME, r.PaperOne, r.SixME/1e3, r.PaperSix/1e3)
	}
	return b.String()
}

// Table3Row pairs measured and paper cycle counts for one function row.
type Table3Row struct {
	Function string
	Enqueue  string // rendered (may be "46/68" style)
	Dequeue  string
	Paper    string
}

// Table3 reproduces the cycles-per-operation table.
func Table3() []Table3Row {
	rows := npu.Table3()
	out := make([]Table3Row, 0, len(rows))
	paper := []string{"34 / 42", "46,68* / 52", "136 / 136", "216,238 / 230"}
	for i, r := range rows {
		enq := fmt.Sprintf("%d", r.Enqueue)
		if r.EnqueueR != 0 && r.EnqueueR != r.Enqueue {
			enq = fmt.Sprintf("%d,%d", r.Enqueue, r.EnqueueR)
		}
		out = append(out, Table3Row{
			Function: r.Function,
			Enqueue:  enq,
			Dequeue:  fmt.Sprintf("%d", r.Dequeue),
			Paper:    paper[i],
		})
	}
	return out
}

// RenderTable3 formats the NPU cycle table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Cycles per packet operation on the reference NPU (PowerPC 405 @ 100 MHz)\n")
	fmt.Fprintf(&b, "%-20s | %-10s | %-8s | %s\n", "function", "enqueue", "dequeue", "paper (enq / deq)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s | %-10s | %-8s | %s\n", r.Function, r.Enqueue, r.Dequeue, r.Paper)
	}
	fmt.Fprintf(&b, "optimizations: line-copy enq/deq = %d/%d cycles (paper: 128/118); DMA setup 16 + 34 transfer\n",
		npu.EnqueueCost(false, npu.LineCopy).CPUCycles(), npu.DequeueCost(npu.LineCopy).CPUCycles())
	fmt.Fprintf(&b, "sustained transit: word %3.0f Mbps, line %3.0f Mbps, dma %3.0f Mbps at 100 MHz\n",
		npu.TransitMbps(npu.WordCopy, 100), npu.TransitMbps(npu.LineCopy, 100), npu.TransitMbps(npu.DMACopy, 100))
	return b.String()
}

// Table4Row pairs a command with its measured and published latency.
type Table4Row struct {
	Command string
	Cycles  int
	Paper   int
}

// Table4 reproduces the MMS command latency table.
func Table4() []Table4Row {
	out := make([]Table4Row, 0, 9)
	for _, c := range core.Commands() {
		out = append(out, Table4Row{Command: c.String(), Cycles: c.Cycles(), Paper: c.PaperCycles()})
	}
	return out
}

// RenderTable4 formats the MMS latency table.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Latency of the MMS commands (125 MHz clock)\n")
	fmt.Fprintf(&b, "%-30s | %-7s | %s\n", "command", "cycles", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s | %-7d | %d\n", r.Command, r.Cycles, r.Paper)
	}
	return b.String()
}

// Table5Row pairs measured and published delay decompositions.
type Table5Row struct {
	LoadGbps   float64
	Point      core.LoadPoint
	PaperFIFO  float64
	PaperExec  float64
	PaperData  float64
	PaperTotal float64
}

// PaperTable5 holds the published rows keyed by load.
var PaperTable5 = map[float64][4]float64{
	6.14: {68, 10.5, 31.3, 109.8},
	4.8:  {57, 10.5, 30.8, 98.3},
	4:    {20, 10.5, 30, 60.5},
	3.2:  {20, 10.5, 29.1, 59.6},
	1.6:  {20, 10.5, 28, 58.5},
}

// Table5 runs the MMS load sweep.
func Table5(seed uint64) ([]Table5Row, error) {
	pts, err := core.RunTable5(seed)
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, 0, len(pts))
	for _, p := range pts {
		paper := PaperTable5[p.LoadGbps]
		rows = append(rows, Table5Row{
			LoadGbps: p.LoadGbps, Point: p,
			PaperFIFO: paper[0], PaperExec: paper[1], PaperData: paper[2], PaperTotal: paper[3],
		})
	}
	return rows, nil
}

// RenderTable5 formats the delay table.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: MMS delays (cycles @ 125 MHz; measured, paper in parens)\n")
	fmt.Fprintf(&b, "%-10s | %-16s %-16s %-16s %-18s\n", "load Gbps", "FIFO", "execution", "data", "total")
	for _, r := range rows {
		p := r.Point
		fmt.Fprintf(&b, "%-10.2f | %6.1f (%4.1f)   %6.1f (%4.1f)   %6.1f (%4.1f)   %6.1f (%5.1f)\n",
			r.LoadGbps, p.FIFODelay, r.PaperFIFO, p.ExecDelay, r.PaperExec,
			p.DataDelay, r.PaperData, p.TotalDelay, r.PaperTotal)
	}
	fmt.Fprintf(&b, "headline: %.2f Gbps sustained (paper: 6.145 Gbps, 12 Mops/s)\n",
		core.HeadlineThroughputGbps())
	return b.String()
}

// RenderFigure1 prints the reference NPU topology of Figure 1.
func RenderFigure1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: NPU core architecture on the Virtex-II Pro (component graph)\n")
	for _, c := range npu.Architecture() {
		attach := strings.Join(c.Attach, ", ")
		if attach == "" {
			attach = "-"
		}
		fmt.Fprintf(&b, "  %-22s [%-10s] %s\n", c.Name, attach, c.Role)
	}
	return b.String()
}

// RenderFigure2 prints the MMS block structure of Figure 2 with each
// block's live statistics interface.
func RenderFigure2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: MMS architecture (five parallel blocks)\n")
	blocks := []struct{ name, role string }{
		{"Internal Scheduler", "per-port command FIFOs with service priorities (back-pressure on full)"},
		{"Data Queue Manager", "executes queue commands against the pointer SRAM (Table 4 micro-programs)"},
		{"Data Memory Controller", "banked DDR access, interleaved commands to minimize bank conflicts"},
		{"Segmentation", "cuts incoming packets into 64-byte segments"},
		{"Reassembly", "rebuilds packets from per-flow segment queues"},
	}
	for _, bl := range blocks {
		fmt.Fprintf(&b, "  %-24s %s\n", bl.name, bl.role)
	}
	fmt.Fprintf(&b, "  interfaces: IN, OUT, CPU commands; DATA to DRAM; pointers to SRAM; BACKPRESSURE to sources\n")
	return b.String()
}

// RenderAll produces the full report.
func RenderAll(seed uint64, ddrDecisions int) (string, error) {
	var b strings.Builder
	t1, err := Table1(seed, ddrDecisions)
	if err != nil {
		return "", err
	}
	b.WriteString(RenderTable1(t1))
	b.WriteString("\n")
	t2, err := Table2()
	if err != nil {
		return "", err
	}
	b.WriteString(RenderTable2(t2))
	b.WriteString("\n")
	b.WriteString(RenderTable3(Table3()))
	b.WriteString("\n")
	b.WriteString(RenderTable4(Table4()))
	b.WriteString("\n")
	t5, err := Table5(seed)
	if err != nil {
		return "", err
	}
	b.WriteString(RenderTable5(t5))
	b.WriteString("\n")
	b.WriteString(RenderFigure1())
	b.WriteString("\n")
	b.WriteString(RenderFigure2())
	return b.String(), nil
}
