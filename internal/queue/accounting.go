package queue

// This file adds the buffer-management layer the paper's Section 1/2 places
// next to per-flow queuing ("buffer and traffic management"): per-queue
// occupancy accounting and admission thresholds, so callers can implement
// tail-drop or weighted drop policies per flow instead of sharing the whole
// segment pool first-come-first-served.

import "fmt"

// Occupancy describes a queue's current buffer usage.
type Occupancy struct {
	Segments int // linked segments
	Bytes    int // payload bytes across those segments
	Packets  int // complete packets (EOP markers) in the queue
}

// Occupancy returns the live usage of queue q. Byte and packet counts are
// maintained incrementally (O(1) per operation), mirroring the occupancy
// counters a hardware queue manager keeps beside the queue table.
func (m *Manager) Occupancy(q QueueID) (Occupancy, error) {
	if err := m.checkQueue(q); err != nil {
		return Occupancy{}, err
	}
	return Occupancy{
		Segments: int(m.qsegs[q]),
		Bytes:    int(m.qbytes[q]),
		Packets:  int(m.qpkts[q]),
	}, nil
}

// SetSegmentLimit caps queue q at the given number of linked segments
// (0 removes the cap). Enqueues beyond the cap fail with ErrQueueLimit.
//
// The cap is an admission threshold, not a reservation: setting it below
// the queue's current occupancy only blocks future enqueues. Limits larger
// than the segment pool are unreachable (the pool empties first), so they
// are clamped to NumSegments; SegmentLimit reports the clamped value.
func (m *Manager) SetSegmentLimit(q QueueID, limit int) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	if limit < 0 {
		return fmt.Errorf("%w: negative limit %d", ErrBadLength, limit)
	}
	if limit > m.cfg.NumSegments {
		limit = m.cfg.NumSegments
	}
	if m.qlimit == nil {
		if limit == 0 {
			return nil
		}
		m.qlimit = make([]int32, m.cfg.NumQueues)
	}
	m.qlimit[q] = int32(limit)
	return nil
}

// SegmentLimit returns queue q's admission cap (0 = uncapped).
func (m *Manager) SegmentLimit(q QueueID) (int, error) {
	if err := m.checkQueue(q); err != nil {
		return 0, err
	}
	if m.qlimit == nil {
		return 0, nil
	}
	return int(m.qlimit[q]), nil
}

// admissible reports whether n more segments may join queue q.
func (m *Manager) admissible(q QueueID, n int) bool {
	if m.qlimit == nil || m.qlimit[q] == 0 {
		return true
	}
	return m.qsegs[q]+int32(n) <= m.qlimit[q]
}

// TotalBuffered returns the pool-wide buffered byte count.
func (m *Manager) TotalBuffered() int { return int(m.totalBytes) }

// noteLink updates accounting when segment s joins queue q.
func (m *Manager) noteLink(q QueueID, s Seg) {
	m.qbytes[q] += int32(m.segLen[s])
	m.totalBytes += int64(m.segLen[s])
	m.queuedSegs++
	if m.eop[s] {
		m.qpkts[q]++
	}
	m.fixLongest(q)
}

// noteUnlink updates accounting when segment s leaves queue q.
func (m *Manager) noteUnlink(q QueueID, s Seg) {
	m.qbytes[q] -= int32(m.segLen[s])
	m.totalBytes -= int64(m.segLen[s])
	m.queuedSegs--
	if m.eop[s] {
		m.qpkts[q]--
	}
	m.fixLongest(q)
}

// noteRewrite updates accounting when a queued segment's length or EOP
// marker changes in place.
func (m *Manager) noteRewrite(q QueueID, oldLen int, oldEOP bool, newLen int, newEOP bool) {
	d := int32(newLen - oldLen)
	m.qbytes[q] += d
	m.totalBytes += int64(d)
	if oldEOP != newEOP {
		if newEOP {
			m.qpkts[q]++
		} else {
			m.qpkts[q]--
		}
	}
}
