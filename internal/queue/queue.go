// Package queue implements the paper's central data structure: a
// segment-aligned, linked-list queue manager with a hardware-style free list
// and queue table, supporting per-flow queuing for up to 32K flows
// (Sections 5.2 and 6).
//
// Incoming data items are partitioned into fixed-size segments of 64 bytes.
// Queues of packets are kept as single-linked lists of segment indices; a
// free list holds the unused segments; a queue table holds head/tail
// pointers for every flow. All state lives in flat arrays indexed by segment
// or queue number — the same layout the hardware keeps in its pointer SRAM —
// so the timed models can charge one pointer-memory access per array touch.
//
// The Manager implements every MMS queue operation from Section 6:
//
//  1. enqueue one segment,
//  2. delete one segment or a full packet,
//  3. overwrite a segment (data and/or length),
//  4. append a segment at the head or tail of a packet,
//  5. move a packet to a new queue (pure pointer surgery, no data copy).
//
// Packet boundaries are marked with an end-of-packet (EOP) flag on the last
// segment, as in ATM AAL5 and the paper's segmentation scheme.
package queue

import (
	"errors"
	"fmt"

	"npqm/internal/segstore"
)

// SegmentBytes is the fixed segment size used throughout the paper.
const SegmentBytes = 64

// DefaultNumQueues is the MMS flow count ("per flow queuing for up to 32K
// flows").
const DefaultNumQueues = 32 * 1024

// nilSeg is the null segment pointer.
const nilSeg = int32(-1)

// Seg is a segment handle (index into the segment pool).
type Seg int32

// Nil reports whether the handle is the null pointer.
func (s Seg) Nil() bool { return int32(s) == nilSeg }

// QueueID identifies one of the per-flow queues.
type QueueID uint32

// Errors returned by Manager operations.
var (
	ErrNoFreeSegments = errors.New("queue: out of free segments")
	ErrQueueEmpty     = errors.New("queue: queue is empty")
	ErrBadQueue       = errors.New("queue: queue id out of range")
	ErrBadLength      = errors.New("queue: segment length out of range")
	ErrBadSegment     = errors.New("queue: segment handle out of range")
	ErrSegmentState   = errors.New("queue: segment in wrong state for operation")
	ErrNoPacket       = errors.New("queue: no complete packet at queue head")
	ErrQueueLimit     = errors.New("queue: per-queue segment limit exceeded")
	ErrWriterDone     = errors.New("queue: packet writer already committed or aborted")
)

// Segment lifecycle states are tracked per segment in the store's State
// array (see segstore): they turn pointer-corruption bugs in callers into
// errors instead of silent cross-linked queues.
const (
	stateFree     = segstore.StateFree
	stateQueued   = segstore.StateQueued
	stateFloating = segstore.StateFloating // allocated, not yet linked into a queue
	stateLent     = segstore.StateLent     // checked out as a zero-copy view or reservation
)

// Config sizes a Manager.
type Config struct {
	// NumQueues is the number of flow queues (0 means DefaultNumQueues).
	NumQueues int
	// NumSegments is the segment pool size (required, > 0).
	NumSegments int
	// StoreData controls whether segment payloads are actually stored.
	// The timed models disable it: they only exercise pointer traffic.
	StoreData bool
}

// Manager is the queue management engine. It is not safe for concurrent use;
// the hardware it models is a single pipeline, and the timed wrappers
// serialize commands exactly as the MMS scheduler does. Managers built with
// NewWithStore share one segment slab: each is still single-threaded, but
// several of them (each under its own lock) draw from the same pool.
type Manager struct {
	cfg Config

	// src is the segment store this manager allocates from; the slices
	// below alias its slab so the hot path never goes through the
	// interface for pointer-memory access.
	src segstore.Source

	// Per-segment pointer memory (the ZBT SRAM contents). With a shared
	// store these arrays are shared with every other manager on the slab;
	// each manager touches only segments it currently owns.
	next   []int32
	segLen []uint16
	eop    []bool
	state  []uint8
	refs   []int32 // per-chain-head view refcounts (atomic access only)

	// Queue table.
	qhead []int32
	qtail []int32
	qsegs []int32 // segments per queue

	// Buffer-management accounting (see accounting.go).
	qbytes     []int32 // payload bytes per queue
	qpkts      []int32 // complete packets per queue
	qlimit     []int32 // per-queue segment cap (nil/0 = uncapped)
	totalBytes int64

	queuedSegs int32 // total segments linked across this manager's queues
	floating   int32 // segments allocated but not yet queued

	// Longest-queue tracking (see pushout.go): an indexed max-heap over
	// qsegs, maintained only when heapPos is non-nil. Multi-segment packet
	// operations move whole chains with one accounting update, so the heap
	// reconciles once per packet by construction.
	heap    []int32
	heapPos []int32

	// run is the scratch buffer bulk packet operations stage segment runs
	// in; it grows to the largest packet seen and is reused, so the packet
	// hot path performs no heap allocation.
	run []int32

	// Drop accounting: packets removed by push-out or DropHeadPacket.
	droppedPackets  uint64
	droppedSegments uint64

	// deferPub suppresses the per-operation free-count publish (see
	// SetDeferPublish): the single-writer fast path for owners whose
	// pool-wide occupancy nobody reads between operations.
	deferPub bool

	// Data memory (aliases the store's payload slab; nil when disabled).
	data []byte
}

// New returns a Manager over a private segment pool with all segments on a
// FIFO free list — the seed behavior, kept for the timed models whose DDR
// bank-interleaving measurements depend on FIFO reuse order.
func New(cfg Config) (*Manager, error) {
	if cfg.NumSegments <= 0 {
		return nil, fmt.Errorf("queue: NumSegments must be positive, got %d", cfg.NumSegments)
	}
	src, err := segstore.NewPrivate(segstore.Config{
		NumSegments:  cfg.NumSegments,
		SegmentBytes: SegmentBytes,
		StoreData:    cfg.StoreData,
	})
	if err != nil {
		return nil, err
	}
	return NewWithStore(cfg, src)
}

// NewWithStore returns a Manager drawing segments from src — typically one
// cache of a shared segstore.Store, so several managers (the engine's
// shards) allocate from a single pool. cfg.NumSegments and cfg.StoreData
// are taken from the store.
func NewWithStore(cfg Config, src segstore.Source) (*Manager, error) {
	if cfg.NumQueues == 0 {
		cfg.NumQueues = DefaultNumQueues
	}
	if cfg.NumQueues < 0 {
		return nil, fmt.Errorf("queue: negative NumQueues %d", cfg.NumQueues)
	}
	cfg.NumSegments = src.NumSegments()
	view := src.View()
	cfg.StoreData = view.Data != nil
	m := &Manager{
		cfg:    cfg,
		src:    src,
		next:   view.Next,
		segLen: view.Len,
		eop:    view.EOP,
		state:  view.State,
		refs:   view.Refs,
		data:   view.Data,
		qhead:  make([]int32, cfg.NumQueues),
		qtail:  make([]int32, cfg.NumQueues),
		qsegs:  make([]int32, cfg.NumQueues),
		qbytes: make([]int32, cfg.NumQueues),
		qpkts:  make([]int32, cfg.NumQueues),
	}
	for q := range m.qhead {
		m.qhead[q], m.qtail[q] = nilSeg, nilSeg
	}
	return m, nil
}

// NumQueues returns the configured queue count.
func (m *Manager) NumQueues() int { return m.cfg.NumQueues }

// NumSegments returns the segment pool size (the whole shared pool for a
// manager on a shared store).
func (m *Manager) NumSegments() int { return m.cfg.NumSegments }

// FreeSegments returns the pool-wide free population. On a shared store
// this spans the depot and every owner's magazine cache — the occupancy
// signal shared-buffer admission policies consult.
func (m *Manager) FreeSegments() int { return m.src.FreeSegments() }

// AvailSegments returns the number of segments this manager could allocate
// right now: unlike FreeSegments it excludes segments cached by other
// owners of a shared store.
func (m *Manager) AvailSegments() int { return m.src.Avail() }

// QueuedSegments returns the total segments linked across this manager's
// queues.
func (m *Manager) QueuedSegments() int { return int(m.queuedSegs) }

// Floating returns the number of segments allocated but not yet linked.
func (m *Manager) Floating() int { return int(m.floating) }

// SharedStore reports whether this manager draws from a pool shared with
// other managers.
func (m *Manager) SharedStore() bool { return m.src.Shared() }

// FlushFree hands this manager's cached free segments back to the shared
// pool so other managers can allocate them (no-op for a private pool).
func (m *Manager) FlushFree() { m.src.Flush() }

// SetDeferPublish switches off (or back on) the per-operation publish of
// the shared store's free-count mirror. Only a single-writer owner may
// defer, and only while nothing consults pool-wide occupancy between its
// operations — the engine's ring-datapath workers do so when no admission
// policy is configured, removing the one atomic store per queue op from the
// hot path. Turning deferral off republishes immediately. No-op semantics
// on a private pool (whose Publish is already a no-op).
func (m *Manager) SetDeferPublish(on bool) {
	m.deferPub = on
	if !on {
		m.src.Publish()
	}
	if c, ok := m.src.(*segstore.Cache); ok {
		c.SetDeferred(on)
	}
}

// PublishFree force-publishes the free-count mirror regardless of deferral,
// for observation paths (stats, invariant checks) that need an exact
// pool-wide count from a deferring owner.
func (m *Manager) PublishFree() {
	if c, ok := m.src.(*segstore.Cache); ok {
		c.ForcePublish()
		return
	}
	m.src.Publish()
}

// publish is the per-operation mirror refresh, skipped while deferred.
func (m *Manager) publish() {
	if !m.deferPub {
		m.src.Publish()
	}
}

// Len returns the number of segments queued on q.
func (m *Manager) Len(q QueueID) (int, error) {
	if err := m.checkQueue(q); err != nil {
		return 0, err
	}
	return int(m.qsegs[q]), nil
}

// Empty reports whether queue q holds no segments.
func (m *Manager) Empty(q QueueID) (bool, error) {
	n, err := m.Len(q)
	return n == 0, err
}

func (m *Manager) checkQueue(q QueueID) error {
	if int(q) >= m.cfg.NumQueues {
		return fmt.Errorf("%w: %d (have %d)", ErrBadQueue, q, m.cfg.NumQueues)
	}
	return nil
}

func (m *Manager) checkSeg(s Seg) error {
	if s.Nil() || int(s) >= m.cfg.NumSegments {
		return fmt.Errorf("%w: %d", ErrBadSegment, s)
	}
	return nil
}

// Alloc takes a segment from the store ("Dequeue Free List" in the paper's
// operation breakdown). The segment is in the floating state until linked
// into a queue or freed.
func (m *Manager) Alloc() (Seg, error) {
	s, err := m.allocSeg()
	m.publish()
	return s, err
}

// allocSeg is Alloc without the free-count publish; multi-segment
// operations use it and publish once at the end.
func (m *Manager) allocSeg() (Seg, error) {
	s, ok := m.src.Alloc()
	if !ok {
		return Seg(nilSeg), ErrNoFreeSegments
	}
	m.next[s] = nilSeg
	m.state[s] = stateFloating
	m.floating++
	return Seg(s), nil
}

// Free returns a floating segment to the store ("Enqueue Free List").
func (m *Manager) Free(s Seg) error {
	err := m.freeSeg(s)
	m.publish()
	return err
}

// freeSeg is Free without the free-count publish.
func (m *Manager) freeSeg(s Seg) error {
	if err := m.checkSeg(s); err != nil {
		return err
	}
	if m.state[s] != stateFloating {
		return fmt.Errorf("%w: Free of segment %d in state %d", ErrSegmentState, s, m.state[s])
	}
	m.state[s] = stateFree
	m.floating--
	m.segLen[s] = 0
	m.eop[s] = false
	m.src.Free(int32(s))
	return nil
}

// SegInfo describes a queued or dequeued segment.
type SegInfo struct {
	Seg Seg  // handle
	Len int  // payload length in bytes (1..SegmentBytes)
	EOP bool // end-of-packet marker
}

// setPayload validates and stores payload into segment s.
func (m *Manager) setPayload(s Seg, payload []byte, eop bool) error {
	n := len(payload)
	if n < 1 || n > SegmentBytes {
		return fmt.Errorf("%w: %d bytes", ErrBadLength, n)
	}
	m.segLen[s] = uint16(n)
	m.eop[s] = eop
	if m.data != nil {
		base := int(s) * SegmentBytes
		copied := copy(m.data[base:base+SegmentBytes], payload)
		clear(m.data[base+copied : base+SegmentBytes])
	}
	return nil
}

// payload returns the stored bytes of segment s (nil if data storage is
// disabled).
func (m *Manager) payload(s Seg) []byte {
	if m.data == nil {
		return nil
	}
	base := int(s) * SegmentBytes
	out := make([]byte, m.segLen[s])
	copy(out, m.data[base:])
	return out
}

// Enqueue allocates a segment, fills it with payload and links it at the
// tail of queue q. This is the MMS "Enqueue one segment" command.
func (m *Manager) Enqueue(q QueueID, payload []byte, eop bool) (Seg, error) {
	s, err := m.enqueueSeg(q, payload, eop)
	m.publish()
	return s, err
}

// enqueueSeg is Enqueue without the free-count publish.
func (m *Manager) enqueueSeg(q QueueID, payload []byte, eop bool) (Seg, error) {
	if err := m.checkQueue(q); err != nil {
		return Seg(nilSeg), err
	}
	if !m.admissible(q, 1) {
		return Seg(nilSeg), fmt.Errorf("%w: queue %d at %d segments", ErrQueueLimit, q, m.qsegs[q])
	}
	s, err := m.allocSeg()
	if err != nil {
		return s, err
	}
	if err := m.setPayload(s, payload, eop); err != nil {
		m.freeSeg(s) // payload invalid; segment returns to the pool
		return Seg(nilSeg), err
	}
	m.linkTail(q, s)
	return s, nil
}

// AppendHead allocates a segment and links it at the *head* of queue q — the
// MMS "append a segment at the head of a packet" command, used for protocol
// encapsulation (prepending headers without copying the packet).
func (m *Manager) AppendHead(q QueueID, payload []byte, eop bool) (Seg, error) {
	if err := m.checkQueue(q); err != nil {
		return Seg(nilSeg), err
	}
	if !m.admissible(q, 1) {
		return Seg(nilSeg), fmt.Errorf("%w: queue %d at %d segments", ErrQueueLimit, q, m.qsegs[q])
	}
	s, err := m.allocSeg()
	if err != nil {
		m.publish()
		return s, err
	}
	if err := m.setPayload(s, payload, eop); err != nil {
		m.freeSeg(s)
		m.publish()
		return Seg(nilSeg), err
	}
	m.linkHead(q, s)
	m.publish()
	return s, nil
}

func (m *Manager) linkTail(q QueueID, s Seg) {
	m.next[s] = nilSeg
	if m.qtail[q] == nilSeg {
		m.qhead[q] = int32(s)
	} else {
		m.next[m.qtail[q]] = int32(s)
	}
	m.qtail[q] = int32(s)
	m.qsegs[q]++
	m.state[s] = stateQueued
	m.floating--
	m.noteLink(q, s)
}

func (m *Manager) linkHead(q QueueID, s Seg) {
	m.next[s] = m.qhead[q]
	m.qhead[q] = int32(s)
	if m.qtail[q] == nilSeg {
		m.qtail[q] = int32(s)
	}
	m.qsegs[q]++
	m.state[s] = stateQueued
	m.floating--
	m.noteLink(q, s)
}

// unlinkHead removes and returns the head segment of q (caller checked
// non-empty). The segment becomes floating.
func (m *Manager) unlinkHead(q QueueID) Seg {
	s := m.qhead[q]
	m.qhead[q] = m.next[s]
	if m.qhead[q] == nilSeg {
		m.qtail[q] = nilSeg
	}
	m.next[s] = nilSeg
	m.qsegs[q]--
	m.state[s] = stateFloating
	m.floating++
	m.noteUnlink(q, Seg(s))
	return Seg(s)
}

// Dequeue unlinks the head segment of q, frees it, and returns its
// description and payload. This is the MMS "Dequeue" command.
func (m *Manager) Dequeue(q QueueID) (SegInfo, []byte, error) {
	info, payload, err := m.dequeueSeg(q)
	m.publish()
	return info, payload, err
}

// dequeueSeg is Dequeue without the free-count publish.
func (m *Manager) dequeueSeg(q QueueID) (SegInfo, []byte, error) {
	if err := m.checkQueue(q); err != nil {
		return SegInfo{}, nil, err
	}
	if m.qhead[q] == nilSeg {
		return SegInfo{}, nil, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	info := SegInfo{Seg: Seg(m.qhead[q]), Len: int(m.segLen[m.qhead[q]]), EOP: m.eop[m.qhead[q]]}
	payload := m.payload(info.Seg)
	s := m.unlinkHead(q)
	m.freeSeg(s)
	return info, payload, nil
}

// ReadHead returns the head segment of q without dequeuing it — the MMS
// "Read" command.
func (m *Manager) ReadHead(q QueueID) (SegInfo, []byte, error) {
	if err := m.checkQueue(q); err != nil {
		return SegInfo{}, nil, err
	}
	h := m.qhead[q]
	if h == nilSeg {
		return SegInfo{}, nil, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	info := SegInfo{Seg: Seg(h), Len: int(m.segLen[h]), EOP: m.eop[h]}
	return info, m.payload(Seg(h)), nil
}

// DeleteSegment unlinks and frees the head segment of q without returning
// data — the MMS "Delete one segment" command.
func (m *Manager) DeleteSegment(q QueueID) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	if m.qhead[q] == nilSeg {
		return fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	s := m.unlinkHead(q)
	err := m.freeSeg(s)
	m.publish()
	return err
}

// DeletePacket unlinks and frees the whole packet at the head of q (all
// segments through the first EOP). It returns the number of segments freed —
// the MMS "Delete ... a full packet" command. If the queue holds no complete
// packet the queue is left untouched and ErrNoPacket is returned.
func (m *Manager) DeletePacket(q QueueID) (int, error) {
	if err := m.checkQueue(q); err != nil {
		return 0, err
	}
	end, n, err := m.findPacketEnd(q)
	if err != nil {
		return 0, err
	}
	m.consumeHeadChain(q, int32(end), n, nil, false)
	m.publish()
	return n, nil
}

// findPacketEnd walks from the head of q to the first EOP segment, returning
// its index and the number of segments in the packet.
func (m *Manager) findPacketEnd(q QueueID) (Seg, int, error) {
	h := m.qhead[q]
	if h == nilSeg {
		return Seg(nilSeg), 0, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	n := 1
	for s := h; s != nilSeg; s = m.next[s] {
		if m.eop[s] {
			return Seg(s), n, nil
		}
		n++
	}
	return Seg(nilSeg), 0, fmt.Errorf("%w: queue %d", ErrNoPacket, q)
}

// Overwrite replaces the payload of the head segment of q in place — the MMS
// "Overwrite a segment" command (used e.g. for header modification). The
// EOP flag is preserved.
func (m *Manager) Overwrite(q QueueID, payload []byte) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	h := m.qhead[q]
	if h == nilSeg {
		return fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	oldLen, oldEOP := int(m.segLen[h]), m.eop[h]
	if err := m.setPayload(Seg(h), payload, m.eop[h]); err != nil {
		return err
	}
	m.noteRewrite(q, oldLen, oldEOP, int(m.segLen[h]), m.eop[h])
	return nil
}

// OverwriteLength updates only the stored length of the head segment of q —
// the MMS "Overwrite_Segment_length" command (7 cycles in Table 4: it is a
// metadata-only operation with no data-memory access).
func (m *Manager) OverwriteLength(q QueueID, n int) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	h := m.qhead[q]
	if h == nilSeg {
		return fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	if n < 1 || n > SegmentBytes {
		return fmt.Errorf("%w: %d bytes", ErrBadLength, n)
	}
	m.noteRewrite(q, int(m.segLen[h]), m.eop[h], n, m.eop[h])
	m.segLen[h] = uint16(n)
	return nil
}

// MovePacket relinks the packet at the head of from onto the tail of to
// without touching data memory — the MMS "Move a packet to a new queue"
// command. It returns the number of segments moved.
func (m *Manager) MovePacket(from, to QueueID) (int, error) {
	if err := m.checkQueue(from); err != nil {
		return 0, err
	}
	if err := m.checkQueue(to); err != nil {
		return 0, err
	}
	end, n, err := m.findPacketEnd(from)
	if err != nil {
		return 0, err
	}
	if from == to {
		// Moving a packet to its own queue rotates it to the tail.
		if int(m.qsegs[from]) == n {
			return n, nil // whole queue is the packet: no-op
		}
	} else if !m.admissible(to, n) {
		return 0, fmt.Errorf("%w: queue %d cannot accept %d segments", ErrQueueLimit, to, n)
	}
	first := m.qhead[from]
	// Transfer the chain's byte/packet accounting.
	var chainBytes int32
	for s := first; ; s = m.next[s] {
		chainBytes += int32(m.segLen[s])
		if s == int32(end) {
			break
		}
	}
	m.qbytes[from] -= chainBytes
	m.qpkts[from]--
	m.qbytes[to] += chainBytes
	m.qpkts[to]++
	// Unlink the chain [first..end] from the source queue.
	m.qhead[from] = m.next[end]
	if m.qhead[from] == nilSeg {
		m.qtail[from] = nilSeg
	}
	m.qsegs[from] -= int32(n)
	// Link the chain onto the destination tail.
	m.next[end] = nilSeg
	if m.qtail[to] == nilSeg {
		m.qhead[to] = first
	} else {
		m.next[m.qtail[to]] = first
	}
	m.qtail[to] = int32(end)
	m.qsegs[to] += int32(n)
	m.fixLongest(from)
	m.fixLongest(to)
	return n, nil
}

// OverwriteAndMove combines Overwrite with MovePacket — the MMS
// "Overwrite_Segment&Move" command (12 cycles in Table 4). The head segment
// of from is overwritten, then the head packet moves to queue to.
func (m *Manager) OverwriteAndMove(from, to QueueID, payload []byte) (int, error) {
	if err := m.Overwrite(from, payload); err != nil {
		return 0, err
	}
	return m.MovePacket(from, to)
}

// OverwriteLengthAndMove combines OverwriteLength with MovePacket — the MMS
// "Overwrite_Segment_length&Move" command (12 cycles in Table 4).
func (m *Manager) OverwriteLengthAndMove(from, to QueueID, n int) (int, error) {
	if err := m.OverwriteLength(from, n); err != nil {
		return 0, err
	}
	return m.MovePacket(from, to)
}

// Walk calls fn for each segment of q from head to tail, stopping early if
// fn returns false. It is read-only and used by tests and the reassembler.
func (m *Manager) Walk(q QueueID, fn func(info SegInfo) bool) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	for s := m.qhead[q]; s != nilSeg; s = m.next[s] {
		if !fn(SegInfo{Seg: Seg(s), Len: int(m.segLen[s]), EOP: m.eop[s]}) {
			return nil
		}
	}
	return nil
}

// Payload returns a copy of the stored payload of segment s (nil when data
// storage is disabled).
func (m *Manager) Payload(s Seg) ([]byte, error) {
	if err := m.checkSeg(s); err != nil {
		return nil, err
	}
	return m.payload(s), nil
}
