package queue

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzManagerCommands drives a small Manager with a byte-coded command
// stream — enqueue, dequeue, move, set-limit, push-out — and cross-checks
// every step against a trivially correct reference model (queues as slices
// of byte-slice packets). The reference recomputes admissibility, free
// space, victim selection and payload contents from first principles, so
// any divergence in the pointer engine (or its heap, accounting, or limit
// handling) surfaces as a mismatch rather than silent corruption.
//
// Command records are 3 bytes: opcode, operand a, operand b.
//
//	op%5 == 0: enqueue  q=a%8, size=1+2*b bytes
//	op%5 == 1: dequeue  q=a%8
//	op%5 == 2: move     from=a%8, to=b%8
//	op%5 == 3: setlimit q=a%8, limit=b%64 (pool is 48: exercises clamping)
//	op%5 == 4: push-out longest
func FuzzManagerCommands(f *testing.F) {
	f.Add([]byte("\x00\x00\x64\x00\x01\xc8\x00\x02\x32\x01\x00\x00\x02\x00\x01\x04\x00\x00"))
	f.Add([]byte("\x03\x01\x3f\x00\x01\xff\x00\x01\xff\x00\x01\xff\x01\x01\x00\x04\x00\x00\x04\x00\x00"))
	f.Add([]byte("\x00\x00\x10\x00\x01\x10\x02\x00\x01\x02\x01\x01\x03\x00\x02\x00\x00\x01\x01\x00\x00"))
	f.Add([]byte("\x00\x07\x7f\x00\x07\x7f\x00\x07\x7f\x00\x06\x01\x04\x00\x00\x02\x07\x06\x01\x06\x00"))

	const (
		nq   = 8
		pool = 48
	)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := New(Config{NumQueues: nq, NumSegments: pool, StoreData: true})
		if err != nil {
			t.Fatal(err)
		}
		m.SetLongestTracking(true)

		// Reference model.
		var (
			queues [nq][][]byte
			limits [nq]int
			free   = pool
		)
		segsOf := func(b []byte) int { return (len(b) + SegmentBytes - 1) / SegmentBytes }
		qsegs := func(q int) int {
			n := 0
			for _, p := range queues[q] {
				n += segsOf(p)
			}
			return n
		}
		longest := func() (int, int) { // lowest-ID queue with max segments
			best, bestLen := 0, 0
			for q := 0; q < nq; q++ {
				if n := qsegs(q); n > bestLen {
					best, bestLen = q, n
				}
			}
			return best, bestLen
		}

		var fill byte
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i]%5, data[i+1], data[i+2]
			switch op {
			case 0: // enqueue
				q := int(a) % nq
				size := 1 + 2*int(b)
				pkt := make([]byte, size)
				for j := range pkt {
					pkt[j] = fill
					fill++
				}
				need := segsOf(pkt)
				var wantErr error
				if limits[q] != 0 && qsegs(q)+need > limits[q] {
					wantErr = ErrQueueLimit
				} else if need > free {
					wantErr = ErrNoFreeSegments
				}
				n, err := m.EnqueuePacket(QueueID(q), pkt)
				if wantErr != nil {
					if !errors.Is(err, wantErr) {
						t.Fatalf("op %d: enqueue(q=%d, %dB) err = %v, reference wants %v", i, q, size, err, wantErr)
					}
					continue
				}
				if err != nil || n != need {
					t.Fatalf("op %d: enqueue(q=%d, %dB) = (%d, %v), reference wants (%d, nil)", i, q, size, n, err, need)
				}
				queues[q] = append(queues[q], pkt)
				free -= need

			case 1: // dequeue
				q := int(a) % nq
				got, n, err := m.DequeuePacket(QueueID(q))
				if len(queues[q]) == 0 {
					if !errors.Is(err, ErrQueueEmpty) {
						t.Fatalf("op %d: dequeue(empty q=%d) err = %v, want ErrQueueEmpty", i, q, err)
					}
					continue
				}
				want := queues[q][0]
				if err != nil || n != segsOf(want) || !bytes.Equal(got, want) {
					t.Fatalf("op %d: dequeue(q=%d) = (%dB, %d, %v), reference wants (%dB, %d, nil)",
						i, q, len(got), n, err, len(want), segsOf(want))
				}
				queues[q] = queues[q][1:]
				free += n

			case 2: // move
				from, to := int(a)%nq, int(b)%nq
				n, err := m.MovePacket(QueueID(from), QueueID(to))
				if len(queues[from]) == 0 {
					if !errors.Is(err, ErrQueueEmpty) {
						t.Fatalf("op %d: move(empty %d->%d) err = %v, want ErrQueueEmpty", i, from, to, err)
					}
					continue
				}
				head := queues[from][0]
				need := segsOf(head)
				if from == to {
					if err != nil || n != need {
						t.Fatalf("op %d: rotate(q=%d) = (%d, %v), want (%d, nil)", i, from, n, err, need)
					}
					if len(queues[from]) > 1 { // whole-queue packet is a no-op
						queues[from] = append(queues[from][1:], head)
					}
					continue
				}
				if limits[to] != 0 && qsegs(to)+need > limits[to] {
					if !errors.Is(err, ErrQueueLimit) {
						t.Fatalf("op %d: move(%d->%d over limit) err = %v, want ErrQueueLimit", i, from, to, err)
					}
					continue
				}
				if err != nil || n != need {
					t.Fatalf("op %d: move(%d->%d) = (%d, %v), want (%d, nil)", i, from, to, n, err, need)
				}
				queues[from] = queues[from][1:]
				queues[to] = append(queues[to], head)

			case 3: // setlimit
				q := int(a) % nq
				limit := int(b) % 64
				if err := m.SetSegmentLimit(QueueID(q), limit); err != nil {
					t.Fatalf("op %d: setlimit(q=%d, %d): %v", i, q, limit, err)
				}
				if limit > pool {
					limit = pool // the documented clamp
				}
				limits[q] = limit
				if got, _ := m.SegmentLimit(QueueID(q)); got != limit {
					t.Fatalf("op %d: SegmentLimit(q=%d) = %d, want %d", i, q, got, limit)
				}

			case 4: // push-out longest
				victimWant, maxLen := longest()
				q, n, err := m.PushOutLongest()
				if maxLen == 0 {
					if !errors.Is(err, ErrQueueEmpty) {
						t.Fatalf("op %d: push-out on empty err = %v, want ErrQueueEmpty", i, err)
					}
					continue
				}
				head := queues[victimWant][0]
				if err != nil || int(q) != victimWant || n != segsOf(head) {
					t.Fatalf("op %d: push-out = (q=%d, %d, %v), reference wants (q=%d, %d, nil)",
						i, q, n, err, victimWant, segsOf(head))
				}
				queues[victimWant] = queues[victimWant][1:]
				free += n
			}

			if i%(3*32) == 0 {
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}

		// Final full cross-check: occupancy, free space, invariants.
		if got := m.FreeSegments(); got != free {
			t.Fatalf("free segments %d, reference says %d", got, free)
		}
		for q := 0; q < nq; q++ {
			occ, err := m.Occupancy(QueueID(q))
			if err != nil {
				t.Fatal(err)
			}
			wantBytes, wantPkts := 0, len(queues[q])
			for _, p := range queues[q] {
				wantBytes += len(p)
			}
			if occ.Segments != qsegs(q) || occ.Bytes != wantBytes || occ.Packets != wantPkts {
				t.Fatalf("queue %d occupancy %+v, reference wants %d segs / %d B / %d pkts",
					q, occ, qsegs(q), wantBytes, wantPkts)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
