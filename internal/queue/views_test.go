package queue

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"npqm/internal/segstore"
)

// newSharedManager builds a manager over a shared store, the configuration
// under which view releases and writer aborts are safe from any goroutine.
func newSharedManager(t *testing.T, segs int) *Manager {
	t.Helper()
	st, err := segstore.New(segstore.Config{
		NumSegments: segs, SegmentBytes: SegmentBytes, StoreData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithStore(Config{NumQueues: 8}, st.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDequeuePacketViewRoundTrip(t *testing.T) {
	m := newTestManager(t, 64)
	payload := make([]byte, 3*SegmentBytes+17)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	segs, err := m.EnqueuePacket(1, payload)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	v, err := m.DequeuePacketView(1)
	if err != nil {
		t.Fatalf("view dequeue: %v", err)
	}
	if !v.Valid() {
		t.Fatal("view not valid")
	}
	if v.Len() != len(payload) || v.Segments() != segs {
		t.Fatalf("view shape = (%d bytes, %d segs), want (%d, %d)",
			v.Len(), v.Segments(), len(payload), segs)
	}
	if got := v.AppendTo(nil); !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %d bytes", len(got))
	}
	// The chain is out of the queue but not yet back in the pool.
	if m.LentSegments() != segs {
		t.Fatalf("lent = %d, want %d", m.LentSegments(), segs)
	}
	if free := m.FreeSegments(); free != 64-segs {
		t.Fatalf("free = %d while view held, want %d", free, 64-segs)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants with view outstanding: %v", err)
	}
	v.Release()
	if m.LentSegments() != 0 {
		t.Fatalf("lent = %d after release, want 0", m.LentSegments())
	}
	if free := m.FreeSegments(); free != 64 {
		t.Fatalf("free = %d after release, want 64", free)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after release: %v", err)
	}
}

func TestPacketViewErrors(t *testing.T) {
	m := newTestManager(t, 16)
	if _, err := m.DequeuePacketView(0); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("empty queue: %v", err)
	}
	// Raw segments without an EOP are not a packet.
	if _, err := m.Enqueue(2, make([]byte, 8), false); err != nil {
		t.Fatalf("raw enqueue: %v", err)
	}
	if _, err := m.DequeuePacketView(2); !errors.Is(err, ErrNoPacket) {
		t.Fatalf("no EOP: %v", err)
	}
	// The failed view dequeue must leave the queue servable by the view path
	// once the packet completes.
	if _, err := m.Enqueue(2, make([]byte, 8), true); err != nil {
		t.Fatalf("raw enqueue 2: %v", err)
	}
	v, err := m.DequeuePacketView(2)
	if err != nil {
		t.Fatalf("view after completion: %v", err)
	}
	if v.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", v.Segments())
	}
	v.Release()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPacketViewRetainCrossGoroutine(t *testing.T) {
	m := newSharedManager(t, 64)
	payload := make([]byte, 2*SegmentBytes)
	if _, err := m.EnqueuePacket(0, payload); err != nil {
		t.Fatal(err)
	}
	v, err := m.DequeuePacketView(0)
	if err != nil {
		t.Fatal(err)
	}
	// Hand extra references to concurrent readers; the chain must survive
	// until the last reference anywhere drops.
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		v.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			v.Range(func(seg []byte) bool { n += len(seg); return true })
			if n != v.Len() {
				t.Errorf("read %d bytes, want %d", n, v.Len())
			}
			v.Release()
		}()
	}
	v.Release() // the dequeue's own reference
	wg.Wait()
	if m.LentSegments() != 0 {
		t.Fatalf("lent = %d after all releases, want 0", m.LentSegments())
	}
	if m.FreeSegments() != 64 {
		t.Fatalf("free = %d, want 64", m.FreeSegments())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPacketViewDoubleReleasePanics(t *testing.T) {
	m := newTestManager(t, 16)
	if _, err := m.EnqueuePacket(0, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	v, err := m.DequeuePacketView(0)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	v.Release()
}

func TestViewReleaserBatch(t *testing.T) {
	m := newSharedManager(t, 256)
	payload := make([]byte, 3*SegmentBytes)
	var views []PacketView
	for i := 0; i < 10; i++ {
		if _, err := m.EnqueuePacket(QueueID(i%4), payload); err != nil {
			t.Fatal(err)
		}
	}
	for q := QueueID(0); q < 4; q++ {
		for {
			v, err := m.DequeuePacketView(q)
			if err != nil {
				break
			}
			views = append(views, v)
		}
	}
	if len(views) != 10 {
		t.Fatalf("dequeued %d views, want 10", len(views))
	}
	// A retained view must survive the batch release.
	views[3].Retain()
	var r ViewReleaser
	for _, v := range views {
		r.Add(v)
	}
	r.Flush()
	if lent := m.LentSegments(); lent != 3 {
		t.Fatalf("lent = %d after batch release, want 3 (the retained view)", lent)
	}
	views[3].Release()
	if lent := m.LentSegments(); lent != 0 {
		t.Fatalf("lent = %d after final release, want 0", lent)
	}
	if free := m.FreeSegments(); free != 256 {
		t.Fatalf("free = %d, want 256", free)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A drained accumulator flushes as a no-op, and over-release through
	// the accumulator panics like a direct Release.
	r.Flush()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after final release did not panic")
		}
	}()
	r.Add(views[3])
}

func TestReserveCommitRoundTrip(t *testing.T) {
	m := newTestManager(t, 64)
	payload := make([]byte, 2*SegmentBytes+5)
	for i := range payload {
		payload[i] = byte(i)
	}
	w, err := m.ReservePacket(3, len(payload))
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if !w.Valid() || w.Len() != len(payload) || w.Segments() != 3 || w.Queue() != 3 {
		t.Fatalf("writer shape = (%v, %d, %d, %d)", w.Valid(), w.Len(), w.Segments(), w.Queue())
	}
	// Reserved segments are lent, and the packet is not yet in the queue.
	if m.LentSegments() != 3 {
		t.Fatalf("lent = %d during reservation, want 3", m.LentSegments())
	}
	if n, _ := m.Len(3); n != 0 {
		t.Fatalf("queue len = %d before commit, want 0", n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants with reservation open: %v", err)
	}
	off := 0
	w.Range(func(seg []byte) bool {
		off += copy(seg, payload[off:])
		return true
	})
	if off != len(payload) {
		t.Fatalf("writer exposed %d bytes, want %d", off, len(payload))
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := w.Commit(); !errors.Is(err, ErrWriterDone) {
		t.Fatalf("second commit: %v, want ErrWriterDone", err)
	}
	if m.LentSegments() != 0 {
		t.Fatalf("lent = %d after commit, want 0", m.LentSegments())
	}
	got, _, err := m.DequeuePacket(3)
	if err != nil {
		t.Fatalf("dequeue: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("committed payload mismatch")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveAbort(t *testing.T) {
	m := newSharedManager(t, 16)
	w, err := m.ReservePacket(0, 3*SegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- w.Abort() }() // any-goroutine, like a failed readv
	if err := <-done; err != nil {
		t.Fatalf("abort: %v", err)
	}
	if err := w.Abort(); !errors.Is(err, ErrWriterDone) {
		t.Fatalf("second abort: %v, want ErrWriterDone", err)
	}
	if m.LentSegments() != 0 || m.FreeSegments() != 16 {
		t.Fatalf("lent=%d free=%d after abort, want 0/16", m.LentSegments(), m.FreeSegments())
	}
	if n, _ := m.Len(0); n != 0 {
		t.Fatalf("queue len = %d after abort, want 0", n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveErrors(t *testing.T) {
	m := newTestManager(t, 4)
	if _, err := m.ReservePacket(0, 0); !errors.Is(err, ErrBadLength) {
		t.Fatalf("zero length: %v", err)
	}
	if _, err := m.ReservePacket(0, 5*SegmentBytes); !errors.Is(err, ErrNoFreeSegments) {
		t.Fatalf("oversized: %v", err)
	}
	if err := m.SetSegmentLimit(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReservePacket(0, 2*SegmentBytes); !errors.Is(err, ErrQueueLimit) {
		t.Fatalf("over limit: %v", err)
	}
	if m.LentSegments() != 0 || m.FreeSegments() != 4 {
		t.Fatalf("lent=%d free=%d after failed reserves", m.LentSegments(), m.FreeSegments())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestViewLifecycleProperty mixes copy enqueues, reservations (committed
// and aborted), copy dequeues and view dequeues with cross-goroutine
// releases, then checks conservation: everything lent comes back, and the
// pool refills exactly.
func TestViewLifecycleProperty(t *testing.T) {
	const pool = 256
	m := newSharedManager(t, pool)
	rng := rand.New(rand.NewSource(7))
	var wg sync.WaitGroup
	release := func(v PacketView) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Release()
		}()
	}
	payload := make([]byte, 4*SegmentBytes)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	for step := 0; step < 4000; step++ {
		q := QueueID(rng.Intn(8))
		n := 1 + rng.Intn(len(payload)-1)
		switch rng.Intn(5) {
		case 0:
			_, _ = m.EnqueuePacket(q, payload[:n])
		case 1:
			w, err := m.ReservePacket(q, n)
			if err != nil {
				continue
			}
			off := 0
			w.Range(func(seg []byte) bool {
				off += copy(seg, payload[off:n])
				return true
			})
			if rng.Intn(4) == 0 {
				if err := w.Abort(); err != nil {
					t.Fatalf("abort: %v", err)
				}
			} else if err := w.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
		case 2:
			if data, _, err := m.DequeuePacket(q); err == nil {
				if len(data) == 0 {
					t.Fatal("empty copy dequeue")
				}
			}
		default:
			v, err := m.DequeuePacketView(q)
			if err != nil {
				continue
			}
			if got := v.AppendTo(nil); !bytes.Equal(got, payload[:v.Len()]) {
				t.Fatalf("step %d: view payload mismatch (%d bytes)", step, v.Len())
			}
			if rng.Intn(3) == 0 {
				release(v)
			} else {
				v.Release()
			}
		}
		if step%256 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Drain the queues through the view path and wait out the releasers.
	for q := QueueID(0); q < 8; q++ {
		for {
			v, err := m.DequeuePacketView(q)
			if err != nil {
				break
			}
			release(v)
		}
	}
	wg.Wait()
	if m.LentSegments() != 0 {
		t.Fatalf("lent = %d after drain, want 0", m.LentSegments())
	}
	if m.FreeSegments() != pool {
		t.Fatalf("free = %d after drain, want %d", m.FreeSegments(), pool)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
