package queue

import (
	"errors"
	"testing"
)

func TestOccupancyTracksOperations(t *testing.T) {
	m := newTestManager(t, 32)
	if occ, _ := m.Occupancy(0); occ != (Occupancy{}) {
		t.Fatalf("fresh occupancy = %+v", occ)
	}
	m.Enqueue(0, make([]byte, 64), false)
	m.Enqueue(0, make([]byte, 10), true)
	occ, err := m.Occupancy(0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.Segments != 2 || occ.Bytes != 74 || occ.Packets != 1 {
		t.Fatalf("occupancy = %+v", occ)
	}
	if m.TotalBuffered() != 74 {
		t.Fatalf("total = %d", m.TotalBuffered())
	}
	// Overwrite shrinks the head segment.
	if err := m.Overwrite(0, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	occ, _ = m.Occupancy(0)
	if occ.Bytes != 14 {
		t.Fatalf("bytes after overwrite = %d", occ.Bytes)
	}
	// OverwriteLength adjusts too.
	if err := m.OverwriteLength(0, 60); err != nil {
		t.Fatal(err)
	}
	occ, _ = m.Occupancy(0)
	if occ.Bytes != 70 {
		t.Fatalf("bytes after length overwrite = %d", occ.Bytes)
	}
	// Dequeue drains the accounting.
	m.Dequeue(0)
	m.Dequeue(0)
	occ, _ = m.Occupancy(0)
	if occ != (Occupancy{}) || m.TotalBuffered() != 0 {
		t.Fatalf("occupancy after drain = %+v total=%d", occ, m.TotalBuffered())
	}
	mustInvariants(t, m)
}

func TestOccupancyMoveTransfers(t *testing.T) {
	m := newTestManager(t, 32)
	m.EnqueuePacket(1, make([]byte, 100)) // 2 segments, 100 bytes
	m.EnqueuePacket(1, make([]byte, 64))  // second packet stays
	if _, err := m.MovePacket(1, 2); err != nil {
		t.Fatal(err)
	}
	occ1, _ := m.Occupancy(1)
	occ2, _ := m.Occupancy(2)
	if occ1.Bytes != 64 || occ1.Packets != 1 {
		t.Fatalf("source occupancy = %+v", occ1)
	}
	if occ2.Bytes != 100 || occ2.Packets != 1 || occ2.Segments != 2 {
		t.Fatalf("dest occupancy = %+v", occ2)
	}
	if m.TotalBuffered() != 164 {
		t.Fatalf("total = %d", m.TotalBuffered())
	}
	mustInvariants(t, m)
}

func TestSegmentLimitTailDrop(t *testing.T) {
	m := newTestManager(t, 32)
	if err := m.SetSegmentLimit(3, 2); err != nil {
		t.Fatal(err)
	}
	if lim, _ := m.SegmentLimit(3); lim != 2 {
		t.Fatalf("limit = %d", lim)
	}
	m.Enqueue(3, []byte{1}, true)
	m.Enqueue(3, []byte{2}, true)
	if _, err := m.Enqueue(3, []byte{3}, true); !errors.Is(err, ErrQueueLimit) {
		t.Fatalf("err = %v", err)
	}
	// The drop must not leak a segment.
	if m.FreeSegments() != 30 {
		t.Fatalf("free = %d", m.FreeSegments())
	}
	// Draining restores admission.
	m.Dequeue(3)
	if _, err := m.Enqueue(3, []byte{3}, true); err != nil {
		t.Fatal(err)
	}
	// Removing the cap restores unbounded admission.
	if err := m.SetSegmentLimit(3, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Enqueue(3, []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	mustInvariants(t, m)
}

func TestSegmentLimitPacketAdmission(t *testing.T) {
	m := newTestManager(t, 32)
	m.SetSegmentLimit(0, 3)
	// A 4-segment packet must be rejected whole, not truncated.
	if _, err := m.EnqueuePacket(0, make([]byte, 4*SegmentBytes)); !errors.Is(err, ErrQueueLimit) {
		t.Fatalf("err = %v", err)
	}
	if n, _ := m.Len(0); n != 0 {
		t.Fatalf("len = %d after rejected packet", n)
	}
	if _, err := m.EnqueuePacket(0, make([]byte, 3*SegmentBytes)); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
}

func TestSegmentLimitMoveAdmission(t *testing.T) {
	m := newTestManager(t, 32)
	m.SetSegmentLimit(5, 1)
	m.EnqueuePacket(4, make([]byte, 2*SegmentBytes))
	if _, err := m.MovePacket(4, 5); !errors.Is(err, ErrQueueLimit) {
		t.Fatalf("err = %v", err)
	}
	// Source untouched on rejection.
	if n, _ := m.Len(4); n != 2 {
		t.Fatalf("source len = %d", n)
	}
	// AppendHead also respects the cap.
	m.Enqueue(5, []byte{1}, true)
	if _, err := m.AppendHead(5, []byte{2}, false); !errors.Is(err, ErrQueueLimit) {
		t.Fatalf("err = %v", err)
	}
	mustInvariants(t, m)
}

func TestSegmentLimitValidation(t *testing.T) {
	m := newTestManager(t, 8)
	if err := m.SetSegmentLimit(99, 1); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
	if err := m.SetSegmentLimit(0, -1); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.SegmentLimit(99); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
	// No-op: clearing a cap that was never set allocates nothing.
	if err := m.SetSegmentLimit(0, 0); err != nil {
		t.Fatal(err)
	}
	if lim, _ := m.SegmentLimit(0); lim != 0 {
		t.Fatalf("limit = %d", lim)
	}
}

func TestOccupancyBadQueue(t *testing.T) {
	m := newTestManager(t, 8)
	if _, err := m.Occupancy(99); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeletePacketUpdatesAccounting(t *testing.T) {
	m := newTestManager(t, 32)
	m.EnqueuePacket(0, make([]byte, 150))
	m.EnqueuePacket(0, make([]byte, 64))
	if _, err := m.DeletePacket(0); err != nil {
		t.Fatal(err)
	}
	occ, _ := m.Occupancy(0)
	if occ.Bytes != 64 || occ.Packets != 1 {
		t.Fatalf("occupancy after delete = %+v", occ)
	}
	mustInvariants(t, m)
}
