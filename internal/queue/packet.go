package queue

import "fmt"

// EnqueuePacket segments data into SegmentBytes chunks and enqueues them on
// q, marking the last chunk EOP. It returns the number of segments used.
//
// This is the vectorized enqueue: the whole segment run is grabbed from the
// store in one AllocN, the chain is built off-queue (payload copies and link
// words written in a single pass, no per-segment accounting), and spliced
// onto the queue tail with one queue-table and accounting update — the same
// O(1) splice LinkPacketTail performs for cross-manager moves. Admission is
// charged for the full run up front, so the queue never holds a truncated
// packet: on a short allocation the partial run goes straight back to the
// store and the queue is untouched.
func (m *Manager) EnqueuePacket(q QueueID, data []byte) (int, error) {
	if err := m.checkQueue(q); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty packet", ErrBadLength)
	}
	needed := (len(data) + SegmentBytes - 1) / SegmentBytes
	if !m.admissible(q, needed) {
		return 0, fmt.Errorf("%w: queue %d cannot accept %d segments", ErrQueueLimit, q, needed)
	}
	// Check what this manager can actually allocate (its cache plus the
	// shared depot), not the pool-wide count: segments cached by other
	// owners are free but unreachable.
	if avail := m.src.Avail(); needed > avail {
		return 0, fmt.Errorf("%w: need %d segments, have %d",
			ErrNoFreeSegments, needed, avail)
	}
	run := m.runBuf(needed)
	if got := m.src.AllocN(run); got < needed {
		// Another owner drained the depot between the reservation check and
		// the grab. Nothing touched the queue yet, so there is no chain to
		// unwind — relink the partial run and hand it back in one FreeN.
		m.returnRun(run[:got])
		m.publish()
		return 0, fmt.Errorf("%w: need %d segments, got %d",
			ErrNoFreeSegments, needed, got)
	}
	last := needed - 1
	off := 0
	for i, s := range run {
		end := off + SegmentBytes
		if end > len(data) {
			end = len(data)
		}
		m.segLen[s] = uint16(end - off)
		m.eop[s] = i == last
		m.state[s] = stateQueued
		if m.data != nil {
			base := int(s) * SegmentBytes
			copied := copy(m.data[base:base+SegmentBytes], data[off:end])
			clear(m.data[base+copied : base+SegmentBytes])
		}
		if i < last {
			m.next[s] = run[i+1]
		} else {
			m.next[s] = nilSeg
		}
		off = end
	}
	head := run[0]
	if m.qtail[q] == nilSeg {
		m.qhead[q] = head
	} else {
		m.next[m.qtail[q]] = head
	}
	m.qtail[q] = run[last]
	m.linkChainAccounting(q, PacketChain{
		Head: Seg(head), Tail: Seg(run[last]), Segs: needed, Bytes: len(data),
	})
	m.publish()
	return needed, nil
}

// runBuf returns the manager's scratch run buffer, grown to hold n segment
// handles. It is reused across bulk operations, so steady-state packet
// enqueue performs no heap allocation.
func (m *Manager) runBuf(n int) []int32 {
	if cap(m.run) < n {
		m.run = make([]int32, n+n/2)
	}
	return m.run[:n]
}

// returnRun relinks a partially allocated run into one chain and gives it
// back to the store in a single FreeN. AllocN left the segments in the free
// state, so only the link words need rebuilding.
func (m *Manager) returnRun(run []int32) {
	if len(run) == 0 {
		return
	}
	for i := 0; i < len(run)-1; i++ {
		m.next[run[i]] = run[i+1]
	}
	m.src.FreeN(run[0], run[len(run)-1], int32(len(run)))
}

// DequeuePacket dequeues and reassembles the packet at the head of q.
// It requires data storage (Config.StoreData); otherwise it returns only
// the segment count with a nil payload.
func (m *Manager) DequeuePacket(q QueueID) ([]byte, int, error) {
	return m.DequeuePacketAppend(q, nil)
}

// DequeuePacketAppend is DequeuePacket appending into buf (which may be
// nil or recycled) instead of allocating, for callers that pool reassembly
// buffers. It returns the extended buffer and the segment count.
func (m *Manager) DequeuePacketAppend(q QueueID, buf []byte) ([]byte, int, error) {
	if err := m.checkQueue(q); err != nil {
		return buf, 0, err
	}
	end, n, err := m.findPacketEnd(q)
	if err != nil {
		return buf, 0, err
	}
	buf = m.consumeHeadChain(q, int32(end), n, buf, true)
	m.publish()
	return buf, n, nil
}

// consumeHeadChain is the vectorized inverse of EnqueuePacket: it unlinks
// the chain [qhead..end] (n segments, guaranteed by the caller's
// findPacketEnd) from q and returns it to the store whole. One pass over the
// chain copies payloads (when copyData and data storage is on) and scrubs
// per-segment metadata with the links still intact; then the queue table and
// accounting update once — mirroring UnlinkHeadPacket — and the chain goes
// back via a single FreeN instead of one Free per segment.
func (m *Manager) consumeHeadChain(q QueueID, end int32, n int, buf []byte, copyData bool) []byte {
	head := m.qhead[q]
	copyData = copyData && m.data != nil
	var chainBytes int32
	for s := head; ; s = m.next[s] {
		ln := m.segLen[s]
		chainBytes += int32(ln)
		if copyData {
			base := int(s) * SegmentBytes
			buf = append(buf, m.data[base:base+int(ln)]...)
		}
		m.segLen[s] = 0
		m.eop[s] = false
		m.state[s] = stateFree
		if s == end {
			break
		}
	}
	m.qhead[q] = m.next[end]
	if m.qhead[q] == nilSeg {
		m.qtail[q] = nilSeg
	}
	m.qsegs[q] -= int32(n)
	m.qbytes[q] -= chainBytes
	m.qpkts[q]--
	m.queuedSegs -= int32(n)
	m.totalBytes -= int64(chainBytes)
	m.fixLongest(q)
	m.src.FreeN(head, end, int32(n))
	return buf
}

// PacketLen returns the byte length and segment count of the packet at the
// head of q without dequeuing it.
func (m *Manager) PacketLen(q QueueID) (bytes, segments int, err error) {
	if err := m.checkQueue(q); err != nil {
		return 0, 0, err
	}
	h := m.qhead[q]
	if h == nilSeg {
		return 0, 0, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	for s := h; s != nilSeg; s = m.next[s] {
		bytes += int(m.segLen[s])
		segments++
		if m.eop[s] {
			return bytes, segments, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: queue %d", ErrNoPacket, q)
}

// CheckInvariants validates the pointer discipline this manager is
// responsible for:
//
//   - every queue's list is acyclic, its length matches the queue table,
//     its tail pointer matches the last element, and every member is in
//     the queued state;
//   - the per-queue byte/packet counters and the manager totals match the
//     walked lists;
//   - on a private pool it additionally walks the free list (via the
//     store), scans for floating segments, and checks segment
//     conservation: free + queued + floating + lent == pool size.
//
// With a shared store the free list and conservation span every manager on
// the slab, so those checks live on segstore.Store.CheckInvariants and the
// engine's aggregate CheckInvariants. It is O(pool size) and intended for
// tests and debugging.
func (m *Manager) CheckInvariants() error {
	seen := make([]bool, m.cfg.NumSegments)
	queued := int32(0)
	var walkedBytes int64
	for q := 0; q < m.cfg.NumQueues; q++ {
		n := int32(0)
		bytes := int32(0)
		pkts := int32(0)
		last := nilSeg
		for s := m.qhead[q]; s != nilSeg; s = m.next[s] {
			if seen[s] {
				return fmt.Errorf("queue: segment %d linked twice (queue %d)", s, q)
			}
			seen[s] = true
			if m.state[s] != stateQueued {
				return fmt.Errorf("queue: queued segment %d has state %d", s, m.state[s])
			}
			n++
			bytes += int32(m.segLen[s])
			if m.eop[s] {
				pkts++
			}
			last = s
			if n > int32(m.cfg.NumSegments) {
				return fmt.Errorf("queue: cycle in queue %d", q)
			}
		}
		if bytes != m.qbytes[q] {
			return fmt.Errorf("queue: queue %d holds %d bytes, counter says %d", q, bytes, m.qbytes[q])
		}
		if pkts != m.qpkts[q] {
			return fmt.Errorf("queue: queue %d holds %d packets, counter says %d", q, pkts, m.qpkts[q])
		}
		walkedBytes += int64(bytes)
		if n != m.qsegs[q] {
			return fmt.Errorf("queue: queue %d holds %d segments, table says %d", q, n, m.qsegs[q])
		}
		if m.qtail[q] != last {
			return fmt.Errorf("queue: queue %d tail pointer %d != last element %d", q, m.qtail[q], last)
		}
		if (m.qhead[q] == nilSeg) != (m.qtail[q] == nilSeg) {
			return fmt.Errorf("queue: queue %d head/tail nil mismatch", q)
		}
		queued += n
	}

	if walkedBytes != m.totalBytes {
		return fmt.Errorf("queue: %d bytes queued, counter says %d", walkedBytes, m.totalBytes)
	}
	if queued != m.queuedSegs {
		return fmt.Errorf("queue: %d segments queued, counter says %d", queued, m.queuedSegs)
	}
	if !m.src.Shared() {
		// Exclusive pool: the whole slab is ours, so scan for floating
		// segments, validate the free list, and check conservation.
		if err := m.src.CheckInvariants(); err != nil {
			return err
		}
		floating := int32(0)
		for s := range m.state {
			if m.state[s] == stateFloating {
				floating++
			}
		}
		if floating != m.floating {
			return fmt.Errorf("queue: %d floating segments, counter says %d", floating, m.floating)
		}
		lent := int32(m.src.Lent())
		if int32(m.src.FreeSegments())+queued+floating+lent != int32(m.cfg.NumSegments) {
			return fmt.Errorf("queue: conservation violated: %d free + %d queued + %d floating + %d lent != %d",
				m.src.FreeSegments(), queued, floating, lent, m.cfg.NumSegments)
		}
	}

	// Longest-queue heap discipline (when tracking is enabled): the heap
	// holds exactly the non-empty queues, positions match, and every parent
	// sorts no later than its children.
	if m.heapPos != nil {
		nonEmpty := 0
		for q := 0; q < m.cfg.NumQueues; q++ {
			if m.qsegs[q] > 0 {
				nonEmpty++
				if m.heapPos[q] < 0 {
					return fmt.Errorf("queue: non-empty queue %d missing from longest-heap", q)
				}
			} else if m.heapPos[q] >= 0 {
				return fmt.Errorf("queue: empty queue %d present in longest-heap", q)
			}
		}
		if nonEmpty != len(m.heap) {
			return fmt.Errorf("queue: longest-heap holds %d queues, %d are non-empty", len(m.heap), nonEmpty)
		}
		for i, q := range m.heap {
			if m.heapPos[q] != int32(i) {
				return fmt.Errorf("queue: longest-heap position of queue %d is %d, index says %d", q, m.heapPos[q], i)
			}
			if i > 0 && m.heapLess(int32(i), int32((i-1)/2)) {
				return fmt.Errorf("queue: longest-heap property violated at index %d (queue %d)", i, q)
			}
		}
	}
	return nil
}
