package queue

import "fmt"

// EnqueuePacket segments data into SegmentBytes chunks and enqueues them on
// q, marking the last chunk EOP. It returns the number of segments used.
// On allocation failure the partially enqueued segments are rolled back so
// the queue never holds a truncated packet.
func (m *Manager) EnqueuePacket(q QueueID, data []byte) (int, error) {
	if err := m.checkQueue(q); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty packet", ErrBadLength)
	}
	needed := (len(data) + SegmentBytes - 1) / SegmentBytes
	if !m.admissible(q, needed) {
		return 0, fmt.Errorf("%w: queue %d cannot accept %d segments", ErrQueueLimit, q, needed)
	}
	if needed > m.FreeSegments() {
		return 0, fmt.Errorf("%w: need %d segments, have %d",
			ErrNoFreeSegments, needed, m.FreeSegments())
	}
	if done := m.bulkFix(q); done != nil {
		defer done()
	}
	n := 0
	for off := 0; off < len(data); off += SegmentBytes {
		end := off + SegmentBytes
		if end > len(data) {
			end = len(data)
		}
		eop := end == len(data)
		if _, err := m.Enqueue(q, data[off:end], eop); err != nil {
			// Roll back: the reservation check above makes this
			// unreachable, but keep the queue consistent regardless.
			for i := 0; i < n; i++ {
				_ = m.deleteTailUnchecked(q)
			}
			return 0, err
		}
		n++
	}
	return n, nil
}

// deleteTailUnchecked removes the tail segment of q. Single-linked lists
// have no back pointers, so this walks from the head; it is only used on
// error-rollback paths.
func (m *Manager) deleteTailUnchecked(q QueueID) error {
	h := m.qhead[q]
	if h == nilSeg {
		return ErrQueueEmpty
	}
	if m.next[h] == nilSeg {
		return m.DeleteSegment(q)
	}
	prev := h
	for m.next[m.next[prev]] != nilSeg {
		prev = m.next[prev]
	}
	tail := m.next[prev]
	m.next[prev] = nilSeg
	m.qtail[q] = prev
	m.qsegs[q]--
	m.state[tail] = stateFloating
	m.floating++
	m.noteUnlink(q, Seg(tail))
	return m.Free(Seg(tail))
}

// DequeuePacket dequeues and reassembles the packet at the head of q.
// It requires data storage (Config.StoreData); otherwise it returns only
// the segment count with a nil payload.
func (m *Manager) DequeuePacket(q QueueID) ([]byte, int, error) {
	if err := m.checkQueue(q); err != nil {
		return nil, 0, err
	}
	_, n, err := m.findPacketEnd(q)
	if err != nil {
		return nil, 0, err
	}
	if done := m.bulkFix(q); done != nil {
		defer done()
	}
	var out []byte
	for i := 0; i < n; i++ {
		_, payload, err := m.Dequeue(q)
		if err != nil {
			return out, i, err
		}
		out = append(out, payload...)
	}
	if m.data == nil {
		return nil, n, nil
	}
	return out, n, nil
}

// DequeuePacketAppend is DequeuePacket appending into buf (which may be
// nil or recycled) instead of allocating, for callers that pool reassembly
// buffers. It returns the extended buffer and the segment count.
func (m *Manager) DequeuePacketAppend(q QueueID, buf []byte) ([]byte, int, error) {
	if err := m.checkQueue(q); err != nil {
		return buf, 0, err
	}
	_, n, err := m.findPacketEnd(q)
	if err != nil {
		return buf, 0, err
	}
	if done := m.bulkFix(q); done != nil {
		defer done()
	}
	for i := 0; i < n; i++ {
		h := m.qhead[q]
		if m.data != nil {
			base := int(h) * SegmentBytes
			buf = append(buf, m.data[base:base+int(m.segLen[h])]...)
		}
		s := m.unlinkHead(q)
		if err := m.Free(s); err != nil {
			return buf, i, err
		}
	}
	return buf, n, nil
}

// PacketLen returns the byte length and segment count of the packet at the
// head of q without dequeuing it.
func (m *Manager) PacketLen(q QueueID) (bytes, segments int, err error) {
	if err := m.checkQueue(q); err != nil {
		return 0, 0, err
	}
	h := m.qhead[q]
	if h == nilSeg {
		return 0, 0, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	for s := h; s != nilSeg; s = m.next[s] {
		bytes += int(m.segLen[s])
		segments++
		if m.eop[s] {
			return bytes, segments, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: queue %d", ErrNoPacket, q)
}

// CheckInvariants validates the global pointer discipline:
//
//   - segment conservation: free + queued + floating == pool size,
//   - the free list is acyclic, correctly counted, and every member is in
//     the free state,
//   - every queue's list is acyclic, its length matches the queue table,
//     its tail pointer matches the last element, and every member is in
//     the queued state.
//
// It is O(pool size) and intended for tests and debugging.
func (m *Manager) CheckInvariants() error {
	// Free list walk.
	seen := make([]bool, m.cfg.NumSegments)
	count := int32(0)
	last := nilSeg
	for s := m.freeHead; s != nilSeg; s = m.next[s] {
		if seen[s] {
			return fmt.Errorf("queue: free list cycle at segment %d", s)
		}
		seen[s] = true
		if m.state[s] != stateFree {
			return fmt.Errorf("queue: free-list segment %d has state %d", s, m.state[s])
		}
		count++
		last = s
	}
	if count != m.freeCount {
		return fmt.Errorf("queue: free list holds %d segments, counter says %d", count, m.freeCount)
	}
	if m.freeTail != last {
		return fmt.Errorf("queue: free tail pointer %d != last free element %d", m.freeTail, last)
	}
	if (m.freeHead == nilSeg) != (m.freeTail == nilSeg) {
		return fmt.Errorf("queue: free head/tail nil mismatch")
	}

	queued := int32(0)
	var walkedBytes int64
	for q := 0; q < m.cfg.NumQueues; q++ {
		n := int32(0)
		bytes := int32(0)
		pkts := int32(0)
		last := nilSeg
		for s := m.qhead[q]; s != nilSeg; s = m.next[s] {
			if seen[s] {
				return fmt.Errorf("queue: segment %d linked twice (queue %d)", s, q)
			}
			seen[s] = true
			if m.state[s] != stateQueued {
				return fmt.Errorf("queue: queued segment %d has state %d", s, m.state[s])
			}
			n++
			bytes += int32(m.segLen[s])
			if m.eop[s] {
				pkts++
			}
			last = s
			if n > int32(m.cfg.NumSegments) {
				return fmt.Errorf("queue: cycle in queue %d", q)
			}
		}
		if bytes != m.qbytes[q] {
			return fmt.Errorf("queue: queue %d holds %d bytes, counter says %d", q, bytes, m.qbytes[q])
		}
		if pkts != m.qpkts[q] {
			return fmt.Errorf("queue: queue %d holds %d packets, counter says %d", q, pkts, m.qpkts[q])
		}
		walkedBytes += int64(bytes)
		if n != m.qsegs[q] {
			return fmt.Errorf("queue: queue %d holds %d segments, table says %d", q, n, m.qsegs[q])
		}
		if m.qtail[q] != last {
			return fmt.Errorf("queue: queue %d tail pointer %d != last element %d", q, m.qtail[q], last)
		}
		if (m.qhead[q] == nilSeg) != (m.qtail[q] == nilSeg) {
			return fmt.Errorf("queue: queue %d head/tail nil mismatch", q)
		}
		queued += n
	}

	floating := int32(0)
	for s := range m.state {
		if m.state[s] == stateFloating {
			floating++
		}
	}
	if floating != m.floating {
		return fmt.Errorf("queue: %d floating segments, counter says %d", floating, m.floating)
	}
	if walkedBytes != m.totalBytes {
		return fmt.Errorf("queue: %d bytes queued, counter says %d", walkedBytes, m.totalBytes)
	}
	if m.freeCount+queued+floating != int32(m.cfg.NumSegments) {
		return fmt.Errorf("queue: conservation violated: %d free + %d queued + %d floating != %d",
			m.freeCount, queued, floating, m.cfg.NumSegments)
	}

	// Longest-queue heap discipline (when tracking is enabled): the heap
	// holds exactly the non-empty queues, positions match, and every parent
	// sorts no later than its children.
	if m.heapPos != nil {
		nonEmpty := 0
		for q := 0; q < m.cfg.NumQueues; q++ {
			if m.qsegs[q] > 0 {
				nonEmpty++
				if m.heapPos[q] < 0 {
					return fmt.Errorf("queue: non-empty queue %d missing from longest-heap", q)
				}
			} else if m.heapPos[q] >= 0 {
				return fmt.Errorf("queue: empty queue %d present in longest-heap", q)
			}
		}
		if nonEmpty != len(m.heap) {
			return fmt.Errorf("queue: longest-heap holds %d queues, %d are non-empty", len(m.heap), nonEmpty)
		}
		for i, q := range m.heap {
			if m.heapPos[q] != int32(i) {
				return fmt.Errorf("queue: longest-heap position of queue %d is %d, index says %d", q, m.heapPos[q], i)
			}
			if i > 0 && m.heapLess(int32(i), int32((i-1)/2)) {
				return fmt.Errorf("queue: longest-heap property violated at index %d (queue %d)", i, q)
			}
		}
	}
	return nil
}
