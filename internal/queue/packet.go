package queue

import "fmt"

// EnqueuePacket segments data into SegmentBytes chunks and enqueues them on
// q, marking the last chunk EOP. It returns the number of segments used.
// On allocation failure the partially enqueued segments are rolled back so
// the queue never holds a truncated packet.
func (m *Manager) EnqueuePacket(q QueueID, data []byte) (int, error) {
	if err := m.checkQueue(q); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty packet", ErrBadLength)
	}
	needed := (len(data) + SegmentBytes - 1) / SegmentBytes
	if !m.admissible(q, needed) {
		return 0, fmt.Errorf("%w: queue %d cannot accept %d segments", ErrQueueLimit, q, needed)
	}
	// Check what this manager can actually allocate (its cache plus the
	// shared depot), not the pool-wide count: segments cached by other
	// owners are free but unreachable.
	if avail := m.src.Avail(); needed > avail {
		return 0, fmt.Errorf("%w: need %d segments, have %d",
			ErrNoFreeSegments, needed, avail)
	}
	if done := m.bulkFix(q); done != nil {
		defer done()
	}
	defer m.publish()
	n := 0
	for off := 0; off < len(data); off += SegmentBytes {
		end := off + SegmentBytes
		if end > len(data) {
			end = len(data)
		}
		eop := end == len(data)
		if _, err := m.enqueueSeg(q, data[off:end], eop); err != nil {
			// Roll back so the queue never holds a truncated packet. On a
			// private pool the reservation check above makes this
			// unreachable; on a shared store another owner can consume the
			// depot between the check and the allocation.
			for i := 0; i < n; i++ {
				_ = m.deleteTailUnchecked(q)
			}
			return 0, err
		}
		n++
	}
	return n, nil
}

// deleteTailUnchecked removes the tail segment of q. Single-linked lists
// have no back pointers, so this walks from the head; it is only used on
// error-rollback paths.
func (m *Manager) deleteTailUnchecked(q QueueID) error {
	h := m.qhead[q]
	if h == nilSeg {
		return ErrQueueEmpty
	}
	if m.next[h] == nilSeg {
		return m.DeleteSegment(q)
	}
	prev := h
	for m.next[m.next[prev]] != nilSeg {
		prev = m.next[prev]
	}
	tail := m.next[prev]
	m.next[prev] = nilSeg
	m.qtail[q] = prev
	m.qsegs[q]--
	m.state[tail] = stateFloating
	m.floating++
	m.noteUnlink(q, Seg(tail))
	return m.freeSeg(Seg(tail))
}

// DequeuePacket dequeues and reassembles the packet at the head of q.
// It requires data storage (Config.StoreData); otherwise it returns only
// the segment count with a nil payload.
func (m *Manager) DequeuePacket(q QueueID) ([]byte, int, error) {
	if err := m.checkQueue(q); err != nil {
		return nil, 0, err
	}
	_, n, err := m.findPacketEnd(q)
	if err != nil {
		return nil, 0, err
	}
	if done := m.bulkFix(q); done != nil {
		defer done()
	}
	defer m.publish()
	var out []byte
	for i := 0; i < n; i++ {
		_, payload, err := m.dequeueSeg(q)
		if err != nil {
			return out, i, err
		}
		out = append(out, payload...)
	}
	if m.data == nil {
		return nil, n, nil
	}
	return out, n, nil
}

// DequeuePacketAppend is DequeuePacket appending into buf (which may be
// nil or recycled) instead of allocating, for callers that pool reassembly
// buffers. It returns the extended buffer and the segment count.
func (m *Manager) DequeuePacketAppend(q QueueID, buf []byte) ([]byte, int, error) {
	if err := m.checkQueue(q); err != nil {
		return buf, 0, err
	}
	_, n, err := m.findPacketEnd(q)
	if err != nil {
		return buf, 0, err
	}
	if done := m.bulkFix(q); done != nil {
		defer done()
	}
	defer m.publish()
	for i := 0; i < n; i++ {
		h := m.qhead[q]
		if m.data != nil {
			base := int(h) * SegmentBytes
			buf = append(buf, m.data[base:base+int(m.segLen[h])]...)
		}
		s := m.unlinkHead(q)
		if err := m.freeSeg(s); err != nil {
			return buf, i, err
		}
	}
	return buf, n, nil
}

// PacketLen returns the byte length and segment count of the packet at the
// head of q without dequeuing it.
func (m *Manager) PacketLen(q QueueID) (bytes, segments int, err error) {
	if err := m.checkQueue(q); err != nil {
		return 0, 0, err
	}
	h := m.qhead[q]
	if h == nilSeg {
		return 0, 0, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	for s := h; s != nilSeg; s = m.next[s] {
		bytes += int(m.segLen[s])
		segments++
		if m.eop[s] {
			return bytes, segments, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: queue %d", ErrNoPacket, q)
}

// CheckInvariants validates the pointer discipline this manager is
// responsible for:
//
//   - every queue's list is acyclic, its length matches the queue table,
//     its tail pointer matches the last element, and every member is in
//     the queued state;
//   - the per-queue byte/packet counters and the manager totals match the
//     walked lists;
//   - on a private pool it additionally walks the free list (via the
//     store), scans for floating segments, and checks segment
//     conservation: free + queued + floating == pool size.
//
// With a shared store the free list and conservation span every manager on
// the slab, so those checks live on segstore.Store.CheckInvariants and the
// engine's aggregate CheckInvariants. It is O(pool size) and intended for
// tests and debugging.
func (m *Manager) CheckInvariants() error {
	seen := make([]bool, m.cfg.NumSegments)
	queued := int32(0)
	var walkedBytes int64
	for q := 0; q < m.cfg.NumQueues; q++ {
		n := int32(0)
		bytes := int32(0)
		pkts := int32(0)
		last := nilSeg
		for s := m.qhead[q]; s != nilSeg; s = m.next[s] {
			if seen[s] {
				return fmt.Errorf("queue: segment %d linked twice (queue %d)", s, q)
			}
			seen[s] = true
			if m.state[s] != stateQueued {
				return fmt.Errorf("queue: queued segment %d has state %d", s, m.state[s])
			}
			n++
			bytes += int32(m.segLen[s])
			if m.eop[s] {
				pkts++
			}
			last = s
			if n > int32(m.cfg.NumSegments) {
				return fmt.Errorf("queue: cycle in queue %d", q)
			}
		}
		if bytes != m.qbytes[q] {
			return fmt.Errorf("queue: queue %d holds %d bytes, counter says %d", q, bytes, m.qbytes[q])
		}
		if pkts != m.qpkts[q] {
			return fmt.Errorf("queue: queue %d holds %d packets, counter says %d", q, pkts, m.qpkts[q])
		}
		walkedBytes += int64(bytes)
		if n != m.qsegs[q] {
			return fmt.Errorf("queue: queue %d holds %d segments, table says %d", q, n, m.qsegs[q])
		}
		if m.qtail[q] != last {
			return fmt.Errorf("queue: queue %d tail pointer %d != last element %d", q, m.qtail[q], last)
		}
		if (m.qhead[q] == nilSeg) != (m.qtail[q] == nilSeg) {
			return fmt.Errorf("queue: queue %d head/tail nil mismatch", q)
		}
		queued += n
	}

	if walkedBytes != m.totalBytes {
		return fmt.Errorf("queue: %d bytes queued, counter says %d", walkedBytes, m.totalBytes)
	}
	if queued != m.queuedSegs {
		return fmt.Errorf("queue: %d segments queued, counter says %d", queued, m.queuedSegs)
	}
	if !m.src.Shared() {
		// Exclusive pool: the whole slab is ours, so scan for floating
		// segments, validate the free list, and check conservation.
		if err := m.src.CheckInvariants(); err != nil {
			return err
		}
		floating := int32(0)
		for s := range m.state {
			if m.state[s] == stateFloating {
				floating++
			}
		}
		if floating != m.floating {
			return fmt.Errorf("queue: %d floating segments, counter says %d", floating, m.floating)
		}
		if int32(m.src.FreeSegments())+queued+floating != int32(m.cfg.NumSegments) {
			return fmt.Errorf("queue: conservation violated: %d free + %d queued + %d floating != %d",
				m.src.FreeSegments(), queued, floating, m.cfg.NumSegments)
		}
	}

	// Longest-queue heap discipline (when tracking is enabled): the heap
	// holds exactly the non-empty queues, positions match, and every parent
	// sorts no later than its children.
	if m.heapPos != nil {
		nonEmpty := 0
		for q := 0; q < m.cfg.NumQueues; q++ {
			if m.qsegs[q] > 0 {
				nonEmpty++
				if m.heapPos[q] < 0 {
					return fmt.Errorf("queue: non-empty queue %d missing from longest-heap", q)
				}
			} else if m.heapPos[q] >= 0 {
				return fmt.Errorf("queue: empty queue %d present in longest-heap", q)
			}
		}
		if nonEmpty != len(m.heap) {
			return fmt.Errorf("queue: longest-heap holds %d queues, %d are non-empty", len(m.heap), nonEmpty)
		}
		for i, q := range m.heap {
			if m.heapPos[q] != int32(i) {
				return fmt.Errorf("queue: longest-heap position of queue %d is %d, index says %d", q, m.heapPos[q], i)
			}
			if i > 0 && m.heapLess(int32(i), int32((i-1)/2)) {
				return fmt.Errorf("queue: longest-heap property violated at index %d (queue %d)", i, q)
			}
		}
	}
	return nil
}
