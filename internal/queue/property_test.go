package queue

import (
	"bytes"
	"testing"
	"testing/quick"

	"npqm/internal/xrand"
)

// model is a trivially correct reference implementation: per-queue slices of
// (payload, eop) records plus a free-capacity counter.
type model struct {
	queues   [][]modelSeg
	capacity int
}

type modelSeg struct {
	payload []byte
	eop     bool
}

func newModel(queues, segs int) *model {
	return &model{queues: make([][]modelSeg, queues), capacity: segs}
}

func (mo *model) used() int {
	n := 0
	for _, q := range mo.queues {
		n += len(q)
	}
	return n
}

// TestRandomOpsAgainstModel drives the Manager with a long random operation
// sequence and cross-checks every observable result against the reference
// model, validating pointer invariants as it goes.
func TestRandomOpsAgainstModel(t *testing.T) {
	const (
		numQueues = 6
		numSegs   = 40
		steps     = 8000
	)
	rng := xrand.New(2025)
	m, err := New(Config{NumQueues: numQueues, NumSegments: numSegs, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	mo := newModel(numQueues, numSegs)

	randPayload := func() []byte {
		n := 1 + rng.Intn(SegmentBytes)
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(rng.Uint32())
		}
		return p
	}

	for step := 0; step < steps; step++ {
		q := QueueID(rng.Intn(numQueues))
		switch rng.Intn(8) {
		case 0, 1: // Enqueue segment
			p := randPayload()
			eop := rng.Bool(0.5)
			_, err := m.Enqueue(q, p, eop)
			if mo.used() >= mo.capacity {
				if err == nil {
					t.Fatalf("step %d: enqueue succeeded on full pool", step)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: enqueue failed: %v", step, err)
				}
				mo.queues[q] = append(mo.queues[q], modelSeg{p, eop})
			}
		case 2: // Dequeue
			info, data, err := m.Dequeue(q)
			if len(mo.queues[q]) == 0 {
				if err == nil {
					t.Fatalf("step %d: dequeue succeeded on empty queue", step)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: dequeue failed: %v", step, err)
				}
				want := mo.queues[q][0]
				mo.queues[q] = mo.queues[q][1:]
				if !bytes.Equal(data, want.payload) || info.EOP != want.eop {
					t.Fatalf("step %d: dequeue mismatch", step)
				}
			}
		case 3: // ReadHead
			info, data, err := m.ReadHead(q)
			if len(mo.queues[q]) == 0 {
				if err == nil {
					t.Fatalf("step %d: read succeeded on empty queue", step)
				}
			} else {
				want := mo.queues[q][0]
				if err != nil || !bytes.Equal(data, want.payload) || info.EOP != want.eop {
					t.Fatalf("step %d: read mismatch (%v)", step, err)
				}
			}
		case 4: // DeleteSegment
			err := m.DeleteSegment(q)
			if len(mo.queues[q]) == 0 {
				if err == nil {
					t.Fatalf("step %d: delete succeeded on empty queue", step)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: delete failed: %v", step, err)
				}
				mo.queues[q] = mo.queues[q][1:]
			}
		case 5: // Overwrite head
			p := randPayload()
			err := m.Overwrite(q, p)
			if len(mo.queues[q]) == 0 {
				if err == nil {
					t.Fatalf("step %d: overwrite succeeded on empty queue", step)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: overwrite failed: %v", step, err)
				}
				mo.queues[q][0].payload = p
			}
		case 6: // MovePacket
			to := QueueID(rng.Intn(numQueues))
			// The model moves the head packet if one exists.
			pktLen := 0
			for i, s := range mo.queues[q] {
				if s.eop {
					pktLen = i + 1
					break
				}
			}
			n, err := m.MovePacket(q, to)
			if pktLen == 0 {
				if err == nil {
					t.Fatalf("step %d: move succeeded without a packet", step)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: move failed: %v", step, err)
				}
				if n != pktLen {
					t.Fatalf("step %d: moved %d segments, want %d", step, n, pktLen)
				}
				if q != to {
					pkt := mo.queues[q][:pktLen]
					mo.queues[to] = append(mo.queues[to], pkt...)
					mo.queues[q] = mo.queues[q][pktLen:]
				} else if pktLen < len(mo.queues[q]) {
					pkt := append([]modelSeg(nil), mo.queues[q][:pktLen]...)
					mo.queues[q] = append(mo.queues[q][pktLen:], pkt...)
				}
			}
		case 7: // DeletePacket
			pktLen := 0
			for i, s := range mo.queues[q] {
				if s.eop {
					pktLen = i + 1
					break
				}
			}
			n, err := m.DeletePacket(q)
			if pktLen == 0 {
				if err == nil {
					t.Fatalf("step %d: delete-packet succeeded without a packet", step)
				}
			} else {
				if err != nil || n != pktLen {
					t.Fatalf("step %d: delete-packet n=%d err=%v want %d", step, n, err, pktLen)
				}
				mo.queues[q] = mo.queues[q][pktLen:]
			}
		}

		// Cheap consistency checks every step, full invariants periodically.
		if m.FreeSegments() != mo.capacity-mo.used() {
			t.Fatalf("step %d: free count %d, model %d", step, m.FreeSegments(), mo.capacity-mo.used())
		}
		for qq := 0; qq < numQueues; qq++ {
			n, _ := m.Len(QueueID(qq))
			if n != len(mo.queues[qq]) {
				t.Fatalf("step %d: queue %d len %d, model %d", step, qq, n, len(mo.queues[qq]))
			}
		}
		if step%500 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPacketRoundTrip uses testing/quick to fuzz packet payloads
// through segmentation and reassembly.
func TestQuickPacketRoundTrip(t *testing.T) {
	m, err := New(Config{NumQueues: 2, NumSegments: 1024, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > 1000*SegmentBytes {
			return true
		}
		if _, err := m.EnqueuePacket(0, data); err != nil {
			return false
		}
		got, _, err := m.DequeuePacket(0)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data) && m.FreeSegments() == 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConservation fuzzes alloc/free interleavings and checks segment
// conservation.
func TestQuickConservation(t *testing.T) {
	f := func(ops []byte) bool {
		m, err := New(Config{NumQueues: 4, NumSegments: 16})
		if err != nil {
			return false
		}
		var floating []Seg
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if s, err := m.Alloc(); err == nil {
					floating = append(floating, s)
				}
			case 1:
				if len(floating) > 0 {
					s := floating[len(floating)-1]
					floating = floating[:len(floating)-1]
					if err := m.Free(s); err != nil {
						return false
					}
				}
			case 2:
				if _, err := m.Enqueue(QueueID(op%4), []byte{op}, op%2 == 0); err != nil {
					// Only acceptable failure is pool exhaustion.
					if m.FreeSegments() != 0 {
						return false
					}
				}
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	m, _ := New(Config{NumQueues: 1024, NumSegments: 4096})
	payload := make([]byte, SegmentBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := QueueID(i % 1024)
		if _, err := m.Enqueue(q, payload, true); err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.Dequeue(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMovePacket(b *testing.B) {
	m, _ := New(Config{NumQueues: 2, NumSegments: 64})
	payload := make([]byte, SegmentBytes)
	m.Enqueue(0, payload, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := QueueID(i%2), QueueID((i+1)%2)
		if _, err := m.MovePacket(from, to); err != nil {
			b.Fatal(err)
		}
	}
}
