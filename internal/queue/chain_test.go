package queue

import (
	"bytes"
	"errors"
	"testing"

	"npqm/internal/segstore"
)

// sharedPair builds two managers over one shared store, as the engine's
// shards do.
func sharedPair(t *testing.T, segments int) (*Manager, *Manager, *segstore.Store) {
	t.Helper()
	st, err := segstore.New(segstore.Config{
		NumSegments:  segments,
		SegmentBytes: SegmentBytes,
		StoreData:    true,
		MagazineSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewWithStore(Config{NumQueues: 16}, st.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWithStore(Config{NumQueues: 16}, st.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	return a, b, st
}

func TestCrossManagerChainMove(t *testing.T) {
	a, b, st := sharedPair(t, 128)
	payload := bytes.Repeat([]byte{0xab, 0x12}, 90) // 180 B → 3 segments
	if _, err := a.EnqueuePacket(3, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EnqueuePacket(3, []byte{9}); err != nil {
		t.Fatal(err)
	}
	ch, err := a.UnlinkHeadPacket(3)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Segs != 3 || ch.Bytes != 180 {
		t.Fatalf("chain = %+v, want 3 segments / 180 bytes", ch)
	}
	if n, _ := a.Len(3); n != 1 {
		t.Fatalf("source holds %d segments after unlink, want 1", n)
	}
	if err := b.LinkPacketTail(7, ch); err != nil {
		t.Fatal(err)
	}
	got, n, err := b.DequeuePacket(7)
	if err != nil || n != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("relinked packet = (%d segs, %v), payload match %v", n, err, bytes.Equal(got, payload))
	}
	// Both managers and the store must still be consistent.
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.DequeuePacket(3); err != nil {
		t.Fatal(err)
	}
	a.FlushFree()
	b.FlushFree()
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := st.Free(); free != 128 {
		t.Fatalf("store free = %d, want 128", free)
	}
}

func TestChainRollbackRestoresOrder(t *testing.T) {
	a, b, _ := sharedPair(t, 128)
	first := bytes.Repeat([]byte{1}, 100)
	second := bytes.Repeat([]byte{2}, 100)
	if _, err := a.EnqueuePacket(0, first); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EnqueuePacket(0, second); err != nil {
		t.Fatal(err)
	}
	// Destination refuses (per-flow cap): caller restores at the head.
	if err := b.SetSegmentLimit(5, 1); err != nil {
		t.Fatal(err)
	}
	ch, err := a.UnlinkHeadPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LinkPacketTail(5, ch); !errors.Is(err, ErrQueueLimit) {
		t.Fatalf("over-cap link err = %v, want ErrQueueLimit", err)
	}
	if err := a.LinkPacketHead(0, ch); err != nil {
		t.Fatal(err)
	}
	// FIFO order must be intact: first out is still `first`.
	got, _, err := a.DequeuePacket(0)
	if err != nil || !bytes.Equal(got, first) {
		t.Fatalf("head after rollback = %v (err %v), want the first packet", got[:1], err)
	}
	got, _, err = a.DequeuePacket(0)
	if err != nil || !bytes.Equal(got, second) {
		t.Fatalf("second packet corrupted by rollback (err %v)", err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedManagersSeeGlobalPool(t *testing.T) {
	a, b, _ := sharedPair(t, 64)
	// Manager a hoards the whole pool on one queue.
	for i := 0; i < 64; i++ {
		if _, err := a.EnqueuePacket(1, []byte{byte(i)}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if free := b.FreeSegments(); free != 0 {
		t.Fatalf("b sees %d free, want 0 (pool-wide view)", free)
	}
	if _, err := b.EnqueuePacket(2, []byte{1}); !errors.Is(err, ErrNoFreeSegments) {
		t.Fatalf("enqueue on exhausted pool: %v", err)
	}
	// Draining via a (with a flush) makes room for b again.
	for i := 0; i < 8; i++ {
		if _, _, err := a.DequeuePacket(1); err != nil {
			t.Fatal(err)
		}
	}
	a.FlushFree()
	if _, err := b.EnqueuePacket(2, []byte{1}); err != nil {
		t.Fatalf("enqueue after drain+flush: %v", err)
	}
	if a.QueuedSegments() != 56 || b.QueuedSegments() != 1 {
		t.Fatalf("queued split = (%d, %d), want (56, 1)", a.QueuedSegments(), b.QueuedSegments())
	}
}
