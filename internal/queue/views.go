package queue

// Zero-copy packet lifecycle. The paper's queue manager never reassembles
// a packet: transmission is a DMA gather over the 64-byte buffer chain, and
// reception writes segments into data memory as they arrive. This file is
// that datapath in software, in both directions:
//
//   - DequeuePacketView unlinks the head packet exactly like
//     consumeHeadChain but defers the scrub and the FreeN: the chain leaves
//     the queue table and is handed to the consumer as a PacketView whose
//     iterator yields per-segment slices aliasing the slab. Releasing the
//     view scrubs and returns the chain in one FreeN-equivalent operation.
//   - ReservePacket is the write-in-place inverse: the segment run is
//     allocated and pre-linked up front, the producer fills the slices a
//     PacketWriter exposes (a readv target), then Commit splices the chain
//     onto the queue tail in O(1) — or Abort hands the untouched run back.
//
// While checked out, segments are in the lent state and counted by the
// store's lent population, so pool stats and CheckInvariants stay exact:
// free + queued + floating + lent == pool size at every quiescent point.
//
// Ownership and thread-safety: DequeuePacketView, ReservePacket, and
// Commit are owner-context operations like every other Manager method (the
// engine calls them under the shard lock). Release, Retain, Range, and
// Abort are safe from any goroutine when the manager draws from a shared
// store (segstore.Store via a Cache — the engine's configuration): the
// chain is exclusively owned by the view holder and the return path goes
// straight to the store's thread-safe depot (segstore.ReturnLent). A
// self-contained manager over a private pool has no concurrent return
// path, so there — as for every other operation on such a manager — the
// caller provides the serialization.

import (
	"fmt"
	"sync/atomic"
)

// PacketView is a dequeued packet still living in the slab: a lent chain of
// segments [head..end] whose payload the consumer reads in place. The zero
// value is invalid. Views are small value types (no heap allocation on the
// dequeue path); copies share one reference count, so exactly one Release
// must be called per DequeuePacketView plus one per Retain.
type PacketView struct {
	m     *Manager
	head  int32
	end   int32
	segs  int32
	bytes int32
}

// Valid reports whether the view refers to a packet (the zero view does
// not).
func (v PacketView) Valid() bool { return v.m != nil }

// Len returns the packet's payload length in bytes.
func (v PacketView) Len() int { return int(v.bytes) }

// Segments returns the number of segments in the chain.
func (v PacketView) Segments() int { return int(v.segs) }

// Head returns the first segment of the chain.
func (v PacketView) Head() Seg { return Seg(v.head) }

// End returns the last (EOP) segment of the chain.
func (v PacketView) End() Seg { return Seg(v.end) }

// Range calls fn with each segment's payload slice in packet order,
// stopping early if fn returns false. The slices alias the slab: they are
// valid only until the view's final Release and must not be retained past
// it. With data storage disabled the view has no payload and Range returns
// immediately.
func (v PacketView) Range(fn func(seg []byte) bool) {
	m := v.m
	if m == nil || m.data == nil {
		return
	}
	for s := v.head; s != nilSeg; s = m.next[s] {
		base := int(s) * SegmentBytes
		if !fn(m.data[base : base+int(m.segLen[s])]) {
			return
		}
	}
}

// AppendTo appends the packet's payload to buf — the copy fallback for
// consumers that need a contiguous packet after all.
func (v PacketView) AppendTo(buf []byte) []byte {
	v.Range(func(seg []byte) bool {
		buf = append(buf, seg...)
		return true
	})
	return buf
}

// Retain adds a reference, for handing the view to an asynchronous
// consumer (a NIC-style transmit ring) that completes after the original
// holder returns. Every Retain needs a matching Release.
func (v PacketView) Retain() {
	atomic.AddInt32(&v.m.refs[v.head], 1)
}

// Release drops a reference; the final one scrubs the chain and returns it
// to the store in one bulk operation. Safe from any goroutine. Releasing
// more times than Retain+1 panics — a double release means some consumer
// may still be reading segments that are back in the free pool, the
// use-after-free this accounting exists to catch. (Like sync.WaitGroup,
// the panic is best-effort: it detects the imbalance while the refcount
// slot has not been recycled by a later packet chain headed at the same
// segment.)
func (v PacketView) Release() {
	m := v.m
	n := atomic.AddInt32(&m.refs[v.head], -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("queue: PacketView released more times than retained")
	}
	for s := v.head; ; s = m.next[s] {
		m.segLen[s] = 0
		m.eop[s] = false
		m.state[s] = stateFree
		if s == v.end {
			break
		}
	}
	m.src.ReturnLent(v.head, v.end, v.segs)
}

// ViewReleaser accumulates view releases and returns the chains to the
// store in one bulk transaction per manager instead of one per packet. A
// consumer that drains views in batches (the engine's DequeueNextViewBatch
// loop) releases each packet into the accumulator and flushes once: the
// scrub still happens per segment, but the depot push — the one CAS the
// cross-goroutine return path costs — and the lent-counter update are paid
// once per batch. The zero value is ready to use. Like a single Release,
// an accumulator is one goroutine's tool; the flush itself is safe from
// any goroutine under the same shared-store condition as Release.
type ViewReleaser struct {
	m    *Manager
	head int32
	tail int32
	n    int32
}

// Add releases one view into the accumulator. Views whose reference count
// has not reached zero (outstanding Retains) are skipped, exactly as
// Release would; over-release panics identically.
func (r *ViewReleaser) Add(v PacketView) {
	m := v.m
	if m == nil {
		return
	}
	c := atomic.AddInt32(&m.refs[v.head], -1)
	if c > 0 {
		return
	}
	if c < 0 {
		panic("queue: PacketView released more times than retained")
	}
	for s := v.head; ; s = m.next[s] {
		m.segLen[s] = 0
		m.eop[s] = false
		m.state[s] = stateFree
		if s == v.end {
			break
		}
	}
	if r.m != m {
		r.Flush()
		r.m = m
	}
	if r.n == 0 {
		r.head = v.head
	} else {
		m.next[r.tail] = v.head
	}
	r.tail = v.end
	r.n += v.segs
}

// Flush returns every accumulated chain to its store. The accumulator is
// reusable afterwards.
func (r *ViewReleaser) Flush() {
	if r.n > 0 {
		r.m.src.ReturnLent(r.head, r.tail, r.n)
		r.n = 0
	}
}

// DequeuePacketView unlinks the packet at the head of q and returns it as
// a zero-copy view instead of reassembling it. The queue table and
// accounting update exactly as DequeuePacket's would; the segments move to
// the lent state and stay in the slab until the view's final Release. One
// pass over the chain does the EOP walk, the byte accumulation, and the
// lent marking together — one chain traversal where the copy path needs
// two.
func (m *Manager) DequeuePacketView(q QueueID) (PacketView, error) {
	if err := m.checkQueue(q); err != nil {
		return PacketView{}, err
	}
	head := m.qhead[q]
	if head == nilSeg {
		return PacketView{}, fmt.Errorf("%w: queue %d", ErrQueueEmpty, q)
	}
	var chainBytes int32
	n := int32(0)
	end := nilSeg
	for s := head; s != nilSeg; s = m.next[s] {
		chainBytes += int32(m.segLen[s])
		m.state[s] = stateLent
		n++
		if m.eop[s] {
			end = s
			break
		}
	}
	if end == nilSeg {
		// No complete packet: restore the marked states (the whole queue is
		// stateQueued again; re-marking untouched members is harmless) and
		// leave the queue untouched. Rare path — only partially assembled
		// ingress can hit it.
		for s := head; s != nilSeg; s = m.next[s] {
			m.state[s] = stateQueued
		}
		return PacketView{}, fmt.Errorf("%w: queue %d", ErrNoPacket, q)
	}
	m.qhead[q] = m.next[end]
	if m.qhead[q] == nilSeg {
		m.qtail[q] = nilSeg
	}
	m.next[end] = nilSeg
	m.qsegs[q] -= n
	m.qbytes[q] -= chainBytes
	m.qpkts[q]--
	m.queuedSegs -= n
	m.totalBytes -= int64(chainBytes)
	m.fixLongest(q)
	m.src.Lend(n)
	atomic.StoreInt32(&m.refs[head], 1)
	m.publish()
	return PacketView{m: m, head: head, end: end, segs: n, bytes: chainBytes}, nil
}

// PacketWriter is an in-flight write-in-place enqueue: a pre-linked,
// pre-sized segment run the producer fills through Range before Commit
// splices it onto the queue. The zero value is terminal. A writer must end
// in exactly one Commit or Abort; later terminal calls return
// ErrWriterDone.
type PacketWriter struct {
	m     *Manager
	q     QueueID
	head  int32
	tail  int32
	segs  int32
	bytes int32
}

// Valid reports whether the writer holds a live reservation.
func (w *PacketWriter) Valid() bool { return w.m != nil }

// Len returns the reserved payload length in bytes.
func (w *PacketWriter) Len() int { return int(w.bytes) }

// Segments returns the number of reserved segments.
func (w *PacketWriter) Segments() int { return int(w.segs) }

// Queue returns the destination queue.
func (w *PacketWriter) Queue() QueueID { return w.q }

// Range calls fn with each reserved segment's payload slice in packet
// order — writable, sized to the segment's share of the reservation (full
// segments, then the remainder) — stopping early if fn returns false.
// These are the iovecs a socket reader hands to readv. With data storage
// disabled the writer has no payload memory and Range returns immediately.
func (w *PacketWriter) Range(fn func(seg []byte) bool) {
	m := w.m
	if m == nil || m.data == nil {
		return
	}
	for s := w.head; s != nilSeg; s = m.next[s] {
		base := int(s) * SegmentBytes
		if !fn(m.data[base : base+int(m.segLen[s])]) {
			return
		}
	}
}

// ReservePacket allocates and links the segment run for an n-byte packet
// destined for q, returning a PacketWriter exposing the run's payload
// slices for the producer to fill in place. Admission (the per-queue cap)
// is charged up front against q's current occupancy; the packet joins the
// queue — and its bytes join the queue's accounting — when Commit splices
// it, so packets land in Commit order, not Reserve order. On any error the
// pool and queue are untouched.
func (m *Manager) ReservePacket(q QueueID, n int) (PacketWriter, error) {
	if err := m.checkQueue(q); err != nil {
		return PacketWriter{}, err
	}
	if n <= 0 {
		return PacketWriter{}, fmt.Errorf("%w: empty packet", ErrBadLength)
	}
	needed := (n + SegmentBytes - 1) / SegmentBytes
	if !m.admissible(q, needed) {
		return PacketWriter{}, fmt.Errorf("%w: queue %d cannot accept %d segments", ErrQueueLimit, q, needed)
	}
	if avail := m.src.Avail(); needed > avail {
		return PacketWriter{}, fmt.Errorf("%w: need %d segments, have %d",
			ErrNoFreeSegments, needed, avail)
	}
	run := m.runBuf(needed)
	if got := m.src.AllocN(run); got < needed {
		m.returnRun(run[:got])
		m.publish()
		return PacketWriter{}, fmt.Errorf("%w: need %d segments, got %d",
			ErrNoFreeSegments, needed, got)
	}
	last := needed - 1
	left := n
	for i, s := range run {
		ln := left
		if ln > SegmentBytes {
			ln = SegmentBytes
		}
		left -= ln
		m.segLen[s] = uint16(ln)
		m.eop[s] = i == last
		m.state[s] = stateLent
		if i < last {
			m.next[s] = run[i+1]
		} else {
			m.next[s] = nilSeg
		}
	}
	m.src.Lend(int32(needed))
	m.publish()
	return PacketWriter{m: m, q: q, head: run[0], tail: run[last], segs: int32(needed), bytes: int32(n)}, nil
}

// Commit splices the filled run onto the queue tail — one queue-table and
// accounting update, no data copy — and takes the segments back off the
// lent books. Owner context only, like the ReservePacket that opened the
// writer. The writer becomes terminal.
func (w *PacketWriter) Commit() error {
	m := w.m
	if m == nil {
		return ErrWriterDone
	}
	for s := w.head; ; s = m.next[s] {
		m.state[s] = stateQueued
		if s == w.tail {
			break
		}
	}
	q := w.q
	if m.qtail[q] == nilSeg {
		m.qhead[q] = w.head
	} else {
		m.next[m.qtail[q]] = w.head
	}
	m.qtail[q] = w.tail
	m.linkChainAccounting(q, PacketChain{
		Head: Seg(w.head), Tail: Seg(w.tail), Segs: int(w.segs), Bytes: int(w.bytes),
	})
	m.src.Lend(-w.segs)
	m.publish()
	*w = PacketWriter{}
	return nil
}

// Abort scrubs the reserved run and hands it back to the store in one bulk
// return without ever touching the queue. Safe from any goroutine, like a
// view release — a producer that reserved, failed its read, and aborts
// does not need the owner context. The writer becomes terminal.
func (w *PacketWriter) Abort() error {
	m := w.m
	if m == nil {
		return ErrWriterDone
	}
	for s := w.head; ; s = m.next[s] {
		m.segLen[s] = 0
		m.eop[s] = false
		m.state[s] = stateFree
		if s == w.tail {
			break
		}
	}
	m.src.ReturnLent(w.head, w.tail, w.segs)
	*w = PacketWriter{}
	return nil
}

// LentSegments returns the pool-wide lent population: segments checked out
// in views or open reservations.
func (m *Manager) LentSegments() int { return m.src.Lent() }
