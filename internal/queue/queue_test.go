package queue

import (
	"bytes"
	"errors"
	"testing"
)

func newTestManager(t *testing.T, segs int) *Manager {
	t.Helper()
	m, err := New(Config{NumQueues: 8, NumSegments: segs, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustInvariants(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaults(t *testing.T) {
	m, err := New(Config{NumSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumQueues() != DefaultNumQueues {
		t.Fatalf("default queues = %d", m.NumQueues())
	}
	if m.FreeSegments() != 4 {
		t.Fatalf("free = %d", m.FreeSegments())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumSegments: 0}); err == nil {
		t.Fatal("expected error for zero segments")
	}
	if _, err := New(Config{NumQueues: -1, NumSegments: 4}); err == nil {
		t.Fatal("expected error for negative queues")
	}
}

func TestEnqueueDequeueRoundTrip(t *testing.T) {
	m := newTestManager(t, 16)
	payload := []byte("hello, queue manager")
	s, err := m.Enqueue(3, payload, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nil() {
		t.Fatal("nil segment returned")
	}
	if n, _ := m.Len(3); n != 1 {
		t.Fatalf("len = %d", n)
	}
	mustInvariants(t, m)

	info, data, err := m.Dequeue(3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seg != s || info.Len != len(payload) || !info.EOP {
		t.Fatalf("info = %+v", info)
	}
	if !bytes.Equal(data, payload) {
		t.Fatalf("data = %q", data)
	}
	if m.FreeSegments() != 16 {
		t.Fatalf("segment not returned to free list: %d", m.FreeSegments())
	}
	mustInvariants(t, m)
}

func TestFIFOOrderWithinQueue(t *testing.T) {
	m := newTestManager(t, 32)
	for i := 0; i < 10; i++ {
		if _, err := m.Enqueue(0, []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		_, data, err := m.Dequeue(0)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("dequeue %d returned %d", i, data[0])
		}
	}
}

func TestQueueIsolation(t *testing.T) {
	m := newTestManager(t, 32)
	m.Enqueue(1, []byte{1}, true)
	m.Enqueue(2, []byte{2}, true)
	m.Enqueue(1, []byte{11}, true)
	if n, _ := m.Len(1); n != 2 {
		t.Fatalf("queue 1 len = %d", n)
	}
	if n, _ := m.Len(2); n != 1 {
		t.Fatalf("queue 2 len = %d", n)
	}
	_, d, _ := m.Dequeue(2)
	if d[0] != 2 {
		t.Fatalf("queue 2 head = %d", d[0])
	}
	mustInvariants(t, m)
}

func TestDequeueEmpty(t *testing.T) {
	m := newTestManager(t, 4)
	if _, _, err := m.Dequeue(0); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadQueueID(t *testing.T) {
	m := newTestManager(t, 4)
	if _, err := m.Enqueue(99, []byte{1}, true); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := m.Dequeue(99); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Len(99); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestExhaustion(t *testing.T) {
	m := newTestManager(t, 3)
	for i := 0; i < 3; i++ {
		if _, err := m.Enqueue(0, []byte{1}, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Enqueue(0, []byte{1}, true); !errors.Is(err, ErrNoFreeSegments) {
		t.Fatalf("err = %v", err)
	}
	// Draining restores capacity.
	m.Dequeue(0)
	if _, err := m.Enqueue(0, []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
}

func TestPayloadValidation(t *testing.T) {
	m := newTestManager(t, 4)
	if _, err := m.Enqueue(0, nil, true); !errors.Is(err, ErrBadLength) {
		t.Fatalf("empty payload: %v", err)
	}
	if _, err := m.Enqueue(0, make([]byte, SegmentBytes+1), true); !errors.Is(err, ErrBadLength) {
		t.Fatalf("oversized payload: %v", err)
	}
	// Failed enqueues must not leak segments.
	if m.FreeSegments() != 4 {
		t.Fatalf("leaked segments: free = %d", m.FreeSegments())
	}
	if _, err := m.Enqueue(0, make([]byte, SegmentBytes), true); err != nil {
		t.Fatalf("max payload rejected: %v", err)
	}
}

func TestAllocFree(t *testing.T) {
	m := newTestManager(t, 2)
	s1, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(); !errors.Is(err, ErrNoFreeSegments) {
		t.Fatalf("err = %v", err)
	}
	mustInvariants(t, m)
	if err := m.Free(s1); err != nil {
		t.Fatal(err)
	}
	// Double free must be rejected.
	if err := m.Free(s1); !errors.Is(err, ErrSegmentState) {
		t.Fatalf("double free: %v", err)
	}
	if err := m.Free(s2); err != nil {
		t.Fatal(err)
	}
	if m.FreeSegments() != 2 {
		t.Fatalf("free = %d", m.FreeSegments())
	}
	mustInvariants(t, m)
}

func TestFreeBadHandle(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.Free(Seg(-1)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Free(Seg(5)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadHead(t *testing.T) {
	m := newTestManager(t, 4)
	m.Enqueue(0, []byte{7, 8}, false)
	info, data, err := m.ReadHead(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Len != 2 || info.EOP || data[0] != 7 {
		t.Fatalf("info=%+v data=%v", info, data)
	}
	// Non-destructive.
	if n, _ := m.Len(0); n != 1 {
		t.Fatalf("len = %d", n)
	}
	if _, _, err := m.ReadHead(1); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteSegment(t *testing.T) {
	m := newTestManager(t, 4)
	m.Enqueue(0, []byte{1}, false)
	m.Enqueue(0, []byte{2}, true)
	if err := m.DeleteSegment(0); err != nil {
		t.Fatal(err)
	}
	_, data, _ := m.Dequeue(0)
	if data[0] != 2 {
		t.Fatalf("head after delete = %d", data[0])
	}
	if err := m.DeleteSegment(0); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
	mustInvariants(t, m)
}

func TestDeletePacket(t *testing.T) {
	m := newTestManager(t, 16)
	// Two packets: 3 segments + 1 segment.
	m.Enqueue(0, []byte{1}, false)
	m.Enqueue(0, []byte{2}, false)
	m.Enqueue(0, []byte{3}, true)
	m.Enqueue(0, []byte{4}, true)
	n, err := m.DeletePacket(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("deleted %d segments, want 3", n)
	}
	if l, _ := m.Len(0); l != 1 {
		t.Fatalf("len = %d", l)
	}
	_, data, _ := m.Dequeue(0)
	if data[0] != 4 {
		t.Fatalf("survivor = %d", data[0])
	}
	mustInvariants(t, m)
}

func TestDeletePacketIncomplete(t *testing.T) {
	m := newTestManager(t, 4)
	m.Enqueue(0, []byte{1}, false) // no EOP anywhere
	if _, err := m.DeletePacket(0); !errors.Is(err, ErrNoPacket) {
		t.Fatalf("err = %v", err)
	}
	// Queue untouched on failure.
	if n, _ := m.Len(0); n != 1 {
		t.Fatalf("len = %d", n)
	}
}

func TestOverwrite(t *testing.T) {
	m := newTestManager(t, 4)
	m.Enqueue(0, []byte{1, 2, 3}, true)
	if err := m.Overwrite(0, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	info, data, _ := m.ReadHead(0)
	if info.Len != 2 || !bytes.Equal(data, []byte{9, 9}) {
		t.Fatalf("info=%+v data=%v", info, data)
	}
	if !info.EOP {
		t.Fatal("overwrite must preserve EOP")
	}
	if err := m.Overwrite(1, []byte{1}); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteLength(t *testing.T) {
	m := newTestManager(t, 4)
	m.Enqueue(0, []byte{1, 2, 3, 4}, true)
	if err := m.OverwriteLength(0, 2); err != nil {
		t.Fatal(err)
	}
	info, _, _ := m.ReadHead(0)
	if info.Len != 2 {
		t.Fatalf("len = %d", info.Len)
	}
	if err := m.OverwriteLength(0, 0); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
	if err := m.OverwriteLength(0, SegmentBytes+1); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
	if err := m.OverwriteLength(1, 5); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendHead(t *testing.T) {
	m := newTestManager(t, 8)
	m.Enqueue(0, []byte{2}, true)
	// Prepend a header segment (protocol encapsulation use case).
	if _, err := m.AppendHead(0, []byte{1}, false); err != nil {
		t.Fatal(err)
	}
	_, d1, _ := m.Dequeue(0)
	_, d2, _ := m.Dequeue(0)
	if d1[0] != 1 || d2[0] != 2 {
		t.Fatalf("order = %d,%d", d1[0], d2[0])
	}
	mustInvariants(t, m)
}

func TestAppendHeadEmptyQueue(t *testing.T) {
	m := newTestManager(t, 4)
	if _, err := m.AppendHead(0, []byte{5}, true); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Len(0); n != 1 {
		t.Fatalf("len = %d", n)
	}
	mustInvariants(t, m)
}

func TestMovePacket(t *testing.T) {
	m := newTestManager(t, 16)
	m.Enqueue(0, []byte{1}, false)
	m.Enqueue(0, []byte{2}, true)
	m.Enqueue(0, []byte{3}, true) // second packet stays
	m.Enqueue(1, []byte{9}, true) // destination already populated
	n, err := m.MovePacket(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("moved %d segments", n)
	}
	if l, _ := m.Len(0); l != 1 {
		t.Fatalf("source len = %d", l)
	}
	if l, _ := m.Len(1); l != 3 {
		t.Fatalf("dest len = %d", l)
	}
	mustInvariants(t, m)
	// Destination order: 9, then 1, 2.
	var got []byte
	for i := 0; i < 3; i++ {
		_, d, _ := m.Dequeue(1)
		got = append(got, d[0])
	}
	if !bytes.Equal(got, []byte{9, 1, 2}) {
		t.Fatalf("dest order = %v", got)
	}
}

func TestMovePacketToEmptyQueue(t *testing.T) {
	m := newTestManager(t, 8)
	m.Enqueue(0, []byte{1}, true)
	if _, err := m.MovePacket(0, 2); err != nil {
		t.Fatal(err)
	}
	if l, _ := m.Len(2); l != 1 {
		t.Fatalf("dest len = %d", l)
	}
	if l, _ := m.Len(0); l != 0 {
		t.Fatalf("source len = %d", l)
	}
	mustInvariants(t, m)
}

func TestMovePacketSelf(t *testing.T) {
	m := newTestManager(t, 8)
	m.Enqueue(0, []byte{1}, true)
	m.Enqueue(0, []byte{2}, true)
	// Rotates the first packet to the tail.
	if _, err := m.MovePacket(0, 0); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	_, d, _ := m.Dequeue(0)
	if d[0] != 2 {
		t.Fatalf("head after self-move = %d", d[0])
	}
	// Self-move of the only packet is a no-op.
	if _, err := m.MovePacket(0, 0); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	_, d, _ = m.Dequeue(0)
	if d[0] != 1 {
		t.Fatalf("got %d", d[0])
	}
}

func TestMovePacketErrors(t *testing.T) {
	m := newTestManager(t, 8)
	if _, err := m.MovePacket(0, 1); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
	m.Enqueue(0, []byte{1}, false) // incomplete packet
	if _, err := m.MovePacket(0, 1); !errors.Is(err, ErrNoPacket) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.MovePacket(0, 99); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteAndMove(t *testing.T) {
	m := newTestManager(t, 8)
	m.Enqueue(0, []byte{1, 1}, true)
	n, err := m.OverwriteAndMove(0, 1, []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("moved %d", n)
	}
	info, data, _ := m.ReadHead(1)
	if info.Len != 1 || data[0] != 5 {
		t.Fatalf("info=%+v data=%v", info, data)
	}
	mustInvariants(t, m)
}

func TestOverwriteLengthAndMove(t *testing.T) {
	m := newTestManager(t, 8)
	m.Enqueue(0, []byte{1, 2, 3}, true)
	if _, err := m.OverwriteLengthAndMove(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	info, _, _ := m.ReadHead(1)
	if info.Len != 1 {
		t.Fatalf("len = %d", info.Len)
	}
	mustInvariants(t, m)
}

func TestWalk(t *testing.T) {
	m := newTestManager(t, 8)
	for i := 0; i < 4; i++ {
		m.Enqueue(0, []byte{byte(i)}, i == 3)
	}
	var lens []int
	m.Walk(0, func(info SegInfo) bool {
		lens = append(lens, info.Len)
		return len(lens) < 3 // stop early
	})
	if len(lens) != 3 {
		t.Fatalf("walk visited %d segments", len(lens))
	}
	if err := m.Walk(99, func(SegInfo) bool { return true }); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestPayloadAccessor(t *testing.T) {
	m := newTestManager(t, 4)
	s, _ := m.Enqueue(0, []byte{42}, true)
	p, err := m.Payload(s)
	if err != nil || p[0] != 42 {
		t.Fatalf("payload = %v err = %v", p, err)
	}
	if _, err := m.Payload(Seg(-1)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoDataMode(t *testing.T) {
	m, err := New(Config{NumQueues: 2, NumSegments: 8, StoreData: false})
	if err != nil {
		t.Fatal(err)
	}
	m.Enqueue(0, []byte{1, 2, 3}, true)
	info, data, err := m.Dequeue(0)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatal("no-data mode returned payload")
	}
	if info.Len != 3 {
		t.Fatalf("metadata lost: %+v", info)
	}
}
