package queue

// Cross-manager packet transfer. Managers built over one shared
// segstore.Store alias the same slab, so a packet can move between two
// managers (the engine's shards) by pure pointer relinking — the MMS "Move
// a packet to a new queue" command generalized across shards — instead of
// the reassemble-and-copy the split-pool engine needed. The segments stay
// in the queued state while in transit: they are owned by the moving caller
// between the unlink and the link, and are never visible to either manager
// in a half-moved state.

import "fmt"

// PacketChain is a packet unlinked from a queue and in transit between
// managers: a chain of segments [Head..Tail] linked through the shared
// slab, ending in a nil pointer.
type PacketChain struct {
	Head, Tail Seg
	Segs       int // segments in the chain
	Bytes      int // payload bytes across the chain
}

// UnlinkHeadPacket removes the packet at the head of q and returns it as a
// chain for relinking into another manager on the same store. The segments
// leave this manager's accounting entirely. ErrNoPacket is returned when q
// holds no complete packet.
func (m *Manager) UnlinkHeadPacket(q QueueID) (PacketChain, error) {
	if err := m.checkQueue(q); err != nil {
		return PacketChain{}, err
	}
	end, n, err := m.findPacketEnd(q)
	if err != nil {
		return PacketChain{}, err
	}
	first := m.qhead[q]
	var chainBytes int32
	for s := first; ; s = m.next[s] {
		chainBytes += int32(m.segLen[s])
		if s == int32(end) {
			break
		}
	}
	m.qhead[q] = m.next[end]
	if m.qhead[q] == nilSeg {
		m.qtail[q] = nilSeg
	}
	m.next[end] = nilSeg
	m.qsegs[q] -= int32(n)
	m.qbytes[q] -= chainBytes
	m.qpkts[q]--
	m.queuedSegs -= int32(n)
	m.totalBytes -= int64(chainBytes)
	m.fixLongest(q)
	return PacketChain{Head: Seg(first), Tail: end, Segs: n, Bytes: int(chainBytes)}, nil
}

// LinkPacketTail links a chain (from UnlinkHeadPacket on a manager sharing
// this store) onto the tail of q. The destination's per-queue segment cap
// applies; on ErrQueueLimit the chain is untouched and the caller should
// restore it with LinkPacketHead on the source.
func (m *Manager) LinkPacketTail(q QueueID, ch PacketChain) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	if !m.admissible(q, ch.Segs) {
		return fmt.Errorf("%w: queue %d cannot accept %d segments", ErrQueueLimit, q, ch.Segs)
	}
	if m.qtail[q] == nilSeg {
		m.qhead[q] = int32(ch.Head)
	} else {
		m.next[m.qtail[q]] = int32(ch.Head)
	}
	m.qtail[q] = int32(ch.Tail)
	m.linkChainAccounting(q, ch)
	return nil
}

// LinkPacketHead links a chain back at the head of q — the rollback path
// when a transfer's destination refuses the packet. It bypasses the
// per-queue cap (the packet is being restored, not admitted) and cannot
// fail, so a refused cross-shard move is all-or-nothing.
func (m *Manager) LinkPacketHead(q QueueID, ch PacketChain) error {
	if err := m.checkQueue(q); err != nil {
		return err
	}
	m.next[ch.Tail] = m.qhead[q]
	m.qhead[q] = int32(ch.Head)
	if m.qtail[q] == nilSeg {
		m.qtail[q] = int32(ch.Tail)
	}
	m.linkChainAccounting(q, ch)
	return nil
}

// linkChainAccounting counts a linked chain into q's accounting.
func (m *Manager) linkChainAccounting(q QueueID, ch PacketChain) {
	m.qsegs[q] += int32(ch.Segs)
	m.qbytes[q] += int32(ch.Bytes)
	m.qpkts[q]++
	m.queuedSegs += int32(ch.Segs)
	m.totalBytes += int64(ch.Bytes)
	m.fixLongest(q)
}
