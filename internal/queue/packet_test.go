package queue

import (
	"bytes"
	"errors"
	"testing"
)

func TestEnqueuePacketSegmentation(t *testing.T) {
	m := newTestManager(t, 16)
	data := make([]byte, 3*SegmentBytes+10) // 4 segments
	for i := range data {
		data[i] = byte(i)
	}
	n, err := m.EnqueuePacket(5, data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("segments = %d, want 4", n)
	}
	// Last segment carries the remainder and the EOP flag.
	var infos []SegInfo
	m.Walk(5, func(i SegInfo) bool { infos = append(infos, i); return true })
	if len(infos) != 4 {
		t.Fatalf("walk saw %d segments", len(infos))
	}
	for i := 0; i < 3; i++ {
		if infos[i].Len != SegmentBytes || infos[i].EOP {
			t.Fatalf("segment %d: %+v", i, infos[i])
		}
	}
	if infos[3].Len != 10 || !infos[3].EOP {
		t.Fatalf("last segment: %+v", infos[3])
	}
	mustInvariants(t, m)
}

func TestPacketRoundTrip(t *testing.T) {
	m := newTestManager(t, 64)
	for _, size := range []int{1, SegmentBytes - 1, SegmentBytes, SegmentBytes + 1, 5 * SegmentBytes, 777} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if _, err := m.EnqueuePacket(2, data); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, _, err := m.DequeuePacket(2)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip corrupted", size)
		}
		mustInvariants(t, m)
	}
}

func TestEnqueuePacketExactFit(t *testing.T) {
	m := newTestManager(t, 4)
	data := make([]byte, 4*SegmentBytes)
	if _, err := m.EnqueuePacket(0, data); err != nil {
		t.Fatal(err)
	}
	if m.FreeSegments() != 0 {
		t.Fatalf("free = %d", m.FreeSegments())
	}
}

func TestEnqueuePacketInsufficientSegments(t *testing.T) {
	m := newTestManager(t, 2)
	data := make([]byte, 3*SegmentBytes)
	if _, err := m.EnqueuePacket(0, data); !errors.Is(err, ErrNoFreeSegments) {
		t.Fatalf("err = %v", err)
	}
	// Nothing may leak on failure.
	if m.FreeSegments() != 2 {
		t.Fatalf("free = %d", m.FreeSegments())
	}
	if n, _ := m.Len(0); n != 0 {
		t.Fatalf("len = %d", n)
	}
	mustInvariants(t, m)
}

func TestEnqueuePacketEmpty(t *testing.T) {
	m := newTestManager(t, 2)
	if _, err := m.EnqueuePacket(0, nil); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
}

func TestDequeuePacketErrors(t *testing.T) {
	m := newTestManager(t, 8)
	if _, _, err := m.DequeuePacket(0); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
	m.Enqueue(0, []byte{1}, false)
	if _, _, err := m.DequeuePacket(0); !errors.Is(err, ErrNoPacket) {
		t.Fatalf("err = %v", err)
	}
}

func TestDequeuePacketInterleavedQueues(t *testing.T) {
	m := newTestManager(t, 32)
	a := bytes.Repeat([]byte{0xaa}, 100)
	b := bytes.Repeat([]byte{0xbb}, 200)
	m.EnqueuePacket(0, a)
	m.EnqueuePacket(1, b)
	gotB, _, err := m.DequeuePacket(1)
	if err != nil {
		t.Fatal(err)
	}
	gotA, _, err := m.DequeuePacket(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("cross-queue corruption")
	}
	mustInvariants(t, m)
}

func TestPacketLen(t *testing.T) {
	m := newTestManager(t, 16)
	data := make([]byte, 2*SegmentBytes+5)
	m.EnqueuePacket(0, data)
	bytes_, segs, err := m.PacketLen(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes_ != len(data) || segs != 3 {
		t.Fatalf("PacketLen = %d bytes %d segs", bytes_, segs)
	}
	// Non-destructive.
	if n, _ := m.Len(0); n != 3 {
		t.Fatalf("len = %d", n)
	}
	if _, _, err := m.PacketLen(3); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestMoveWholePacketBetweenQueuesPreservesData(t *testing.T) {
	m := newTestManager(t, 32)
	pkt := make([]byte, 3*SegmentBytes)
	for i := range pkt {
		pkt[i] = byte(i ^ 0x5a)
	}
	m.EnqueuePacket(4, pkt)
	if _, err := m.MovePacket(4, 6); err != nil {
		t.Fatal(err)
	}
	got, _, err := m.DequeuePacket(6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Fatal("move corrupted packet data")
	}
	mustInvariants(t, m)
}
