package queue

import (
	"errors"
	"testing"

	"npqm/internal/xrand"
)

// bruteLongest finds the longest queue by scanning, for cross-checking the
// heap. Ties break toward the lower queue ID, matching heapLess.
func bruteLongest(m *Manager) (QueueID, int, bool) {
	best, bestLen := QueueID(0), 0
	for q := 0; q < m.NumQueues(); q++ {
		n, _ := m.Len(QueueID(q))
		if n > bestLen {
			best, bestLen = QueueID(q), n
		}
	}
	return best, bestLen, bestLen > 0
}

func TestLongestQueueTracking(t *testing.T) {
	m, err := New(Config{NumQueues: 16, NumSegments: 256, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	m.SetLongestTracking(true)
	if !m.TracksLongest() {
		t.Fatal("tracking not enabled")
	}
	rng := xrand.New(11)
	pkt := make([]byte, 4*SegmentBytes)
	for op := 0; op < 5000; op++ {
		q := QueueID(rng.Intn(16))
		if rng.Bool(0.55) {
			size := 1 + rng.Intn(len(pkt)-1)
			if _, err := m.EnqueuePacket(q, pkt[:size]); err != nil &&
				!errors.Is(err, ErrNoFreeSegments) {
				t.Fatal(err)
			}
		} else {
			if _, _, err := m.DequeuePacket(q); err != nil && !errors.Is(err, ErrQueueEmpty) {
				t.Fatal(err)
			}
		}
		if op%97 == 0 {
			// Throw moves into the mix: they bypass the link/unlink path.
			_, _ = m.MovePacket(QueueID(rng.Intn(16)), QueueID(rng.Intn(16)))
		}
		gotQ, gotLen, gotOK := m.LongestQueue()
		_, wantLen, wantOK := bruteLongest(m)
		if gotOK != wantOK || (gotOK && gotLen != wantLen) {
			t.Fatalf("op %d: LongestQueue = (%d, %d, %v), brute force says len %d ok %v",
				op, gotQ, gotLen, gotOK, wantLen, wantOK)
		}
		if gotOK {
			if n, _ := m.Len(gotQ); n != gotLen {
				t.Fatalf("op %d: reported queue %d has %d segments, reported %d", op, gotQ, n, gotLen)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLongestTrackingMidstreamAndOff(t *testing.T) {
	m, err := New(Config{NumQueues: 8, NumSegments: 64, StoreData: false})
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, SegmentBytes)
	for q := 0; q < 4; q++ {
		for i := 0; i <= q; i++ {
			if _, err := m.EnqueuePacket(QueueID(q), pkt); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Fallback scan with tracking off.
	q, n, ok := m.LongestQueue()
	if !ok || q != 3 || n != 4 {
		t.Fatalf("untracked LongestQueue = (%d, %d, %v), want (3, 4, true)", q, n, ok)
	}
	// Enabling mid-stream builds the heap from live state.
	m.SetLongestTracking(true)
	q, n, ok = m.LongestQueue()
	if !ok || q != 3 || n != 4 {
		t.Fatalf("tracked LongestQueue = (%d, %d, %v), want (3, 4, true)", q, n, ok)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.SetLongestTracking(false)
	if m.TracksLongest() {
		t.Fatal("tracking still on")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPushOutLongest(t *testing.T) {
	m, err := New(Config{NumQueues: 4, NumSegments: 64, StoreData: false})
	if err != nil {
		t.Fatal(err)
	}
	m.SetLongestTracking(true)
	pkt := make([]byte, 3*SegmentBytes)
	for i := 0; i < 5; i++ {
		if _, err := m.EnqueuePacket(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.EnqueuePacket(2, pkt[:SegmentBytes]); err != nil {
		t.Fatal(err)
	}
	q, n, err := m.PushOutLongest()
	if err != nil || q != 1 || n != 3 {
		t.Fatalf("PushOutLongest = (%d, %d, %v), want (1, 3, nil)", q, n, err)
	}
	if p, s := m.Drops(); p != 1 || s != 3 {
		t.Fatalf("Drops = (%d, %d), want (1, 3)", p, s)
	}
	if got, _ := m.Len(1); got != 12 {
		t.Fatalf("queue 1 has %d segments after push-out, want 12", got)
	}
	// Drain everything; push-out on an empty manager errors.
	for {
		if _, _, err := m.PushOutLongest(); err != nil {
			if !errors.Is(err, ErrQueueEmpty) {
				t.Fatalf("final push-out error = %v, want ErrQueueEmpty", err)
			}
			break
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := m.FreeSegments(); free != 64 {
		t.Fatalf("pool not restored: %d free of 64", free)
	}
}

func TestPushOutPartialPacket(t *testing.T) {
	m, err := New(Config{NumQueues: 2, NumSegments: 8, StoreData: false})
	if err != nil {
		t.Fatal(err)
	}
	m.SetLongestTracking(true)
	// A headless partial packet: two segments, no EOP.
	if _, err := m.Enqueue(0, make([]byte, 8), false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue(0, make([]byte, 8), false); err != nil {
		t.Fatal(err)
	}
	q, n, err := m.PushOutLongest()
	if err != nil || q != 0 || n != 1 {
		t.Fatalf("partial push-out = (%d, %d, %v), want (0, 1, nil) single-segment fallback", q, n, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropHeadPacket(t *testing.T) {
	m, err := New(Config{NumQueues: 2, NumSegments: 16, StoreData: false})
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 2*SegmentBytes)
	if _, err := m.EnqueuePacket(0, pkt); err != nil {
		t.Fatal(err)
	}
	n, err := m.DropHeadPacket(0)
	if err != nil || n != 2 {
		t.Fatalf("DropHeadPacket = (%d, %v), want (2, nil)", n, err)
	}
	if p, s := m.Drops(); p != 1 || s != 2 {
		t.Fatalf("Drops = (%d, %d), want (1, 2)", p, s)
	}
	if _, err := m.DropHeadPacket(0); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("empty DropHeadPacket error = %v, want ErrQueueEmpty", err)
	}
	if p, s := m.Drops(); p != 1 || s != 2 {
		t.Fatalf("failed drop changed counters to (%d, %d)", p, s)
	}
}

func TestSetSegmentLimitClamp(t *testing.T) {
	m, err := New(Config{NumQueues: 2, NumSegments: 32, StoreData: false})
	if err != nil {
		t.Fatal(err)
	}
	// Limits beyond the pool clamp to the pool size.
	if err := m.SetSegmentLimit(0, 1000); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.SegmentLimit(0); got != 32 {
		t.Fatalf("SegmentLimit after oversized set = %d, want clamped 32", got)
	}
	// In-range limits are kept verbatim; 0 removes the cap.
	if err := m.SetSegmentLimit(0, 5); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.SegmentLimit(0); got != 5 {
		t.Fatalf("SegmentLimit = %d, want 5", got)
	}
	if err := m.SetSegmentLimit(0, 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.SegmentLimit(0); got != 0 {
		t.Fatalf("SegmentLimit after clear = %d, want 0", got)
	}
	if err := m.SetSegmentLimit(0, -3); err == nil {
		t.Fatal("negative limit accepted")
	}
}
