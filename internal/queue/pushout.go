package queue

// Push-out support for shared-buffer admission policies (Longest Queue
// Drop). The Manager can maintain an indexed max-heap over per-queue
// segment counts so the longest queue is found in O(1) and kept current in
// O(log n) per enqueue/dequeue — the software analogue of the occupancy
// comparator tree a shared-memory switch keeps beside its queue table.
// Tracking is off by default so the base datapath pays nothing for it.

import (
	"errors"
	"fmt"
)

// SetLongestTracking enables or disables the longest-queue max-heap.
// Enabling builds the heap from the current queue table in O(n); disabling
// frees it. While disabled, LongestQueue falls back to a linear scan.
func (m *Manager) SetLongestTracking(on bool) {
	if on == (m.heapPos != nil) {
		return
	}
	if !on {
		m.heap, m.heapPos = nil, nil
		return
	}
	m.heapPos = make([]int32, m.cfg.NumQueues)
	for q := range m.heapPos {
		m.heapPos[q] = -1
	}
	m.heap = m.heap[:0]
	for q := 0; q < m.cfg.NumQueues; q++ {
		if m.qsegs[q] > 0 {
			m.heapPos[q] = int32(len(m.heap))
			m.heap = append(m.heap, int32(q))
		}
	}
	// Bottom-up heapify.
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(int32(i))
	}
}

// TracksLongest reports whether the longest-queue heap is maintained.
func (m *Manager) TracksLongest() bool { return m.heapPos != nil }

// LongestQueue returns the queue currently holding the most segments and
// its segment count. ok is false when every queue is empty. With tracking
// enabled this is O(1); otherwise it scans the queue table.
func (m *Manager) LongestQueue() (QueueID, int, bool) {
	if m.heapPos != nil {
		if len(m.heap) == 0 {
			return 0, 0, false
		}
		q := QueueID(m.heap[0])
		return q, int(m.qsegs[q]), true
	}
	best, bestLen := QueueID(0), int32(0)
	for q := 0; q < m.cfg.NumQueues; q++ {
		if m.qsegs[q] > bestLen {
			best, bestLen = QueueID(q), m.qsegs[q]
		}
	}
	return best, int(bestLen), bestLen > 0
}

// PushOutLongest drops the head packet of the longest queue, counting it in
// the drop accounting, and returns the victim queue and the number of
// segments freed. When the longest queue's head is an incomplete packet
// (possible only through the raw segment API) a single segment is dropped
// instead so forward progress is guaranteed. ErrQueueEmpty is returned when
// every queue is empty.
func (m *Manager) PushOutLongest() (QueueID, int, error) {
	q, _, ok := m.LongestQueue()
	if !ok {
		return 0, 0, fmt.Errorf("%w: no queue to push out from", ErrQueueEmpty)
	}
	n, err := m.DeletePacket(q)
	if errors.Is(err, ErrNoPacket) {
		if err := m.DeleteSegment(q); err != nil {
			return q, 0, err
		}
		n = 1
	} else if err != nil {
		return q, n, err
	}
	m.droppedPackets++
	m.droppedSegments += uint64(n)
	return q, n, nil
}

// DropHeadPacket removes the head packet of q like DeletePacket, but counts
// it as a policy drop rather than a dequeue, for callers implementing
// admission policies above the manager.
func (m *Manager) DropHeadPacket(q QueueID) (int, error) {
	n, err := m.DeletePacket(q)
	if err != nil {
		return n, err
	}
	m.droppedPackets++
	m.droppedSegments += uint64(n)
	return n, nil
}

// Drops returns the cumulative packets and segments removed by push-out or
// DropHeadPacket since New.
func (m *Manager) Drops() (packets, segments uint64) {
	return m.droppedPackets, m.droppedSegments
}

// fixLongest restores the heap after qsegs[q] changed. It is a no-op when
// tracking is disabled.
func (m *Manager) fixLongest(q QueueID) {
	if m.heapPos == nil {
		return
	}
	pos := m.heapPos[q]
	if m.qsegs[q] == 0 {
		if pos >= 0 {
			m.heapRemove(pos)
		}
		return
	}
	if pos < 0 {
		m.heapPos[q] = int32(len(m.heap))
		m.heap = append(m.heap, int32(q))
		m.siftUp(int32(len(m.heap) - 1))
		return
	}
	m.siftUp(pos)
	m.siftDown(m.heapPos[q])
}

// heapRemove deletes the element at heap index pos.
func (m *Manager) heapRemove(pos int32) {
	q := m.heap[pos]
	last := int32(len(m.heap) - 1)
	m.heapPos[q] = -1
	if pos != last {
		moved := m.heap[last]
		m.heap[pos] = moved
		m.heapPos[moved] = pos
	}
	m.heap = m.heap[:last]
	if pos != last {
		m.siftUp(pos)
		m.siftDown(m.heapPos[m.heap[pos]])
	}
}

func (m *Manager) heapLess(i, j int32) bool {
	// Max-heap by segment count; ties broken by queue ID for determinism.
	a, b := m.heap[i], m.heap[j]
	if m.qsegs[a] != m.qsegs[b] {
		return m.qsegs[a] > m.qsegs[b]
	}
	return a < b
}

func (m *Manager) heapSwap(i, j int32) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.heapPos[m.heap[i]] = i
	m.heapPos[m.heap[j]] = j
}

func (m *Manager) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.heapLess(i, parent) {
			return
		}
		m.heapSwap(i, parent)
		i = parent
	}
}

func (m *Manager) siftDown(i int32) {
	n := int32(len(m.heap))
	for {
		best := i
		if l := 2*i + 1; l < n && m.heapLess(l, best) {
			best = l
		}
		if r := 2*i + 2; r < n && m.heapLess(r, best) {
			best = r
		}
		if best == i {
			return
		}
		m.heapSwap(i, best)
		i = best
	}
}
