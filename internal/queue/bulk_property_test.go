package queue

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"npqm/internal/segstore"
	"npqm/internal/xrand"
)

// Property tests for the vectorized packet path (bulk run allocation in
// EnqueuePacket, whole-chain FreeN in dequeue/drop/push-out). The pools are
// deliberately tiny and the magazine size small, so packets routinely span
// magazine boundaries (FreeN carves and spills mid-chain) and the pool runs
// dry mid-sequence. Run with -race: the concurrent variant is the only way
// to reach EnqueuePacket's short-AllocN unwind, which needs another owner
// draining the depot between the reservation check and the grab.

// pktModel is the reference: a packet is just its payload; segments and
// bytes are derived, never tracked incrementally.
type pktModel struct {
	queues [][][]byte
	drops  struct{ pkts, segs uint64 }
}

func newPktModel(queues int) *pktModel {
	return &pktModel{queues: make([][][]byte, queues)}
}

func pktSegs(p []byte) int { return (len(p) + SegmentBytes - 1) / SegmentBytes }

func (mo *pktModel) segs(q int) int {
	n := 0
	for _, p := range mo.queues[q] {
		n += pktSegs(p)
	}
	return n
}

func (mo *pktModel) totalSegs() int {
	n := 0
	for q := range mo.queues {
		n += mo.segs(q)
	}
	return n
}

func (mo *pktModel) totalBytes() int {
	n := 0
	for _, q := range mo.queues {
		for _, p := range q {
			n += len(p)
		}
	}
	return n
}

// longest mirrors the manager's heap ordering: most segments wins, ties
// broken by the lower queue ID.
func (mo *pktModel) longest() (int, bool) {
	best, bestSegs := -1, 0
	for q := range mo.queues {
		if s := mo.segs(q); s > bestSegs {
			best, bestSegs = q, s
		}
	}
	return best, best >= 0
}

func (mo *pktModel) dropHead(q int) []byte {
	p := mo.queues[q][0]
	mo.queues[q] = mo.queues[q][1:]
	mo.drops.pkts++
	mo.drops.segs += uint64(pktSegs(p))
	return p
}

// TestBulkPathConservesAgainstModel drives one manager over a shared store
// with a random packet-op sequence and cross-checks every outcome — success
// or refusal, payload bytes, free count, buffered bytes, drop tallies —
// against the reference model. MagazineSize 8 with packets up to 24 segments
// makes every large FreeN cross magazine boundaries.
func TestBulkPathConservesAgainstModel(t *testing.T) {
	const (
		numQueues = 6
		numSegs   = 96
		magSize   = 8
		maxPktSeg = 24
		steps     = 12000
		limitedQ  = 0
		qLimit    = 10
	)
	st, err := segstore.New(segstore.Config{
		NumSegments:  numSegs,
		SegmentBytes: SegmentBytes,
		StoreData:    true,
		MagazineSize: magSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithStore(Config{NumQueues: numQueues}, st.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	m.SetLongestTracking(true)
	if err := m.SetSegmentLimit(limitedQ, qLimit); err != nil {
		t.Fatal(err)
	}
	mo := newPktModel(numQueues)
	rng := xrand.New(808)

	randPkt := func() []byte {
		n := 1 + rng.Intn(maxPktSeg*SegmentBytes)
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(rng.Uint32())
		}
		return p
	}

	for step := 0; step < steps; step++ {
		q := rng.Intn(numQueues)
		switch rng.Intn(8) {
		case 0, 1, 2, 3: // EnqueuePacket
			p := randPkt()
			needed := pktSegs(p)
			_, err := m.EnqueuePacket(QueueID(q), p)
			switch {
			// Refusals follow the manager's own check order: admission
			// first, then the reservation against the free pool.
			case q == limitedQ && mo.segs(q)+needed > qLimit:
				if !errors.Is(err, ErrQueueLimit) {
					t.Fatalf("step %d: want ErrQueueLimit, got %v", step, err)
				}
			case needed > numSegs-mo.totalSegs():
				if !errors.Is(err, ErrNoFreeSegments) {
					t.Fatalf("step %d: want ErrNoFreeSegments, got %v", step, err)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: enqueue of %d segs failed with %d free: %v",
						step, needed, numSegs-mo.totalSegs(), err)
				}
				mo.queues[q] = append(mo.queues[q], p)
			}
		case 4, 5: // DequeuePacket
			data, n, err := m.DequeuePacket(QueueID(q))
			if len(mo.queues[q]) == 0 {
				if err == nil {
					t.Fatalf("step %d: dequeue succeeded on empty queue", step)
				}
				continue
			}
			want := mo.queues[q][0]
			mo.queues[q] = mo.queues[q][1:]
			if err != nil || n != pktSegs(want) || !bytes.Equal(data, want) {
				t.Fatalf("step %d: dequeue = (%d segs, %v), want %d segs, payload match %v",
					step, n, err, pktSegs(want), bytes.Equal(data, want))
			}
		case 6: // DropHeadPacket
			n, err := m.DropHeadPacket(QueueID(q))
			if len(mo.queues[q]) == 0 {
				if err == nil {
					t.Fatalf("step %d: drop succeeded on empty queue", step)
				}
				continue
			}
			p := mo.dropHead(q)
			if err != nil || n != pktSegs(p) {
				t.Fatalf("step %d: drop = (%d, %v), want %d segs", step, n, err, pktSegs(p))
			}
		case 7: // PushOutLongest
			victim, ok := mo.longest()
			vq, n, err := m.PushOutLongest()
			if !ok {
				if err == nil {
					t.Fatalf("step %d: push-out succeeded with all queues empty", step)
				}
				continue
			}
			if err != nil || int(vq) != victim {
				t.Fatalf("step %d: push-out = (q%d, %v), model victim q%d", step, vq, err, victim)
			}
			if p := mo.dropHead(victim); n != pktSegs(p) {
				t.Fatalf("step %d: push-out freed %d segs, want %d", step, n, pktSegs(p))
			}
		}

		// Conservation every step: the bulk paths publish once per op, so
		// the pool-wide free count is exact between operations.
		if free := m.FreeSegments(); free != numSegs-mo.totalSegs() {
			t.Fatalf("step %d: free %d, model %d", step, free, numSegs-mo.totalSegs())
		}
		if m.TotalBuffered() != mo.totalBytes() {
			t.Fatalf("step %d: buffered %d bytes, model %d", step, m.TotalBuffered(), mo.totalBytes())
		}
		for qq := 0; qq < numQueues; qq++ {
			if n, _ := m.Len(QueueID(qq)); n != mo.segs(qq) {
				t.Fatalf("step %d: queue %d holds %d segs, model %d", step, qq, n, mo.segs(qq))
			}
		}
		if step%500 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	dp, ds := m.Drops()
	if dp != mo.drops.pkts || ds != mo.drops.segs {
		t.Fatalf("drops = (%d pkts, %d segs), model (%d, %d)", dp, ds, mo.drops.pkts, mo.drops.segs)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkPathConcurrentExhaustion runs four single-writer managers over one
// deliberately undersized shared store. Each worker checks its own queues
// against a private model (per-flow FIFO and payload bytes stay exact even
// while the pool thrashes); enqueue admission is genuinely racy, so only the
// failure mode is asserted. This is the path that exercises EnqueuePacket's
// partial-run unwind: a worker's reservation check passes, another worker
// drains the depot, AllocN comes up short, and the partial run must go back
// in one FreeN without touching the queue. Afterwards everything drains and
// the store must hold exactly the full pool again.
func TestBulkPathConcurrentExhaustion(t *testing.T) {
	const (
		workers   = 4
		numQueues = 4
		numSegs   = 160
		magSize   = 8
		maxPktSeg = 20
		opsEach   = 4000
	)
	st, err := segstore.New(segstore.Config{
		NumSegments:  numSegs,
		SegmentBytes: SegmentBytes,
		StoreData:    true,
		MagazineSize: magSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgrs := make([]*Manager, workers)
	for w := range mgrs {
		if mgrs[w], err = NewWithStore(Config{NumQueues: numQueues}, st.NewCache()); err != nil {
			t.Fatal(err)
		}
		mgrs[w].SetLongestTracking(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := mgrs[w]
			mo := newPktModel(numQueues)
			rng := xrand.New(uint64(1000 + w))
			fail := func(format string, args ...any) {
				t.Errorf(format, args...)
			}
			for step := 0; step < opsEach; step++ {
				q := rng.Intn(numQueues)
				switch rng.Intn(8) {
				case 0, 1, 2, 3: // EnqueuePacket — success is racy, failure mode is not
					n := 1 + rng.Intn(maxPktSeg*SegmentBytes)
					p := make([]byte, n)
					for i := range p {
						p[i] = byte(rng.Uint32())
					}
					if _, err := m.EnqueuePacket(QueueID(q), p); err != nil {
						if !errors.Is(err, ErrNoFreeSegments) {
							fail("worker %d step %d: unexpected enqueue error %v", w, step, err)
							return
						}
					} else {
						mo.queues[q] = append(mo.queues[q], p)
					}
				case 4, 5: // DequeuePacket — exact per-worker FIFO
					data, n, err := m.DequeuePacket(QueueID(q))
					if len(mo.queues[q]) == 0 {
						if err == nil {
							fail("worker %d step %d: dequeue succeeded on empty queue", w, step)
							return
						}
						continue
					}
					want := mo.queues[q][0]
					mo.queues[q] = mo.queues[q][1:]
					if err != nil || n != pktSegs(want) || !bytes.Equal(data, want) {
						fail("worker %d step %d: dequeue mismatch (%d segs, %v)", w, step, n, err)
						return
					}
				case 6: // DropHeadPacket
					n, err := m.DropHeadPacket(QueueID(q))
					if len(mo.queues[q]) == 0 {
						if err == nil {
							fail("worker %d step %d: drop succeeded on empty queue", w, step)
							return
						}
						continue
					}
					if p := mo.dropHead(q); err != nil || n != pktSegs(p) {
						fail("worker %d step %d: drop = (%d, %v)", w, step, n, err)
						return
					}
				case 7: // PushOutLongest within this worker's own queues
					victim, ok := mo.longest()
					vq, n, err := m.PushOutLongest()
					if !ok {
						if err == nil {
							fail("worker %d step %d: push-out succeeded with all queues empty", w, step)
							return
						}
						continue
					}
					if err != nil || int(vq) != victim {
						fail("worker %d step %d: push-out = (q%d, %v), model q%d", w, step, vq, err, victim)
						return
					}
					if p := mo.dropHead(victim); n != pktSegs(p) {
						fail("worker %d step %d: push-out freed %d segs", w, step, n)
						return
					}
				}
			}
			// Drain every queue, verifying residual FIFO contents.
			for q := 0; q < numQueues; q++ {
				for len(mo.queues[q]) > 0 {
					want := mo.queues[q][0]
					mo.queues[q] = mo.queues[q][1:]
					data, n, err := m.DequeuePacket(QueueID(q))
					if err != nil || n != pktSegs(want) || !bytes.Equal(data, want) {
						fail("worker %d drain q%d: (%d segs, %v)", w, q, n, err)
						return
					}
				}
				if n, _ := m.Len(QueueID(q)); n != 0 {
					fail("worker %d: queue %d not empty after drain (%d segs)", w, q, n)
					return
				}
			}
			if err := m.CheckInvariants(); err != nil {
				fail("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Hand every cached magazine back; the pool must be whole again.
	for _, m := range mgrs {
		m.FlushFree()
	}
	if free := st.Free(); free != numSegs {
		t.Errorf("pool holds %d free segments after full drain, want %d", free, numSegs)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
