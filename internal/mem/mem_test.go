package mem

import (
	"testing"
	"testing/quick"
)

func TestPortDir(t *testing.T) {
	cases := []struct {
		p    Port
		want Op
	}{
		{NetWrite, Write},
		{CPUWrite, Write},
		{NetRead, Read},
		{CPURead, Read},
	}
	for _, c := range cases {
		if got := c.p.Dir(); got != c.want {
			t.Errorf("%v.Dir() = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op.String broken")
	}
	if NetWrite.String() != "net-wr" || CPURead.String() != "cpu-rd" {
		t.Fatal("Port.String broken")
	}
	if Op(9).String() == "" || Port(9).String() == "" {
		t.Fatal("unknown values must still render")
	}
	r := Request{Port: NetRead, Op: Read, Bank: 3, Addr: 0x40}
	if r.String() == "" {
		t.Fatal("Request.String broken")
	}
}

func TestFIFOOrdering(t *testing.T) {
	f := NewFIFO(0)
	for i := 0; i < 100; i++ {
		if !f.Push(Request{Bank: i}) {
			t.Fatal("unbounded FIFO rejected push")
		}
	}
	for i := 0; i < 100; i++ {
		r, ok := f.Pop()
		if !ok || r.Bank != i {
			t.Fatalf("pop %d: got %v ok=%v", i, r, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
}

func TestFIFOBounded(t *testing.T) {
	f := NewFIFO(2)
	if !f.Push(Request{}) || !f.Push(Request{}) {
		t.Fatal("pushes below capacity rejected")
	}
	if f.Push(Request{}) {
		t.Fatal("push above capacity accepted")
	}
	if !f.Full() {
		t.Fatal("Full() = false at capacity")
	}
	f.Pop()
	if f.Full() {
		t.Fatal("Full() = true after pop")
	}
	if !f.Push(Request{}) {
		t.Fatal("push after pop rejected")
	}
}

func TestFIFOPeek(t *testing.T) {
	f := NewFIFO(0)
	if _, ok := f.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	f.Push(Request{Bank: 7})
	r, ok := f.Peek()
	if !ok || r.Bank != 7 {
		t.Fatal("peek wrong")
	}
	if f.Len() != 1 {
		t.Fatal("peek consumed element")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order.
func TestFIFOPropertyOrder(t *testing.T) {
	err := quick.Check(func(ops []bool) bool {
		f := NewFIFO(0)
		next := 0   // next value to push
		expect := 0 // next value expected from pop
		for _, push := range ops {
			if push {
				f.Push(Request{Bank: next})
				next++
			} else if r, ok := f.Pop(); ok {
				if r.Bank != expect {
					return false
				}
				expect++
			}
		}
		// Drain.
		for {
			r, ok := f.Pop()
			if !ok {
				break
			}
			if r.Bank != expect {
				return false
			}
			expect++
		}
		return expect == next && f.Len() == 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOCompaction(t *testing.T) {
	f := NewFIFO(0)
	// Grow then shrink repeatedly; ordering must survive compaction.
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			f.Push(Request{Bank: i})
		}
		for i := 0; i < 200; i++ {
			r, ok := f.Pop()
			if !ok || r.Bank != i {
				t.Fatalf("round %d pop %d: %v ok=%v", round, i, r, ok)
			}
		}
	}
}
