// Package mem defines the memory-access vocabulary shared by the hardware
// models: operation kinds, ports, and request records.
//
// The paper's DDR analysis (Section 3) considers aggregate traffic from four
// ports — "a write and a read port from/to the network, a write and a read
// port from/to an internal processing unit" — issuing 64-byte block accesses.
// These types describe exactly that traffic.
package mem

import "fmt"

// Op is a memory operation direction.
type Op uint8

const (
	// Read transfers a block from memory to the requester.
	Read Op = iota
	// Write transfers a block from the requester to memory.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Port identifies one of the request sources feeding a memory controller.
// The canonical configuration from the paper is four ports; see PaperPorts.
type Port uint8

// The four-port configuration used throughout the paper's Section 3 analysis.
const (
	NetWrite Port = iota // packets arriving from the network
	NetRead              // packets departing to the network
	CPUWrite             // processing unit writing back
	CPURead              // processing unit reading
	NumPaperPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case NetWrite:
		return "net-wr"
	case NetRead:
		return "net-rd"
	case CPUWrite:
		return "cpu-wr"
	case CPURead:
		return "cpu-rd"
	default:
		return fmt.Sprintf("port(%d)", uint8(p))
	}
}

// Dir returns the operation direction a paper port issues: the two write
// ports issue writes, the two read ports issue reads.
func (p Port) Dir() Op {
	if p == NetWrite || p == CPUWrite {
		return Write
	}
	return Read
}

// Request is one block access presented to a memory controller.
type Request struct {
	Port Port   // issuing port
	Op   Op     // direction
	Bank int    // target DRAM bank
	Addr uint32 // block-aligned address (used by functional models)
}

// String implements fmt.Stringer.
func (r Request) String() string {
	return fmt.Sprintf("%s %s bank=%d addr=%#x", r.Port, r.Op, r.Bank, r.Addr)
}

// FIFO is a bounded queue of requests, modeling the per-port pending-access
// FIFOs in front of a memory scheduler. A zero capacity means unbounded.
type FIFO struct {
	buf []Request
	cap int
}

// NewFIFO returns a FIFO holding at most capacity requests
// (0 means unbounded).
func NewFIFO(capacity int) *FIFO {
	return &FIFO{cap: capacity}
}

// Len returns the number of queued requests.
func (f *FIFO) Len() int { return len(f.buf) }

// Full reports whether the FIFO cannot accept another request.
func (f *FIFO) Full() bool { return f.cap > 0 && len(f.buf) >= f.cap }

// Push appends r. It reports false (and drops nothing) if the FIFO is full.
func (f *FIFO) Push(r Request) bool {
	if f.Full() {
		return false
	}
	f.buf = append(f.buf, r)
	return true
}

// Peek returns the head request without removing it.
// The boolean is false if the FIFO is empty.
func (f *FIFO) Peek() (Request, bool) {
	if len(f.buf) == 0 {
		return Request{}, false
	}
	return f.buf[0], true
}

// At returns the i-th queued request (0 = head). It panics if i is out of
// range; callers index within Len().
func (f *FIFO) At(i int) Request { return f.buf[i] }

// Remove deletes the i-th queued request (0 = head), preserving the order of
// the remaining requests. It panics if i is out of range.
func (f *FIFO) Remove(i int) Request {
	r := f.buf[i]
	if i == 0 {
		f.Pop()
		return r
	}
	f.buf = append(f.buf[:i], f.buf[i+1:]...)
	return r
}

// Pop removes and returns the head request.
// The boolean is false if the FIFO is empty.
func (f *FIFO) Pop() (Request, bool) {
	if len(f.buf) == 0 {
		return Request{}, false
	}
	r := f.buf[0]
	// Shift-free pop: reslice, compacting occasionally to bound growth.
	f.buf = f.buf[1:]
	if len(f.buf) == 0 {
		f.buf = nil
	} else if cap(f.buf) > 64 && len(f.buf) <= cap(f.buf)/4 {
		f.buf = append([]Request(nil), f.buf...)
	}
	return r, true
}
