package ddr

import (
	"math"
	"testing"
	"testing/quick"

	"npqm/internal/mem"
)

const probeDecisions = 400_000

var table1Banks = []int{1, 4, 8, 12, 16}

// paperLoss holds the published Table 1 values, keyed by
// scheduler/penalty-model, indexed by table1Banks position.

var paperLoss = map[string][]float64{
	"fcfs/conf":    {0.750, 0.522, 0.384, 0.305, 0.253},
	"fcfs/rw":      {0.750, 0.500, 0.390, 0.347, 0.317},
	"reorder/conf": {0.750, 0.260, 0.046, 0.012, 0.003},
	"reorder/rw":   {0.750, 0.331, 0.199, 0.159, 0.139},
}

func runLoss(t *testing.T, banks int, sched SchedulerKind, rw bool) float64 {
	t.Helper()
	r, err := RunSaturated(Config{Banks: banks, Scheduler: sched, RWInterleave: rw}, 12345, probeDecisions)
	if err != nil {
		t.Fatal(err)
	}
	return r.Loss
}

// TestTable1ConflictColumns checks the bank-conflict-only columns against the
// paper within a tight tolerance: the conflict mechanism is fully specified
// by the paper (40 ns access cycle, 160 ns precharge, last-3 history), so we
// should — and do — reproduce it almost exactly.
func TestTable1ConflictColumns(t *testing.T) {
	for i, b := range table1Banks {
		got := runLoss(t, b, FCFSRoundRobin, false)
		want := paperLoss["fcfs/conf"][i]
		if math.Abs(got-want) > 0.01 {
			t.Errorf("fcfs conflicts banks=%d: loss %.3f, paper %.3f", b, got, want)
		}
		got = runLoss(t, b, Reorder, false)
		want = paperLoss["reorder/conf"][i]
		if math.Abs(got-want) > 0.01 {
			t.Errorf("reorder conflicts banks=%d: loss %.3f, paper %.3f", b, got, want)
		}
	}
}

// TestTable1RWColumns checks the read/write-interleaving columns with a wider
// tolerance: the paper's footnote pins the penalty (write delayed after read)
// but not its sub-slot rounding, so we accept a 0.06 band and additionally
// assert the qualitative claims hold (see below).
func TestTable1RWColumns(t *testing.T) {
	for i, b := range table1Banks {
		got := runLoss(t, b, FCFSRoundRobin, true)
		want := paperLoss["fcfs/rw"][i]
		if math.Abs(got-want) > 0.06 {
			t.Errorf("fcfs rw banks=%d: loss %.3f, paper %.3f", b, got, want)
		}
		got = runLoss(t, b, Reorder, true)
		want = paperLoss["reorder/rw"][i]
		if math.Abs(got-want) > 0.06 {
			t.Errorf("reorder rw banks=%d: loss %.3f, paper %.3f", b, got, want)
		}
	}
}

// TestPaperHeadlineClaim asserts Section 3's summary sentence: "Assuming 8
// banks per device, this very simple optimization scheme reduces the
// throughput loss by 50% in comparison with the not-optimized one."
func TestPaperHeadlineClaim(t *testing.T) {
	noOpt := runLoss(t, 8, FCFSRoundRobin, true)
	opt := runLoss(t, 8, Reorder, true)
	reduction := (noOpt - opt) / noOpt
	if reduction < 0.40 || reduction > 0.70 {
		t.Fatalf("8-bank loss reduction = %.0f%%, paper claims ~50%%", reduction*100)
	}
}

// TestOneBankExact: with a single bank every access waits out the full
// precharge window, so utilization is exactly 40/160 regardless of scheduler,
// penalty or seed.
func TestOneBankExact(t *testing.T) {
	for _, sched := range []SchedulerKind{FCFSRoundRobin, Reorder} {
		for _, rw := range []bool{false, true} {
			for _, seed := range []uint64{1, 99} {
				r, err := RunSaturated(Config{Banks: 1, Scheduler: sched, RWInterleave: rw}, seed, 50_000)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(r.Loss-0.75) > 1e-3 {
					t.Fatalf("%v rw=%v seed=%d: loss = %.4f, want 0.7500", sched, rw, seed, r.Loss)
				}
			}
		}
	}
}

// TestMonotonicInBanks: more banks means fewer conflicts for every scheduler.
func TestMonotonicInBanks(t *testing.T) {
	for _, sched := range []SchedulerKind{FCFSRoundRobin, Reorder} {
		prev := 2.0
		for _, b := range table1Banks {
			l := runLoss(t, b, sched, false)
			if l > prev+0.005 {
				t.Fatalf("%v: loss increased from %.3f to %.3f at banks=%d", sched, prev, l, b)
			}
			prev = l
		}
	}
}

// TestOptimizerNeverWorse: the reordering scheduler must never lose more
// than FCFS for the same configuration.
func TestOptimizerNeverWorse(t *testing.T) {
	for _, b := range table1Banks {
		for _, rw := range []bool{false, true} {
			fcfs := runLoss(t, b, FCFSRoundRobin, rw)
			reorder := runLoss(t, b, Reorder, rw)
			if reorder > fcfs+0.005 {
				t.Fatalf("banks=%d rw=%v: reorder loss %.3f > fcfs loss %.3f", b, rw, reorder, fcfs)
			}
		}
	}
}

// TestAccountingInvariant: in a saturated run every half-slot is either a
// data transfer, a conflict stall or a turnaround stall.
func TestAccountingInvariant(t *testing.T) {
	cfgs := []Config{
		{Banks: 4, Scheduler: FCFSRoundRobin},
		{Banks: 8, Scheduler: FCFSRoundRobin, RWInterleave: true},
		{Banks: 8, Scheduler: Reorder},
		{Banks: 16, Scheduler: Reorder, RWInterleave: true},
	}
	for _, cfg := range cfgs {
		r, err := RunSaturated(cfg, 7, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		sum := r.Issued*AccessHalfSlots + r.ConflictStalls + r.TurnaroundStalls
		if sum != r.ElapsedHalfSlots {
			t.Fatalf("%+v: %d issued-slots + %d conflict + %d turnaround != %d elapsed",
				cfg, r.Issued*AccessHalfSlots, r.ConflictStalls, r.TurnaroundStalls, r.ElapsedHalfSlots)
		}
	}
}

// TestAccountingProperty fuzzes configurations and checks loss bounds and the
// accounting invariant.
func TestAccountingProperty(t *testing.T) {
	err := quick.Check(func(banksRaw, seedRaw uint8, sched, rw bool) bool {
		banks := int(banksRaw%16) + 1
		cfg := Config{Banks: banks, RWInterleave: rw}
		if sched {
			cfg.Scheduler = Reorder
		}
		r, err := RunSaturated(cfg, uint64(seedRaw)+1, 20_000)
		if err != nil {
			return false
		}
		if r.Loss < -1e-9 || r.Loss > 0.7501 {
			return false
		}
		return r.Issued*AccessHalfSlots+r.ConflictStalls+r.TurnaroundStalls == r.ElapsedHalfSlots
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistinctBanksPipelinePerfectly: a request stream that never reuses a
// bank within the precharge window has zero conflict loss.
func TestDistinctBanksPipelinePerfectly(t *testing.T) {
	c, err := NewController(Config{Banks: 8, Scheduler: FCFSRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	// All writes, striped across banks: no conflicts, no turnarounds.
	bank := 0
	for i := 0; i < 400; i++ {
		c.Offer(mem.Request{Port: mem.NetWrite, Op: mem.Write, Bank: bank})
		bank = (bank + 1) % 8
	}
	for c.Pending() > 0 {
		c.Step()
	}
	r := c.Result()
	if r.Loss > 1e-9 {
		t.Fatalf("striped banks should have zero loss, got %.4f (%+v)", r.Loss, r)
	}
}

// TestTurnaroundAccountedOnce: a single read followed by a single write to
// different banks pays exactly one turnaround half-slot.
func TestTurnaroundAccountedOnce(t *testing.T) {
	c, err := NewController(Config{Banks: 4, Scheduler: FCFSRoundRobin, RWInterleave: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Offer(mem.Request{Port: mem.NetRead, Op: mem.Read, Bank: 0})
	c.Offer(mem.Request{Port: mem.NetWrite, Op: mem.Write, Bank: 1})
	// FCFS serves ports in paper order: NetWrite first, then NetRead — so
	// to force read-then-write use ports whose order matches.
	for c.Pending() > 0 {
		c.Step()
	}
	r := c.Result()
	if r.Issued != 2 {
		t.Fatalf("issued = %d, want 2", r.Issued)
	}
	// The write is served first (port order), then the read: no turnaround.
	if r.TurnaroundStalls != 0 {
		t.Fatalf("unexpected turnaround stalls: %+v", r)
	}

	// Now force read first via CPU ports (later in the order).
	c2, _ := NewController(Config{Banks: 4, Scheduler: FCFSRoundRobin, RWInterleave: true})
	c2.Offer(mem.Request{Port: mem.NetRead, Op: mem.Read, Bank: 0})
	c2.Offer(mem.Request{Port: mem.CPUWrite, Op: mem.Write, Bank: 1})
	for c2.Pending() > 0 {
		c2.Step()
	}
	r2 := c2.Result()
	if r2.TurnaroundStalls != TurnaroundHalfSlots {
		t.Fatalf("turnaround stalls = %d, want %d (%+v)", r2.TurnaroundStalls, TurnaroundHalfSlots, r2)
	}
}

// TestSameBankSerializes: hammering one bank of many still gives 0.25
// utilization.
func TestSameBankSerializes(t *testing.T) {
	c, err := NewController(Config{Banks: 8, Scheduler: Reorder})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.Offer(mem.Request{Port: mem.NetWrite, Op: mem.Write, Bank: 3})
	}
	for c.Pending() > 0 {
		c.Step()
	}
	r := c.Result()
	if math.Abs(r.Utilization-0.25) > 0.01 {
		t.Fatalf("single-bank utilization = %.3f, want 0.25", r.Utilization)
	}
}

// TestLookAheadAblation: letting the reorder scheduler search deeper than
// the FIFO head must not increase loss, and at few banks should reduce it.
func TestLookAheadAblation(t *testing.T) {
	head, err := RunSaturated(Config{Banks: 4, Scheduler: Reorder}, 5, probeDecisions)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := RunSaturated(Config{Banks: 4, Scheduler: Reorder, LookAhead: 8}, 5, probeDecisions)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Loss > head.Loss+0.005 {
		t.Fatalf("lookahead 8 loss %.3f > head-only loss %.3f", deep.Loss, head.Loss)
	}
	if head.Loss-deep.Loss < 0.02 {
		t.Fatalf("lookahead should visibly help at 4 banks: head %.3f deep %.3f", head.Loss, deep.Loss)
	}
}

// TestDeterminism: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	cfg := Config{Banks: 8, Scheduler: Reorder, RWInterleave: true}
	a, _ := RunSaturated(cfg, 42, 50_000)
	b, _ := RunSaturated(cfg, 42, 50_000)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewController(Config{Banks: 0}); err == nil {
		t.Fatal("expected error for zero banks")
	}
	if _, err := RunSaturated(Config{Banks: -1}, 1, 10); err == nil {
		t.Fatal("expected error for negative banks")
	}
	c, _ := NewController(Config{Banks: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range bank")
		}
	}()
	c.Offer(mem.Request{Bank: 5})
}

func TestGoodput(t *testing.T) {
	r := Result{Utilization: 0.5}
	if g := r.GoodputGbps(); math.Abs(g-6.4) > 1e-9 {
		t.Fatalf("goodput = %v, want 6.4", g)
	}
}

func TestSchedulerKindString(t *testing.T) {
	if FCFSRoundRobin.String() != "fcfs-round-robin" || Reorder.String() != "reorder" {
		t.Fatal("SchedulerKind.String broken")
	}
	if SchedulerKind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestNowNs(t *testing.T) {
	c, _ := NewController(Config{Banks: 2})
	c.Offer(mem.Request{Port: mem.NetWrite, Op: mem.Write, Bank: 0})
	c.Step()
	if c.NowNs() != 40 {
		t.Fatalf("NowNs = %v, want 40 after one access", c.NowNs())
	}
}

func BenchmarkRunSaturatedFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = RunSaturated(Config{Banks: 8, Scheduler: FCFSRoundRobin, RWInterleave: true}, 1, 10_000)
	}
}

func BenchmarkRunSaturatedReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = RunSaturated(Config{Banks: 8, Scheduler: Reorder, RWInterleave: true}, 1, 10_000)
	}
}
