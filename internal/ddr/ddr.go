// Package ddr implements the behavioral DDR-SDRAM model from Section 3 of
// the paper, including both memory-access schedulers whose throughput loss is
// compared in Table 1.
//
// # Timing model
//
// The paper's device is a 64-bit DDR DIMM at 100 MHz double-clocked:
//
//   - one 64-byte block access can be inserted every 4 memory clocks, i.e.
//     every 40 ns — this is the "access cycle";
//   - a bank that accepts an access stays busy for the bank-precharge window
//     of 160 ns = 4 access cycles, so a new access to the same bank can start
//     at the earliest 4 access cycles after the previous one;
//   - write access delay is 40 ns and read access delay is 60 ns, so a write
//     issued back-to-back after a read collides with the tail of the read's
//     data phase and must be delayed (footnote 2 of the paper).
//
// The model advances in 20 ns half-slots (half an access cycle), the finest
// granularity the paper's delays require: an access occupies 2 half-slots,
// a bank stays busy for 8, and the write-after-read turnaround costs 1
// (60 ns - 40 ns = 20 ns of data-bus overlap).
//
// # Schedulers
//
// FCFSRoundRobin serializes the four ports' accesses in fixed round-robin
// order and stalls on every bank conflict (the "No Optimization" columns of
// Table 1). Reorder keeps one FIFO per port and on each access cycle issues
// the first head-of-FIFO request, in round-robin order among eligible ports,
// whose bank is not busy; if no head is eligible the access cycle is lost to
// a no-op (the "Optimization" columns). Bank availability is derived from
// the access history of the last 3 access cycles, exactly as the paper
// describes ("it remembers the last 3 accesses").
package ddr

import (
	"fmt"

	"npqm/internal/mem"
	"npqm/internal/xrand"
)

// Paper-fixed timing constants for the DDR DIMM of Section 3.
const (
	// HalfSlotNs is the model's base time unit.
	HalfSlotNs = 20
	// AccessHalfSlots is the bus occupancy of one 64-byte access (40 ns).
	AccessHalfSlots = 2
	// BankBusyHalfSlots is how long a bank stays busy after accepting an
	// access (160 ns bank-precharge window).
	BankBusyHalfSlots = 8
	// TurnaroundHalfSlots is the extra delay of a write issued back-to-back
	// after a read (read delay 60 ns - write delay 40 ns).
	TurnaroundHalfSlots = 1
	// ReadDelayNs and WriteDelayNs are the paper's access delays.
	ReadDelayNs  = 60
	WriteDelayNs = 40
	// BlockBytes is the transfer size of one access.
	BlockBytes = 64
	// PeakGbps is the peak throughput of the modeled DIMM
	// (64 bits x 200 Mb/s/pin = 12.8 Gbps).
	PeakGbps = 12.8
)

// SchedulerKind selects the access scheduler.
type SchedulerKind int

const (
	// FCFSRoundRobin serializes the four ports in round-robin order with
	// head-of-line blocking ("No Optimization" in Table 1).
	FCFSRoundRobin SchedulerKind = iota
	// Reorder picks any non-conflicting head-of-FIFO access, round-robin
	// among eligible ports ("Optimization" in Table 1).
	Reorder
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case FCFSRoundRobin:
		return "fcfs-round-robin"
	case Reorder:
		return "reorder"
	default:
		return fmt.Sprintf("scheduler(%d)", int(k))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Banks is the number of DRAM banks (the paper sweeps 1..16).
	Banks int
	// Scheduler selects the access scheduler under test.
	Scheduler SchedulerKind
	// RWInterleave enables the write-after-read turnaround penalty
	// (the "+ write-read interleaving" columns of Table 1).
	RWInterleave bool
	// LookAhead is how deep into each port FIFO the Reorder scheduler may
	// search for an eligible access. The paper's scheduler considers only
	// FIFO heads (LookAhead = 1, the default); larger values are an
	// ablation of a more aggressive out-of-order controller.
	LookAhead int
}

func (c *Config) lookAhead() int {
	if c.LookAhead <= 0 {
		return 1
	}
	return c.LookAhead
}

// Result summarizes a simulation run. All stall accounting is in half-slots
// (20 ns units); Loss is the paper's Table 1 metric.
type Result struct {
	ElapsedHalfSlots uint64  // total simulated time
	Issued           uint64  // useful accesses performed
	ConflictStalls   uint64  // half-slots lost to bank conflicts
	TurnaroundStalls uint64  // half-slots lost to write-after-read turnaround
	Utilization      float64 // fraction of time the data bus transferred data
	Loss             float64 // 1 - Utilization
}

// GoodputGbps returns the achieved data throughput implied by the run.
func (r Result) GoodputGbps() float64 { return PeakGbps * r.Utilization }

// portOrder is the fixed serialization order of the four paper ports,
// as enumerated in the paper's footnote 3: "a write and a read port from/to
// the network, a write and a read port from/to an internal processing unit".
var portOrder = [4]mem.Port{mem.NetWrite, mem.NetRead, mem.CPUWrite, mem.CPURead}

// Controller is the DDR controller model. Time advances as scheduling
// decisions are made; drive it either with RunSaturated (Table 1) or by
// offering requests and calling Step from a higher-level model.
type Controller struct {
	cfg        Config
	fifos      [4]*mem.FIFO
	now        uint64   // current time in half-slots
	bankFreeAt []uint64 // per bank: first half-slot a new access may start
	lastOp     mem.Op
	lastIssue  uint64 // issue time of the last access
	hasLast    bool
	rrPtr      int // round-robin pointer over ports
	res        Result
}

// NewController returns a controller for the given configuration.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Banks <= 0 {
		return nil, fmt.Errorf("ddr: Banks must be positive, got %d", cfg.Banks)
	}
	c := &Controller{cfg: cfg, bankFreeAt: make([]uint64, cfg.Banks)}
	for i := range c.fifos {
		c.fifos[i] = mem.NewFIFO(0)
	}
	return c, nil
}

// Offer enqueues a request on its port's FIFO.
func (c *Controller) Offer(r mem.Request) {
	if r.Bank < 0 || r.Bank >= c.cfg.Banks {
		panic(fmt.Sprintf("ddr: bank %d out of range [0,%d)", r.Bank, c.cfg.Banks))
	}
	c.fifos[int(r.Port)%4].Push(r)
}

// Pending returns the total number of queued requests.
func (c *Controller) Pending() int {
	n := 0
	for _, f := range c.fifos {
		n += f.Len()
	}
	return n
}

// NowNs returns the current simulation time in nanoseconds.
func (c *Controller) NowNs() float64 { return float64(c.now) * HalfSlotNs }

// Result returns the statistics accumulated so far.
func (c *Controller) Result() Result {
	r := c.res
	r.ElapsedHalfSlots = c.now
	if c.now > 0 {
		r.Utilization = float64(r.Issued*AccessHalfSlots) / float64(c.now)
	}
	r.Loss = 1 - r.Utilization
	return r
}

// turnaroundAt reports whether a request of the given op issued at time t
// would collide with the data phase of the previous access.
func (c *Controller) turnaroundAt(op mem.Op, t uint64) bool {
	return c.cfg.RWInterleave && c.hasLast && op == mem.Write &&
		c.lastOp == mem.Read && t == c.lastIssue+AccessHalfSlots
}

func (c *Controller) issue(r mem.Request, t uint64) {
	c.bankFreeAt[r.Bank] = t + BankBusyHalfSlots
	c.lastOp = r.Op
	c.lastIssue = t
	c.hasLast = true
	c.now = t + AccessHalfSlots
	c.res.Issued++
}

// Step makes one scheduling decision, advancing simulated time.
// It reports whether an access was issued (false means the controller is
// idle for lack of pending requests, or lost an access cycle to a no-op in
// Reorder mode).
func (c *Controller) Step() bool {
	switch c.cfg.Scheduler {
	case FCFSRoundRobin:
		return c.stepFCFS()
	case Reorder:
		return c.stepReorder()
	default:
		panic("ddr: unknown scheduler")
	}
}

// stepFCFS serves the round-robin port pointer with head-of-line blocking:
// the head access waits for its bank, however long that takes.
func (c *Controller) stepFCFS() bool {
	for scan := 0; scan < 4; scan++ {
		idx := (c.rrPtr + scan) % 4
		f := c.fifos[int(portOrder[idx])]
		req, ok := f.Peek()
		if !ok {
			continue
		}
		t := c.now
		if free := c.bankFreeAt[req.Bank]; free > t {
			c.res.ConflictStalls += free - t
			t = free
		}
		if c.turnaroundAt(req.Op, t) {
			c.res.TurnaroundStalls += TurnaroundHalfSlots
			t += TurnaroundHalfSlots
		}
		f.Pop()
		c.issue(req, t)
		c.rrPtr = (idx + 1) % 4
		return true
	}
	return false // nothing pending anywhere
}

// stepReorder checks the pending accesses of the four ports for conflicts
// and issues one that addresses a non-busy bank, round-robin among eligible
// ports. If none is eligible it sends a no-operation, losing one access
// cycle.
func (c *Controller) stepReorder() bool {
	depth := c.cfg.lookAhead()
	for scan := 0; scan < 4; scan++ {
		idx := (c.rrPtr + scan) % 4
		f := c.fifos[int(portOrder[idx])]
		req, pos, ok := peekEligible(f, depth, c.bankFreeAt, c.now)
		if !ok {
			continue
		}
		t := c.now
		// The scheduler reorders only around bank conflicts; it is not
		// aware of bus turnaround, so an eligible write following a read
		// still pays the 20 ns penalty.
		if c.turnaroundAt(req.Op, t) {
			c.res.TurnaroundStalls += TurnaroundHalfSlots
			t += TurnaroundHalfSlots
		}
		removeAt(f, pos)
		c.issue(req, t)
		c.rrPtr = (idx + 1) % 4
		return true
	}
	// No eligible access: no-op, losing one access cycle — but only if work
	// was actually pending (otherwise the controller is simply idle).
	if c.Pending() > 0 {
		c.res.ConflictStalls += AccessHalfSlots
		c.now += AccessHalfSlots
		return false
	}
	return false
}

// peekEligible returns the first of the first depth entries of f whose bank
// is free at time now.
func peekEligible(f *mem.FIFO, depth int, bankFreeAt []uint64, now uint64) (mem.Request, int, bool) {
	n := f.Len()
	if n < depth {
		depth = n
	}
	for i := 0; i < depth; i++ {
		r := f.At(i)
		if bankFreeAt[r.Bank] <= now {
			return r, i, true
		}
	}
	return mem.Request{}, 0, false
}

// removeAt removes the i-th entry of f preserving order of the rest.
func removeAt(f *mem.FIFO, i int) {
	f.Remove(i)
}

// RunSaturated reproduces the Table 1 experiment: all four ports always have
// a pending access to a uniformly random bank ("random bank access patterns
// were simulated as a realistic common case for typical network applications
// incorporating a large number of simultaneously active queues"). It makes
// the given number of scheduling decisions and returns the measured loss.
func RunSaturated(cfg Config, seed uint64, decisions int) (Result, error) {
	c, err := NewController(cfg)
	if err != nil {
		return Result{}, err
	}
	rng := xrand.New(seed)
	depth := cfg.lookAhead()
	if depth < 2 {
		depth = 2
	}
	for i := 0; i < decisions; i++ {
		for _, p := range portOrder {
			f := c.fifos[int(p)]
			for f.Len() < depth {
				c.Offer(mem.Request{Port: p, Op: p.Dir(), Bank: rng.Intn(cfg.Banks)})
			}
		}
		c.Step()
	}
	return c.Result(), nil
}
