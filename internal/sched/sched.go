// Package sched provides the service schedulers the example applications
// put in front of the queue manager: strict priority (802.1p class
// selection), round-robin, weighted round-robin, and deficit round-robin
// for variable-length packets. These are the "selective transmission"
// policies the paper's Section 2 motivates ("queues ... should provide the
// means to access certain parts of their structures").
package sched

import "fmt"

// Scheduler picks the next non-empty queue to serve.
type Scheduler interface {
	// Next returns the queue to serve among the candidates for which
	// backlog(q) reports a positive value. ok is false when every queue is
	// empty. For DRR, served(q, bytes) must be called after transmission.
	Next(backlog func(q int) int) (q int, ok bool)
	// Served informs the scheduler of the transmitted packet length.
	Served(q int, bytes int)
	// Queues returns the number of queues the scheduler arbitrates.
	Queues() int
}

// RoundRobin serves non-empty queues in cyclic order.
type RoundRobin struct {
	n   int
	ptr int
}

// NewRoundRobin returns a scheduler over n queues.
func NewRoundRobin(n int) (*RoundRobin, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: need at least one queue, got %d", n)
	}
	return &RoundRobin{n: n}, nil
}

// Queues implements Scheduler.
func (r *RoundRobin) Queues() int { return r.n }

// Next implements Scheduler.
func (r *RoundRobin) Next(backlog func(int) int) (int, bool) {
	for i := 0; i < r.n; i++ {
		q := (r.ptr + i) % r.n
		if backlog(q) > 0 {
			r.ptr = (q + 1) % r.n
			return q, true
		}
	}
	return 0, false
}

// Served implements Scheduler (no-op for round-robin).
func (r *RoundRobin) Served(int, int) {}

// StrictPriority always serves the lowest-numbered (highest-priority)
// non-empty queue — the 802.1p class selector when queue 0 carries PCP 7.
type StrictPriority struct {
	n int
}

// NewStrictPriority returns a scheduler over n queues; queue 0 is the
// highest priority.
func NewStrictPriority(n int) (*StrictPriority, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: need at least one queue, got %d", n)
	}
	return &StrictPriority{n: n}, nil
}

// Queues implements Scheduler.
func (s *StrictPriority) Queues() int { return s.n }

// Next implements Scheduler.
func (s *StrictPriority) Next(backlog func(int) int) (int, bool) {
	for q := 0; q < s.n; q++ {
		if backlog(q) > 0 {
			return q, true
		}
	}
	return 0, false
}

// Served implements Scheduler (no-op).
func (s *StrictPriority) Served(int, int) {}

// WeightedRoundRobin serves queue q weight[q] times per round.
type WeightedRoundRobin struct {
	weights []int
	credit  []int
	ptr     int
}

// NewWeightedRoundRobin returns a WRR scheduler with the given positive
// per-queue weights.
func NewWeightedRoundRobin(weights []int) (*WeightedRoundRobin, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("sched: need at least one queue")
	}
	for q, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sched: queue %d has non-positive weight %d", q, w)
		}
	}
	w := &WeightedRoundRobin{
		weights: append([]int(nil), weights...),
		credit:  make([]int, len(weights)),
	}
	copy(w.credit, weights)
	return w, nil
}

// Queues implements Scheduler.
func (w *WeightedRoundRobin) Queues() int { return len(w.weights) }

// Next implements Scheduler.
func (w *WeightedRoundRobin) Next(backlog func(int) int) (int, bool) {
	n := len(w.weights)
	// Two passes: with remaining credit, then after a credit refresh.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			q := (w.ptr + i) % n
			if backlog(q) > 0 && w.credit[q] > 0 {
				w.credit[q]--
				if w.credit[q] == 0 {
					w.ptr = (q + 1) % n
				} else {
					w.ptr = q
				}
				return q, true
			}
		}
		// Refresh credits for the next round.
		any := false
		for q := 0; q < n; q++ {
			w.credit[q] = w.weights[q]
			if backlog(q) > 0 {
				any = true
			}
		}
		if !any {
			return 0, false
		}
	}
	return 0, false
}

// Served implements Scheduler (no-op: WRR counts packets via Next).
func (w *WeightedRoundRobin) Served(int, int) {}

// DeficitRoundRobin implements DRR (Shreedhar & Varghese): each round a
// queue earns its quantum of bytes; it may transmit packets while its
// deficit covers them, making WRR fair for variable-length packets.
type DeficitRoundRobin struct {
	quantum []int
	deficit []int
	ptr     int
	// visiting marks that the pointer is mid-visit on ptr's queue, so a
	// continued service does not earn another quantum.
	visiting bool
}

// NewDeficitRoundRobin returns a DRR scheduler with per-queue byte quanta.
func NewDeficitRoundRobin(quantum []int) (*DeficitRoundRobin, error) {
	if len(quantum) == 0 {
		return nil, fmt.Errorf("sched: need at least one queue")
	}
	for q, w := range quantum {
		if w <= 0 {
			return nil, fmt.Errorf("sched: queue %d has non-positive quantum %d", q, w)
		}
	}
	return &DeficitRoundRobin{
		quantum: append([]int(nil), quantum...),
		deficit: make([]int, len(quantum)),
	}, nil
}

// Queues implements Scheduler.
func (d *DeficitRoundRobin) Queues() int { return len(d.quantum) }

// NextPacket picks the queue whose head packet (of the given length) may be
// sent. backlog(q) > 0 marks non-empty queues; head(q) returns the head
// packet's byte length.
func (d *DeficitRoundRobin) NextPacket(backlog func(int) int, head func(int) int) (int, bool) {
	n := len(d.quantum)
	advance := func() {
		d.ptr = (d.ptr + 1) % n
		d.visiting = false
	}
	// Bounded iterations: every queue accumulates at least one quantum per
	// round, so any backlogged head is reachable within
	// maxPacket/minQuantum rounds; 2048 covers 1518-byte packets with
	// single-byte quanta.
	for iter := 0; iter < n*2048+1; iter++ {
		q := d.ptr
		if backlog(q) == 0 {
			// An emptied queue loses its accumulated deficit.
			d.deficit[q] = 0
			advance()
			empty := true
			for i := 0; i < n; i++ {
				if backlog(i) > 0 {
					empty = false
					break
				}
			}
			if empty {
				return 0, false
			}
			continue
		}
		if !d.visiting {
			// The pointer just arrived: the queue earns its quantum.
			d.deficit[q] += d.quantum[q]
			d.visiting = true
		}
		if h := head(q); h <= d.deficit[q] {
			d.deficit[q] -= h
			if backlog(q) == 1 {
				// The queue is about to empty: forfeit the leftover
				// deficit and move on.
				d.deficit[q] = 0
				advance()
			}
			return q, true
		}
		// Not enough deficit: bank it and move on.
		advance()
	}
	return 0, false
}

// Next implements Scheduler using a default 64-byte head estimate; prefer
// NextPacket when head lengths are known.
func (d *DeficitRoundRobin) Next(backlog func(int) int) (int, bool) {
	return d.NextPacket(backlog, func(int) int { return 64 })
}

// Served implements Scheduler (DRR accounts in NextPacket).
func (d *DeficitRoundRobin) Served(int, int) {}

// Compile-time interface checks.
var (
	_ Scheduler = (*RoundRobin)(nil)
	_ Scheduler = (*StrictPriority)(nil)
	_ Scheduler = (*WeightedRoundRobin)(nil)
	_ Scheduler = (*DeficitRoundRobin)(nil)
)
