package sched

// Stack composes an arbitrary number of Levels into one scheduling
// hierarchy over a single leaf population. Level knows how to rotate one
// list of members; Stack knows how those lists nest: every intermediate
// *node* (a tenant, a class — whatever the caller's tiers mean) owns a
// child Level arbitrating the next tier down, and the leaves (flows) sit
// on the innermost Levels. A Stack of depth 0 is the flat case — the
// root Level arbitrates leaves directly — so the same pick/activate/
// deactivate code path serves 1-, 2- and N-level configurations, and a
// flat configuration pays nothing for the machinery.
//
// Node addressing is dense and positional: a node at level k is a
// composite index parent*width(k) + unit, so the node spaces are plain
// slices (8 tenants × 8 classes = 8 level-0 nodes and 64 level-1 nodes)
// and a node's links live intrusively in its own slot — the same
// no-allocation discipline Level imposes on its members. A node is on
// its parent's rotation iff it has backlogged descendants; activation
// and deactivation cascade outward only while a list transitions
// between empty and non-empty, so the common case stays O(1).
//
// Everything configuration-like — discipline parameters per level, node
// weights, the leaf Entity, audit sinks — is reached through the
// Hierarchy interface so the Stack itself holds only rotation state and
// the caller's policy can change without touching any per-Stack state.

import "npqm/internal/policy"

// Hierarchy supplies a Stack's configuration and its leaf population.
// Implementations are expected to be pointer-shaped so the interface
// conversions in the pick path do not allocate.
type Hierarchy interface {
	// Params returns the discipline of intermediate level k (0 is the
	// outermost).
	Params(level int) Params
	// Weight returns node id's scheduling weight at level k (≥ 1). The
	// id is the composite node index; implementations typically key
	// weights by id % width.
	Weight(level int, id int32) int64
	// LeafParams returns the leaf (flow) level's discipline.
	LeafParams() Params
	// Leaf returns the Entity managing the leaf population's links,
	// weights and deficits.
	Leaf() Entity
	// AuditNode mirrors Entity.Audit for intermediate nodes: it
	// accumulates granted/forfeited service entitlement at level k for
	// the conservation property. A no-op outside tests.
	AuditNode(level int, id int32, delta int64)
}

// node is one intermediate node's dense state: its intrusive links on
// the parent's rotation, its own DRR deficit, and the child Level
// arbitrating the tier below it.
type node struct {
	next, prev int32
	deficit    int64
	child      Level
}

// nodeEntity adapts one intermediate level's node slice to the Entity
// interface, so a parent Level can rotate over it. Pointer-shaped:
// Stack hands out &st.ents[k].
type nodeEntity struct {
	st  *Stack
	lvl int32
}

// Stack is one scheduling unit's hierarchy state: the root Level, the
// per-level node slices, and the Hierarchy it was initialized against.
// The zero value is not ready (Init builds it); a depth-0 Stack is
// ready and flat. Not safe for concurrent use — the caller provides the
// critical section.
type Stack struct {
	h     Hierarchy
	root  Level
	nodes [][]node
	ents  []nodeEntity
}

// Init builds the stack: counts[k] is the (composite) node count of
// intermediate level k, outermost first; an empty counts is the flat
// configuration. All nodes start unlinked with zero deficit.
func (st *Stack) Init(h Hierarchy, counts []int32) {
	st.h = h
	st.nodes = make([][]node, len(counts))
	st.ents = make([]nodeEntity, len(counts))
	for k, n := range counts {
		st.nodes[k] = make([]node, n)
		for i := range st.nodes[k] {
			st.nodes[k][i].next = None
			st.nodes[k][i].prev = None
		}
		st.ents[k] = nodeEntity{st: st, lvl: int32(k)}
	}
}

// Ready reports whether Init has run (a flat stack is ready too).
func (st *Stack) Ready() bool { return st.h != nil }

// Depth returns the number of intermediate levels (0 = flat).
func (st *Stack) Depth() int { return len(st.nodes) }

// Width returns the node count of intermediate level k.
func (st *Stack) Width(level int) int { return len(st.nodes[level]) }

// Root returns the outermost rotation (over level-0 nodes, or leaves
// when flat), for invariant checks.
func (st *Stack) Root() *Level { return &st.root }

// Child returns node id's child Level at level k — the rotation over
// level k+1 nodes, or over leaves when k is the innermost level.
func (st *Stack) Child(level int, id int32) *Level { return &st.nodes[level][id].child }

// NodeLinked reports whether node id at level k is on its parent's
// rotation.
func (st *Stack) NodeLinked(level int, id int32) bool { return st.nodes[level][id].next != None }

// NodeDeficit returns node id's banked DRR byte credit at level k.
func (st *Stack) NodeDeficit(level int, id int32) int64 { return st.nodes[level][id].deficit }

// Ent returns the Entity over level k's nodes, for invariant walks.
func (st *Stack) Ent(level int) Entity { return &st.ents[level] }

// --- Entity over one intermediate level's nodes ---

func (ne *nodeEntity) Next(id int32) int32    { return ne.st.nodes[ne.lvl][id].next }
func (ne *nodeEntity) SetNext(id, next int32) { ne.st.nodes[ne.lvl][id].next = next }
func (ne *nodeEntity) Prev(id int32) int32    { return ne.st.nodes[ne.lvl][id].prev }
func (ne *nodeEntity) SetPrev(id, prev int32) { ne.st.nodes[ne.lvl][id].prev = prev }

func (ne *nodeEntity) Weight(id int32) int64 { return ne.st.h.Weight(int(ne.lvl), id) }

func (ne *nodeEntity) Deficit(id int32) int64 { return ne.st.nodes[ne.lvl][id].deficit }
func (ne *nodeEntity) SetDeficit(id int32, d int64) {
	ne.st.nodes[ne.lvl][id].deficit = d
}

// HeadBytes prices a node for its parent's DRR fit check: the head
// packet of the leaf the node's subtree would serve next, found by
// peeking down the hierarchy. Exact while every inner rotation is
// RR/Prio/WRR; best-effort under inner DRR (the banking loop may
// advance past the peeked member) — accounting stays exact regardless,
// because callers charge intermediate deficits with the bytes actually
// served (Charge), never with this estimate.
func (ne *nodeEntity) HeadBytes(id int32) (int64, bool) {
	st := ne.st
	l := &st.nodes[ne.lvl][id].child
	for k := int(ne.lvl) + 1; k < len(st.nodes); k++ {
		nid, ok := l.Peek(st.h.Params(k), &st.ents[k])
		if !ok {
			return 0, false
		}
		l = &st.nodes[k][nid].child
	}
	leaf, ok := l.Peek(st.h.LeafParams(), st.h.Leaf())
	if !ok {
		return 0, false
	}
	return st.h.Leaf().HeadBytes(leaf)
}

func (ne *nodeEntity) Audit(id int32, delta int64) { ne.st.h.AuditNode(int(ne.lvl), id, delta) }

// --- hierarchy operations ---

// Pick runs the hierarchy top-down and returns the leaf the composed
// disciplines serve next, plus the *leaf-level* DRR byte debit to
// charge if a packet is actually served. Intermediate DRR debits are
// not returned: their fit checks price on peeked estimates, so callers
// charge those levels with the bytes actually served via Charge — the
// charge lands if and only if the packet did. ok is false when the
// stack is empty.
func (st *Stack) Pick() (int32, int64, bool) {
	n := len(st.nodes)
	if n == 0 {
		return st.root.Pick(st.h.LeafParams(), st.h.Leaf())
	}
	id, _, ok := st.root.Pick(st.h.Params(0), &st.ents[0])
	if !ok {
		return None, 0, false
	}
	for k := 1; k < n; k++ {
		id, _, ok = st.nodes[k-1][id].child.Pick(st.h.Params(k), &st.ents[k])
		if !ok {
			return None, 0, false // unreachable: a linked node has descendants
		}
	}
	return st.nodes[n-1][id].child.Pick(st.h.LeafParams(), st.h.Leaf())
}

// Activate links leaf into the hierarchy along path (path[k] is the
// composite node index at level k; empty when flat). The cascade stops
// at the first list that was already non-empty — the node above it is
// already linked.
func (st *Stack) Activate(leaf int32, path []int32) {
	n := len(st.nodes)
	if n == 0 {
		st.root.Activate(st.h.Leaf(), leaf)
		return
	}
	l := &st.nodes[n-1][path[n-1]].child
	l.Activate(st.h.Leaf(), leaf)
	if l.Count() > 1 {
		return
	}
	for k := n - 1; k > 0; k-- {
		l = &st.nodes[k-1][path[k-1]].child
		l.Activate(&st.ents[k], path[k])
		if l.Count() > 1 {
			return
		}
	}
	st.root.Activate(&st.ents[0], path[0])
}

// Deactivate unlinks leaf from the hierarchy along path. Each list a
// removal empties takes its node off the rotation above, with Level's
// Deactivate semantics applying at every level — open visits end with
// their unused credit refunded to the audit, banked positive deficit is
// forfeited, debt survives.
func (st *Stack) Deactivate(leaf int32, path []int32) {
	n := len(st.nodes)
	if n == 0 {
		st.root.Deactivate(st.h.LeafParams(), st.h.Leaf(), leaf)
		return
	}
	l := &st.nodes[n-1][path[n-1]].child
	l.Deactivate(st.h.LeafParams(), st.h.Leaf(), leaf)
	if l.Count() > 0 {
		return
	}
	for k := n - 1; k > 0; k-- {
		l = &st.nodes[k-1][path[k-1]].child
		l.Deactivate(st.h.Params(k), &st.ents[k], path[k])
		if l.Count() > 0 {
			return
		}
	}
	st.root.Deactivate(st.h.Params(0), &st.ents[0], path[0])
}

// Charge debits bytes actually served under path against every
// intermediate DRR level's node deficit. The leaf-level debit is the
// caller's (Pick returned it); packet-granular levels are untouched.
func (st *Stack) Charge(path []int32, bytes int64) {
	for k := range st.nodes {
		if st.h.Params(k).Kind == policy.EgressDRR {
			st.nodes[k][path[k]].deficit -= bytes
		}
	}
}

// Reset ends every open visit without refunds and zeroes every
// intermediate deficit — the discipline-replacement reset (the caller
// resets leaf deficits and audit state wholesale alongside). Membership
// survives: backlogged subtrees stay linked across a discipline change.
func (st *Stack) Reset() {
	st.root.ResetRotation()
	for k := range st.nodes {
		for i := range st.nodes[k] {
			st.nodes[k][i].child.ResetRotation()
			st.nodes[k][i].deficit = 0
		}
	}
}
