package sched

import (
	"testing"
)

// sliceBacklog adapts a slice of queue depths to the backlog callback.
func sliceBacklog(depths []int) func(int) int {
	return func(q int) int { return depths[q] }
}

func drain(t *testing.T, s Scheduler, depths []int) []int {
	t.Helper()
	var order []int
	for i := 0; i < 10000; i++ {
		q, ok := s.Next(sliceBacklog(depths))
		if !ok {
			return order
		}
		if depths[q] <= 0 {
			t.Fatalf("scheduler served empty queue %d", q)
		}
		depths[q]--
		s.Served(q, 64)
		order = append(order, q)
	}
	t.Fatal("scheduler did not drain")
	return nil
}

func TestRoundRobinFairness(t *testing.T) {
	rr, err := NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	order := drain(t, rr, []int{3, 3, 3})
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRoundRobinSkipsEmpty(t *testing.T) {
	rr, _ := NewRoundRobin(4)
	order := drain(t, rr, []int{0, 2, 0, 2})
	for _, q := range order {
		if q == 0 || q == 2 {
			t.Fatalf("served empty queue: %v", order)
		}
	}
}

func TestStrictPriorityOrder(t *testing.T) {
	sp, err := NewStrictPriority(3)
	if err != nil {
		t.Fatal(err)
	}
	order := drain(t, sp, []int{2, 2, 2})
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestStrictPriorityStarvation(t *testing.T) {
	// Strict priority intentionally starves low classes while the high
	// class is backlogged.
	sp, _ := NewStrictPriority(2)
	depths := []int{1000, 1}
	for i := 0; i < 1000; i++ {
		q, ok := sp.Next(sliceBacklog(depths))
		if !ok || q != 0 {
			t.Fatalf("iteration %d: served %d", i, q)
		}
		depths[0]--
	}
	q, ok := sp.Next(sliceBacklog(depths))
	if !ok || q != 1 {
		t.Fatal("low class never served after drain")
	}
}

func TestWRRProportions(t *testing.T) {
	w, err := NewWeightedRoundRobin([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	depths := []int{100000, 100000}
	for i := 0; i < 4000; i++ {
		q, ok := w.Next(sliceBacklog(depths))
		if !ok {
			t.Fatal("backlogged WRR returned empty")
		}
		depths[q]--
		counts[q]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("WRR 3:1 served %v (ratio %.2f)", counts, ratio)
	}
}

func TestWRRSkipsEmptyAndRecovers(t *testing.T) {
	w, _ := NewWeightedRoundRobin([]int{2, 2})
	order := drain(t, w, []int{1, 4})
	total := 0
	for _, q := range order {
		total++
		_ = q
	}
	if total != 5 {
		t.Fatalf("drained %d packets, want 5", total)
	}
}

func TestWRRAllEmpty(t *testing.T) {
	w, _ := NewWeightedRoundRobin([]int{1, 1})
	if _, ok := w.Next(sliceBacklog([]int{0, 0})); ok {
		t.Fatal("empty WRR returned a queue")
	}
}

func TestDRRByteFairness(t *testing.T) {
	// Queue 0 sends 1500-byte packets, queue 1 sends 64-byte packets.
	// With equal quanta DRR should give both roughly equal BYTE shares,
	// i.e. queue 1 sends ~23x more packets.
	d, err := NewDeficitRoundRobin([]int{1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	depths := []int{1 << 20, 1 << 20}
	sizes := []int{1500, 64}
	bytes := [2]int{}
	for i := 0; i < 20000; i++ {
		q, ok := d.NextPacket(sliceBacklog(depths), func(q int) int { return sizes[q] })
		if !ok {
			t.Fatal("backlogged DRR returned empty")
		}
		depths[q]--
		bytes[q] += sizes[q]
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("DRR byte shares %v (ratio %.2f), want ~1", bytes, ratio)
	}
}

func TestDRRDrains(t *testing.T) {
	d, _ := NewDeficitRoundRobin([]int{100, 100})
	depths := []int{3, 2}
	served := 0
	for {
		q, ok := d.NextPacket(sliceBacklog(depths), func(int) int { return 64 })
		if !ok {
			break
		}
		depths[q]--
		served++
		if served > 10 {
			t.Fatal("DRR over-served")
		}
	}
	if served != 5 {
		t.Fatalf("served %d, want 5", served)
	}
}

func TestDRRDefaultNext(t *testing.T) {
	d, _ := NewDeficitRoundRobin([]int{64})
	depths := []int{2}
	q, ok := d.Next(sliceBacklog(depths))
	if !ok || q != 0 {
		t.Fatal("default Next broken")
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewRoundRobin(0); err == nil {
		t.Fatal("RR accepted 0 queues")
	}
	if _, err := NewStrictPriority(-1); err == nil {
		t.Fatal("SP accepted negative queues")
	}
	if _, err := NewWeightedRoundRobin(nil); err == nil {
		t.Fatal("WRR accepted no queues")
	}
	if _, err := NewWeightedRoundRobin([]int{1, 0}); err == nil {
		t.Fatal("WRR accepted zero weight")
	}
	if _, err := NewDeficitRoundRobin([]int{0}); err == nil {
		t.Fatal("DRR accepted zero quantum")
	}
}

func TestQueuesAccessors(t *testing.T) {
	rr, _ := NewRoundRobin(3)
	sp, _ := NewStrictPriority(2)
	w, _ := NewWeightedRoundRobin([]int{1, 2, 3, 4})
	d, _ := NewDeficitRoundRobin([]int{5})
	if rr.Queues() != 3 || sp.Queues() != 2 || w.Queues() != 4 || d.Queues() != 1 {
		t.Fatal("Queues() accessors broken")
	}
}

func BenchmarkWRR(b *testing.B) {
	w, _ := NewWeightedRoundRobin([]int{4, 2, 1, 1})
	depths := []int{1 << 30, 1 << 30, 1 << 30, 1 << 30}
	bl := sliceBacklog(depths)
	for i := 0; i < b.N; i++ {
		q, _ := w.Next(bl)
		depths[q]--
	}
}
