package sched

import (
	"testing"

	"npqm/internal/policy"
)

// slot-backed Entity: the minimal dense storage a Level schedules over.
type testEnt struct {
	next, prev []int32
	weight     []int64
	deficit    []int64
	head       []int64 // head-packet bytes; -1 = no complete packet
	audit      []int64
}

func newEnt(n int) *testEnt {
	e := &testEnt{
		next:    make([]int32, n),
		prev:    make([]int32, n),
		weight:  make([]int64, n),
		deficit: make([]int64, n),
		head:    make([]int64, n),
		audit:   make([]int64, n),
	}
	for i := 0; i < n; i++ {
		e.next[i] = None
		e.prev[i] = None
		e.weight[i] = 1
		e.head[i] = 100
	}
	return e
}

func (e *testEnt) Next(id int32) int32          { return e.next[id] }
func (e *testEnt) SetNext(id, next int32)       { e.next[id] = next }
func (e *testEnt) Prev(id int32) int32          { return e.prev[id] }
func (e *testEnt) SetPrev(id, prev int32)       { e.prev[id] = prev }
func (e *testEnt) Weight(id int32) int64        { return e.weight[id] }
func (e *testEnt) Deficit(id int32) int64       { return e.deficit[id] }
func (e *testEnt) SetDeficit(id int32, d int64) { e.deficit[id] = d }
func (e *testEnt) HeadBytes(id int32) (int64, bool) {
	if e.head[id] < 0 {
		return 0, false
	}
	return e.head[id], true
}
func (e *testEnt) Audit(id int32, delta int64) { e.audit[id] += delta }

func rrParams() Params   { return Params{Kind: policy.EgressRR} }
func prioParams() Params { return Params{Kind: policy.EgressPrio} }
func wrrParams() Params  { return Params{Kind: policy.EgressWRR} }
func drrParams(q int64) Params {
	return Params{Kind: policy.EgressDRR, Quantum: q}
}

func TestLevelRRRotation(t *testing.T) {
	e := newEnt(8)
	var l Level
	for _, id := range []int32{3, 1, 5} {
		l.Activate(e, id)
	}
	if l.Count() != 3 {
		t.Fatalf("count %d, want 3", l.Count())
	}
	// Activation order is rotation order: each new member joins at the
	// tail of the cycle.
	want := []int32{3, 1, 5, 3, 1, 5}
	for i, w := range want {
		id, debit, ok := l.Pick(rrParams(), e)
		if !ok || id != w || debit != 0 {
			t.Fatalf("pick %d = (%d, %d, %v), want (%d, 0, true)", i, id, debit, ok, w)
		}
	}
	// A member activated mid-cycle waits a full rotation like any other.
	l.Activate(e, 7)
	got := []int32{}
	for i := 0; i < 4; i++ {
		id, _, _ := l.Pick(rrParams(), e)
		got = append(got, id)
	}
	if got[3] != 7 {
		t.Fatalf("rotation after mid-cycle activate = %v, want member 7 last", got)
	}
}

func TestLevelDeactivateResetsLinks(t *testing.T) {
	e := newEnt(4)
	var l Level
	for id := int32(0); id < 4; id++ {
		l.Activate(e, id)
	}
	l.Deactivate(rrParams(), e, 2)
	if e.next[2] != None || e.prev[2] != None {
		t.Fatalf("deactivated member keeps links (%d, %d)", e.next[2], e.prev[2])
	}
	seen := map[int32]bool{}
	for i := 0; i < 3; i++ {
		id, _, _ := l.Pick(rrParams(), e)
		seen[id] = true
	}
	if seen[2] || len(seen) != 3 {
		t.Fatalf("rotation after deactivate visits %v", seen)
	}
	for id := int32(0); id < 4; id++ {
		if id != 2 {
			l.Deactivate(rrParams(), e, id)
		}
	}
	if l.Count() != 0 {
		t.Fatalf("count %d after deactivating all, want 0", l.Count())
	}
	if _, _, ok := l.Pick(rrParams(), e); ok {
		t.Fatal("pick succeeded on an empty level")
	}
}

func TestLevelPrioServesMinimum(t *testing.T) {
	e := newEnt(16)
	var l Level
	for _, id := range []int32{9, 4, 12} {
		l.Activate(e, id)
	}
	if id, _, _ := l.Pick(prioParams(), e); id != 4 {
		t.Fatalf("prio pick %d, want 4", id)
	}
	// Activating a lower id retargets the cached minimum O(1).
	l.Activate(e, 2)
	if id, _, _ := l.Pick(prioParams(), e); id != 2 {
		t.Fatalf("prio pick %d after activating 2, want 2", id)
	}
	// Deactivating the minimum invalidates the cache; the rescan must
	// find the next-lowest.
	l.Deactivate(prioParams(), e, 2)
	if id, _, _ := l.Pick(prioParams(), e); id != 4 {
		t.Fatalf("prio pick %d after draining the minimum, want 4", id)
	}
}

func TestLevelWRRWeights(t *testing.T) {
	e := newEnt(4)
	e.weight[1] = 3
	var l Level
	l.Activate(e, 1)
	l.Activate(e, 2)
	counts := map[int32]int{}
	for i := 0; i < 8; i++ { // two full cycles of 3+1
		id, _, _ := l.Pick(wrrParams(), e)
		counts[id]++
	}
	if counts[1] != 6 || counts[2] != 2 {
		t.Fatalf("WRR served %v over two cycles, want 3:1", counts)
	}
	// Audit accumulated the granted visit packets exactly.
	if e.audit[1] != 6 || e.audit[2] != 2 {
		t.Fatalf("WRR audit %v/%v, want 6/2", e.audit[1], e.audit[2])
	}
}

func TestLevelWRRMidVisitDeactivateRefundsCredit(t *testing.T) {
	e := newEnt(4)
	e.weight[1] = 4
	var l Level
	l.Activate(e, 1)
	l.Activate(e, 2)
	if id, _, _ := l.Pick(wrrParams(), e); id != 1 {
		t.Fatal("first pick should open member 1's visit")
	}
	// Member 1 drains after one of its four packets: the three unused
	// credits must be refunded from the audit and the next pick moves on.
	l.Deactivate(wrrParams(), e, 1)
	if e.audit[1] != 1 {
		t.Fatalf("audit %d after mid-visit drain, want 1 (refund)", e.audit[1])
	}
	if l.Visiting() {
		t.Fatal("visit survived its member's deactivation")
	}
	if id, _, _ := l.Pick(wrrParams(), e); id != 2 {
		t.Fatal("rotation did not move on after mid-visit drain")
	}
}

func TestLevelDRRByteFairness(t *testing.T) {
	e := newEnt(4)
	e.weight[2] = 2
	e.head[1] = 300
	e.head[2] = 300
	var l Level
	l.Activate(e, 1)
	l.Activate(e, 2)
	served := map[int32]int64{}
	for i := 0; i < 90; i++ {
		id, debit, ok := l.Pick(drrParams(100), e)
		if !ok {
			t.Fatal("pick failed with members active")
		}
		if debit != 300 {
			t.Fatalf("debit %d, want the 300-byte head", debit)
		}
		served[id] += debit
		e.SetDeficit(id, e.Deficit(id)-debit) // the caller's charge
	}
	// Weight 2 earns twice the bytes of weight 1 (±1 packet of slack).
	ratio := float64(served[2]) / float64(served[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("DRR byte ratio %.2f (%v), want ~2.0", ratio, served)
	}
	// Conservation: served ≡ granted − outstanding deficit, per member.
	for _, id := range []int32{1, 2} {
		if want := e.audit[id] - e.deficit[id]; served[id] != want {
			t.Fatalf("member %d served %d, granted−outstanding = %d", id, served[id], want)
		}
	}
}

func TestLevelDRRFallbackBound(t *testing.T) {
	e := newEnt(2)
	e.head[0] = 1 << 40 // unreachable by any sane quantum banking
	var l Level
	l.Activate(e, 0)
	id, debit, ok := l.Pick(drrParams(1), e)
	if !ok || id != 0 {
		t.Fatalf("work conservation violated: pick = (%d, %v)", id, ok)
	}
	// The fallback still prices the packet so the caller's charge drives
	// the deficit negative instead of serving for free.
	if debit != 1<<40 {
		t.Fatalf("fallback debit %d, want the head bytes", debit)
	}
}

func TestLevelPeekDoesNotAdvance(t *testing.T) {
	e := newEnt(4)
	var l Level
	l.Activate(e, 1)
	l.Activate(e, 2)
	for i := 0; i < 3; i++ {
		p, ok := l.Peek(rrParams(), e)
		if !ok || p != 1 {
			t.Fatalf("peek %d = (%d, %v), want (1, true)", i, p, ok)
		}
	}
	if id, _, _ := l.Pick(rrParams(), e); id != 1 {
		t.Fatal("pick after peek should serve the peeked member")
	}
}
