package sched

import (
	"fmt"
	"testing"

	"npqm/internal/xrand"
)

// TestSchedulersWorkConserving is the property test behind the policy
// layer's egress guarantee: a scheduler must never report "all empty"
// while any queue has backlog, and must never pick an empty queue. Each
// trial builds random backlogs, then serves packet by packet until the
// system drains; any idle verdict with work outstanding fails.
func TestSchedulersWorkConserving(t *testing.T) {
	rng := xrand.New(20260729)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		weights := make([]int, n)
		for q := range weights {
			weights[q] = 1 + rng.Intn(5)
		}
		rr, err := NewRoundRobin(n)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewStrictPriority(n)
		if err != nil {
			t.Fatal(err)
		}
		wrr, err := NewWeightedRoundRobin(weights)
		if err != nil {
			t.Fatal(err)
		}
		schedulers := []struct {
			name string
			s    Scheduler
		}{
			{"rr", rr}, {"prio", sp}, {"wrr", wrr},
		}
		for _, sc := range schedulers {
			sc := sc
			t.Run(fmt.Sprintf("trial%d/%s", trial, sc.name), func(t *testing.T) {
				backlog := make([]int, n)
				total := 0
				for q := range backlog {
					backlog[q] = rng.Intn(6) // zeros included
					total += backlog[q]
				}
				look := func(q int) int { return backlog[q] }
				for total > 0 {
					q, ok := sc.s.Next(look)
					if !ok {
						t.Fatalf("scheduler idle with %d packets backlogged (%v)", total, backlog)
					}
					if backlog[q] <= 0 {
						t.Fatalf("scheduler picked empty queue %d (%v)", q, backlog)
					}
					backlog[q]--
					total--
					sc.s.Served(q, 64)
				}
				if _, ok := sc.s.Next(look); ok {
					t.Fatal("scheduler claims work on a drained system")
				}
			})
		}
	}
}

// TestDRRWorkConserving drives DeficitRoundRobin through NextPacket with
// random variable-length packets: the deficit mechanism must still serve
// some queue whenever backlog exists, for any quantum/packet-size mix.
func TestDRRWorkConserving(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		quanta := make([]int, n)
		for q := range quanta {
			quanta[q] = 1 + rng.Intn(1500)
		}
		drr, err := NewDeficitRoundRobin(quanta)
		if err != nil {
			t.Fatal(err)
		}
		// Per-queue FIFO of packet lengths.
		pkts := make([][]int, n)
		total := 0
		for q := range pkts {
			for i := rng.Intn(5); i > 0; i-- {
				pkts[q] = append(pkts[q], 64+rng.Intn(1455))
				total++
			}
		}
		backlog := func(q int) int { return len(pkts[q]) }
		head := func(q int) int {
			if len(pkts[q]) == 0 {
				return 0
			}
			return pkts[q][0]
		}
		for total > 0 {
			q, ok := drr.NextPacket(backlog, head)
			if !ok {
				t.Fatalf("trial %d: DRR idle with %d packets backlogged", trial, total)
			}
			if len(pkts[q]) == 0 {
				t.Fatalf("trial %d: DRR picked empty queue %d", trial, q)
			}
			drr.Served(q, pkts[q][0])
			pkts[q] = pkts[q][1:]
			total--
		}
		if _, ok := drr.NextPacket(backlog, head); ok {
			t.Fatalf("trial %d: DRR claims work on a drained system", trial)
		}
	}
}
