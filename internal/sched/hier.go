package sched

// The hierarchical discipline engine. The legacy Scheduler interface in
// sched.go polls backlog(q) over a dense queue index — fine for an
// 8-class example, hopeless for a (shard, port, class, flow) hierarchy
// with a million flows. Level is the index-based reformulation the
// engine's two-level scheduler runs at both hierarchy levels: members
// live on an intrusive circular doubly-linked list whose link words the
// caller stores wherever its dense state lives (a flow table, a class
// array), so activating, deactivating and picking are O(1) with no
// per-member allocation and no maps. One implementation serves the
// class level and the flow level — the disciplines cannot drift apart.
//
// A Level is pure rotation state (cursor, visit credit, priority-min
// cache); everything per-member — links, weight, DRR deficit, the head
// packet length, and the test-only audit hook — is reached through the
// Entity interface. Discipline parameters travel in Params per call
// rather than per Level, so a configuration change updates one place
// even when thousands of Levels exist.
//
// Audit semantics (test builds enable the hook): Audit accumulates the
// net service entitlement granted to a member — quantum bytes for DRR,
// visit packets for WRR — with forfeited credit subtracted back out, so
// a conservation property can hold every level to
// served == granted − outstanding, exactly.

import "npqm/internal/policy"

// None is the nil member index: a member whose next link is None is not
// on any Level's list. Callers initialize their link storage to None.
const None int32 = -1

// minUnknown marks the priority-min cache invalid (the cached minimum
// was deactivated); the next priority pick rescans the list.
const minUnknown int32 = -2

// Entity is the dense per-member state a Level schedules over. Members
// are small non-negative integers indexing the caller's storage; the
// Level never allocates per member. Implementations are expected to be
// pointer-shaped structs so interface conversion does not allocate.
type Entity interface {
	// Next/Prev and their setters are the intrusive list links.
	Next(id int32) int32
	SetNext(id, next int32)
	Prev(id int32) int32
	SetPrev(id, prev int32)
	// Weight is the member's scheduling weight (≥ 1): packets per visit
	// for WRR, quantum multiplier for DRR.
	Weight(id int32) int64
	// Deficit is the member's banked DRR byte credit (may be negative:
	// debt from an overdraw).
	Deficit(id int32) int64
	SetDeficit(id int32, d int64)
	// HeadBytes reports the byte length of the member's head packet for
	// the DRR fit check; ok is false when no complete packet is
	// available (the caller's dequeue will fail and deactivate it).
	HeadBytes(id int32) (int64, bool)
	// Audit accumulates granted/forfeited service entitlement for the
	// conservation property; a no-op outside tests.
	Audit(id int32, delta int64)
}

// Params carries the discipline configuration into each call, so the
// Level itself stays parameter-free and a reconfiguration touches no
// per-Level state beyond ResetRotation.
type Params struct {
	Kind policy.EgressKind
	// Quantum is the DRR byte quantum earned per weight unit per visit.
	Quantum int64
}

// Level is one scheduling level's rotation state over an intrusive
// member list: RR cursor, WRR/DRR visit credit, and the strict-priority
// minimum cache. The zero value is an empty level. Not safe for
// concurrent use — the caller provides the critical section (in the
// engine, the owning shard's).
type Level struct {
	cursor   int32 // next member to consider; a live member while count > 0
	min      int32 // lowest member id, or minUnknown (priority cache)
	count    int32
	visiting bool  // cursor is mid-visit (WRR packets / DRR grant taken)
	credit   int64 // WRR: packets left in the open visit
}

// Count returns the number of active members.
func (l *Level) Count() int { return int(l.count) }

// Cursor returns the rotation cursor (for invariant checks); only
// meaningful while Count > 0.
func (l *Level) Cursor() int32 { return l.cursor }

// Visiting reports whether a WRR/DRR visit is open on the cursor.
func (l *Level) Visiting() bool { return l.visiting }

// Credit returns the packets left in the open WRR visit.
func (l *Level) Credit() int64 { return l.credit }

// Activate links id into the rotation, just before the cursor — the
// tail of the current cycle, so a newly backlogged member waits one
// full rotation like any other. The caller guarantees id is not
// currently a member.
func (l *Level) Activate(e Entity, id int32) {
	if l.count == 0 {
		e.SetNext(id, id)
		e.SetPrev(id, id)
		l.cursor = id
		l.min = id
		l.count = 1
		return
	}
	tail := e.Prev(l.cursor)
	e.SetNext(id, l.cursor)
	e.SetPrev(id, tail)
	e.SetNext(tail, id)
	e.SetPrev(l.cursor, id)
	if id < l.min {
		// A minUnknown (-2) cache stays unknown: the compare fails.
		l.min = id
	}
	l.count++
}

// Deactivate unlinks id from the rotation. A member that leaves
// mid-visit ends the visit (refunding unused WRR credit to the audit)
// and forfeits any banked positive deficit — but keeps its debt: a
// member cannot shed what it owes by going briefly idle. The caller
// guarantees id is currently a member; its links are reset to None.
func (l *Level) Deactivate(p Params, e Entity, id int32) {
	if l.visiting && l.cursor == id {
		// The member emptied mid-visit: end the visit now. Leaving it
		// open would let a member that drained and refilled before the
		// next pick resume its old credit and burst past its weight.
		if p.Kind == policy.EgressWRR {
			e.Audit(id, -l.credit)
		}
		l.visiting = false
		l.credit = 0
	}
	if d := e.Deficit(id); d > 0 {
		// Forfeit banked DRR credit, whichever dequeue path emptied the
		// member — otherwise a drained-and-refilled member returns with
		// stale credit and bursts ahead of its weight.
		e.Audit(id, -d)
		e.SetDeficit(id, 0)
	}
	if l.count == 1 {
		l.count = 0
	} else {
		next, prev := e.Next(id), e.Prev(id)
		e.SetNext(prev, next)
		e.SetPrev(next, prev)
		if l.cursor == id {
			l.cursor = next
		}
		if l.min == id {
			l.min = minUnknown
		}
		l.count--
	}
	e.SetNext(id, None)
	e.SetPrev(id, None)
}

// ResetRotation ends any open visit without refunds; used when the
// discipline itself is being replaced (the caller resets deficits and
// audit state wholesale alongside). Membership survives — backlogged
// members stay backlogged across a discipline change.
func (l *Level) ResetRotation() {
	l.visiting = false
	l.credit = 0
}

// Pick returns the member the discipline serves next, plus the DRR byte
// debit to charge if a packet is actually served (0 for the
// packet-granular disciplines). ok is false when the level is empty.
// The level is work-conserving: whenever a member is active, one is
// returned.
func (l *Level) Pick(p Params, e Entity) (int32, int64, bool) {
	if l.count == 0 {
		return None, 0, false
	}
	switch p.Kind {
	case policy.EgressPrio:
		return l.pickPrio(e), 0, true
	case policy.EgressWRR:
		return l.pickWRR(e), 0, true
	case policy.EgressDRR:
		id, debit := l.pickDRR(p, e)
		return id, debit, true
	default:
		id := l.cursor
		l.cursor = e.Next(id)
		return id, 0, true
	}
}

// Peek returns the member Pick would serve next without advancing any
// rotation state. Exact for RR, Prio and WRR; for DRR it is the current
// visit candidate — a best-effort answer, since the deficit banking loop
// may advance past it (callers using Peek to price a pick must charge
// actual served bytes, which keeps accounting exact regardless).
func (l *Level) Peek(p Params, e Entity) (int32, bool) {
	if l.count == 0 {
		return None, false
	}
	if p.Kind == policy.EgressPrio {
		// pickPrio only refills the min cache — semantically const.
		return l.pickPrio(e), true
	}
	return l.cursor, true
}

// pickPrio serves the lowest-numbered member. The minimum is cached and
// maintained O(1) by Activate; deactivating the minimum invalidates the
// cache and the next pick rescans — O(count) once per drained minimum,
// O(1) while the highest-priority member stays busy (the common case).
func (l *Level) pickPrio(e Entity) int32 {
	if l.min == minUnknown {
		m := l.cursor
		for id := e.Next(l.cursor); id != l.cursor; id = e.Next(id) {
			if id < m {
				m = id
			}
		}
		l.min = m
	}
	return l.min
}

// pickWRR serves the cursor Weight packets per visit.
func (l *Level) pickWRR(e Entity) int32 {
	if l.visiting {
		id := l.cursor
		l.credit--
		if l.credit == 0 {
			l.visiting = false
			l.cursor = e.Next(id)
		}
		return id
	}
	id := l.cursor
	w := e.Weight(id)
	e.Audit(id, w)
	if w <= 1 {
		l.cursor = e.Next(id)
		return id
	}
	l.visiting = true
	l.credit = w - 1
	return id
}

// startVisit opens a DRR visit on id: the member earns weight×quantum
// bytes of deficit.
func (l *Level) startVisit(p Params, e Entity, id int32) {
	l.cursor = id
	l.visiting = true
	grant := e.Weight(id) * p.Quantum
	e.SetDeficit(id, e.Deficit(id)+grant)
	e.Audit(id, grant)
}

// pickDRR implements deficit round-robin: each visit a member earns
// weight×quantum bytes of deficit and may send head packets its deficit
// covers; the served packet's bytes are charged by the caller through
// the returned debit, so the charge lands if and only if the packet was
// actually served. The banking loop is bounded: every rotation grants
// at least one quantum to every member, so any head packet is reachable
// within maxPacket/quantum rotations; if a pathological quantum/packet
// ratio exhausts the bound, the candidate is served anyway (work
// conservation) — but still charged, driving its deficit negative
// instead of transmitting for free.
func (l *Level) pickDRR(p Params, e Entity) (int32, int64) {
	if !l.visiting {
		l.startVisit(p, e, l.cursor)
	}
	maxIter := int(l.count)*2048 + 8
	for iter := 0; iter < maxIter; iter++ {
		id := l.cursor
		bytes, ok := e.HeadBytes(id)
		if !ok {
			// No complete packet (raw-segment misuse): serve it debit-free;
			// the caller's dequeue fails and deactivates the member.
			return id, 0
		}
		if bytes <= e.Deficit(id) {
			return id, bytes
		}
		// Not enough deficit: bank it and move the visit on.
		l.startVisit(p, e, e.Next(id))
	}
	id := l.cursor
	bytes, ok := e.HeadBytes(id)
	if !ok {
		return id, 0
	}
	return id, bytes
}
