// Package sim provides a small deterministic discrete-event simulation kernel
// used by the timed hardware models (MMS, DDR under load, IXP microengines).
//
// Two styles of model coexist in this repository:
//
//   - slot-stepped models (internal/ddr) that advance one fixed-length access
//     cycle at a time, for which a plain counter suffices, and
//   - event-driven models (internal/core's load simulation) that schedule
//     irregular future events; these use the Engine in this package.
//
// Events scheduled for the same time fire in the order they were scheduled
// (FIFO tie-breaking via a sequence number), which keeps every run
// reproducible.
package sim

import "container/heap"

// Time is simulation time in clock cycles of the component's native clock.
// Models that need sub-cycle resolution scale up (e.g. tenths of cycles).
type Time uint64

// Event is a callback scheduled to run at a given time.
type Event func(now Time)

type scheduled struct {
	at  Time
	seq uint64
	fn  Event
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine is a deterministic event-driven simulator.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would silently corrupt causality in a hardware model.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, scheduled{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn Event) {
	e.At(e.now+delay, fn)
}

// Step fires the single earliest pending event and advances time to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(scheduled)
	e.now = ev.at
	ev.fn(e.now)
	return true
}

// RunUntil fires events until the queue is empty or the next event is after
// deadline. Time never advances past the last fired event.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run drains the event queue completely. Models with self-sustaining event
// chains (e.g. generators that always reschedule) must use RunUntil instead.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Ticker invokes fn every period cycles starting at start, until fn returns
// false. It is a convenience for clocked blocks inside an event-driven model.
func (e *Engine) Ticker(start, period Time, fn func(now Time) bool) {
	if period == 0 {
		panic("sim: Ticker with zero period")
	}
	var tick Event
	tick = func(now Time) {
		if fn(now) {
			e.At(now+period, tick)
		}
	}
	e.At(start, tick)
}
