package sim

import (
	"testing"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("zero Engine not clean")
	}
	fired := false
	e.After(5, func(now Time) { fired = true })
	e.Run()
	if !fired || e.Now() != 5 {
		t.Fatalf("fired=%v now=%d", fired, e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, func(Time) { order = append(order, 2) })
	e.At(5, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	var e Engine
	var times []Time
	e.At(1, func(now Time) {
		times = append(times, now)
		e.After(4, func(now Time) { times = append(times, now) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 5 {
		t.Fatalf("times = %v", times)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(3, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i*10, func(Time) { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestRunUntilAdvancesIdleTime(t *testing.T) {
	var e Engine
	e.RunUntil(123)
	if e.Now() != 123 {
		t.Fatalf("now = %d, want 123", e.Now())
	}
}

func TestTicker(t *testing.T) {
	var e Engine
	var ticks []Time
	e.Ticker(2, 3, func(now Time) bool {
		ticks = append(ticks, now)
		return len(ticks) < 4
	})
	e.Run()
	want := []Time{2, 5, 8, 11}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	e.Ticker(0, 0, func(Time) bool { return false })
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []Time {
		var e Engine
		var log []Time
		// Interleaved chains with equal timestamps.
		for c := 0; c < 4; c++ {
			e.Ticker(Time(c), 2, func(now Time) bool {
				log = append(log, now)
				return now < 40
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func BenchmarkEngineChurn(b *testing.B) {
	var e Engine
	e.Ticker(0, 1, func(now Time) bool { return now < Time(b.N) })
	e.Run()
}
