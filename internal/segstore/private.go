package segstore

import "fmt"

// Private is a single-owner segment pool with a FIFO free list threaded
// through the slab's Next array — allocate from the head, return at the
// tail — exactly as the seed queue manager kept it. FIFO order matters to
// the timed models: it cycles segment reuse through the whole pool, which
// stripes the data memory across DDR banks instead of hammering the most
// recently freed segment. Not safe for concurrent use.
type Private struct {
	view  View
	nseg  int
	head  int32
	tail  int32
	count int32
	lent  int32
}

// NewPrivate builds a private pool with every segment on the free list in
// ascending order.
func NewPrivate(cfg Config) (*Private, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Private{view: newView(cfg), nseg: cfg.NumSegments}
	for i := 0; i < cfg.NumSegments-1; i++ {
		p.view.Next[i] = int32(i + 1)
	}
	p.view.Next[cfg.NumSegments-1] = nilSeg
	p.head = 0
	p.tail = int32(cfg.NumSegments - 1)
	p.count = int32(cfg.NumSegments)
	return p, nil
}

// View returns the private slab arrays.
func (p *Private) View() View { return p.view }

// NumSegments returns the pool size.
func (p *Private) NumSegments() int { return p.nseg }

// FreeSegments returns the free-list population.
func (p *Private) FreeSegments() int { return int(p.count) }

// Avail equals FreeSegments: a private pool has no unreachable segments.
func (p *Private) Avail() int { return int(p.count) }

// Shared reports that this pool has a single owner.
func (p *Private) Shared() bool { return false }

// Alloc pops the free-list head ("Dequeue Free List" in the paper's
// operation breakdown).
func (p *Private) Alloc() (int32, bool) {
	if p.head == nilSeg {
		return 0, false
	}
	s := p.head
	p.head = p.view.Next[s]
	if p.head == nilSeg {
		p.tail = nilSeg
	}
	p.count--
	return s, true
}

// AllocN pops up to len(dst) segments off the free-list head in one walk,
// preserving FIFO reuse order: a run comes out in exactly the order repeated
// Alloc calls would have produced.
func (p *Private) AllocN(dst []int32) int {
	s := p.head
	got := 0
	for got < len(dst) && s != nilSeg {
		dst[got] = s
		got++
		s = p.view.Next[s]
	}
	p.head = s
	if s == nilSeg {
		p.tail = nilSeg
	}
	p.count -= int32(got)
	return got
}

// Free appends the segment at the free-list tail ("Enqueue Free List").
func (p *Private) Free(s int32) {
	p.view.Next[s] = nilSeg
	if p.tail == nilSeg {
		p.head = s
	} else {
		p.view.Next[p.tail] = s
	}
	p.tail = s
	p.count++
}

// FreeN appends a pre-linked chain of n segments (head→…→tail through
// View.Next) at the free-list tail in O(1). The chain joins the FIFO in its
// own link order, so reuse still cycles through the whole pool — the
// property the timed models' DDR bank-striping tables depend on.
func (p *Private) FreeN(head, tail, n int32) {
	if n <= 0 {
		return
	}
	p.view.Next[tail] = nilSeg
	if p.tail == nilSeg {
		p.head = head
	} else {
		p.view.Next[p.tail] = head
	}
	p.tail = tail
	p.count += n
}

// Lend adjusts the lent population.
func (p *Private) Lend(n int32) { p.lent += n }

// ReturnLent returns a lent chain to the FIFO free list. A private pool is
// single-owner by contract, so unlike the shared store this is not safe
// from arbitrary goroutines — but a private Manager has no concurrent
// consumers to begin with.
func (p *Private) ReturnLent(head, tail, n int32) {
	if n <= 0 {
		return
	}
	p.FreeN(head, tail, n)
	p.lent -= n
}

// Lent returns the lent population.
func (p *Private) Lent() int { return int(p.lent) }

// Flush is a no-op: there is no shared pool to hand segments back to.
func (p *Private) Flush() {}

// Publish is a no-op: a private pool has no concurrent readers.
func (p *Private) Publish() {}

// CheckInvariants walks the free list, verifying it is acyclic, correctly
// counted, every member is in StateFree, and the tail pointer matches the
// last element.
func (p *Private) CheckInvariants() error {
	count := int32(0)
	last := nilSeg
	seen := make([]bool, p.nseg)
	for s := p.head; s != nilSeg; s = p.view.Next[s] {
		if s < 0 || int(s) >= p.nseg {
			return errChain("free list", 0, s)
		}
		if seen[s] {
			return fmt.Errorf("segstore: free list cycle at segment %d", s)
		}
		seen[s] = true
		if p.view.State[s] != StateFree {
			return errState("free list", s, p.view.State[s])
		}
		count++
		last = s
	}
	if count != p.count {
		return errCount("free list", int(count), int(p.count))
	}
	if p.tail != last {
		return fmt.Errorf("segstore: free tail pointer %d != last free element %d", p.tail, last)
	}
	if (p.head == nilSeg) != (p.tail == nilSeg) {
		return fmt.Errorf("segstore: free head/tail nil mismatch")
	}
	stateLent := int32(0)
	for _, st := range p.view.State {
		if st == StateLent {
			stateLent++
		}
	}
	if stateLent != p.lent {
		return fmt.Errorf("segstore: %d segments in StateLent, lent counter says %d", stateLent, p.lent)
	}
	return nil
}

func errChain(where string, i int, s int32) error {
	return fmt.Errorf("segstore: %s %d chain broken at segment %d", where, i, s)
}

func errDup(where string, s int32) error {
	return fmt.Errorf("segstore: segment %d appears twice in %s", s, where)
}

func errState(where string, s int32, state uint8) error {
	return fmt.Errorf("segstore: %s holds segment %d in state %d", where, s, state)
}

func errCount(where string, walked, counter int) error {
	return fmt.Errorf("segstore: %s holds %d segments, counter says %d", where, walked, counter)
}
