package segstore

import "testing"

// Tests for the bulk alloc/free path: AllocN runs carved across magazine
// boundaries, short returns on a dry pool, FreeN spilling whole magazines
// back to the depot, and FIFO preservation on the private pool.

// relink rebuilds the chain links for a run the way the queue layer does
// before handing it back, returning head and tail.
func relink(next []int32, run []int32) (head, tail int32) {
	for i := 0; i < len(run)-1; i++ {
		next[run[i]] = run[i+1]
	}
	return run[0], run[len(run)-1]
}

func TestCacheAllocNShortOnDryPool(t *testing.T) {
	const n = 40
	st, err := New(Config{NumSegments: n, MagazineSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := st.NewCache()
	dst := make([]int32, 64)
	got := c.AllocN(dst)
	if got != n {
		t.Fatalf("AllocN on a %d-segment pool delivered %d, want the whole pool", n, got)
	}
	seen := make([]bool, n)
	for _, s := range dst[:got] {
		if s < 0 || int(s) >= n || seen[s] {
			t.Fatalf("AllocN delivered invalid or duplicate segment %d", s)
		}
		seen[s] = true
	}
	if st.Free() != 0 {
		t.Fatalf("Free = %d after draining the pool, want 0", st.Free())
	}
	if extra := c.AllocN(dst[:4]); extra != 0 {
		t.Fatalf("AllocN on a dry pool delivered %d segments", extra)
	}
	head, tail := relink(c.View().Next, dst[:got])
	c.FreeN(head, tail, int32(got))
	c.Publish()
	if st.Free() != n {
		t.Fatalf("Free = %d after FreeN, want %d", st.Free(), n)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A FreeN longer than two magazines must carve nominal-size magazines off
// the front and push them to the depot, leaving the active magazine below
// the spill threshold and the pool count exact.
func TestCacheFreeNSpillsAcrossMagazines(t *testing.T) {
	const (
		n   = 64
		mag = 8
	)
	st, err := New(Config{NumSegments: n, MagazineSize: mag})
	if err != nil {
		t.Fatal(err)
	}
	c := st.NewCache()
	run := make([]int32, 33) // 4 whole magazines plus one
	if got := c.AllocN(run); got != len(run) {
		t.Fatalf("AllocN = %d, want %d", got, len(run))
	}
	c.Publish()
	head, tail := relink(c.View().Next, run)
	c.FreeN(head, tail, int32(len(run)))
	c.Publish()
	if st.Free() != n {
		t.Fatalf("Free = %d after bulk free, want %d", st.Free(), n)
	}
	// The spill loop must have stopped below two magazines' worth.
	if held := c.count.Load(); held >= 2*mag {
		t.Fatalf("cache still holds %d segments, spill threshold is %d", held, 2*mag)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spilled magazines must be allocatable again — drain the whole pool.
	all := make([]int32, n)
	if got := c.AllocN(all); got != n {
		t.Fatalf("re-AllocN = %d, want %d", got, n)
	}
	head, tail = relink(c.View().Next, all)
	c.FreeN(head, tail, int32(n))
	c.Publish()
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Randomized alloc-run/free-run churn: a steady mix of run sizes above and
// below the magazine size must conserve the pool exactly.
func TestCacheBulkChurnConserves(t *testing.T) {
	const n = 128
	st, err := New(Config{NumSegments: n, MagazineSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := st.NewCache()
	var held [][]int32
	heldSegs := 0
	rand := uint32(1)
	for i := 0; i < 5000; i++ {
		rand = rand*1664525 + 1013904223
		if rand&1 == 0 || heldSegs == n {
			if len(held) == 0 {
				continue
			}
			run := held[len(held)-1]
			held = held[:len(held)-1]
			head, tail := relink(c.View().Next, run)
			c.FreeN(head, tail, int32(len(run)))
			heldSegs -= len(run)
		} else {
			want := 1 + int(rand>>8)%24
			run := make([]int32, want)
			got := c.AllocN(run)
			if free := n - heldSegs; got != min(want, free) {
				t.Fatalf("iter %d: AllocN(%d) = %d with %d free", i, want, got, free)
			}
			if got > 0 {
				held = append(held, run[:got])
				heldSegs += got
			}
		}
		c.Publish()
		if st.Free() != n-heldSegs {
			t.Fatalf("iter %d: Free = %d, want %d", i, st.Free(), n-heldSegs)
		}
	}
	for _, run := range held {
		head, tail := relink(c.View().Next, run)
		c.FreeN(head, tail, int32(len(run)))
	}
	c.Publish()
	if st.Free() != n {
		t.Fatalf("Free = %d after returning everything, want %d", st.Free(), n)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Private pools promise FIFO reuse (the DDR bank-striping property); the
// bulk entry points must preserve it exactly.
func TestPrivateBulkFIFO(t *testing.T) {
	const n = 16
	p, err := NewPrivate(Config{NumSegments: n})
	if err != nil {
		t.Fatal(err)
	}
	run := make([]int32, 10)
	if got := p.AllocN(run); got != len(run) {
		t.Fatalf("AllocN = %d, want %d", got, len(run))
	}
	for i, s := range run {
		if s != int32(i) {
			t.Fatalf("run[%d] = %d, want FIFO order", i, s)
		}
	}
	head, tail := relink(p.View().Next, run)
	p.FreeN(head, tail, int32(len(run)))
	// The free list is now 10..15 then the returned 0..9.
	for want := int32(10); want < 16; want++ {
		if s, ok := p.Alloc(); !ok || s != want {
			t.Fatalf("Alloc = (%d, %v), want (%d, true)", s, ok, want)
		}
	}
	got := make([]int32, 10)
	if k := p.AllocN(got); k != 10 {
		t.Fatalf("AllocN = %d, want 10", k)
	}
	for i, s := range got {
		if s != int32(i) {
			t.Fatalf("recycled run[%d] = %d, want %d", i, s, i)
		}
	}
	// Short return drains to exactly nothing and the pool stays coherent.
	if p.FreeSegments() != 0 {
		t.Fatalf("FreeSegments = %d, want 0", p.FreeSegments())
	}
	if k := p.AllocN(make([]int32, 4)); k != 0 {
		t.Fatalf("AllocN on empty pool = %d", k)
	}
	for s := int32(0); s < n; s++ {
		p.Free(s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
