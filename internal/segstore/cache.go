package segstore

import "sync/atomic"

// cachePad separates the owner-hot magazine words from the cross-thread
// count mirror, and both from neighbouring heap objects (small allocations
// share cache lines within a span). 128 bytes covers the adjacent-line
// prefetcher pair; layout_test.go pins the distances.
const cachePad = 128

// Cache is a per-owner allocation front end over a shared Store: two
// magazines (an active one and a spare) refilled from and flushed to the
// depot a whole magazine at a time. A Cache is single-owner — the engine
// guards each shard's cache with the shard lock — so magazine manipulation
// is plain field access; only the population mirror is atomic, for
// Store.Free aggregation by other threads.
type Cache struct {
	st  *Store
	mag [2]magazine // [0] is the active magazine

	// deferred suppresses the per-operation Publish entirely — the
	// single-writer fast path. An owner that is the only goroutine touching
	// its shard (the engine's ring-datapath worker) and whose pool-wide
	// occupancy nobody reads per-operation (no admission policy configured)
	// sets it, dropping the one atomic store per queue op; observation paths
	// call ForcePublish before reading. Owner-only plain field.
	deferred bool

	_ [cachePad]byte // owner-hot words above; cross-thread mirror below

	// count mirrors mag[0].n + mag[1].n for lock-free readers. The owner
	// refreshes it with Publish — once per queue operation, not per
	// segment, keeping the per-segment path free of atomics — and at
	// magazine transfers to the depot (so a segment is never counted in a
	// cache and the depot at once). Between publishes the mirror can lag
	// low, which keeps concurrent policy reads conservative.
	count atomic.Int32

	_ [cachePad]byte // keep the next heap neighbour off the mirror's line
}

type magazine struct {
	head int32 // top segment, chained through View.Next
	n    int32
}

// NewCache registers and returns a new cache on the store.
func (st *Store) NewCache() *Cache {
	c := &Cache{st: st}
	c.mag[0].head, c.mag[1].head = nilSeg, nilSeg
	st.mu.Lock()
	old := *st.caches.Load()
	list := make([]*Cache, len(old)+1)
	copy(list, old)
	list[len(old)] = c
	st.caches.Store(&list)
	st.mu.Unlock()
	return c
}

// View returns the shared slab arrays.
func (c *Cache) View() View { return c.st.view }

// NumSegments returns the shared pool size.
func (c *Cache) NumSegments() int { return c.st.nseg }

// FreeSegments returns the pool-wide free population (depot plus every
// cache) — the occupancy signal shared-buffer policies consult.
func (c *Cache) FreeSegments() int { return c.st.Free() }

// Avail returns the segments this owner can actually allocate right now:
// its own magazines plus the depot. Segments cached by other owners are
// free pool-wide but unreachable until those owners flush.
func (c *Cache) Avail() int {
	return int(c.mag[0].n+c.mag[1].n) + int(c.st.depotFree.Load())
}

// Shared reports that other caches draw from the same pool.
func (c *Cache) Shared() bool { return true }

// Lend adjusts the shared pool's lent population (owner context).
func (c *Cache) Lend(n int32) { c.st.Lend(n) }

// ReturnLent hands a lent chain straight to the shared depot — safe from
// any goroutine, bypassing this single-owner cache entirely.
func (c *Cache) ReturnLent(head, tail, n int32) { c.st.ReturnLent(head, tail, n) }

// Lent returns the pool-wide lent population.
func (c *Cache) Lent() int { return c.st.Lent() }

// Alloc takes one segment from the active magazine, swapping in the spare
// or pulling a fresh magazine from the depot (one CAS) when it runs dry.
func (c *Cache) Alloc() (int32, bool) {
	m := &c.mag[0]
	if m.n == 0 {
		if c.mag[1].n > 0 {
			c.mag[0], c.mag[1] = c.mag[1], c.mag[0]
		} else {
			head, n, ok := c.st.popMagazine()
			if !ok {
				return 0, false
			}
			m.head, m.n = head, n
		}
	}
	s := m.head
	m.head = c.st.view.Next[s]
	m.n--
	return s, true
}

// AllocN fills dst with segments and returns how many it delivered — short
// only when the cache and depot together run dry. Runs are carved a whole
// magazine at a time: the inner loop walks the magazine chain with plain
// pointer reads, so a multi-segment packet costs one AllocN instead of one
// Alloc (function call, dryness check) per segment, and at most one depot
// CAS per magazine crossed.
func (c *Cache) AllocN(dst []int32) int {
	next := c.st.view.Next
	got := 0
	for got < len(dst) {
		m := &c.mag[0]
		if m.n == 0 {
			if c.mag[1].n > 0 {
				c.mag[0], c.mag[1] = c.mag[1], c.mag[0]
			} else {
				head, n, ok := c.st.popMagazine()
				if !ok {
					return got
				}
				m.head, m.n = head, n
			}
		}
		take := int32(len(dst) - got)
		if take > m.n {
			take = m.n
		}
		s := m.head
		for i := int32(0); i < take; i++ {
			dst[got] = s
			got++
			s = next[s]
		}
		m.head = s
		m.n -= take
	}
	return got
}

// Free returns one segment to the active magazine. When both magazines are
// full the spare is pushed to the depot (one CAS), so a sustained
// free-heavy phase costs one CAS per magazine of frees.
func (c *Cache) Free(s int32) {
	if c.mag[0].n >= c.st.magSize {
		if c.mag[1].n >= c.st.magSize {
			spare := c.mag[1]
			c.mag[1] = magazine{head: nilSeg}
			c.count.Store(c.mag[0].n)
			c.st.pushMagazine(spare.head, spare.n)
		}
		c.mag[0], c.mag[1] = c.mag[1], c.mag[0]
	}
	m := &c.mag[0]
	c.st.view.Next[s] = m.head
	m.head = s
	m.n++
}

// FreeN splices a pre-linked chain of n segments (head→…→tail through
// View.Next; Next[tail] is overwritten) onto the active magazine in O(1),
// the bulk analogue of Free. The active magazine is allowed to grow past the
// nominal magazine size; once it holds two magazines' worth, nominal-size
// magazines are carved off its front and pushed to the depot — one chain
// walk and one CAS per magazine of frees, and a steady alloc-run/free-run
// cycle (the datapath's dequeue feeding the next enqueue) never touches the
// depot at all.
func (c *Cache) FreeN(head, tail, n int32) {
	if n <= 0 {
		return
	}
	next := c.st.view.Next
	m := &c.mag[0]
	next[tail] = m.head
	m.head = head
	m.n += n
	for m.n >= 2*c.st.magSize {
		s := m.head
		for i := int32(1); i < c.st.magSize; i++ {
			s = next[s]
		}
		h := m.head
		m.head = next[s]
		next[s] = nilSeg
		m.n -= c.st.magSize
		// Publish the shrunken population before the push so the departing
		// magazine is never counted in the cache and the depot at once.
		c.count.Store(m.n + c.mag[1].n)
		c.st.pushMagazine(h, c.st.magSize)
	}
}

// Publish refreshes the cache's lock-free population mirror. Owners call
// it once per queue operation (after the operation's allocations and
// frees), so pool-wide occupancy reads are exact at operation granularity
// while the per-segment hot path stays free of atomics. A no-op while the
// owner has deferred publication (SetDeferred).
func (c *Cache) Publish() {
	if c.deferred {
		return
	}
	c.count.Store(c.mag[0].n + c.mag[1].n)
}

// SetDeferred switches the per-operation mirror publish off (or back on).
// Only a single-writer owner may defer, and only when nothing reads
// pool-wide occupancy between its operations — the mirror goes stale in
// either direction while deferred. Turning deferral off republishes
// immediately.
func (c *Cache) SetDeferred(on bool) {
	c.deferred = on
	if !on {
		c.count.Store(c.mag[0].n + c.mag[1].n)
	}
}

// ForcePublish refreshes the mirror regardless of deferral, for observation
// paths (stats snapshots, invariant checks) that need an exact pool-wide
// count from a deferring owner. Owner-context only, like Publish.
func (c *Cache) ForcePublish() {
	c.count.Store(c.mag[0].n + c.mag[1].n)
}

// Flush pushes both magazines (full or partial) back to the depot so other
// owners can allocate them — used after push-out eviction frees segments on
// a different shard than the arrival that needs them.
func (c *Cache) Flush() {
	mags := c.mag
	c.mag[0] = magazine{head: nilSeg}
	c.mag[1] = magazine{head: nilSeg}
	c.count.Store(0)
	for _, m := range mags {
		if m.n > 0 {
			c.st.pushMagazine(m.head, m.n)
		}
	}
}

// CheckInvariants validates this cache's magazines (chain lengths, states,
// counter mirror). The global walk lives on Store.CheckInvariants.
func (c *Cache) CheckInvariants() error {
	seen := make(map[int32]bool, c.mag[0].n+c.mag[1].n)
	total := int32(0)
	for i := range c.mag {
		s := c.mag[i].head
		for k := int32(0); k < c.mag[i].n; k++ {
			if s < 0 || int(s) >= c.st.nseg {
				return errChain("cache magazine", i, s)
			}
			if seen[s] {
				return errDup("cache magazine", s)
			}
			seen[s] = true
			if c.st.view.State[s] != StateFree {
				return errState("cache magazine", s, c.st.view.State[s])
			}
			s = c.st.view.Next[s]
		}
		if s != nilSeg {
			return errChain("cache magazine", i, s)
		}
		total += c.mag[i].n
	}
	if got := c.count.Load(); got != total {
		return errCount("cache", int(total), int(got))
	}
	return nil
}
