// Package segstore is the shared segment-memory layer under the queue
// engine: one process-wide slab holding every segment's payload and link
// words, a lock-free global free-list, and per-owner magazine caches.
//
// The paper's queue manager is built around a single shared data memory —
// all per-flow queues allocate 64-byte segments from one pool, and the free
// list is the central hot structure (Sections 2-3). The shared-memory
// admission analyses the policy layer implements (LQD's 1.5-competitiveness,
// shared-buffer RED) are likewise stated for one global buffer. This package
// gives the sharded software engine that same single buffer without a
// global lock:
//
//   - Store: the slab (next/len/eop/state arrays plus the payload memory)
//     and the depot, a Treiber stack of segment magazines. The depot head
//     packs a 32-bit version tag beside the top-magazine index so a
//     compare-and-swap cannot succeed across an ABA reuse of the same
//     magazine head.
//   - Cache: a per-owner (per-shard) pair of magazines refilled and flushed
//     from the depot MagazineSegments at a time, so the steady-state cost
//     of the shared pool is one CAS per ~64 allocations instead of one per
//     segment — the software analogue of the paper's free-list working in
//     hardware line bursts.
//   - Private: a single-owner FIFO free list over a private slab, exactly
//     the allocation discipline the seed Manager used. The timed models
//     (MMS, DDR) keep it because FIFO reuse cycles segments through the
//     whole pool, striping the data memory across DDR banks; their measured
//     tables depend on that order.
//
// Magazine chains are threaded through the slab's Next array (a free
// segment's link word is otherwise unused); depot links between magazine
// heads live in a dedicated array accessed only with atomics, because a
// stale popper may read a head's depot link concurrently with its re-push.
package segstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Segment lifecycle states, stored per segment in View.State. The hardware
// does not need these (its pointer discipline is fixed by the RTL); the
// library keeps them so pointer-corruption bugs in callers become errors
// instead of silently cross-linked queues.
const (
	StateFree     uint8 = iota // on a free list or in a magazine
	StateQueued                // linked into a flow queue
	StateFloating              // allocated, not yet linked (or in transit)
	StateLent                  // checked out to a consumer as a zero-copy view
)

// MagazineSegments is the default magazine size: the number of segments
// that move between a Cache and the depot per CAS.
const MagazineSegments = 64

// nilSeg is the null segment link.
const nilSeg = int32(-1)

// View exposes the slab's per-segment arrays. Every Manager sharing a Store
// operates on these same slices; owners touch only the segments they hold,
// so the arrays need no locking of their own.
type View struct {
	Next  []int32  // link words (queue chains, free chains)
	Len   []uint16 // payload length per segment
	EOP   []bool   // end-of-packet marker per segment
	State []uint8  // lifecycle state per segment
	Refs  []int32  // view refcount per lent chain head (atomic access only)
	Data  []byte   // payload slab (nil when storage is disabled)
}

// Source is the allocation facade a queue Manager draws segments from:
// either a Cache over a shared Store or a Private FIFO pool.
type Source interface {
	// View returns the backing slab arrays.
	View() View
	// NumSegments is the total pool size behind this source.
	NumSegments() int
	// FreeSegments is the pool-wide free population — the number policies
	// consult. For a shared store it spans the depot and every cache.
	FreeSegments() int
	// Avail is the number of segments this owner could allocate right now
	// (its own cache plus the depot); segments stranded in other owners'
	// caches are free but not reachable.
	Avail() int
	// Alloc takes one segment; ok is false when nothing is reachable.
	Alloc() (int32, bool)
	// AllocN fills dst with freshly allocated segments and returns how many
	// it delivered — short only when the pool runs dry mid-run. The bulk
	// analogue of Alloc: one call per packet instead of one per segment.
	// Link words of the returned segments are unspecified.
	AllocN(dst []int32) int
	// Free returns one segment.
	Free(s int32)
	// FreeN returns a chain of n segments already linked head→…→tail
	// through View.Next (Next[tail] is overwritten). The whole chain is
	// spliced into free storage in one operation regardless of n.
	FreeN(head, tail, n int32)
	// Flush hands cached segments back to the shared pool so other owners
	// can allocate them (no-op for a private source).
	Flush()
	// Publish refreshes the lock-free free-count mirror other owners read;
	// callers invoke it once per queue operation (no-op for a private
	// source).
	Publish()
	// Lend moves segments between the owner's books and the lent
	// population: a positive delta marks segments as checked out to a
	// zero-copy view or reservation, a negative delta takes them back onto
	// the owner's books (a writer committing its reserved run). Owner
	// context only, like Alloc — the lent chains themselves are handed back
	// through ReturnLent.
	Lend(n int32)
	// ReturnLent returns a lent chain of n segments (head→…→tail through
	// View.Next; Next[tail] is overwritten) to free storage and debits the
	// lent population. Unlike every other method, ReturnLent is safe to
	// call from any goroutine for a shared source — view releases happen
	// wherever the consumer finishes, not in the owning shard — so shared
	// sources route the chain straight to the global depot. Private
	// sources remain single-owner. Segments must be scrubbed (StateFree,
	// zero length) by the caller before the chain is handed back.
	ReturnLent(head, tail, n int32)
	// Lent is the pool-wide lent population.
	Lent() int
	// Shared reports whether other sources draw from the same pool.
	Shared() bool
	// CheckInvariants validates this source's free-storage structures.
	// Shared sources validate only their own cache; use
	// Store.CheckInvariants for the global walk. Quiescent callers only.
	CheckInvariants() error
}

// Config sizes a Store or Private pool.
type Config struct {
	// NumSegments is the pool size (required, > 0).
	NumSegments int
	// SegmentBytes is the payload size per segment (required when
	// StoreData).
	SegmentBytes int
	// StoreData controls whether the payload slab is allocated. The timed
	// models disable it: they exercise only pointer traffic.
	StoreData bool
	// MagazineSize overrides the segments per magazine (0 means
	// MagazineSegments). Small pools shared by many caches want smaller
	// magazines, or most of the pool strands in the first caches to touch
	// the depot.
	MagazineSize int
}

func (c Config) validate() error {
	if c.NumSegments <= 0 {
		return fmt.Errorf("segstore: NumSegments must be positive, got %d", c.NumSegments)
	}
	if c.StoreData && c.SegmentBytes <= 0 {
		return fmt.Errorf("segstore: SegmentBytes must be positive with StoreData, got %d", c.SegmentBytes)
	}
	if c.MagazineSize < 0 {
		return fmt.Errorf("segstore: negative MagazineSize %d", c.MagazineSize)
	}
	return nil
}

func newView(cfg Config) View {
	v := View{
		Next:  make([]int32, cfg.NumSegments),
		Len:   make([]uint16, cfg.NumSegments),
		EOP:   make([]bool, cfg.NumSegments),
		State: make([]uint8, cfg.NumSegments),
		Refs:  make([]int32, cfg.NumSegments),
	}
	if cfg.StoreData {
		v.Data = make([]byte, cfg.NumSegments*cfg.SegmentBytes)
	}
	return v
}

// Store is the shared slab plus the lock-free depot. All methods are safe
// for concurrent use; per-owner allocation goes through Cache.
type Store struct {
	view    View
	nseg    int
	magSize int32

	// depotHead packs (top magazine head + 1) in the high 32 bits and a
	// version tag in the low 32. Index 0 in the high half means empty, so a
	// nil head and segment 0 cannot collide; the tag advances on every
	// successful push or pop, making the CAS ABA-safe.
	depotHead atomic.Uint64
	depotFree atomic.Int64 // segments currently in depot magazines
	lentSegs  atomic.Int64 // segments checked out as views or reservations

	// dnext[h] links magazine head h to the next magazine head below it.
	// Accessed only with atomics: a popper that loaded a stale top still
	// reads dnext[top] before its CAS fails, racing with the owner pushing
	// that head back.
	dnext []int32
	// dcount[h] is the population of the magazine headed by h. Written by
	// the owner before the publishing CAS and read after a claiming CAS, so
	// plain access is ordered through depotHead.
	dcount []int32

	// caches registers every Cache for FreeSegments aggregation;
	// copy-on-write so readers never lock.
	caches atomic.Pointer[[]*Cache]
	mu     sync.Mutex // serializes NewCache registrations
}

// New builds a Store with every segment in depot magazines.
func New(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mag := cfg.MagazineSize
	if mag == 0 {
		mag = MagazineSegments
	}
	st := &Store{
		view:    newView(cfg),
		nseg:    cfg.NumSegments,
		magSize: int32(mag),
		dnext:   make([]int32, cfg.NumSegments),
		dcount:  make([]int32, cfg.NumSegments),
	}
	empty := make([]*Cache, 0)
	st.caches.Store(&empty)
	// Carve the pool into magazines and stack them. Chains run through the
	// slab's Next array in ascending order so the first allocations sweep
	// the slab sequentially.
	for base := cfg.NumSegments; base > 0; base -= mag {
		lo := base - mag
		if lo < 0 {
			lo = 0
		}
		for i := lo; i < base-1; i++ {
			st.view.Next[i] = int32(i + 1)
		}
		st.view.Next[base-1] = nilSeg
		st.pushMagazine(int32(lo), int32(base-lo))
	}
	return st, nil
}

// NumSegments returns the pool size.
func (st *Store) NumSegments() int { return st.nseg }

// View returns the slab arrays.
func (st *Store) View() View { return st.view }

// Free returns the pool-wide free population: depot magazines plus every
// registered cache. Concurrent magazine movement can make the sum lag a
// transfer by one magazine; the error is transient and conservative (the
// in-flight magazine is uncounted, never double-counted).
func (st *Store) Free() int {
	total := st.depotFree.Load()
	for _, c := range *st.caches.Load() {
		total += int64(c.count.Load())
	}
	return int(total)
}

// Lent returns the pool-wide lent population (segments checked out as
// zero-copy views or in-flight write reservations).
func (st *Store) Lent() int { return int(st.lentSegs.Load()) }

// Lend adjusts the lent population by delta segments. Callers move
// segments onto the lent books when a view or reservation checks a chain
// out, and off them when a writer commits its run back into a queue.
func (st *Store) Lend(n int32) { st.lentSegs.Add(int64(n)) }

// ReturnLent returns a lent chain to the depot as one magazine and debits
// the lent population. Safe from any goroutine: the single publishing CAS
// in pushMagazine is the depot's normal concurrency discipline, and the
// caller owns the chain exclusively until that CAS, so its scrub writes
// happen-before any later allocation. The chain may be any length —
// popMagazine handles non-nominal counts.
func (st *Store) ReturnLent(head, tail, n int32) {
	if n <= 0 {
		return
	}
	st.view.Next[tail] = nilSeg
	st.pushMagazine(head, n)
	st.lentSegs.Add(-int64(n))
}

// pushMagazine publishes the chain headed by head (count segments linked
// through View.Next) onto the depot. One CAS on success.
func (st *Store) pushMagazine(head, count int32) {
	st.dcount[head] = count
	for {
		old := st.depotHead.Load()
		atomic.StoreInt32(&st.dnext[head], int32(old>>32)-1)
		nw := uint64(uint32(head+1))<<32 | uint64(uint32(old)+1)
		if st.depotHead.CompareAndSwap(old, nw) {
			st.depotFree.Add(int64(count))
			return
		}
	}
}

// popMagazine claims the top magazine. One CAS on success; ok is false when
// the depot is empty.
func (st *Store) popMagazine() (head, count int32, ok bool) {
	for {
		old := st.depotHead.Load()
		head = int32(old>>32) - 1
		if head < 0 {
			return 0, 0, false
		}
		next := atomic.LoadInt32(&st.dnext[head])
		nw := uint64(uint32(next+1))<<32 | uint64(uint32(old)+1)
		if st.depotHead.CompareAndSwap(old, nw) {
			count = st.dcount[head]
			st.depotFree.Add(-int64(count))
			return head, count, true
		}
	}
}

// CheckInvariants walks the depot and every registered cache, verifying
// that free storage is acyclic, correctly counted, holds only segments in
// StateFree, and that no segment appears twice. It also cross-checks the
// state array: the number of StateFree segments must equal the free
// population. Only meaningful when no owner is allocating (tests and
// debugging).
func (st *Store) CheckInvariants() error {
	seen := make([]bool, st.nseg)
	walkChain := func(where string, head, count int32) error {
		s := head
		for i := int32(0); i < count; i++ {
			if s < 0 || int(s) >= st.nseg {
				return fmt.Errorf("segstore: %s chain leaves the pool at %d", where, s)
			}
			if seen[s] {
				return fmt.Errorf("segstore: segment %d free twice (%s)", s, where)
			}
			seen[s] = true
			if st.view.State[s] != StateFree {
				return fmt.Errorf("segstore: %s holds segment %d in state %d", where, s, st.view.State[s])
			}
			s = st.view.Next[s]
		}
		if s != nilSeg {
			return fmt.Errorf("segstore: %s chain longer than its count %d", where, count)
		}
		return nil
	}
	var depotTotal int64
	mags := 0
	for h := int32(st.depotHead.Load()>>32) - 1; h >= 0; h = atomic.LoadInt32(&st.dnext[h]) {
		if mags++; mags > st.nseg {
			return fmt.Errorf("segstore: depot magazine list cycles")
		}
		if err := walkChain("depot", h, st.dcount[h]); err != nil {
			return err
		}
		depotTotal += int64(st.dcount[h])
	}
	if got := st.depotFree.Load(); got != depotTotal {
		return fmt.Errorf("segstore: depot holds %d segments, counter says %d", depotTotal, got)
	}
	free := depotTotal
	for i, c := range *st.caches.Load() {
		cached := int64(0)
		for m := range c.mag {
			if c.mag[m].n == 0 {
				continue
			}
			if err := walkChain(fmt.Sprintf("cache %d magazine %d", i, m), c.mag[m].head, c.mag[m].n); err != nil {
				return err
			}
			cached += int64(c.mag[m].n)
		}
		if got := int64(c.count.Load()); got != cached {
			return fmt.Errorf("segstore: cache %d holds %d segments, counter says %d", i, cached, got)
		}
		free += cached
	}
	stateFree, stateLent := int64(0), int64(0)
	for _, s := range st.view.State {
		switch s {
		case StateFree:
			stateFree++
		case StateLent:
			stateLent++
		}
	}
	if stateFree != free {
		return fmt.Errorf("segstore: %d segments in StateFree, free storage holds %d", stateFree, free)
	}
	if got := st.lentSegs.Load(); got != stateLent {
		return fmt.Errorf("segstore: %d segments in StateLent, lent counter says %d", stateLent, got)
	}
	return nil
}
