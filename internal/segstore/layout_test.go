package segstore

import (
	"testing"
	"unsafe"
)

// TestCacheLayout pins the padding between the owner-hot magazine fields
// and the cross-thread count mirror: Store.Free sums every cache's mirror
// on each policy decision, and without the pad those reads would bounce
// the owner's magazine line around the machine. Distances, not absolute
// alignment, are asserted — heap base alignment is the allocator's call.
func TestCacheLayout(t *testing.T) {
	var c Cache
	offMag := unsafe.Offsetof(c.mag)
	offCount := unsafe.Offsetof(c.count)

	if cachePad < 128 {
		t.Fatalf("cachePad = %d, want >= 128 (adjacent-line prefetch pairs)", cachePad)
	}
	if d := offCount - offMag; d < cachePad {
		t.Errorf("layout: mag/count only %d bytes apart, want >= %d", d, cachePad)
	}
	// Tail pad: the mirror must not end the struct, or the next object in
	// the same span shares its line.
	if d := unsafe.Sizeof(c) - offCount; d < cachePad {
		t.Errorf("layout: count only %d bytes from struct end, want >= %d", d, cachePad)
	}
}

// TestStoreLayout sanity-checks that the depot head (CAS-contended by all
// caches) does not share a line with the read-only view header.
func TestStoreLayout(t *testing.T) {
	var st Store
	offView := unsafe.Offsetof(st.view)
	offDepot := unsafe.Offsetof(st.depotHead)
	t.Logf("Store: view at %d, depotHead at %d, size %d",
		offView, offDepot, unsafe.Sizeof(st))
	if offDepot < offView {
		t.Skip("depotHead precedes view; layout review needed only if contended")
	}
}
