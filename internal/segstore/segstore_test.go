package segstore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPrivateFIFO(t *testing.T) {
	p, err := NewPrivate(Config{NumSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh pool allocates in ascending order.
	for want := int32(0); want < 8; want++ {
		s, ok := p.Alloc()
		if !ok || s != want {
			t.Fatalf("Alloc = (%d, %v), want (%d, true)", s, ok, want)
		}
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("alloc succeeded on empty pool")
	}
	// FIFO recycling: freeing 3, 1, 4 hands them back in that order.
	for _, s := range []int32{3, 1, 4} {
		p.Free(s)
	}
	for _, want := range []int32{3, 1, 4} {
		s, ok := p.Alloc()
		if !ok || s != want {
			t.Fatalf("recycled Alloc = (%d, %v), want (%d, true)", s, ok, want)
		}
	}
	for s := int32(0); s < 8; s++ {
		p.Free(s)
	}
	if p.FreeSegments() != 8 {
		t.Fatalf("FreeSegments = %d, want 8", p.FreeSegments())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheDrainsWholePool(t *testing.T) {
	const n = 1000 // not a magazine multiple: exercises the remainder chain
	st, err := New(Config{NumSegments: n})
	if err != nil {
		t.Fatal(err)
	}
	c := st.NewCache()
	if st.Free() != n {
		t.Fatalf("Free = %d, want %d", st.Free(), n)
	}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		s, ok := c.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed with %d free", i, st.Free())
		}
		if seen[s] {
			t.Fatalf("segment %d allocated twice", s)
		}
		seen[s] = true
	}
	if _, ok := c.Alloc(); ok {
		t.Fatal("alloc succeeded on exhausted pool")
	}
	if st.Free() != 0 || c.Avail() != 0 {
		t.Fatalf("Free = %d, Avail = %d after draining", st.Free(), c.Avail())
	}
	for s := int32(0); s < n; s++ {
		c.Free(s)
	}
	c.Publish()
	if st.Free() != n {
		t.Fatalf("Free = %d, want %d after refill", st.Free(), n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushMakesSegmentsReachable(t *testing.T) {
	st, err := New(Config{NumSegments: 256})
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.NewCache(), st.NewCache()
	held := make([]int32, 0, 256)
	for {
		s, ok := a.Alloc()
		if !ok {
			break
		}
		held = append(held, s)
	}
	if len(held) != 256 {
		t.Fatalf("cache a drained %d segments, want 256", len(held))
	}
	// Frees land in a's magazines: globally free, unreachable from b.
	for _, s := range held[:10] {
		a.Free(s)
	}
	a.Publish()
	if st.Free() != 10 {
		t.Fatalf("Free = %d, want 10", st.Free())
	}
	if _, ok := b.Alloc(); ok {
		t.Fatal("cache b allocated from cache a's magazines without a flush")
	}
	a.Flush()
	if got := a.Avail(); got != 10 {
		t.Fatalf("a.Avail = %d after flush, want 10 (via depot)", got)
	}
	got, ok := b.Alloc()
	if !ok {
		t.Fatal("cache b cannot allocate after flush")
	}
	b.Free(got)
	b.Free(held[10])
	held = held[11:]
	for _, s := range held {
		a.Free(s)
	}
	a.Flush()
	b.Flush()
	if st.Free() != 256 {
		t.Fatalf("Free = %d, want 256 after full return", st.Free())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDataSlab(t *testing.T) {
	st, err := New(Config{NumSegments: 4, SegmentBytes: 64, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.View().Data) != 4*64 {
		t.Fatalf("data slab = %d bytes, want 256", len(st.View().Data))
	}
	if _, err := New(Config{NumSegments: 4, StoreData: true}); err == nil {
		t.Fatal("StoreData without SegmentBytes accepted")
	}
	if _, err := New(Config{NumSegments: 0}); err == nil {
		t.Fatal("zero NumSegments accepted")
	}
}

// TestConcurrentMagazineChurn hammers the depot from many caches at once:
// each worker allocates bursts, stamps ownership with a CAS so any
// double-allocation is caught immediately, frees, and occasionally flushes.
// Run under -race: this is the lock-free free-list correctness test.
func TestConcurrentMagazineChurn(t *testing.T) {
	const (
		workers = 8
		n       = 4096
		rounds  = 2000
	)
	st, err := New(Config{NumSegments: n})
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]atomic.Int32, n)
	caches := make([]*Cache, workers)
	for i := range caches {
		caches[i] = st.NewCache()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			c := caches[w]
			id := int32(w + 1)
			held := make([]int32, 0, 128)
			for r := 0; r < rounds; r++ {
				burst := 1 + rng.Intn(80)
				for i := 0; i < burst; i++ {
					s, ok := c.Alloc()
					if !ok {
						break
					}
					if !owner[s].CompareAndSwap(0, id) {
						t.Errorf("segment %d allocated twice (owners %d and %d)", s, owner[s].Load(), id)
						return
					}
					held = append(held, s)
				}
				// Free a random prefix.
				k := rng.Intn(len(held) + 1)
				for _, s := range held[:k] {
					if !owner[s].CompareAndSwap(id, 0) {
						t.Errorf("segment %d freed while not owned", s)
						return
					}
					c.Free(s)
				}
				held = append(held[:0], held[k:]...)
				if r%64 == 0 {
					c.Flush()
				}
			}
			for _, s := range held {
				owner[s].Store(0)
				c.Free(s)
			}
			c.Flush()
		}(w)
	}
	wg.Wait()
	if st.Free() != n {
		t.Fatalf("Free = %d, want %d after churn", st.Free(), n)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheAllocFree(b *testing.B) {
	st, err := New(Config{NumSegments: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	c := st.NewCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, ok := c.Alloc()
		if !ok {
			b.Fatal("pool exhausted")
		}
		c.Free(s)
	}
}
