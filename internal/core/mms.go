package core

import (
	"fmt"

	"npqm/internal/queue"
)

// Request is one command submitted to the MMS.
type Request struct {
	Cmd     Command
	Queue   queue.QueueID // target flow queue
	Dest    queue.QueueID // destination queue for Move-family commands
	Payload []byte        // segment data for Enqueue/Overwrite
	EOP     bool          // end-of-packet marker for Enqueue
	Length  int           // new length for Overwrite_Segment_length

	// onDone, when set by the load simulator, runs after the command's
	// execution completes (used to order dequeue bursts strictly behind
	// the enqueues of the same packet).
	onDone func(nowHC int64)
}

// Response reports the outcome of an executed command.
type Response struct {
	Cmd        Command
	Seg        queue.Seg     // affected segment (Enqueue)
	Info       queue.SegInfo // head-segment description (Read/Dequeue)
	Payload    []byte        // data returned by Read/Dequeue
	Moved      int           // segments relocated by Move-family commands
	ExecCycles int           // DQM execution latency (Table 4)
}

// Config sizes an MMS instance.
type Config struct {
	// NumQueues is the flow count (0 means the paper's 32K).
	NumQueues int
	// NumSegments is the data-memory capacity in 64-byte segments
	// (0 means 64K segments = 4 MB of data memory).
	NumSegments int
	// StoreData enables payload storage (functional mode). Timed load
	// simulations disable it.
	StoreData bool
	// Ports is the number of command interfaces (0 means 4: two ingress,
	// two egress, matching the paper's reference configuration).
	Ports int
	// FIFODepth is the per-port command FIFO depth in commands (0 means 2;
	// calibrated against Table 5's saturation FIFO delay — the shallow
	// FIFO plus back-pressure is what bounds the delay under overload;
	// see EXPERIMENTS.md).
	FIFODepth int
	// Priorities optionally assigns per-port service priorities.
	Priorities []int
	// DataBanks is the DDR bank count behind the DMC (0 means 8).
	DataBanks int
}

func (c Config) withDefaults() Config {
	if c.NumQueues == 0 {
		c.NumQueues = queue.DefaultNumQueues
	}
	if c.NumSegments == 0 {
		c.NumSegments = 64 * 1024
	}
	if c.Ports == 0 {
		c.Ports = 4
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = 2
	}
	if c.DataBanks == 0 {
		c.DataBanks = 8
	}
	return c
}

// MMS is the Memory Management System: the five blocks of Figure 2 around
// the functional queue engine. Commands submitted through Do execute
// immediately (functional semantics) while the cycle accounting mirrors the
// hardware's DQM schedules.
type MMS struct {
	cfg       Config
	Scheduler *InternalScheduler
	DQM       *DQM
	DMC       *DMC
	Seg       *Segmentation
	Reasm     *Reassembly
}

// New builds an MMS.
func New(cfg Config) (*MMS, error) {
	cfg = cfg.withDefaults()
	qm, err := queue.New(queue.Config{
		NumQueues:   cfg.NumQueues,
		NumSegments: cfg.NumSegments,
		StoreData:   cfg.StoreData,
	})
	if err != nil {
		return nil, err
	}
	sched, err := NewInternalScheduler(cfg.Ports, cfg.FIFODepth, cfg.Priorities)
	if err != nil {
		return nil, err
	}
	dqm := NewDQM(qm)
	m := &MMS{
		cfg:       cfg,
		Scheduler: sched,
		DQM:       dqm,
		DMC:       NewDMC(cfg.DataBanks),
		Seg:       &Segmentation{qm: qm},
		Reasm:     &Reassembly{qm: qm},
	}
	return m, nil
}

// Config returns the effective configuration.
func (m *MMS) Config() Config { return m.cfg }

// Queues exposes the functional queue engine (read-mostly helpers for
// examples and tests).
func (m *MMS) Queues() *queue.Manager { return m.DQM.qm }

// Do executes one command functionally and returns its response with the
// Table 4 cycle cost.
func (m *MMS) Do(req Request) (Response, error) {
	return m.DQM.Execute(req)
}

// Table4 returns the measured execution latency of every command, derived
// by scheduling each command's micro-program — the reproduction of Table 4.
func Table4() map[Command]int {
	out := make(map[Command]int, int(numCommands))
	for _, c := range Commands() {
		out[c] = c.Cycles()
	}
	return out
}

// OpsPerSecond returns the sustained command rate for a command mix with
// the given mean execution latency in cycles ("This latency defines the
// time interval between two successive commands; in other words it states
// the MMS processing rate").
func OpsPerSecond(meanExecCycles float64) float64 {
	if meanExecCycles <= 0 {
		panic("core: non-positive mean execution latency")
	}
	return ClockMHz * 1e6 / meanExecCycles
}

// ThroughputGbps converts a segment-command rate into data throughput
// (each operation moves one 64-byte segment).
func ThroughputGbps(opsPerSecond float64) float64 {
	return opsPerSecond * queue.SegmentBytes * 8 / 1e9
}

// HeadlineThroughputGbps is the paper's headline number: the forwarding mix
// (one Enqueue and one Dequeue per segment) averages 10.5 cycles per
// command, which at 125 MHz supports ~12 Mops/s and ~6.1 Gbps.
func HeadlineThroughputGbps() float64 {
	mean := float64(CmdEnqueue.Cycles()+CmdDequeue.Cycles()) / 2
	return ThroughputGbps(OpsPerSecond(mean))
}

// DQM is the Data Queue Manager: it "organizes the incoming packets into
// queues. It handles and updates the data structures kept in the Pointer
// memory." Functionally it drives the queue engine; its cycle cost per
// command is the micro-program schedule length.
type DQM struct {
	qm         *queue.Manager
	execCycles uint64 // cumulative execution cycles
	executed   uint64 // commands executed
}

// NewDQM wraps a queue engine.
func NewDQM(qm *queue.Manager) *DQM { return &DQM{qm: qm} }

// Executed returns the command count and cumulative execution cycles.
func (d *DQM) Executed() (commands, cycles uint64) { return d.executed, d.execCycles }

// Execute runs one command functionally and charges its micro-program.
func (d *DQM) Execute(req Request) (Response, error) {
	resp := Response{Cmd: req.Cmd, ExecCycles: req.Cmd.Cycles()}
	var err error
	switch req.Cmd {
	case CmdEnqueue:
		resp.Seg, err = d.qm.Enqueue(req.Queue, req.Payload, req.EOP)
	case CmdRead:
		resp.Info, resp.Payload, err = d.qm.ReadHead(req.Queue)
	case CmdOverwrite:
		err = d.qm.Overwrite(req.Queue, req.Payload)
	case CmdMove:
		resp.Moved, err = d.qm.MovePacket(req.Queue, req.Dest)
	case CmdDelete:
		err = d.qm.DeleteSegment(req.Queue)
	case CmdOverwriteSegLen:
		err = d.qm.OverwriteLength(req.Queue, req.Length)
	case CmdDequeue:
		resp.Info, resp.Payload, err = d.qm.Dequeue(req.Queue)
		resp.Seg = resp.Info.Seg
	case CmdOverwriteSegLenMove:
		resp.Moved, err = d.qm.OverwriteLengthAndMove(req.Queue, req.Dest, req.Length)
	case CmdOverwriteSegMove:
		resp.Moved, err = d.qm.OverwriteAndMove(req.Queue, req.Dest, req.Payload)
	default:
		return Response{}, fmt.Errorf("core: unknown command %v", req.Cmd)
	}
	if err != nil {
		return Response{}, err
	}
	d.executed++
	d.execCycles += uint64(resp.ExecCycles)
	return resp, nil
}

// Segmentation is the MMS ingress block: it cuts packets into 64-byte
// segments and enqueues them on a flow queue.
type Segmentation struct {
	qm       *queue.Manager
	packets  uint64
	segments uint64
}

// Push segments data onto flow q. It returns the segment count.
func (s *Segmentation) Push(q queue.QueueID, data []byte) (int, error) {
	n, err := s.qm.EnqueuePacket(q, data)
	if err != nil {
		return 0, err
	}
	s.packets++
	s.segments += uint64(n)
	return n, nil
}

// Stats returns cumulative packet and segment counts.
func (s *Segmentation) Stats() (packets, segments uint64) { return s.packets, s.segments }

// Reassembly is the MMS egress block: it dequeues a full packet from a flow
// queue and rebuilds the byte stream.
type Reassembly struct {
	qm       *queue.Manager
	packets  uint64
	segments uint64
}

// Pop reassembles and removes the packet at the head of flow q.
func (r *Reassembly) Pop(q queue.QueueID) ([]byte, int, error) {
	data, n, err := r.qm.DequeuePacket(q)
	if err != nil {
		return nil, 0, err
	}
	r.packets++
	r.segments += uint64(n)
	return data, n, nil
}

// Stats returns cumulative packet and segment counts.
func (r *Reassembly) Stats() (packets, segments uint64) { return r.packets, r.segments }
