package core

import (
	"math"
	"testing"
)

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{LoadGbps: 0}); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := RunLoad(LoadConfig{LoadGbps: 1, MMS: Config{Ports: 2}}); err == nil {
		t.Fatal("2-port load sim accepted")
	}
}

func TestRunLoadLowLoad(t *testing.T) {
	p, err := RunLoad(LoadConfig{LoadGbps: 1.6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.AchievedGbps-1.6) > 0.1 {
		t.Fatalf("achieved = %v, want ~1.6", p.AchievedGbps)
	}
	if math.Abs(p.ExecDelay-10.5) > 0.05 {
		t.Fatalf("exec = %v, want 10.5 (paper Table 5)", p.ExecDelay)
	}
	if p.DataDelay < 25 || p.DataDelay > 33 {
		t.Fatalf("data = %v, paper says ~28", p.DataDelay)
	}
	if p.FIFODelay < 5 || p.FIFODelay > 35 {
		t.Fatalf("fifo = %v, paper says ~20", p.FIFODelay)
	}
	if p.TotalDelay != p.FIFODelay+p.ExecDelay+p.DataDelay {
		t.Fatal("total is not the component sum")
	}
	if p.Served == 0 {
		t.Fatal("nothing measured")
	}
}

// TestRunLoadOverload: offered load above the ~6.1 Gbps capacity must
// saturate: throughput caps at capacity and the FIFO delay is bounded by the
// shallow FIFOs plus back-pressure rather than growing without bound.
func TestRunLoadOverload(t *testing.T) {
	p, err := RunLoad(LoadConfig{LoadGbps: 8.0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if p.AchievedGbps > HeadlineThroughputGbps()+0.1 {
		t.Fatalf("achieved %v Gbps exceeds the %v Gbps capacity",
			p.AchievedGbps, HeadlineThroughputGbps())
	}
	if p.AchievedGbps < 5.8 {
		t.Fatalf("achieved %v Gbps, capacity should be ~6.1", p.AchievedGbps)
	}
	if p.FIFODelay > 200 {
		t.Fatalf("fifo delay %v unbounded despite back-pressure", p.FIFODelay)
	}
}

// TestTable5Shape asserts the qualitative structure of Table 5:
// execution delay is load-independent at 10.5 cycles, data delay grows
// mildly with load, FIFO delay is flat near 20 at low loads and blows up
// past the knee, and every total is the sum of its parts.
func TestTable5Shape(t *testing.T) {
	pts, err := RunTable5(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("rows = %d", len(pts))
	}
	// Rows come in Table 5 order: 6.14, 4.8, 4, 3.2, 1.6.
	top, low := pts[0], pts[4]
	for _, p := range pts {
		if math.Abs(p.ExecDelay-10.5) > 0.05 {
			t.Fatalf("load %v: exec = %v, want 10.5", p.LoadGbps, p.ExecDelay)
		}
		if math.Abs(p.TotalDelay-(p.FIFODelay+p.ExecDelay+p.DataDelay)) > 1e-9 {
			t.Fatalf("load %v: total mismatch", p.LoadGbps)
		}
	}
	if top.FIFODelay < 2*low.FIFODelay {
		t.Fatalf("no FIFO knee: %.1f at 6.14 vs %.1f at 1.6", top.FIFODelay, low.FIFODelay)
	}
	if top.DataDelay < low.DataDelay {
		t.Fatalf("data delay shrank with load: %.1f vs %.1f", top.DataDelay, low.DataDelay)
	}
	if top.TotalDelay <= pts[1].TotalDelay {
		t.Fatalf("total at 6.14 (%.1f) not above 4.8 (%.1f)", top.TotalDelay, pts[1].TotalDelay)
	}
}

// TestTable5VsPaper checks the rows against the published values with
// tolerances reflecting what the paper pins down (see EXPERIMENTS.md for
// the full comparison): execution exactly, data delay within 3 cycles,
// low-load FIFO delay within 10 cycles of the paper's 20, and the
// saturation row within [55, 135].
func TestTable5VsPaper(t *testing.T) {
	paper := map[float64]struct{ fifo, exec, data float64 }{
		6.14: {68, 10.5, 31.3},
		4.8:  {57, 10.5, 30.8},
		4:    {20, 10.5, 30},
		3.2:  {20, 10.5, 29.1},
		1.6:  {20, 10.5, 28},
	}
	pts, err := RunTable5(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := paper[p.LoadGbps]
		if math.Abs(p.ExecDelay-want.exec) > 0.05 {
			t.Errorf("load %v: exec %v != %v", p.LoadGbps, p.ExecDelay, want.exec)
		}
		if math.Abs(p.DataDelay-want.data) > 3 {
			t.Errorf("load %v: data %v, paper %v", p.LoadGbps, p.DataDelay, want.data)
		}
		switch {
		case p.LoadGbps <= 4:
			if math.Abs(p.FIFODelay-20) > 10 {
				t.Errorf("load %v: fifo %v, paper ~20", p.LoadGbps, p.FIFODelay)
			}
		case p.LoadGbps > 6:
			if p.FIFODelay < 55 || p.FIFODelay > 135 {
				t.Errorf("load %v: fifo %v, paper 68", p.LoadGbps, p.FIFODelay)
			}
		}
	}
}

func TestLoadDeterminism(t *testing.T) {
	a, err := RunLoad(LoadConfig{LoadGbps: 4.8, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(LoadConfig{LoadGbps: 4.8, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestLoadSeedsDiffer(t *testing.T) {
	a, _ := RunLoad(LoadConfig{LoadGbps: 4.8, Seed: 1})
	b, _ := RunLoad(LoadConfig{LoadGbps: 4.8, Seed: 2})
	if a.FIFODelay == b.FIFODelay && a.DataDelay == b.DataDelay {
		t.Fatal("different seeds produced identical delays — randomness unused?")
	}
}

func BenchmarkRunLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunLoad(LoadConfig{LoadGbps: 4.8, Seed: 1,
			WarmupCommands: 500, MeasureCommands: 4000}); err != nil {
			b.Fatal(err)
		}
	}
}
