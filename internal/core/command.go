// Package core implements the paper's FPGA Memory Management System (MMS):
// a hardware queue manager supporting per-flow queuing for up to 32K flows
// over 64-byte segments at 125 MHz (Section 6, Figure 2, Tables 4 and 5).
//
// The MMS consists of five blocks operating in parallel, mirrored here one
// type per block:
//
//   - InternalScheduler: per-port command FIFOs with programmable service
//     priorities, feeding the DQM (sched.go);
//   - DQM (Data Queue Manager): executes queue commands against the pointer
//     memory; each command is a micro-program of pointer-SRAM accesses whose
//     schedule length is the command latency of Table 4 (dqm.go);
//   - DMC (Data Memory Controller): performs the segment reads/writes
//     against the banked DDR data memory, issuing interleaved commands to
//     minimize bank conflicts (dmc.go);
//   - Segmentation and Reassembly: cut packets into 64-byte segments and
//     rebuild them (segre.go).
//
// The functional semantics come from internal/queue; this package adds the
// hardware timing.
package core

import "fmt"

// Command identifies an MMS queue-management command (Table 4).
type Command int

// The MMS command set, in Table 4 order.
const (
	CmdEnqueue Command = iota
	CmdRead
	CmdOverwrite
	CmdMove
	CmdDelete
	CmdOverwriteSegLen
	CmdDequeue
	CmdOverwriteSegLenMove
	CmdOverwriteSegMove
	numCommands
)

// String implements fmt.Stringer using the paper's command names.
func (c Command) String() string {
	switch c {
	case CmdEnqueue:
		return "Enqueue"
	case CmdRead:
		return "Read"
	case CmdOverwrite:
		return "Overwrite"
	case CmdMove:
		return "Move"
	case CmdDelete:
		return "Delete"
	case CmdOverwriteSegLen:
		return "Overwrite_Segment_length"
	case CmdDequeue:
		return "Dequeue"
	case CmdOverwriteSegLenMove:
		return "Overwrite_Segment_length&Move"
	case CmdOverwriteSegMove:
		return "Overwrite_Segment&Move"
	default:
		return fmt.Sprintf("command(%d)", int(c))
	}
}

// Commands lists the full command set in Table 4 order.
func Commands() []Command {
	cs := make([]Command, numCommands)
	for i := range cs {
		cs[i] = Command(i)
	}
	return cs
}

// MicroOp is one step of a command's pointer-memory micro-program. Cycles is
// the step's contribution to the execution latency: pointer-SRAM reads cost
// the 2-cycle ZBT pipeline, writes and register updates cost 1 cycle, and
// steps that overlap with an SRAM read in flight cost 0.
type MicroOp struct {
	Name   string
	Cycles int
}

// microprograms holds the per-command pointer-memory schedules. The schedule
// lengths are the measured latencies of Table 4; the step decomposition
// follows the paper's description of each operation (Section 5.2: "First a
// new pointer is allocated from the free list, then this pointer is stored
// to the queue list and then the data are transferred to the memory") with
// the first step of each program producing the data-memory address, so the
// DMC can start the data access "right after the first pointer memory access
// of each command has been completed" (Section 6.1).
var microprograms = map[Command][]MicroOp{
	// Enqueue one segment: pop the free list, link at queue tail. 10 cycles.
	CmdEnqueue: {
		{"read free-list head (data address)", 2},
		{"update free-list head", 1},
		{"write segment meta (len,eop)", 1},
		{"read queue-table tail", 2},
		{"link next[old tail]", 1},
		{"write queue-table tail", 1},
		{"update queue length", 1},
		{"commit / grant next", 1},
	},
	// Read the head segment without dequeuing. 10 cycles.
	CmdRead: {
		{"read queue-table head (data address)", 2},
		{"read segment meta", 2},
		{"read next pointer", 2},
		{"issue data read to DMC", 1},
		{"update statistics", 1},
		{"commit / grant next", 2},
	},
	// Overwrite the head segment's data (and meta). 10 cycles.
	CmdOverwrite: {
		{"read queue-table head (data address)", 2},
		{"read segment meta", 2},
		{"write segment meta", 1},
		{"issue data write to DMC", 1},
		{"writeback check", 2},
		{"commit / grant next", 2},
	},
	// Move the head packet to a new queue: pure pointer surgery. 11 cycles.
	CmdMove: {
		{"read queue-table head (from)", 2},
		{"read packet-end pointer", 2},
		{"write queue-table head (from)", 1},
		{"read queue-table tail (to)", 2},
		{"link next[tail(to)]", 1},
		{"write queue-table tail (to)", 1},
		{"update queue lengths", 1},
		{"commit / grant next", 1},
	},
	// Delete the head segment: unlink and push on the free list. 7 cycles.
	CmdDelete: {
		{"read queue-table head", 2},
		{"read next pointer", 2},
		{"write queue-table head", 1},
		{"push free list", 1},
		{"commit / grant next", 1},
	},
	// Overwrite only the stored segment length (metadata-only). 7 cycles.
	CmdOverwriteSegLen: {
		{"read queue-table head", 2},
		{"read segment meta", 2},
		{"write segment meta", 1},
		{"commit / grant next", 2},
	},
	// Dequeue the head segment: unlink, free, emit data. 11 cycles.
	CmdDequeue: {
		{"read queue-table head (data address)", 2},
		{"read segment meta", 2},
		{"read next pointer", 2},
		{"write queue-table head", 1},
		{"push free list", 1},
		{"update queue length", 1},
		{"issue data read to DMC", 1},
		{"commit / grant next", 1},
	},
	// Combined commands share the head lookup between their two halves,
	// which is why they cost far less than the sum of the parts. 12 cycles.
	CmdOverwriteSegLenMove: {
		{"read queue-table head (from)", 2},
		{"read segment meta", 2},
		{"write segment meta", 1},
		{"read packet-end pointer", 2},
		{"write queue-table head (from)", 1},
		{"read queue-table tail (to)", 1}, // overlapped with head write
		{"link next[tail(to)] + tail update", 1},
		{"update queue lengths", 1},
		{"commit / grant next", 1},
	},
	CmdOverwriteSegMove: {
		{"read queue-table head (from, data address)", 2},
		{"read segment meta", 2},
		{"write segment meta + issue data write", 1},
		{"read packet-end pointer", 2},
		{"write queue-table head (from)", 1},
		{"read queue-table tail (to)", 1}, // overlapped with head write
		{"link next[tail(to)] + tail update", 1},
		{"update queue lengths", 1},
		{"commit / grant next", 1},
	},
}

// paperLatency is Table 4 verbatim, in cycles at 125 MHz.
var paperLatency = map[Command]int{
	CmdEnqueue:             10,
	CmdRead:                10,
	CmdOverwrite:           10,
	CmdMove:                11,
	CmdDelete:              7,
	CmdOverwriteSegLen:     7,
	CmdDequeue:             11,
	CmdOverwriteSegLenMove: 12,
	CmdOverwriteSegMove:    12,
}

// Microprogram returns the pointer-memory schedule of c.
func Microprogram(c Command) []MicroOp {
	mp, ok := microprograms[c]
	if !ok {
		panic(fmt.Sprintf("core: no microprogram for %v", c))
	}
	out := make([]MicroOp, len(mp))
	copy(out, mp)
	return out
}

// Cycles returns the execution latency of c in MMS clock cycles — the
// schedule length of its micro-program (Table 4).
func (c Command) Cycles() int {
	total := 0
	for _, op := range microprograms[c] {
		total += op.Cycles
	}
	return total
}

// PaperCycles returns the latency published in Table 4 for cross-checking.
func (c Command) PaperCycles() int { return paperLatency[c] }

// TouchesData reports whether the command moves segment data through the
// DMC (Delete and Overwrite_Segment_length and Move are pointer-only).
func (c Command) TouchesData() bool {
	switch c {
	case CmdDelete, CmdOverwriteSegLen, CmdMove, CmdOverwriteSegLenMove:
		return false
	default:
		return true
	}
}

// IsWrite reports whether the command's data access writes to the data
// memory (as opposed to reading it).
func (c Command) IsWrite() bool {
	switch c {
	case CmdEnqueue, CmdOverwrite, CmdOverwriteSegMove:
		return true
	default:
		return false
	}
}
