package core

import (
	"bytes"
	"errors"
	"testing"

	"npqm/internal/queue"
)

func newTestMMS(t *testing.T) *MMS {
	t.Helper()
	m, err := New(Config{NumQueues: 16, NumSegments: 64, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.NumQueues != queue.DefaultNumQueues {
		t.Fatalf("queues = %d", cfg.NumQueues)
	}
	if cfg.Ports != 4 || cfg.FIFODepth != 2 || cfg.DataBanks != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestDoFunctionalRoundTrip(t *testing.T) {
	m := newTestMMS(t)
	// Enqueue two segments of a packet on flow 3.
	r1, err := m.Do(Request{Cmd: CmdEnqueue, Queue: 3, Payload: []byte{1, 2}, EOP: false})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecCycles != 10 {
		t.Fatalf("enqueue cycles = %d", r1.ExecCycles)
	}
	if _, err := m.Do(Request{Cmd: CmdEnqueue, Queue: 3, Payload: []byte{3}, EOP: true}); err != nil {
		t.Fatal(err)
	}
	// Read head non-destructively.
	rr, err := m.Do(Request{Cmd: CmdRead, Queue: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rr.Payload, []byte{1, 2}) {
		t.Fatalf("read payload = %v", rr.Payload)
	}
	// Overwrite the head.
	if _, err := m.Do(Request{Cmd: CmdOverwrite, Queue: 3, Payload: []byte{9, 9}}); err != nil {
		t.Fatal(err)
	}
	// Move the packet to flow 5.
	mv, err := m.Do(Request{Cmd: CmdMove, Queue: 3, Dest: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mv.Moved != 2 {
		t.Fatalf("moved = %d", mv.Moved)
	}
	// Dequeue both segments from flow 5.
	d1, err := m.Do(Request{Cmd: CmdDequeue, Queue: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Payload, []byte{9, 9}) || d1.ExecCycles != 11 {
		t.Fatalf("dequeue = %+v", d1)
	}
	d2, err := m.Do(Request{Cmd: CmdDequeue, Queue: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Info.EOP {
		t.Fatal("EOP lost")
	}
	cmds, cycles := m.DQM.Executed()
	if cmds != 7 {
		t.Fatalf("executed = %d", cmds)
	}
	if cycles != 10+10+10+10+11+11+11 {
		t.Fatalf("cycles = %d", cycles)
	}
	if err := m.Queues().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoCombinedCommands(t *testing.T) {
	m := newTestMMS(t)
	m.Do(Request{Cmd: CmdEnqueue, Queue: 1, Payload: []byte{1, 2, 3, 4}, EOP: true})
	r, err := m.Do(Request{Cmd: CmdOverwriteSegLenMove, Queue: 1, Dest: 2, Length: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Moved != 1 || r.ExecCycles != 12 {
		t.Fatalf("resp = %+v", r)
	}
	info, _, _ := m.Queues().ReadHead(2)
	if info.Len != 2 {
		t.Fatalf("len = %d", info.Len)
	}
	if _, err := m.Do(Request{Cmd: CmdOverwriteSegMove, Queue: 2, Dest: 3, Payload: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	d, err := m.Do(Request{Cmd: CmdDequeue, Queue: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, []byte{7}) {
		t.Fatalf("payload = %v", d.Payload)
	}
}

func TestDoDeleteFamily(t *testing.T) {
	m := newTestMMS(t)
	m.Do(Request{Cmd: CmdEnqueue, Queue: 0, Payload: []byte{1}, EOP: true})
	if _, err := m.Do(Request{Cmd: CmdDelete, Queue: 0}); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Queues().Len(0); n != 0 {
		t.Fatalf("len = %d", n)
	}
	if _, err := m.Do(Request{Cmd: CmdDelete, Queue: 0}); err == nil {
		t.Fatal("delete on empty queue succeeded")
	}
}

func TestDoUnknownCommand(t *testing.T) {
	m := newTestMMS(t)
	if _, err := m.Do(Request{Cmd: Command(42)}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestDoErrorsPropagate(t *testing.T) {
	m := newTestMMS(t)
	if _, err := m.Do(Request{Cmd: CmdDequeue, Queue: 0}); !errors.Is(err, queue.ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
	// Errors must not count as executed commands.
	if n, _ := m.DQM.Executed(); n != 0 {
		t.Fatalf("executed = %d", n)
	}
}

func TestSegmentationReassembly(t *testing.T) {
	m := newTestMMS(t)
	data := bytes.Repeat([]byte{0xab}, 3*queue.SegmentBytes+7)
	n, err := m.Seg.Push(9, data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("segments = %d", n)
	}
	got, segs, err := m.Reasm.Pop(9)
	if err != nil {
		t.Fatal(err)
	}
	if segs != 4 || !bytes.Equal(got, data) {
		t.Fatal("reassembly mismatch")
	}
	p, s := m.Seg.Stats()
	if p != 1 || s != 4 {
		t.Fatalf("seg stats = %d,%d", p, s)
	}
	p, s = m.Reasm.Stats()
	if p != 1 || s != 4 {
		t.Fatalf("reasm stats = %d,%d", p, s)
	}
}

func TestSchedulerGrantPriority(t *testing.T) {
	s, err := NewInternalScheduler(3, 4, []int{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(0, Request{Cmd: CmdEnqueue, Queue: 0}, 0)
	s.Offer(1, Request{Cmd: CmdEnqueue, Queue: 1}, 0)
	s.Offer(2, Request{Cmd: CmdEnqueue, Queue: 2}, 0)
	req, port, _, ok := s.Grant()
	if !ok || port != 1 || req.Queue != 1 {
		t.Fatalf("grant = port %d queue %d", port, req.Queue)
	}
	// Equal priorities round-robin: next grant starts scanning after port 1.
	_, port2, _, _ := s.Grant()
	if port2 != 2 {
		t.Fatalf("second grant = port %d, want 2", port2)
	}
	_, port3, _, _ := s.Grant()
	if port3 != 0 {
		t.Fatalf("third grant = port %d, want 0", port3)
	}
	if _, _, _, ok := s.Grant(); ok {
		t.Fatal("grant on empty scheduler succeeded")
	}
}

func TestSchedulerBackpressure(t *testing.T) {
	s, _ := NewInternalScheduler(1, 2, nil)
	if !s.Offer(0, Request{}, 0) || !s.Offer(0, Request{}, 0) {
		t.Fatal("offers below depth rejected")
	}
	if s.Offer(0, Request{}, 0) {
		t.Fatal("offer above depth accepted — back-pressure missing")
	}
	if s.SpaceAvailable(0) != 0 {
		t.Fatalf("space = %d", s.SpaceAvailable(0))
	}
	s.Grant()
	if s.SpaceAvailable(0) != 1 {
		t.Fatalf("space after grant = %d", s.SpaceAvailable(0))
	}
	if s.PendingTotal() != 1 {
		t.Fatalf("pending = %d", s.PendingTotal())
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewInternalScheduler(0, 1, nil); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := NewInternalScheduler(2, 0, nil); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := NewInternalScheduler(2, 1, []int{1}); err == nil {
		t.Fatal("priority length mismatch accepted")
	}
}

func TestSchedulerFIFOTimestamps(t *testing.T) {
	s, _ := NewInternalScheduler(1, 4, nil)
	s.Offer(0, Request{Cmd: CmdEnqueue}, 100)
	s.Offer(0, Request{Cmd: CmdDequeue}, 200)
	_, _, arrived, _ := s.Grant()
	if arrived != 100 {
		t.Fatalf("arrived = %d", arrived)
	}
	_, _, arrived, _ = s.Grant()
	if arrived != 200 {
		t.Fatalf("arrived = %d", arrived)
	}
}

func TestPortClassString(t *testing.T) {
	if Ingress.String() != "in" || Egress.String() != "out" || CPUPort.String() != "cpu" {
		t.Fatal("PortClass.String broken")
	}
	if PortClass(9).String() == "" {
		t.Fatal("unknown class must render")
	}
}

func TestDMCBankMapping(t *testing.T) {
	d := NewDMC(8)
	if d.Banks() != 8 {
		t.Fatalf("banks = %d", d.Banks())
	}
	// Deterministic and in range.
	for s := int32(0); s < 1000; s++ {
		b := d.BankOf(s)
		if b < 0 || b >= 8 {
			t.Fatalf("bank %d out of range", b)
		}
		if b != d.BankOf(s) {
			t.Fatal("BankOf not deterministic")
		}
	}
	if d.BankOf(-1) != 0 {
		t.Fatal("negative segment must map to bank 0")
	}
	// Roughly uniform.
	counts := make([]int, 8)
	for s := int32(0); s < 8000; s++ {
		counts[d.BankOf(s)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bank %d has %d of 8000 segments", b, c)
		}
	}
	// Sequential segments must not be conflict-free: roughly iid banks mean
	// a ~23%% chance of matching one of the previous two.
	conflicts := 0
	for s := int32(2); s < 10000; s++ {
		b := d.BankOf(s)
		if b == d.BankOf(s-1) || b == d.BankOf(s-2) {
			conflicts++
		}
	}
	rate := float64(conflicts) / 10000
	if rate < 0.15 || rate > 0.32 {
		t.Fatalf("sequential same-bank rate = %.3f, want ~0.23", rate)
	}
}

func TestDMCAccessTiming(t *testing.T) {
	d := NewDMC(4)
	// Find two segments on the same bank.
	var s1, s2 int32 = 0, -1
	for s := int32(1); s < 100; s++ {
		if d.BankOf(s) == d.BankOf(s1) {
			s2 = s
			break
		}
	}
	if s2 < 0 {
		t.Fatal("no same-bank pair found")
	}
	w1, t1 := d.Access(s1, 1000)
	if w1 != 0 || t1 != DataPathFixedHC {
		t.Fatalf("first access wait=%d total=%d", w1, t1)
	}
	w2, t2 := d.Access(s2, 1010)
	if w2 != (1000+BankBusyHC)-1010 {
		t.Fatalf("conflict wait = %d", w2)
	}
	if t2 != w2+DataPathFixedHC {
		t.Fatalf("total = %d", t2)
	}
	// After the busy window, no conflict.
	w3, _ := d.Access(s1, 1000+10*BankBusyHC)
	if w3 != 0 {
		t.Fatalf("late access wait = %d", w3)
	}
	acc, conf := d.Stats()
	if acc != 3 || conf != 1 {
		t.Fatalf("stats = %d accesses %d conflicts", acc, conf)
	}
}

func TestDMCPanicsOnZeroBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDMC(0)
}

func BenchmarkDoEnqueueDequeue(b *testing.B) {
	m, _ := New(Config{NumQueues: 64, NumSegments: 1024})
	payload := make([]byte, queue.SegmentBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queue.QueueID(i % 64)
		if _, err := m.Do(Request{Cmd: CmdEnqueue, Queue: q, Payload: payload, EOP: true}); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Do(Request{Cmd: CmdDequeue, Queue: q}); err != nil {
			b.Fatal(err)
		}
	}
}
