package core

import "fmt"

// PortClass describes the role of an MMS port (Figure 2 shows IN, OUT and
// CPU interfaces; the reference configuration uses two ingress and two
// egress ports, matching the four-port DDR analysis of Section 3).
type PortClass int

const (
	// Ingress ports submit Enqueue-side commands (data entering the MMS).
	Ingress PortClass = iota
	// Egress ports submit Dequeue-side commands (data leaving the MMS).
	Egress
	// CPUPort submits arbitrary manipulation commands from processing cores.
	CPUPort
)

// String implements fmt.Stringer.
func (p PortClass) String() string {
	switch p {
	case Ingress:
		return "in"
	case Egress:
		return "out"
	case CPUPort:
		return "cpu"
	default:
		return fmt.Sprintf("port-class(%d)", int(p))
	}
}

// pendingCmd is a command waiting in a port FIFO.
type pendingCmd struct {
	req     Request
	arrived int64 // half-cycle timestamp of FIFO entry
}

// InternalScheduler is the MMS block that "forwards the incoming commands
// from the various ports to the DQM giving different service priorities to
// each port". Commands wait in one bounded FIFO per port ("MMS keeps
// incoming commands in FIFOs (one per port) so as to smooth the bursts of
// commands that may arrive simultaneously"); the scheduler grants the
// highest-priority non-empty FIFO, breaking ties round-robin.
type InternalScheduler struct {
	fifos    [][]pendingCmd
	depth    int
	priority []int // higher value = served first; equal values round-robin
	rr       int
}

// NewInternalScheduler creates a scheduler with the given per-port FIFO
// depth (commands) and optional priorities (nil means all equal).
func NewInternalScheduler(ports, depth int, priority []int) (*InternalScheduler, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("core: ports must be positive, got %d", ports)
	}
	if depth <= 0 {
		return nil, fmt.Errorf("core: FIFO depth must be positive, got %d", depth)
	}
	if priority == nil {
		priority = make([]int, ports)
	}
	if len(priority) != ports {
		return nil, fmt.Errorf("core: %d priorities for %d ports", len(priority), ports)
	}
	pr := make([]int, ports)
	copy(pr, priority)
	return &InternalScheduler{
		fifos:    make([][]pendingCmd, ports),
		depth:    depth,
		priority: pr,
	}, nil
}

// Ports returns the port count.
func (s *InternalScheduler) Ports() int { return len(s.fifos) }

// Depth returns the per-port FIFO capacity.
func (s *InternalScheduler) Depth() int { return s.depth }

// SpaceAvailable returns the free FIFO slots of port p.
func (s *InternalScheduler) SpaceAvailable(p int) int {
	return s.depth - len(s.fifos[p])
}

// Offer appends a command to port p's FIFO at the given half-cycle time.
// It reports false when the FIFO is full — that is the MMS back-pressure
// signal of Figure 2.
func (s *InternalScheduler) Offer(p int, req Request, nowHC int64) bool {
	if len(s.fifos[p]) >= s.depth {
		return false
	}
	s.fifos[p] = append(s.fifos[p], pendingCmd{req: req, arrived: nowHC})
	return true
}

// PendingTotal returns the number of queued commands across all ports.
func (s *InternalScheduler) PendingTotal() int {
	n := 0
	for _, f := range s.fifos {
		n += len(f)
	}
	return n
}

// Grant selects the next command to execute: the non-empty FIFO with the
// highest priority, round-robin among equals. It removes the command and
// returns it with its port and FIFO-entry time. ok is false when all FIFOs
// are empty.
func (s *InternalScheduler) Grant() (req Request, port int, arrivedHC int64, ok bool) {
	best := -1
	bestPri := 0
	n := len(s.fifos)
	for scan := 0; scan < n; scan++ {
		p := (s.rr + scan) % n
		if len(s.fifos[p]) == 0 {
			continue
		}
		if best == -1 || s.priority[p] > bestPri {
			best, bestPri = p, s.priority[p]
		}
	}
	if best == -1 {
		return Request{}, 0, 0, false
	}
	cmd := s.fifos[best][0]
	s.fifos[best] = s.fifos[best][1:]
	s.rr = (best + 1) % n
	return cmd.req, best, cmd.arrived, true
}
