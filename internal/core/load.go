package core

import (
	"fmt"

	"npqm/internal/queue"
	"npqm/internal/sim"
	"npqm/internal/stats"
	"npqm/internal/xrand"
)

// LoadConfig parameterizes the Table 5 experiment: the MMS under a bursty
// four-port command load at a given aggregate throughput.
//
// The traffic model follows Section 6.1: commands arrive in bursts (one
// burst per packet: a P-segment packet contributes P back-to-back segment
// commands), the two ingress ports carry Enqueue commands and the two
// egress ports carry the matching Dequeue commands once the packet is fully
// queued. The per-port FIFOs are shallow and exert back-pressure on the
// interfaces (the BACKPRESSURE signal of Figure 2), so under overload the
// delay saturates instead of growing without bound.
type LoadConfig struct {
	// LoadGbps is the aggregate offered load (enqueue + dequeue traffic).
	LoadGbps float64
	// PacketSegments is the burst size in segments per packet (0 means 5,
	// i.e. 320-byte packets, which reproduces the paper's low-load FIFO
	// delay of ~20 cycles; see EXPERIMENTS.md for the calibration).
	PacketSegments int
	// MMS carries the structural configuration (ports, FIFO depth, banks).
	MMS Config
	// Seed drives all randomness (flow choice, arrival jitter).
	Seed uint64
	// WarmupCommands are executed before measurement starts (0 means 2000).
	WarmupCommands int
	// MeasureCommands are measured after warmup (0 means 20000).
	MeasureCommands int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.PacketSegments == 0 {
		c.PacketSegments = 5
	}
	if c.WarmupCommands == 0 {
		c.WarmupCommands = 2000
	}
	if c.MeasureCommands == 0 {
		c.MeasureCommands = 20000
	}
	c.MMS = c.MMS.withDefaults()
	return c
}

// LoadPoint is one row of Table 5: the delay decomposition of a command at
// a given load. Delays are in MMS clock cycles (125 MHz).
type LoadPoint struct {
	LoadGbps     float64 // offered aggregate load
	FIFODelay    float64 // mean wait from FIFO entry to DQM grant
	ExecDelay    float64 // mean DQM execution latency
	DataDelay    float64 // mean data-memory latency (incl. bank conflicts)
	TotalDelay   float64 // FIFODelay + ExecDelay + DataDelay
	AchievedGbps float64 // measured served throughput
	Served       uint64  // commands measured
	BankConflict float64 // fraction of data accesses that hit a busy bank
}

// segmentBits is the wire size of one operation's payload.
const segmentBits = queue.SegmentBytes * 8

// RunLoad simulates the MMS under the given load and returns the measured
// delay decomposition.
func RunLoad(cfg LoadConfig) (LoadPoint, error) {
	cfg = cfg.withDefaults()
	if cfg.LoadGbps <= 0 {
		return LoadPoint{}, fmt.Errorf("core: LoadGbps must be positive, got %v", cfg.LoadGbps)
	}
	if cfg.MMS.Ports < 4 {
		return LoadPoint{}, fmt.Errorf("core: load simulation needs 4 ports, have %d", cfg.MMS.Ports)
	}
	m, err := New(cfg.MMS)
	if err != nil {
		return LoadPoint{}, err
	}
	rng := xrand.New(cfg.Seed)

	// Ingress packet rate: half the load is enqueue traffic, split over two
	// ingress ports; the matching dequeues mirror it on the egress ports.
	bitsPerPacket := float64(cfg.PacketSegments) * segmentBits
	ingressGbps := cfg.LoadGbps / 2
	packetsPerSecond := ingressGbps * 1e9 / bitsPerPacket
	// Half-cycles between packets across both ingress ports combined.
	hcPerSecond := float64(ClockMHz) * 1e6 * HalfCyclesPerCycle
	meanGapHC := hcPerSecond / packetsPerSecond

	var (
		e            sim.Engine
		fifoW        stats.Welford
		execW        stats.Welford
		dataW        stats.Welford
		served       uint64
		target       = uint64(cfg.WarmupCommands + cfg.MeasureCommands)
		warmup       = uint64(cfg.WarmupCommands)
		backlog      = make([][]Request, cfg.MMS.Ports) // blocked by back-pressure
		serverBusy   bool
		conflictHits uint64
		dataAccesses uint64
		measStartHC  int64
		measEndHC    int64
	)

	payload := make([]byte, queue.SegmentBytes)

	// tryFill moves blocked commands into the port FIFO while space lasts.
	tryFill := func(p int, now sim.Time) {
		for len(backlog[p]) > 0 && m.Scheduler.Offer(p, backlog[p][0], int64(now)) {
			backlog[p] = backlog[p][1:]
		}
	}

	var serve func(now sim.Time)
	serve = func(now sim.Time) {
		if serverBusy || served >= target {
			return
		}
		req, port, arrived, ok := m.Scheduler.Grant()
		if !ok {
			return
		}
		serverBusy = true
		// The granted command has left the FIFO: its slot is free for a
		// back-pressured command right away.
		tryFill(port, now)
		fifoHC := int64(now) - arrived
		execHC := int64(req.Cmd.Cycles() * HalfCyclesPerCycle)
		e.After(sim.Time(execHC), func(done sim.Time) {
			resp, err := m.DQM.Execute(req)
			if err != nil {
				// Under this traffic model dequeues follow completed
				// enqueues, so functional failures indicate a bug.
				panic(fmt.Sprintf("core: load sim command failed: %v", err))
			}
			var dataHC int64
			if req.Cmd.TouchesData() {
				// The data access starts right after the first pointer
				// access of the command (2 cycles into execution).
				start := int64(done) - execHC + 2*HalfCyclesPerCycle
				wait, total := m.DMC.Access(int32(resp.Seg), start)
				dataHC = total
				dataAccesses++
				if wait > 0 {
					conflictHits++
				}
			}
			served++
			if served > warmup && served <= target {
				if measStartHC == 0 {
					measStartHC = int64(done)
				}
				measEndHC = int64(done)
				fifoW.Add(float64(fifoHC) / HalfCyclesPerCycle)
				execW.Add(float64(execHC) / HalfCyclesPerCycle)
				dataW.Add(float64(dataHC) / HalfCyclesPerCycle)
			}
			if req.onDone != nil {
				req.onDone(int64(done))
			}
			// Completion frees the FIFO slot: admit blocked commands.
			tryFill(port, done)
			serverBusy = false
			serve(done)
		})
	}

	var egressToggle int
	spawnDequeues := func(flow queue.QueueID, now sim.Time) {
		port := 2 + egressToggle%2
		egressToggle++
		for i := 0; i < cfg.PacketSegments; i++ {
			backlog[port] = append(backlog[port], Request{Cmd: CmdDequeue, Queue: flow})
		}
		tryFill(port, now)
		serve(now)
	}

	var ingressToggle int
	var arrive func(now sim.Time)
	arrive = func(now sim.Time) {
		if served >= target {
			return
		}
		port := ingressToggle % 2
		ingressToggle++
		flow := queue.QueueID(rng.Intn(cfg.MMS.NumQueues))
		for i := 0; i < cfg.PacketSegments; i++ {
			last := i == cfg.PacketSegments-1
			req := Request{Cmd: CmdEnqueue, Queue: flow, Payload: payload, EOP: last}
			if last {
				// Once the packet is fully enqueued, the matching dequeue
				// burst follows after a jittered transit delay (the jitter
				// prevents the egress bursts from phase-locking with the
				// paced ingress). Hooking the actual completion keeps
				// dequeues strictly behind their enqueues at every load.
				transit := 100 * HalfCyclesPerCycle * (1 + rng.Float64())
				req.onDone = func(doneHC int64) {
					e.At(sim.Time(doneHC)+sim.Time(transit), func(t sim.Time) {
						spawnDequeues(flow, t)
					})
				}
			}
			backlog[port] = append(backlog[port], req)
		}
		tryFill(port, now)
		serve(now)
		// Packet arrivals are paced at the offered rate (the network
		// interfaces deliver at line rate), with a small jitter so the
		// four ports do not phase-lock: burstiness comes from the
		// multi-segment packets, not from the arrival process.
		gap := meanGapHC * (0.9 + 0.2*rng.Float64())
		e.After(sim.Time(gap)+1, arrive)
	}

	e.After(1, arrive)
	for served < target && e.Step() {
	}

	lp := LoadPoint{
		LoadGbps:   cfg.LoadGbps,
		FIFODelay:  fifoW.Mean(),
		ExecDelay:  execW.Mean(),
		DataDelay:  dataW.Mean(),
		TotalDelay: fifoW.Mean() + execW.Mean() + dataW.Mean(),
		Served:     uint64(fifoW.N()),
	}
	if dataAccesses > 0 {
		lp.BankConflict = float64(conflictHits) / float64(dataAccesses)
	}
	if measEndHC > measStartHC {
		elapsedNs := float64(measEndHC-measStartHC) * CycleNs / HalfCyclesPerCycle
		lp.AchievedGbps = float64(lp.Served) * segmentBits / elapsedNs
	}
	return lp, nil
}

// Table5Loads are the offered loads of Table 5, in Gbps.
var Table5Loads = []float64{6.14, 4.8, 4, 3.2, 1.6}

// RunTable5 produces all rows of Table 5 with the given seed.
func RunTable5(seed uint64) ([]LoadPoint, error) {
	out := make([]LoadPoint, 0, len(Table5Loads))
	for i, load := range Table5Loads {
		lp, err := RunLoad(LoadConfig{LoadGbps: load, Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}
