package core

// DMC models the Data Memory Controller: the MMS block that "performs the
// low level read and write segment commands to the data memory; it issues
// interleaved commands so as to minimize bank conflicts".
//
// Segments are striped across the DDR banks by segment index, so the
// free-list allocation order naturally interleaves banks; a conflict occurs
// only when two commands land on the same bank within the 160 ns precharge
// window. The DMC tracks per-bank availability and reports, for each data
// access, how long the access had to wait and when its data was delivered.
//
// All times are in half-cycles of the 125 MHz MMS clock (4 ns units).

// MMS clock constants.
const (
	// ClockMHz is the MMS clock of the paper's FPGA implementation.
	ClockMHz = 125
	// CycleNs is the clock period.
	CycleNs = 8
	// HalfCyclesPerCycle converts cycles to the model's half-cycle unit.
	HalfCyclesPerCycle = 2
)

// Data-path timing constants, in half-cycles (4 ns).
const (
	// BankBusyHC is the DDR bank precharge window (160 ns) in half-cycles.
	BankBusyHC = 40
	// DataPathFixedHC is the conflict-free latency of a segment access
	// through the DMC: command issue and synchronization into the DDR
	// clock domain, the 60 ns worst-case (read) DRAM access delay, the
	// 40 ns 64-byte burst transfer, and return synchronization. The total
	// is calibrated so that the low-load data delay matches Table 5's
	// 28 cycles; see EXPERIMENTS.md.
	DataPathFixedHC = 55 // 27.5 cycles = 220 ns
)

// DMC tracks banked data-memory availability.
type DMC struct {
	banks     []int64 // per bank: first half-cycle a new access may start
	conflicts uint64
	accesses  uint64
}

// NewDMC returns a DMC over the given number of DDR banks.
func NewDMC(banks int) *DMC {
	if banks <= 0 {
		panic("core: DMC needs at least one bank")
	}
	return &DMC{banks: make([]int64, banks)}
}

// Banks returns the configured bank count.
func (d *DMC) Banks() int { return len(d.banks) }

// BankOf maps a segment index to its DDR bank. The mapping hashes the
// segment index: with 32K interleaved flows the per-flow dequeue order is
// uncorrelated with the allocation order, so consecutive data accesses land
// on effectively random banks — exactly the "random bank access patterns"
// premise of the paper's Section 3 analysis. (A pure modulo stripe would be
// conflict-free only for the degenerate single-flow access order.)
func (d *DMC) BankOf(seg int32) int {
	if seg < 0 {
		return 0
	}
	// SplitMix64 finalizer: full avalanche, so sequential segment indices
	// map to independently-uniform banks (a weaker mixer leaves a cyclic
	// low-bit pattern that makes sequential allocations conflict-free,
	// which is not how per-flow traffic behaves).
	z := uint64(seg) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(d.banks)))
}

// Access performs one segment data access for the given segment starting no
// earlier than startHC. It returns the bank wait (half-cycles lost to a bank
// conflict) and the total data latency including the fixed path.
func (d *DMC) Access(seg int32, startHC int64) (waitHC, totalHC int64) {
	bank := d.BankOf(seg)
	d.accesses++
	wait := d.banks[bank] - startHC
	if wait < 0 {
		wait = 0
	} else if wait > 0 {
		d.conflicts++
	}
	begin := startHC + wait
	d.banks[bank] = begin + BankBusyHC
	return wait, wait + DataPathFixedHC
}

// Stats returns the cumulative access and conflict counts.
func (d *DMC) Stats() (accesses, conflicts uint64) { return d.accesses, d.conflicts }
