package core

import (
	"strings"
	"testing"
)

// TestTable4Latencies: every command's micro-program schedule length must
// equal the latency published in Table 4.
func TestTable4Latencies(t *testing.T) {
	want := map[Command]int{
		CmdEnqueue:             10,
		CmdRead:                10,
		CmdOverwrite:           10,
		CmdMove:                11,
		CmdDelete:              7,
		CmdOverwriteSegLen:     7,
		CmdDequeue:             11,
		CmdOverwriteSegLenMove: 12,
		CmdOverwriteSegMove:    12,
	}
	for cmd, cycles := range want {
		if got := cmd.Cycles(); got != cycles {
			t.Errorf("%v: micro-program schedules %d cycles, Table 4 says %d", cmd, got, cycles)
		}
		if got := cmd.PaperCycles(); got != cycles {
			t.Errorf("%v: PaperCycles = %d, want %d", cmd, got, cycles)
		}
	}
	if len(Commands()) != len(want) {
		t.Fatalf("command set has %d entries, Table 4 has %d", len(Commands()), len(want))
	}
}

func TestTable4Helper(t *testing.T) {
	tbl := Table4()
	if len(tbl) != len(Commands()) {
		t.Fatalf("Table4 has %d rows", len(tbl))
	}
	for cmd, cycles := range tbl {
		if cycles != cmd.PaperCycles() {
			t.Errorf("%v: %d != %d", cmd, cycles, cmd.PaperCycles())
		}
	}
}

func TestMicroprogramStructure(t *testing.T) {
	for _, cmd := range Commands() {
		mp := Microprogram(cmd)
		if len(mp) == 0 {
			t.Fatalf("%v: empty micro-program", cmd)
		}
		// The first step must produce the data-memory address (Section 6.1:
		// the data access starts right after the first pointer access).
		if mp[0].Cycles != 2 {
			t.Errorf("%v: first step is %q (%d cycles), want a 2-cycle pointer read",
				cmd, mp[0].Name, mp[0].Cycles)
		}
		for _, op := range mp {
			if op.Cycles < 0 || op.Cycles > 2 {
				t.Errorf("%v: step %q has impossible cost %d", cmd, op.Name, op.Cycles)
			}
			if op.Name == "" {
				t.Errorf("%v: unnamed step", cmd)
			}
		}
	}
}

func TestMicroprogramIsCopy(t *testing.T) {
	a := Microprogram(CmdEnqueue)
	a[0].Cycles = 99
	b := Microprogram(CmdEnqueue)
	if b[0].Cycles == 99 {
		t.Fatal("Microprogram exposes internal state")
	}
}

func TestCommandStrings(t *testing.T) {
	for _, cmd := range Commands() {
		s := cmd.String()
		if s == "" || strings.HasPrefix(s, "command(") {
			t.Errorf("command %d has no name", int(cmd))
		}
	}
	if Command(99).String() != "command(99)" {
		t.Fatal("unknown command must render numerically")
	}
	// Spot-check the paper's exact names.
	if CmdOverwriteSegLenMove.String() != "Overwrite_Segment_length&Move" {
		t.Fatalf("name = %q", CmdOverwriteSegLenMove)
	}
}

func TestTouchesDataAndIsWrite(t *testing.T) {
	if CmdDelete.TouchesData() || CmdOverwriteSegLen.TouchesData() || CmdMove.TouchesData() {
		t.Fatal("pointer-only commands must not touch data")
	}
	if !CmdEnqueue.TouchesData() || !CmdDequeue.TouchesData() || !CmdRead.TouchesData() {
		t.Fatal("data commands must touch data")
	}
	if !CmdEnqueue.IsWrite() || CmdDequeue.IsWrite() || CmdRead.IsWrite() {
		t.Fatal("IsWrite misclassifies")
	}
}

// TestHeadlineThroughput reproduces Section 6.1's arithmetic: the
// enqueue+dequeue mix averages 10.5 cycles -> 84 ns -> ~12 Mops/s ->
// ~6.1 Gbps of 64-byte segments (the paper rounds to 6.145).
func TestHeadlineThroughput(t *testing.T) {
	mean := float64(CmdEnqueue.Cycles()+CmdDequeue.Cycles()) / 2
	if mean != 10.5 {
		t.Fatalf("forwarding mix mean = %v cycles, want 10.5", mean)
	}
	ops := OpsPerSecond(mean)
	if ops < 11.8e6 || ops > 12.1e6 {
		t.Fatalf("ops/s = %v, want ~12M", ops)
	}
	gbps := HeadlineThroughputGbps()
	if gbps < 5.9 || gbps > 6.2 {
		t.Fatalf("headline throughput = %v Gbps, paper says 6.145", gbps)
	}
}

func TestOpsPerSecondPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OpsPerSecond(0)
}
