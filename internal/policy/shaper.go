package policy

// Shaper configuration — the egress-side counterpart of the admission
// policies. A port's transmit path drains through a token bucket: the
// bucket earns RateBytesPerSec of credit per second up to BurstBytes, and
// a packet is transmitted only when the bucket is non-negative (the send
// itself may overdraw by less than one packet, the classic byte-accurate
// formulation). This file holds only the configuration vocabulary; the
// bucket lives next to the port workers in internal/engine.

import "fmt"

// MaxShaperRate bounds RateBytesPerSec to a sane ceiling (one TB/s, far
// beyond any modeled line rate). The token arithmetic itself switches
// from exact integer math to float64 well below this bound, so no rate
// the validator admits can overflow a refill computation.
const MaxShaperRate = int64(1) << 40

// ShaperConfig parameterizes one port's token-bucket shaper. The zero
// value is unshaped (the port drains as fast as its sink accepts).
type ShaperConfig struct {
	// RateBytesPerSec is the sustained drain rate in bytes per second.
	// 0 disables shaping.
	RateBytesPerSec int64
	// BurstBytes is the bucket depth: the largest credit the port can
	// bank while idle, i.e. the largest back-to-back burst it may emit at
	// line speed. 0 defaults to 10ms worth of rate, floored at 64KiB so
	// jumbo frames cannot stall a slow port.
	BurstBytes int64
}

// Enabled reports whether the configuration actually shapes.
func (c ShaperConfig) Enabled() bool { return c.RateBytesPerSec > 0 }

// WithDefaults fills zero-valued fields (no-op when unshaped).
func (c ShaperConfig) WithDefaults() ShaperConfig {
	if c.RateBytesPerSec > 0 && c.BurstBytes == 0 {
		c.BurstBytes = c.RateBytesPerSec / 100 // 10ms of credit
		if c.BurstBytes < 64*1024 {
			c.BurstBytes = 64 * 1024
		}
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c ShaperConfig) Validate() error {
	if c.RateBytesPerSec < 0 {
		return fmt.Errorf("policy: negative shaper rate %d", c.RateBytesPerSec)
	}
	if c.RateBytesPerSec > MaxShaperRate {
		return fmt.Errorf("policy: shaper rate %d exceeds max %d", c.RateBytesPerSec, MaxShaperRate)
	}
	if c.BurstBytes < 0 {
		return fmt.Errorf("policy: negative shaper burst %d", c.BurstBytes)
	}
	if c.RateBytesPerSec == 0 && c.BurstBytes != 0 {
		return fmt.Errorf("policy: shaper burst %d without a rate", c.BurstBytes)
	}
	return nil
}
