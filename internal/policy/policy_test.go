package policy

import "testing"

func TestParseKinds(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"none", KindNone}, {"", KindNone},
		{"tail", KindTailDrop}, {"taildrop", KindTailDrop},
		{"lqd", KindLQD}, {"red", KindRED},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != "" && ParseKindMust(t, got.String()) != got {
			t.Errorf("round trip failed for %v", got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
	for _, tc := range []struct {
		in   string
		want EgressKind
	}{
		{"rr", EgressRR}, {"", EgressRR}, {"prio", EgressPrio},
		{"priority", EgressPrio}, {"wrr", EgressWRR}, {"drr", EgressDRR},
	} {
		got, err := ParseEgressKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEgressKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseEgressKind("bogus"); err == nil {
		t.Error("ParseEgressKind(bogus) should fail")
	}
}

func ParseKindMust(t *testing.T, s string) Kind {
	t.Helper()
	k, err := ParseKind(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Kind: KindTailDrop, Limit: -1},
		{Kind: KindRED, MinTh: 0.9, MaxTh: 0.5},
		{Kind: KindRED, MinTh: 0.5, MaxTh: 1.5},
		{Kind: KindRED, MaxP: 2},
		{Kind: KindRED, Weight: -0.5},
		{Kind: 200},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted %+v", i, cfg)
		}
	}
	good := []Config{
		{}, {Kind: KindTailDrop, Limit: 16}, {Kind: KindLQD},
		{Kind: KindRED}, {Kind: KindRED, MinTh: 0.1, MaxTh: 0.9, MaxP: 0.5, Weight: 0.01},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("case %d: Validate() rejected %+v: %v", i, cfg, err)
		}
		if _, err := New(cfg); err != nil {
			t.Errorf("case %d: New failed: %v", i, err)
		}
	}
	if adm, err := New(Config{}); err != nil || adm != nil {
		t.Errorf("New(KindNone) = %v, %v; want nil, nil", adm, err)
	}
	if err := (EgressConfig{Kind: 50}).Validate(); err == nil {
		t.Error("EgressConfig with bogus kind should fail validation")
	}
}

func TestTailDrop(t *testing.T) {
	adm, err := New(Config{Kind: KindTailDrop, Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	pool := PoolState{Free: 100, Capacity: 128}
	if v := adm.Admit(1, 4, QueueState{Segments: 0}, pool); v != Accept {
		t.Errorf("under limit: got %v, want accept", v)
	}
	if v := adm.Admit(1, 4, QueueState{Segments: 5}, pool); v != Drop {
		t.Errorf("over per-queue limit: got %v, want drop", v)
	}
	if v := adm.Admit(1, 4, QueueState{Segments: 0}, PoolState{Free: 3, Capacity: 128}); v != Drop {
		t.Errorf("over pool: got %v, want drop", v)
	}
	// Limit 0 = pool-limited only.
	unlimited, _ := New(Config{Kind: KindTailDrop})
	if v := unlimited.Admit(1, 4, QueueState{Segments: 1000}, pool); v != Accept {
		t.Errorf("uncapped tail-drop: got %v, want accept", v)
	}
}

func TestLQD(t *testing.T) {
	adm, err := New(Config{Kind: KindLQD})
	if err != nil {
		t.Fatal(err)
	}
	if v := adm.Admit(1, 4, QueueState{}, PoolState{Free: 10, Capacity: 64}); v != Accept {
		t.Errorf("room available: got %v, want accept", v)
	}
	if v := adm.Admit(1, 4, QueueState{}, PoolState{Free: 2, Capacity: 64}); v != PushOut {
		t.Errorf("pool full: got %v, want push-out", v)
	}
	if v := adm.Admit(1, 100, QueueState{}, PoolState{Free: 2, Capacity: 64}); v != Drop {
		t.Errorf("larger than the pool: got %v, want drop", v)
	}
}

func TestREDRegimes(t *testing.T) {
	newRED := func() Admission {
		adm, err := New(Config{Kind: KindRED, MinTh: 0.2, MaxTh: 0.6, MaxP: 0.5, Weight: 0.2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return adm
	}

	// Idle pool: the average stays below MinTh, every arrival accepted.
	adm := newRED()
	for i := 0; i < 1000; i++ {
		if v := adm.Admit(1, 1, QueueState{}, PoolState{Free: 128, Capacity: 128}); v != Accept {
			t.Fatalf("idle pool arrival %d: got %v, want accept", i, v)
		}
	}

	// Saturated pool: the average converges above MaxTh, everything drops.
	adm = newRED()
	drops := 0
	for i := 0; i < 1000; i++ {
		if v := adm.Admit(1, 1, QueueState{}, PoolState{Free: 13, Capacity: 128}); v == Drop {
			drops++
		}
	}
	if drops < 900 {
		t.Errorf("saturated pool: only %d/1000 dropped", drops)
	}

	// Mid-band occupancy: some but not all arrivals drop.
	adm = newRED()
	drops = 0
	for i := 0; i < 5000; i++ {
		if v := adm.Admit(1, 1, QueueState{}, PoolState{Free: 77, Capacity: 128}); v == Drop {
			drops++
		}
	}
	if drops == 0 || drops == 5000 {
		t.Errorf("mid-band occupancy: %d/5000 dropped, want partial dropping", drops)
	}

	// Physically exhausted pool drops regardless of the average.
	adm = newRED()
	if v := adm.Admit(1, 4, QueueState{}, PoolState{Free: 1, Capacity: 128}); v != Drop {
		t.Errorf("exhausted pool: got %v, want drop", v)
	}
}

func TestREDDeterminism(t *testing.T) {
	run := func() []Verdict {
		adm, err := New(Config{Kind: KindRED, Seed: 7, MinTh: 0.1, MaxTh: 0.9, MaxP: 0.3, Weight: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Verdict, 0, 2000)
		for i := 0; i < 2000; i++ {
			out = append(out, adm.Admit(uint32(i), 1, QueueState{}, PoolState{Free: 40, Capacity: 128}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RED verdicts diverge at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVerdictAndKindStrings(t *testing.T) {
	if Accept.String() != "accept" || Drop.String() != "drop" || PushOut.String() != "push-out" {
		t.Error("verdict strings wrong")
	}
	for _, k := range []Kind{KindNone, KindTailDrop, KindLQD, KindRED} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	names := map[string]bool{}
	for _, adm := range []Config{{Kind: KindTailDrop}, {Kind: KindLQD}, {Kind: KindRED}} {
		a, err := New(adm)
		if err != nil {
			t.Fatal(err)
		}
		names[a.Name()] = true
	}
	for _, want := range []string{"tail", "lqd", "red"} {
		if !names[want] {
			t.Errorf("missing policy name %q", want)
		}
	}
}

func TestShaperConfigValidation(t *testing.T) {
	good := []ShaperConfig{
		{}, // unshaped
		{RateBytesPerSec: 125_000_000},
		{RateBytesPerSec: 1 << 20, BurstBytes: 1024},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("valid shaper config %d rejected: %v", i, err)
		}
	}
	bad := []ShaperConfig{
		{RateBytesPerSec: -1},
		{RateBytesPerSec: MaxShaperRate + 1},
		{BurstBytes: -1, RateBytesPerSec: 100},
		{BurstBytes: 100}, // burst without rate
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid shaper config %d accepted: %+v", i, cfg)
		}
	}
	// Defaults: burst fills to 10ms of rate, floored at 64KiB.
	if got := (ShaperConfig{RateBytesPerSec: 125_000_000}).WithDefaults().BurstBytes; got != 1_250_000 {
		t.Errorf("default burst at 125MB/s = %d, want 1250000", got)
	}
	if got := (ShaperConfig{RateBytesPerSec: 1000}).WithDefaults().BurstBytes; got != 64*1024 {
		t.Errorf("default burst at 1KB/s = %d, want 65536 floor", got)
	}
	if (ShaperConfig{}).Enabled() {
		t.Error("zero shaper config reports enabled")
	}
	if !(ShaperConfig{RateBytesPerSec: 1}).Enabled() {
		t.Error("shaped config reports disabled")
	}
}
