// Package policy implements the pluggable buffer-management layer the
// paper's Section 1 motivates ("buffer and traffic management"): admission
// policies that decide the fate of an arriving packet given its queue's
// occupancy and the shared segment pool's pressure, and egress disciplines
// that decide which flow the integrated scheduler serves next.
//
// The admission side provides the three policies the shared-memory switch
// literature centers on for this hardware class:
//
//   - Tail-Drop: a per-queue segment cap plus the physical pool limit — the
//     baseline every AQM paper compares against;
//   - Longest Queue Drop (LQD): when the shared pool is exhausted the
//     arrival is admitted by pushing out the head packet of the longest
//     queue (Matsakis: LQD is 1.5-competitive for shared-memory switches);
//   - RED: random early detection over the pool occupancy — an EWMA average
//     with min/max thresholds and a linearly rising drop probability
//     (Floyd & Jacobson), using the uniform-spacing count correction.
//
// Admission instances are single-threaded state machines: the sharded
// engine builds one instance per shard and consults it under the shard
// lock, so policies may keep mutable state (RED's average, its PRNG)
// without any synchronization of their own.
package policy

import (
	"fmt"

	"npqm/internal/xrand"
)

// Verdict is an admission decision for one arriving packet.
type Verdict uint8

const (
	// Accept admits the packet as-is.
	Accept Verdict = iota
	// Drop refuses the arrival; the packet never enters the buffer.
	Drop
	// PushOut admits the arrival after evicting packets from the longest
	// queue until the pool has room (shared-buffer push-out).
	PushOut
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	case PushOut:
		return "push-out"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// QueueState is what an admission policy sees about the target queue.
type QueueState struct {
	// Segments is the queue's current occupancy in linked segments.
	Segments int
}

// PoolState describes the shared segment pool the queue draws from (one
// shard's pool in the sharded engine).
type PoolState struct {
	// Free is the number of unallocated segments.
	Free int
	// Capacity is the total pool size in segments.
	Capacity int
}

// Admission decides accept/drop/push-out for each arriving packet.
// Implementations may keep mutable state and are not safe for concurrent
// use; callers serialize access (the engine holds the shard lock).
type Admission interface {
	// Admit decides the fate of a packet needing need segments that is
	// arriving on flow, given the flow's queue state and the pool state.
	Admit(flow uint32, need int, q QueueState, pool PoolState) Verdict
	// Name returns the policy's short name ("tail", "lqd", "red", ...).
	Name() string
}

// Kind selects an admission policy family.
type Kind uint8

const (
	// KindNone disables policy admission: arrivals are only bounded by the
	// physical pool (and any per-flow segment caps set on the manager).
	KindNone Kind = iota
	// KindTailDrop drops arrivals beyond a per-queue segment cap or when
	// the pool is exhausted.
	KindTailDrop
	// KindLQD pushes out the longest queue's head packet to admit arrivals
	// when the pool is exhausted.
	KindLQD
	// KindRED drops arrivals probabilistically as the EWMA pool occupancy
	// rises between a min and max threshold.
	KindRED
)

// String returns the kind's flag spelling.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTailDrop:
		return "tail"
	case KindLQD:
		return "lqd"
	case KindRED:
		return "red"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind parses a -policy flag value.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none", "":
		return KindNone, nil
	case "tail", "taildrop":
		return KindTailDrop, nil
	case "lqd":
		return KindLQD, nil
	case "red":
		return KindRED, nil
	}
	return KindNone, fmt.Errorf("policy: unknown admission policy %q (want none, tail, lqd, red)", s)
}

// Config selects and parameterizes an admission policy. The zero value is
// KindNone. Threshold fields are fractions of pool capacity so one Config
// works across shards of different pool sizes.
type Config struct {
	Kind Kind
	// Limit is the Tail-Drop per-queue segment cap (0 = pool-limited only).
	Limit int
	// MinTh and MaxTh are the RED thresholds as fractions of pool capacity
	// in (0, 1]; defaults 0.25 and 0.75.
	MinTh, MaxTh float64
	// MaxP is the RED drop probability at MaxTh; default 0.1.
	MaxP float64
	// Weight is the RED EWMA weight w_q; default 0.002.
	Weight float64
	// Seed seeds RED's deterministic PRNG; default 1.
	Seed uint64
}

// withDefaults fills zero-valued RED parameters.
func (c Config) withDefaults() Config {
	if c.MinTh == 0 {
		c.MinTh = 0.25
	}
	if c.MaxTh == 0 {
		c.MaxTh = 0.75
	}
	if c.MaxP == 0 {
		c.MaxP = 0.1
	}
	if c.Weight == 0 {
		c.Weight = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Kind {
	case KindNone, KindLQD:
		return nil
	case KindTailDrop:
		if c.Limit < 0 {
			return fmt.Errorf("policy: negative tail-drop limit %d", c.Limit)
		}
		return nil
	case KindRED:
		if c.MinTh <= 0 || c.MaxTh > 1 || c.MinTh >= c.MaxTh {
			return fmt.Errorf("policy: RED thresholds need 0 < MinTh < MaxTh <= 1, got %g and %g", c.MinTh, c.MaxTh)
		}
		if c.MaxP <= 0 || c.MaxP > 1 {
			return fmt.Errorf("policy: RED MaxP must be in (0, 1], got %g", c.MaxP)
		}
		if c.Weight <= 0 || c.Weight > 1 {
			return fmt.Errorf("policy: RED Weight must be in (0, 1], got %g", c.Weight)
		}
		return nil
	}
	return fmt.Errorf("policy: unknown kind %d", c.Kind)
}

// New builds one admission instance from cfg. KindNone returns (nil, nil):
// a nil Admission means "accept everything the pool can hold". Callers that
// shard the buffer build one instance per shard so state stays private.
func New(cfg Config) (Admission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	switch cfg.Kind {
	case KindNone:
		return nil, nil
	case KindTailDrop:
		return &tailDrop{limit: cfg.Limit}, nil
	case KindLQD:
		return &lqd{}, nil
	case KindRED:
		return &red{
			minTh: cfg.MinTh, maxTh: cfg.MaxTh,
			maxP: cfg.MaxP, wq: cfg.Weight,
			count: -1,
			rng:   xrand.New(cfg.Seed),
		}, nil
	}
	return nil, fmt.Errorf("policy: unknown kind %d", cfg.Kind)
}

// tailDrop drops arrivals beyond a per-queue cap or the physical pool.
type tailDrop struct {
	limit int
}

func (t *tailDrop) Admit(_ uint32, need int, q QueueState, pool PoolState) Verdict {
	if need > pool.Free {
		return Drop
	}
	if t.limit > 0 && q.Segments+need > t.limit {
		return Drop
	}
	return Accept
}

func (t *tailDrop) Name() string { return "tail" }

// lqd admits every arrival the pool can ever hold, evicting from the
// longest queue when the pool is currently exhausted. Push-out keeps the
// buffer full of the packets a fair policy would have kept: the longest
// queue is, by the competitive argument, the one hoarding more than its
// share.
type lqd struct{}

func (l *lqd) Admit(_ uint32, need int, _ QueueState, pool PoolState) Verdict {
	if need > pool.Capacity {
		return Drop // can never fit, even with every other queue emptied
	}
	if need <= pool.Free {
		return Accept
	}
	return PushOut
}

func (l *lqd) Name() string { return "lqd" }

// red is Random Early Detection over pool occupancy: the average occupancy
// fraction is an EWMA updated on every arrival; arrivals are dropped with
// probability rising linearly from 0 at minTh to maxP at maxTh (and always
// above maxTh), using the count correction that spaces drops uniformly.
type red struct {
	minTh, maxTh float64
	maxP         float64
	wq           float64

	avg   float64 // EWMA of occupied fraction
	count int     // arrivals since the last drop; -1 below minTh
	rng   *xrand.Source
}

func (r *red) Admit(_ uint32, need int, _ QueueState, pool PoolState) Verdict {
	occ := 0.0
	if pool.Capacity > 0 {
		occ = float64(pool.Capacity-pool.Free) / float64(pool.Capacity)
	}
	r.avg = (1-r.wq)*r.avg + r.wq*occ
	if need > pool.Free {
		return Drop // physical limit, regardless of the average
	}
	switch {
	case r.avg < r.minTh:
		r.count = -1
		return Accept
	case r.avg >= r.maxTh:
		r.count = 0
		return Drop
	}
	r.count++
	pb := r.maxP * (r.avg - r.minTh) / (r.maxTh - r.minTh)
	pa := pb
	if d := 1 - float64(r.count)*pb; d > 0 {
		pa = pb / d
	} else {
		pa = 1
	}
	if r.rng.Float64() < pa {
		r.count = 0
		return Drop
	}
	return Accept
}

func (r *red) Name() string { return "red" }
