package policy

// The egress side of the policy layer. The four service disciplines the
// example applications used to hand-roll around internal/sched — strict
// priority, round-robin, weighted round-robin, and deficit round-robin —
// move behind the engine: each shard keeps an active-queue bitmap and
// serves flows by one of these kinds in O(1) amortized per pick, instead
// of callers polling Occupancy over the whole flow space. This file holds
// only the configuration vocabulary; the pickers live next to the bitmap
// in internal/engine.
//
// Scope: a discipline arbitrates among the flows of one shard; the engine
// rotates the starting shard per batch so shards share egress bandwidth
// evenly. Global priority ordering or exact global weight ratios hold
// only when the competing flows live on the same shard (one shard, or
// flow IDs that hash together).

import "fmt"

// EgressKind selects the integrated egress scheduler's discipline.
type EgressKind uint8

const (
	// EgressRR serves active flows in cyclic flow-ID order (the default).
	EgressRR EgressKind = iota
	// EgressPrio always serves the lowest-numbered active flow: flow 0 is
	// the highest priority, as in 802.1p class selection.
	EgressPrio
	// EgressWRR serves each active flow weight(q) packets per visit.
	EgressWRR
	// EgressDRR gives each active flow weight(q)*QuantumBytes of byte
	// credit per visit and serves head packets the credit covers, making
	// weighted sharing fair for variable-length packets.
	EgressDRR
)

// String returns the kind's flag spelling.
func (k EgressKind) String() string {
	switch k {
	case EgressRR:
		return "rr"
	case EgressPrio:
		return "prio"
	case EgressWRR:
		return "wrr"
	case EgressDRR:
		return "drr"
	}
	return fmt.Sprintf("egress(%d)", uint8(k))
}

// ParseEgressKind parses an -egress flag value.
func ParseEgressKind(s string) (EgressKind, error) {
	switch s {
	case "rr", "":
		return EgressRR, nil
	case "prio", "priority":
		return EgressPrio, nil
	case "wrr":
		return EgressWRR, nil
	case "drr":
		return EgressDRR, nil
	}
	return EgressRR, fmt.Errorf("policy: unknown egress discipline %q (want rr, prio, wrr, drr)", s)
}

// EgressConfig parameterizes the integrated egress scheduler. The zero
// value is round-robin.
type EgressConfig struct {
	Kind EgressKind
	// DefaultWeight is the weight of flows with no explicit weight set
	// (WRR packets per visit, DRR quantum multiplier). Default 1.
	DefaultWeight int
	// QuantumBytes is the DRR byte quantum earned per weight unit per
	// visit. Default 512.
	QuantumBytes int
}

// WithDefaults fills zero-valued fields.
func (c EgressConfig) WithDefaults() EgressConfig {
	if c.DefaultWeight == 0 {
		c.DefaultWeight = 1
	}
	if c.QuantumBytes == 0 {
		c.QuantumBytes = 512
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c EgressConfig) Validate() error {
	c = c.WithDefaults()
	if c.Kind > EgressDRR {
		return fmt.Errorf("policy: unknown egress kind %d", c.Kind)
	}
	if c.DefaultWeight < 0 {
		return fmt.Errorf("policy: negative egress default weight %d", c.DefaultWeight)
	}
	if c.QuantumBytes < 0 {
		return fmt.Errorf("policy: negative egress quantum %d", c.QuantumBytes)
	}
	return nil
}
