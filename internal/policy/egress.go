package policy

// The egress side of the policy layer. The four service disciplines the
// example applications used to hand-roll around internal/sched — strict
// priority, round-robin, weighted round-robin, and deficit round-robin —
// move behind the engine: each shard keeps an active-queue bitmap and
// serves flows by one of these kinds in O(1) amortized per pick, instead
// of callers polling Occupancy over the whole flow space. This file holds
// only the configuration vocabulary; the pickers live next to the bitmap
// in internal/engine.
//
// Scope: a discipline arbitrates among the flows of one shard; the engine
// rotates the starting shard per batch so shards share egress bandwidth
// evenly. Global priority ordering or exact global weight ratios hold
// only when the competing flows live on the same shard (one shard, or
// flow IDs that hash together).

import "fmt"

// EgressKind selects the integrated egress scheduler's discipline.
type EgressKind uint8

const (
	// EgressRR serves active flows in cyclic flow-ID order (the default).
	EgressRR EgressKind = iota
	// EgressPrio always serves the lowest-numbered active flow: flow 0 is
	// the highest priority, as in 802.1p class selection.
	EgressPrio
	// EgressWRR serves each active flow weight(q) packets per visit.
	EgressWRR
	// EgressDRR gives each active flow weight(q)*QuantumBytes of byte
	// credit per visit and serves head packets the credit covers, making
	// weighted sharing fair for variable-length packets.
	EgressDRR
)

// String returns the kind's flag spelling.
func (k EgressKind) String() string {
	switch k {
	case EgressRR:
		return "rr"
	case EgressPrio:
		return "prio"
	case EgressWRR:
		return "wrr"
	case EgressDRR:
		return "drr"
	}
	return fmt.Sprintf("egress(%d)", uint8(k))
}

// ParseEgressKind parses an -egress flag value.
func ParseEgressKind(s string) (EgressKind, error) {
	switch s {
	case "rr", "":
		return EgressRR, nil
	case "prio", "priority":
		return EgressPrio, nil
	case "wrr":
		return EgressWRR, nil
	case "drr":
		return EgressDRR, nil
	}
	return EgressRR, fmt.Errorf("policy: unknown egress discipline %q (want rr, prio, wrr, drr)", s)
}

// MaxLevelUnits bounds a LevelSpec's unit count: per-level scheduling
// state is allocated per (shard, port) unit, so each tier's unit space
// is a small configuration constant (802.1p needs 8 classes), not a
// dynamic resource.
const MaxLevelUnits = 256

// MaxEgressClasses is the historical name for MaxLevelUnits, kept for
// callers that speak in classes.
const MaxEgressClasses = MaxLevelUnits

// The tier names a LevelSpec can carry, outermost first. The engine
// fixes the nesting order — tenants contain classes contain flows — so
// a configuration lists the tiers it wants and the order is implied.
const (
	// TierTenant is the outermost intermediate tier (SetFlowTenant
	// groups flows into tenants; every flow starts in tenant 0).
	TierTenant = "tenant"
	// TierClass is the inner intermediate tier (SetFlowClass groups
	// flows into classes; every flow starts in class 0).
	TierClass = "class"
)

// LevelSpec configures one intermediate scheduling level of the egress
// hierarchy.
type LevelSpec struct {
	// Tier names the level: TierTenant or TierClass. Each tier may
	// appear at most once; tenants always sit outside classes.
	Tier string
	// Kind is the level's discipline (default round-robin).
	Kind EgressKind
	// Units is the tier's unit count — tenants per engine, classes per
	// port (at most MaxLevelUnits). 0 or 1 means the tier is flat: it
	// adds no scheduling level. For the tenant tier, 0 defers to the
	// engine's Config.NumTenants.
	Units int
	// Weights are the per-unit weights for level WRR (packets per
	// visit) and DRR (quantum multiplier); entries beyond the slice,
	// and zero entries, default to 1. Reconfigurable at runtime with
	// SetClassWeight / SetTenantWeight.
	Weights []int
	// QuantumBytes is the DRR byte quantum per weight unit per visit at
	// this level (0 takes the flow-level QuantumBytes after its own
	// default).
	QuantumBytes int
}

// EgressConfig parameterizes the integrated egress scheduler. The zero
// value is flat round-robin (no intermediate levels).
//
// Levels turns the scheduler into a hierarchy: each listed tier with
// more than one unit adds a scheduling level above the flows, outermost
// first (tenant, then class), and Kind arbitrates among the flows of
// the winning innermost unit. The same four disciplines are available
// at every level through one implementation, so tenant-level WRR cannot
// drift from class- or flow-level WRR.
type EgressConfig struct {
	// Kind is the flow-level discipline (within the innermost picked
	// unit).
	Kind EgressKind
	// DefaultWeight is the weight of flows with no explicit weight set
	// (WRR packets per visit, DRR quantum multiplier). Default 1.
	DefaultWeight int
	// QuantumBytes is the DRR byte quantum earned per weight unit per
	// visit. Default 512.
	QuantumBytes int

	// Levels are the intermediate scheduling levels, one LevelSpec per
	// tier (nil or empty = flat). The unit counts are fixed at
	// construction; a later SetEgress with nil Levels leaves the
	// intermediate disciplines untouched, while a non-nil Levels must
	// list every active tier and replaces their disciplines.
	Levels []LevelSpec
}

// Level returns the spec for tier, or nil when the configuration does
// not mention it.
func (c *EgressConfig) Level(tier string) *LevelSpec {
	for i := range c.Levels {
		if c.Levels[i].Tier == tier {
			return &c.Levels[i]
		}
	}
	return nil
}

// WithLevel returns a copy of the configuration with spec inserted,
// replacing any existing spec for the same tier and keeping the tenant
// tier outermost.
func (c EgressConfig) WithLevel(spec LevelSpec) EgressConfig {
	out := make([]LevelSpec, 0, len(c.Levels)+1)
	for _, ls := range c.Levels {
		if ls.Tier != spec.Tier {
			out = append(out, ls)
		}
	}
	out = append(out, spec)
	// Fixed nesting order: tenant outside class. Two tiers, so one
	// swap suffices.
	for i := 1; i < len(out); i++ {
		if out[i].Tier == TierTenant && out[i-1].Tier == TierClass {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	c.Levels = out
	return c
}

// WithDefaults fills zero-valued fields. Levels is deep-copied before
// the per-level quantum defaults are filled, so the caller's slice is
// never mutated.
func (c EgressConfig) WithDefaults() EgressConfig {
	if c.DefaultWeight == 0 {
		c.DefaultWeight = 1
	}
	if c.QuantumBytes == 0 {
		c.QuantumBytes = 512
	}
	if len(c.Levels) > 0 {
		ls := make([]LevelSpec, len(c.Levels))
		copy(ls, c.Levels)
		for i := range ls {
			if ls[i].QuantumBytes == 0 {
				ls[i].QuantumBytes = c.QuantumBytes
			}
		}
		c.Levels = ls
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c EgressConfig) Validate() error {
	c = c.WithDefaults()
	if c.Kind > EgressDRR {
		return fmt.Errorf("policy: unknown egress kind %d", c.Kind)
	}
	if c.DefaultWeight < 0 {
		return fmt.Errorf("policy: negative egress default weight %d", c.DefaultWeight)
	}
	if c.QuantumBytes < 0 {
		return fmt.Errorf("policy: negative egress quantum %d", c.QuantumBytes)
	}
	seenClass := false
	seen := map[string]bool{}
	for _, ls := range c.Levels {
		switch ls.Tier {
		case TierTenant:
			if seenClass {
				return fmt.Errorf("policy: tenant level listed inside class level (tenants contain classes)")
			}
		case TierClass:
			seenClass = true
		default:
			return fmt.Errorf("policy: unknown egress tier %q (want %q or %q)", ls.Tier, TierTenant, TierClass)
		}
		if seen[ls.Tier] {
			return fmt.Errorf("policy: egress tier %q listed twice", ls.Tier)
		}
		seen[ls.Tier] = true
		if ls.Kind > EgressDRR {
			return fmt.Errorf("policy: unknown %s egress kind %d", ls.Tier, ls.Kind)
		}
		if ls.Units < 0 || ls.Units > MaxLevelUnits {
			return fmt.Errorf("policy: %s Units %d out of range [0, %d]", ls.Tier, ls.Units, MaxLevelUnits)
		}
		if ls.Units > 0 && len(ls.Weights) > ls.Units {
			return fmt.Errorf("policy: %d %s weights for %d units", len(ls.Weights), ls.Tier, ls.Units)
		}
		if ls.QuantumBytes < 0 {
			return fmt.Errorf("policy: negative %s egress quantum %d", ls.Tier, ls.QuantumBytes)
		}
		for i, w := range ls.Weights {
			if w < 0 {
				return fmt.Errorf("policy: negative weight %d for %s %d", w, ls.Tier, i)
			}
		}
	}
	return nil
}
