package policy

// The egress side of the policy layer. The four service disciplines the
// example applications used to hand-roll around internal/sched — strict
// priority, round-robin, weighted round-robin, and deficit round-robin —
// move behind the engine: each shard keeps an active-queue bitmap and
// serves flows by one of these kinds in O(1) amortized per pick, instead
// of callers polling Occupancy over the whole flow space. This file holds
// only the configuration vocabulary; the pickers live next to the bitmap
// in internal/engine.
//
// Scope: a discipline arbitrates among the flows of one shard; the engine
// rotates the starting shard per batch so shards share egress bandwidth
// evenly. Global priority ordering or exact global weight ratios hold
// only when the competing flows live on the same shard (one shard, or
// flow IDs that hash together).

import "fmt"

// EgressKind selects the integrated egress scheduler's discipline.
type EgressKind uint8

const (
	// EgressRR serves active flows in cyclic flow-ID order (the default).
	EgressRR EgressKind = iota
	// EgressPrio always serves the lowest-numbered active flow: flow 0 is
	// the highest priority, as in 802.1p class selection.
	EgressPrio
	// EgressWRR serves each active flow weight(q) packets per visit.
	EgressWRR
	// EgressDRR gives each active flow weight(q)*QuantumBytes of byte
	// credit per visit and serves head packets the credit covers, making
	// weighted sharing fair for variable-length packets.
	EgressDRR
)

// String returns the kind's flag spelling.
func (k EgressKind) String() string {
	switch k {
	case EgressRR:
		return "rr"
	case EgressPrio:
		return "prio"
	case EgressWRR:
		return "wrr"
	case EgressDRR:
		return "drr"
	}
	return fmt.Sprintf("egress(%d)", uint8(k))
}

// ParseEgressKind parses an -egress flag value.
func ParseEgressKind(s string) (EgressKind, error) {
	switch s {
	case "rr", "":
		return EgressRR, nil
	case "prio", "priority":
		return EgressPrio, nil
	case "wrr":
		return EgressWRR, nil
	case "drr":
		return EgressDRR, nil
	}
	return EgressRR, fmt.Errorf("policy: unknown egress discipline %q (want rr, prio, wrr, drr)", s)
}

// MaxEgressClasses bounds EgressConfig.NumClasses: per-class scheduling
// state is allocated per (shard, port) unit, so the class space is a
// small configuration constant (802.1p needs 8), not a dynamic resource.
const MaxEgressClasses = 256

// EgressConfig parameterizes the integrated egress scheduler. The zero
// value is flat round-robin (one class).
//
// With NumClasses > 1 the scheduler is a two-level hierarchy: flows are
// grouped into classes (SetFlowClass; every flow starts in class 0),
// ClassKind arbitrates among the backlogged classes of a port first,
// and Kind then arbitrates among the backlogged flows of the winning
// class. The same four disciplines are available at both levels.
type EgressConfig struct {
	// Kind is the flow-level discipline (within the picked class).
	Kind EgressKind
	// DefaultWeight is the weight of flows with no explicit weight set
	// (WRR packets per visit, DRR quantum multiplier). Default 1.
	DefaultWeight int
	// QuantumBytes is the DRR byte quantum earned per weight unit per
	// visit. Default 512.
	QuantumBytes int

	// NumClasses is the class space per port (0 or 1 = flat, no class
	// level; at most MaxEgressClasses).
	NumClasses int
	// ClassKind is the class-level discipline (default round-robin).
	ClassKind EgressKind
	// ClassWeights are the per-class weights for class-level WRR
	// (packets per visit) and DRR (quantum multiplier); entries beyond
	// the slice, and zero entries, default to 1. Reconfigurable at
	// runtime with SetClassWeight.
	ClassWeights []int
	// ClassQuantumBytes is the DRR byte quantum per class weight unit
	// per visit (0 takes QuantumBytes after its own default).
	ClassQuantumBytes int
}

// WithDefaults fills zero-valued fields.
func (c EgressConfig) WithDefaults() EgressConfig {
	if c.DefaultWeight == 0 {
		c.DefaultWeight = 1
	}
	if c.QuantumBytes == 0 {
		c.QuantumBytes = 512
	}
	if c.NumClasses == 0 {
		c.NumClasses = 1
	}
	if c.ClassQuantumBytes == 0 {
		c.ClassQuantumBytes = c.QuantumBytes
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c EgressConfig) Validate() error {
	c = c.WithDefaults()
	if c.Kind > EgressDRR {
		return fmt.Errorf("policy: unknown egress kind %d", c.Kind)
	}
	if c.ClassKind > EgressDRR {
		return fmt.Errorf("policy: unknown class egress kind %d", c.ClassKind)
	}
	if c.DefaultWeight < 0 {
		return fmt.Errorf("policy: negative egress default weight %d", c.DefaultWeight)
	}
	if c.QuantumBytes < 0 {
		return fmt.Errorf("policy: negative egress quantum %d", c.QuantumBytes)
	}
	if c.ClassQuantumBytes < 0 {
		return fmt.Errorf("policy: negative class egress quantum %d", c.ClassQuantumBytes)
	}
	if c.NumClasses < 0 || c.NumClasses > MaxEgressClasses {
		return fmt.Errorf("policy: NumClasses %d out of range [0, %d]", c.NumClasses, MaxEgressClasses)
	}
	if len(c.ClassWeights) > c.NumClasses {
		return fmt.Errorf("policy: %d class weights for %d classes", len(c.ClassWeights), c.NumClasses)
	}
	for i, w := range c.ClassWeights {
		if w < 0 {
			return fmt.Errorf("policy: negative weight %d for class %d", w, i)
		}
	}
	return nil
}
