// Package plb models the IBM CoreConnect Processor Local Bus of the
// reference NPU prototype (Figure 1): the 64-bit, 100 MHz system bus that
// connects the PowerPC 405, the DDR controller, the external memory
// controller (EMC) for the ZBT SRAM, and the BRAM/MAC bridge.
//
// The model is a transaction cost model, not a signal-level simulation: the
// paper's Section 5.3 analysis needs only the per-transaction cycle costs,
// which it states explicitly — a single PLB transaction takes 4 cycles, the
// bus adds 3 cycles of latency, and a line transaction bursts 9 doublewords
// (64 bytes plus the alignment beat) back-to-back.
package plb

import "fmt"

// Paper-fixed bus constants (Section 5).
const (
	// ClockMHz is the PLB and PowerPC clock of the reference design.
	ClockMHz = 100
	// BusWidthBits is the PLB data width.
	BusWidthBits = 64
	// SingleBeatCycles is the cost of one single-beat read or write
	// transaction ("each single PLB write transaction needs 4 cycles").
	SingleBeatCycles = 4
	// LatencyCycles is the bus grant/decode latency of a transaction
	// ("3 cycle latency").
	LatencyCycles = 3
	// LineBeats is the number of doubleword beats of a 64-byte line
	// transaction ("9 cycles for 9 double words").
	LineBeats = 9
)

// Transaction is one priced bus operation.
type Transaction struct {
	Name   string
	Cycles int
}

// Single returns a single-beat transaction (one 32/64-bit word).
func Single(name string) Transaction {
	return Transaction{Name: name, Cycles: SingleBeatCycles}
}

// Line returns a burst line transaction moving 64 bytes through the data
// cache: 9 beats plus the bus latency ("a segment can be retrieved from the
// BRAM and stored into the data cache in only 12 cycles").
func Line(name string) Transaction {
	return Transaction{Name: name, Cycles: LineBeats + LatencyCycles}
}

// Sum totals a transaction sequence.
func Sum(txns []Transaction) int {
	total := 0
	for _, t := range txns {
		total += t.Cycles
	}
	return total
}

// LineCopyCycles is the cost of copying one 64-byte segment with two line
// transactions (read into the cache, write back out):
// TC = (TR + Tl) + (TW + Tl) = 2*(9+3) = 24 cycles.
func LineCopyCycles() int {
	return Sum([]Transaction{Line("line read"), Line("line write")})
}

// WordCopyCycles is the cost of copying n bytes word-by-word over the bus:
// one single-beat read plus one single-beat write per 32-bit word, plus the
// loop setup overhead. For a 64-byte segment this is the paper's 136 cycles
// (16 words x 8 cycles + 8).
func WordCopyCycles(bytes int) (int, error) {
	if bytes <= 0 || bytes%4 != 0 {
		return 0, fmt.Errorf("plb: word copy needs a positive multiple of 4 bytes, got %d", bytes)
	}
	words := bytes / 4
	const loopOverhead = 8
	return words*(2*SingleBeatCycles) + loopOverhead, nil
}

// DMASetupCycles is the CPU cost of programming the DMA controller: four
// 32-bit register writes (control, source, destination, length), each a
// single PLB write transaction ("we need at least 16 cycles to initiate the
// DMA transfer").
func DMASetupCycles() int {
	regs := []Transaction{
		Single("DMA control register"),
		Single("DMA source address"),
		Single("DMA destination address"),
		Single("DMA length register"),
	}
	return Sum(regs)
}

// DMACopyCycles is the bus occupancy of the DMA engine moving one 64-byte
// segment ("at least 34 cycles to copy the data from the BRAM to the DRAM"):
// two line bursts plus the DMA engine's own arbitration overhead.
const DMACopyCycles = 34
