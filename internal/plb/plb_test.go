package plb

import "testing"

func TestLineCopyMatchesPaper(t *testing.T) {
	// TC = 2*(9+3) = 24 (Section 5.3).
	if got := LineCopyCycles(); got != 24 {
		t.Fatalf("line copy = %d cycles, paper says 24", got)
	}
}

func TestWordCopyMatchesPaper(t *testing.T) {
	// 64-byte segment word-by-word = 136 cycles (Table 3, "Copy a segment").
	got, err := WordCopyCycles(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 136 {
		t.Fatalf("word copy = %d cycles, paper says 136", got)
	}
}

func TestWordCopyValidation(t *testing.T) {
	if _, err := WordCopyCycles(0); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := WordCopyCycles(7); err == nil {
		t.Fatal("unaligned size accepted")
	}
}

func TestDMASetupMatchesPaper(t *testing.T) {
	// 4 register writes x 4 cycles = 16 (Section 5.3).
	if got := DMASetupCycles(); got != 16 {
		t.Fatalf("DMA setup = %d cycles, paper says 16", got)
	}
}

func TestTransactionHelpers(t *testing.T) {
	s := Single("x")
	if s.Cycles != SingleBeatCycles || s.Name != "x" {
		t.Fatalf("single = %+v", s)
	}
	l := Line("y")
	if l.Cycles != LineBeats+LatencyCycles {
		t.Fatalf("line = %+v", l)
	}
	if Sum(nil) != 0 {
		t.Fatal("empty sum != 0")
	}
	if Sum([]Transaction{s, l}) != s.Cycles+l.Cycles {
		t.Fatal("sum wrong")
	}
}

func TestScalingSanity(t *testing.T) {
	// Copying more bytes must cost proportionally more.
	c64, _ := WordCopyCycles(64)
	c128, _ := WordCopyCycles(128)
	if c128 <= c64 {
		t.Fatal("128-byte copy not more expensive than 64")
	}
}
