// Package ring provides the bounded multi-producer single-consumer command
// ring the asynchronous engine datapath is built on.
//
// The paper's queue manager is fed exactly this way: processing elements
// never touch queue state directly — they post commands into per-port FIFO
// command queues and the MMS drains them, pipelining execution (Section 6.1,
// the internal scheduler's command FIFOs). The software analogue replaces
// the lock-per-operation datapath, where every producer serializes on a
// mutex handoff, with a ring per shard: producers publish commands with one
// atomic claim each, and the shard's worker goroutine — the single consumer —
// drains them in batches, run to completion, owning the shard state outright.
//
// The layout is the classic bounded MPMC sequence ring (Vyukov), specialized
// to one consumer: every slot carries a sequence word that encodes whether
// it is free for the producer lapping it or holds a value for the consumer.
// Producers claim slots by CAS on the tail; the consumer walks the head
// without CAS at all, because nobody competes with it. A full ring applies
// backpressure: TryPush refuses, Push spins briefly and then yields until
// the consumer catches up — the bounded command FIFO is exactly what keeps
// a fast producer from outrunning the queue engine, as in the hardware.
package ring

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Sentinel results of the push paths.
var (
	// ErrFull is returned by TryPush when the ring has no free slot.
	ErrFull = errors.New("ring: full")
	// ErrClosed is returned by pushes after Close: the consumer is draining
	// or gone, and no new commands are accepted.
	ErrClosed = errors.New("ring: closed")
)

// pushSpins is how many failed TryPush attempts Push makes before yielding
// the processor. Short: a full ring means the consumer needs CPU.
const pushSpins = 32

// slot pairs a value with its sequence word. seq == pos means the slot is
// free for the producer claiming position pos; seq == pos+1 means it holds
// the value published at pos and is ready for the consumer; after
// consumption seq becomes pos+capacity, freeing it for the producer one lap
// ahead.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// closedBit is sealed into the tail word by Close. Packing it into the
// same word producers CAS to claim slots makes the close race-free: a
// producer that loaded a clean tail just before Close cannot claim
// afterwards — its CAS fails because the word changed — so the consumer's
// final "drained when head catches the sealed tail" check cannot miss a
// late claim, and no accepted command is ever stranded in a ring whose
// consumer has exited.
const closedBit = uint64(1) << 63

// padBytes separates the ring's hot words. Two cache lines, not one:
// modern x86 prefetchers pull adjacent line pairs, so 64-byte spacing
// still ping-pongs under producer/consumer contention. The layout test
// (layout_test.go) pins these distances so they cannot silently regress.
const padBytes = 128

// Ring is a bounded MPSC queue. Any number of goroutines may push; exactly
// one goroutine may pop (at a time — consumers may hand off, serialized
// externally, as the engine's work stealing does). The zero value is not
// usable; call New.
type Ring[T any] struct {
	slots []slot[T]
	mask  uint64

	_        [padBytes]byte // keep the producer and consumer hot words apart
	tail     atomic.Uint64  // producers CAS; carries the closedBit seal
	_        [padBytes]byte
	head     atomic.Uint64 // written only by the consumer; atomic for Len readers
	_        [padBytes]byte
	sleeping atomic.Bool // producers load per push; CAS only on wake
	_        [padBytes]byte
	wake     chan struct{}
}

// New returns a ring with at least the given capacity (rounded up to a
// power of two; minimum 2).
func New[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ring: capacity must be positive, got %d", capacity)
	}
	if capacity < 2 {
		capacity = 2
	}
	if capacity&(capacity-1) != 0 {
		capacity = 1 << bits.Len(uint(capacity))
	}
	r := &Ring[T]{
		slots: make([]slot[T], capacity),
		mask:  uint64(capacity - 1),
		wake:  make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Len returns the approximate number of queued commands — approximate
// because producers and the consumer move concurrently. Safe from any
// goroutine; used for occupancy telemetry.
func (r *Ring[T]) Len() int {
	n := int64(r.tail.Load()&^closedBit) - int64(r.head.Load())
	if n < 0 {
		return 0
	}
	if n > int64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// TryPush publishes v without blocking. It returns ErrFull when no slot is
// free and ErrClosed after Close.
func (r *Ring[T]) TryPush(v T) error {
	pos := r.tail.Load()
	for {
		if pos&closedBit != 0 {
			return ErrClosed
		}
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			// If Close sealed the tail between the load and here, the CAS
			// fails (the word changed) and the reload observes the seal —
			// a claim can never succeed on a closed ring.
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				r.wakeConsumer()
				return nil
			}
			pos = r.tail.Load()
		case d < 0:
			// The slot is still owned by the consumer one lap behind: full.
			return ErrFull
		default:
			// Another producer claimed pos; reload and chase the tail.
			pos = r.tail.Load()
		}
	}
}

// Push publishes v, applying backpressure: when the ring is full it spins
// briefly, then yields the processor until the consumer frees a slot. The
// only error is ErrClosed.
func (r *Ring[T]) Push(v T) error {
	for spin := 0; ; spin++ {
		err := r.TryPush(v)
		if err != ErrFull { //nolint:errorlint // internal sentinel, never wrapped
			return err
		}
		if spin >= pushSpins {
			// The consumer needs the CPU more than we need the slot.
			runtime.Gosched()
		}
	}
}

// Pop removes the oldest command. ok is false when the ring is empty. Must
// be called only by the single consumer.
func (r *Ring[T]) Pop() (T, bool) {
	var buf [1]T
	if r.PopBatch(buf[:]) == 0 {
		var zero T
		return zero, false
	}
	return buf[0], true
}

// PopBatch moves up to len(buf) commands into buf and returns how many. It
// never blocks. Must be called only by the single consumer.
func (r *Ring[T]) PopBatch(buf []T) int {
	head := r.head.Load()
	n := 0
	for n < len(buf) {
		s := &r.slots[head&r.mask]
		if s.seq.Load() != head+1 {
			break // empty, or the producer at head has claimed but not yet published
		}
		buf[n] = s.val
		var zero T
		s.val = zero // drop references so consumed commands don't pin memory
		s.seq.Store(head + r.mask + 1)
		head++
		n++
	}
	if n > 0 {
		r.head.Store(head)
	}
	return n
}

// PopWait moves up to len(buf) commands into buf, blocking while the ring
// is empty. closed reports that the ring was closed AND fully drained: once
// PopWait returns (0, true) no further commands will ever arrive. Must be
// called only by the single consumer.
func (r *Ring[T]) PopWait(buf []T) (n int, closed bool) {
	for {
		if n = r.PopBatch(buf); n > 0 {
			return n, false
		}
		if tail := r.tail.Load(); tail&closedBit != 0 {
			// The tail is sealed: no further claim can succeed. A producer
			// that claimed just before the seal may still be publishing its
			// slot; every claim is always followed by a publish, so the ring
			// is truly drained exactly when the consumer has caught up with
			// the sealed tail — until then, yield and re-drain so no
			// accepted command is ever lost across Close.
			if n = r.PopBatch(buf); n > 0 {
				return n, false
			}
			if r.head.Load() == tail&^closedBit {
				return 0, true
			}
			runtime.Gosched()
			continue
		}
		// Announce intent to sleep, then re-check: a producer that published
		// after the last PopBatch but before the announcement would otherwise
		// never wake us (the classic sleeper/waker race, closed by the
		// sequentially consistent flag).
		r.sleeping.Store(true)
		if r.peek() || r.tail.Load()&closedBit != 0 {
			r.sleeping.Store(false)
			continue
		}
		<-r.wake
	}
}

// PopWaitSpin is PopWait with a busy-poll prologue: before parking on the
// wake channel the consumer makes up to spins empty polls, yielding the
// processor between them, so a command posted within the spin window is
// picked up without a park/unpark round trip. The spin budget is bounded —
// once it is exhausted the call parks exactly like PopWait, so a consumer
// whose traffic stops cannot burn a core forever. Must be called only by
// the single consumer.
func (r *Ring[T]) PopWaitSpin(buf []T, spins int) (n int, closed bool) {
	for i := 0; i < spins; i++ {
		if n = r.PopBatch(buf); n > 0 {
			return n, false
		}
		if r.tail.Load()&closedBit != 0 {
			// Closed: fall through to PopWait's drain-then-report logic.
			return r.PopWait(buf)
		}
		runtime.Gosched()
	}
	return r.PopWait(buf)
}

// WaitReady blocks until a command is ready at the head, the ring is
// closed, or a Poke arrives — without popping anything. Callers that
// serialize consumption externally (the engine's work-stealing workers,
// which pop only under the shard mutex) wait here so the ring is never
// popped outside that serialization. Up to spins empty polls run before
// parking. closed=true means the tail is sealed, NOT that the ring is
// drained — commands already claimed may still be publishing; poll
// Drained for the exit condition. A false return is only a hint (data, or
// a Poke with none): the caller re-checks.
func (r *Ring[T]) WaitReady(spins int) (closed bool) {
	for i := 0; ; i++ {
		if r.peek() {
			return false
		}
		if r.tail.Load()&closedBit != 0 {
			return true
		}
		if i < spins {
			runtime.Gosched()
			continue
		}
		// Same sleeper/waker protocol as PopWait: announce, re-check, park.
		r.sleeping.Store(true)
		if r.peek() || r.tail.Load()&closedBit != 0 {
			r.sleeping.Store(false)
			continue
		}
		<-r.wake
		return false
	}
}

// Drained reports that the ring is closed and every accepted command has
// been popped: head has caught the sealed tail. Safe from any goroutine.
func (r *Ring[T]) Drained() bool {
	tail := r.tail.Load()
	return tail&closedBit != 0 && r.head.Load() == tail&^closedBit
}

// Parked reports whether the consumer has announced it is (about to be)
// parked on the wake channel. Telemetry/test hook: momentarily stale by
// construction.
func (r *Ring[T]) Parked() bool { return r.sleeping.Load() }

// Poke wakes a parked consumer without publishing a command, and reports
// whether a consumer was actually parked. Work stealing uses it to recruit
// an idle sibling worker: the woken consumer finds its own ring empty and
// runs its steal scan. A no-op (false) when the consumer is running.
func (r *Ring[T]) Poke() bool {
	if r.sleeping.CompareAndSwap(true, false) {
		select {
		case r.wake <- struct{}{}:
		default:
		}
		return true
	}
	return false
}

// peek reports whether a published command is ready at the head.
func (r *Ring[T]) peek() bool {
	head := r.head.Load()
	return r.slots[head&r.mask].seq.Load() == head+1
}

// wakeConsumer signals a sleeping consumer. The flag keeps the channel
// operation off the push fast path: producers pay one atomic load unless
// the consumer is actually parked.
func (r *Ring[T]) wakeConsumer() {
	if r.sleeping.Load() && r.sleeping.CompareAndSwap(true, false) {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// Close seals the ring and wakes the consumer. Pushes after Close return
// ErrClosed — the seal lives in the tail word producers CAS, so a push
// cannot slip past it — while commands already claimed remain poppable:
// the consumer drains everything up to the sealed tail before observing
// (0, true) from PopWait. Safe to call more than once.
func (r *Ring[T]) Close() {
	r.tail.Or(closedBit)
	// Unconditional wake: Close must not race-lose against a consumer that
	// just announced sleeping.
	r.sleeping.Store(false)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.tail.Load()&closedBit != 0 }
