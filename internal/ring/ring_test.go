package ring

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFIFOSingleProducer(t *testing.T) {
	r, err := New[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 5; i++ {
		if err := r.TryPush(i); err != nil {
			t.Fatalf("TryPush(%d): %v", i, err)
		}
	}
	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring returned ok")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 2}, {2, 2}, {3, 4}, {64, 64}, {65, 128}} {
		r, err := New[int](tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cap() != tc.want {
			t.Errorf("New(%d).Cap = %d, want %d", tc.in, r.Cap(), tc.want)
		}
	}
	if _, err := New[int](0); err == nil {
		t.Error("New(0) succeeded")
	}
	if _, err := New[int](-4); err == nil {
		t.Error("New(-4) succeeded")
	}
}

func TestFullAndWrap(t *testing.T) {
	r, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill, drain, and refill across several laps so the sequence windows
	// wrap the slot array repeatedly.
	next := 0
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 4; i++ {
			if err := r.TryPush(next + i); err != nil {
				t.Fatalf("lap %d TryPush: %v", lap, err)
			}
		}
		if err := r.TryPush(99); !errors.Is(err, ErrFull) {
			t.Fatalf("lap %d push on full ring: %v, want ErrFull", lap, err)
		}
		buf := make([]int, 8)
		n := r.PopBatch(buf)
		if n != 4 {
			t.Fatalf("lap %d PopBatch = %d, want 4", lap, n)
		}
		for i := 0; i < 4; i++ {
			if buf[i] != next+i {
				t.Fatalf("lap %d slot %d = %d, want %d", lap, i, buf[i], next+i)
			}
		}
		next += 4
	}
}

func TestMPSCConservationAndOrder(t *testing.T) {
	const producers = 8
	const perProducer = 10_000
	r, err := New[[2]int](256) // (producer, seq)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := r.Push([2]int{p, i}); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		r.Close()
	}()

	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	total := 0
	buf := make([][2]int, 64)
	for {
		n, closed := r.PopWait(buf)
		for _, v := range buf[:n] {
			p, seq := v[0], v[1]
			if seq != lastSeq[p]+1 {
				t.Fatalf("producer %d: seq %d after %d (per-producer FIFO broken)", p, seq, lastSeq[p])
			}
			lastSeq[p] = seq
			total++
		}
		if closed {
			break
		}
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d commands, want %d", total, producers*perProducer)
	}
}

func TestCloseUnblocksAndRefuses(t *testing.T) {
	r, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	// Park the consumer on an empty ring, then close from another goroutine.
	done := make(chan struct{})
	go func() {
		buf := make([]int, 4)
		n, closed := r.PopWait(buf)
		if n != 0 || !closed {
			t.Errorf("PopWait after Close = (%d, %v), want (0, true)", n, closed)
		}
		close(done)
	}()
	r.Close()
	<-done
	if err := r.TryPush(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPush after Close: %v, want ErrClosed", err)
	}
	if err := r.Push(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close: %v, want ErrClosed", err)
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	r.Close() // double close is safe
}

func TestCloseDrainsPending(t *testing.T) {
	r, err := New[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := r.TryPush(i); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	buf := make([]int, 4)
	got := 0
	for {
		n, closed := r.PopWait(buf)
		got += n
		if closed {
			break
		}
	}
	if got != 6 {
		t.Fatalf("drained %d commands after Close, want 6", got)
	}
}

func TestPushBackpressure(t *testing.T) {
	r, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	var consumed atomic.Int64
	done := make(chan struct{})
	go func() {
		buf := make([]int, 4)
		for {
			n, closed := r.PopWait(buf)
			consumed.Add(int64(n))
			if closed {
				close(done)
				return
			}
		}
	}()
	// Far more pushes than capacity: Push must block-and-retry, never drop.
	const total = 5000
	for i := 0; i < total; i++ {
		if err := r.Push(i); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	r.Close()
	<-done
	if consumed.Load() != total {
		t.Fatalf("consumed %d, want %d", consumed.Load(), total)
	}
}
