package ring

import (
	"testing"
	"unsafe"
)

// TestRingLayout pins the false-sharing contract: the producer-side tail,
// the consumer-side head, and the sleeping flag must each sit at least
// padBytes apart, so a store to one cannot invalidate the cache line (or
// the prefetched adjacent line) holding another. Offsets are asserted as
// distances, not absolute alignment — Go's heap does not guarantee
// 64-byte base alignment for allocations, so only intra-struct spacing is
// under our control.
func TestRingLayout(t *testing.T) {
	var r Ring[int]
	offTail := unsafe.Offsetof(r.tail)
	offHead := unsafe.Offsetof(r.head)
	offSleep := unsafe.Offsetof(r.sleeping)
	offWake := unsafe.Offsetof(r.wake)

	if padBytes < 128 {
		t.Fatalf("padBytes = %d, want >= 128 (adjacent-line prefetch pairs)", padBytes)
	}
	pairs := []struct {
		name string
		a, b uintptr
	}{
		{"tail/head", offTail, offHead},
		{"head/sleeping", offHead, offSleep},
		{"sleeping/wake", offSleep, offWake},
	}
	for _, p := range pairs {
		if d := p.b - p.a; d < padBytes {
			t.Errorf("layout: %s only %d bytes apart, want >= %d", p.name, d, padBytes)
		}
	}
	// The slots header (read-only after New) may share with nothing hot:
	// tail must be at least padBytes past the cold header fields.
	if offTail < padBytes {
		t.Errorf("layout: tail at offset %d, want >= %d past the cold header", offTail, padBytes)
	}
	// Slot stride: each slot carries its own sequence word; for small
	// payloads neighbouring slots share a line by design (batched access),
	// so no assertion — but keep the size visible if it ever matters.
	t.Logf("Ring[int] size = %d, slot stride = %d",
		unsafe.Sizeof(r), unsafe.Sizeof(slot[int]{}))
}
