package traffic

import (
	"math"
	"testing"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{RateGbps: 0, Flows: 1},
		{RateGbps: 1, Flows: 0},
		{RateGbps: 1, Flows: 1, BurstMean: -1},
		{RateGbps: 2, Flows: 1, PeakGbps: 1},
	}
	for _, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestRateAccuracy(t *testing.T) {
	for _, proc := range []Process{CBR, Poisson, OnOff} {
		g, err := NewGenerator(Config{RateGbps: 2.5, Flows: 64, Sizes: Min64, Proc: proc, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		arr := g.Take(60000)
		got := MeasuredGbps(arr)
		if math.Abs(got-2.5)/2.5 > 0.05 {
			t.Errorf("%v: measured %.3f Gbps, want 2.5", proc, got)
		}
	}
}

func TestArrivalMonotonic(t *testing.T) {
	for _, proc := range []Process{CBR, Poisson, OnOff} {
		g, _ := NewGenerator(Config{RateGbps: 1, Flows: 8, Sizes: IMIX, Proc: proc, Seed: 1})
		prev := -1.0
		for i := 0; i < 5000; i++ {
			a := g.Next()
			if a.TimeNs < prev {
				t.Fatalf("%v: time went backwards at %d", proc, i)
			}
			prev = a.TimeNs
			if a.Flow >= 8 {
				t.Fatalf("%v: flow %d out of range", proc, a.Flow)
			}
			if a.Bytes < 64 || a.Bytes > 1518 {
				t.Fatalf("%v: bytes %d out of range", proc, a.Bytes)
			}
		}
	}
}

func TestOnOffIsBurstier(t *testing.T) {
	cv := func(proc Process) float64 {
		g, _ := NewGenerator(Config{RateGbps: 1, Flows: 4, Sizes: Min64, Proc: proc, Seed: 9})
		arr := g.Take(20000)
		var gaps []float64
		for i := 1; i < len(arr); i++ {
			gaps = append(gaps, arr[i].TimeNs-arr[i-1].TimeNs)
		}
		var mean, m2 float64
		for _, x := range gaps {
			mean += x
		}
		mean /= float64(len(gaps))
		for _, x := range gaps {
			m2 += (x - mean) * (x - mean)
		}
		return math.Sqrt(m2/float64(len(gaps))) / mean
	}
	cbr, onoff := cv(CBR), cv(OnOff)
	if cbr > 0.001 {
		t.Fatalf("CBR gap CV = %v, want 0", cbr)
	}
	if onoff < 0.8 {
		t.Fatalf("on-off gap CV = %v, expected strongly bursty", onoff)
	}
}

func TestIMIXMean(t *testing.T) {
	g, _ := NewGenerator(Config{RateGbps: 1, Flows: 4, Sizes: IMIX, Proc: Poisson, Seed: 5})
	arr := g.Take(60000)
	var sum float64
	for _, a := range arr {
		sum += float64(a.Bytes)
	}
	mean := sum / float64(len(arr))
	want := IMIX.MeanBytes()
	if math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("IMIX mean = %.1f, want %.1f", mean, want)
	}
}

func TestFlowSpread(t *testing.T) {
	g, _ := NewGenerator(Config{RateGbps: 1, Flows: 16, Sizes: Min64, Proc: CBR, Seed: 4})
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[g.Next().Flow]++
	}
	for f, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("flow %d got %d/16000 packets", f, c)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Arrival {
		g, _ := NewGenerator(Config{RateGbps: 1, Flows: 4, Sizes: IMIX, Proc: OnOff, Seed: 42})
		return g.Take(1000)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestStringers(t *testing.T) {
	if Min64.String() == "" || IMIX.String() == "" || Uniform.String() == "" {
		t.Fatal("SizeDist.String broken")
	}
	if CBR.String() == "" || Poisson.String() == "" || OnOff.String() == "" {
		t.Fatal("Process.String broken")
	}
	if SizeDist(9).String() == "" || Process(9).String() == "" {
		t.Fatal("unknown values must render")
	}
}

func TestMeasuredGbpsEdge(t *testing.T) {
	if MeasuredGbps(nil) != 0 || MeasuredGbps([]Arrival{{TimeNs: 1}}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func BenchmarkNextOnOff(b *testing.B) {
	g, _ := NewGenerator(Config{RateGbps: 5, Flows: 1024, Sizes: IMIX, Proc: OnOff, Seed: 1})
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
