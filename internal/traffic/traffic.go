// Package traffic generates the synthetic network workloads the experiments
// and examples run: constant-bit-rate, Poisson and bursty on-off arrival
// processes over configurable packet-size mixes (64-byte worst case, IMIX),
// spread across many flows — the "large number of simultaneously active
// queues" premise of the paper's analysis.
package traffic

import (
	"fmt"

	"npqm/internal/xrand"
)

// Arrival is one generated packet.
type Arrival struct {
	TimeNs float64 // arrival time
	Flow   uint32  // flow (queue) index
	Bytes  int     // packet length
}

// SizeDist selects a packet-length distribution.
type SizeDist int

const (
	// Min64 is the paper's worst case: every packet 64 bytes.
	Min64 SizeDist = iota
	// IMIX is the classic Internet mix (7:4:1 of 64/594/1518).
	IMIX
	// Uniform draws uniformly in [64, 1518].
	Uniform
)

// String implements fmt.Stringer.
func (s SizeDist) String() string {
	switch s {
	case Min64:
		return "64B"
	case IMIX:
		return "imix"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("size-dist(%d)", int(s))
	}
}

// MeanBytes returns the distribution's mean packet length.
func (s SizeDist) MeanBytes() float64 {
	switch s {
	case Min64:
		return 64
	case IMIX:
		return (7*64 + 4*594 + 1*1518) / 12.0
	case Uniform:
		return (64 + 1518) / 2.0
	default:
		panic(fmt.Sprintf("traffic: unknown size distribution %d", int(s)))
	}
}

func (s SizeDist) draw(rng *xrand.Source) int {
	switch s {
	case Min64:
		return 64
	case IMIX:
		switch x := rng.Intn(12); {
		case x < 7:
			return 64
		case x < 11:
			return 594
		default:
			return 1518
		}
	case Uniform:
		return 64 + rng.Intn(1518-64+1)
	default:
		panic(fmt.Sprintf("traffic: unknown size distribution %d", int(s)))
	}
}

// Process selects the arrival process.
type Process int

const (
	// CBR spaces packets deterministically at the offered rate.
	CBR Process = iota
	// Poisson draws exponential inter-arrival gaps.
	Poisson
	// OnOff alternates geometric bursts at line rate with idle gaps,
	// producing the bursty arrivals the MMS FIFOs are there to smooth.
	OnOff
)

// String implements fmt.Stringer.
func (p Process) String() string {
	switch p {
	case CBR:
		return "cbr"
	case Poisson:
		return "poisson"
	case OnOff:
		return "on-off"
	default:
		return fmt.Sprintf("process(%d)", int(p))
	}
}

// Config describes a generator.
type Config struct {
	// RateGbps is the offered load.
	RateGbps float64
	// Flows is the number of active flows packets are spread over.
	Flows int
	// Sizes selects the packet-length mix.
	Sizes SizeDist
	// Proc selects the arrival process.
	Proc Process
	// BurstMean is the mean on-period burst length in packets for OnOff
	// (0 means 8).
	BurstMean int
	// PeakGbps is the instantaneous line rate during OnOff bursts
	// (0 means 4x RateGbps).
	PeakGbps float64
	// Seed drives all randomness.
	Seed uint64
}

// Generator produces a deterministic arrival stream.
type Generator struct {
	cfg     Config
	rng     *xrand.Source
	nowNs   float64
	inBurst int // packets remaining in the current on-period
}

// NewGenerator validates the configuration and returns a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.RateGbps <= 0 {
		return nil, fmt.Errorf("traffic: RateGbps must be positive, got %v", cfg.RateGbps)
	}
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("traffic: Flows must be positive, got %d", cfg.Flows)
	}
	if cfg.BurstMean == 0 {
		cfg.BurstMean = 8
	}
	if cfg.BurstMean < 0 {
		return nil, fmt.Errorf("traffic: negative BurstMean")
	}
	if cfg.PeakGbps == 0 {
		cfg.PeakGbps = 4 * cfg.RateGbps
	}
	if cfg.PeakGbps < cfg.RateGbps {
		return nil, fmt.Errorf("traffic: PeakGbps %v below RateGbps %v", cfg.PeakGbps, cfg.RateGbps)
	}
	return &Generator{cfg: cfg, rng: xrand.New(cfg.Seed)}, nil
}

// meanGapNs returns the average inter-packet gap at the offered rate.
func (g *Generator) meanGapNs(bytes int) float64 {
	return float64(bytes*8) / g.cfg.RateGbps
}

// Next returns the next arrival.
func (g *Generator) Next() Arrival {
	bytes := g.cfg.Sizes.draw(g.rng)
	switch g.cfg.Proc {
	case CBR:
		g.nowNs += g.meanGapNs(bytes)
	case Poisson:
		g.nowNs += g.rng.ExpFloat64(1 / g.meanGapNs(bytes)) // mean = meanGap
	case OnOff:
		peakGap := float64(bytes*8) / g.cfg.PeakGbps
		if g.inBurst > 0 {
			g.inBurst--
			g.nowNs += peakGap
		} else {
			// Idle long enough that the average rate matches RateGbps:
			// each burst of B packets at peak rate must be followed by
			// idle time covering the balance.
			b := g.rng.Geometric(1 / float64(g.cfg.BurstMean))
			burstNs := float64(b) * peakGap
			wantNs := float64(b) * g.meanGapNs(bytes)
			idle := wantNs - burstNs
			if idle < 0 {
				idle = 0
			}
			g.nowNs += idle + peakGap
			g.inBurst = b - 1
		}
	default:
		panic(fmt.Sprintf("traffic: unknown process %d", int(g.cfg.Proc)))
	}
	return Arrival{
		TimeNs: g.nowNs,
		Flow:   uint32(g.rng.Intn(g.cfg.Flows)),
		Bytes:  bytes,
	}
}

// Take returns the next n arrivals.
func (g *Generator) Take(n int) []Arrival {
	out := make([]Arrival, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// MeasuredGbps computes the average rate of an arrival slice.
func MeasuredGbps(arrivals []Arrival) float64 {
	if len(arrivals) < 2 {
		return 0
	}
	bits := 0
	for _, a := range arrivals {
		bits += a.Bytes * 8
	}
	span := arrivals[len(arrivals)-1].TimeNs - arrivals[0].TimeNs
	if span <= 0 {
		return 0
	}
	return float64(bits) / span
}
