package traffic

import "testing"

func TestFlowDistValidation(t *testing.T) {
	cases := []FlowDistConfig{
		{Flows: 0},                                // no flows
		{Flows: -4},                               // negative flows
		{Flows: 16, Burst: -1},                    // negative burst
		{Flows: 16, Kind: FlowZipf},               // zipf without skew
		{Flows: 16, Kind: FlowZipf, Skew: 1.0},    // skew must exceed 1
		{Flows: 16, Kind: FlowUniform, Skew: 1.2}, // skew on uniform
		{Flows: 16, Kind: FlowDistKind(99)},       // unknown kind
	}
	for _, cfg := range cases {
		if _, err := NewFlowDist(cfg); err == nil {
			t.Errorf("NewFlowDist(%+v) succeeded, want error", cfg)
		}
	}
}

func TestFlowDistUniformRangeAndSpread(t *testing.T) {
	const flows = 64
	d, err := NewFlowDist(FlowDistConfig{Flows: flows, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]int)
	const picks = 4096
	for i := 0; i < picks; i++ {
		f := d.Next()
		if f >= flows {
			t.Fatalf("pick %d out of range: %d", i, f)
		}
		seen[f]++
	}
	// Near-uniform: every flow should appear, none should dominate.
	if len(seen) < flows*9/10 {
		t.Fatalf("uniform picker touched only %d of %d flows", len(seen), flows)
	}
	for f, n := range seen {
		if n > picks/flows*4 {
			t.Fatalf("flow %d got %d of %d picks — not uniform", f, n, picks)
		}
	}
}

func TestFlowDistDeterminismAndSeeds(t *testing.T) {
	mk := func(seed uint64, kind FlowDistKind, skew float64) []uint32 {
		d, err := NewFlowDist(FlowDistConfig{Kind: kind, Flows: 1024, Skew: skew, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint32, 256)
		for i := range out {
			out[i] = d.Next()
		}
		return out
	}
	for _, tc := range []struct {
		kind FlowDistKind
		skew float64
	}{{FlowUniform, 0}, {FlowZipf, 1.3}} {
		a, b := mk(7, tc.kind, tc.skew), mk(7, tc.kind, tc.skew)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed diverged at pick %d", tc.kind, i)
			}
		}
		c := mk(8, tc.kind, tc.skew)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%v: different seeds produced identical sequences", tc.kind)
		}
	}
}

func TestFlowDistZipfSkew(t *testing.T) {
	d, err := NewFlowDist(FlowDistConfig{Kind: FlowZipf, Flows: 1 << 14, Skew: 1.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const picks = 20_000
	hot := 0
	for i := 0; i < picks; i++ {
		f := d.Next()
		if f >= 1<<14 {
			t.Fatalf("pick out of range: %d", f)
		}
		if f < 16 {
			hot++
		}
	}
	// With skew 1.2 the 16 hottest of 16K flows must carry far more than
	// their uniform share (16/16384 ≈ 0.1%).
	if hot < picks/4 {
		t.Fatalf("hottest 16 flows got only %d of %d picks — not skewed", hot, picks)
	}
}

func TestFlowDistBurst(t *testing.T) {
	for _, kind := range []FlowDistKind{FlowUniform, FlowZipf} {
		skew := 0.0
		if kind == FlowZipf {
			skew = 1.4
		}
		d, err := NewFlowDist(FlowDistConfig{Kind: kind, Flows: 4096, Skew: skew, Burst: 5, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 50; b++ {
			first := d.Next()
			for i := 1; i < 5; i++ {
				if f := d.Next(); f != first {
					t.Fatalf("%v: burst %d pick %d = %d, want %d", kind, b, i, f, first)
				}
			}
		}
	}
}
