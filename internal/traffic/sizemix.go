package traffic

// SizeMix is the packet-size counterpart of FlowDist: a deterministic
// per-worker picker for how large each generated packet is. Fixed-size
// payloads hide per-segment costs — an MTU packet spans ~24 segments where
// a 64-byte one spans 1 — so the load generators offer an IMIX blend
// alongside the fixed sizes the benchmarks historically used.

import "fmt"

// SizeMixKind selects the packet-size pattern.
type SizeMixKind int

const (
	// MixFixed returns the configured size for every packet.
	MixFixed SizeMixKind = iota
	// MixIMIX draws from the classic Internet mix: 64-, 576- and
	// 1500-byte packets weighted 7:4:1 — the small-packet-dominated blend
	// backbone measurements report, and the standard router benchmark load.
	MixIMIX
)

// String implements fmt.Stringer.
func (k SizeMixKind) String() string {
	switch k {
	case MixFixed:
		return "fixed"
	case MixIMIX:
		return "imix"
	default:
		return fmt.Sprintf("size-mix(%d)", int(k))
	}
}

// IMIX size/weight table (7:4:1 over 12 slots).
var (
	imixSizes   = [3]int{64, 576, 1500}
	imixBuckets = [3]uint32{7, 11, 12} // cumulative weights out of 12
)

// SizeMixConfig parameterizes a SizeMix.
type SizeMixConfig struct {
	// Kind selects the pattern (default MixFixed).
	Kind SizeMixKind
	// Fixed is the bytes per packet for MixFixed (required, > 0; ignored
	// for MixIMIX).
	Fixed int
	// Seed decorrelates pickers, as in FlowDistConfig.
	Seed uint64
}

// SizeMix is a deterministic single-goroutine packet-size picker.
type SizeMix struct {
	kind  SizeMixKind
	fixed int
	n     uint32
	base  uint32
}

// NewSizeMix validates cfg and returns a picker.
func NewSizeMix(cfg SizeMixConfig) (*SizeMix, error) {
	switch cfg.Kind {
	case MixFixed:
		if cfg.Fixed <= 0 {
			return nil, fmt.Errorf("traffic: MixFixed needs a positive size, got %d", cfg.Fixed)
		}
	case MixIMIX:
	default:
		return nil, fmt.Errorf("traffic: unknown SizeMixKind %d", int(cfg.Kind))
	}
	return &SizeMix{
		kind:  cfg.Kind,
		fixed: cfg.Fixed,
		base:  uint32(cfg.Seed) * 100_003,
	}, nil
}

// Next returns the next packet size in bytes.
func (d *SizeMix) Next() int {
	if d.kind == MixFixed {
		return d.fixed
	}
	// Same multiplicative scramble as FlowDist: deterministic per seed and
	// no random-number state. The residue is taken from the well-mixed
	// high bits, so long windows converge on exact 7:4:1 proportions.
	r := (((d.base + d.n) * 2654435761) >> 16) % 12
	d.n++
	switch {
	case r < imixBuckets[0]:
		return imixSizes[0]
	case r < imixBuckets[1]:
		return imixSizes[1]
	default:
		return imixSizes[2]
	}
}

// Max returns the largest size Next can return — what callers size their
// staging buffers to.
func (d *SizeMix) Max() int {
	if d.kind == MixFixed {
		return d.fixed
	}
	return imixSizes[2]
}

// Mean returns the expected packet size in bytes.
func (d *SizeMix) Mean() float64 {
	if d.kind == MixFixed {
		return float64(d.fixed)
	}
	return float64(7*imixSizes[0]+4*imixSizes[1]+1*imixSizes[2]) / 12
}
