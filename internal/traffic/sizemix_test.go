package traffic

import "testing"

func TestSizeMixValidation(t *testing.T) {
	if _, err := NewSizeMix(SizeMixConfig{Kind: MixFixed}); err == nil {
		t.Error("zero fixed size accepted")
	}
	if _, err := NewSizeMix(SizeMixConfig{Kind: SizeMixKind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewSizeMix(SizeMixConfig{Kind: MixIMIX}); err != nil {
		t.Errorf("IMIX rejected: %v", err)
	}
}

func TestSizeMixFixed(t *testing.T) {
	d, err := NewSizeMix(SizeMixConfig{Kind: MixFixed, Fixed: 320})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := d.Next(); got != 320 {
			t.Fatalf("fixed draw %d = %d, want 320", i, got)
		}
	}
	if d.Max() != 320 || d.Mean() != 320 {
		t.Errorf("Max=%d Mean=%g, want 320", d.Max(), d.Mean())
	}
}

// IMIX draws must hit only the three mix sizes, in 7:4:1 proportions over a
// long window, and the sequence must be reproducible per seed.
func TestSizeMixIMIX(t *testing.T) {
	d, err := NewSizeMix(SizeMixConfig{Kind: MixIMIX, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Max() != 1500 {
		t.Fatalf("Max = %d, want 1500", d.Max())
	}
	const draws = 1 << 20
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[d.Next()]++
	}
	if len(counts) != 3 {
		t.Fatalf("IMIX produced sizes %v, want exactly {64, 576, 1500}", counts)
	}
	want := map[int]float64{64: 7.0 / 12, 576: 4.0 / 12, 1500: 1.0 / 12}
	for size, frac := range want {
		got := float64(counts[size]) / draws
		if got < frac-0.01 || got > frac+0.01 {
			t.Errorf("size %d: %.4f of draws, want %.4f ± 0.01", size, got, frac)
		}
	}
	// Mean matches the weighted table.
	if m := d.Mean(); m < 354 || m > 355 {
		t.Errorf("Mean = %g, want ~354.67", m)
	}

	// Reproducibility: same seed, same sequence; different seed, different.
	a, _ := NewSizeMix(SizeMixConfig{Kind: MixIMIX, Seed: 7})
	b, _ := NewSizeMix(SizeMixConfig{Kind: MixIMIX, Seed: 7})
	c, _ := NewSizeMix(SizeMixConfig{Kind: MixIMIX, Seed: 8})
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		av := a.Next()
		if av != b.Next() {
			same = false
		}
		if av != c.Next() {
			diff = true
		}
	}
	if !same {
		t.Error("identical seeds diverged")
	}
	if !diff {
		t.Error("distinct seeds produced identical sequences")
	}
}
