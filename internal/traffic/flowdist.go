package traffic

// FlowDist is the shared flow-selection primitive the load generators use
// to decide which queue each packet lands on. qmsim's engine driver and
// the repository benchmarks used to hand-roll the same two patterns — a
// multiplicative uniform stride and a Zipf-skewed draw — in two places;
// this consolidates them behind one deterministic, per-worker picker.

import (
	"fmt"
	"math/rand"
)

// FlowDistKind selects the flow-selection pattern.
type FlowDistKind int

const (
	// FlowUniform scrambles a per-picker counter with a multiplicative
	// hash, spreading packets near-uniformly over the flow space with no
	// random-number state — the pattern the benchmarks use so that
	// concurrent workers land on different shards.
	FlowUniform FlowDistKind = iota
	// FlowZipf draws flows from a Zipf distribution with exponent Skew:
	// flow 0 is the hottest, concentrating traffic on few flows — the
	// workload where a shared segment pool beats a static split.
	FlowZipf
)

// String implements fmt.Stringer.
func (k FlowDistKind) String() string {
	switch k {
	case FlowUniform:
		return "uniform"
	case FlowZipf:
		return "zipf"
	default:
		return fmt.Sprintf("flow-dist(%d)", int(k))
	}
}

// FlowDistConfig parameterizes a FlowDist.
type FlowDistConfig struct {
	// Kind selects the pattern (default FlowUniform).
	Kind FlowDistKind
	// Flows is the flow-ID space (required, > 0); picks lie in [0, Flows).
	Flows int
	// Skew is the Zipf exponent for FlowZipf (must be > 1).
	Skew float64
	// Burst makes Burst consecutive picks return the same flow before
	// advancing (0 means 1): bursty arrivals build the long queues that
	// separate shared-buffer policies.
	Burst int
	// Seed decorrelates pickers: concurrent workers should use distinct
	// seeds so they walk different flow sequences (and, under FlowUniform,
	// mostly land on different shards).
	Seed uint64
}

// FlowDist is a deterministic single-goroutine flow picker. Concurrent
// workers each build their own (cheap) instance with distinct seeds.
type FlowDist struct {
	kind  FlowDistKind
	flows uint32
	burst uint32
	n     uint32 // picks made
	base  uint32 // seed-derived offset for the uniform stride
	last  uint32 // current burst's flow
	zipf  *rand.Zipf
}

// NewFlowDist validates cfg and returns a picker.
func NewFlowDist(cfg FlowDistConfig) (*FlowDist, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("traffic: FlowDist needs a positive flow count, got %d", cfg.Flows)
	}
	if cfg.Burst < 0 {
		return nil, fmt.Errorf("traffic: negative Burst %d", cfg.Burst)
	}
	if cfg.Burst == 0 {
		cfg.Burst = 1
	}
	d := &FlowDist{
		kind:  cfg.Kind,
		flows: uint32(cfg.Flows),
		burst: uint32(cfg.Burst),
		base:  uint32(cfg.Seed) * 100_003,
	}
	switch cfg.Kind {
	case FlowUniform:
		if cfg.Skew != 0 {
			return nil, fmt.Errorf("traffic: Skew %g set on a uniform FlowDist", cfg.Skew)
		}
	case FlowZipf:
		if cfg.Skew <= 1 {
			return nil, fmt.Errorf("traffic: Zipf exponent must be > 1, got %g", cfg.Skew)
		}
		src := rand.New(rand.NewSource(int64(cfg.Seed))) //nolint:gosec // simulation, not crypto
		d.zipf = rand.NewZipf(src, cfg.Skew, 1, uint64(cfg.Flows-1))
	default:
		return nil, fmt.Errorf("traffic: unknown FlowDistKind %d", int(cfg.Kind))
	}
	return d, nil
}

// Next returns the next flow ID in [0, Flows).
func (d *FlowDist) Next() uint32 {
	if d.n%d.burst == 0 {
		switch d.kind {
		case FlowZipf:
			d.last = uint32(d.zipf.Uint64())
		default:
			// Multiplicative scramble of the burst counter: consecutive
			// bursts land far apart in the flow space, and distinct seeds
			// walk distinct sequences.
			d.last = ((d.base + d.n/d.burst) * 2654435761) % d.flows
		}
	}
	d.n++
	return d.last
}
