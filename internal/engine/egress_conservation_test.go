package engine

// Egress accounting regressions and the conservation property.
//
// The two regressions pin real bugs: DRR's bound-exhaustion fallback used
// to serve a packet without charging the flow's deficit (free transmission
// forever under pathological quantum/packet-size ratios), and a WRR visit
// used to survive its flow emptying and refilling (stale credit bursts).
// The property test then holds every discipline to the structural law the
// fixes restore — served ≡ granted − outstanding — over randomized command
// sequences in the spirit of FuzzManagerCommands, at BOTH hierarchy
// levels: per flow within its class, and per class within its port. Flows
// are re-homed across randomized class configurations mid-run, so future
// accounting drift is caught without hand-written scenarios.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

// enableEgressAudit arms the grant-accounting hooks on every shard, at
// both hierarchy levels (ports that already allocated class state get
// their class audit retrofitted).
func enableEgressAudit(e *Engine) {
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.eg.audit = make([]int64, e.cfg.NumFlows)
			s.eg.auditClasses = true
			for p := range s.ps {
				if ps := &s.ps[p]; ps.classes != nil && ps.classAudit == nil {
					ps.classAudit = make([]int64, s.numClasses)
				}
			}
		})
	}
}

// TestDRRFallbackChargesDeficit is the regression for the free-transmit
// bug: with a 1-byte quantum and 9000-byte packets the pick loop's
// rotation bound exhausts long before any deficit covers a packet, so the
// work-conservation fallback serves one anyway. That service must be
// charged — the flow's deficit goes negative — not given away: before the
// fix the fallback returned the flow without deducting, so the deficit
// stayed non-negative and the flow transmitted for free forever.
func TestDRRFallbackChargesDeficit(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 1024, StoreData: true,
		Egress: policy.EgressConfig{Kind: policy.EgressDRR, QuantumBytes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const pktBytes = 9000
	for _, f := range []uint32{1, 2} {
		if _, err := e.EnqueuePacket(f, make([]byte, pktBytes)); err != nil {
			t.Fatal(err)
		}
	}
	d, ok := e.DequeueNext()
	if !ok {
		t.Fatal("work-conserving scheduler went idle with backlog")
	}
	if len(d.Data) != pktBytes {
		t.Fatalf("served %d bytes, want %d", len(d.Data), pktBytes)
	}
	e.ReleaseBuffer(d.Data)
	s := e.shards[0]
	var deficit int64
	e.run(s, func() { deficit = s.Deficit(int32(d.Flow)) })
	// The flow banked at most maxIter quanta (a few KB) before the
	// fallback served its 9000-byte packet: charging that service must
	// leave it in debt.
	if deficit >= 0 {
		t.Fatalf("fallback-served flow %d has deficit %d, want < 0 (service was not charged)", d.Flow, deficit)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWRRVisitEndsWhenFlowDrains is the regression for the stale-credit
// bug: a flow that empties mid-visit and refills before the next pick
// must not resume its old visit. Before the fix clearActive forfeited the
// DRR deficit but left visiting/credit intact, so the refilled flow burst
// ahead of its weight while its competitor waited.
func TestWRRVisitEndsWhenFlowDrains(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 1024, StoreData: true,
		Egress: policy.EgressConfig{Kind: policy.EgressWRR, DefaultWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetWeight(1, 4); err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, queue.SegmentBytes)
	for i := 0; i < 2; i++ {
		if _, err := e.EnqueuePacket(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(2, pkt); err != nil {
			t.Fatal(err)
		}
	}
	// Flow 1's visit starts (weight 4) but its queue holds only two
	// packets: the visit dies with the flow's backlog.
	for i := 0; i < 2; i++ {
		d, ok := e.DequeueNext()
		if !ok || d.Flow != 1 {
			t.Fatalf("pick %d served flow %d (ok=%v), want flow 1", i, d.Flow, ok)
		}
		e.ReleaseBuffer(d.Data)
	}
	// Refill flow 1 before the next pick. A correctly ended visit moves
	// on to flow 2; the stale visit would serve flow 1 again on leftover
	// credit.
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	d, ok := e.DequeueNext()
	if !ok {
		t.Fatal("scheduler idle with backlog")
	}
	e.ReleaseBuffer(d.Data)
	if d.Flow != 2 {
		t.Fatalf("pick after mid-visit drain served flow %d, want flow 2 (stale WRR credit resumed)", d.Flow)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEgressConservationProperty drives every flow-level discipline —
// crossed with randomized class-level configurations — through a
// randomized command sequence: enqueues, discipline serves, direct
// dequeues and deletes that empty flows mid-visit, weight changes, and
// class re-homing. It then checks the accounting law at both levels:
//
//	DRR:  bytes served == quanta granted − deficit outstanding
//	WRR:  packets served == visit credit granted − credit outstanding
//
// per flow (flow-level grants) and per class (class-level grants), with
// grants audited inside the pickers (net of forfeiture). Any path that
// serves without charging, charges without serving, or leaks credit
// across a drain or a class move breaks an equality. The pathological
// 1-byte quantum case routes every DRR pick through the
// work-conservation fallback, so the regression above is also covered
// structurally here.
func TestEgressConservationProperty(t *testing.T) {
	type caseCfg struct {
		eg     policy.EgressConfig
		shards int
	}
	var cases []caseCfg
	flowKinds := []policy.EgressConfig{
		{Kind: policy.EgressRR},
		{Kind: policy.EgressPrio},
		{Kind: policy.EgressWRR, DefaultWeight: 3},
		{Kind: policy.EgressDRR, QuantumBytes: 512},
		{Kind: policy.EgressDRR, QuantumBytes: 1}, // fallback-heavy
	}
	classKinds := []policy.EgressKind{policy.EgressRR, policy.EgressPrio, policy.EgressWRR, policy.EgressDRR}
	crng := rand.New(rand.NewSource(41))
	for i, fk := range flowKinds {
		for _, shards := range []int{1, 4} {
			// The flat configuration, and a randomized 8-class hierarchy
			// with the class kind cycling so every (flow, class) discipline
			// pairing appears across the matrix.
			cases = append(cases, caseCfg{eg: fk, shards: shards})
			hier := fk
			hier.NumClasses = 8
			hier.ClassKind = classKinds[(i+shards)%len(classKinds)]
			hier.ClassQuantumBytes = 256 << crng.Intn(3)
			hier.ClassWeights = make([]int, 8)
			for c := range hier.ClassWeights {
				hier.ClassWeights[c] = 1 + crng.Intn(4)
			}
			cases = append(cases, caseCfg{eg: hier, shards: shards})
		}
	}
	for ci, tc := range cases {
		eg := tc.eg
		numClasses := eg.NumClasses
		if numClasses == 0 {
			numClasses = 1
		}
		name := fmt.Sprintf("%v/q=%d/shards=%d/classes=%d-%v", eg.Kind, eg.QuantumBytes, tc.shards, numClasses, eg.ClassKind)
		t.Run(name, func(t *testing.T) {
			const flows = 64
			e, err := New(Config{
				Shards: tc.shards, NumFlows: flows, NumSegments: 4096,
				StoreData: true, Egress: eg,
			})
			if err != nil {
				t.Fatal(err)
			}
			enableEgressAudit(e)
			rng := rand.New(rand.NewSource(int64(1000*ci) + int64(7*tc.shards)))
			servedBytes := make([]int64, flows)
			servedPkts := make([]int64, flows)
			// Class-level service tallies, per (shard, class); every flow
			// stays on port 0 here (cross-port churn has its own test).
			classBytes := make([][]int64, tc.shards)
			classPkts := make([][]int64, tc.shards)
			for i := range classBytes {
				classBytes[i] = make([]int64, numClasses)
				classPkts[i] = make([]int64, numClasses)
			}
			check := func(stage string) {
				t.Helper()
				for f := uint32(0); f < flows; f++ {
					s := e.shardOf(f)
					switch eg.Kind {
					case policy.EgressDRR:
						deficit := s.Deficit(int32(f))
						if got, want := servedBytes[f], s.eg.audit[f]-deficit; got != want {
							t.Fatalf("%s: flow %d served %d bytes, granted−outstanding = %d−%d = %d",
								stage, f, got, s.eg.audit[f], deficit, want)
						}
					case policy.EgressWRR:
						var credit int64
						ps := &s.ps[s.portOf(f)]
						if ps.classes != nil {
							fl := &ps.classes[s.flows[f].class].fl
							if fl.Visiting() && fl.Cursor() == int32(f) {
								credit = fl.Credit()
							}
						}
						if got, want := servedPkts[f], s.eg.audit[f]-credit; got != want {
							t.Fatalf("%s: flow %d served %d packets, granted−outstanding = %d−%d = %d",
								stage, f, got, s.eg.audit[f], credit, want)
						}
					}
				}
				if numClasses > 1 {
					for si, s := range e.shards {
						ps := &s.ps[0]
						if ps.classes == nil {
							continue
						}
						for c := range ps.classes {
							switch eg.ClassKind {
							case policy.EgressDRR:
								deficit := ps.classes[c].deficit
								if got, want := classBytes[si][c], ps.classAudit[c]-deficit; got != want {
									t.Fatalf("%s: shard %d class %d served %d bytes, granted−outstanding = %d−%d = %d",
										stage, si, c, got, ps.classAudit[c], deficit, want)
								}
							case policy.EgressWRR:
								var credit int64
								if ps.cls.Visiting() && ps.cls.Cursor() == int32(c) {
									credit = ps.cls.Credit()
								}
								if got, want := classPkts[si][c], ps.classAudit[c]-credit; got != want {
									t.Fatalf("%s: shard %d class %d served %d packets, granted−outstanding = %d−%d = %d",
										stage, si, c, got, ps.classAudit[c], credit, want)
								}
							}
						}
					}
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
			}
			serve := func() {
				d, ok := e.DequeueNext()
				if !ok {
					return
				}
				servedBytes[d.Flow] += int64(len(d.Data))
				servedPkts[d.Flow]++
				s := e.shardOf(d.Flow)
				cls := int(s.flows[d.Flow].class)
				classBytes[e.ShardOf(d.Flow)][cls] += int64(len(d.Data))
				classPkts[e.ShardOf(d.Flow)][cls]++
				e.ReleaseBuffer(d.Data)
			}
			for i := 0; i < 20000; i++ {
				f := uint32(rng.Intn(flows))
				switch op := rng.Intn(13); {
				case op < 5:
					size := 1 + rng.Intn(9*queue.SegmentBytes)
					_, err := e.EnqueuePacket(f, make([]byte, size))
					if err != nil && !errors.Is(err, queue.ErrNoFreeSegments) {
						t.Fatal(err)
					}
				case op < 9:
					serve()
				case op < 10:
					// Direct drain: empties flows mid-visit, the path
					// that used to leak WRR credit and must forfeit
					// banked (positive) DRR deficit.
					if data, err := e.DequeuePacket(f); err == nil {
						e.ReleaseBuffer(data)
					}
				case op < 11:
					_, _ = e.DeletePacket(f)
				case op < 12:
					if err := e.SetWeight(f, 1+rng.Intn(5)); err != nil {
						t.Fatal(err)
					}
				default:
					// Class re-homing, possibly mid-visit at either level:
					// open visits must end and banked credit must be
					// forfeited exactly as on a drain.
					if numClasses > 1 {
						if err := e.SetFlowClass(f, rng.Intn(numClasses)); err != nil {
							t.Fatal(err)
						}
					}
				}
				if i%4096 == 0 {
					check(fmt.Sprintf("step %d", i))
				}
			}
			check("end of run")
			// Drain through the discipline and re-check: conservation
			// must survive the backlog's full service too.
			for {
				d, ok := e.DequeueNext()
				if !ok {
					break
				}
				servedBytes[d.Flow] += int64(len(d.Data))
				servedPkts[d.Flow]++
				s := e.shardOf(d.Flow)
				cls := int(s.flows[d.Flow].class)
				classBytes[e.ShardOf(d.Flow)][cls] += int64(len(d.Data))
				classPkts[e.ShardOf(d.Flow)][cls]++
				e.ReleaseBuffer(d.Data)
			}
			check("after drain")
			if st := e.Stats(); st.ActiveFlows != 0 || st.QueuedSegments != 0 {
				t.Fatalf("engine not empty after drain: %d flows, %d segments", st.ActiveFlows, st.QueuedSegments)
			}
		})
	}
}
