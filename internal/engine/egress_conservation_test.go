package engine

// Egress accounting regressions and the conservation property.
//
// The two regressions pin real bugs: DRR's bound-exhaustion fallback used
// to serve a packet without charging the flow's deficit (free transmission
// forever under pathological quantum/packet-size ratios), and a WRR visit
// used to survive its flow emptying and refilling (stale credit bursts).
// The property test then holds every discipline to the structural law the
// fixes restore — served ≡ granted − outstanding — over randomized command
// sequences in the spirit of FuzzManagerCommands, at EVERY hierarchy
// level: per flow within its innermost list, and per node at each
// intermediate level (tenant and class) within its port. Flows are
// re-homed across randomized tenant and class configurations mid-run, so
// future accounting drift is caught without hand-written scenarios.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/sched"
)

// enableEgressAudit arms the grant-accounting hooks on every shard, at
// every hierarchy level (ports that already built their level stack get
// their audit slices retrofitted).
func enableEgressAudit(e *Engine) {
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.eg.audit = make([]int64, e.cfg.NumFlows)
			s.eg.auditLevels = true
			for p := range s.ps {
				if ps := &s.ps[p]; ps.st.Ready() && ps.audits == nil {
					s.initLevelAuditLocked(ps)
				}
			}
		})
	}
}

// TestDRRFallbackChargesDeficit is the regression for the free-transmit
// bug: with a 1-byte quantum and 9000-byte packets the pick loop's
// rotation bound exhausts long before any deficit covers a packet, so the
// work-conservation fallback serves one anyway. That service must be
// charged — the flow's deficit goes negative — not given away: before the
// fix the fallback returned the flow without deducting, so the deficit
// stayed non-negative and the flow transmitted for free forever.
func TestDRRFallbackChargesDeficit(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 1024, StoreData: true,
		Egress: policy.EgressConfig{Kind: policy.EgressDRR, QuantumBytes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const pktBytes = 9000
	for _, f := range []uint32{1, 2} {
		if _, err := e.EnqueuePacket(f, make([]byte, pktBytes)); err != nil {
			t.Fatal(err)
		}
	}
	d, ok := e.DequeueNext()
	if !ok {
		t.Fatal("work-conserving scheduler went idle with backlog")
	}
	if len(d.Data) != pktBytes {
		t.Fatalf("served %d bytes, want %d", len(d.Data), pktBytes)
	}
	e.ReleaseBuffer(d.Data)
	s := e.shards[0]
	var deficit int64
	e.run(s, func() { deficit = s.Deficit(int32(d.Flow)) })
	// The flow banked at most maxIter quanta (a few KB) before the
	// fallback served its 9000-byte packet: charging that service must
	// leave it in debt.
	if deficit >= 0 {
		t.Fatalf("fallback-served flow %d has deficit %d, want < 0 (service was not charged)", d.Flow, deficit)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWRRVisitEndsWhenFlowDrains is the regression for the stale-credit
// bug: a flow that empties mid-visit and refills before the next pick
// must not resume its old visit. Before the fix clearActive forfeited the
// DRR deficit but left visiting/credit intact, so the refilled flow burst
// ahead of its weight while its competitor waited.
func TestWRRVisitEndsWhenFlowDrains(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 1024, StoreData: true,
		Egress: policy.EgressConfig{Kind: policy.EgressWRR, DefaultWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetWeight(1, 4); err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, queue.SegmentBytes)
	for i := 0; i < 2; i++ {
		if _, err := e.EnqueuePacket(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(2, pkt); err != nil {
			t.Fatal(err)
		}
	}
	// Flow 1's visit starts (weight 4) but its queue holds only two
	// packets: the visit dies with the flow's backlog.
	for i := 0; i < 2; i++ {
		d, ok := e.DequeueNext()
		if !ok || d.Flow != 1 {
			t.Fatalf("pick %d served flow %d (ok=%v), want flow 1", i, d.Flow, ok)
		}
		e.ReleaseBuffer(d.Data)
	}
	// Refill flow 1 before the next pick. A correctly ended visit moves
	// on to flow 2; the stale visit would serve flow 1 again on leftover
	// credit.
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	d, ok := e.DequeueNext()
	if !ok {
		t.Fatal("scheduler idle with backlog")
	}
	e.ReleaseBuffer(d.Data)
	if d.Flow != 2 {
		t.Fatalf("pick after mid-visit drain served flow %d, want flow 2 (stale WRR credit resumed)", d.Flow)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEgressConservationProperty drives every flow-level discipline —
// crossed with randomized two- and three-level hierarchies — through a
// randomized command sequence: enqueues, discipline serves, direct
// dequeues and deletes that empty flows mid-visit, weight changes, and
// tenant/class re-homing. It then checks the accounting law at every
// level of the stack:
//
//	DRR:  bytes served == quanta granted − deficit outstanding
//	WRR:  packets served == visit credit granted − credit outstanding
//
// per flow (leaf-level grants) and per node at each intermediate level
// (tenant-level and class-level grants), with grants audited inside the
// pickers (net of forfeiture). Any path that serves without charging,
// charges without serving, or leaks credit across a drain or a re-home
// breaks an equality. The pathological 1-byte quantum case routes every
// DRR pick through the work-conservation fallback, so the regression
// above is also covered structurally here.
func TestEgressConservationProperty(t *testing.T) {
	type caseCfg struct {
		eg               policy.EgressConfig
		shards           int
		tenants, classes int
	}
	var cases []caseCfg
	flowKinds := []policy.EgressConfig{
		{Kind: policy.EgressRR},
		{Kind: policy.EgressPrio},
		{Kind: policy.EgressWRR, DefaultWeight: 3},
		{Kind: policy.EgressDRR, QuantumBytes: 512},
		{Kind: policy.EgressDRR, QuantumBytes: 1}, // fallback-heavy
	}
	levelKinds := []policy.EgressKind{policy.EgressRR, policy.EgressPrio, policy.EgressWRR, policy.EgressDRR}
	crng := rand.New(rand.NewSource(41))
	randWeights := func(n int) []int {
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + crng.Intn(4)
		}
		return w
	}
	for i, fk := range flowKinds {
		for _, shards := range []int{1, 4} {
			// The flat configuration, a randomized 8-class two-level
			// hierarchy, and a randomized 3-tenant × 4-class three-level
			// hierarchy, with the level kinds cycling so every
			// (flow, level) discipline pairing appears across the matrix.
			cases = append(cases, caseCfg{eg: fk, shards: shards, tenants: 1, classes: 1})
			two := fk.WithLevel(policy.LevelSpec{
				Tier:         policy.TierClass,
				Kind:         levelKinds[(i+shards)%len(levelKinds)],
				Units:        8,
				Weights:      randWeights(8),
				QuantumBytes: 256 << crng.Intn(3),
			})
			cases = append(cases, caseCfg{eg: two, shards: shards, tenants: 1, classes: 8})
			three := fk.WithLevel(policy.LevelSpec{
				Tier:         policy.TierClass,
				Kind:         levelKinds[(i+shards+1)%len(levelKinds)],
				Units:        4,
				Weights:      randWeights(4),
				QuantumBytes: 256 << crng.Intn(3),
			}).WithLevel(policy.LevelSpec{
				Tier:         policy.TierTenant,
				Kind:         levelKinds[(i+shards+2)%len(levelKinds)],
				Units:        3,
				Weights:      randWeights(3),
				QuantumBytes: 256 << crng.Intn(3),
			})
			cases = append(cases, caseCfg{eg: three, shards: shards, tenants: 3, classes: 4})
		}
	}
	for ci, tc := range cases {
		eg := tc.eg
		name := fmt.Sprintf("%v/q=%d/shards=%d", eg.Kind, eg.QuantumBytes, tc.shards)
		if ls := eg.Level(policy.TierTenant); ls != nil {
			name += fmt.Sprintf("/tenants=%d-%v", ls.Units, ls.Kind)
		}
		if ls := eg.Level(policy.TierClass); ls != nil {
			name += fmt.Sprintf("/classes=%d-%v", ls.Units, ls.Kind)
		}
		t.Run(name, func(t *testing.T) {
			const flows = 64
			e, err := New(Config{
				Shards: tc.shards, NumFlows: flows, NumSegments: 4096,
				StoreData: true, Egress: eg,
			})
			if err != nil {
				t.Fatal(err)
			}
			enableEgressAudit(e)
			rng := rand.New(rand.NewSource(int64(1000*ci) + int64(7*tc.shards)))
			servedBytes := make([]int64, flows)
			servedPkts := make([]int64, flows)
			// Per-level service tallies, per (shard, level, composite
			// node); every flow stays on port 0 here (cross-port churn
			// has its own test). The level layout is identical on every
			// shard, so shard 0's levels describe them all.
			levels := e.shards[0].eg.levels
			levelBytes := make([][][]int64, tc.shards)
			levelPkts := make([][][]int64, tc.shards)
			for si := range levelBytes {
				levelBytes[si] = make([][]int64, len(levels))
				levelPkts[si] = make([][]int64, len(levels))
				for k := range levels {
					levelBytes[si][k] = make([]int64, levels[k].count)
					levelPkts[si][k] = make([]int64, levels[k].count)
				}
			}
			// flowLevel resolves the Level whose rotation currently
			// arbitrates flow f — the root when the stack is flat, the
			// innermost node's child list otherwise.
			flowLevel := func(s *shard, ps *portSched, f uint32) *sched.Level {
				n := ps.st.Depth()
				if n == 0 {
					return ps.st.Root()
				}
				var pb [numTiers]int32
				path := s.pathOf(f, pb[:0])
				return ps.st.Child(n-1, path[n-1])
			}
			check := func(stage string) {
				t.Helper()
				for f := uint32(0); f < flows; f++ {
					s := e.shardOf(f)
					ps := &s.ps[s.portOf(f)]
					switch s.eg.kind {
					case policy.EgressDRR:
						deficit := s.Deficit(int32(f))
						if got, want := servedBytes[f], s.eg.audit[f]-deficit; got != want {
							t.Fatalf("%s: flow %d served %d bytes, granted−outstanding = %d−%d = %d",
								stage, f, got, s.eg.audit[f], deficit, want)
						}
					case policy.EgressWRR:
						var credit int64
						if ps.st.Ready() {
							if fl := flowLevel(s, ps, f); fl.Visiting() && fl.Cursor() == int32(f) {
								credit = fl.Credit()
							}
						}
						if got, want := servedPkts[f], s.eg.audit[f]-credit; got != want {
							t.Fatalf("%s: flow %d served %d packets, granted−outstanding = %d−%d = %d",
								stage, f, got, s.eg.audit[f], credit, want)
						}
					}
				}
				for si, s := range e.shards {
					ps := &s.ps[0]
					if !ps.st.Ready() {
						continue
					}
					for k := range s.eg.levels {
						lv := &s.eg.levels[k]
						for idx := int32(0); idx < lv.count; idx++ {
							switch lv.kind {
							case policy.EgressDRR:
								deficit := ps.st.NodeDeficit(k, idx)
								if got, want := levelBytes[si][k][idx], ps.audits[k][idx]-deficit; got != want {
									t.Fatalf("%s: shard %d level %d (%s) node %d served %d bytes, granted−outstanding = %d−%d = %d",
										stage, si, k, tierName(int(lv.tier)), idx, got, ps.audits[k][idx], deficit, want)
								}
							case policy.EgressWRR:
								parent := ps.st.Root()
								if k > 0 {
									parent = ps.st.Child(k-1, idx/lv.mod)
								}
								var credit int64
								if parent.Visiting() && parent.Cursor() == idx {
									credit = parent.Credit()
								}
								if got, want := levelPkts[si][k][idx], ps.audits[k][idx]-credit; got != want {
									t.Fatalf("%s: shard %d level %d (%s) node %d served %d packets, granted−outstanding = %d−%d = %d",
										stage, si, k, tierName(int(lv.tier)), idx, got, ps.audits[k][idx], credit, want)
								}
							}
						}
					}
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
			}
			tally := func(f uint32, bytes int64) {
				servedBytes[f] += bytes
				servedPkts[f]++
				s := e.shardOf(f)
				si := e.ShardOf(f)
				var pb [numTiers]int32
				for k, idx := range s.pathOf(f, pb[:0]) {
					levelBytes[si][k][idx] += bytes
					levelPkts[si][k][idx]++
				}
			}
			serve := func() {
				d, ok := e.DequeueNext()
				if !ok {
					return
				}
				tally(d.Flow, int64(len(d.Data)))
				e.ReleaseBuffer(d.Data)
			}
			for i := 0; i < 20000; i++ {
				f := uint32(rng.Intn(flows))
				switch op := rng.Intn(14); {
				case op < 5:
					size := 1 + rng.Intn(9*queue.SegmentBytes)
					_, err := e.EnqueuePacket(f, make([]byte, size))
					if err != nil && !errors.Is(err, queue.ErrNoFreeSegments) {
						t.Fatal(err)
					}
				case op < 9:
					serve()
				case op < 10:
					// Direct drain: empties flows mid-visit, the path
					// that used to leak WRR credit and must forfeit
					// banked (positive) DRR deficit.
					if data, err := e.DequeuePacket(f); err == nil {
						e.ReleaseBuffer(data)
					}
				case op < 11:
					_, _ = e.DeletePacket(f)
				case op < 12:
					if err := e.SetWeight(f, 1+rng.Intn(5)); err != nil {
						t.Fatal(err)
					}
				case op < 13:
					// Class re-homing, possibly mid-visit at any level:
					// open visits must end and banked credit must be
					// forfeited exactly as on a drain.
					if tc.classes > 1 {
						if err := e.SetFlowClass(f, rng.Intn(tc.classes)); err != nil {
							t.Fatal(err)
						}
					}
				default:
					// Tenant re-homing: the flow moves with its class
					// across the outermost level.
					if tc.tenants > 1 {
						if err := e.SetFlowTenant(f, rng.Intn(tc.tenants)); err != nil {
							t.Fatal(err)
						}
					}
				}
				if i%4096 == 0 {
					check(fmt.Sprintf("step %d", i))
				}
			}
			check("end of run")
			// Drain through the discipline and re-check: conservation
			// must survive the backlog's full service too.
			for {
				d, ok := e.DequeueNext()
				if !ok {
					break
				}
				tally(d.Flow, int64(len(d.Data)))
				e.ReleaseBuffer(d.Data)
			}
			check("after drain")
			if st := e.Stats(); st.ActiveFlows != 0 || st.QueuedSegments != 0 {
				t.Fatalf("engine not empty after drain: %d flows, %d segments", st.ActiveFlows, st.QueuedSegments)
			}
		})
	}
}
