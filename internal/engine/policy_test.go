package engine

import (
	"errors"
	"sync"
	"testing"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

func seg(n int) []byte { return make([]byte, n*queue.SegmentBytes) }

// newPolicyEngine builds a single-shard engine so admission sees one pool.
func newPolicyEngine(t *testing.T, segments int, adm policy.Config, eg policy.EgressConfig) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:      1,
		NumFlows:    64,
		NumSegments: segments,
		StoreData:   true,
		Admission:   adm,
		Egress:      eg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTailDropAdmission(t *testing.T) {
	e := newPolicyEngine(t, 64, policy.Config{Kind: policy.KindTailDrop, Limit: 4}, policy.EgressConfig{})
	// Fill flow 1 to its cap.
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(1, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := e.EnqueuePacket(1, seg(1))
	if !errors.Is(err, ErrAdmissionDrop) {
		t.Fatalf("over-cap enqueue error = %v, want ErrAdmissionDrop", err)
	}
	// A different flow still gets in.
	if _, err := e.EnqueuePacket(2, seg(1)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.DroppedPackets != 1 || st.DroppedSegments != 1 {
		t.Fatalf("drops = (%d, %d), want (1, 1)", st.DroppedPackets, st.DroppedSegments)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLQDPushOut(t *testing.T) {
	e := newPolicyEngine(t, 16, policy.Config{Kind: policy.KindLQD}, policy.EgressConfig{})
	// Flow 1 hoards 12 segments in 3-segment packets; flow 2 takes 4.
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(1, seg(3)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(2, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	if free := e.FreeSegments(); free != 0 {
		t.Fatalf("pool should be full, %d free", free)
	}
	// A new arrival on flow 3 pushes out flow 1's head packet.
	if _, err := e.EnqueuePacket(3, seg(2)); err != nil {
		t.Fatalf("LQD should have admitted via push-out, got %v", err)
	}
	st := e.Stats()
	if st.PushedOutPackets != 1 || st.PushedOutSegments != 3 {
		t.Fatalf("push-out = (%d, %d) packets/segments, want (1, 3)", st.PushedOutPackets, st.PushedOutSegments)
	}
	if n, _ := e.Len(1); n != 9 {
		t.Fatalf("victim flow holds %d segments, want 9", n)
	}
	if n, _ := e.Len(3); n != 2 {
		t.Fatalf("arriving flow holds %d segments, want 2", n)
	}
	if st.DroppedPackets != 0 {
		t.Fatalf("LQD admitted arrival counted as dropped (%d)", st.DroppedPackets)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLQDOversizedArrivalDropped(t *testing.T) {
	e := newPolicyEngine(t, 8, policy.Config{Kind: policy.KindLQD}, policy.EgressConfig{})
	if _, err := e.EnqueuePacket(1, seg(4)); err != nil {
		t.Fatal(err)
	}
	// 100 segments can never fit an 8-segment pool: dropped, nothing evicted.
	_, err := e.EnqueuePacket(2, seg(100))
	if !errors.Is(err, ErrAdmissionDrop) {
		t.Fatalf("oversized arrival error = %v, want ErrAdmissionDrop", err)
	}
	if n, _ := e.Len(1); n != 4 {
		t.Fatalf("resident flow disturbed: %d segments", n)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestREDEngineDropsUnderPressure(t *testing.T) {
	e := newPolicyEngine(t, 128,
		policy.Config{Kind: policy.KindRED, MinTh: 0.1, MaxTh: 0.5, MaxP: 0.8, Weight: 0.5, Seed: 3},
		policy.EgressConfig{})
	// Push occupancy toward ~75%; with Weight 0.5 the average tracks fast,
	// so RED may already shed arrivals while filling.
	drops := 0
	for i, accepted := 0, 0; accepted < 96 && i < 2000; i++ {
		_, err := e.EnqueuePacket(uint32(i%8), seg(1))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrAdmissionDrop):
			drops++
		default:
			t.Fatalf("warmup enqueue %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		_, err := e.EnqueuePacket(uint32(i%8), seg(1))
		switch {
		case err == nil:
			if _, err := e.DequeuePacket(uint32(i % 8)); err != nil {
				t.Fatal(err)
			}
		case errors.Is(err, ErrAdmissionDrop):
			drops++
		default:
			t.Fatal(err)
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped at 75% occupancy above MaxTh")
	}
	st := e.Stats()
	if st.DroppedPackets != uint64(drops) {
		t.Fatalf("stats say %d drops, observed %d", st.DroppedPackets, drops)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConservationLawAcrossPolicies(t *testing.T) {
	for _, cfg := range []policy.Config{
		{},
		{Kind: policy.KindTailDrop, Limit: 6},
		{Kind: policy.KindLQD},
		{Kind: policy.KindRED, MinTh: 0.2, MaxTh: 0.6, MaxP: 0.5, Weight: 0.1, Seed: 9},
	} {
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			e, err := New(Config{
				Shards: 4, NumFlows: 128, NumSegments: 128, StoreData: true,
				Admission: cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Overdrive the pool, interleaving dequeues and deletes.
			for i := 0; i < 3000; i++ {
				f := uint32(i*7) % 128
				_, err := e.EnqueuePacket(f, seg(1+i%3))
				if err != nil && !errors.Is(err, ErrAdmissionDrop) &&
					!errors.Is(err, queue.ErrNoFreeSegments) {
					t.Fatal(err)
				}
				if i%3 == 0 {
					if _, err := e.DequeuePacket(uint32(i * 13 % 128)); err != nil &&
						!errors.Is(err, queue.ErrQueueEmpty) {
						t.Fatal(err)
					}
				}
				if i%11 == 0 {
					if _, err := e.DeletePacket(uint32(i * 5 % 128)); err != nil &&
						!errors.Is(err, queue.ErrQueueEmpty) {
						t.Fatal(err)
					}
				}
			}
			st := e.Stats()
			if st.EnqueuedSegments != st.DequeuedSegments+st.PushedOutSegments+uint64(st.QueuedSegments) {
				t.Fatalf("conservation: enq %d != deq %d + pushed %d + resident %d",
					st.EnqueuedSegments, st.DequeuedSegments, st.PushedOutSegments, st.QueuedSegments)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEgressPriority(t *testing.T) {
	e := newPolicyEngine(t, 64, policy.Config{}, policy.EgressConfig{Kind: policy.EgressPrio})
	for _, f := range []uint32{5, 2, 7, 2, 0, 5} {
		if _, err := e.EnqueuePacket(f, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint32
	for {
		p, ok := e.DequeueNext()
		if !ok {
			break
		}
		got = append(got, p.Flow)
		e.ReleaseBuffer(p.Data)
	}
	want := []uint32{0, 2, 2, 5, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("served %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order %v, want %v", got, want)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEgressRoundRobin(t *testing.T) {
	e := newPolicyEngine(t, 64, policy.Config{}, policy.EgressConfig{Kind: policy.EgressRR})
	for f := uint32(0); f < 4; f++ {
		for i := 0; i < 3; i++ {
			if _, err := e.EnqueuePacket(f, seg(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Twelve packets over four flows: every window of four consecutive
	// picks must serve four distinct flows while all stay backlogged.
	batch := e.DequeueNextBatch(8)
	if len(batch) != 8 {
		t.Fatalf("got %d packets, want 8", len(batch))
	}
	for w := 0; w+4 <= 8; w += 4 {
		seen := map[uint32]bool{}
		for _, p := range batch[w : w+4] {
			seen[p.Flow] = true
		}
		if len(seen) != 4 {
			t.Fatalf("window %d served flows %v, want all 4 distinct", w, batch[w:w+4])
		}
	}
	for _, p := range batch {
		e.ReleaseBuffer(p.Data)
	}
}

func TestEgressWRRRatios(t *testing.T) {
	e := newPolicyEngine(t, 4096, policy.Config{},
		policy.EgressConfig{Kind: policy.EgressWRR, DefaultWeight: 1})
	if err := e.SetWeight(1, 3); err != nil {
		t.Fatal(err)
	}
	for f := uint32(1); f <= 2; f++ {
		for i := 0; i < 400; i++ {
			if _, err := e.EnqueuePacket(f, seg(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := map[uint32]int{}
	for i := 0; i < 200; i++ {
		p, ok := e.DequeueNext()
		if !ok {
			t.Fatal("scheduler went idle with backlog")
		}
		counts[p.Flow]++
		e.ReleaseBuffer(p.Data)
	}
	// Weight 3:1 over 200 picks → 150/50.
	if counts[1] != 150 || counts[2] != 50 {
		t.Fatalf("WRR split %v, want flow1=150 flow2=50", counts)
	}
}

func TestEgressDRRByteFairness(t *testing.T) {
	e := newPolicyEngine(t, 8192, policy.Config{},
		policy.EgressConfig{Kind: policy.EgressDRR, QuantumBytes: 512})
	// Flow 1 sends 4-segment (256 B) packets, flow 2 sends 1-segment (64 B):
	// byte-fair service means ~4x as many flow-2 packets.
	for i := 0; i < 300; i++ {
		if _, err := e.EnqueuePacket(1, seg(4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1200; i++ {
		if _, err := e.EnqueuePacket(2, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	bytes := map[uint32]int{}
	for i := 0; i < 500; i++ {
		p, ok := e.DequeueNext()
		if !ok {
			t.Fatal("scheduler went idle with backlog")
		}
		bytes[p.Flow] += len(p.Data)
		e.ReleaseBuffer(p.Data)
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("DRR byte split %v (ratio %.2f), want ~1.0", bytes, ratio)
	}
}

func TestEgressWorkConservingAcrossShards(t *testing.T) {
	for _, kind := range []policy.EgressKind{policy.EgressRR, policy.EgressPrio, policy.EgressWRR, policy.EgressDRR} {
		e, err := New(Config{
			Shards: 8, NumFlows: 512, NumSegments: 4096, StoreData: true,
			Egress: policy.EgressConfig{Kind: kind},
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for f := uint32(0); f < 512; f += 3 {
			if _, err := e.EnqueuePacket(f, seg(1)); err != nil {
				t.Fatal(err)
			}
			total++
		}
		served := 0
		for {
			batch := e.DequeueNextBatch(17)
			if len(batch) == 0 {
				break
			}
			for _, p := range batch {
				served++
				e.ReleaseBuffer(p.Data)
			}
		}
		if served != total {
			t.Fatalf("%v: served %d of %d packets", kind, served, total)
		}
		if st := e.Stats(); st.ActiveFlows != 0 {
			t.Fatalf("%v: %d flows still active after drain", kind, st.ActiveFlows)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestConcurrentPolicyReconfiguration hammers the engine with producers and
// consumers while another goroutine flips admission policies, egress
// disciplines, and per-flow weights. Run under -race (CI does), this is the
// reconfiguration-safety check; afterwards the invariants must still hold.
func TestConcurrentPolicyReconfiguration(t *testing.T) {
	e, err := New(Config{
		Shards: 4, NumFlows: 256, NumSegments: 2048, StoreData: true,
		Admission: policy.Config{Kind: policy.KindLQD},
	})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 3
	const perProducer = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			data := seg(2)
			for i := 0; i < perProducer; i++ {
				f := uint32(p*101+i*17) % 256
				_, err := e.EnqueuePacket(f, data)
				if err != nil && !errors.Is(err, ErrAdmissionDrop) &&
					!errors.Is(err, queue.ErrNoFreeSegments) {
					t.Errorf("producer: %v", err)
					return
				}
			}
		}(p)
	}

	var consWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				batch := e.DequeueNextBatch(16)
				for _, p := range batch {
					e.ReleaseBuffer(p.Data)
				}
				if len(batch) == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		admissions := []policy.Config{
			{Kind: policy.KindTailDrop, Limit: 8},
			{Kind: policy.KindRED, MinTh: 0.2, MaxTh: 0.7, MaxP: 0.4, Weight: 0.05, Seed: 5},
			{Kind: policy.KindLQD},
			{},
		}
		egresses := []policy.EgressConfig{
			{Kind: policy.EgressRR},
			{Kind: policy.EgressWRR, DefaultWeight: 2},
			{Kind: policy.EgressDRR, QuantumBytes: 256},
			{Kind: policy.EgressPrio},
		}
		for i := 0; i < 400; i++ {
			if err := e.SetAdmission(admissions[i%len(admissions)]); err != nil {
				t.Errorf("SetAdmission: %v", err)
				return
			}
			if err := e.SetEgress(egresses[i%len(egresses)]); err != nil {
				t.Errorf("SetEgress: %v", err)
				return
			}
			if err := e.SetWeight(uint32(i%256), 1+i%7); err != nil {
				t.Errorf("SetWeight: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	consWG.Wait()

	// Drain and verify conservation end-to-end.
	for {
		batch := e.DequeueNextBatch(64)
		if len(batch) == 0 {
			break
		}
		for _, p := range batch {
			e.ReleaseBuffer(p.Data)
		}
	}
	st := e.Stats()
	if st.QueuedSegments != 0 {
		t.Fatalf("%d segments still resident after drain", st.QueuedSegments)
	}
	if st.EnqueuedSegments != st.DequeuedSegments+st.PushedOutSegments {
		t.Fatalf("conservation after drain: enq %d != deq %d + pushed %d",
			st.EnqueuedSegments, st.DequeuedSegments, st.PushedOutSegments)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLQDDoesNotEvictForCappedArrival(t *testing.T) {
	// LQD plus a per-flow cap: an arrival the cap will refuse anyway must
	// not push out another flow's packet first.
	e, err := New(Config{
		Shards: 1, NumFlows: 64, NumSegments: 8, StoreData: true,
		Admission: policy.Config{Kind: policy.KindLQD},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetFlowLimit(1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.EnqueuePacket(1, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := e.EnqueuePacket(2, seg(2)); err != nil {
			t.Fatal(err)
		}
	}
	if free := e.FreeSegments(); free != 0 {
		t.Fatalf("pool should be full, %d free", free)
	}
	// Flow 1 is at its cap: the arrival must be refused by the limit
	// without evicting anything from flow 2.
	if _, err := e.EnqueuePacket(1, seg(1)); !errors.Is(err, queue.ErrQueueLimit) {
		t.Fatalf("capped arrival err = %v, want ErrQueueLimit", err)
	}
	st := e.Stats()
	if st.PushedOutPackets != 0 {
		t.Fatalf("%d packets evicted for an arrival the cap refused", st.PushedOutPackets)
	}
	if n, _ := e.Len(2); n != 6 {
		t.Fatalf("innocent flow disturbed: %d segments, want 6", n)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMovePacketHonorsAdmission(t *testing.T) {
	// Same-shard move: the tail-drop per-queue cap applies to the
	// destination even though pool occupancy is unchanged.
	e := newPolicyEngine(t, 64, policy.Config{Kind: policy.KindTailDrop, Limit: 4}, policy.EgressConfig{})
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(2, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.EnqueuePacket(1, seg(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MovePacket(1, 2); !errors.Is(err, ErrAdmissionDrop) {
		t.Fatalf("move into capped queue err = %v, want ErrAdmissionDrop", err)
	}
	if n, _ := e.Len(1); n != 2 {
		t.Fatalf("refused move disturbed the source: %d segments", n)
	}
	st := e.Stats()
	if st.DroppedPackets != 0 {
		t.Fatalf("refused move counted as a drop (%d): the packet was not lost", st.DroppedPackets)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossShardMoveIntoFullPool(t *testing.T) {
	// A cross-shard move allocates nothing — the packet's segments are
	// already resident in the shared pool — so it must succeed even when
	// the pool is completely full, and must not evict anything.
	e, err := New(Config{
		Shards: 2, NumFlows: 64, NumSegments: 16, StoreData: true,
		Admission: policy.Config{Kind: policy.KindLQD},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find two flows on different shards.
	src, dst := uint32(0), uint32(0)
	for f := uint32(1); f < 64; f++ {
		if e.ShardOf(f) != e.ShardOf(0) {
			src, dst = 0, f
			break
		}
	}
	if _, err := e.EnqueuePacket(src, seg(2)); err != nil {
		t.Fatal(err)
	}
	// Fill the rest of the pool via dst.
	for e.FreeSegments() > 0 {
		if _, err := e.EnqueuePacket(dst, seg(2)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.MovePacket(src, dst)
	if err != nil || n != 2 {
		t.Fatalf("cross-shard move with full pool = (%d, %v), want (2, nil)", n, err)
	}
	st := e.Stats()
	if st.PushedOutPackets != 0 {
		t.Fatalf("move evicted %d packets; it allocates nothing and must not push out", st.PushedOutPackets)
	}
	if l, _ := e.Len(dst); l != 16 {
		t.Fatalf("destination holds %d segments, want 16", l)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLQDEvictsAcrossShards(t *testing.T) {
	// Global LQD: the hog and the arrival live on different shards; the
	// arrival's shard must evict the globally longest queue on the other
	// shard — impossible under the old per-shard pool split, where the
	// arrival's shard could only see (and evict from) its own fragment.
	e, err := New(Config{
		Shards: 4, NumFlows: 256, NumSegments: 64, StoreData: true,
		Admission: policy.Config{Kind: policy.KindLQD},
	})
	if err != nil {
		t.Fatal(err)
	}
	hog := uint32(0)
	victim := uint32(0)
	for f := uint32(1); f < 256; f++ {
		if e.ShardOf(f) != e.ShardOf(hog) {
			victim = f
			break
		}
	}
	// The hog fills the whole shared pool from its shard.
	for i := 0; i < 16; i++ {
		if _, err := e.EnqueuePacket(hog, seg(4)); err != nil {
			t.Fatalf("hog enqueue %d: %v", i, err)
		}
	}
	if free := e.FreeSegments(); free != 0 {
		t.Fatalf("pool should be full, %d free", free)
	}
	// An arrival on another shard pushes the hog out.
	if _, err := e.EnqueuePacket(victim, seg(2)); err != nil {
		t.Fatalf("LQD should have admitted via cross-shard push-out, got %v", err)
	}
	st := e.Stats()
	if st.PushedOutPackets == 0 {
		t.Fatal("no push-out recorded")
	}
	if n, _ := e.Len(hog); n != 60 {
		t.Fatalf("hog holds %d segments, want 60 (one 4-segment packet evicted)", n)
	}
	if n, _ := e.Len(victim); n != 2 {
		t.Fatalf("arrival holds %d segments, want 2", n)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDRRDeficitForfeitedOnDirectDrain(t *testing.T) {
	e := newPolicyEngine(t, 4096, policy.Config{},
		policy.EgressConfig{Kind: policy.EgressDRR, QuantumBytes: 64})
	// Flow 1 holds one large packet the 64-byte quantum cannot cover in
	// one visit; flow 2 keeps the scheduler rotating so flow 1 banks
	// deficit across visits.
	if _, err := e.EnqueuePacket(1, seg(8)); err != nil { // 512 bytes
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(2, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		p, ok := e.DequeueNext()
		if !ok {
			t.Fatal("idle with backlog")
		}
		if p.Flow != 2 {
			t.Fatalf("flow 1 served with insufficient deficit (pick %d)", i)
		}
		e.ReleaseBuffer(p.Data)
	}
	// Drain flow 1 through the direct path: its banked deficit must go.
	if data, err := e.DequeuePacket(1); err != nil {
		t.Fatal(err)
	} else {
		e.ReleaseBuffer(data)
	}
	// Refill both flows with equal small packets: flow 1 must not burst
	// ahead on stale credit — successive picks alternate.
	for i := 0; i < 8; i++ {
		if _, err := e.EnqueuePacket(1, seg(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnqueuePacket(2, seg(1)); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[uint32]int{}
	for i := 0; i < 8; i++ {
		p, ok := e.DequeueNext()
		if !ok {
			t.Fatal("idle with backlog")
		}
		counts[p.Flow]++
		e.ReleaseBuffer(p.Data)
	}
	if counts[1] != 4 || counts[2] != 4 {
		t.Fatalf("post-drain DRR split %v, want 4/4 (stale deficit detected)", counts)
	}
}

func TestSetWeightValidation(t *testing.T) {
	e := newPolicyEngine(t, 64, policy.Config{}, policy.EgressConfig{Kind: policy.EgressWRR})
	if err := e.SetWeight(1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := e.SetWeight(1, -2); err == nil {
		t.Error("negative weight accepted")
	}
	if err := e.SetWeight(1<<20, 3); err == nil {
		t.Error("out-of-range flow accepted")
	}
	if err := e.SetWeight(3, 4); err != nil {
		t.Errorf("valid weight rejected: %v", err)
	}
}

func TestBatchEnqueueWithAdmission(t *testing.T) {
	e := newPolicyEngine(t, 16, policy.Config{Kind: policy.KindTailDrop, Limit: 2}, policy.EgressConfig{})
	batch := make([]EnqueueReq, 6)
	for i := range batch {
		batch[i] = EnqueueReq{Flow: 1, Data: seg(1)}
	}
	n, errs := e.EnqueueBatch(batch)
	if n != 2 {
		t.Fatalf("batch linked %d segments, want 2 (cap)", n)
	}
	drops := 0
	for _, err := range errs {
		if errors.Is(err, ErrAdmissionDrop) {
			drops++
		}
	}
	if drops != 4 {
		t.Fatalf("%d batch entries dropped, want 4", drops)
	}
	st := e.Stats()
	if st.DroppedPackets != 4 {
		t.Fatalf("stats drops = %d, want 4", st.DroppedPackets)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
