package engine

// The asynchronous command-ring datapath. After Start, every shard owns a
// bounded MPSC command ring (internal/ring) and a worker goroutine that
// drains it in batches, run to completion — the software rendering of the
// paper's DMC/command-FIFO structure: producers post commands, the queue
// manager pipelines them, and nobody but the manager touches queue state.
// The worker is the shard's single writer, so command execution takes no
// mutex; producers pay one CAS per post, and a full ring applies
// backpressure instead of growing without bound.
//
// Calls that need results (EnqueuePacket, DequeuePacket, the batch APIs,
// DequeueNextBatch, all control-plane operations) block on completions: the
// poster allocates a pooled completion, posts one or more commands carrying
// it, and parks until the last worker decrements the countdown — one wakeup
// per producer batch, not per command. EnqueueAsync posts with no
// completion at all; its outcomes (admission drops, pool rejections) are
// visible in Stats counters.
//
// Cross-shard operations never run inside a worker, so workers cannot
// deadlock on each other: the calling goroutine orchestrates them as a
// sequence of single-shard commands (the LQD evict-and-retry loop, the
// cross-shard MovePacket unlink/link/rollback) — exactly the discipline the
// synchronous datapath already followed with its "shard locks never nest"
// rule. The one concession is a fire-and-forget LQD enqueue: its worker
// cannot block on other shards, so it evicts from its own shard's longest
// queue when the pool is full, and drops (counted) when that cannot make
// room.

import (
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/ring"
)

// workerBatch is how many commands a worker drains per ring pop.
const workerBatch = 256

// cmdRing is the per-shard command ring instantiation.
type cmdRing = ring.Ring[command]

// opKind discriminates ring commands. The hot datapath kinds are
// dedicated (no closure allocation); everything slow or control-plane
// travels as an opCall closure.
type opKind uint8

const (
	opEnqueue         opKind = iota // fire-and-forget enqueue
	opEnqueueWait                   // enqueue with completion + result
	opDequeueWait                   // dequeue with completion + result
	opDequeueNext                   // egress-picked dequeue of up to arg packets
	opDequeueViewWait               // zero-copy dequeue with completion + view result
	opDequeueNextView               // egress-picked zero-copy dequeue of up to arg packets
	opReserve                       // open an arg-byte write-in-place reservation
	opCommit                        // splice a filled reservation onto its queue
	opCall                          // run fn inside the shard's critical section
	opBarrier                       // completion only: drain marker
)

// command is one ring entry.
type command struct {
	kind opKind
	flow uint32
	arg  int
	port int32 // opDequeueNext[View]: scheduling unit to pick from (anyPort = all)
	slot int32 // result slot in the completion's per-shard slices
	data []byte
	w    queue.PacketWriter // opCommit: the filled reservation to splice
	fn   func()
	co   *call
}

// call is a pooled completion: a countdown decremented by workers as they
// finish the commands carrying it, plus result slots for the dedicated
// kinds. The poster initializes pending to the command count plus one (its
// own hold), posts, releases the hold along with any commands it failed to
// post, and parks on done unless its own release reached zero. Whoever
// brings pending to zero sends the single wakeup, so one producer batch
// costs one channel operation no matter how many commands or shards it
// spanned.
type call struct {
	pending atomic.Int32
	done    chan struct{}

	// Result slots for dedicated command kinds (single-writer per slot).
	n     int
	err   error
	data  []byte
	view  PacketView         // opDequeueViewWait result
	w     queue.PacketWriter // opReserve result
	deq   []Dequeued         // single-shard opDequeueNext results
	deqs  [][]Dequeued       // fan-out opDequeueNext results, one slice per shard
	deqv  []DequeuedView     // single-shard opDequeueNextView results
	deqvs [][]DequeuedView   // fan-out opDequeueNextView results, one slice per shard
	segs  atomic.Int64       // batch enqueue: total segments linked
}

// finishN retires n of c's commands in one countdown decrement. Workers
// call it once per completion per drained batch (see execBatch), so a
// multi-command completion costs its poster one wakeup and the worker one
// atomic per drain, not per command.
func (c *call) finishN(n int32) {
	if c.pending.Add(-n) == 0 {
		c.done <- struct{}{}
	}
}

// waitSpins is how many scheduler yields a completion waiter makes before
// parking on the channel. Yield-polling lets the workers run and finish
// short commands without paying a full park/unpark round trip — on a
// loaded box the completion usually lands within a few yields.
const waitSpins = 64

// wait parks until the countdown's single wakeup arrives.
func (c *call) wait() {
	for i := 0; i < waitSpins; i++ {
		select {
		case <-c.done:
			return
		default:
			runtime.Gosched()
		}
	}
	<-c.done
}

// release drops n holds from the poster side and parks until the workers
// are done (skipping the park when the poster's own release reached zero —
// then every worker had already finished and nobody will signal).
func (c *call) release(n int32) {
	if c.pending.Add(-n) != 0 {
		c.wait()
	}
}

func (e *Engine) getCall() *call {
	if v := e.callPool.Get(); v != nil {
		c := v.(*call)
		c.n, c.err, c.data = 0, nil, nil
		c.view = PacketView{}
		c.w = queue.PacketWriter{}
		c.segs.Store(0)
		return c
	}
	return &call{done: make(chan struct{}, 1)}
}

func (e *Engine) putCall(c *call) {
	for i := range c.deq {
		c.deq[i] = Dequeued{}
	}
	c.deq = c.deq[:0]
	for i := range c.deqs {
		for j := range c.deqs[i] {
			c.deqs[i][j] = Dequeued{}
		}
		c.deqs[i] = c.deqs[i][:0]
	}
	c.deqs = c.deqs[:0]
	for i := range c.deqv {
		c.deqv[i] = DequeuedView{}
	}
	c.deqv = c.deqv[:0]
	for i := range c.deqvs {
		for j := range c.deqvs[i] {
			c.deqvs[i][j] = DequeuedView{}
		}
		c.deqvs[i] = c.deqvs[i][:0]
	}
	c.deqvs = c.deqvs[:0]
	c.data = nil
	e.callPool.Put(c)
}

// Start switches the engine from the synchronous to the ring datapath:
// it creates one command ring per shard, waits out every synchronous
// operation still holding a shard mutex, and launches the per-shard
// workers, which own their shards from then on. Idempotent; returns
// ErrClosed after Close. Safe to call while traffic flows — calls that
// began on the synchronous datapath finish there before the workers take
// over.
func (e *Engine) Start() error {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	switch e.mode.Load() {
	case modeClosed:
		return ErrClosed
	case modeRing:
		return nil
	}
	for _, s := range e.shards {
		r, err := ring.New[command](e.cfg.RingCapacity)
		if err != nil {
			return err
		}
		s.ring = r
	}
	e.mode.Store(modeRing)
	// Barrier: every synchronous-path critical section entered before the
	// flip still holds its shard mutex; acquiring and releasing all of them
	// guarantees those sections have finished. Sections entered after the
	// flip re-check the mode under the lock (lockSync) and bail out, so
	// once this loop completes the workers are the sole shard writers.
	for _, s := range e.shards {
		s.mu.Lock()
	}
	for _, s := range e.shards {
		s.mu.Unlock()
	}
	e.workers.Add(len(e.shards))
	for i := range e.shards {
		go e.worker(i)
	}
	return nil
}

// Drain blocks until every command posted before the call has been
// executed: it posts a barrier command to every shard ring and waits for
// the full countdown. On the synchronous datapath it is a no-op (nil);
// after Close it reports ErrClosed (Close itself drains).
func (e *Engine) Drain() error {
	for {
		switch e.mode.Load() {
		case modeSync:
			return nil
		case modeClosed:
			return ErrClosed
		}
		c := e.getCall()
		want := int32(len(e.shards))
		c.pending.Store(want + 1)
		posted := int32(0)
		for _, s := range e.shards {
			if s.ring.Push(command{kind: opBarrier, co: c}) == nil {
				posted++
			}
		}
		c.release(want - posted + 1)
		e.putCall(c)
		if posted == want {
			return nil
		}
		// Some rings refused: the engine is closing. Yield until Close
		// finishes flipping the mode, then report ErrClosed above.
		runtime.Gosched()
	}
}

// Close shuts the engine down. On the ring datapath it stops accepting new
// commands, lets the workers drain everything already posted (no packet or
// counter is lost), and waits for them to exit; blocked callers whose
// commands were accepted complete normally, later calls return ErrClosed.
// Port workers spawned by Serve are unparked and waited out last (a Sink
// blocked forever therefore blocks Close). Close is idempotent and safe
// to call concurrently. After Close the observation surface (Stats,
// ShardStats, PortStats, CheckInvariants, Len, Occupancy, ActiveFlows,
// FreeSegments) keeps working against the quiescent state.
func (e *Engine) Close() error {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	switch e.mode.Load() {
	case modeClosed:
		return nil
	case modeSync:
		e.mode.Store(modeClosed)
		e.stopPorts()
		return nil
	}
	// Order matters: the mode must not read modeClosed while any worker is
	// still draining, because the closed mode is what licenses run() and
	// the observation surface to fall back to the (otherwise unused) shard
	// mutexes. Sealing the rings first makes every new post fail with
	// ErrClosed — so the datapath refuses work throughout the drain window
	// — and only after the last worker has exited does the mode flip, at
	// which point the mutex fallback cannot race a worker.
	for _, s := range e.shards {
		s.ring.Close()
	}
	e.workers.Wait()
	e.mode.Store(modeClosed)
	e.stopPorts()
	return nil
}

// stopPorts unparks every port worker and waits for them to exit; called
// exactly once, under lifeMu, after the mode flipped to modeClosed.
func (e *Engine) stopPorts() {
	close(e.portStop)
	e.portWG.Wait()
}

// busyPollSpins is the bounded spin budget of Config.BusyPoll: how many
// empty polls (each yielding the processor) a worker makes before parking.
// Large enough to ride out a producer's inter-burst gap, small enough that
// a worker whose traffic stopped is parked within microseconds of the
// budget draining — the park-within-budget test holds the engine to that.
const busyPollSpins = 1024

// Work-stealing tuning. A victim is worth visiting when its ring backlog
// is at least stealThreshold commands (half a drain batch — below that the
// owner clears it faster than a thief can take the mutex), and a thief
// bites off at most stealBatch commands per visit so the owner is never
// starved of its own ring.
const (
	stealThreshold = workerBatch / 2
	stealBatch     = workerBatch / 4
)

// workerScratch is a worker's (or thief's) per-goroutine drain state:
// the command buffer plus the completion-flush table execBatch merges
// countdown decrements into. One allocation per worker, reused per drain.
type workerScratch struct {
	buf []command
	cos []*call
	cnt []int32
}

func newWorkerScratch() *workerScratch {
	return &workerScratch{
		buf: make([]command, workerBatch),
		cos: make([]*call, 0, workerBatch),
		cnt: make([]int32, 0, workerBatch),
	}
}

// execBatch runs a drained batch inside shard s's critical section and
// flushes completion countdowns merged per distinct completion — one
// decrement and at most one producer wakeup per completion per drain,
// instead of one per command. Merged decrements are counted on the shard
// as coalesced wakes. The caller must hold s's consumer role (own ring
// drain, or the shard mutex in work-stealing mode).
func (e *Engine) execBatch(s *shard, cmds []command, w *workerScratch) {
	cos, cnt := w.cos[:0], w.cnt[:0]
	coalesced := uint64(0)
	for i := range cmds {
		c := &cmds[i]
		co := c.co
		e.exec(s, c)
		if co != nil {
			// Reverse scan: commands sharing a completion are posted in
			// runs, so the previous entry hits first.
			merged := false
			for t := len(cos) - 1; t >= 0; t-- {
				if cos[t] == co {
					cnt[t]++
					coalesced++
					merged = true
					break
				}
			}
			if !merged {
				cos = append(cos, co)
				cnt = append(cnt, 1)
			}
		}
		cmds[i] = command{} // drop payload/closure references promptly
	}
	// Republish the free-count mirror before the flush: the per-operation
	// publish is deferred on the single-writer path, but pool-wide Free()
	// must be fresh by the time a woken producer can observe the batch.
	s.m.PublishFree()
	for i := range cos {
		cos[i].finishN(cnt[i])
		cos[i] = nil // don't pin pooled completions through the scratch
	}
	if coalesced > 0 {
		s.coalescedWakes.Add(coalesced)
	}
	w.cos, w.cnt = cos[:0], cnt
}

// worker is shard si's single writer: it drains the shard's command ring
// in batches, run to completion, until the ring is closed and empty. With
// Config.WorkSteal it is instead the shard's *default* writer — execution
// is serialized by the shard mutex and idle siblings help out
// (workerSteal).
func (e *Engine) worker(si int) {
	defer e.workers.Done()
	s := e.shards[si]
	w := newWorkerScratch()
	if e.cfg.WorkSteal {
		e.workerSteal(si, w)
		return
	}
	// Single-writer fast path: with no admission policy, nothing reads
	// pool-wide occupancy between operations, so the per-op publish of the
	// free-count mirror is deferred while this worker owns the shard.
	s.m.SetDeferPublish(s.admKind == policy.KindNone)
	for {
		var n int
		var closed bool
		t0 := time.Now()
		if e.cfg.BusyPoll {
			n, closed = s.ring.PopWaitSpin(w.buf, busyPollSpins)
		} else {
			n, closed = s.ring.PopWait(w.buf)
		}
		t1 := time.Now()
		s.wIdleNs.Add(t1.Sub(t0).Nanoseconds())
		if n > 0 {
			e.execBatch(s, w.buf[:n], w)
			s.wBusyNs.Add(time.Since(t1).Nanoseconds())
		}
		if closed {
			// Republish so the closed-mode observation surface sees exact
			// pool occupancy.
			s.m.SetDeferPublish(false)
			return
		}
	}
}

// workerSteal is the work-stealing variant of the worker loop. Every pop
// and exec on a shard happens under that shard's mutex, which restores
// mutual exclusion between the owner and thieves without giving up
// run-to-completion batching: the owner pays one uncontended lock per
// drained batch. Per-flow FIFO survives because commands leave a ring in
// order and never concurrently, and execution of a ring's commands is
// serialized by its shard's mutex. Deadlock cannot arise: a worker holds
// at most one shard mutex at a time (exec never enters another shard).
func (e *Engine) workerSteal(si int, w *workerScratch) {
	s := e.shards[si]
	s.mu.Lock()
	s.m.SetDeferPublish(s.admKind == policy.KindNone)
	s.mu.Unlock()
	for {
		s.mu.Lock()
		n := s.ring.PopBatch(w.buf)
		if n > 0 {
			t0 := time.Now()
			e.execBatch(s, w.buf[:n], w)
			s.mu.Unlock()
			s.wBusyNs.Add(time.Since(t0).Nanoseconds())
			if s.ring.Len() >= stealThreshold {
				// Still backlogged after a full batch: recruit a parked
				// sibling to steal from us.
				e.recruit(si)
			}
			continue
		}
		s.mu.Unlock()
		if s.ring.Closed() {
			if s.ring.Drained() {
				// Under the mutex: a thief may still be executing commands
				// it popped from our ring.
				s.mu.Lock()
				s.m.SetDeferPublish(false)
				s.mu.Unlock()
				return
			}
			// Sealed but a claimed command is still publishing, or a thief
			// holds the mutex mid-drain; yield and re-check.
			runtime.Gosched()
			continue
		}
		if e.stealRound(si, w) {
			continue
		}
		spins := 0
		if e.cfg.BusyPoll {
			spins = busyPollSpins
		}
		t0 := time.Now()
		s.ring.WaitReady(spins)
		s.wIdleNs.Add(time.Since(t0).Nanoseconds())
	}
}

// stealRound scans the sibling shards once and executes up to stealBatch
// commands from each backlogged ring it can lock without waiting. Reports
// whether it executed anything (the caller then re-checks its own ring
// before scanning again). TryLock, never Lock: a thief must not queue
// behind the owner — that would serialize the very workers stealing is
// meant to spread.
func (e *Engine) stealRound(si int, w *workerScratch) bool {
	shards := e.shards
	n := len(shards)
	did := false
	for off := 1; off < n; off++ {
		v := shards[(si+off)%n]
		if v.ring.Len() < stealThreshold || !v.mu.TryLock() {
			continue
		}
		k := v.ring.PopBatch(w.buf[:stealBatch])
		if k > 0 {
			t0 := time.Now()
			e.execBatch(v, w.buf[:k], w)
			v.mu.Unlock()
			e.shards[si].wBusyNs.Add(time.Since(t0).Nanoseconds())
			e.shards[si].wStealBatches.Add(1)
			v.wStolenCmds.Add(uint64(k))
			did = true
		} else {
			v.mu.Unlock()
		}
	}
	return did
}

// recruit wakes one parked sibling worker so it can steal from a
// backlogged shard. Cost when nobody is parked: one atomic load per
// sibling, no syscalls.
func (e *Engine) recruit(si int) {
	n := len(e.shards)
	for off := 1; off < n; off++ {
		if e.shards[(si+off)%n].ring.Poke() {
			return
		}
	}
}

// exec runs one command inside shard s's critical section (the worker).
func (e *Engine) exec(s *shard, c *command) {
	switch c.kind {
	case opEnqueue:
		n, err := s.enqueueLocked(c.flow, c.data)
		switch {
		case err == errWantPushOut: //nolint:errorlint // internal sentinel, never wrapped
			n, err = e.enqueueEvictLocal(s, c.flow, c.data)
		case err != nil && s.admKind == policy.KindLQD && errors.Is(err, queue.ErrNoFreeSegments):
			// Pool exhausted (or its free segments stranded in other
			// shards' caches, which this worker must not touch): under
			// LQD the arrival is still entitled to eviction. Un-count the
			// rejection — the eviction path settles the packet's fate
			// exactly once.
			s.rejected--
			n, err = e.enqueueEvictLocal(s, c.flow, c.data)
		}
		_, _ = n, err // fire-and-forget: outcomes live in the shard counters
	case opEnqueueWait:
		c.co.n, c.co.err = s.enqueueLocked(c.flow, c.data)
	case opDequeueWait:
		buf := e.getBuf()
		out, n, err := s.m.DequeuePacketAppend(queue.QueueID(c.flow), buf)
		s.noteDequeue(n, err)
		if err != nil {
			e.putBuf(buf)
			c.co.err = err
		} else {
			s.noteCopied(len(out))
			s.syncActive(c.flow)
			s.noteRemoveRes(c.flow, true)
			c.co.data = out
			c.co.n = n
		}
	case opDequeueViewWait:
		v, err := s.dequeueViewLocked(c.flow)
		if err != nil {
			c.co.err = err
		} else {
			c.co.view = v
		}
	case opDequeueNextView:
		dst := &c.co.deqv
		if len(c.co.deqvs) > 0 {
			dst = &c.co.deqvs[c.slot]
		}
		for len(*dst) < c.arg {
			d, ok := e.dequeuePickedView(s, int(c.port))
			if !ok {
				break
			}
			*dst = append(*dst, d)
		}
	case opReserve:
		c.co.w, c.co.err = s.reserveLocked(c.flow, c.arg)
	case opCommit:
		c.co.err = s.commitLocked(c.flow, &c.w)
	case opDequeueNext:
		dst := &c.co.deq
		if len(c.co.deqs) > 0 {
			dst = &c.co.deqs[c.slot]
		}
		for len(*dst) < c.arg {
			d, ok := e.dequeuePicked(s, int(c.port))
			if !ok {
				break
			}
			*dst = append(*dst, d)
		}
	case opCall:
		c.fn()
	case opBarrier:
		// Completion only.
	}
	// Completion countdowns are NOT decremented here: execBatch flushes
	// them merged per distinct completion at the end of the drained batch.
}

// enqueueEvictLocal handles an LQD push-out verdict for a fire-and-forget
// enqueue. The worker cannot leave its shard to evict the globally longest
// queue (workers never enter other shards — that is what makes them
// deadlock-free), so it approximates LQD locally: push out its own shard's
// longest queue until the arrival fits, else drop. Blocking enqueues get
// the exact global eviction, orchestrated by the calling goroutine.
func (e *Engine) enqueueEvictLocal(s *shard, flow uint32, data []byte) (int, error) {
	need := (len(data) + queue.SegmentBytes - 1) / queue.SegmentBytes
	for round := 0; round < maxEvictAttempts; round++ {
		q, segs, err := s.m.PushOutLongest()
		if err != nil {
			break
		}
		s.poPackets++
		s.poSegments += uint64(segs)
		s.syncActive(uint32(q))
		s.noteRemoveRes(uint32(q), false)
		n, err := s.enqueueLocked(flow, data)
		switch {
		case err == errWantPushOut: //nolint:errorlint // internal sentinel, never wrapped
			continue
		case err != nil && errors.Is(err, queue.ErrNoFreeSegments):
			// Still short (the evicted packet was smaller than the
			// arrival): un-count the retry's rejection and evict again.
			s.rejected--
			continue
		default:
			return n, err
		}
	}
	s.dropPackets++
	s.dropSegments += uint64(need)
	return 0, ErrAdmissionDrop
}

// post pushes cmd onto s's ring, blocking for backpressure; a closed ring
// maps to ErrClosed.
func (e *Engine) post(s *shard, cmd command) error {
	if s.ring.Push(cmd) != nil {
		return ErrClosed
	}
	return nil
}

// postFnWait runs fn on s's worker and waits. ok is false when the ring
// refused the command (engine closing) — the caller re-resolves the mode.
func (e *Engine) postFnWait(s *shard, fn func()) bool {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opCall, fn: fn, co: c}) != nil {
		e.putCall(c)
		return false
	}
	c.wait()
	e.putCall(c)
	return true
}

// EnqueueAsync posts a fire-and-forget enqueue of data onto flow: the call
// returns as soon as the command is in the shard's ring (blocking only for
// ring backpressure), and the outcome — linked, dropped by admission, or
// refused by the pool — is visible in Stats counters rather than returned.
// The engine reads data when the command executes, not when it is posted:
// the caller must not mutate the buffer until the command has been
// processed (after Drain or Close, or once observable via counters).
// Reusing one read-only payload buffer across posts is fine. The only
// error is ErrClosed. On the synchronous datapath it degrades to an
// immediate enqueue whose outcome is likewise only counted.
func (e *Engine) EnqueueAsync(flow uint32, data []byte) error {
	for {
		switch e.mode.Load() {
		case modeClosed:
			return ErrClosed
		case modeRing:
			s := e.shardOf(flow)
			if e.post(s, command{kind: opEnqueue, flow: flow, data: data}) != nil {
				return ErrClosed
			}
			return nil
		default:
			s := e.shardOf(flow)
			if !e.lockSync(s) {
				continue
			}
			n, err := s.enqueueLocked(flow, data)
			s.mu.Unlock()
			if err == errWantPushOut { //nolint:errorlint // internal sentinel, never wrapped
				// Fall back to the blocking path for the eviction dance.
				// Every outcome it can produce is counted — except a Close
				// landing mid-eviction, which must surface here or the
				// packet would vanish with no trace in the counters.
				if _, err := e.EnqueuePacket(flow, data); errors.Is(err, ErrClosed) {
					return ErrClosed
				}
			}
			_ = n
			return nil
		}
	}
}

// enqueueRingWait posts a blocking enqueue and returns the worker's
// verdict. errWantPushOut surfaces to EnqueuePacket, which orchestrates
// the global eviction from the calling goroutine.
func (e *Engine) enqueueRingWait(s *shard, flow uint32, data []byte) (int, error) {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opEnqueueWait, flow: flow, data: data, co: c}) != nil {
		e.putCall(c)
		return 0, ErrClosed
	}
	c.wait()
	n, err := c.n, c.err
	e.putCall(c)
	return n, err
}

// dequeueRingWait posts a blocking dequeue and returns the reassembled
// packet.
func (e *Engine) dequeueRingWait(s *shard, flow uint32) ([]byte, error) {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opDequeueWait, flow: flow, co: c}) != nil {
		e.putCall(c)
		return nil, ErrClosed
	}
	c.wait()
	data, err := c.data, c.err
	e.putCall(c)
	return data, err
}

// dequeueNextRing asks s's worker for up to max egress-picked packets on
// port (anyPort = all scheduling units) and appends them to out.
func (e *Engine) dequeueNextRing(s *shard, port int, out []Dequeued, max int) []Dequeued {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opDequeueNext, arg: max, port: int32(port), co: c}) != nil {
		e.putCall(c)
		return out
	}
	c.wait()
	out = append(out, c.deq...)
	e.putCall(c)
	return out
}

// dequeueNextRingAll is the ring datapath of DequeueNextBatch: one
// pick-and-dequeue command per shard under a single completion — one
// producer wakeup per call instead of one per shard. The budget is split
// across shards (rotated so shards share egress bandwidth); a second,
// serial pass hands leftover budget to shards that filled their split —
// they may hold more — so a backlog concentrated on one shard still drains
// at full batch size.
func (e *Engine) dequeueNextRingAll(start, max int) []Dequeued {
	n := len(e.shards)
	c := e.getCall()
	if cap(c.deqs) < n {
		c.deqs = make([][]Dequeued, n)
	} else {
		c.deqs = c.deqs[:n]
	}
	base, extra := max/n, max%n
	budget := func(i int) int {
		if i < extra {
			return base + 1
		}
		return base
	}
	c.pending.Store(int32(n) + 1)
	posted := int32(0)
	for i := 0; i < n; i++ {
		if budget(i) == 0 {
			continue
		}
		s := e.shards[(start+i)%n]
		if e.post(s, command{kind: opDequeueNext, arg: budget(i), port: anyPort, slot: int32(i), co: c}) == nil {
			posted++
		}
	}
	c.release(int32(n) - posted + 1)
	var out []Dequeued
	var more []int
	for i := 0; i < n; i++ {
		out = append(out, c.deqs[i]...)
		// Candidates for the serial top-up pass: shards that filled their
		// split (they may hold more) and shards the split gave nothing to
		// (with max < shards, the whole backlog may live on one of them —
		// skipping them could report an idle engine that isn't).
		if b := budget(i); b == 0 || len(c.deqs[i]) == b {
			more = append(more, i)
		}
	}
	e.putCall(c)
	for _, i := range more {
		if len(out) >= max {
			break
		}
		out = e.dequeueNextRing(e.shards[(start+i)%n], anyPort, out, max-len(out))
	}
	return out
}

// RingOccupancy returns the summed occupancy of all shard command rings —
// the backlog the workers have yet to execute. Zero on the synchronous
// datapath.
func (e *Engine) RingOccupancy() int {
	if e.mode.Load() != modeRing {
		return 0
	}
	total := 0
	for _, s := range e.shards {
		total += s.ring.Len()
	}
	return total
}
