package engine

import (
	"testing"
	"unsafe"
)

// The padding audit's enforcement: every cross-thread hot word the
// multi-core pass padded must stay at least hotPad bytes from the fields
// it was separated from. Distances are asserted (not absolute alignment —
// Go's heap does not promise 64-byte base alignment), and hotPad itself
// must cover the adjacent-line prefetcher pair.

func TestHotPadCoversPrefetchPair(t *testing.T) {
	if hotPad < 128 {
		t.Fatalf("hotPad = %d, want >= 128", hotPad)
	}
}

// TestShardLayout: the worker-accounting atomics are written by workers
// (and thieves) on every drain, while the mutex and the plain counters
// above them are the owner's hot state.
func TestShardLayout(t *testing.T) {
	var s shard
	offRes := unsafe.Offsetof(s.res) // last plain field before the block
	offAcct := unsafe.Offsetof(s.wBusyNs)
	offLast := unsafe.Offsetof(s.coalescedWakes)

	if d := offAcct - offRes; d < hotPad {
		t.Errorf("layout: shard accounting block only %d bytes past owner state, want >= %d", d, hotPad)
	}
	if d := unsafe.Sizeof(s) - offLast; d < hotPad {
		t.Errorf("layout: shard accounting block only %d bytes from struct end, want >= %d", d, hotPad)
	}
}

// TestPortLayout: the enqueue path CASes idle per notify; the pacer writes
// tx counters per packet. Neither may share a line with the other or with
// the read-only header.
func TestPortLayout(t *testing.T) {
	var p port
	offHdr := unsafe.Offsetof(p.shardCursor)
	offCtl := unsafe.Offsetof(p.paused)
	offTx := unsafe.Offsetof(p.txPackets)

	if d := offCtl - offHdr; d < hotPad {
		t.Errorf("layout: port control words only %d bytes past header, want >= %d", d, hotPad)
	}
	if d := offTx - unsafe.Offsetof(p.sink); d < hotPad {
		t.Errorf("layout: port tx counters only %d bytes past control words, want >= %d", d, hotPad)
	}
	if d := unsafe.Sizeof(p) - offTx; d < hotPad {
		t.Errorf("layout: port tx counters only %d bytes from struct end, want >= %d", d, hotPad)
	}
}

// TestPacerLayout: the mailbox (mu/pending/wake/coalesced) takes stores
// from every producer's notify; the wheel state below it belongs to the
// pacer goroutine alone.
func TestPacerLayout(t *testing.T) {
	var pc pacer
	offHdr := unsafe.Offsetof(pc.home)
	offMu := unsafe.Offsetof(pc.mu)
	offWheel := unsafe.Offsetof(pc.state)

	if d := offMu - offHdr; d < hotPad {
		t.Errorf("layout: pacer mailbox only %d bytes past header, want >= %d", d, hotPad)
	}
	if d := offWheel - unsafe.Offsetof(pc.started); d < hotPad {
		t.Errorf("layout: pacer wheel state only %d bytes past mailbox, want >= %d", d, hotPad)
	}
}
