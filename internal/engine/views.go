package engine

// The zero-copy scatter-gather datapath. The paper's queue manager never
// reassembles a packet: transmission is a DMA gather over the 64-byte
// segment chain, and reception writes segments into data memory as they
// arrive. This file is the engine-level rendering of both directions:
//
//   - Delivery: DequeuePacketView / DequeueNextView[Batch] /
//     DequeueViewBatch / ServeViews hand consumers queue.PacketView values
//     — the packet's segment chain checked out of the pool in the lent
//     state, its payload read in place through the view's iterator.
//     Releasing the view returns the whole chain to the store in one bulk
//     operation. No reassembly buffer, no copy, no allocation.
//   - Ingest: ReservePacket opens a write-in-place Reservation — the
//     segment run is allocated and linked up front, the producer fills the
//     per-segment slices (the iovecs a socket reader hands to readv), and
//     Commit splices the chain onto the flow's queue in O(1). Abort hands
//     the untouched run back in one bulk return.
//
// Reference discipline: every view starts with one reference owned by
// whoever the engine handed it to. Pull-API callers (DequeuePacketView,
// DequeueNextView, the batch paths) own their views and must Release each
// exactly once. Push-mode sinks (ServeViews) do NOT own the view — the
// engine drops its reference as soon as SendView returns — so a sink that
// completes transmission asynchronously (a NIC-style descriptor ring)
// must Retain before returning and Release on completion. Retain/Release
// are safe from any goroutine; double release panics (see
// queue.PacketView.Release).
//
// Accounting: segments checked out in views or open reservations are in
// the lent state, counted by Stats.LentSegments and by the conservation
// law CheckInvariants enforces (free + queued + floating + lent == pool).
// A view's segments count as dequeued when the view is produced — inside
// the shard's critical section, so the traffic counters never depend on
// when some other goroutine releases — and a reservation's count as
// enqueued at Commit. None of these paths touch Stats.CopiedBytes.

import (
	"errors"
	"fmt"
	"runtime"

	"npqm/internal/queue"
)

// PacketView is a zero-copy dequeued packet; see queue.PacketView for the
// iterator and reference-counting surface. Re-exported so engine callers
// need not import internal/queue.
type PacketView = queue.PacketView

// DequeuedView is one packet served by the view egress paths: the flow it
// was queued on, its payload byte count, and the view over its segment
// chain. The byte count comes from the queue accounting, so it is exact
// even when data storage is off (where the copy path can only estimate
// from the segment count).
type DequeuedView struct {
	Flow  uint32
	Bytes int
	View  PacketView
}

// SinkV consumes the packet views a port served through ServeViews
// transmits — the zero-copy counterpart of Sink. SendView may block (that
// is the backpressure path) and always runs on the port's home pacer
// goroutine, never concurrently with itself. Returning a non-nil error
// stops the port's service, exactly as Sink.Transmit does. The engine
// releases its reference to d.View when SendView returns, success or
// error: a sink that needs the view afterwards must Retain it first.
type SinkV interface {
	SendView(port int, d DequeuedView) error
}

// SinkVFunc adapts a function to the SinkV interface.
type SinkVFunc func(port int, d DequeuedView) error

// SendView implements SinkV.
func (f SinkVFunc) SendView(port int, d DequeuedView) error { return f(port, d) }

// --- delivery: per-flow and egress-picked view dequeues ---

// DequeuePacketView removes the head packet of flow as a zero-copy view.
// The caller owns the returned view and must Release it exactly once; the
// segments stay checked out of the pool (lent) until then. On the ring
// datapath the call blocks until the shard's worker has executed the
// command, like DequeuePacket.
func (e *Engine) DequeuePacketView(flow uint32) (PacketView, error) {
	s := e.shardOf(flow)
	for {
		switch e.mode.Load() {
		case modeClosed:
			return PacketView{}, ErrClosed
		case modeRing:
			return e.dequeueViewRingWait(s, flow)
		}
		if !e.lockSync(s) {
			continue
		}
		v, err := s.dequeueViewLocked(flow)
		s.mu.Unlock()
		return v, err
	}
}

// dequeueViewLocked is the per-flow view dequeue inside s's critical
// section: manager dequeue, traffic counters, active-list and residence
// maintenance — the view counterpart of the DequeuePacketAppend sites.
func (s *shard) dequeueViewLocked(flow uint32) (queue.PacketView, error) {
	v, err := s.m.DequeuePacketView(queue.QueueID(flow))
	s.noteDequeue(v.Segments(), err)
	if err == nil {
		s.syncActive(flow)
		s.noteRemoveRes(flow, true)
	}
	return v, err
}

// DequeueNextView serves one packet chosen by the egress discipline as a
// zero-copy view, whichever port it belongs to. ok is false when the
// engine holds no packets. The caller owns the view — Release it when
// done. On the synchronous datapath the call allocates nothing at all:
// the view is a value and there is no reassembly buffer.
func (e *Engine) DequeueNextView() (DequeuedView, bool) {
	n := len(e.shards)
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	for i := 0; i < n; i++ {
		s := e.shards[(start+i)%n]
		for {
			switch e.mode.Load() {
			case modeClosed:
				return DequeuedView{}, false
			case modeRing:
				if out := e.dequeueNextViewRing(s, anyPort, nil, 1); len(out) == 1 {
					return out[0], true
				}
			default:
				if !e.lockSync(s) {
					continue
				}
				d, ok := e.dequeuePickedView(s, anyPort)
				s.mu.Unlock()
				if ok {
					return d, true
				}
			}
			break
		}
	}
	return DequeuedView{}, false
}

// DequeueNextViewBatch serves up to max packets as zero-copy views,
// choosing flows by the configured egress discipline across all ports —
// DequeueNextBatch without the reassembly copies. The caller owns every
// returned view and must Release each exactly once.
func (e *Engine) DequeueNextViewBatch(max int) []DequeuedView {
	if max <= 0 {
		return nil
	}
	n := len(e.shards)
	// n is a power of two; mask before the int conversion so the uint32
	// cursor wrapping past 2^31 cannot go negative on 32-bit platforms.
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	if e.mode.Load() == modeRing {
		return e.dequeueNextViewRingAll(start, max)
	}
	var out []DequeuedView
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShardViews(e.shards[(start+i)%n], anyPort, out, max)
	}
	return out
}

// drainShardViews is drainShard for view delivery: discipline-picked
// packets from one shard on one port (anyPort = all) until out reaches
// max or the shard has nothing servable, resolving the datapath mode per
// attempt. Shared by the pull API (DequeueNextViewBatch) and the pacers
// (dequeuePortViews).
func (e *Engine) drainShardViews(s *shard, port int, out []DequeuedView, max int) []DequeuedView {
	for {
		switch e.mode.Load() {
		case modeClosed:
			return out
		case modeRing:
			return e.dequeueNextViewRing(s, port, out, max-len(out))
		default:
			if !e.lockSync(s) {
				continue // datapath switched under us: re-resolve the mode
			}
			for len(out) < max {
				d, ok := e.dequeuePickedView(s, port)
				if !ok {
					break
				}
				out = append(out, d)
			}
			s.mu.Unlock()
			return out
		}
	}
}

// dequeuePickedView serves one packet picked by the two-level discipline
// from shard s as a zero-copy view, inside s's critical section — the
// view mirror of dequeuePicked, with the same DRR charging (the byte
// count comes from the queue accounting, so class-level DRR conservation
// stays exact) and without the buffer pool round trip.
func (e *Engine) dequeuePickedView(s *shard, port int) (DequeuedView, bool) {
	for {
		flow, debit, ok := s.pickLocked(port)
		if !ok {
			return DequeuedView{}, false
		}
		v, err := s.m.DequeuePacketView(queue.QueueID(flow))
		s.noteDequeue(v.Segments(), err)
		if err != nil {
			// The list said active but no complete packet is available
			// (raw-segment misuse): deactivate the flow so the pick loop
			// cannot spin on it; no DRR debit — nothing was served.
			s.clearActive(flow)
			continue
		}
		bytes := v.Len()
		if debit != 0 {
			s.SetDeficit(int32(flow), s.Deficit(int32(flow))-debit)
		}
		if s.eg.hasLevelDRR {
			s.chargeLevels(flow, bytes)
		}
		s.syncActive(flow)
		s.noteRemoveRes(flow, true)
		return DequeuedView{Flow: flow, Bytes: bytes, View: v}, true
	}
}

// ReleaseViews releases every view in ds, returning the chains to the
// pool in one bulk transaction per shard instead of one per packet — the
// batch consumer's settlement call after DequeueNextViewBatch. Views
// still referenced by a Retain are skipped exactly as individual Release
// calls would skip them. Each entry's view is cleared, so re-running the
// slice cannot double-release (Flow and Bytes stay readable).
func (e *Engine) ReleaseViews(ds []DequeuedView) {
	var r queue.ViewReleaser
	for i := range ds {
		r.Add(ds[i].View)
		ds[i].View = queue.PacketView{}
	}
	r.Flush()
}

// DequeueViewBatch dequeues the head packet of every listed flow as a
// zero-copy view, bucketing by shard — DequeueBatch without the
// reassembly copies. Results are aligned with flows: views[i] is valid
// exactly when errs[i] is nil, and the caller must Release each valid
// view exactly once. A flow listed twice yields its first two packets in
// order.
func (e *Engine) DequeueViewBatch(flows []uint32) (views []PacketView, errs []error) {
	if len(flows) == 0 {
		return nil, nil
	}
	views = make([]PacketView, len(flows))
	errs = make([]error, len(flows))
	if e.mode.Load() == modeClosed {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return views, errs
	}
	b := e.getBuckets()
	for i, flow := range flows {
		si := e.ShardOf(flow)
		b.byShard[si] = append(b.byShard[si], int32(i))
	}
	if e.mode.Load() == modeRing {
		e.dequeueViewBatchRing(flows, views, errs, b)
	} else {
		e.dequeueViewBatchSync(flows, views, errs, b)
	}
	e.putBuckets(b)
	return views, errs
}

// dequeueViewBatchSync is the mutex-datapath bucket walk.
func (e *Engine) dequeueViewBatchSync(flows []uint32, views []PacketView, errs []error, b *buckets) {
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		if !e.lockSync(s) {
			// Datapath switched under us: replay this bucket per-packet.
			for _, i := range idxs {
				views[i], errs[i] = e.DequeuePacketView(flows[i])
			}
			continue
		}
		for _, i := range idxs {
			views[i], errs[i] = s.dequeueViewLocked(flows[i])
		}
		s.mu.Unlock()
	}
}

// dequeueViewBatchRing posts one command per touched shard under a shared
// completion; each worker fills its bucket's result slots directly.
func (e *Engine) dequeueViewBatchRing(flows []uint32, views []PacketView, errs []error, b *buckets) {
	c := e.getCall()
	var want int32
	for _, idxs := range b.byShard {
		if len(idxs) > 0 {
			want++
		}
	}
	c.pending.Store(want + 1)
	posted := int32(0)
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		idxs := idxs
		cmd := command{kind: opCall, co: c, fn: func() {
			for _, i := range idxs {
				views[i], errs[i] = s.dequeueViewLocked(flows[i])
			}
		}}
		if e.post(s, cmd) != nil {
			for _, i := range idxs {
				errs[i] = ErrClosed
			}
			continue
		}
		posted++
	}
	c.release(want - posted + 1)
	e.putCall(c)
}

// --- delivery: ring-datapath posters ---

// dequeueViewRingWait posts a blocking view dequeue and returns the
// worker's result.
func (e *Engine) dequeueViewRingWait(s *shard, flow uint32) (PacketView, error) {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opDequeueViewWait, flow: flow, co: c}) != nil {
		e.putCall(c)
		return PacketView{}, ErrClosed
	}
	c.wait()
	v, err := c.view, c.err
	e.putCall(c)
	return v, err
}

// dequeueNextViewRing asks s's worker for up to max egress-picked views
// on port (anyPort = all scheduling units) and appends them to out.
func (e *Engine) dequeueNextViewRing(s *shard, port int, out []DequeuedView, max int) []DequeuedView {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opDequeueNextView, arg: max, port: int32(port), co: c}) != nil {
		e.putCall(c)
		return out
	}
	c.wait()
	out = append(out, c.deqv...)
	e.putCall(c)
	return out
}

// dequeueNextViewRingAll is the ring datapath of DequeueNextViewBatch:
// one pick-and-dequeue command per shard under a single completion, with
// the same budget split and serial top-up pass as dequeueNextRingAll.
func (e *Engine) dequeueNextViewRingAll(start, max int) []DequeuedView {
	n := len(e.shards)
	c := e.getCall()
	if cap(c.deqvs) < n {
		c.deqvs = make([][]DequeuedView, n)
	} else {
		c.deqvs = c.deqvs[:n]
	}
	base, extra := max/n, max%n
	budget := func(i int) int {
		if i < extra {
			return base + 1
		}
		return base
	}
	c.pending.Store(int32(n) + 1)
	posted := int32(0)
	for i := 0; i < n; i++ {
		if budget(i) == 0 {
			continue
		}
		s := e.shards[(start+i)%n]
		if e.post(s, command{kind: opDequeueNextView, arg: budget(i), port: anyPort, slot: int32(i), co: c}) == nil {
			posted++
		}
	}
	c.release(int32(n) - posted + 1)
	var out []DequeuedView
	var more []int
	for i := 0; i < n; i++ {
		out = append(out, c.deqvs[i]...)
		// Top-up candidates: shards that filled their split (they may hold
		// more) and shards the split gave nothing to.
		if b := budget(i); b == 0 || len(c.deqvs[i]) == b {
			more = append(more, i)
		}
	}
	e.putCall(c)
	for _, i := range more {
		if len(out) >= max {
			break
		}
		out = e.dequeueNextViewRing(e.shards[(start+i)%n], anyPort, out, max-len(out))
	}
	return out
}

// --- delivery: push mode ---

// ServeViews registers sink as port's zero-copy transmitter — Serve with
// packet views instead of reassembled buffers. The pacer picks packets
// via the configured disciplines, paces them against the port's shaper,
// and pushes views into sink until the engine closes or sink returns an
// error (on which the rest of the picked burst is released, counted as
// dequeued but not transmitted). The engine drops its reference to each
// view as SendView returns; asynchronous sinks Retain first. One service
// per port; a second Serve or ServeViews on a live port fails.
func (e *Engine) ServeViews(port int, sink SinkV) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if sink == nil {
		return fmt.Errorf("engine: nil view sink for port %d", port)
	}
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.mode.Load() == modeClosed {
		return ErrClosed
	}
	if !p.serving.CompareAndSwap(false, true) {
		return fmt.Errorf("engine: port %d is already being served", port)
	}
	p.sink.Store(&sinkBox{sinkV: sink})
	p.pc.start()
	p.kick()
	return nil
}

// dequeuePortViews serves up to max views from p's scheduling units,
// rotating the starting shard per call, appending to out — dequeuePort
// for the view serve loop. Only p's home pacer calls it (shardCursor is
// pacer-local).
func (e *Engine) dequeuePortViews(p *port, out []DequeuedView, max int) []DequeuedView {
	n := len(e.shards)
	p.shardCursor++
	start := int(p.shardCursor) % n
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShardViews(e.shards[(start+i)%n], p.idx, out, max)
	}
	return out
}

// --- ingest: write-in-place reservations ---

// Reservation is an open write-in-place ingest on the engine: a
// pre-linked, pre-sized segment run the producer fills through Range
// before Commit splices it onto the flow's queue — no staging buffer, no
// copy. The zero value is terminal. A reservation must end in exactly one
// Commit or Abort; later terminal calls return queue.ErrWriterDone.
// Reservations are single-goroutine values (the producer that opened one
// fills and settles it); Abort alone is safe from any goroutine.
type Reservation struct {
	e    *Engine
	s    *shard
	flow uint32
	w    queue.PacketWriter
}

// Valid reports whether the reservation is still open.
func (r *Reservation) Valid() bool { return r.e != nil }

// Flow returns the destination flow.
func (r *Reservation) Flow() uint32 { return r.flow }

// Len returns the reserved payload length in bytes.
func (r *Reservation) Len() int { return r.w.Len() }

// Segments returns the number of reserved segments.
func (r *Reservation) Segments() int { return r.w.Segments() }

// Range calls fn with each reserved segment's writable payload slice in
// packet order, stopping early if fn returns false — the iovecs a socket
// reader hands to readv. See queue.PacketWriter.Range.
func (r *Reservation) Range(fn func(seg []byte) bool) { r.w.Range(fn) }

// ReservePacket opens an n-byte write-in-place reservation on flow: the
// segment run is allocated, linked and charged against admission now, and
// the packet joins the queue when the producer calls Commit on the
// returned Reservation (Abort returns the run untouched). Admission
// behaves exactly as EnqueuePacket's: a policy refusal returns
// ErrAdmissionDrop, and under LQD the arrival may evict packets from the
// globally longest queue to make room. The payload is never copied and
// Stats.CopiedBytes does not move.
func (e *Engine) ReservePacket(flow uint32, n int) (Reservation, error) {
	s := e.shardOf(flow)
	need := (n + queue.SegmentBytes - 1) / queue.SegmentBytes
	for attempt := 0; ; attempt++ {
		var w queue.PacketWriter
		var err error
		switch e.mode.Load() {
		case modeClosed:
			return Reservation{}, ErrClosed
		case modeRing:
			w, err = e.reserveRingWait(s, flow, n)
		default:
			if !e.lockSync(s) {
				continue
			}
			w, err = s.reserveLocked(flow, n)
			s.mu.Unlock()
		}
		switch {
		case err == errWantPushOut: //nolint:errorlint // internal sentinel, never wrapped
			if attempt >= maxEvictAttempts || !e.evictForSpace(need) {
				e.run(s, func() {
					s.dropPackets++
					s.dropSegments += uint64(need)
				})
				return Reservation{}, ErrAdmissionDrop
			}
		case attempt < maxEvictAttempts && errors.Is(err, queue.ErrNoFreeSegments) && e.store.Free() >= need:
			// Free segments stranded in other shards' caches; flush and
			// retry, exactly as EnqueuePacket does.
			e.flushCaches()
		case err != nil:
			return Reservation{}, err
		default:
			return Reservation{e: e, s: s, flow: flow, w: w}, nil
		}
	}
}

// reserveLocked runs admission then the manager reservation, inside s's
// critical section — enqueueLocked with the payload copy replaced by a
// checked-out run. No traffic counters move here: the packet counts as
// enqueued at Commit, and a manager refusal counts as rejected exactly
// like a refused enqueue.
func (s *shard) reserveLocked(flow uint32, n int) (queue.PacketWriter, error) {
	if s.adm != nil && n > 0 {
		need := (n + queue.SegmentBytes - 1) / queue.SegmentBytes
		if err := s.admitNeedLocked(flow, need); err != nil {
			return queue.PacketWriter{}, err
		}
	}
	w, err := s.m.ReservePacket(queue.QueueID(flow), n)
	if err != nil {
		s.rejected++
	}
	return w, err
}

// commitLocked splices a filled reservation inside s's critical section
// and settles the enqueue-side bookkeeping the reservation deferred.
func (s *shard) commitLocked(flow uint32, w *queue.PacketWriter) error {
	segs := w.Segments()
	if err := w.Commit(); err != nil {
		return err
	}
	s.enqPackets++
	s.enqSegments += uint64(segs)
	s.setActive(flow)
	s.noteEnqueueRes(flow)
	return nil
}

// Commit splices the filled run onto the flow's queue — the packet
// becomes visible to dequeues and counts as enqueued from here. After a
// successful Commit the reservation is terminal. Committing on a closed
// engine returns ErrClosed with the reservation still open; Abort (which
// needs no datapath) then returns the segments.
func (r *Reservation) Commit() error {
	if r.e == nil {
		return queue.ErrWriterDone
	}
	e, s := r.e, r.s
	for {
		switch e.mode.Load() {
		case modeClosed:
			return ErrClosed
		case modeRing:
			ok, err := e.commitRing(s, r.flow, &r.w)
			if !ok {
				// The ring refused (engine closing): yield until the mode
				// flips and report ErrClosed above.
				runtime.Gosched()
				continue
			}
			if err == nil {
				*r = Reservation{}
			}
			return err
		default:
			if !e.lockSync(s) {
				continue
			}
			err := s.commitLocked(r.flow, &r.w)
			s.mu.Unlock()
			if err == nil {
				*r = Reservation{}
			}
			return err
		}
	}
}

// Abort scrubs the reserved run and returns it to the pool without ever
// touching the queue — safe from any goroutine and on any datapath,
// including after Close. The reservation becomes terminal. Nothing is
// counted: the packet never entered the books.
func (r *Reservation) Abort() error {
	if r.e == nil {
		return queue.ErrWriterDone
	}
	err := r.w.Abort()
	*r = Reservation{}
	return err
}

// --- ingest: ring-datapath posters ---

// reserveRingWait posts a blocking reservation and returns the worker's
// verdict. errWantPushOut surfaces to ReservePacket, which orchestrates
// the global eviction from the calling goroutine.
func (e *Engine) reserveRingWait(s *shard, flow uint32, n int) (queue.PacketWriter, error) {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opReserve, flow: flow, arg: n, co: c}) != nil {
		e.putCall(c)
		return queue.PacketWriter{}, ErrClosed
	}
	c.wait()
	w, err := c.w, c.err
	e.putCall(c)
	return w, err
}

// commitRing posts a blocking commit. ok is false when the ring refused
// the command (engine closing) — the reservation is untouched and the
// caller re-resolves the mode.
func (e *Engine) commitRing(s *shard, flow uint32, w *queue.PacketWriter) (ok bool, err error) {
	c := e.getCall()
	c.pending.Store(1)
	if e.post(s, command{kind: opCommit, flow: flow, w: *w, co: c}) != nil {
		e.putCall(c)
		return false, nil
	}
	c.wait()
	err = c.err
	e.putCall(c)
	return true, err
}

// LentSegments returns the pool-wide lent population: segments checked
// out in packet views and open reservations right now.
func (e *Engine) LentSegments() int { return e.store.Lent() }
