package engine

// Lifecycle and ring-datapath tests: Start/Drain/Close semantics, the
// blocking wrappers over the command rings, conservation across a Close
// with commands still in flight, and the post-Close error contract. The
// concurrent tests are meaningful under -race (CI runs them so).

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

func newRingEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRingBlockingWrappers(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 4, NumFlows: 256, NumSegments: 4096, StoreData: true})
	defer e.Close()

	pkt := []byte("ring datapath says hello across three segments of payload, give or take a few words to cross 64B")
	n, err := e.EnqueuePacket(7, pkt)
	if err != nil {
		t.Fatalf("EnqueuePacket: %v", err)
	}
	if want := (len(pkt) + queue.SegmentBytes - 1) / queue.SegmentBytes; n != want {
		t.Fatalf("EnqueuePacket linked %d segments, want %d", n, want)
	}
	if l, err := e.Len(7); err != nil || l != n {
		t.Fatalf("Len = (%d, %v), want (%d, nil)", l, err, n)
	}
	got, err := e.DequeuePacket(7)
	if err != nil {
		t.Fatalf("DequeuePacket: %v", err)
	}
	if !bytes.Equal(got, pkt) {
		t.Fatalf("payload mismatch: got %q", got)
	}
	e.ReleaseBuffer(got)
	if _, err := e.DequeuePacket(7); !errors.Is(err, queue.ErrQueueEmpty) {
		t.Fatalf("DequeuePacket on empty flow: %v, want ErrQueueEmpty", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRingPerFlowFIFO(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 4, NumFlows: 64, NumSegments: 4096, StoreData: true})
	defer e.Close()
	// Async enqueues and a blocking dequeue on the same flow travel the
	// same ring, so the dequeue must observe every packet posted before it,
	// in order.
	for i := 0; i < 32; i++ {
		pkt := []byte(fmt.Sprintf("flow5-packet-%02d", i))
		if err := e.EnqueueAsync(5, pkt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		got, err := e.DequeuePacket(5)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if want := fmt.Sprintf("flow5-packet-%02d", i); string(got) != want {
			t.Fatalf("packet %d = %q, want %q", i, got, want)
		}
		e.ReleaseBuffer(got)
	}
}

func TestRingBatchPaths(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 8, NumFlows: 512, NumSegments: 8192, StoreData: true})
	defer e.Close()
	const burst = 96
	batch := make([]EnqueueReq, burst)
	flows := make([]uint32, burst)
	pkt := make([]byte, 200)
	for i := range batch {
		f := uint32(i * 5 % 512)
		batch[i] = EnqueueReq{Flow: f, Data: pkt}
		flows[i] = f
	}
	segs, errs := e.EnqueueBatch(batch)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("EnqueueBatch[%d]: %v", i, err)
		}
	}
	if want := burst * ((len(pkt) + queue.SegmentBytes - 1) / queue.SegmentBytes); segs != want {
		t.Fatalf("EnqueueBatch linked %d segments, want %d", segs, want)
	}
	pkts, errs := e.DequeueBatch(flows)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("DequeueBatch[%d]: %v", i, err)
		}
		if len(pkts[i]) != len(pkt) {
			t.Fatalf("DequeueBatch[%d] returned %d bytes, want %d", i, len(pkts[i]), len(pkt))
		}
		e.ReleaseBuffer(pkts[i])
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRingEgressAndMove(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 4, NumFlows: 128, NumSegments: 4096, StoreData: true})
	defer e.Close()
	for f := uint32(0); f < 16; f++ {
		if _, err := e.EnqueuePacket(f, []byte("egress")); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-shard move: pick two flows on different shards.
	from, to := uint32(0), uint32(1)
	for e.ShardOf(to) == e.ShardOf(from) {
		to++
	}
	if _, err := e.MovePacket(from, to); err != nil {
		t.Fatalf("MovePacket: %v", err)
	}
	if l, _ := e.Len(to); l != 2 {
		t.Fatalf("destination holds %d segments after move, want 2", l)
	}
	served := 0
	for {
		out := e.DequeueNextBatch(8)
		if len(out) == 0 {
			break
		}
		for _, d := range out {
			e.ReleaseBuffer(d.Data)
			served++
		}
	}
	if served != 16 {
		t.Fatalf("egress served %d packets, want 16", served)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRingLQDGlobalEviction(t *testing.T) {
	e := newRingEngine(t, Config{
		Shards: 4, NumFlows: 64, NumSegments: 64, StoreData: true,
		Admission: policy.Config{Kind: policy.KindLQD},
	})
	defer e.Close()
	pkt := make([]byte, 4*queue.SegmentBytes)
	// Fill the pool from one hog flow, then arrive on others: LQD must push
	// the hog out rather than refuse the newcomers. (The fill is counted,
	// not error-terminated: under LQD the hog itself is the longest queue,
	// so an overfilling hog self-evicts instead of erroring.)
	hog := uint32(3)
	for i := 0; i < 64/4; i++ {
		if _, err := e.EnqueuePacket(hog, pkt); err != nil {
			t.Fatalf("hog fill %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.QueuedSegments < 56 {
		t.Fatalf("hog only buffered %d segments", st.QueuedSegments)
	}
	accepted := 0
	for f := uint32(10); f < 20; f++ {
		if _, err := e.EnqueuePacket(f, pkt); err == nil {
			accepted++
		} else if !errors.Is(err, ErrAdmissionDrop) {
			t.Fatalf("EnqueuePacket(%d): %v", f, err)
		}
	}
	if accepted == 0 {
		t.Fatal("LQD admitted none of the newcomers")
	}
	if st := e.Stats(); st.PushedOutPackets == 0 {
		t.Fatal("no push-outs recorded")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWhileTrafficFlows(t *testing.T) {
	e, err := New(Config{Shards: 8, NumFlows: 1024, NumSegments: 1 << 14, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 3000
	var posted atomic.Uint64
	var wg sync.WaitGroup
	pkt := make([]byte, 100)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f := uint32(w*perWorker+i) % 1024
				if _, err := e.EnqueuePacket(f, pkt); err == nil {
					posted.Add(1)
				}
				if data, err := e.DequeuePacket(f); err == nil {
					e.ReleaseBuffer(data)
				}
			}
		}(w)
	}
	// Flip the datapath mid-traffic: the sync calls in flight must finish
	// on the mutexes before the workers take the shards over.
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.EnqueuedPackets != posted.Load() {
		t.Fatalf("enqueued %d packets, callers saw %d accepted", st.EnqueuedPackets, posted.Load())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDrainsInFlightWithoutLoss(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 8, NumFlows: 2048, NumSegments: 1 << 15, StoreData: true})
	const producers = 4
	var posted atomic.Uint64
	var drained atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pkt := make([]byte, 96)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := uint32(p*100003+i) % 2048
				if err := e.EnqueueAsync(f, pkt); err != nil {
					return // ErrClosed: the engine shut down under us
				}
				posted.Add(1)
			}
		}(p)
	}
	// Concurrent consumers drain through the egress scheduler.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				out := e.DequeueNextBatch(32)
				for _, d := range out {
					e.ReleaseBuffer(d.Data)
					drained.Add(1)
				}
				if len(out) == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}
	// Let traffic build, then close with commands still in flight.
	for posted.Load() < 20_000 {
	}
	close(stop)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// No accepted command may be lost: every EnqueueAsync that returned nil
	// was executed — linked, or refused by the pool when consumers fell
	// behind (counted in Rejected) — and every linked packet is either
	// delivered or still resident.
	st := e.Stats()
	if got := st.EnqueuedPackets + st.Rejected + st.DroppedPackets; got != posted.Load() {
		t.Fatalf("posted %d packets, engine accounted for %d (enqueued %d, rejected %d, dropped %d)",
			posted.Load(), got, st.EnqueuedPackets, st.Rejected, st.DroppedPackets)
	}
	if st.DequeuedPackets < drained.Load() {
		t.Fatalf("consumers drained %d, engine says %d", drained.Load(), st.DequeuedPackets)
	}
	if got, want := st.EnqueuedSegments, st.DequeuedSegments+uint64(st.QueuedSegments); got != want {
		t.Fatalf("segment conservation after Close: enqueued %d != dequeued %d + resident %d",
			got, st.DequeuedSegments, st.QueuedSegments)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCloseAndPostCloseErrors(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 2, NumFlows: 64, NumSegments: 512, StoreData: true})
	if _, err := e.EnqueuePacket(1, []byte("resident")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
	if _, err := e.EnqueuePacket(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("EnqueuePacket after Close: %v, want ErrClosed", err)
	}
	if err := e.EnqueueAsync(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("EnqueueAsync after Close: %v, want ErrClosed", err)
	}
	if _, err := e.DequeuePacket(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("DequeuePacket after Close: %v, want ErrClosed", err)
	}
	if _, err := e.MovePacket(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("MovePacket after Close: %v, want ErrClosed", err)
	}
	if _, err := e.DeletePacket(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("DeletePacket after Close: %v, want ErrClosed", err)
	}
	if err := e.Drain(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close: %v, want ErrClosed", err)
	}
	if err := e.Start(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Start after Close: %v, want ErrClosed", err)
	}
	if _, errs := e.EnqueueBatch([]EnqueueReq{{Flow: 1, Data: []byte("x")}}); !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("EnqueueBatch after Close: %v, want ErrClosed", errs[0])
	}
	if _, errs := e.DequeueBatch([]uint32{1}); !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("DequeueBatch after Close: %v, want ErrClosed", errs[0])
	}
	if out := e.DequeueNextBatch(4); len(out) != 0 {
		t.Fatalf("DequeueNextBatch after Close served %d packets", len(out))
	}
	// The observation surface stays up: the resident packet is visible and
	// the structures are intact.
	if l, err := e.Len(1); err != nil || l != 1 {
		t.Fatalf("Len after Close = (%d, %v), want (1, nil)", l, err)
	}
	if st := e.Stats(); st.QueuedSegments != 1 {
		t.Fatalf("Stats after Close: %d resident segments, want 1", st.QueuedSegments)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainFlushesAsyncBacklog(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 4, NumFlows: 256, NumSegments: 1 << 13, StoreData: true})
	defer e.Close()
	pkt := make([]byte, 64)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := e.EnqueueAsync(uint32(i%256), pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.EnqueuedPackets != n {
		t.Fatalf("after Drain only %d of %d async enqueues executed", st.EnqueuedPackets, n)
	}
}

func TestUnknownFlowSentinel(t *testing.T) {
	e, err := New(Config{Shards: 2, NumFlows: 128, NumSegments: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetFlowLimit(128, 10); !errors.Is(err, ErrUnknownFlow) {
		t.Fatalf("SetFlowLimit(out of range): %v, want ErrUnknownFlow", err)
	}
	if err := e.SetWeight(1<<20, 3); !errors.Is(err, ErrUnknownFlow) {
		t.Fatalf("SetWeight(out of range): %v, want ErrUnknownFlow", err)
	}
	if err := e.SetFlowLimit(127, 10); err != nil {
		t.Fatalf("SetFlowLimit(in range): %v", err)
	}
	if err := e.SetWeight(127, 3); err != nil {
		t.Fatalf("SetWeight(in range): %v", err)
	}
	// The sentinel also holds on the ring datapath.
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetFlowLimit(129, 10); !errors.Is(err, ErrUnknownFlow) {
		t.Fatalf("ring SetFlowLimit(out of range): %v, want ErrUnknownFlow", err)
	}
	if err := e.SetWeight(129, 2); !errors.Is(err, ErrUnknownFlow) {
		t.Fatalf("ring SetWeight(out of range): %v, want ErrUnknownFlow", err)
	}
}

func TestResidenceSampling(t *testing.T) {
	for _, datapath := range []string{"sync", "ring"} {
		t.Run(datapath, func(t *testing.T) {
			e, err := New(Config{
				Shards: 4, NumFlows: 256, NumSegments: 4096, StoreData: true,
				ResidenceSample: 1, // stamp every packet
			})
			if err != nil {
				t.Fatal(err)
			}
			if datapath == "ring" {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
				defer e.Close()
			}
			pkt := make([]byte, 128)
			const n = 500
			for i := 0; i < n; i++ {
				if _, err := e.EnqueuePacket(uint32(i%256), pkt); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				data, err := e.DequeuePacket(uint32(i % 256))
				if err != nil {
					t.Fatal(err)
				}
				e.ReleaseBuffer(data)
			}
			st := e.Stats()
			if st.ResidenceSamples != n {
				t.Fatalf("%d residence samples, want %d", st.ResidenceSamples, n)
			}
			if st.ResidenceP50Ns <= 0 || st.ResidenceP99Ns < st.ResidenceP50Ns {
				t.Fatalf("implausible quantiles: p50=%v p99=%v", st.ResidenceP50Ns, st.ResidenceP99Ns)
			}
			if st.ResidenceMaxNs < st.ResidenceP50Ns-resHistWidthNs {
				t.Fatalf("max %v below p50 %v", st.ResidenceMaxNs, st.ResidenceP50Ns)
			}
			// Deletes and moves must not record residence samples, but must
			// keep the sequence spaces aligned for later dequeues.
			if _, err := e.EnqueuePacket(1, pkt); err != nil {
				t.Fatal(err)
			}
			if _, err := e.DeletePacket(1); err != nil {
				t.Fatal(err)
			}
			if got := e.Stats().ResidenceSamples; got != n {
				t.Fatalf("delete recorded a residence sample: %d, want %d", got, n)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRingDequeueNextSmallBudgetFindsBacklog(t *testing.T) {
	e := newRingEngine(t, Config{Shards: 8, NumFlows: 256, NumSegments: 2048, StoreData: true})
	defer e.Close()
	// A single resident packet on whatever shard: DequeueNextBatch with a
	// budget smaller than the shard count must still find it, for every
	// possible rotation offset of the fan-out.
	for trial := 0; trial < 16; trial++ {
		f := uint32(trial * 37 % 256)
		if _, err := e.EnqueuePacket(f, []byte("lonely")); err != nil {
			t.Fatal(err)
		}
		out := e.DequeueNextBatch(2) // 2 < 8 shards: most shards get budget 0
		if len(out) != 1 {
			t.Fatalf("trial %d: DequeueNextBatch(2) found %d packets, want 1", trial, len(out))
		}
		if out[0].Flow != f {
			t.Fatalf("trial %d: served flow %d, want %d", trial, out[0].Flow, f)
		}
		e.ReleaseBuffer(out[0].Data)
	}
}
