// Package engine is the concurrent, sharded queue-manager subsystem: N
// queue.Manager shards drawing from one shared segment store, behind a
// goroutine-safe API with two interchangeable datapaths.
//
// The paper's MMS reaches its 6.1 Gbps by exploiting the independence of
// per-flow state: every command touches one queue's pointers and the shared
// free list, and the hardware pipelines commands because flows do not
// interfere. Software gets the same parallelism by partitioning the flow
// space: flows are hashed onto shards, each shard owns a private Manager,
// and commands for different shards proceed on different cores. Per-flow
// FIFO order is preserved because a flow always maps to the same shard and
// each shard is internally sequential.
//
// Two datapaths realize that sequencing:
//
//   - Synchronous (the default): every call locks the owning shard's mutex,
//     operates, and unlocks. Simple, lowest latency when producers are few.
//   - Ring (after Start): the paper's own structure. Producers never touch
//     shard state — they post commands into a bounded MPSC ring per shard,
//     exactly as the paper's processing elements post into the MMS command
//     FIFOs, and a per-shard worker goroutine drains its ring in batches,
//     run to completion. The worker is the single writer, so the hot path
//     takes no mutex at all; calls that need results block on per-producer
//     completion batches, while EnqueueAsync is fire-and-forget with
//     outcomes reported through Stats counters. See ring.go.
//
// Segment memory, in both datapaths, is not partitioned — exactly as in the
// paper, where all per-flow queues allocate 64-byte segments from one data
// memory. Every shard allocates from a single segstore.Store through a
// per-shard magazine cache, so shared-buffer admission policies are honest:
// tail-drop, LQD and RED all consult pool-wide occupancy, LQD evicts the
// globally longest queue, and the competitive guarantees stated for one
// global buffer apply. Cross-shard MovePacket is pure pointer relinking on
// the shared slab — no copy, no allocation.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/sched"
	"npqm/internal/segstore"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 8

// DefaultRingCapacity is the per-shard command-ring capacity used when
// Config.RingCapacity is zero and the ring datapath is started.
const DefaultRingCapacity = 1024

// ErrAdmissionDrop is returned by the enqueue paths when the configured
// admission policy refuses the arrival. The drop is counted in
// Stats.DroppedPackets/DroppedSegments; it is the policy working as
// intended, not a caller error.
var ErrAdmissionDrop = errors.New("engine: packet dropped by admission policy")

// ErrClosed is returned by every datapath call after Close.
var ErrClosed = errors.New("engine: closed")

// ErrUnknownFlow is returned by SetFlowLimit and SetWeight when the flow ID
// lies outside the configured flow space. Like ErrAdmissionDrop it is a
// bare sentinel — classify with errors.Is; it never allocates.
var ErrUnknownFlow = errors.New("engine: unknown flow")

// errWantPushOut is an internal sentinel: the admission policy admitted the
// arrival contingent on push-out eviction, which must run outside the
// arrival shard's critical section (the globally longest queue may live on
// another shard, and shards are never entered nested). The enqueue entry
// points catch it, evict, and retry.
var errWantPushOut = errors.New("engine: admission wants push-out eviction")

// maxEvictAttempts bounds the evict-and-retry loop of an LQD arrival: under
// heavy contention another shard can consume the freed space between the
// eviction and the retry; after this many rounds the arrival is dropped.
const maxEvictAttempts = 8

// maxPooledBufBytes caps the capacity of reassembly buffers kept in the
// engine's pool. A buffer that grew past this (one giant reassembled
// packet) is dropped on Release instead of pinning its memory forever.
const maxPooledBufBytes = 64 * queue.SegmentBytes

// Datapath modes. The engine starts synchronous, may switch to the ring
// datapath once (Start), and ends closed (Close). Transitions are one-way.
const (
	modeSync int32 = iota
	modeRing
	modeClosed
)

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent queue.Manager shards. It is
	// rounded up to a power of two; 0 means DefaultShards.
	Shards int
	// NumFlows is the total flow-ID space (0 means queue.DefaultNumQueues,
	// 32K). Every shard accepts the full flow range; the hash decides
	// which shard owns which flow.
	NumFlows int
	// NumSegments is the shared segment pool (required, > 0). All shards
	// allocate from this one pool through per-shard magazine caches, so a
	// single hot flow can consume (nearly) all of it.
	NumSegments int
	// StoreData controls whether payloads are stored (as in queue.Config).
	StoreData bool
	// PerFlowLimit caps every flow at this many segments (0 = uncapped).
	PerFlowLimit int
	// Admission selects the shared-buffer admission policy. The zero value
	// (policy.KindNone) admits everything the pool can hold. Each shard
	// gets a private policy instance consulted inside the shard's critical
	// section; all instances see pool-wide occupancy, so thresholds are
	// fractions of the whole buffer and LQD evicts the globally longest
	// queue.
	Admission policy.Config
	// Egress parameterizes the integrated egress scheduler used by
	// DequeueNextBatch. The zero value is round-robin over active flows;
	// EgressConfig.Levels adds tenant/class scheduling levels above them.
	Egress policy.EgressConfig
	// NumTenants is the tenant count for the outermost scheduling tier
	// (0 or 1 = no tenant level). Shorthand for a round-robin tenant
	// LevelSpec in Egress.Levels; when both are given the unit counts
	// must agree. Flows start in tenant 0, reassignable at runtime with
	// SetFlowTenant.
	NumTenants int
	// NumPorts is the output-port count (0 means 1; at most MaxPorts).
	// Every flow maps to exactly one port — all flows start on port 0,
	// reassignable at runtime with SetFlowPort — and each port is an
	// independent transmit resource: its own scheduling unit per shard,
	// its own shaper, and (via Serve) its own egress worker.
	NumPorts int
	// PortRate is the token-bucket shaper installed on every port at
	// construction (the zero value is unshaped). Individual ports can be
	// reshaped at runtime with SetPortRate.
	PortRate policy.ShaperConfig
	// RingCapacity is the per-shard command-ring depth for the ring
	// datapath (0 means DefaultRingCapacity; rounded up to a power of
	// two). A full ring applies backpressure to producers.
	RingCapacity int
	// ResidenceSample enables residence-time sampling: every Nth packet
	// enqueued on a shard is stamped, and its enqueue→dequeue time lands
	// in the Stats residence histogram. 0 disables sampling (no memory or
	// hot-path cost).
	ResidenceSample int
	// BusyPoll makes ring workers spin (yielding between polls, bounded by
	// busyPollSpins) before parking when their ring runs empty, trading CPU
	// for wakeup latency on latency-critical deployments. Workers still
	// park once the spin budget is exhausted, so an idle engine does not
	// burn cores.
	BusyPoll bool
	// WorkSteal lets ring workers execute commands from a backlogged
	// sibling shard's ring when their own is empty. Shard execution is then
	// serialized by the shard mutex (the owner pays roughly one uncontended
	// lock per drained batch), per-flow FIFO is preserved — pops stay in
	// ring order and are never concurrent — and a zipf-skewed load cannot
	// pin one worker at 100% while the rest idle.
	WorkSteal bool
}

// hotPad separates cross-thread hot words inside engine structs (and from
// their neighbours). Two cache lines, matching internal/ring: adjacent-line
// prefetchers pair 64-byte lines, so 64-byte spacing still false-shares.
// layout_test.go pins the distances.
const hotPad = 128

// shard pairs one single-threaded Manager with its synchronization and
// local counters. On the sync datapath mu guards everything below it; on
// the ring datapath the shard's worker goroutine is the single writer and
// mu is untouched on the hot path. Shards are allocated individually (the
// Engine holds pointers), so their hot state lives on distinct cache lines.
type shard struct {
	mu sync.Mutex
	m  *queue.Manager

	// ring is the shard's command ring, created by Start (nil before).
	ring *cmdRing

	// Cumulative traffic counters.
	enqPackets  uint64
	enqSegments uint64
	deqPackets  uint64
	deqSegments uint64
	rejected    uint64 // enqueues refused (pool exhausted or flow capped)
	copiedBytes uint64 // payload bytes that crossed a copying enqueue or dequeue

	// storeData mirrors Config.StoreData so the copy accounting can run
	// inside shard methods without reaching for the engine.
	storeData bool

	// Policy counters. Dropped arrivals never entered the buffer;
	// pushed-out packets were resident and were evicted, so the
	// conservation law reads enqueued = dequeued + pushed-out + resident.
	dropPackets  uint64 // arrivals refused by the admission policy
	dropSegments uint64
	poPackets    uint64 // resident packets evicted by push-out
	poSegments   uint64

	// Admission policy instance (nil = accept all). admKind/admLimit
	// mirror the config so the tail-drop decision — two integer compares —
	// runs inline without the interface dispatch, which keeps the hot
	// enqueue path within the no-policy budget.
	adm      policy.Admission
	admKind  policy.Kind
	admLimit int

	// Egress state: one scheduling unit (a sched.Stack over the
	// configured tenant/class levels plus the per-unit flow lists) per
	// output port, plus the shard-wide discipline parameters (see
	// egress.go). flows and ports alias engine-wide slices: flowState
	// entries are only touched inside the owning shard's critical
	// section, ports is immutable after New.
	ps          []portSched
	activeFlows int    // total active flows across all ports
	portCursor  uint32 // rotating port for anyPort picks
	flows       []flowState
	ports       []*port
	eg          egressState

	// res samples packet residence times (nil when disabled).
	res *residence

	// Worker accounting, written by the ring datapath and read by
	// ShardStats/Stats from any goroutine. Atomics, not plain counters: in
	// work-stealing mode a thief updates this shard's stolen/coalesced
	// words while the shard's own worker accounts a steal of its own
	// elsewhere. Padded so the accounting stores cannot bounce the lines
	// holding the mutex or the plain counters above, and so the trailing
	// word does not share with whatever follows the shard allocation.
	_              [hotPad]byte
	wBusyNs        atomic.Int64  // ns this shard's worker spent executing (own and stolen batches)
	wIdleNs        atomic.Int64  // ns this shard's worker spent waiting for work
	wStealBatches  atomic.Uint64 // batches this shard's worker executed from siblings' rings
	wStolenCmds    atomic.Uint64 // commands siblings executed from this shard's ring
	coalescedWakes atomic.Uint64 // completion decrements merged into one per-drain flush
	_              [hotPad]byte
}

// Engine is the concurrent sharded queue manager. All methods are safe for
// concurrent use by multiple goroutines.
type Engine struct {
	cfg    Config
	shift  uint // 32 - log2(shards): top hash bits select the shard
	store  *segstore.Store
	shards []*shard
	epoch  time.Time

	// Transmit side: one port object per output port, one pacer slot per
	// shard (the goroutine starts lazily on the first Serve homed
	// there), a stop channel closed exactly once on Close to halt the
	// pacers, and their WaitGroup. flows is the engine-wide dense
	// scheduler state, one entry per flow, owned by the flow's shard.
	ports     []*port
	pacers    []*pacer
	flows     []flowState
	tierUnits [numTiers]int32 // fixed unit counts per tier (tenant, class); 1 = flat
	portStop  chan struct{}
	portWG    sync.WaitGroup

	// mode is the current datapath (modeSync → modeRing → modeClosed);
	// lifeMu serializes the transitions, workers tracks ring workers.
	mode    atomic.Int32
	lifeMu  sync.Mutex
	workers sync.WaitGroup

	egCursor atomic.Uint32 // rotating start shard for DequeueNextBatch

	bufs       sync.Pool // reassembly buffers in *bufBox wrappers, see Release
	boxes      sync.Pool // empty *bufBox wrappers awaiting a buffer
	bucketPool sync.Pool // per-shard index buckets for the batch paths
	callPool   sync.Pool // pooled completions for the ring datapath
	histPool   sync.Pool // residence merge targets for Stats snapshots
}

// bufBox carries a reassembly buffer through the pool. Pooling the raw
// []byte would box its slice header into an interface on every Put — one
// heap allocation per dequeued packet on the delivery hot path.
type bufBox struct{ b []byte }

// New builds an Engine: one shared segment store, one queue manager per
// shard drawing from it through a magazine cache. The engine starts on the
// synchronous datapath; call Start to switch to the ring datapath.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: negative Shards %d", cfg.Shards)
	}
	if n := cfg.Shards; n&(n-1) != 0 {
		cfg.Shards = 1 << bits.Len(uint(n))
	}
	if cfg.NumFlows == 0 {
		cfg.NumFlows = queue.DefaultNumQueues
	}
	if cfg.NumSegments <= 0 {
		return nil, fmt.Errorf("engine: NumSegments must be positive, got %d", cfg.NumSegments)
	}
	if cfg.PerFlowLimit < 0 {
		return nil, fmt.Errorf("engine: negative PerFlowLimit %d", cfg.PerFlowLimit)
	}
	if cfg.RingCapacity < 0 {
		return nil, fmt.Errorf("engine: negative RingCapacity %d", cfg.RingCapacity)
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = DefaultRingCapacity
	}
	if cfg.ResidenceSample < 0 {
		return nil, fmt.Errorf("engine: negative ResidenceSample %d", cfg.ResidenceSample)
	}
	if cfg.NumPorts == 0 {
		cfg.NumPorts = 1
	}
	if cfg.NumPorts < 0 || cfg.NumPorts > MaxPorts {
		return nil, fmt.Errorf("engine: NumPorts %d out of range [1, %d]", cfg.NumPorts, MaxPorts)
	}
	if err := cfg.PortRate.Validate(); err != nil {
		return nil, err
	}
	// cfg.Admission is validated by the SetAdmission call below;
	// cfg.Egress is validated before the tier resolution further down.
	// Scale the magazine size down for pools small relative to the shard
	// count, so the depot always holds enough magazines that no shard can
	// strand a large fraction of the pool in its cache.
	mag := segstore.MagazineSegments
	if perShard := cfg.NumSegments / (4 * cfg.Shards); perShard < mag {
		mag = perShard
		if mag < 1 {
			mag = 1
		}
	}
	store, err := segstore.New(segstore.Config{
		NumSegments:  cfg.NumSegments,
		SegmentBytes: queue.SegmentBytes,
		StoreData:    cfg.StoreData,
		MagazineSize: mag,
	})
	if err != nil {
		return nil, err
	}
	if err := cfg.Egress.Validate(); err != nil {
		return nil, err
	}
	egCfg, tierUnits, err := resolveTierUnits(cfg.Egress.WithDefaults(), cfg.NumTenants)
	if err != nil {
		return nil, err
	}
	cfg.Egress = egCfg
	e := &Engine{
		cfg:       cfg,
		shift:     uint(32 - bits.TrailingZeros(uint(cfg.Shards))),
		store:     store,
		shards:    make([]*shard, cfg.Shards),
		epoch:     time.Now(),
		ports:     make([]*port, cfg.NumPorts),
		pacers:    make([]*pacer, cfg.Shards),
		flows:     make([]flowState, cfg.NumFlows),
		tierUnits: tierUnits,
		portStop:  make(chan struct{}),
	}
	for f := range e.flows {
		e.flows[f].next = sched.None
		e.flows[f].prev = sched.None
	}
	for i := range e.pacers {
		e.pacers[i] = newPacer(e, i)
	}
	for i := range e.ports {
		e.ports[i] = &port{
			idx: i,
			sh:  newShaper(cfg.PortRate, e.epoch),
			// A port homes to one pacer: all its service — every shard's
			// scheduling unit — runs on that pacer's goroutine, so a
			// Sink's Transmit is never concurrent with itself.
			pc: e.pacers[i&(cfg.Shards-1)],
		}
	}
	e.bufs.New = func() any { return &bufBox{b: make([]byte, 0, 4*queue.SegmentBytes)} }
	for i := range e.shards {
		m, err := queue.NewWithStore(queue.Config{NumQueues: cfg.NumFlows}, store.NewCache())
		if err != nil {
			return nil, err
		}
		if cfg.PerFlowLimit > 0 {
			for q := 0; q < cfg.NumFlows; q++ {
				if err := m.SetSegmentLimit(queue.QueueID(q), cfg.PerFlowLimit); err != nil {
					return nil, err
				}
			}
		}
		// Per-port level stacks are allocated lazily on first activity
		// (see portSched), so a wide port space costs nothing up front.
		s := &shard{
			m:         m,
			storeData: cfg.StoreData,
			ps:        make([]portSched, cfg.NumPorts),
			flows:     e.flows,
			ports:     e.ports,
		}
		for t := 0; t < numTiers; t++ {
			s.eg.tierWeights[t] = make([]int32, tierUnits[t])
		}
		s.eg.levels = buildLevels(tierUnits, &s.eg.tierWeights)
		for p := range s.ps {
			s.ps[p].s = s
		}
		e.shards[i] = s
		if cfg.ResidenceSample > 0 {
			s.res = newResidence(cfg.ResidenceSample, cfg.NumFlows, e.epoch)
		}
	}
	if err := e.SetAdmission(cfg.Admission); err != nil {
		return nil, err
	}
	if err := e.SetEgress(cfg.Egress); err != nil {
		return nil, err
	}
	return e, nil
}

// lockSync acquires s.mu for a synchronous-datapath critical section. It
// returns false — with the mutex released — when the engine is no longer on
// the synchronous datapath: after Start's barrier the ring workers own the
// shards, so the caller must retry its operation through the current mode.
func (e *Engine) lockSync(s *shard) bool {
	s.mu.Lock()
	if e.mode.Load() != modeSync {
		s.mu.Unlock()
		return false
	}
	return true
}

// run executes fn inside shard s's critical section, in whatever way the
// current datapath makes safe: under the shard mutex on the synchronous
// datapath, as a command executed by the shard's worker on the ring
// datapath, and under the (now uncontended) mutex after Close. It is the
// single implementation used by every control-plane and slow-path
// operation; fn captures its own results. fn always runs exactly once.
func (e *Engine) run(s *shard, fn func()) {
	for {
		m := e.mode.Load()
		if m == modeRing {
			if e.postFnWait(s, fn) {
				return
			}
			// The ring closed under us. The mode flips to modeClosed only
			// after every worker has exited (see Close), so yield until the
			// flip and then take the now-safe mutex path.
			runtime.Gosched()
			continue
		}
		s.mu.Lock()
		if e.mode.Load() != m {
			s.mu.Unlock()
			continue
		}
		fn()
		s.mu.Unlock()
		return
	}
}

// SetAdmission replaces the admission policy on every shard. Each shard
// gets a private instance (RED seeds are derived per shard) swapped in
// inside the shard's critical section, so reconfiguration is safe while
// traffic flows. Counters are not reset. Longest-queue tracking is enabled
// exactly when the policy can return a push-out verdict; the single-writer
// publish deferral is enabled exactly when no policy reads pool occupancy.
func (e *Engine) SetAdmission(cfg policy.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	track := cfg.Kind == policy.KindLQD
	for i, s := range e.shards {
		shardCfg := cfg
		if shardCfg.Seed == 0 {
			shardCfg.Seed = 1
		}
		shardCfg.Seed += uint64(i) * 0x9e3779b97f4a7c15
		adm, err := policy.New(shardCfg)
		if err != nil {
			return err
		}
		s := s
		e.run(s, func() {
			s.adm = adm
			s.admKind = cfg.Kind
			s.admLimit = cfg.Limit
			s.m.SetLongestTracking(track)
			// Only a ring worker is a single writer, and only a policy-free
			// shard has nobody reading pool occupancy between operations.
			s.m.SetDeferPublish(e.mode.Load() == modeRing && cfg.Kind == policy.KindNone)
		})
	}
	return nil
}

// Shards returns the (power-of-two) shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// NumFlows returns the flow-ID space.
func (e *Engine) NumFlows() int { return e.cfg.NumFlows }

// NumSegments returns the total segment pool across all shards.
func (e *Engine) NumSegments() int { return e.cfg.NumSegments }

// ShardOf returns the shard index owning flow — Fibonacci hashing on the
// flow ID, taking the top bits of the product, which mixes well even for
// the sequential flow IDs traffic generators tend to produce.
func (e *Engine) ShardOf(flow uint32) int {
	return int((flow * 0x9E3779B1) >> e.shift)
}

func (e *Engine) shardOf(flow uint32) *shard {
	return e.shards[e.ShardOf(flow)]
}

// EnqueuePacket segments data onto flow, returning the segment count. When
// an admission policy is configured it is consulted first; a refusal
// returns ErrAdmissionDrop, and under LQD the arrival may instead evict
// packets from the globally longest queue — on any shard — to make room.
// On the ring datapath the call blocks until the shard's worker has
// executed the command (use EnqueueAsync to fire and forget).
func (e *Engine) EnqueuePacket(flow uint32, data []byte) (int, error) {
	s := e.shardOf(flow)
	need := (len(data) + queue.SegmentBytes - 1) / queue.SegmentBytes
	for attempt := 0; ; attempt++ {
		var n int
		var err error
		switch e.mode.Load() {
		case modeClosed:
			return 0, ErrClosed
		case modeRing:
			n, err = e.enqueueRingWait(s, flow, data)
		default:
			if !e.lockSync(s) {
				continue
			}
			n, err = s.enqueueLocked(flow, data)
			s.mu.Unlock()
		}
		switch {
		case err == errWantPushOut: //nolint:errorlint // internal sentinel, never wrapped
			if attempt >= maxEvictAttempts || !e.evictForSpace(need) {
				// Nothing left to evict (or the freed space kept being
				// stolen): the arrival is dropped after all.
				e.run(s, func() {
					s.dropPackets++
					s.dropSegments += uint64(need)
				})
				return 0, ErrAdmissionDrop
			}
		case attempt < maxEvictAttempts && errors.Is(err, queue.ErrNoFreeSegments) && e.store.Free() >= need:
			// The pool holds enough free segments, but they are stranded in
			// other shards' magazine caches. Flush every cache to the depot
			// and retry (bounded — concurrent shards can re-strand frees
			// while we flush); the refused attempts stay counted in
			// Rejected.
			e.flushCaches()
		default:
			return n, err
		}
	}
}

// flushCaches returns every shard's cached free segments to the depot so
// any shard can allocate them. Slow path only: shards are entered one at a
// time, never nested.
func (e *Engine) flushCaches() {
	for _, s := range e.shards {
		s := s
		e.run(s, func() { s.m.FlushFree() })
	}
}

// enqueueLocked runs admission then the manager enqueue, inside s's
// critical section (the mutex on the sync datapath, the worker on the ring
// datapath). Drops return the bare ErrAdmissionDrop sentinel: overloaded
// callers see millions of drops, so the error must not allocate.
// errWantPushOut asks the caller to leave the critical section, evict
// globally, and retry.
func (s *shard) enqueueLocked(flow uint32, data []byte) (int, error) {
	if s.adm != nil && len(data) > 0 {
		need := (len(data) + queue.SegmentBytes - 1) / queue.SegmentBytes
		if err := s.admitNeedLocked(flow, need); err != nil {
			return 0, err
		}
	}
	n, err := s.m.EnqueuePacket(queue.QueueID(flow), data)
	s.noteEnqueue(n, err)
	if err == nil {
		s.noteCopied(len(data))
		s.setActive(flow)
		s.noteEnqueueRes(flow)
	}
	return n, err
}

// admitNeedLocked runs the admission decision for a packet of need segments
// arriving on flow, inside s's critical section, counting drops. It is the
// policy half shared by enqueueLocked and reserveLocked: nil admits,
// ErrAdmissionDrop refuses (counted), and errWantPushOut asks the caller to
// evict globally outside the critical section and retry.
func (s *shard) admitNeedLocked(flow uint32, need int) error {
	if s.admKind == policy.KindTailDrop {
		// Inline fast path: one pool-wide free-count read (an atomic
		// load per cache) and a per-queue cap compare, with no
		// interface dispatch.
		segs, err := s.m.Len(queue.QueueID(flow))
		if err == nil && (need > s.m.FreeSegments() ||
			(s.admLimit > 0 && segs+need > s.admLimit)) {
			s.dropPackets++
			s.dropSegments += uint64(need)
			return ErrAdmissionDrop
		}
		return nil
	}
	switch s.admitLocked(flow, need) {
	case admitDrop:
		s.dropPackets++
		s.dropSegments += uint64(need)
		return ErrAdmissionDrop
	case admitPushOut:
		return errWantPushOut
	}
	return nil
}

// noteCopied charges n payload bytes to the shard's copy counter, inside
// the shard's critical section. Only the copying datapaths call it — the
// view and write-in-place paths never do, which is how Stats.CopiedBytes
// proves a deployment's copy path has gone quiet. No payload memory means
// nothing was copied, so the charge is skipped.
func (s *shard) noteCopied(n int) {
	if s.storeData {
		s.copiedBytes += uint64(n)
	}
}

// admitResult is the outcome of consulting the admission policy.
type admitResult uint8

const (
	admitOK      admitResult = iota // proceed with the enqueue
	admitDrop                       // refuse the arrival
	admitPushOut                    // admit after global eviction (caller handles)
)

// admitLocked consults the admission policy for a packet of need segments
// arriving on this shard, inside s's critical section (s.adm != nil). The
// policy sees pool-wide occupancy. A PushOut verdict is not executed here:
// the globally longest queue may live on another shard, and shards are
// never entered nested, so the caller evicts after leaving this critical
// section.
func (s *shard) admitLocked(flow uint32, need int) admitResult {
	occ, err := s.m.Occupancy(queue.QueueID(flow))
	if err != nil {
		return admitOK // out-of-range flow: let the manager report ErrBadQueue
	}
	if lim, _ := s.m.SegmentLimit(queue.QueueID(flow)); lim > 0 && occ.Segments+need > lim {
		// The manager's per-flow cap will refuse this packet no matter
		// what the policy says; pass it through so the caller sees
		// ErrQueueLimit — and, crucially, so a push-out verdict does not
		// evict an innocent victim for an arrival that cannot land.
		return admitOK
	}
	// Free() walks every cache's atomic mirror; read it once per decision.
	free := s.m.FreeSegments()
	verdict := s.adm.Admit(flow, need,
		policy.QueueState{Segments: occ.Segments},
		policy.PoolState{Free: free, Capacity: s.m.NumSegments()})
	switch verdict {
	case policy.Drop:
		return admitDrop
	case policy.PushOut:
		if free >= need {
			return admitOK // the policy is stricter than the pool; no eviction needed
		}
		return admitPushOut
	}
	return admitOK
}

// evictForSpace implements the global half of LQD: push out head packets of
// the globally longest queue — wherever it lives — until the shared pool
// holds need free segments. Shards are entered one at a time (peek, then
// evict), never nested, so concurrent evictions from different shards
// cannot deadlock. The victim's magazine cache is flushed so the freed
// segments are reachable from the arrival's shard. Returns false when no
// victim remains.
func (e *Engine) evictForSpace(need int) bool {
	for rounds := 0; e.store.Free() < need; rounds++ {
		if rounds > e.cfg.NumSegments {
			return false // livelock guard; cannot trigger without contention
		}
		victim := e.longestShard()
		if victim == nil {
			return false
		}
		var err error
		e.run(victim, func() {
			var q queue.QueueID
			var segs int
			q, segs, err = victim.m.PushOutLongest()
			if err == nil {
				victim.poPackets++
				victim.poSegments += uint64(segs)
				victim.syncActive(uint32(q))
				victim.noteRemoveRes(uint32(q), false)
				victim.m.FlushFree()
			}
		})
		if err != nil {
			return false
		}
	}
	return true
}

// longestShard returns the shard holding the longest queue right now, or
// nil when every queue is empty. Each shard is peeked inside its own
// critical section; with LQD configured the per-shard lookup is O(1) via
// the longest-queue heap.
func (e *Engine) longestShard() *shard {
	var victim *shard
	best := 0
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			if _, l, ok := s.m.LongestQueue(); ok && l > best {
				best, victim = l, s
			}
		})
	}
	return victim
}

// DequeuePacket removes and reassembles the head packet of flow. The
// returned buffer comes from an internal pool; pass it to Release when done
// to recycle it (keeping it, or not releasing, is safe but allocates more).
func (e *Engine) DequeuePacket(flow uint32) ([]byte, error) {
	s := e.shardOf(flow)
	for {
		switch e.mode.Load() {
		case modeClosed:
			return nil, ErrClosed
		case modeRing:
			return e.dequeueRingWait(s, flow)
		}
		if !e.lockSync(s) {
			continue
		}
		buf := e.getBuf()
		out, n, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
		s.noteDequeue(n, err)
		if err == nil {
			s.noteCopied(len(out))
			s.syncActive(flow)
			s.noteRemoveRes(flow, true)
		}
		s.mu.Unlock()
		if err != nil {
			e.putBuf(buf)
			return nil, err
		}
		return out, nil
	}
}

// ReleaseBuffer returns a reassembly buffer obtained from DequeuePacket,
// DequeueBatch or the copy-mode egress paths to the engine's pool. The
// caller must not use buf afterwards. Packet views have their own release
// surface (PacketView.Release), which returns segments rather than buffers.
func (e *Engine) ReleaseBuffer(buf []byte) { e.putBuf(buf) }

// Release returns a reassembly buffer to the engine's pool.
//
// Deprecated: use ReleaseBuffer. "Release" now names two different
// operations — recycling a copied buffer versus returning a zero-copy
// view's segment chain (PacketView.Release) — and this alias keeps old
// callers building while the names disambiguate.
func (e *Engine) Release(buf []byte) { e.putBuf(buf) }

// getBuf takes a reassembly buffer from the pool; the emptied wrapper goes
// back to the box pool for the next putBuf.
func (e *Engine) getBuf() []byte {
	box := e.bufs.Get().(*bufBox)
	b := box.b
	box.b = nil
	e.boxes.Put(box)
	return b[:0]
}

// putBuf recycles a reassembly buffer, unless it grew past
// maxPooledBufBytes: pooling one giant reassembled packet would pin its
// memory for the engine's lifetime.
func (e *Engine) putBuf(buf []byte) {
	if c := cap(buf); c == 0 || c > maxPooledBufBytes {
		return
	}
	var box *bufBox
	if v := e.boxes.Get(); v != nil {
		box = v.(*bufBox)
	} else {
		box = new(bufBox)
	}
	box.b = buf[:0]
	e.bufs.Put(box)
}

// MovePacket relinks the head packet of from onto to — pure pointer surgery
// on the shared slab whether or not the flows share a shard. A move leaves
// the traffic counters untouched (the packet neither entered nor left the
// engine) and allocates nothing: the segments are already resident, so
// pool-pressure admission (LQD push-out, RED) does not apply. Only the
// per-queue caps guard the destination — the tail-drop per-queue limit
// (ErrAdmissionDrop) and the per-flow segment cap (ErrQueueLimit); a
// refused move leaves the packet on its source queue.
func (e *Engine) MovePacket(from, to uint32) (int, error) {
	if e.mode.Load() == modeClosed {
		return 0, ErrClosed
	}
	si, di := e.ShardOf(from), e.ShardOf(to)
	if si == di {
		s := e.shards[si]
		var n int
		var err error
		e.run(s, func() { n, err = s.moveLocal(from, to) })
		return n, err
	}
	src, dst := e.shards[si], e.shards[di]
	var ch queue.PacketChain
	var err error
	e.run(src, func() {
		ch, err = src.m.UnlinkHeadPacket(queue.QueueID(from))
		if err == nil {
			src.syncActive(from)
			src.noteRemoveRes(from, false)
		}
	})
	if err != nil {
		return 0, err
	}
	// The chain is in transit, owned by this goroutine; neither shard can
	// see a half-moved packet. From here the move must complete — even if
	// the engine closes underneath us, run falls back to the quiescent
	// mutex path, so the chain is always relinked somewhere.
	e.run(dst, func() {
		if dst.adm != nil && dst.admKind == policy.KindTailDrop && dst.admLimit > 0 {
			if dstSegs, derr := dst.m.Len(queue.QueueID(to)); derr == nil && dstSegs+ch.Segs > dst.admLimit {
				err = ErrAdmissionDrop
			}
		}
		if err == nil {
			err = dst.m.LinkPacketTail(queue.QueueID(to), ch)
			if err == nil {
				dst.setActive(to)
				dst.noteTransferRes(to)
			}
		}
	})
	if err != nil {
		// Restore the packet at the head of its source queue. This is
		// pointer relinking that cannot fail, so a refused move is
		// all-or-nothing — the pre-segstore copy path could lose the
		// packet when the rollback enqueue found the source pool refilled,
		// and miscounted the loss as a push-out.
		e.run(src, func() {
			_ = src.m.LinkPacketHead(queue.QueueID(from), ch)
			src.setActive(from)
			src.noteTransferRes(from)
		})
		return 0, err
	}
	return ch.Segs, nil
}

// moveLocal is the same-shard MovePacket body, inside s's critical section.
func (s *shard) moveLocal(from, to uint32) (int, error) {
	if from != to && s.adm != nil && s.admKind == policy.KindTailDrop && s.admLimit > 0 {
		if _, need, err := s.m.PacketLen(queue.QueueID(from)); err == nil {
			if dstSegs, derr := s.m.Len(queue.QueueID(to)); derr == nil && dstSegs+need > s.admLimit {
				return 0, ErrAdmissionDrop
			}
		}
	}
	n, err := s.m.MovePacket(queue.QueueID(from), queue.QueueID(to))
	if err == nil {
		s.syncActive(from)
		s.syncActive(to)
		if from != to {
			s.noteRemoveRes(from, false)
			s.noteTransferRes(to)
		} else if occ, oerr := s.m.Occupancy(queue.QueueID(from)); oerr == nil && occ.Packets > 1 {
			// Same-queue rotation: the head packet went to the tail.
			s.noteRemoveRes(from, false)
			s.noteTransferRes(from)
		}
	}
	return n, err
}

// DeletePacket drops the head packet of flow, returning its segment count.
func (e *Engine) DeletePacket(flow uint32) (int, error) {
	if e.mode.Load() == modeClosed {
		return 0, ErrClosed
	}
	s := e.shardOf(flow)
	var n int
	var err error
	e.run(s, func() {
		n, err = s.m.DeletePacket(queue.QueueID(flow))
		s.noteDequeue(n, err)
		if err == nil {
			s.syncActive(flow)
			s.noteRemoveRes(flow, false)
		}
	})
	return n, err
}

// Len returns the queued segment count of flow.
func (e *Engine) Len(flow uint32) (int, error) {
	s := e.shardOf(flow)
	var n int
	var err error
	e.run(s, func() { n, err = s.m.Len(queue.QueueID(flow)) })
	return n, err
}

// Occupancy returns the live buffer usage of flow.
func (e *Engine) Occupancy(flow uint32) (queue.Occupancy, error) {
	s := e.shardOf(flow)
	var occ queue.Occupancy
	var err error
	e.run(s, func() { occ, err = s.m.Occupancy(queue.QueueID(flow)) })
	return occ, err
}

// SetFlowLimit caps flow at limit segments (0 removes the cap). Unknown
// flows (outside the configured flow space) report ErrUnknownFlow.
func (e *Engine) SetFlowLimit(flow uint32, limit int) error {
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	var err error
	e.run(s, func() { err = s.m.SetSegmentLimit(queue.QueueID(flow), limit) })
	return err
}

// FreeSegments returns the shared pool's free population (depot plus every
// shard's magazine cache). Lock-free; on the ring datapath with no
// admission policy the per-shard mirrors refresh at batch rather than
// per-operation granularity, so the value may lag by a few operations.
func (e *Engine) FreeSegments() int { return e.store.Free() }

// noteEnqueue records an enqueue outcome inside the shard's critical
// section.
func (s *shard) noteEnqueue(segments int, err error) {
	if err != nil {
		s.rejected++
		return
	}
	s.enqPackets++
	s.enqSegments += uint64(segments)
}

// noteDequeue records a dequeue/delete outcome inside the shard's critical
// section.
func (s *shard) noteDequeue(segments int, err error) {
	if err != nil {
		return
	}
	s.deqPackets++
	s.deqSegments += uint64(segments)
}
