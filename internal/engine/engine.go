// Package engine is the concurrent, sharded queue-manager subsystem: it
// wraps N independent queue.Manager instances (one per shard, each with its
// own segment pool, free list and mutex) behind a goroutine-safe API.
//
// The paper's MMS reaches its 6.1 Gbps by exploiting the independence of
// per-flow state: every command touches one queue's pointers and the shared
// free list, and the hardware pipelines commands because flows do not
// interfere. Software gets the same parallelism by partitioning the flow
// space: flows are hashed onto shards, each shard owns a private Manager
// (flat pointer arrays and a private free list, so there is no shared
// allocator to serialize on), and commands for different shards proceed on
// different cores with no coordination at all. Per-flow FIFO order is
// preserved because a flow always maps to the same shard and each shard is
// internally sequential.
//
// Batched operations (EnqueueBatch / DequeueBatch) amortize the per-shard
// lock: a batch is bucketed by shard and each shard is locked once per
// batch rather than once per packet. Payload buffers for reassembly are
// recycled through a sync.Pool; callers return them with Release.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 8

// ErrShardMismatch is returned by MovePacket when the two flows hash to
// different shards and data storage is disabled (so the packet cannot be
// re-segmented through a copy).
var ErrShardMismatch = errors.New("engine: flows map to different shards and data storage is off")

// ErrAdmissionDrop is returned by the enqueue paths when the configured
// admission policy refuses the arrival. The drop is counted in
// Stats.DroppedPackets/DroppedSegments; it is the policy working as
// intended, not a caller error.
var ErrAdmissionDrop = errors.New("engine: packet dropped by admission policy")

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent queue.Manager shards. It is
	// rounded up to a power of two; 0 means DefaultShards.
	Shards int
	// NumFlows is the total flow-ID space (0 means queue.DefaultNumQueues,
	// 32K). Every shard accepts the full flow range; the hash decides
	// which shard owns which flow.
	NumFlows int
	// NumSegments is the total segment pool, divided evenly across shards
	// (required, >= Shards).
	NumSegments int
	// StoreData controls whether payloads are stored (as in queue.Config).
	StoreData bool
	// PerFlowLimit caps every flow at this many segments (0 = uncapped).
	PerFlowLimit int
	// Admission selects the shared-buffer admission policy. The zero value
	// (policy.KindNone) admits everything the pool can hold. Each shard
	// gets a private policy instance consulted under the shard lock.
	Admission policy.Config
	// Egress parameterizes the integrated egress scheduler used by
	// DequeueNextBatch. The zero value is round-robin over active flows.
	Egress policy.EgressConfig
}

// shard pairs one single-threaded Manager with its lock and local counters.
// Shards are allocated individually (the Engine holds pointers), so their
// hot mutexes live on distinct cache lines.
type shard struct {
	mu sync.Mutex
	m  *queue.Manager

	// Cumulative traffic counters, guarded by mu.
	enqPackets  uint64
	enqSegments uint64
	deqPackets  uint64
	deqSegments uint64
	rejected    uint64 // enqueues refused (pool exhausted or flow capped)

	// Policy counters, guarded by mu. Dropped arrivals never entered the
	// buffer; pushed-out packets were resident and were evicted, so the
	// conservation law reads enqueued = dequeued + pushed-out + resident.
	dropPackets  uint64 // arrivals refused by the admission policy
	dropSegments uint64
	poPackets    uint64 // resident packets evicted by push-out
	poSegments   uint64

	// Admission policy instance (nil = accept all), guarded by mu.
	// admKind/admLimit mirror the config so the tail-drop decision — two
	// integer compares — runs inline without the interface dispatch, which
	// keeps the hot enqueue path within the no-policy budget.
	adm      policy.Admission
	admKind  policy.Kind
	admLimit int

	// Egress state: the active-flow bitmap plus the discipline's cursor
	// and credit state (see egress.go), guarded by mu.
	active      []uint64
	activeFlows int
	lowWord     int // no active bits live in words below this index
	eg          egressState
}

// Engine is the concurrent sharded queue manager. All methods are safe for
// concurrent use by multiple goroutines.
type Engine struct {
	cfg    Config
	shift  uint // 32 - log2(shards): top hash bits select the shard
	shards []*shard

	egCursor atomic.Uint32 // rotating start shard for DequeueNextBatch

	bufs       sync.Pool // reassembly scratch buffers, see Release
	bucketPool sync.Pool // per-shard index buckets for the batch paths
}

// New builds an Engine. The segment pool is split evenly across shards, the
// first NumSegments%Shards shards taking one extra segment.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: negative Shards %d", cfg.Shards)
	}
	if n := cfg.Shards; n&(n-1) != 0 {
		cfg.Shards = 1 << bits.Len(uint(n))
	}
	if cfg.NumFlows == 0 {
		cfg.NumFlows = queue.DefaultNumQueues
	}
	if cfg.NumSegments < cfg.Shards {
		return nil, fmt.Errorf("engine: NumSegments %d < Shards %d", cfg.NumSegments, cfg.Shards)
	}
	if cfg.PerFlowLimit < 0 {
		return nil, fmt.Errorf("engine: negative PerFlowLimit %d", cfg.PerFlowLimit)
	}
	// cfg.Admission and cfg.Egress are validated by the SetAdmission and
	// SetEgress calls below.
	e := &Engine{
		cfg:    cfg,
		shift:  uint(32 - bits.TrailingZeros(uint(cfg.Shards))),
		shards: make([]*shard, cfg.Shards),
	}
	e.bufs.New = func() any { return make([]byte, 0, 4*queue.SegmentBytes) }
	per, extra := cfg.NumSegments/cfg.Shards, cfg.NumSegments%cfg.Shards
	for i := range e.shards {
		segs := per
		if i < extra {
			segs++
		}
		m, err := queue.New(queue.Config{
			NumQueues:   cfg.NumFlows,
			NumSegments: segs,
			StoreData:   cfg.StoreData,
		})
		if err != nil {
			return nil, err
		}
		if cfg.PerFlowLimit > 0 {
			for q := 0; q < cfg.NumFlows; q++ {
				if err := m.SetSegmentLimit(queue.QueueID(q), cfg.PerFlowLimit); err != nil {
					return nil, err
				}
			}
		}
		e.shards[i] = &shard{
			m:      m,
			active: make([]uint64, (cfg.NumFlows+63)/64),
		}
	}
	if err := e.SetAdmission(cfg.Admission); err != nil {
		return nil, err
	}
	if err := e.SetEgress(cfg.Egress); err != nil {
		return nil, err
	}
	return e, nil
}

// SetAdmission replaces the admission policy on every shard. Each shard
// gets a private instance (RED seeds are derived per shard) swapped in
// under the shard lock, so reconfiguration is safe while traffic flows.
// Counters are not reset. Longest-queue tracking is enabled exactly when
// the policy can return a push-out verdict.
func (e *Engine) SetAdmission(cfg policy.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	track := cfg.Kind == policy.KindLQD
	for i, s := range e.shards {
		shardCfg := cfg
		if shardCfg.Seed == 0 {
			shardCfg.Seed = 1
		}
		shardCfg.Seed += uint64(i) * 0x9e3779b97f4a7c15
		adm, err := policy.New(shardCfg)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.adm = adm
		s.admKind = cfg.Kind
		s.admLimit = cfg.Limit
		s.m.SetLongestTracking(track)
		s.mu.Unlock()
	}
	return nil
}

// Shards returns the (power-of-two) shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// NumFlows returns the flow-ID space.
func (e *Engine) NumFlows() int { return e.cfg.NumFlows }

// NumSegments returns the total segment pool across all shards.
func (e *Engine) NumSegments() int { return e.cfg.NumSegments }

// ShardOf returns the shard index owning flow — Fibonacci hashing on the
// flow ID, taking the top bits of the product, which mixes well even for
// the sequential flow IDs traffic generators tend to produce.
func (e *Engine) ShardOf(flow uint32) int {
	return int((flow * 0x9E3779B1) >> e.shift)
}

func (e *Engine) shardOf(flow uint32) *shard {
	return e.shards[e.ShardOf(flow)]
}

// EnqueuePacket segments data onto flow, returning the segment count. When
// an admission policy is configured it is consulted first; a refusal
// returns ErrAdmissionDrop, and under LQD the arrival may instead evict
// packets from the shard's longest queue to make room.
func (e *Engine) EnqueuePacket(flow uint32, data []byte) (int, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	n, err := s.enqueueLocked(flow, data)
	s.mu.Unlock()
	return n, err
}

// enqueueLocked runs admission then the manager enqueue; caller holds s.mu.
// Drops return the bare ErrAdmissionDrop sentinel: overloaded callers see
// millions of drops, so the error must not allocate.
func (s *shard) enqueueLocked(flow uint32, data []byte) (int, error) {
	if s.adm != nil && len(data) > 0 {
		need := (len(data) + queue.SegmentBytes - 1) / queue.SegmentBytes
		if s.admKind == policy.KindTailDrop {
			// Inline fast path: the verdict is two compares on counters
			// that are already cache-hot under the shard lock.
			segs, err := s.m.Len(queue.QueueID(flow))
			if err == nil && (need > s.m.FreeSegments() ||
				(s.admLimit > 0 && segs+need > s.admLimit)) {
				s.dropPackets++
				s.dropSegments += uint64(need)
				return 0, ErrAdmissionDrop
			}
		} else if !s.admitLocked(flow, need, true) {
			return 0, ErrAdmissionDrop
		}
	}
	n, err := s.m.EnqueuePacket(queue.QueueID(flow), data)
	s.noteEnqueue(n, err)
	if err == nil {
		s.setActive(flow)
	}
	return n, err
}

// admitTransferLocked consults the admission policy for a packet of need
// segments transferring into this shard via a cross-shard MovePacket;
// caller holds s.mu. Refusals are not counted as drops — the packet stays
// on its source queue — but push-out verdicts still evict (and count as
// pushed-out), matching what a direct arrival would have caused.
func (s *shard) admitTransferLocked(flow uint32, need int) bool {
	if s.adm == nil {
		return true
	}
	return s.admitLocked(flow, need, false)
}

// admitLocked consults the admission policy for a packet of need segments
// entering this shard, performing push-out eviction when the verdict asks
// for it; caller holds s.mu and has checked s.adm != nil. countDrops
// selects arrival semantics (refusals counted as drops) versus transfer
// semantics (the packet survives elsewhere). It reports whether the
// packet may proceed.
func (s *shard) admitLocked(flow uint32, need int, countDrops bool) bool {
	refuse := func() bool {
		if countDrops {
			s.dropPackets++
			s.dropSegments += uint64(need)
		}
		return false
	}
	occ, err := s.m.Occupancy(queue.QueueID(flow))
	if err != nil {
		return true // out-of-range flow: let the manager report ErrBadQueue
	}
	if lim, _ := s.m.SegmentLimit(queue.QueueID(flow)); lim > 0 && occ.Segments+need > lim {
		// The manager's per-flow cap will refuse this packet no matter
		// what the policy says; pass it through so the caller sees
		// ErrQueueLimit — and, crucially, so a push-out verdict does not
		// evict an innocent victim for an arrival that cannot land.
		return true
	}
	verdict := s.adm.Admit(flow, need,
		policy.QueueState{Segments: occ.Segments},
		policy.PoolState{Free: s.m.FreeSegments(), Capacity: s.m.NumSegments()})
	switch verdict {
	case policy.Drop:
		return refuse()
	case policy.PushOut:
		for s.m.FreeSegments() < need {
			q, segs, err := s.m.PushOutLongest()
			if err != nil {
				// Nothing left to evict; refuse instead.
				return refuse()
			}
			s.poPackets++
			s.poSegments += uint64(segs)
			s.syncActive(uint32(q))
		}
	}
	return true
}

// DequeuePacket removes and reassembles the head packet of flow. The
// returned buffer comes from an internal pool; pass it to Release when done
// to recycle it (keeping it, or not releasing, is safe but allocates more).
func (e *Engine) DequeuePacket(flow uint32) ([]byte, error) {
	buf := e.bufs.Get().([]byte)[:0]
	s := e.shardOf(flow)
	s.mu.Lock()
	out, n, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
	s.noteDequeue(n, err)
	if err == nil {
		s.syncActive(flow)
	}
	s.mu.Unlock()
	if err != nil {
		e.bufs.Put(buf)
		return nil, err
	}
	return out, nil
}

// Release returns a buffer obtained from DequeuePacket or DequeueBatch to
// the engine's pool. The caller must not use buf afterwards.
func (e *Engine) Release(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	e.bufs.Put(buf[:0])
}

// MovePacket relinks the head packet of from onto to. When both flows live
// on the same shard this is pure pointer surgery; across shards the packet
// is reassembled and re-segmented (one copy), which requires StoreData.
// Either way a move leaves the traffic counters untouched — the packet
// neither entered nor left the engine.
//
// The admission policy applies to the destination: a same-shard move (pool
// occupancy unchanged) honors only the tail-drop per-queue cap; a
// cross-shard move consumes the destination shard's pool, so the full
// policy runs there — LQD may push out to make room, and a refusal
// returns ErrAdmissionDrop with the packet left on its source queue.
func (e *Engine) MovePacket(from, to uint32) (int, error) {
	si, di := e.ShardOf(from), e.ShardOf(to)
	if si == di {
		s := e.shards[si]
		s.mu.Lock()
		defer s.mu.Unlock()
		if from != to && s.adm != nil && s.admKind == policy.KindTailDrop && s.admLimit > 0 {
			if _, need, err := s.m.PacketLen(queue.QueueID(from)); err == nil {
				if dstSegs, derr := s.m.Len(queue.QueueID(to)); derr == nil && dstSegs+need > s.admLimit {
					return 0, ErrAdmissionDrop
				}
			}
		}
		n, err := s.m.MovePacket(queue.QueueID(from), queue.QueueID(to))
		if err == nil {
			s.syncActive(from)
			s.syncActive(to)
		}
		return n, err
	}
	if !e.cfg.StoreData {
		return 0, ErrShardMismatch
	}
	src, dst := e.shards[si], e.shards[di]
	buf := e.bufs.Get().([]byte)[:0]
	src.mu.Lock()
	data, segs, err := src.m.DequeuePacketAppend(queue.QueueID(from), buf)
	if err == nil {
		src.syncActive(from)
	}
	src.mu.Unlock()
	if err != nil {
		e.bufs.Put(buf)
		return 0, err
	}
	var n int
	dst.mu.Lock()
	if dst.admitTransferLocked(to, segs) {
		n, err = dst.m.EnqueuePacket(queue.QueueID(to), data)
		if err == nil {
			dst.setActive(to)
		}
	} else {
		err = ErrAdmissionDrop
	}
	dst.mu.Unlock()
	if err != nil {
		// Restore the packet to its source flow so the move is
		// all-or-nothing from the caller's point of view.
		src.mu.Lock()
		_, rerr := src.m.EnqueuePacket(queue.QueueID(from), data)
		if rerr == nil {
			src.setActive(from)
		} else {
			// The packet is gone: count it as an eviction on the source
			// shard so the conservation law (enqueued = dequeued +
			// pushed-out + resident) keeps holding.
			src.poPackets++
			src.poSegments += uint64(segs)
		}
		src.mu.Unlock()
		e.Release(data)
		if rerr != nil {
			return 0, fmt.Errorf("engine: cross-shard move failed (%w) and rollback failed (%v): packet dropped", err, rerr)
		}
		return 0, err
	}
	e.Release(data)
	return n, nil
}

// DeletePacket drops the head packet of flow, returning its segment count.
func (e *Engine) DeletePacket(flow uint32) (int, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	n, err := s.m.DeletePacket(queue.QueueID(flow))
	s.noteDequeue(n, err)
	if err == nil {
		s.syncActive(flow)
	}
	s.mu.Unlock()
	return n, err
}

// Len returns the queued segment count of flow.
func (e *Engine) Len(flow uint32) (int, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	n, err := s.m.Len(queue.QueueID(flow))
	s.mu.Unlock()
	return n, err
}

// Occupancy returns the live buffer usage of flow.
func (e *Engine) Occupancy(flow uint32) (queue.Occupancy, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	occ, err := s.m.Occupancy(queue.QueueID(flow))
	s.mu.Unlock()
	return occ, err
}

// SetFlowLimit caps flow at limit segments (0 removes the cap).
func (e *Engine) SetFlowLimit(flow uint32, limit int) error {
	s := e.shardOf(flow)
	s.mu.Lock()
	err := s.m.SetSegmentLimit(queue.QueueID(flow), limit)
	s.mu.Unlock()
	return err
}

// FreeSegments returns the aggregate free-list population across shards.
func (e *Engine) FreeSegments() int {
	total := 0
	for _, s := range e.shards {
		s.mu.Lock()
		total += s.m.FreeSegments()
		s.mu.Unlock()
	}
	return total
}

// noteEnqueue records an enqueue outcome; caller holds s.mu.
func (s *shard) noteEnqueue(segments int, err error) {
	if err != nil {
		s.rejected++
		return
	}
	s.enqPackets++
	s.enqSegments += uint64(segments)
}

// noteDequeue records a dequeue/delete outcome; caller holds s.mu.
func (s *shard) noteDequeue(segments int, err error) {
	if err != nil {
		return
	}
	s.deqPackets++
	s.deqSegments += uint64(segments)
}
