// Package engine is the concurrent, sharded queue-manager subsystem: N
// queue.Manager shards (one mutex each) drawing from one shared segment
// store, behind a goroutine-safe API.
//
// The paper's MMS reaches its 6.1 Gbps by exploiting the independence of
// per-flow state: every command touches one queue's pointers and the shared
// free list, and the hardware pipelines commands because flows do not
// interfere. Software gets the same parallelism by partitioning the flow
// space: flows are hashed onto shards, each shard owns a private Manager
// (its own queue table and lock), and commands for different shards proceed
// on different cores. Per-flow FIFO order is preserved because a flow
// always maps to the same shard and each shard is internally sequential.
//
// Segment memory, by contrast, is not partitioned — exactly as in the
// paper, where all per-flow queues allocate 64-byte segments from one data
// memory. Every shard allocates from a single segstore.Store through a
// per-shard magazine cache, so the steady-state cost of sharing is one CAS
// per ~64 segments while a single hot flow can still consume (nearly) the
// whole pool. That makes the shared-buffer admission policies honest:
// tail-drop, LQD and RED all consult pool-wide occupancy, LQD evicts the
// globally longest queue, and the competitive guarantees stated for one
// global buffer apply. Cross-shard MovePacket is pure pointer relinking on
// the shared slab — no copy, no allocation.
//
// Batched operations (EnqueueBatch / DequeueBatch) amortize the per-shard
// lock: a batch is bucketed by shard and each shard is locked once per
// batch rather than once per packet. Payload buffers for reassembly are
// recycled through a bounded sync.Pool; callers return them with Release.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/segstore"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 8

// ErrAdmissionDrop is returned by the enqueue paths when the configured
// admission policy refuses the arrival. The drop is counted in
// Stats.DroppedPackets/DroppedSegments; it is the policy working as
// intended, not a caller error.
var ErrAdmissionDrop = errors.New("engine: packet dropped by admission policy")

// errWantPushOut is an internal sentinel: the admission policy admitted the
// arrival contingent on push-out eviction, which must run without the
// arrival shard's lock held (the globally longest queue may live on another
// shard, and shard locks never nest). The enqueue entry points catch it,
// evict, and retry.
var errWantPushOut = errors.New("engine: admission wants push-out eviction")

// maxEvictAttempts bounds the evict-and-retry loop of an LQD arrival: under
// heavy contention another shard can consume the freed space between the
// eviction and the retry; after this many rounds the arrival is dropped.
const maxEvictAttempts = 8

// maxPooledBufBytes caps the capacity of reassembly buffers kept in the
// engine's pool. A buffer that grew past this (one giant reassembled
// packet) is dropped on Release instead of pinning its memory forever.
const maxPooledBufBytes = 64 * queue.SegmentBytes

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent queue.Manager shards. It is
	// rounded up to a power of two; 0 means DefaultShards.
	Shards int
	// NumFlows is the total flow-ID space (0 means queue.DefaultNumQueues,
	// 32K). Every shard accepts the full flow range; the hash decides
	// which shard owns which flow.
	NumFlows int
	// NumSegments is the shared segment pool (required, > 0). All shards
	// allocate from this one pool through per-shard magazine caches, so a
	// single hot flow can consume (nearly) all of it.
	NumSegments int
	// StoreData controls whether payloads are stored (as in queue.Config).
	StoreData bool
	// PerFlowLimit caps every flow at this many segments (0 = uncapped).
	PerFlowLimit int
	// Admission selects the shared-buffer admission policy. The zero value
	// (policy.KindNone) admits everything the pool can hold. Each shard
	// gets a private policy instance consulted under the shard lock; all
	// instances see pool-wide occupancy, so thresholds are fractions of
	// the whole buffer and LQD evicts the globally longest queue.
	Admission policy.Config
	// Egress parameterizes the integrated egress scheduler used by
	// DequeueNextBatch. The zero value is round-robin over active flows.
	Egress policy.EgressConfig
}

// shard pairs one single-threaded Manager with its lock and local counters.
// Shards are allocated individually (the Engine holds pointers), so their
// hot mutexes live on distinct cache lines.
type shard struct {
	mu sync.Mutex
	m  *queue.Manager

	// Cumulative traffic counters, guarded by mu.
	enqPackets  uint64
	enqSegments uint64
	deqPackets  uint64
	deqSegments uint64
	rejected    uint64 // enqueues refused (pool exhausted or flow capped)

	// Policy counters, guarded by mu. Dropped arrivals never entered the
	// buffer; pushed-out packets were resident and were evicted, so the
	// conservation law reads enqueued = dequeued + pushed-out + resident.
	dropPackets  uint64 // arrivals refused by the admission policy
	dropSegments uint64
	poPackets    uint64 // resident packets evicted by push-out
	poSegments   uint64

	// Admission policy instance (nil = accept all), guarded by mu.
	// admKind/admLimit mirror the config so the tail-drop decision — two
	// integer compares — runs inline without the interface dispatch, which
	// keeps the hot enqueue path within the no-policy budget.
	adm      policy.Admission
	admKind  policy.Kind
	admLimit int

	// Egress state: the active-flow bitmap plus the discipline's cursor
	// and credit state (see egress.go), guarded by mu.
	active      []uint64
	activeFlows int
	lowWord     int // no active bits live in words below this index
	eg          egressState
}

// Engine is the concurrent sharded queue manager. All methods are safe for
// concurrent use by multiple goroutines.
type Engine struct {
	cfg    Config
	shift  uint // 32 - log2(shards): top hash bits select the shard
	store  *segstore.Store
	shards []*shard

	egCursor atomic.Uint32 // rotating start shard for DequeueNextBatch

	bufs       sync.Pool // reassembly scratch buffers, see Release
	bucketPool sync.Pool // per-shard index buckets for the batch paths
}

// New builds an Engine: one shared segment store, one queue manager per
// shard drawing from it through a magazine cache.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: negative Shards %d", cfg.Shards)
	}
	if n := cfg.Shards; n&(n-1) != 0 {
		cfg.Shards = 1 << bits.Len(uint(n))
	}
	if cfg.NumFlows == 0 {
		cfg.NumFlows = queue.DefaultNumQueues
	}
	if cfg.NumSegments <= 0 {
		return nil, fmt.Errorf("engine: NumSegments must be positive, got %d", cfg.NumSegments)
	}
	if cfg.PerFlowLimit < 0 {
		return nil, fmt.Errorf("engine: negative PerFlowLimit %d", cfg.PerFlowLimit)
	}
	// cfg.Admission and cfg.Egress are validated by the SetAdmission and
	// SetEgress calls below.
	// Scale the magazine size down for pools small relative to the shard
	// count, so the depot always holds enough magazines that no shard can
	// strand a large fraction of the pool in its cache.
	mag := segstore.MagazineSegments
	if perShard := cfg.NumSegments / (4 * cfg.Shards); perShard < mag {
		mag = perShard
		if mag < 1 {
			mag = 1
		}
	}
	store, err := segstore.New(segstore.Config{
		NumSegments:  cfg.NumSegments,
		SegmentBytes: queue.SegmentBytes,
		StoreData:    cfg.StoreData,
		MagazineSize: mag,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		shift:  uint(32 - bits.TrailingZeros(uint(cfg.Shards))),
		store:  store,
		shards: make([]*shard, cfg.Shards),
	}
	e.bufs.New = func() any { return make([]byte, 0, 4*queue.SegmentBytes) }
	for i := range e.shards {
		m, err := queue.NewWithStore(queue.Config{NumQueues: cfg.NumFlows}, store.NewCache())
		if err != nil {
			return nil, err
		}
		if cfg.PerFlowLimit > 0 {
			for q := 0; q < cfg.NumFlows; q++ {
				if err := m.SetSegmentLimit(queue.QueueID(q), cfg.PerFlowLimit); err != nil {
					return nil, err
				}
			}
		}
		e.shards[i] = &shard{
			m:      m,
			active: make([]uint64, (cfg.NumFlows+63)/64),
		}
	}
	if err := e.SetAdmission(cfg.Admission); err != nil {
		return nil, err
	}
	if err := e.SetEgress(cfg.Egress); err != nil {
		return nil, err
	}
	return e, nil
}

// SetAdmission replaces the admission policy on every shard. Each shard
// gets a private instance (RED seeds are derived per shard) swapped in
// under the shard lock, so reconfiguration is safe while traffic flows.
// Counters are not reset. Longest-queue tracking is enabled exactly when
// the policy can return a push-out verdict.
func (e *Engine) SetAdmission(cfg policy.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	track := cfg.Kind == policy.KindLQD
	for i, s := range e.shards {
		shardCfg := cfg
		if shardCfg.Seed == 0 {
			shardCfg.Seed = 1
		}
		shardCfg.Seed += uint64(i) * 0x9e3779b97f4a7c15
		adm, err := policy.New(shardCfg)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.adm = adm
		s.admKind = cfg.Kind
		s.admLimit = cfg.Limit
		s.m.SetLongestTracking(track)
		s.mu.Unlock()
	}
	return nil
}

// Shards returns the (power-of-two) shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// NumFlows returns the flow-ID space.
func (e *Engine) NumFlows() int { return e.cfg.NumFlows }

// NumSegments returns the total segment pool across all shards.
func (e *Engine) NumSegments() int { return e.cfg.NumSegments }

// ShardOf returns the shard index owning flow — Fibonacci hashing on the
// flow ID, taking the top bits of the product, which mixes well even for
// the sequential flow IDs traffic generators tend to produce.
func (e *Engine) ShardOf(flow uint32) int {
	return int((flow * 0x9E3779B1) >> e.shift)
}

func (e *Engine) shardOf(flow uint32) *shard {
	return e.shards[e.ShardOf(flow)]
}

// EnqueuePacket segments data onto flow, returning the segment count. When
// an admission policy is configured it is consulted first; a refusal
// returns ErrAdmissionDrop, and under LQD the arrival may instead evict
// packets from the globally longest queue — on any shard — to make room.
func (e *Engine) EnqueuePacket(flow uint32, data []byte) (int, error) {
	s := e.shardOf(flow)
	need := (len(data) + queue.SegmentBytes - 1) / queue.SegmentBytes
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		n, err := s.enqueueLocked(flow, data)
		s.mu.Unlock()
		switch {
		case err == errWantPushOut: //nolint:errorlint // internal sentinel, never wrapped
			if attempt >= maxEvictAttempts || !e.evictForSpace(need) {
				// Nothing left to evict (or the freed space kept being
				// stolen): the arrival is dropped after all.
				s.mu.Lock()
				s.dropPackets++
				s.dropSegments += uint64(need)
				s.mu.Unlock()
				return 0, ErrAdmissionDrop
			}
		case attempt < maxEvictAttempts && errors.Is(err, queue.ErrNoFreeSegments) && e.store.Free() >= need:
			// The pool holds enough free segments, but they are stranded in
			// other shards' magazine caches. Flush every cache to the depot
			// and retry (bounded — concurrent shards can re-strand frees
			// while we flush); the refused attempts stay counted in
			// Rejected.
			e.flushCaches()
		default:
			return n, err
		}
	}
}

// flushCaches returns every shard's cached free segments to the depot so
// any shard can allocate them. Slow path only: it takes each shard lock in
// turn (never nested).
func (e *Engine) flushCaches() {
	for _, s := range e.shards {
		s.mu.Lock()
		s.m.FlushFree()
		s.mu.Unlock()
	}
}

// enqueueLocked runs admission then the manager enqueue; caller holds s.mu.
// Drops return the bare ErrAdmissionDrop sentinel: overloaded callers see
// millions of drops, so the error must not allocate. errWantPushOut asks
// the caller to release the lock, evict globally, and retry.
func (s *shard) enqueueLocked(flow uint32, data []byte) (int, error) {
	if s.adm != nil && len(data) > 0 {
		need := (len(data) + queue.SegmentBytes - 1) / queue.SegmentBytes
		if s.admKind == policy.KindTailDrop {
			// Inline fast path: one pool-wide free-count read (an atomic
			// load per cache) and a per-queue cap compare, with no
			// interface dispatch.
			segs, err := s.m.Len(queue.QueueID(flow))
			if err == nil && (need > s.m.FreeSegments() ||
				(s.admLimit > 0 && segs+need > s.admLimit)) {
				s.dropPackets++
				s.dropSegments += uint64(need)
				return 0, ErrAdmissionDrop
			}
		} else {
			switch s.admitLocked(flow, need) {
			case admitDrop:
				s.dropPackets++
				s.dropSegments += uint64(need)
				return 0, ErrAdmissionDrop
			case admitPushOut:
				return 0, errWantPushOut
			}
		}
	}
	n, err := s.m.EnqueuePacket(queue.QueueID(flow), data)
	s.noteEnqueue(n, err)
	if err == nil {
		s.setActive(flow)
	}
	return n, err
}

// admitResult is the outcome of consulting the admission policy.
type admitResult uint8

const (
	admitOK      admitResult = iota // proceed with the enqueue
	admitDrop                       // refuse the arrival
	admitPushOut                    // admit after global eviction (caller handles)
)

// admitLocked consults the admission policy for a packet of need segments
// arriving on this shard; caller holds s.mu and has checked s.adm != nil.
// The policy sees pool-wide occupancy. A PushOut verdict is not executed
// here: the globally longest queue may live on another shard, and shard
// locks never nest, so the caller evicts after releasing this lock.
func (s *shard) admitLocked(flow uint32, need int) admitResult {
	occ, err := s.m.Occupancy(queue.QueueID(flow))
	if err != nil {
		return admitOK // out-of-range flow: let the manager report ErrBadQueue
	}
	if lim, _ := s.m.SegmentLimit(queue.QueueID(flow)); lim > 0 && occ.Segments+need > lim {
		// The manager's per-flow cap will refuse this packet no matter
		// what the policy says; pass it through so the caller sees
		// ErrQueueLimit — and, crucially, so a push-out verdict does not
		// evict an innocent victim for an arrival that cannot land.
		return admitOK
	}
	// Free() walks every cache's atomic mirror; read it once per decision.
	free := s.m.FreeSegments()
	verdict := s.adm.Admit(flow, need,
		policy.QueueState{Segments: occ.Segments},
		policy.PoolState{Free: free, Capacity: s.m.NumSegments()})
	switch verdict {
	case policy.Drop:
		return admitDrop
	case policy.PushOut:
		if free >= need {
			return admitOK // the policy is stricter than the pool; no eviction needed
		}
		return admitPushOut
	}
	return admitOK
}

// evictForSpace implements the global half of LQD: push out head packets of
// the globally longest queue — wherever it lives — until the shared pool
// holds need free segments. Shard locks are taken one at a time (peek, then
// evict), never nested, so concurrent evictions from different shards
// cannot deadlock. The victim's magazine cache is flushed so the freed
// segments are reachable from the arrival's shard. Returns false when no
// victim remains.
func (e *Engine) evictForSpace(need int) bool {
	for rounds := 0; e.store.Free() < need; rounds++ {
		if rounds > e.cfg.NumSegments {
			return false // livelock guard; cannot trigger without contention
		}
		victim := e.longestShard()
		if victim == nil {
			return false
		}
		victim.mu.Lock()
		q, segs, err := victim.m.PushOutLongest()
		if err == nil {
			victim.poPackets++
			victim.poSegments += uint64(segs)
			victim.syncActive(uint32(q))
			victim.m.FlushFree()
		}
		victim.mu.Unlock()
		if err != nil {
			return false
		}
	}
	return true
}

// longestShard returns the shard holding the longest queue right now, or
// nil when every queue is empty. Each shard is peeked under its own lock;
// with LQD configured the per-shard lookup is O(1) via the longest-queue
// heap.
func (e *Engine) longestShard() *shard {
	var victim *shard
	best := 0
	for _, s := range e.shards {
		s.mu.Lock()
		if _, l, ok := s.m.LongestQueue(); ok && l > best {
			best, victim = l, s
		}
		s.mu.Unlock()
	}
	return victim
}

// DequeuePacket removes and reassembles the head packet of flow. The
// returned buffer comes from an internal pool; pass it to Release when done
// to recycle it (keeping it, or not releasing, is safe but allocates more).
func (e *Engine) DequeuePacket(flow uint32) ([]byte, error) {
	buf := e.getBuf()
	s := e.shardOf(flow)
	s.mu.Lock()
	out, n, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
	s.noteDequeue(n, err)
	if err == nil {
		s.syncActive(flow)
	}
	s.mu.Unlock()
	if err != nil {
		e.putBuf(buf)
		return nil, err
	}
	return out, nil
}

// Release returns a buffer obtained from DequeuePacket or DequeueBatch to
// the engine's pool. The caller must not use buf afterwards.
func (e *Engine) Release(buf []byte) { e.putBuf(buf) }

// getBuf takes a reassembly buffer from the pool.
func (e *Engine) getBuf() []byte { return e.bufs.Get().([]byte)[:0] }

// putBuf recycles a reassembly buffer, unless it grew past
// maxPooledBufBytes: pooling one giant reassembled packet would pin its
// memory for the engine's lifetime.
func (e *Engine) putBuf(buf []byte) {
	if c := cap(buf); c == 0 || c > maxPooledBufBytes {
		return
	}
	e.bufs.Put(buf[:0])
}

// MovePacket relinks the head packet of from onto to — pure pointer surgery
// on the shared slab whether or not the flows share a shard. A move leaves
// the traffic counters untouched (the packet neither entered nor left the
// engine) and allocates nothing: the segments are already resident, so
// pool-pressure admission (LQD push-out, RED) does not apply. Only the
// per-queue caps guard the destination — the tail-drop per-queue limit
// (ErrAdmissionDrop) and the per-flow segment cap (ErrQueueLimit); a
// refused move leaves the packet on its source queue.
func (e *Engine) MovePacket(from, to uint32) (int, error) {
	si, di := e.ShardOf(from), e.ShardOf(to)
	if si == di {
		s := e.shards[si]
		s.mu.Lock()
		defer s.mu.Unlock()
		if from != to && s.adm != nil && s.admKind == policy.KindTailDrop && s.admLimit > 0 {
			if _, need, err := s.m.PacketLen(queue.QueueID(from)); err == nil {
				if dstSegs, derr := s.m.Len(queue.QueueID(to)); derr == nil && dstSegs+need > s.admLimit {
					return 0, ErrAdmissionDrop
				}
			}
		}
		n, err := s.m.MovePacket(queue.QueueID(from), queue.QueueID(to))
		if err == nil {
			s.syncActive(from)
			s.syncActive(to)
		}
		return n, err
	}
	src, dst := e.shards[si], e.shards[di]
	src.mu.Lock()
	ch, err := src.m.UnlinkHeadPacket(queue.QueueID(from))
	if err == nil {
		src.syncActive(from)
	}
	src.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// The chain is in transit, owned by this goroutine; neither shard can
	// see a half-moved packet.
	dst.mu.Lock()
	if dst.adm != nil && dst.admKind == policy.KindTailDrop && dst.admLimit > 0 {
		if dstSegs, derr := dst.m.Len(queue.QueueID(to)); derr == nil && dstSegs+ch.Segs > dst.admLimit {
			err = ErrAdmissionDrop
		}
	}
	if err == nil {
		err = dst.m.LinkPacketTail(queue.QueueID(to), ch)
		if err == nil {
			dst.setActive(to)
		}
	}
	dst.mu.Unlock()
	if err != nil {
		// Restore the packet at the head of its source queue. This is
		// pointer relinking that cannot fail, so a refused move is
		// all-or-nothing — the pre-segstore copy path could lose the
		// packet when the rollback enqueue found the source pool refilled,
		// and miscounted the loss as a push-out.
		src.mu.Lock()
		_ = src.m.LinkPacketHead(queue.QueueID(from), ch)
		src.setActive(from)
		src.mu.Unlock()
		return 0, err
	}
	return ch.Segs, nil
}

// DeletePacket drops the head packet of flow, returning its segment count.
func (e *Engine) DeletePacket(flow uint32) (int, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	n, err := s.m.DeletePacket(queue.QueueID(flow))
	s.noteDequeue(n, err)
	if err == nil {
		s.syncActive(flow)
	}
	s.mu.Unlock()
	return n, err
}

// Len returns the queued segment count of flow.
func (e *Engine) Len(flow uint32) (int, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	n, err := s.m.Len(queue.QueueID(flow))
	s.mu.Unlock()
	return n, err
}

// Occupancy returns the live buffer usage of flow.
func (e *Engine) Occupancy(flow uint32) (queue.Occupancy, error) {
	s := e.shardOf(flow)
	s.mu.Lock()
	occ, err := s.m.Occupancy(queue.QueueID(flow))
	s.mu.Unlock()
	return occ, err
}

// SetFlowLimit caps flow at limit segments (0 removes the cap).
func (e *Engine) SetFlowLimit(flow uint32, limit int) error {
	s := e.shardOf(flow)
	s.mu.Lock()
	err := s.m.SetSegmentLimit(queue.QueueID(flow), limit)
	s.mu.Unlock()
	return err
}

// FreeSegments returns the shared pool's free population (depot plus every
// shard's magazine cache). Lock-free.
func (e *Engine) FreeSegments() int { return e.store.Free() }

// noteEnqueue records an enqueue outcome; caller holds s.mu.
func (s *shard) noteEnqueue(segments int, err error) {
	if err != nil {
		s.rejected++
		return
	}
	s.enqPackets++
	s.enqSegments += uint64(segments)
}

// noteDequeue records a dequeue/delete outcome; caller holds s.mu.
func (s *shard) noteDequeue(segments int, err error) {
	if err != nil {
		return
	}
	s.deqPackets++
	s.deqSegments += uint64(segments)
}
