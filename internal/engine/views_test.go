package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/queue"
)

// checkNoLeaks asserts the post-drain quiescent state every view test must
// end in: nothing lent, nothing queued, the pool whole, both conservation
// laws intact.
func checkNoLeaks(t *testing.T, e *Engine, pool int) {
	t.Helper()
	st := e.Stats()
	if st.LentSegments != 0 {
		t.Fatalf("LentSegments = %d after drain, want 0", st.LentSegments)
	}
	if st.FreeSegments != pool {
		t.Fatalf("FreeSegments = %d after drain, want %d", st.FreeSegments, pool)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeuePacketViewBothDatapaths(t *testing.T) {
	for _, ring := range []bool{false, true} {
		t.Run(fmt.Sprintf("ring=%v", ring), func(t *testing.T) {
			const pool = 1024
			e := newTest(t, 4, 256, pool)
			if ring {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
			}
			pkt := bytes.Repeat([]byte{0xa5}, 200)
			if _, err := e.EnqueuePacket(7, pkt); err != nil {
				t.Fatal(err)
			}
			v, err := e.DequeuePacketView(7)
			if err != nil {
				t.Fatal(err)
			}
			if got := v.AppendTo(nil); !bytes.Equal(got, pkt) {
				t.Fatalf("payload mismatch: %d bytes", len(got))
			}
			if got := e.LentSegments(); got != v.Segments() {
				t.Fatalf("LentSegments = %d with view out, want %d", got, v.Segments())
			}
			// The dequeue is on the books before the release.
			if st := e.Stats(); st.DequeuedPackets != 1 {
				t.Fatalf("DequeuedPackets = %d, want 1", st.DequeuedPackets)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("invariants with view outstanding: %v", err)
			}
			v.Release()
			if _, err := e.DequeuePacketView(7); !errors.Is(err, queue.ErrQueueEmpty) {
				t.Fatalf("empty queue: %v", err)
			}
			checkNoLeaks(t, e, pool)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := e.DequeuePacketView(7); !errors.Is(err, ErrClosed) {
				t.Fatalf("after close: %v", err)
			}
		})
	}
}

func TestReserveCommitBothDatapaths(t *testing.T) {
	for _, ring := range []bool{false, true} {
		t.Run(fmt.Sprintf("ring=%v", ring), func(t *testing.T) {
			const pool = 1024
			e := newTest(t, 4, 256, pool)
			if ring {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
			}
			payload := make([]byte, 3*queue.SegmentBytes+9)
			for i := range payload {
				payload[i] = byte(i * 11)
			}
			r, err := e.ReservePacket(5, len(payload))
			if err != nil {
				t.Fatal(err)
			}
			if !r.Valid() || r.Flow() != 5 || r.Len() != len(payload) || r.Segments() != 4 {
				t.Fatalf("reservation shape: valid=%v flow=%d len=%d segs=%d",
					r.Valid(), r.Flow(), r.Len(), r.Segments())
			}
			if got := e.LentSegments(); got != 4 {
				t.Fatalf("LentSegments = %d mid-reserve, want 4", got)
			}
			// Nothing is enqueued until Commit.
			if st := e.Stats(); st.EnqueuedPackets != 0 {
				t.Fatalf("EnqueuedPackets = %d before commit, want 0", st.EnqueuedPackets)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("invariants mid-reserve: %v", err)
			}
			off := 0
			r.Range(func(seg []byte) bool {
				off += copy(seg, payload[off:])
				return true
			})
			if err := r.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := r.Commit(); !errors.Is(err, queue.ErrWriterDone) {
				t.Fatalf("second commit: %v", err)
			}
			st := e.Stats()
			if st.EnqueuedPackets != 1 || st.EnqueuedSegments != 4 {
				t.Fatalf("after commit: %d packets / %d segments enqueued", st.EnqueuedPackets, st.EnqueuedSegments)
			}
			if st.CopiedBytes != 0 {
				t.Fatalf("CopiedBytes = %d on the reserve path, want 0", st.CopiedBytes)
			}
			// The committed packet serves through the view path: still no copy.
			d, ok := e.DequeueNextView()
			if !ok || d.Flow != 5 || d.Bytes != len(payload) {
				t.Fatalf("DequeueNextView = (%+v, %v)", d, ok)
			}
			if got := d.View.AppendTo(nil); !bytes.Equal(got, payload) {
				t.Fatal("committed payload mismatch")
			}
			d.View.Release()
			if st := e.Stats(); st.CopiedBytes != 0 {
				t.Fatalf("CopiedBytes = %d after view delivery, want 0", st.CopiedBytes)
			}
			checkNoLeaks(t, e, pool)

			// Abort mid-reserve: segments come back, nothing was counted.
			r2, err := e.ReservePacket(6, 100)
			if err != nil {
				t.Fatal(err)
			}
			if err := r2.Abort(); err != nil {
				t.Fatal(err)
			}
			if err := r2.Abort(); !errors.Is(err, queue.ErrWriterDone) {
				t.Fatalf("second abort: %v", err)
			}
			if st := e.Stats(); st.EnqueuedPackets != 1 {
				t.Fatalf("abort moved the enqueue counter: %d", st.EnqueuedPackets)
			}
			checkNoLeaks(t, e, pool)

			// Commit on a closed engine fails with the reservation open;
			// Abort still returns the segments.
			r3, err := e.ReservePacket(7, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if err := r3.Commit(); !errors.Is(err, ErrClosed) {
				t.Fatalf("commit after close: %v", err)
			}
			if err := r3.Abort(); err != nil {
				t.Fatal(err)
			}
			if got := e.LentSegments(); got != 0 {
				t.Fatalf("LentSegments = %d after post-close abort, want 0", got)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReserveAdmission(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 64, StoreData: true,
		PerFlowLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.ReservePacket(0, 2*queue.SegmentBytes)
	if err != nil {
		t.Fatalf("within limit: %v", err)
	}
	// A reservation exceeding the per-flow cap is refused up front and
	// counted as rejected, exactly like a refused enqueue.
	if _, err := e.ReservePacket(1, 3*queue.SegmentBytes); !errors.Is(err, queue.ErrQueueLimit) {
		t.Fatalf("over per-flow limit: %v", err)
	}
	if st := e.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	if err := r.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeueViewBatchAndNextViewBatch(t *testing.T) {
	for _, ring := range []bool{false, true} {
		t.Run(fmt.Sprintf("ring=%v", ring), func(t *testing.T) {
			const pool = 2048
			e := newTest(t, 4, 64, pool)
			if ring {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
			}
			const flows = 16
			for f := uint32(0); f < flows; f++ {
				pkt := bytes.Repeat([]byte{byte(f)}, 100+int(f))
				if _, err := e.EnqueuePacket(f, pkt); err != nil {
					t.Fatal(err)
				}
			}
			// Per-flow batch: every listed flow yields its head packet.
			list := make([]uint32, 0, flows/2)
			for f := uint32(0); f < flows/2; f++ {
				list = append(list, f)
			}
			views, errs := e.DequeueViewBatch(list)
			for i, err := range errs {
				if err != nil {
					t.Fatalf("flow %d: %v", list[i], err)
				}
				want := bytes.Repeat([]byte{byte(list[i])}, 100+int(list[i]))
				if got := views[i].AppendTo(nil); !bytes.Equal(got, want) {
					t.Fatalf("flow %d payload mismatch", list[i])
				}
				views[i].Release()
			}
			// Discipline-picked batch drains the rest.
			seen := 0
			for {
				batch := e.DequeueNextViewBatch(5)
				if len(batch) == 0 {
					break
				}
				for _, d := range batch {
					if d.Bytes != d.View.Len() {
						t.Fatalf("Bytes=%d but view holds %d", d.Bytes, d.View.Len())
					}
					d.View.Release()
					seen++
				}
			}
			if seen != flows/2 {
				t.Fatalf("drained %d packets, want %d", seen, flows/2)
			}
			checkNoLeaks(t, e, pool)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestViewPipelineConcurrent is the leak-proofing property test: concurrent
// producers mix copy enqueues with write-in-place reservations (some
// aborted), concurrent consumers take views and hand them to detached
// releaser goroutines (some with extra Retain/Release pairs), on both
// datapaths. At the end every segment must be back: lent 0, pool whole,
// enqueued == dequeued + dropped + pushed out.
func TestViewPipelineConcurrent(t *testing.T) {
	for _, ring := range []bool{false, true} {
		t.Run(fmt.Sprintf("ring=%v", ring), func(t *testing.T) {
			const (
				pool      = 4096
				producers = 4
				perProd   = 3000
			)
			e, err := New(Config{
				Shards: 4, NumFlows: 64, NumSegments: pool, StoreData: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ring {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
			}
			payload := make([]byte, 4*queue.SegmentBytes)
			for i := range payload {
				payload[i] = byte(i * 13)
			}
			var prodWG, consWG, releasers sync.WaitGroup
			var produced atomic.Uint64
			stop := make(chan struct{})
			for p := 0; p < producers; p++ {
				prodWG.Add(1)
				go func(p int) {
					defer prodWG.Done()
					rng := rand.New(rand.NewSource(int64(p) + 1))
					for n := 0; n < perProd; n++ {
						f := uint32(rng.Intn(64))
						size := 1 + rng.Intn(len(payload)-1)
						if rng.Intn(2) == 0 {
							if _, err := e.EnqueuePacket(f, payload[:size]); err == nil {
								produced.Add(1)
							} else if !errors.Is(err, queue.ErrNoFreeSegments) {
								t.Errorf("enqueue: %v", err)
								return
							}
							continue
						}
						r, err := e.ReservePacket(f, size)
						if err != nil {
							if !errors.Is(err, queue.ErrNoFreeSegments) {
								t.Errorf("reserve: %v", err)
								return
							}
							continue
						}
						off := 0
						r.Range(func(seg []byte) bool {
							off += copy(seg, payload[off:size])
							return true
						})
						if rng.Intn(8) == 0 {
							if err := r.Abort(); err != nil {
								t.Errorf("abort: %v", err)
								return
							}
							continue
						}
						if err := r.Commit(); err != nil {
							t.Errorf("commit: %v", err)
							return
						}
						produced.Add(1)
					}
				}(p)
			}
			var consumed atomic.Uint64
			release := func(d DequeuedView, extraRef bool) {
				releasers.Add(1)
				go func() {
					defer releasers.Done()
					if extraRef {
						d.View.Retain()
						d.View.Release()
					}
					got := d.View.AppendTo(nil)
					if !bytes.Equal(got, payload[:d.Bytes]) {
						t.Errorf("cross-goroutine read mismatch (%d bytes)", d.Bytes)
					}
					d.View.Release()
				}()
			}
			for c := 0; c < 2; c++ {
				consWG.Add(1)
				go func(c int) {
					defer consWG.Done()
					rng := rand.New(rand.NewSource(int64(c) + 100))
					for {
						batch := e.DequeueNextViewBatch(32)
						for _, d := range batch {
							consumed.Add(1)
							release(d, rng.Intn(4) == 0)
						}
						if len(batch) == 0 {
							select {
							case <-stop:
								return
							default:
							}
						}
					}
				}(c)
			}
			// Producers finish first; once the consumers have drained the
			// backlog, signal them to stop and wait out the releasers.
			prodWG.Wait()
			deadline := time.After(30 * time.Second)
			for e.Stats().QueuedSegments > 0 {
				select {
				case <-deadline:
					t.Fatalf("pipeline stalled: produced=%d consumed=%d queued=%d",
						produced.Load(), consumed.Load(), e.Stats().QueuedSegments)
				default:
					time.Sleep(time.Millisecond)
				}
			}
			close(stop)
			consWG.Wait()
			releasers.Wait()
			st := e.Stats()
			if st.EnqueuedPackets != produced.Load() || st.DequeuedPackets != consumed.Load() {
				t.Fatalf("books: enq=%d produced=%d deq=%d consumed=%d",
					st.EnqueuedPackets, produced.Load(), st.DequeuedPackets, consumed.Load())
			}
			checkNoLeaks(t, e, pool)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServeViewsSinkError checks the push-mode error path: when the view
// sink fails mid-burst, the engine releases the rest of the picked burst
// (dequeued but not transmitted) and no segment leaks.
func TestServeViewsSinkError(t *testing.T) {
	const pool = 2048
	e, err := New(Config{
		Shards: 2, NumFlows: 16, NumSegments: pool, StoreData: true, NumPorts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const packets = 40
	for i := 0; i < packets; i++ {
		if _, err := e.EnqueuePacket(uint32(i%16), bytes.Repeat([]byte{byte(i)}, 90)); err != nil {
			t.Fatal(err)
		}
	}
	failAt := int32(5)
	var sent atomic.Int32
	sinkErr := errors.New("link down")
	if err := e.ServeViews(0, SinkVFunc(func(_ int, d DequeuedView) error {
		if sent.Add(1) > failAt {
			return sinkErr
		}
		if d.View.Len() != 90 {
			return fmt.Errorf("view len %d", d.View.Len())
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	// The sink fails on packet failAt+1; the port must stop serving and
	// every picked view — transmitted or not — must come back to the pool.
	deadline := time.After(10 * time.Second)
	for e.LentSegments() != 0 || sent.Load() <= failAt {
		select {
		case <-deadline:
			t.Fatalf("lent=%d sent=%d", e.LentSegments(), sent.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Packets beyond the failed burst are still queued and drainable.
	left := 0
	for {
		batch := e.DequeueNextViewBatch(16)
		if len(batch) == 0 {
			break
		}
		for _, d := range batch {
			d.View.Release()
			left++
		}
	}
	// Everything the pacer picked (transmitted or released on the error)
	// plus the drained remainder accounts for every offered packet.
	if st := e.Stats(); int(st.DequeuedPackets) != packets {
		t.Fatalf("DequeuedPackets = %d, want %d", st.DequeuedPackets, packets)
	}
	checkNoLeaks(t, e, pool)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestViewPathAllocFree pins the acceptance criterion: on the synchronous
// datapath, the full zero-copy round trip — reserve, fill, commit, view
// dequeue, release — performs zero heap allocations per packet.
func TestViewPathAllocFree(t *testing.T) {
	const pool = 1024
	e := newTest(t, 1, 16, pool)
	payload := bytes.Repeat([]byte{0x3c}, 1500)
	fill := func(r *Reservation) {
		off := 0
		r.Range(func(seg []byte) bool {
			off += copy(seg, payload[off:])
			return true
		})
	}
	allocs := testing.AllocsPerRun(200, func() {
		r, err := e.ReservePacket(3, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		fill(&r)
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
		v, err := e.DequeuePacketView(3)
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != len(payload) {
			t.Fatal("short view")
		}
		v.Release()
	})
	if allocs != 0 {
		t.Fatalf("view round trip allocates %.1f objects/op, want 0", allocs)
	}
	// The discipline-picked single dequeue is equally clean.
	allocs = testing.AllocsPerRun(200, func() {
		r, err := e.ReservePacket(4, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		fill(&r)
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
		d, ok := e.DequeueNextView()
		if !ok {
			t.Fatal("no packet")
		}
		d.View.Release()
	})
	if allocs != 0 {
		t.Fatalf("DequeueNextView round trip allocates %.1f objects/op, want 0", allocs)
	}
	checkNoLeaks(t, e, pool)
}
