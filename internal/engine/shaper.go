package engine

// The per-port token-bucket shaper. Time is a first-class resource here:
// a port earns rate bytes of credit per second of wall clock (Go's
// time.Time carries the monotonic reading, so wall-clock steps cannot
// inflate or starve the bucket), banks at most burst bytes while idle,
// and transmits a packet only when the bucket is non-negative. The send
// itself may overdraw the bucket by up to one packet — the byte-accurate
// formulation that needs no packet-size foreknowledge: the debt delays
// the next send by exactly the overdrawn bytes' serialization time, so
// the long-run rate converges to the configured one for any packet mix.
//
// The bucket is shared between its port's worker (the hot reader) and
// the control plane (SetPortRate, PortStats), so it carries its own
// mutex; the worker takes it once per packet, far off the per-segment
// paths.

import (
	"sync"
	"time"

	"npqm/internal/policy"
)

type shaper struct {
	mu     sync.Mutex
	rate   int64 // bytes per second; 0 = unshaped
	burst  int64 // bucket depth in bytes
	tokens int64 // current credit; negative = in debt from the last send
	last   time.Time
}

func newShaper(cfg policy.ShaperConfig, now time.Time) *shaper {
	sh := &shaper{}
	sh.configure(cfg, now)
	return sh
}

// configure swaps the rate/burst at runtime. The bucket starts full so a
// freshly shaped port may emit one burst immediately — the conventional
// token-bucket initial condition.
func (sh *shaper) configure(cfg policy.ShaperConfig, now time.Time) {
	cfg = cfg.WithDefaults()
	sh.mu.Lock()
	sh.rate = cfg.RateBytesPerSec
	sh.burst = cfg.BurstBytes
	sh.tokens = cfg.BurstBytes
	sh.last = now
	sh.mu.Unlock()
}

// enabled reports whether the shaper currently paces at all.
func (sh *shaper) enabled() bool {
	sh.mu.Lock()
	on := sh.rate > 0
	sh.mu.Unlock()
	return on
}

// tokensFor converts an elapsed interval to earned bytes. Exact integer
// arithmetic is used whenever ns × rate provably fits int64 (sub-second
// window × rate below 2^33 ≈ 8.6 GB/s: the product stays under
// 10^9 × 2^33 < 2^63); beyond that — long idle stretches or >8 GB/s
// line rates, where a byte of float rounding is invisible against the
// magnitudes involved — the conversion goes through float64 instead of
// wrapping negative.
func tokensFor(el time.Duration, rate int64) int64 {
	if el <= 0 {
		return 0
	}
	if el <= time.Second && rate < 1<<33 {
		return int64(el) * rate / int64(time.Second)
	}
	return int64(float64(el) / float64(time.Second) * float64(rate))
}

// refillLocked advances the bucket to now; caller holds sh.mu.
func (sh *shaper) refillLocked(now time.Time) {
	el := now.Sub(sh.last)
	if el <= 0 {
		return
	}
	sh.last = now
	sh.tokens += tokensFor(el, sh.rate)
	if sh.tokens > sh.burst {
		sh.tokens = sh.burst
	}
}

// ready refills the bucket and returns 0 when the port may transmit now,
// or the duration until the bucket climbs back to zero. Unshaped buckets
// are always ready.
func (sh *shaper) ready(now time.Time) time.Duration {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.rate <= 0 {
		return 0
	}
	sh.refillLocked(now)
	if sh.tokens >= 0 {
		return 0
	}
	need := -sh.tokens
	wait := time.Duration(need * int64(time.Second) / sh.rate)
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return wait
}

// budget refills the bucket and returns how many bytes the port may
// transmit between now and now+horizon (current credit plus the credit
// the coming horizon will earn). When the answer is not positive, wait
// is the duration until it becomes so — the pacer parks the port on its
// wheel for that long. Unshaped buckets report an effectively unlimited
// budget.
func (sh *shaper) budget(now time.Time, horizon time.Duration) (bytes int64, wait time.Duration) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.rate <= 0 {
		return 1 << 62, 0
	}
	sh.refillLocked(now)
	b := sh.tokens + tokensFor(horizon, sh.rate)
	if b > 0 {
		return b, 0
	}
	need := -b + 1
	wait = time.Duration(need * int64(time.Second) / sh.rate)
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return b, wait
}

// charge debits a transmitted packet's bytes (the bucket may go
// negative). No-op when unshaped.
func (sh *shaper) charge(n int) {
	if n <= 0 {
		return
	}
	sh.mu.Lock()
	if sh.rate > 0 {
		sh.tokens -= int64(n)
	}
	sh.mu.Unlock()
}

// occupancy snapshots the bucket for PortStats, refreshed to now.
func (sh *shaper) occupancy(now time.Time) (rate, burst, tokens int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.rate > 0 {
		sh.refillLocked(now)
	}
	return sh.rate, sh.burst, sh.tokens
}
