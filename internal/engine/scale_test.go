package engine

// Construction-scale smoke for the N-level hierarchy: a 1M-flow engine
// with 4k ports and an 8-tenant × 8-class level stack must construct in
// bounded memory — the dense flowState table is the design's footprint
// claim (one fixed-size entry per flow, no per-flow allocations), and
// per-port level state is built lazily so 4k mostly-idle ports cost
// nothing until touched. Skipped in -short mode: the test allocates tens
// of MiB and sweeps every port once.

import (
	"runtime"
	"testing"
	"unsafe"

	"npqm/internal/policy"
)

func TestScaleThreeLevelHierarchySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short mode")
	}
	const (
		flows   = 1 << 20
		ports   = MaxPorts // 4096
		tenants = 8
		classes = 8
		touched = 2 * ports // flows that actually carry traffic
	)
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	e, err := New(Config{
		Shards: 8, NumFlows: flows, NumSegments: 1 << 16, StoreData: true,
		NumPorts:   ports,
		NumTenants: tenants,
		Egress: policy.EgressConfig{
			Kind: policy.EgressDRR, QuantumBytes: 512,
			Levels: []policy.LevelSpec{
				{Tier: policy.TierTenant, Kind: policy.EgressWRR, Units: tenants},
				{Tier: policy.TierClass, Kind: policy.EgressWRR, Units: classes},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumTenants() != tenants || e.NumClasses() != classes || e.NumPorts() != ports {
		t.Fatalf("built %d tenants × %d classes × %d ports", e.NumTenants(), e.NumClasses(), e.NumPorts())
	}
	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	tableBytes := int64(flows) * int64(unsafe.Sizeof(flowState{}))
	t.Logf("dense flow table: %d flows × %d B = %.1f MiB; construction heap growth ≈ %.1f MiB",
		flows, unsafe.Sizeof(flowState{}), float64(tableBytes)/(1<<20), float64(growth)/(1<<20))
	// Per-flow state must stay dense and fixed-size: the scheduler's
	// flow table plus each shard's queue-manager table (every shard
	// addresses the whole flow space), with the segment pool and 4k port
	// shells riding along. ~210 MiB today; the bound catches any change
	// that makes per-flow or per-port state super-linear.
	if growth > 320<<20 {
		t.Fatalf("construction grew the heap by %.1f MiB, want ≤ 320 MiB", float64(growth)/(1<<20))
	}
	// Brief traffic sweeping every port: each touched flow homes to a
	// distinct (port, tenant, class) coordinate, carries one packet, and
	// the full drain must serve them all — so every port's level stack is
	// built, activated, and torn down once.
	pkt := make([]byte, 200)
	for f := uint32(0); f < touched; f++ {
		if err := e.SetFlowPort(f, int(f)%ports); err != nil {
			t.Fatal(err)
		}
		if err := e.SetFlowTenant(f, int(f/8)%tenants); err != nil {
			t.Fatal(err)
		}
		if err := e.SetFlowClass(f, int(f)%classes); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnqueuePacket(f, pkt); err != nil {
			t.Fatal(err)
		}
	}
	served := 0
	for {
		batch := e.DequeueNextBatch(256)
		if len(batch) == 0 {
			break
		}
		for _, d := range batch {
			e.ReleaseBuffer(d.Data)
		}
		served += len(batch)
	}
	if served != touched {
		t.Fatalf("served %d packets, enqueued %d", served, touched)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
