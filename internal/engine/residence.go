package engine

// Residence-time sampling: how long a packet sits between enqueue and
// dequeue. Every Nth enqueued packet per shard is stamped; when that same
// packet is later dequeued the elapsed time lands in a per-shard
// stats.Histogram, merged across shards by Stats. Sampled packets are
// identified by (flow, per-flow packet sequence number), which survives
// reassembly and needs no per-segment storage: per-flow FIFO order makes
// the k-th packet enqueued on a flow exactly the k-th packet removed from
// it.
//
// The bookkeeping is owned by whoever owns the shard (the lock on the sync
// datapath, the worker on the ring datapath), so it needs no atomics. The
// non-sampled fast path costs two array increments and a map-emptiness
// check per packet; the map holds only in-flight sampled packets.
//
// MovePacket keeps the sequence spaces aligned by treating a move as a
// removal from the source flow and an unsampled arrival on the destination.
// The one approximation: a failed cross-shard move relinks the packet at
// the *head* of its source queue, out of arrival order, so a sample on a
// flow behind such a rollback can pair with a neighboring packet of the
// same flow. Samples stay samples; at worst a rare pairing is off by one
// packet in time.

import (
	"time"

	"npqm/internal/stats"
)

// Residence histogram geometry: 8192 buckets of 25µs cover 205ms of
// residence — enough span for a saturated engine's standing backlog, at a
// quantile resolution of one bucket. Longer stays land in the overflow
// bucket, where quantiles degrade to the exact observed maximum (see
// stats.Histogram.Quantile).
const (
	resHistBuckets = 8192
	resHistWidthNs = 25_000
)

// residence is one shard's sampler state.
type residence struct {
	every  uint32 // sample every Nth enqueued packet
	tick   uint32
	epoch  time.Time
	enqSeq []uint32         // per-flow packets ever enqueued
	deqSeq []uint32         // per-flow packets ever removed
	pend   map[uint64]int64 // (flow<<32|seq) -> enqueue time, ns since epoch
	hist   *stats.Histogram // residence samples in ns
}

func newResidence(every, flows int, epoch time.Time) *residence {
	return &residence{
		every:  uint32(every),
		epoch:  epoch,
		enqSeq: make([]uint32, flows),
		deqSeq: make([]uint32, flows),
		pend:   make(map[uint64]int64),
		hist:   stats.NewHistogram(resHistBuckets, resHistWidthNs),
	}
}

func resKey(flow, seq uint32) uint64 { return uint64(flow)<<32 | uint64(seq) }

// noteEnqueue records a packet arrival on flow, stamping every Nth.
func (r *residence) noteEnqueue(flow uint32) {
	r.enqSeq[flow]++
	r.tick++
	if r.tick >= r.every {
		r.tick = 0
		r.pend[resKey(flow, r.enqSeq[flow])] = int64(time.Since(r.epoch))
	}
}

// noteTransfer records an arrival that is not a fresh enqueue (a moved
// packet): the sequence space advances, unsampled.
func (r *residence) noteTransfer(flow uint32) { r.enqSeq[flow]++ }

// noteRemove records a head-packet removal from flow. Only genuine
// dequeues record a residence sample; deletes, push-outs and moves merely
// retire the sequence number (and any pending stamp on it).
func (r *residence) noteRemove(flow uint32, dequeued bool) {
	r.deqSeq[flow]++
	if len(r.pend) == 0 {
		return
	}
	k := resKey(flow, r.deqSeq[flow])
	if t0, ok := r.pend[k]; ok {
		delete(r.pend, k)
		if dequeued {
			r.hist.Add(float64(int64(time.Since(r.epoch)) - t0))
		}
	}
}

// noteRemoveRes is the shard-level hook: shards without sampling skip in
// one branch.
func (s *shard) noteRemoveRes(flow uint32, dequeued bool) {
	if s.res != nil {
		s.res.noteRemove(flow, dequeued)
	}
}

// noteEnqueueRes is the shard-level arrival hook.
func (s *shard) noteEnqueueRes(flow uint32) {
	if s.res != nil {
		s.res.noteEnqueue(flow)
	}
}

// noteTransferRes is the shard-level moved-packet arrival hook.
func (s *shard) noteTransferRes(flow uint32) {
	if s.res != nil {
		s.res.noteTransfer(flow)
	}
}
