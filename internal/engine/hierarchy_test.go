package engine

// Behavior of the composable egress hierarchy (tenant → class → flow)
// and the per-shard timing-wheel pacer: intermediate-level discipline
// semantics, flow re-homing across tenants, classes and ports under the
// ring datapath, and the one-goroutine-per-shard scaling claim for
// served ports.

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

// TestClassPrioServesLowestClassFirst: with strict priority at the class
// level, a full drain must serve every packet of class c before any
// packet of class c+1, regardless of flow IDs (which deliberately do not
// sort with their classes here).
func TestClassPrioServesLowestClassFirst(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 64, NumSegments: 4096, StoreData: true,
		Egress: policy.EgressConfig{
			Kind: policy.EgressRR,
			Levels: []policy.LevelSpec{
				{Tier: policy.TierClass, Kind: policy.EgressPrio, Units: 8},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flow f lands in class (7 - f%8): high flow IDs get high priority,
	// so any accidental flow-ID ordering would fail the class assertion.
	for f := uint32(0); f < 64; f++ {
		if err := e.SetFlowClass(f, 7-int(f%8)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		for f := uint32(0); f < 64; f++ {
			if _, err := e.EnqueuePacket(f, make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	lastClass := -1
	for {
		d, ok := e.DequeueNext()
		if !ok {
			break
		}
		c, err := e.FlowClass(d.Flow)
		if err != nil {
			t.Fatal(err)
		}
		if c < lastClass {
			t.Fatalf("served class %d after class %d (strict priority violated)", c, lastClass)
		}
		lastClass = c
		e.ReleaseBuffer(d.Data)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClassWRRVisitPattern: class-level WRR gives each backlogged class
// weight packets per visit, so with weights 3:1 and deep backlog the
// serve sequence cycles AAAB exactly.
func TestClassWRRVisitPattern(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 4096, StoreData: true,
		Egress: policy.EgressConfig{
			Kind: policy.EgressRR,
			Levels: []policy.LevelSpec{
				{Tier: policy.TierClass, Kind: policy.EgressWRR, Units: 2, Weights: []int{3, 1}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flows 0,1 in class 0; flows 2,3 in class 1.
	for f := uint32(2); f < 4; f++ {
		if err := e.SetFlowClass(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		for f := uint32(0); f < 4; f++ {
			if _, err := e.EnqueuePacket(f, make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := [2]int{}
	for i := 0; i < 16; i++ { // four full 3+1 cycles
		d, ok := e.DequeueNext()
		if !ok {
			t.Fatal("scheduler idle with backlog")
		}
		c, _ := e.FlowClass(d.Flow)
		counts[c]++
		e.ReleaseBuffer(d.Data)
		// At every cycle boundary the ratio is exact.
		if (i+1)%4 == 0 {
			if counts[0] != 3*counts[1] {
				t.Fatalf("after %d picks: class counts %v, want exact 3:1", i+1, counts)
			}
		}
	}
}

// TestClassStatsReflectBacklog: ClassStats counts backlogged flows per
// class across shards and reports configured weights.
func TestClassStatsReflectBacklog(t *testing.T) {
	e, err := New(Config{
		Shards: 4, NumFlows: 64, NumSegments: 4096, StoreData: true,
		Egress: policy.EgressConfig{
			Levels: []policy.LevelSpec{
				{Tier: policy.TierClass, Kind: policy.EgressWRR, Units: 4, Weights: []int{1, 2, 3, 4}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := uint32(0); f < 12; f++ {
		if err := e.SetFlowClass(f, int(f%4)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnqueuePacket(f, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	cs := e.ClassStats()
	if len(cs) != 4 {
		t.Fatalf("ClassStats length %d, want 4", len(cs))
	}
	for c, st := range cs {
		if st.Class != c || st.ActiveFlows != 3 || st.Weight != c+1 {
			t.Fatalf("class %d stat %+v, want 3 active flows, weight %d", c, st, c+1)
		}
	}
	if err := e.SetClassWeight(2, 9); err != nil {
		t.Fatal(err)
	}
	if cs := e.ClassStats(); cs[2].Weight != 9 {
		t.Fatalf("class 2 weight %d after SetClassWeight, want 9", cs[2].Weight)
	}
}

// TestClassRehomingChurnRing re-homes backlogged flows across classes and
// ports while producers enqueue and a consumer drains — on the ring
// datapath, under -race. Per-flow FIFO must survive every move (the
// flow's shard never changes, so sequence numbers must arrive strictly
// ordered), open WRR/DRR visits at both levels must end cleanly (any
// leak trips CheckInvariants or wedges the rotation), and every packet
// enqueued must be served exactly once.
func TestClassRehomingChurnRing(t *testing.T) {
	const (
		flows     = 256
		producers = 4
		perFlow   = 120
	)
	e, err := New(Config{
		Shards: 4, NumFlows: flows, NumSegments: 1 << 13, StoreData: true,
		NumPorts: 4,
		Egress: policy.EgressConfig{
			Kind:         policy.EgressDRR,
			QuantumBytes: 256,
			Levels: []policy.LevelSpec{
				{Tier: policy.TierClass, Kind: policy.EgressWRR, Units: 4, Weights: []int{4, 3, 2, 1}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup // producers only
		churnWG  sync.WaitGroup
		enqueued atomic.Int64
		stop     = make(chan struct{})
	)
	// Producers own disjoint flow stripes so each flow's enqueue order is
	// well-defined; payloads carry (flow, seq) for the FIFO check.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			seq := make([]uint32, flows)
			for n := 0; n < perFlow*flows/producers; n++ {
				f := uint32(rng.Intn(flows/producers)*producers + p)
				buf := make([]byte, 8+rng.Intn(3*queue.SegmentBytes))
				binary.LittleEndian.PutUint32(buf, f)
				binary.LittleEndian.PutUint32(buf[4:], seq[f])
				if _, err := e.EnqueuePacket(f, buf); err == nil {
					seq[f]++
					enqueued.Add(1)
				}
			}
		}(p)
	}
	// Churn: class and port re-homing, weight changes — the moves land
	// mid-backlog and mid-visit by construction.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := uint32(rng.Intn(flows))
			switch rng.Intn(4) {
			case 0:
				_ = e.SetFlowClass(f, rng.Intn(4))
			case 1:
				_ = e.SetFlowPort(f, rng.Intn(4))
			case 2:
				_ = e.SetClassWeight(rng.Intn(4), 1+rng.Intn(4))
			default:
				_ = e.SetWeight(f, 1+rng.Intn(4))
			}
		}
	}()
	// Single consumer: its observation order is the dequeue order, so
	// per-flow sequence numbers must come out strictly consecutive.
	lastSeq := make([]int64, flows)
	for f := range lastSeq {
		lastSeq[f] = -1
	}
	var served int64
	drain := func() {
		for _, d := range e.DequeueNextBatch(64) {
			f := binary.LittleEndian.Uint32(d.Data)
			seq := int64(binary.LittleEndian.Uint32(d.Data[4:]))
			if f != d.Flow {
				t.Errorf("flow %d delivered flow %d's payload", d.Flow, f)
			}
			if seq != lastSeq[f]+1 {
				t.Errorf("flow %d: seq %d after %d (FIFO broken across re-homing)", f, seq, lastSeq[f])
			}
			lastSeq[f] = seq
			served++
			e.ReleaseBuffer(d.Data)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			drain()
		}
		if t.Failed() {
			close(stop)
			t.FailNow()
		}
	}
	close(stop)
	churnWG.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for {
		before := served
		drain()
		if served == before {
			break
		}
	}
	if served != enqueued.Load() {
		t.Fatalf("served %d packets, enqueued %d (packets lost or duplicated across re-homing)", served, enqueued.Load())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantClassFlowComposition: a full three-level hierarchy — tenant
// WRR 3:1 outside class strict priority outside flow RR — must compose:
// with deep backlog everywhere, each 3+1 tenant cycle grants tenant 0
// three packets and tenant 1 one, and within every tenant's grant the
// lowest backlogged class is served first.
func TestTenantClassFlowComposition(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 32, NumSegments: 4096, StoreData: true,
		Egress: policy.EgressConfig{
			Kind: policy.EgressRR,
			Levels: []policy.LevelSpec{
				{Tier: policy.TierTenant, Kind: policy.EgressWRR, Units: 2, Weights: []int{3, 1}},
				{Tier: policy.TierClass, Kind: policy.EgressPrio, Units: 4},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumTenants() != 2 || e.NumClasses() != 4 {
		t.Fatalf("hierarchy %d tenants × %d classes, want 2 × 4", e.NumTenants(), e.NumClasses())
	}
	// Flow f: tenant f%2, class (f/2)%4 — both tenants hold flows of
	// every class.
	for f := uint32(0); f < 32; f++ {
		if err := e.SetFlowTenant(f, int(f%2)); err != nil {
			t.Fatal(err)
		}
		if err := e.SetFlowClass(f, int(f/2)%4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		for f := uint32(0); f < 32; f++ {
			if _, err := e.EnqueuePacket(f, make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := [2]int{}
	lastClass := [2]int{-1, -1}
	for i := 0; i < 64; i++ { // sixteen full 3+1 tenant cycles
		d, ok := e.DequeueNext()
		if !ok {
			t.Fatal("scheduler idle with backlog")
		}
		tn, err := e.FlowTenant(d.Flow)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := e.FlowClass(d.Flow)
		// Strict class priority holds within each tenant's own service
		// sequence (the backlog drains class by class, so a tenant's
		// served class never decreases).
		if c < lastClass[tn] {
			t.Fatalf("tenant %d served class %d after class %d (priority violated within tenant)", tn, c, lastClass[tn])
		}
		lastClass[tn] = c
		counts[tn]++
		e.ReleaseBuffer(d.Data)
		if (i+1)%4 == 0 && counts[0] != 3*counts[1] {
			t.Fatalf("after %d picks: tenant counts %v, want exact 3:1", i+1, counts)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantStatsReflectBacklog: TenantStats counts backlogged flows per
// tenant across shards and reports configured weights, and re-homing a
// backlogged flow moves its count.
func TestTenantStatsReflectBacklog(t *testing.T) {
	e, err := New(Config{
		Shards: 4, NumFlows: 64, NumSegments: 4096, StoreData: true,
		NumTenants: 4,
		Egress: policy.EgressConfig{
			Levels: []policy.LevelSpec{
				{Tier: policy.TierTenant, Kind: policy.EgressWRR, Units: 4, Weights: []int{1, 2, 3, 4}},
				{Tier: policy.TierClass, Kind: policy.EgressRR, Units: 2},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := uint32(0); f < 12; f++ {
		if err := e.SetFlowTenant(f, int(f%4)); err != nil {
			t.Fatal(err)
		}
		if err := e.SetFlowClass(f, int(f)/4%2); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnqueuePacket(f, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	ts := e.TenantStats()
	if len(ts) != 4 {
		t.Fatalf("TenantStats length %d, want 4", len(ts))
	}
	for tn, st := range ts {
		if st.Tenant != tn || st.ActiveFlows != 3 || st.Weight != tn+1 {
			t.Fatalf("tenant %d stat %+v, want 3 active flows, weight %d", tn, st, tn+1)
		}
	}
	if err := e.SetTenantWeight(2, 9); err != nil {
		t.Fatal(err)
	}
	if ts := e.TenantStats(); ts[2].Weight != 9 {
		t.Fatalf("tenant 2 weight %d after SetTenantWeight, want 9", ts[2].Weight)
	}
	// Re-home a backlogged flow: the counts must follow it.
	if err := e.SetFlowTenant(0, 1); err != nil {
		t.Fatal(err)
	}
	ts = e.TenantStats()
	if ts[0].ActiveFlows != 2 || ts[1].ActiveFlows != 4 {
		t.Fatalf("after re-homing flow 0 to tenant 1: counts %d/%d, want 2/4", ts[0].ActiveFlows, ts[1].ActiveFlows)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantRehomingChurnRing is the three-level variant of
// TestClassRehomingChurnRing: backlogged flows re-home across tenants,
// classes and ports while producers enqueue and a consumer drains — on
// the ring datapath, under -race. Per-flow FIFO must survive every move,
// open visits at all three levels must end cleanly, and every packet
// enqueued must be served exactly once.
func TestTenantRehomingChurnRing(t *testing.T) {
	const (
		flows     = 256
		producers = 4
		perFlow   = 120
	)
	e, err := New(Config{
		Shards: 4, NumFlows: flows, NumSegments: 1 << 13, StoreData: true,
		NumPorts: 4,
		Egress: policy.EgressConfig{
			Kind:         policy.EgressDRR,
			QuantumBytes: 256,
			Levels: []policy.LevelSpec{
				{Tier: policy.TierTenant, Kind: policy.EgressDRR, Units: 3, Weights: []int{2, 1, 1}, QuantumBytes: 512},
				{Tier: policy.TierClass, Kind: policy.EgressWRR, Units: 4, Weights: []int{4, 3, 2, 1}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup // producers only
		churnWG  sync.WaitGroup
		enqueued atomic.Int64
		stop     = make(chan struct{})
	)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + p)))
			seq := make([]uint32, flows)
			for n := 0; n < perFlow*flows/producers; n++ {
				f := uint32(rng.Intn(flows/producers)*producers + p)
				buf := make([]byte, 8+rng.Intn(3*queue.SegmentBytes))
				binary.LittleEndian.PutUint32(buf, f)
				binary.LittleEndian.PutUint32(buf[4:], seq[f])
				if _, err := e.EnqueuePacket(f, buf); err == nil {
					seq[f]++
					enqueued.Add(1)
				}
			}
		}(p)
	}
	// Churn across every axis of the hierarchy; the moves land
	// mid-backlog and mid-visit by construction.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := uint32(rng.Intn(flows))
			switch rng.Intn(6) {
			case 0:
				_ = e.SetFlowTenant(f, rng.Intn(3))
			case 1:
				_ = e.SetFlowClass(f, rng.Intn(4))
			case 2:
				_ = e.SetFlowPort(f, rng.Intn(4))
			case 3:
				_ = e.SetTenantWeight(rng.Intn(3), 1+rng.Intn(4))
			case 4:
				_ = e.SetClassWeight(rng.Intn(4), 1+rng.Intn(4))
			default:
				_ = e.SetWeight(f, 1+rng.Intn(4))
			}
		}
	}()
	lastSeq := make([]int64, flows)
	for f := range lastSeq {
		lastSeq[f] = -1
	}
	var served int64
	drain := func() {
		for _, d := range e.DequeueNextBatch(64) {
			f := binary.LittleEndian.Uint32(d.Data)
			seq := int64(binary.LittleEndian.Uint32(d.Data[4:]))
			if f != d.Flow {
				t.Errorf("flow %d delivered flow %d's payload", d.Flow, f)
			}
			if seq != lastSeq[f]+1 {
				t.Errorf("flow %d: seq %d after %d (FIFO broken across re-homing)", f, seq, lastSeq[f])
			}
			lastSeq[f] = seq
			served++
			e.ReleaseBuffer(d.Data)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			drain()
		}
		if t.Failed() {
			close(stop)
			t.FailNow()
		}
	}
	close(stop)
	churnWG.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for {
		before := served
		drain()
		if served == before {
			break
		}
	}
	if served != enqueued.Load() {
		t.Fatalf("served %d packets, enqueued %d (packets lost or duplicated across re-homing)", served, enqueued.Load())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPacerOneGoroutinePerShard is the scaling claim behind the timing
// wheel: serving ~1k shaped ports over a 100k-flow space with 8 classes
// starts one pacer goroutine per shard — not one worker per port — and
// still delivers every packet.
func TestPacerOneGoroutinePerShard(t *testing.T) {
	const (
		shards  = 4
		ports   = 1024
		flows   = 100_000
		usedFlw = 4096
	)
	e, err := New(Config{
		Shards: shards, NumFlows: flows, NumSegments: 1 << 14, StoreData: true,
		NumPorts: ports,
		// Every port shaped: 64 KB/s with a small burst, so a 2KB port
		// load outruns burst + one tick's credit and the wheel actually
		// paces instead of draining inside the burst.
		PortRate: policy.ShaperConfig{RateBytesPerSec: 64 << 10, BurstBytes: 1024},
		Egress: policy.EgressConfig{
			Levels: []policy.LevelSpec{
				{Tier: policy.TierClass, Kind: policy.EgressWRR, Units: 8},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := uint32(0); f < usedFlw; f++ {
		if err := e.SetFlowPort(f, int(f%ports)); err != nil {
			t.Fatal(err)
		}
		if err := e.SetFlowClass(f, int(f%8)); err != nil {
			t.Fatal(err)
		}
	}
	before := runtime.NumGoroutine()
	var delivered atomic.Int64
	sink := SinkFunc(func(d Dequeued) error {
		delivered.Add(1)
		e.ReleaseBuffer(d.Data)
		return nil
	})
	for p := 0; p < ports; p++ {
		if err := e.Serve(p, sink); err != nil {
			t.Fatal(err)
		}
	}
	during := runtime.NumGoroutine()
	if got := during - before; got > shards {
		t.Fatalf("serving %d ports started %d goroutines, want at most %d (one pacer per shard)", ports, got, shards)
	}
	// Feed every port past its burst (4 flows × 4 × 128B = 2KB against a
	// 1KB bucket) so the wheel actually parks ports; the enqueue loop
	// rides the pool as the pacers drain it.
	var want int64
	pkt := make([]byte, 128)
	for i := 0; i < 4; i++ {
		for f := uint32(0); f < usedFlw; f++ {
			for {
				_, err := e.EnqueuePacket(f, pkt)
				if err == nil {
					break
				}
				if !errors.Is(err, queue.ErrNoFreeSegments) {
					t.Fatal(err)
				}
				time.Sleep(100 * time.Microsecond)
			}
			want++
		}
	}
	waitUntil(t, 10*time.Second, "all packets delivered", func() bool {
		return delivered.Load() == want
	})
	if got := runtime.NumGoroutine() - before; got > shards {
		t.Fatalf("steady-state service runs %d extra goroutines, want at most %d", got, shards)
	}
	if st := e.Stats(); st.Throttled == 0 {
		t.Fatal("no port ever parked on the shaper wheel (pacing never engaged)")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
