package engine

// The integrated egress scheduler. Each shard keeps one scheduling unit
// per output port: a bitmap of the port's active flows (one bit per flow
// ID, set while the flow's queue is non-empty), so picking the next flow
// to serve is a word-level bit scan — O(1) amortized — instead of the
// O(flows) Occupancy polling the examples used to hand-roll around
// internal/sched. Four disciplines are supported (see policy.EgressKind):
// round-robin, strict priority by flow ID, weighted round-robin, and
// deficit round-robin for variable-length packets.
//
// All egress state lives per shard under the shard lock: a flow always
// hashes to the same shard, so per-flow cursor/credit/deficit state never
// migrates. The discipline arbitrates among the flows of one (shard,
// port) pair; cross-shard fairness comes from rotating the shard a batch
// (or a port worker's scan) starts on, and ports are independent transmit
// resources by construction.

import (
	"fmt"
	"math/bits"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

// On the ring datapath the egress pick itself runs inside the shard's
// worker: DequeueNext, DequeueNextBatch and the port workers post a
// pick-and-dequeue command per shard (see ring.go), so the discipline
// state is only ever touched by the single writer.

// anyPort is the pick-target meaning "serve whichever port has traffic"
// — the legacy pull API (DequeueNext[Batch]) serves all ports, rotating.
const anyPort = -1

// Dequeued is one packet returned by the egress paths: the flow it was
// queued on, its reassembled payload (from the engine's buffer pool —
// Release it when done; empty when data storage is off), and its payload
// byte count (derived from the segment count when data storage is off,
// so shapers can charge transmissions either way).
type Dequeued struct {
	Flow  uint32
	Data  []byte
	Bytes int
}

// portSched is one (shard, port) scheduling unit: the port's active-flow
// bitmap plus the discipline's rotation state. Guarded by the shard's
// critical section. The bitmap is allocated on the port's first active
// flow (setActive): the port space can be large (MaxPorts) while only a
// few ports ever own flows, and an unused port must not cost
// NumFlows/8 bytes per shard. activeFlows > 0 implies active != nil.
type portSched struct {
	active      []uint64
	activeFlows int
	lowWord     int    // no active bits live in words below this index
	cursor      uint32 // flow position for RR/WRR/DRR
	visiting    bool   // WRR/DRR: cursor points at a flow mid-visit
	credit      int64  // WRR: packets left in the current visit
}

// egressState is one shard's scheduler state, guarded by the shard mutex.
// Per-flow state (deficit, weights) is shared across ports — a flow
// belongs to exactly one port at a time; the rotation state lives in the
// per-port portSched units.
type egressState struct {
	kind          policy.EgressKind
	defaultWeight int
	quantum       int // DRR bytes per weight unit per visit

	deficit []int64 // DRR: per-flow byte deficit (lazily allocated)
	weights []int32 // per-flow weights, 0 = defaultWeight (lazily allocated)

	// audit, when non-nil (tests only), accumulates the net service
	// entitlement granted to each flow — quantum bytes for DRR, visit
	// packets for WRR — with forfeited credit subtracted back out, so a
	// conservation property can hold the pickers to served == granted −
	// outstanding, exactly.
	audit []int64
}

// SetEgress replaces the egress discipline on every shard, resetting the
// per-port cursor and credit state. Per-flow weights set with SetWeight
// survive a discipline change. Safe while traffic flows.
func (e *Engine) SetEgress(cfg policy.EgressConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.WithDefaults()
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.eg.kind = cfg.Kind
			s.eg.defaultWeight = cfg.DefaultWeight
			s.eg.quantum = cfg.QuantumBytes
			s.eg.deficit = nil
			for p := range s.ps {
				s.ps[p].cursor = 0
				s.ps[p].visiting = false
				s.ps[p].credit = 0
			}
		})
	}
	return nil
}

// SetWeight sets flow's egress weight for WRR (packets per visit) and DRR
// (quantum multiplier). Weights must be positive; flows default to the
// configured DefaultWeight. Unknown flows (outside the configured flow
// space) report ErrUnknownFlow. Safe while traffic flows.
func (e *Engine) SetWeight(flow uint32, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("engine: non-positive weight %d for flow %d", weight, flow)
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() {
		if s.eg.weights == nil {
			s.eg.weights = make([]int32, e.cfg.NumFlows)
		}
		s.eg.weights[flow] = int32(weight)
	})
	return nil
}

// DequeueNext serves one packet chosen by the egress discipline,
// whichever port it belongs to. ok is false when the engine holds no
// packets. Release the data when done. On the synchronous datapath it
// allocates nothing beyond the pooled payload buffer, so per-packet
// drain loops stay allocation-free.
func (e *Engine) DequeueNext() (Dequeued, bool) {
	n := len(e.shards)
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	for i := 0; i < n; i++ {
		s := e.shards[(start+i)%n]
		for {
			switch e.mode.Load() {
			case modeClosed:
				return Dequeued{}, false
			case modeRing:
				if out := e.dequeueNextRing(s, anyPort, nil, 1); len(out) == 1 {
					return out[0], true
				}
			default:
				if !e.lockSync(s) {
					continue
				}
				d, ok := e.dequeuePicked(s, anyPort)
				s.mu.Unlock()
				if ok {
					return d, true
				}
			}
			break
		}
	}
	return Dequeued{}, false
}

// DequeueNextBatch serves up to max packets, choosing flows by the
// configured egress discipline across all ports. The starting shard
// rotates per call so shards share the egress bandwidth; within a shard,
// flows are picked by the discipline against the active bitmaps. Buffers
// come from the engine pool — Release each packet's Data when done.
func (e *Engine) DequeueNextBatch(max int) []Dequeued {
	if max <= 0 {
		return nil
	}
	n := len(e.shards)
	// n is a power of two; mask before the int conversion so the uint32
	// cursor wrapping past 2^31 cannot go negative on 32-bit platforms.
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	if e.mode.Load() == modeRing {
		// One fan-out command per shard under a single completion; see
		// dequeueNextRingAll.
		return e.dequeueNextRingAll(start, max)
	}
	var out []Dequeued
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShard(e.shards[(start+i)%n], anyPort, out, max)
	}
	return out
}

// drainShard serves discipline-picked packets from one shard on one port
// (anyPort = all) until out reaches max or the shard has nothing
// servable, resolving the current datapath mode per attempt. Shared by
// the pull API (DequeueNextBatch) and the port workers (dequeuePort) so
// the mode-switch handling cannot diverge between them.
func (e *Engine) drainShard(s *shard, port int, out []Dequeued, max int) []Dequeued {
	for {
		switch e.mode.Load() {
		case modeClosed:
			return out
		case modeRing:
			return e.dequeueNextRing(s, port, out, max-len(out))
		default:
			if !e.lockSync(s) {
				continue // datapath switched under us: re-resolve the mode
			}
			for len(out) < max {
				d, ok := e.dequeuePicked(s, port)
				if !ok {
					break
				}
				out = append(out, d)
			}
			s.mu.Unlock()
			return out
		}
	}
}

// dequeuePicked serves one packet picked by the discipline from shard s,
// inside s's critical section (mutex or worker). port selects the
// scheduling unit (anyPort rotates over all of them). ok is false when
// the shard has nothing servable on that port.
func (e *Engine) dequeuePicked(s *shard, port int) (Dequeued, bool) {
	for {
		flow, debit, ok := s.pickLocked(port)
		if !ok {
			return Dequeued{}, false
		}
		buf := e.getBuf()
		data, segs, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
		s.noteDequeue(segs, err)
		if err != nil {
			// The bitmap said active but no complete packet is available
			// (raw-segment misuse): clear the bit so the pick loop cannot
			// spin on this flow. The DRR debit is not charged — nothing
			// was served — and any banked deficit is forfeited by
			// clearActive.
			e.putBuf(buf)
			s.clearActive(flow)
			continue
		}
		if debit != 0 {
			// DRR: charge the served packet against the flow's deficit.
			// The picker returns the debit rather than pre-deducting so
			// the charge lands if and only if the packet was actually
			// served — and so the bound-exhaustion fallback pays for its
			// packet too, driving the deficit negative instead of
			// transmitting for free (the debt delays the flow's next
			// service until its quanta cover it).
			s.eg.deficit[flow] -= debit
		}
		s.syncActive(flow)
		s.noteRemoveRes(flow, true)
		bytes := len(data)
		if !e.cfg.StoreData {
			bytes = segs * queue.SegmentBytes
		}
		return Dequeued{Flow: flow, Data: data, Bytes: bytes}, true
	}
}

// ActiveFlows returns the number of flows with queued segments.
func (e *Engine) ActiveFlows() int {
	total := 0
	for _, s := range e.shards {
		s := s
		e.run(s, func() { total += s.activeFlows })
	}
	return total
}

// --- bitmap maintenance (caller holds s.mu) ---

// portOf returns the scheduling unit owning flow. The flowPort slice is
// engine-wide but each entry is only touched inside the owning shard's
// critical section.
func (s *shard) portOf(flow uint32) int { return int(s.flowPort[flow]) }

func (s *shard) isActive(flow uint32) bool {
	ps := &s.ps[s.portOf(flow)]
	if ps.active == nil {
		return false
	}
	return ps.active[flow>>6]&(1<<(flow&63)) != 0
}

func (s *shard) setActive(flow uint32) {
	p := s.portOf(flow)
	ps := &s.ps[p]
	if ps.active == nil {
		ps.active = make([]uint64, (len(s.flowPort)+63)/64)
	}
	w, bit := int(flow>>6), uint64(1)<<(flow&63)
	if ps.active[w]&bit == 0 {
		ps.active[w] |= bit
		ps.activeFlows++
		s.activeFlows++
		if w < ps.lowWord {
			ps.lowWord = w
		}
		// First traffic for this flow: a parked port worker wants to know.
		// The flag check is one atomic load; the wake itself only happens
		// while the worker is actually parked.
		s.ports[p].notify()
	}
}

func (s *shard) clearActive(flow uint32) {
	p := s.portOf(flow)
	ps := &s.ps[p]
	w, bit := int(flow>>6), uint64(1)<<(flow&63)
	if ps.active == nil || ps.active[w]&bit == 0 {
		return
	}
	ps.active[w] &^= bit
	ps.activeFlows--
	s.activeFlows--
	if s.eg.deficit != nil && s.eg.deficit[flow] > 0 {
		// A queue that empties forfeits its banked DRR deficit, no
		// matter which dequeue path emptied it — otherwise a flow
		// drained directly (DequeuePacket) returns with stale credit
		// and bursts ahead of its weight. Debt (a negative deficit from
		// a fallback overdraw) is NOT forgiven: a flow cannot shed what
		// it owes by going briefly idle.
		if s.eg.audit != nil {
			s.eg.audit[flow] -= s.eg.deficit[flow]
		}
		s.eg.deficit[flow] = 0
	}
	if ps.visiting && ps.cursor == flow {
		// The flow emptied mid-visit: end the visit now, exactly as DRR
		// forfeits its deficit above. Leaving it open let a flow that
		// drained and refilled before the next pick resume its old WRR
		// credit and burst past its weight.
		if s.eg.audit != nil && s.eg.kind == policy.EgressWRR {
			s.eg.audit[flow] -= ps.credit
		}
		ps.visiting = false
		ps.credit = 0
		ps.cursor = flow + 1
	}
}

// syncActive reconciles flow's bit with its queue occupancy.
func (s *shard) syncActive(flow uint32) {
	n, err := s.m.Len(queue.QueueID(flow))
	if err == nil && n > 0 {
		s.setActive(flow)
	} else {
		s.clearActive(flow)
	}
}

// nextActive returns the first active flow at or after from on one port's
// bitmap, wrapping at the end of the flow space. ok is false when no flow
// is active.
func (ps *portSched) nextActive(from uint32) (uint32, bool) {
	if ps.activeFlows == 0 {
		return 0, false
	}
	nw := len(ps.active)
	w := int(from >> 6)
	if w >= nw {
		w, from = 0, 0
	}
	word := ps.active[w] &^ ((1 << (from & 63)) - 1) // mask bits below from
	for i := 0; i <= nw; i++ {
		if word != 0 {
			return uint32(w<<6 + bits.TrailingZeros64(word)), true
		}
		w++
		if w == nw {
			w = 0
		}
		word = ps.active[w]
	}
	return 0, false
}

// --- pickers (caller holds s.mu) ---

// pickLocked returns the next flow the discipline serves on port (anyPort
// rotates across ports), plus the DRR byte debit to charge if the packet
// is actually served (0 for the packet-granular disciplines). The
// scheduler is work-conserving: whenever any flow is active on the
// selected port, a flow is returned.
func (s *shard) pickLocked(port int) (uint32, int64, bool) {
	if s.activeFlows == 0 {
		return 0, 0, false
	}
	if port == anyPort {
		n := len(s.ps)
		for i := 0; i < n; i++ {
			p := int(s.portCursor) % n
			s.portCursor++
			if s.ps[p].activeFlows > 0 {
				return s.pickPort(p)
			}
		}
		return 0, 0, false
	}
	if s.ps[port].activeFlows == 0 {
		return 0, 0, false
	}
	return s.pickPort(port)
}

// pickPort dispatches to the discipline for one scheduling unit; the
// port has at least one active flow.
func (s *shard) pickPort(port int) (uint32, int64, bool) {
	ps := &s.ps[port]
	switch s.eg.kind {
	case policy.EgressPrio:
		f, ok := s.pickPrio(ps)
		return f, 0, ok
	case policy.EgressWRR:
		f, ok := s.pickWRR(ps)
		return f, 0, ok
	case policy.EgressDRR:
		return s.pickDRR(ps)
	default:
		f, ok := s.pickRR(ps)
		return f, 0, ok
	}
}

func (s *shard) pickRR(ps *portSched) (uint32, bool) {
	f, ok := ps.nextActive(ps.cursor)
	if !ok {
		return 0, false
	}
	ps.cursor = f + 1
	return f, true
}

// pickPrio serves the lowest-numbered active flow. lowWord is a lower
// bound under which no bits are set: it only decreases when a lower bit is
// set and advances here as empty words are skipped, so the scan is O(1)
// amortized.
func (s *shard) pickPrio(ps *portSched) (uint32, bool) {
	for w := ps.lowWord; w < len(ps.active); w++ {
		if word := ps.active[w]; word != 0 {
			ps.lowWord = w
			return uint32(w<<6 + bits.TrailingZeros64(word)), true
		}
		ps.lowWord = w + 1
	}
	return 0, false
}

func (s *shard) weightOf(flow uint32) int64 {
	if s.eg.weights != nil && s.eg.weights[flow] > 0 {
		return int64(s.eg.weights[flow])
	}
	return int64(s.eg.defaultWeight)
}

// pickWRR serves the flow under the cursor weight(q) packets per visit.
func (s *shard) pickWRR(ps *portSched) (uint32, bool) {
	if ps.visiting {
		f := ps.cursor
		if s.isActive(f) && ps.credit > 0 {
			ps.credit--
			if ps.credit == 0 {
				ps.visiting = false
				ps.cursor = f + 1
			}
			return f, true
		}
		// Defensive: clearActive ends visits when their flow drains, so
		// an open visit on an unservable flow should not occur; if it
		// does, cancel the unused credit and move on.
		if s.eg.audit != nil {
			s.eg.audit[f] -= ps.credit
		}
		ps.visiting = false
		ps.credit = 0
		ps.cursor = f + 1
	}
	f, ok := ps.nextActive(ps.cursor)
	if !ok {
		return 0, false
	}
	if s.eg.audit != nil {
		s.eg.audit[f] += s.weightOf(f)
	}
	ps.cursor = f
	ps.visiting = true
	ps.credit = s.weightOf(f) - 1
	if ps.credit == 0 {
		ps.visiting = false
		ps.cursor = f + 1
	}
	return f, true
}

// drrAdvance moves the DRR visit to the next active flow after from,
// crediting it one quantum's worth of deficit for the new visit; caller
// holds s.mu. ok is false when no flow is active.
func (s *shard) drrAdvance(ps *portSched, from uint32) (uint32, bool) {
	ps.visiting = false
	f, ok := ps.nextActive(from + 1)
	if !ok {
		return 0, false
	}
	ps.cursor = f
	ps.visiting = true
	grant := s.weightOf(f) * int64(s.eg.quantum)
	s.eg.deficit[f] += grant
	if s.eg.audit != nil {
		s.eg.audit[f] += grant
	}
	return f, true
}

// pickDRR implements deficit round-robin: each visit a flow earns
// weight(q)*quantum bytes of deficit and may send head packets its
// deficit covers; the served packet's bytes are charged by dequeuePicked
// through the returned debit. A flow that empties forfeits any banked
// (positive) deficit but keeps its debt (see clearActive). The loop is
// bounded; if a pathological quantum/packet-size ratio exhausts the
// bound, the current candidate is served anyway so the scheduler stays
// work-conserving — but its packet is still charged, so the flow goes
// into debt rather than transmitting for free.
func (s *shard) pickDRR(ps *portSched) (uint32, int64, bool) {
	eg := &s.eg
	if eg.deficit == nil {
		eg.deficit = make([]int64, len(s.flowPort))
	}
	f := ps.cursor
	if !ps.visiting {
		var ok bool
		if f, ok = s.drrAdvance(ps, f-1); !ok {
			return 0, 0, false
		}
	}
	// Each full rotation adds at least quantum bytes of deficit to every
	// active flow, so any head packet is reachable within
	// maxPacketBytes/quantum rotations; the cap covers jumbo frames at
	// single-byte quanta.
	maxIter := ps.activeFlows*2048 + 8
	for iter := 0; iter < maxIter; iter++ {
		if !s.isActive(f) {
			var ok bool
			if f, ok = s.drrAdvance(ps, f); !ok {
				return 0, 0, false
			}
			continue
		}
		bytes, _, err := s.m.PacketLen(queue.QueueID(f))
		if err == nil && int64(bytes) <= eg.deficit[f] {
			return f, int64(bytes), true
		}
		if err != nil {
			// No complete packet (raw-segment misuse): skip the flow.
			s.clearActive(f)
		}
		// Not enough deficit (or unservable): bank it, move on.
		var ok bool
		if f, ok = s.drrAdvance(ps, f); !ok {
			return 0, 0, false
		}
	}
	// Bound exhausted: serve the candidate anyway (work conservation),
	// charging its head packet so the overdraft is repaid before the flow
	// is served again.
	bytes, _, err := s.m.PacketLen(queue.QueueID(f))
	if err != nil {
		return f, 0, true // unservable head; dequeuePicked clears the flow
	}
	return f, int64(bytes), true
}
