package engine

// The integrated egress scheduler. Each shard keeps a bitmap of its active
// flows (one bit per flow ID, set while the flow's queue is non-empty), so
// picking the next flow to serve is a word-level bit scan — O(1) amortized
// — instead of the O(flows) Occupancy polling the examples used to
// hand-roll around internal/sched. Four disciplines are supported (see
// policy.EgressKind): round-robin, strict priority by flow ID, weighted
// round-robin, and deficit round-robin for variable-length packets.
//
// All egress state lives per shard under the shard lock: a flow always
// hashes to the same shard, so per-flow cursor/credit/deficit state never
// migrates. Cross-shard fairness comes from rotating the shard a batch
// starts on.

import (
	"fmt"
	"math/bits"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

// On the ring datapath the egress pick itself runs inside the shard's
// worker: DequeueNext and DequeueNextBatch post a pick-and-dequeue command
// per shard (see ring.go), so the discipline state is only ever touched by
// the single writer.

// Dequeued is one packet returned by DequeueNextBatch: the flow it was
// queued on and its reassembled payload (from the engine's buffer pool —
// Release it when done; empty when data storage is off).
type Dequeued struct {
	Flow uint32
	Data []byte
}

// egressState is one shard's scheduler state, guarded by the shard mutex.
type egressState struct {
	kind          policy.EgressKind
	defaultWeight int
	quantum       int // DRR bytes per weight unit per visit

	cursor   uint32  // flow position for RR/WRR/DRR
	visiting bool    // WRR/DRR: cursor points at a flow mid-visit
	credit   int64   // WRR: packets left in the current visit
	deficit  []int64 // DRR: per-flow byte deficit (lazily allocated)
	weights  []int32 // per-flow weights, 0 = defaultWeight (lazily allocated)
}

// SetEgress replaces the egress discipline on every shard, resetting the
// per-shard cursor and credit state. Per-flow weights set with SetWeight
// survive a discipline change. Safe while traffic flows.
func (e *Engine) SetEgress(cfg policy.EgressConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.WithDefaults()
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.eg.kind = cfg.Kind
			s.eg.defaultWeight = cfg.DefaultWeight
			s.eg.quantum = cfg.QuantumBytes
			s.eg.cursor = 0
			s.eg.visiting = false
			s.eg.credit = 0
			s.eg.deficit = nil
		})
	}
	return nil
}

// SetWeight sets flow's egress weight for WRR (packets per visit) and DRR
// (quantum multiplier). Weights must be positive; flows default to the
// configured DefaultWeight. Unknown flows (outside the configured flow
// space) report ErrUnknownFlow. Safe while traffic flows.
func (e *Engine) SetWeight(flow uint32, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("engine: non-positive weight %d for flow %d", weight, flow)
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() {
		if s.eg.weights == nil {
			s.eg.weights = make([]int32, e.cfg.NumFlows)
		}
		s.eg.weights[flow] = int32(weight)
	})
	return nil
}

// DequeueNext serves one packet chosen by the egress discipline. ok is
// false when the engine holds no packets. Release the data when done. On
// the synchronous datapath it allocates nothing beyond the pooled payload
// buffer, so per-packet drain loops stay allocation-free.
func (e *Engine) DequeueNext() (Dequeued, bool) {
	n := len(e.shards)
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	for i := 0; i < n; i++ {
		s := e.shards[(start+i)%n]
		for {
			switch e.mode.Load() {
			case modeClosed:
				return Dequeued{}, false
			case modeRing:
				if out := e.dequeueNextRing(s, nil, 1); len(out) == 1 {
					return out[0], true
				}
			default:
				if !e.lockSync(s) {
					continue
				}
				d, ok := e.dequeuePicked(s)
				s.mu.Unlock()
				if ok {
					return d, true
				}
			}
			break
		}
	}
	return Dequeued{}, false
}

// DequeueNextBatch serves up to max packets, choosing flows by the
// configured egress discipline. The starting shard rotates per call so
// shards share the egress bandwidth; within a shard, flows are picked by
// the discipline against the active bitmap. Buffers come from the engine
// pool — Release each packet's Data when done.
func (e *Engine) DequeueNextBatch(max int) []Dequeued {
	if max <= 0 {
		return nil
	}
	n := len(e.shards)
	// n is a power of two; mask before the int conversion so the uint32
	// cursor wrapping past 2^31 cannot go negative on 32-bit platforms.
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	if e.mode.Load() == modeRing {
		// One fan-out command per shard under a single completion; see
		// dequeueNextRingAll.
		return e.dequeueNextRingAll(start, max)
	}
	var out []Dequeued
	for i := 0; i < n && len(out) < max; i++ {
		s := e.shards[(start+i)%n]
		for {
			switch e.mode.Load() {
			case modeClosed:
				return out
			case modeRing:
				out = e.dequeueNextRing(s, out, max-len(out))
			default:
				if !e.lockSync(s) {
					continue
				}
				for len(out) < max {
					d, ok := e.dequeuePicked(s)
					if !ok {
						break
					}
					out = append(out, d)
				}
				s.mu.Unlock()
			}
			break
		}
	}
	return out
}

// dequeuePicked serves one packet picked by the discipline from shard s,
// inside s's critical section (mutex or worker). ok is false when the
// shard has nothing servable.
func (e *Engine) dequeuePicked(s *shard) (Dequeued, bool) {
	for {
		flow, ok := s.pickLocked()
		if !ok {
			return Dequeued{}, false
		}
		buf := e.getBuf()
		data, segs, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
		s.noteDequeue(segs, err)
		if err != nil {
			// The bitmap said active but no complete packet is available
			// (raw-segment misuse): clear the bit so the pick loop cannot
			// spin on this flow.
			e.putBuf(buf)
			s.clearActive(flow)
			continue
		}
		s.syncActive(flow)
		s.noteRemoveRes(flow, true)
		return Dequeued{Flow: flow, Data: data}, true
	}
}

// ActiveFlows returns the number of flows with queued segments.
func (e *Engine) ActiveFlows() int {
	total := 0
	for _, s := range e.shards {
		s := s
		e.run(s, func() { total += s.activeFlows })
	}
	return total
}

// --- bitmap maintenance (caller holds s.mu) ---

func (s *shard) isActive(flow uint32) bool {
	return s.active[flow>>6]&(1<<(flow&63)) != 0
}

func (s *shard) setActive(flow uint32) {
	w, bit := int(flow>>6), uint64(1)<<(flow&63)
	if s.active[w]&bit == 0 {
		s.active[w] |= bit
		s.activeFlows++
		if w < s.lowWord {
			s.lowWord = w
		}
	}
}

func (s *shard) clearActive(flow uint32) {
	w, bit := int(flow>>6), uint64(1)<<(flow&63)
	if s.active[w]&bit != 0 {
		s.active[w] &^= bit
		s.activeFlows--
		if s.eg.deficit != nil {
			// A queue that empties forfeits its banked DRR deficit, no
			// matter which dequeue path emptied it — otherwise a flow
			// drained directly (DequeuePacket) returns with stale credit
			// and bursts ahead of its weight.
			s.eg.deficit[flow] = 0
		}
	}
}

// syncActive reconciles flow's bit with its queue occupancy.
func (s *shard) syncActive(flow uint32) {
	n, err := s.m.Len(queue.QueueID(flow))
	if err == nil && n > 0 {
		s.setActive(flow)
	} else {
		s.clearActive(flow)
	}
}

// nextActive returns the first active flow at or after from, wrapping at
// the end of the flow space. ok is false when no flow is active.
func (s *shard) nextActive(from uint32) (uint32, bool) {
	if s.activeFlows == 0 {
		return 0, false
	}
	nw := len(s.active)
	w := int(from >> 6)
	if w >= nw {
		w, from = 0, 0
	}
	word := s.active[w] &^ ((1 << (from & 63)) - 1) // mask bits below from
	for i := 0; i <= nw; i++ {
		if word != 0 {
			return uint32(w<<6 + bits.TrailingZeros64(word)), true
		}
		w++
		if w == nw {
			w = 0
		}
		word = s.active[w]
	}
	return 0, false
}

// --- pickers (caller holds s.mu) ---

// pickLocked returns the next flow the discipline serves. The scheduler is
// work-conserving: whenever any flow is active, a flow is returned.
func (s *shard) pickLocked() (uint32, bool) {
	if s.activeFlows == 0 {
		return 0, false
	}
	switch s.eg.kind {
	case policy.EgressPrio:
		return s.pickPrio()
	case policy.EgressWRR:
		return s.pickWRR()
	case policy.EgressDRR:
		return s.pickDRR()
	default:
		return s.pickRR()
	}
}

func (s *shard) pickRR() (uint32, bool) {
	f, ok := s.nextActive(s.eg.cursor)
	if !ok {
		return 0, false
	}
	s.eg.cursor = f + 1
	return f, true
}

// pickPrio serves the lowest-numbered active flow. lowWord is a lower
// bound under which no bits are set: it only decreases when a lower bit is
// set and advances here as empty words are skipped, so the scan is O(1)
// amortized.
func (s *shard) pickPrio() (uint32, bool) {
	for w := s.lowWord; w < len(s.active); w++ {
		if word := s.active[w]; word != 0 {
			s.lowWord = w
			return uint32(w<<6 + bits.TrailingZeros64(word)), true
		}
		s.lowWord = w + 1
	}
	return 0, false
}

func (s *shard) weightOf(flow uint32) int64 {
	if s.eg.weights != nil && s.eg.weights[flow] > 0 {
		return int64(s.eg.weights[flow])
	}
	return int64(s.eg.defaultWeight)
}

// pickWRR serves the flow under the cursor weight(q) packets per visit.
func (s *shard) pickWRR() (uint32, bool) {
	eg := &s.eg
	if eg.visiting {
		f := eg.cursor
		if s.isActive(f) && eg.credit > 0 {
			eg.credit--
			if eg.credit == 0 {
				eg.visiting = false
				eg.cursor = f + 1
			}
			return f, true
		}
		eg.visiting = false
		eg.cursor = f + 1
	}
	f, ok := s.nextActive(eg.cursor)
	if !ok {
		return 0, false
	}
	eg.cursor = f
	eg.visiting = true
	eg.credit = s.weightOf(f) - 1
	if eg.credit == 0 {
		eg.visiting = false
		eg.cursor = f + 1
	}
	return f, true
}

// drrAdvance moves the DRR visit to the next active flow after from,
// crediting it one quantum's worth of deficit for the new visit; caller
// holds s.mu. ok is false when no flow is active.
func (s *shard) drrAdvance(from uint32) (uint32, bool) {
	eg := &s.eg
	eg.visiting = false
	f, ok := s.nextActive(from + 1)
	if !ok {
		return 0, false
	}
	eg.cursor = f
	eg.visiting = true
	eg.deficit[f] += s.weightOf(f) * int64(eg.quantum)
	return f, true
}

// pickDRR implements deficit round-robin: each visit a flow earns
// weight(q)*quantum bytes of deficit and may send head packets its deficit
// covers. A flow that empties forfeits its deficit (see clearActive). The
// loop is bounded; if a pathological quantum/packet-size ratio exhausts
// the bound, the current candidate is served anyway so the scheduler
// stays work-conserving.
func (s *shard) pickDRR() (uint32, bool) {
	eg := &s.eg
	if eg.deficit == nil {
		eg.deficit = make([]int64, len(s.active)*64)
	}
	f := eg.cursor
	if !eg.visiting {
		var ok bool
		if f, ok = s.drrAdvance(f - 1); !ok {
			return 0, false
		}
	}
	// Each full rotation adds at least quantum bytes of deficit to every
	// active flow, so any head packet is reachable within
	// maxPacketBytes/quantum rotations; the cap covers jumbo frames at
	// single-byte quanta.
	maxIter := s.activeFlows*2048 + 8
	for iter := 0; iter < maxIter; iter++ {
		if !s.isActive(f) {
			var ok bool
			if f, ok = s.drrAdvance(f); !ok {
				return 0, false
			}
			continue
		}
		bytes, _, err := s.m.PacketLen(queue.QueueID(f))
		if err == nil && int64(bytes) <= eg.deficit[f] {
			eg.deficit[f] -= int64(bytes)
			return f, true
		}
		if err != nil {
			// No complete packet (raw-segment misuse): skip the flow.
			s.clearActive(f)
		}
		// Not enough deficit (or unservable): bank it, move on.
		var ok bool
		if f, ok = s.drrAdvance(f); !ok {
			return 0, false
		}
	}
	return f, true // bound exhausted: serve anyway (work conservation)
}
