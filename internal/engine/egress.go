package engine

// The integrated egress scheduler — a two-level hierarchy. Each shard
// keeps one scheduling unit per output port; a unit arbitrates first
// among the port's backlogged *classes* (SetFlowClass groups flows into
// policy.EgressConfig.NumClasses classes) and then among the backlogged
// flows of the winning class. Both levels run the same four disciplines
// (see policy.EgressKind) through one implementation, sched.Level, so
// class-level WRR cannot drift from flow-level WRR.
//
// Scheduler state is dense and index-based: every flow owns one
// flowState entry in an engine-wide table (intrusive list links, port,
// class, weight, DRR deficit — no per-flow maps, no per-port bitmaps),
// so a million flows cost a million small structs rather than
// ports×flows bits, and activation/deactivation/picking are O(1) list
// splices. Entries are only ever touched inside the owning shard's
// critical section; the table is engine-wide only so the facade can
// size it once.
//
// All egress state lives per shard under the shard lock: a flow always
// hashes to the same shard, so per-flow cursor/credit/deficit state
// never migrates. The discipline arbitrates among the flows of one
// (shard, port) pair; cross-shard fairness comes from rotating the
// shard a batch (or the pacer's scan) starts on, and ports are
// independent transmit resources by construction.

import (
	"fmt"

	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/sched"
)

// On the ring datapath the egress pick itself runs inside the shard's
// worker: DequeueNext, DequeueNextBatch and the pacers post a
// pick-and-dequeue command per shard (see ring.go), so the discipline
// state is only ever touched by the single writer.

// anyPort is the pick-target meaning "serve whichever port has traffic"
// — the legacy pull API (DequeueNext[Batch]) serves all ports, rotating.
const anyPort = -1

// Dequeued is one packet returned by the egress paths: the flow it was
// queued on, its reassembled payload (from the engine's buffer pool —
// Release it when done; empty when data storage is off), and its payload
// byte count (derived from the segment count when data storage is off,
// so shapers can charge transmissions either way).
type Dequeued struct {
	Flow  uint32
	Data  []byte
	Bytes int
}

// flowState is one flow's dense scheduler state: the intrusive links of
// its (port, class) active list, its home port and class, its WRR/DRR
// weight, and its DRR deficit. One entry per flow, engine-wide, touched
// only inside the owning shard's critical section. next == sched.None
// means the flow is not active (no backlog).
type flowState struct {
	next, prev int32
	port       int32
	class      int32
	weight     int32  // 0 = discipline default
	defEpoch   uint32 // deficit is valid only when this matches eg.epoch
	deficit    int64
}

// classUnit is one class's state within a (shard, port) scheduling
// unit: the flow-level rotation over the class's active flows, the
// class's own links on the port's class-level list, and its class-level
// DRR deficit.
type classUnit struct {
	fl           sched.Level
	cnext, cprev int32
	deficit      int64
}

// portSched is one (shard, port) scheduling unit: the class-level
// rotation plus one classUnit per class, allocated on the port's first
// active flow — the port space can be large (MaxPorts) while only a few
// ports ever own flows, and an unused port must not cost per-class
// state on every shard. Guarded by the shard's critical section.
// activeFlows > 0 implies classes != nil.
type portSched struct {
	s           *shard // back-pointer for the class-level Entity methods
	cls         sched.Level
	classes     []classUnit
	classAudit  []int64 // test-only class-level entitlement (see egressState.audit)
	activeFlows int
}

// egressState is one shard's scheduler configuration, guarded by the
// shard's critical section. Per-flow state lives in the dense flowState
// table; per-class rotation state lives in the per-port portSched units.
type egressState struct {
	kind          policy.EgressKind // flow-level discipline
	defaultWeight int
	quantum       int // flow-level DRR bytes per weight unit per visit

	classKind    policy.EgressKind // class-level discipline
	classQuantum int
	classWeights []int32 // per-shard copy, len numClasses; 0 = weight 1

	// epoch versions the flowState deficits: SetEgress bumps it instead
	// of zeroing a million entries, and stale deficits read as 0.
	epoch uint32

	// audit, when non-nil (tests only), accumulates the net service
	// entitlement granted to each flow — quantum bytes for DRR, visit
	// packets for WRR — with forfeited credit subtracted back out, so a
	// conservation property can hold the pickers to served == granted −
	// outstanding, exactly. auditClasses mirrors it at the class level
	// (per-port classAudit slices, allocated with the classUnits).
	audit        []int64
	auditClasses bool
}

// --- sched.Entity implementations ---

// The shard itself is the flow-level Entity: member ids are flow IDs
// indexing the dense flowState table. Pointer-shaped, so the interface
// conversion in the pick paths does not allocate.

func (s *shard) Next(id int32) int32    { return s.flows[id].next }
func (s *shard) SetNext(id, next int32) { s.flows[id].next = next }
func (s *shard) Prev(id int32) int32    { return s.flows[id].prev }
func (s *shard) SetPrev(id, prev int32) { s.flows[id].prev = prev }

func (s *shard) Weight(id int32) int64 {
	if w := s.flows[id].weight; w > 0 {
		return int64(w)
	}
	return int64(s.eg.defaultWeight)
}

func (s *shard) Deficit(id int32) int64 {
	fs := &s.flows[id]
	if fs.defEpoch != s.eg.epoch {
		return 0
	}
	return fs.deficit
}

func (s *shard) SetDeficit(id int32, d int64) {
	fs := &s.flows[id]
	fs.defEpoch = s.eg.epoch
	fs.deficit = d
}

func (s *shard) HeadBytes(id int32) (int64, bool) {
	bytes, _, err := s.m.PacketLen(queue.QueueID(id))
	if err != nil {
		return 0, false
	}
	return int64(bytes), true
}

func (s *shard) Audit(id int32, delta int64) {
	if s.eg.audit != nil {
		s.eg.audit[id] += delta
	}
}

// The portSched is the class-level Entity: member ids are class indices
// into its classUnit array.

func (ps *portSched) Next(id int32) int32    { return ps.classes[id].cnext }
func (ps *portSched) SetNext(id, next int32) { ps.classes[id].cnext = next }
func (ps *portSched) Prev(id int32) int32    { return ps.classes[id].cprev }
func (ps *portSched) SetPrev(id, prev int32) { ps.classes[id].cprev = prev }

func (ps *portSched) Weight(id int32) int64 {
	if w := ps.s.eg.classWeights[id]; w > 0 {
		return int64(w)
	}
	return 1
}

func (ps *portSched) Deficit(id int32) int64       { return ps.classes[id].deficit }
func (ps *portSched) SetDeficit(id int32, d int64) { ps.classes[id].deficit = d }

// HeadBytes prices a class for the class-level DRR fit check: the head
// packet of the flow the class's flow level would serve next. Exact for
// RR/Prio/WRR flow levels; best-effort under flow-level DRR (the
// banking loop may advance past the peeked flow) — accounting stays
// exact regardless, because the class deficit is charged with the bytes
// actually served (see dequeuePicked), never with this estimate.
func (ps *portSched) HeadBytes(id int32) (int64, bool) {
	f, ok := ps.classes[id].fl.Peek(ps.s.flowParams(), ps.s)
	if !ok {
		return 0, false
	}
	return ps.s.HeadBytes(f)
}

func (ps *portSched) Audit(id int32, delta int64) {
	if ps.classAudit != nil {
		ps.classAudit[id] += delta
	}
}

func (s *shard) flowParams() sched.Params {
	return sched.Params{Kind: s.eg.kind, Quantum: int64(s.eg.quantum)}
}

func (s *shard) classParams() sched.Params {
	return sched.Params{Kind: s.eg.classKind, Quantum: int64(s.eg.classQuantum)}
}

// --- configuration ---

// SetEgress replaces the egress discipline (both levels) on every
// shard, resetting rotation, visit and deficit state. The class count
// is fixed at construction: a zero NumClasses keeps the configured
// count, any other value must match it. Per-flow weights set with
// SetWeight survive a discipline change; class weights are replaced
// when ClassWeights is non-nil. Safe while traffic flows.
func (e *Engine) SetEgress(cfg policy.EgressConfig) error {
	if cfg.NumClasses == 0 {
		cfg.NumClasses = e.numClasses
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.WithDefaults()
	if cfg.NumClasses != e.numClasses {
		return fmt.Errorf("engine: NumClasses %d does not match the configured %d (the class space is fixed at construction)",
			cfg.NumClasses, e.numClasses)
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.eg.kind = cfg.Kind
			s.eg.defaultWeight = cfg.DefaultWeight
			s.eg.quantum = cfg.QuantumBytes
			s.eg.classKind = cfg.ClassKind
			s.eg.classQuantum = cfg.ClassQuantumBytes
			if cfg.ClassWeights != nil || s.eg.classWeights == nil {
				s.eg.classWeights = make([]int32, e.numClasses)
				for i, w := range cfg.ClassWeights {
					s.eg.classWeights[i] = int32(w)
				}
			}
			// Invalidate every flow deficit in O(1) instead of walking
			// the flow table.
			s.eg.epoch++
			for p := range s.ps {
				ps := &s.ps[p]
				ps.cls.ResetRotation()
				for c := range ps.classes {
					ps.classes[c].fl.ResetRotation()
					ps.classes[c].deficit = 0
				}
			}
		})
	}
	return nil
}

// SetWeight sets flow's egress weight for WRR (packets per visit) and DRR
// (quantum multiplier). Weights must be positive; flows default to the
// configured DefaultWeight. Unknown flows (outside the configured flow
// space) report ErrUnknownFlow. Safe while traffic flows.
func (e *Engine) SetWeight(flow uint32, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("engine: non-positive weight %d for flow %d", weight, flow)
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() { s.flows[flow].weight = int32(weight) })
	return nil
}

// SetClassWeight sets class's weight for class-level WRR (packets per
// visit) and DRR (quantum multiplier) on every shard. Weights must be
// positive; classes default to weight 1 (or Config.Egress.ClassWeights).
// Safe while traffic flows.
func (e *Engine) SetClassWeight(class, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("engine: non-positive weight %d for class %d", weight, class)
	}
	if class < 0 || class >= e.numClasses {
		return fmt.Errorf("engine: class %d out of range [0, %d)", class, e.numClasses)
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() { s.eg.classWeights[class] = int32(weight) })
	}
	return nil
}

// NumClasses returns the per-port class count (1 = flat).
func (e *Engine) NumClasses() int { return e.numClasses }

// SetFlowClass moves flow into class (all flows start in class 0). A
// backlogged flow moves with its queue: it leaves its old class's
// active list — ending any open visit and forfeiting banked DRR deficit
// exactly as if it had drained, at both hierarchy levels — and joins
// the new class's rotation at the tail. Safe while traffic flows;
// per-flow FIFO is unaffected (the flow's shard does not change).
func (e *Engine) SetFlowClass(flow uint32, class int) error {
	if class < 0 || class >= e.numClasses {
		return fmt.Errorf("engine: class %d out of range [0, %d)", class, e.numClasses)
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() {
		fs := &s.flows[flow]
		if int(fs.class) == class {
			return
		}
		active := fs.next != sched.None
		if active {
			s.clearActive(flow)
		}
		fs.class = int32(class)
		if active {
			s.setActive(flow)
		}
	})
	return nil
}

// FlowClass returns the class flow is currently mapped to.
func (e *Engine) FlowClass(flow uint32) (int, error) {
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return 0, ErrUnknownFlow
	}
	s := e.shardOf(flow)
	var class int
	e.run(s, func() { class = int(s.flows[flow].class) })
	return class, nil
}

// --- dequeue paths ---

// DequeueNext serves one packet chosen by the egress discipline,
// whichever port it belongs to. ok is false when the engine holds no
// packets. Release the data when done. On the synchronous datapath it
// allocates nothing beyond the pooled payload buffer, so per-packet
// drain loops stay allocation-free.
func (e *Engine) DequeueNext() (Dequeued, bool) {
	n := len(e.shards)
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	for i := 0; i < n; i++ {
		s := e.shards[(start+i)%n]
		for {
			switch e.mode.Load() {
			case modeClosed:
				return Dequeued{}, false
			case modeRing:
				if out := e.dequeueNextRing(s, anyPort, nil, 1); len(out) == 1 {
					return out[0], true
				}
			default:
				if !e.lockSync(s) {
					continue
				}
				d, ok := e.dequeuePicked(s, anyPort)
				s.mu.Unlock()
				if ok {
					return d, true
				}
			}
			break
		}
	}
	return Dequeued{}, false
}

// DequeueNextBatch serves up to max packets, choosing flows by the
// configured egress discipline across all ports. The starting shard
// rotates per call so shards share the egress bandwidth; within a shard,
// classes and flows are picked by the two-level discipline against the
// active lists. Buffers come from the engine pool — Release each
// packet's Data when done.
func (e *Engine) DequeueNextBatch(max int) []Dequeued {
	if max <= 0 {
		return nil
	}
	n := len(e.shards)
	// n is a power of two; mask before the int conversion so the uint32
	// cursor wrapping past 2^31 cannot go negative on 32-bit platforms.
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	if e.mode.Load() == modeRing {
		// One fan-out command per shard under a single completion; see
		// dequeueNextRingAll.
		return e.dequeueNextRingAll(start, max)
	}
	var out []Dequeued
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShard(e.shards[(start+i)%n], anyPort, out, max)
	}
	return out
}

// drainShard serves discipline-picked packets from one shard on one port
// (anyPort = all) until out reaches max or the shard has nothing
// servable, resolving the current datapath mode per attempt. Shared by
// the pull API (DequeueNextBatch) and the pacers (dequeuePort) so the
// mode-switch handling cannot diverge between them.
func (e *Engine) drainShard(s *shard, port int, out []Dequeued, max int) []Dequeued {
	for {
		switch e.mode.Load() {
		case modeClosed:
			return out
		case modeRing:
			return e.dequeueNextRing(s, port, out, max-len(out))
		default:
			if !e.lockSync(s) {
				continue // datapath switched under us: re-resolve the mode
			}
			for len(out) < max {
				d, ok := e.dequeuePicked(s, port)
				if !ok {
					break
				}
				out = append(out, d)
			}
			s.mu.Unlock()
			return out
		}
	}
}

// dequeuePicked serves one packet picked by the two-level discipline
// from shard s, inside s's critical section (mutex or worker). port
// selects the scheduling unit (anyPort rotates over all of them). ok is
// false when the shard has nothing servable on that port.
func (e *Engine) dequeuePicked(s *shard, port int) (Dequeued, bool) {
	for {
		flow, debit, ok := s.pickLocked(port)
		if !ok {
			return Dequeued{}, false
		}
		buf := e.getBuf()
		data, segs, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
		s.noteDequeue(segs, err)
		if err != nil {
			// The list said active but no complete packet is available
			// (raw-segment misuse): deactivate the flow so the pick loop
			// cannot spin on it. The DRR debit is not charged — nothing
			// was served — and any banked deficit is forfeited by
			// clearActive.
			e.putBuf(buf)
			s.clearActive(flow)
			continue
		}
		s.noteCopied(len(data))
		bytes := len(data)
		if !e.cfg.StoreData {
			bytes = segs * queue.SegmentBytes
		}
		if debit != 0 {
			// Flow-level DRR: charge the served packet against the flow's
			// deficit. The picker returns the debit rather than
			// pre-deducting so the charge lands if and only if the packet
			// was actually served — and so the bound-exhaustion fallback
			// pays for its packet too, driving the deficit negative
			// instead of transmitting for free (the debt delays the
			// flow's next service until its quanta cover it).
			s.SetDeficit(int32(flow), s.Deficit(int32(flow))-debit)
		}
		if s.eg.classKind == policy.EgressDRR {
			// Class-level DRR: charge the bytes actually served to the
			// class the flow was served under. The pick's fit check used
			// a peeked estimate; charging actuals keeps the class-level
			// conservation exact (served ≡ granted − deficit).
			fs := &s.flows[flow]
			ps := &s.ps[fs.port]
			if len(ps.classes) > 1 {
				ps.classes[fs.class].deficit -= int64(bytes)
			}
		}
		s.syncActive(flow)
		s.noteRemoveRes(flow, true)
		return Dequeued{Flow: flow, Data: data, Bytes: bytes}, true
	}
}

// ActiveFlows returns the number of flows with queued segments.
func (e *Engine) ActiveFlows() int {
	total := 0
	for _, s := range e.shards {
		s := s
		e.run(s, func() { total += s.activeFlows })
	}
	return total
}

// --- active-list maintenance (caller holds the shard's critical section) ---

// portOf returns the scheduling unit owning flow. The flows table is
// engine-wide but each entry is only touched inside the owning shard's
// critical section.
func (s *shard) portOf(flow uint32) int { return int(s.flows[flow].port) }

func (s *shard) isActive(flow uint32) bool { return s.flows[flow].next != sched.None }

// initPortLocked allocates a port's classUnits on its first active flow.
func (s *shard) initPortLocked(ps *portSched) {
	ps.classes = make([]classUnit, s.numClasses)
	for c := range ps.classes {
		ps.classes[c].cnext = sched.None
		ps.classes[c].cprev = sched.None
	}
	if s.eg.auditClasses {
		ps.classAudit = make([]int64, s.numClasses)
	}
}

func (s *shard) setActive(flow uint32) {
	fs := &s.flows[flow]
	if fs.next != sched.None {
		return
	}
	p := int(fs.port)
	ps := &s.ps[p]
	if ps.classes == nil {
		s.initPortLocked(ps)
	}
	cu := &ps.classes[fs.class]
	if cu.fl.Count() == 0 {
		// First backlogged flow of the class: the class joins the port's
		// class-level rotation.
		ps.cls.Activate(ps, fs.class)
	}
	cu.fl.Activate(s, int32(flow))
	ps.activeFlows++
	s.activeFlows++
	// First traffic for this flow: an idle-parked port wants to know.
	// The flag check is one atomic load; the enqueue to the pacer only
	// happens while the port is actually parked.
	s.ports[p].notify()
}

func (s *shard) clearActive(flow uint32) {
	fs := &s.flows[flow]
	if fs.next == sched.None {
		return
	}
	ps := &s.ps[fs.port]
	cu := &ps.classes[fs.class]
	cu.fl.Deactivate(s.flowParams(), s, int32(flow))
	if cu.fl.Count() == 0 {
		// Last backlogged flow drained: the class leaves the port's
		// rotation, ending any open class-level visit and forfeiting
		// banked class deficit exactly as the flow level does.
		ps.cls.Deactivate(s.classParams(), ps, fs.class)
	}
	ps.activeFlows--
	s.activeFlows--
}

// syncActive reconciles flow's list membership with its queue occupancy.
func (s *shard) syncActive(flow uint32) {
	n, err := s.m.Len(queue.QueueID(flow))
	if err == nil && n > 0 {
		s.setActive(flow)
	} else {
		s.clearActive(flow)
	}
}

// --- picking (caller holds the shard's critical section) ---

// pickLocked returns the next flow the two-level discipline serves on
// port (anyPort rotates across ports), plus the flow-level DRR byte
// debit to charge if the packet is actually served (0 for the
// packet-granular disciplines). The scheduler is work-conserving:
// whenever any flow is active on the selected port, a flow is returned.
func (s *shard) pickLocked(port int) (uint32, int64, bool) {
	if s.activeFlows == 0 {
		return 0, 0, false
	}
	if port == anyPort {
		n := len(s.ps)
		for i := 0; i < n; i++ {
			p := int(s.portCursor) % n
			s.portCursor++
			if s.ps[p].activeFlows > 0 {
				return s.pickPort(p)
			}
		}
		return 0, 0, false
	}
	if s.ps[port].activeFlows == 0 {
		return 0, 0, false
	}
	return s.pickPort(port)
}

// pickPort runs the hierarchy for one scheduling unit: the class-level
// discipline picks among the port's backlogged classes, the flow-level
// discipline picks within the winner. The port has at least one active
// flow. With a single class the class level is skipped entirely — the
// flat configuration pays nothing for the hierarchy.
func (s *shard) pickPort(port int) (uint32, int64, bool) {
	ps := &s.ps[port]
	var cls int32
	if len(ps.classes) > 1 {
		c, _, ok := ps.cls.Pick(s.classParams(), ps)
		if !ok {
			return 0, 0, false // unreachable while activeFlows > 0
		}
		cls = c
	}
	f, debit, ok := ps.classes[cls].fl.Pick(s.flowParams(), s)
	if !ok {
		return 0, 0, false // unreachable: a listed class has active flows
	}
	return uint32(f), debit, true
}
