package engine

// The integrated egress scheduler — an N-level hierarchy. Each shard
// keeps one scheduling unit per output port; a unit is a sched.Stack
// composing one sched.Level per configured tier (tenant, class) above
// the flow level, so the same code path runs the flat, two-level and
// three-level configurations. SetFlowTenant/SetFlowClass group flows
// into the tiers' units; all levels run the same four disciplines (see
// policy.EgressKind) through one implementation, sched.Level, so
// tenant-level WRR cannot drift from class- or flow-level WRR.
//
// Scheduler state is dense and index-based: every flow owns one
// flowState entry in an engine-wide table (intrusive list links, port,
// tenant, class, weight, DRR deficit — no per-flow maps, no per-port
// bitmaps), so a million flows cost a million small structs rather than
// ports×flows bits, and activation/deactivation/picking are O(1) list
// splices. Intermediate nodes (a tenant, a (tenant, class) pair) are
// dense composite indices into per-level slices inside the Stack.
// Entries are only ever touched inside the owning shard's critical
// section; the table is engine-wide only so the facade can size it
// once.
//
// All egress state lives per shard under the shard lock: a flow always
// hashes to the same shard, so per-flow cursor/credit/deficit state
// never migrates. The discipline arbitrates among the flows of one
// (shard, port) pair; cross-shard fairness comes from rotating the
// shard a batch (or the pacer's scan) starts on, and ports are
// independent transmit resources by construction.

import (
	"fmt"

	"npqm/internal/policy"
	"npqm/internal/queue"
	"npqm/internal/sched"
)

// On the ring datapath the egress pick itself runs inside the shard's
// worker: DequeueNext, DequeueNextBatch and the pacers post a
// pick-and-dequeue command per shard (see ring.go), so the discipline
// state is only ever touched by the single writer.

// anyPort is the pick-target meaning "serve whichever port has traffic"
// — the legacy pull API (DequeueNext[Batch]) serves all ports, rotating.
const anyPort = -1

// The intermediate tiers, outermost first. A tier with one unit is
// flat — it contributes no scheduling level — so the active levels of
// an engine are the tiers whose unit count exceeds one.
const (
	tierTenant = iota
	tierClass
	numTiers
)

// tierName returns the tier's policy-layer spelling for error messages.
func tierName(tier int) string {
	if tier == tierTenant {
		return policy.TierTenant
	}
	return policy.TierClass
}

// Dequeued is one packet returned by the egress paths: the flow it was
// queued on, its reassembled payload (from the engine's buffer pool —
// Release it when done; empty when data storage is off), and its payload
// byte count (derived from the segment count when data storage is off,
// so shapers can charge transmissions either way).
type Dequeued struct {
	Flow  uint32
	Data  []byte
	Bytes int
}

// flowState is one flow's dense scheduler state: the intrusive links of
// its innermost active list, its home port, tenant and class, its
// WRR/DRR weight, and its DRR deficit. One entry per flow, engine-wide,
// touched only inside the owning shard's critical section. next ==
// sched.None means the flow is not active (no backlog).
type flowState struct {
	next, prev int32
	port       int32
	tenant     int32
	class      int32
	weight     int32  // 0 = discipline default
	defEpoch   uint32 // deficit is valid only when this matches eg.epoch
	deficit    int64
}

// portSched is one (shard, port) scheduling unit: a sched.Stack over
// the shard's configured levels, built on the port's first active flow
// — the port space can be large (MaxPorts) while only a few ports ever
// own flows, and an unused port must not cost per-level state on every
// shard. Guarded by the shard's critical section. activeFlows > 0
// implies st.Ready().
type portSched struct {
	s           *shard      // back-pointer for the Hierarchy methods
	st          sched.Stack // the level stack (flat when no tier is active)
	audits      [][]int64   // test-only per-level entitlement (see egressState.audit)
	activeFlows int
}

// levelCfg is one active intermediate level's shard-local
// configuration: which tier it is, its discipline, its unit count
// (mod), and the composite node count of the level (the product of the
// unit counts through it — a node at the class level under 8 tenants ×
// 8 classes is tenant*8+class, one of 64).
type levelCfg struct {
	tier    int8
	kind    policy.EgressKind
	quantum int64
	mod     int32
	count   int32
	weights []int32 // aliases egressState.tierWeights[tier]; 0 = weight 1
}

// egressState is one shard's scheduler configuration, guarded by the
// shard's critical section. Per-flow state lives in the dense flowState
// table; per-node rotation state lives in the per-port Stack units.
type egressState struct {
	kind          policy.EgressKind // flow-level discipline
	defaultWeight int
	quantum       int // flow-level DRR bytes per weight unit per visit

	// levels are the active intermediate levels, outermost first —
	// built once at construction (the unit counts are fixed);
	// SetEgress replaces kinds, quanta and weights in place.
	levels []levelCfg
	// tierWeights holds every tier's per-unit weights (len = the
	// tier's unit count, ≥ 1), whether or not the tier is active, so
	// SetClassWeight/SetTenantWeight always have a place to write.
	// Active levels alias their tier's slice.
	tierWeights [numTiers][]int32
	// hasLevelDRR caches whether any intermediate level runs DRR, so
	// the per-packet charge check is one bool load.
	hasLevelDRR bool

	// epoch versions the flowState deficits: SetEgress bumps it instead
	// of zeroing a million entries, and stale deficits read as 0.
	epoch uint32

	// audit, when non-nil (tests only), accumulates the net service
	// entitlement granted to each flow — quantum bytes for DRR, visit
	// packets for WRR — with forfeited credit subtracted back out, so a
	// conservation property can hold the pickers to served == granted −
	// outstanding, exactly. auditLevels mirrors it at the intermediate
	// levels (per-port audits slices, allocated with the Stack).
	audit       []int64
	auditLevels bool
}

// --- sched.Entity / sched.Hierarchy implementations ---

// The shard itself is the flow-level Entity: member ids are flow IDs
// indexing the dense flowState table. Pointer-shaped, so the interface
// conversion in the pick paths does not allocate.

func (s *shard) Next(id int32) int32    { return s.flows[id].next }
func (s *shard) SetNext(id, next int32) { s.flows[id].next = next }
func (s *shard) Prev(id int32) int32    { return s.flows[id].prev }
func (s *shard) SetPrev(id, prev int32) { s.flows[id].prev = prev }

func (s *shard) Weight(id int32) int64 {
	if w := s.flows[id].weight; w > 0 {
		return int64(w)
	}
	return int64(s.eg.defaultWeight)
}

func (s *shard) Deficit(id int32) int64 {
	fs := &s.flows[id]
	if fs.defEpoch != s.eg.epoch {
		return 0
	}
	return fs.deficit
}

func (s *shard) SetDeficit(id int32, d int64) {
	fs := &s.flows[id]
	fs.defEpoch = s.eg.epoch
	fs.deficit = d
}

func (s *shard) HeadBytes(id int32) (int64, bool) {
	bytes, _, err := s.m.PacketLen(queue.QueueID(id))
	if err != nil {
		return 0, false
	}
	return int64(bytes), true
}

func (s *shard) Audit(id int32, delta int64) {
	if s.eg.audit != nil {
		s.eg.audit[id] += delta
	}
}

// The portSched is the Stack's Hierarchy: level parameters and node
// weights come from the shard's level configuration, the leaf
// population is the shard's flow table. Pointer-shaped.

func (ps *portSched) Params(level int) sched.Params {
	lv := &ps.s.eg.levels[level]
	return sched.Params{Kind: lv.kind, Quantum: lv.quantum}
}

func (ps *portSched) Weight(level int, id int32) int64 {
	lv := &ps.s.eg.levels[level]
	if w := lv.weights[id%lv.mod]; w > 0 {
		return int64(w)
	}
	return 1
}

func (ps *portSched) LeafParams() sched.Params { return ps.s.flowParams() }
func (ps *portSched) Leaf() sched.Entity       { return ps.s }

func (ps *portSched) AuditNode(level int, id int32, delta int64) {
	if ps.audits != nil {
		ps.audits[level][id] += delta
	}
}

func (s *shard) flowParams() sched.Params {
	return sched.Params{Kind: s.eg.kind, Quantum: int64(s.eg.quantum)}
}

// pathOf appends flow's composite node index at every active level to
// buf (outermost first): the node at level k is the level-(k−1) node's
// index times the tier's unit count plus the flow's unit in that tier.
// Callers pass a stack-allocated buffer of numTiers capacity.
func (s *shard) pathOf(flow uint32, buf []int32) []int32 {
	fs := &s.flows[flow]
	idx := int32(0)
	for k := range s.eg.levels {
		lv := &s.eg.levels[k]
		u := fs.class
		if lv.tier == tierTenant {
			u = fs.tenant
		}
		idx = idx*lv.mod + u
		buf = append(buf, idx)
	}
	return buf
}

// --- configuration ---

// buildLevels constructs a shard's active-level skeleton from the
// engine's fixed tier unit counts: one levelCfg per tier with more than
// one unit, outermost first, with composite node counts accumulated
// through the nesting. Disciplines and quanta are filled by SetEgress.
func buildLevels(units [numTiers]int32, tw *[numTiers][]int32) []levelCfg {
	var levels []levelCfg
	count := int32(1)
	for t := 0; t < numTiers; t++ {
		if units[t] <= 1 {
			continue
		}
		count *= units[t]
		levels = append(levels, levelCfg{
			tier:    int8(t),
			mod:     units[t],
			count:   count,
			weights: tw[t],
		})
	}
	return levels
}

// resolveTierUnits derives the fixed tier unit counts from the egress
// configuration plus the engine-level NumTenants: each tier's unit
// count comes from its LevelSpec (tenant Units 0 defers to NumTenants;
// class Units 0 means flat), and NumTenants without a tenant spec
// synthesizes a round-robin tenant level. The returned config is the
// normalized one — every active tier has an explicit spec with its
// resolved unit count — so SetEgress's level matching is uniform.
func resolveTierUnits(cfg policy.EgressConfig, numTenants int) (policy.EgressConfig, [numTiers]int32, error) {
	units := [numTiers]int32{1, 1}
	if numTenants < 0 || numTenants > policy.MaxLevelUnits {
		return cfg, units, fmt.Errorf("engine: NumTenants %d out of range [0, %d]", numTenants, policy.MaxLevelUnits)
	}
	if ls := cfg.Level(policy.TierClass); ls != nil && ls.Units > 1 {
		units[tierClass] = int32(ls.Units)
	}
	tu := numTenants
	if ls := cfg.Level(policy.TierTenant); ls != nil {
		if ls.Units > 0 {
			if numTenants > 0 && ls.Units != numTenants {
				return cfg, units, fmt.Errorf("engine: tenant level Units %d does not match NumTenants %d", ls.Units, numTenants)
			}
			tu = ls.Units
		}
		if tu <= 0 {
			tu = 1
		}
		if tu > 1 {
			units[tierTenant] = int32(tu)
		}
		// Normalize: the spec carries its resolved unit count.
		spec := *ls
		spec.Units = tu
		cfg = cfg.WithLevel(spec)
	} else if tu > 1 {
		units[tierTenant] = int32(tu)
		cfg = cfg.WithLevel(policy.LevelSpec{Tier: policy.TierTenant, Kind: policy.EgressRR, Units: tu})
	}
	return cfg, units, nil
}

// SetEgress replaces the egress discipline on every shard, resetting
// rotation, visit and deficit state at every level. The hierarchy's
// unit counts are fixed at construction: a nil Levels leaves the
// intermediate levels' disciplines, quanta and weights untouched (only
// the flow level changes); a non-nil Levels must list every active tier
// (Units 0 or the configured count) and replaces their disciplines —
// each spec's Weights, when non-nil, replace that tier's weights.
// Per-flow weights set with SetWeight survive a discipline change. Safe
// while traffic flows.
func (e *Engine) SetEgress(cfg policy.EgressConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.WithDefaults()
	if cfg.Levels != nil {
		var seen [numTiers]bool
		for _, ls := range cfg.Levels {
			t := tierClass
			if ls.Tier == policy.TierTenant {
				t = tierTenant
			}
			units := ls.Units
			if units == 0 {
				units = int(e.tierUnits[t])
			}
			if units != int(e.tierUnits[t]) && !(units == 1 && e.tierUnits[t] <= 1) {
				return fmt.Errorf("engine: %s Units %d does not match the configured %d (the unit space is fixed at construction)",
					ls.Tier, ls.Units, e.tierUnits[t])
			}
			if len(ls.Weights) > int(e.tierUnits[t]) {
				return fmt.Errorf("engine: %d %s weights for %d units", len(ls.Weights), ls.Tier, e.tierUnits[t])
			}
			seen[t] = true
		}
		for t := 0; t < numTiers; t++ {
			if e.tierUnits[t] > 1 && !seen[t] {
				return fmt.Errorf("engine: egress Levels must list the active %s tier (%d units)", tierName(t), e.tierUnits[t])
			}
		}
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.eg.kind = cfg.Kind
			s.eg.defaultWeight = cfg.DefaultWeight
			s.eg.quantum = cfg.QuantumBytes
			if cfg.Levels != nil {
				for _, ls := range cfg.Levels {
					t := int8(tierClass)
					if ls.Tier == policy.TierTenant {
						t = tierTenant
					}
					for k := range s.eg.levels {
						lv := &s.eg.levels[k]
						if lv.tier != t {
							continue
						}
						lv.kind = ls.Kind
						lv.quantum = int64(ls.QuantumBytes)
						if ls.Weights != nil {
							w := s.eg.tierWeights[t]
							for i := range w {
								w[i] = 0
							}
							for i, x := range ls.Weights {
								w[i] = int32(x)
							}
						}
					}
				}
			}
			s.eg.hasLevelDRR = false
			for k := range s.eg.levels {
				if s.eg.levels[k].kind == policy.EgressDRR {
					s.eg.hasLevelDRR = true
				}
			}
			// Invalidate every flow deficit in O(1) instead of walking
			// the flow table.
			s.eg.epoch++
			for p := range s.ps {
				if s.ps[p].st.Ready() {
					s.ps[p].st.Reset()
				}
			}
		})
	}
	return nil
}

// SetWeight sets flow's egress weight for WRR (packets per visit) and DRR
// (quantum multiplier). Weights must be positive; flows default to the
// configured DefaultWeight. Unknown flows (outside the configured flow
// space) report ErrUnknownFlow. Safe while traffic flows.
func (e *Engine) SetWeight(flow uint32, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("engine: non-positive weight %d for flow %d", weight, flow)
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() { s.flows[flow].weight = int32(weight) })
	return nil
}

// setTierWeight sets a tier unit's weight for that level's WRR (packets
// per visit) and DRR (quantum multiplier) on every shard.
func (e *Engine) setTierWeight(tier, unit, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("engine: non-positive weight %d for %s %d", weight, tierName(tier), unit)
	}
	if unit < 0 || unit >= int(e.tierUnits[tier]) {
		return fmt.Errorf("engine: %s %d out of range [0, %d)", tierName(tier), unit, e.tierUnits[tier])
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() { s.eg.tierWeights[tier][unit] = int32(weight) })
	}
	return nil
}

// SetClassWeight sets class's weight for class-level WRR (packets per
// visit) and DRR (quantum multiplier) on every shard. Weights must be
// positive; classes default to weight 1 (or the class LevelSpec's
// Weights). Safe while traffic flows.
func (e *Engine) SetClassWeight(class, weight int) error {
	return e.setTierWeight(tierClass, class, weight)
}

// SetTenantWeight sets tenant's weight for tenant-level WRR (packets
// per visit) and DRR (quantum multiplier) on every shard. Weights must
// be positive; tenants default to weight 1 (or the tenant LevelSpec's
// Weights). Safe while traffic flows.
func (e *Engine) SetTenantWeight(tenant, weight int) error {
	return e.setTierWeight(tierTenant, tenant, weight)
}

// NumClasses returns the per-port class count (1 = flat).
func (e *Engine) NumClasses() int { return int(e.tierUnits[tierClass]) }

// NumTenants returns the tenant count (1 = no tenant level).
func (e *Engine) NumTenants() int { return int(e.tierUnits[tierTenant]) }

// setFlowTier moves flow into a tier unit. A backlogged flow moves with
// its queue: it leaves its old unit's active list — ending any open
// visit and forfeiting banked DRR deficit exactly as if it had drained,
// at every hierarchy level — and joins the new unit's rotation at the
// tail. Safe while traffic flows; per-flow FIFO is unaffected (the
// flow's shard does not change).
func (e *Engine) setFlowTier(flow uint32, tier, unit int) error {
	if unit < 0 || unit >= int(e.tierUnits[tier]) {
		return fmt.Errorf("engine: %s %d out of range [0, %d)", tierName(tier), unit, e.tierUnits[tier])
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() {
		fs := &s.flows[flow]
		cur := &fs.class
		if tier == tierTenant {
			cur = &fs.tenant
		}
		if int(*cur) == unit {
			return
		}
		active := fs.next != sched.None
		if active {
			s.clearActive(flow)
		}
		*cur = int32(unit)
		if active {
			s.setActive(flow)
		}
	})
	return nil
}

// SetFlowClass moves flow into class (all flows start in class 0). See
// setFlowTier for the re-homing semantics.
func (e *Engine) SetFlowClass(flow uint32, class int) error {
	return e.setFlowTier(flow, tierClass, class)
}

// SetFlowTenant moves flow into tenant (all flows start in tenant 0).
// See setFlowTier for the re-homing semantics.
func (e *Engine) SetFlowTenant(flow uint32, tenant int) error {
	return e.setFlowTier(flow, tierTenant, tenant)
}

// FlowClass returns the class flow is currently mapped to.
func (e *Engine) FlowClass(flow uint32) (int, error) {
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return 0, ErrUnknownFlow
	}
	s := e.shardOf(flow)
	var class int
	e.run(s, func() { class = int(s.flows[flow].class) })
	return class, nil
}

// FlowTenant returns the tenant flow is currently mapped to.
func (e *Engine) FlowTenant(flow uint32) (int, error) {
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return 0, ErrUnknownFlow
	}
	s := e.shardOf(flow)
	var tenant int
	e.run(s, func() { tenant = int(s.flows[flow].tenant) })
	return tenant, nil
}

// --- dequeue paths ---

// DequeueNext serves one packet chosen by the egress discipline,
// whichever port it belongs to. ok is false when the engine holds no
// packets. Release the data when done. On the synchronous datapath it
// allocates nothing beyond the pooled payload buffer, so per-packet
// drain loops stay allocation-free.
func (e *Engine) DequeueNext() (Dequeued, bool) {
	n := len(e.shards)
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	for i := 0; i < n; i++ {
		s := e.shards[(start+i)%n]
		for {
			switch e.mode.Load() {
			case modeClosed:
				return Dequeued{}, false
			case modeRing:
				if out := e.dequeueNextRing(s, anyPort, nil, 1); len(out) == 1 {
					return out[0], true
				}
			default:
				if !e.lockSync(s) {
					continue
				}
				d, ok := e.dequeuePicked(s, anyPort)
				s.mu.Unlock()
				if ok {
					return d, true
				}
			}
			break
		}
	}
	return Dequeued{}, false
}

// DequeueNextBatch serves up to max packets, choosing flows by the
// configured egress discipline across all ports. The starting shard
// rotates per call so shards share the egress bandwidth; within a shard,
// units and flows are picked by the level-stack discipline against the
// active lists. Buffers come from the engine pool — Release each
// packet's Data when done.
func (e *Engine) DequeueNextBatch(max int) []Dequeued {
	if max <= 0 {
		return nil
	}
	n := len(e.shards)
	// n is a power of two; mask before the int conversion so the uint32
	// cursor wrapping past 2^31 cannot go negative on 32-bit platforms.
	start := int((e.egCursor.Add(1) - 1) & uint32(n-1))
	if e.mode.Load() == modeRing {
		// One fan-out command per shard under a single completion; see
		// dequeueNextRingAll.
		return e.dequeueNextRingAll(start, max)
	}
	var out []Dequeued
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShard(e.shards[(start+i)%n], anyPort, out, max)
	}
	return out
}

// drainShard serves discipline-picked packets from one shard on one port
// (anyPort = all) until out reaches max or the shard has nothing
// servable, resolving the current datapath mode per attempt. Shared by
// the pull API (DequeueNextBatch) and the pacers (dequeuePort) so the
// mode-switch handling cannot diverge between them.
func (e *Engine) drainShard(s *shard, port int, out []Dequeued, max int) []Dequeued {
	for {
		switch e.mode.Load() {
		case modeClosed:
			return out
		case modeRing:
			return e.dequeueNextRing(s, port, out, max-len(out))
		default:
			if !e.lockSync(s) {
				continue // datapath switched under us: re-resolve the mode
			}
			for len(out) < max {
				d, ok := e.dequeuePicked(s, port)
				if !ok {
					break
				}
				out = append(out, d)
			}
			s.mu.Unlock()
			return out
		}
	}
}

// chargeLevels debits the bytes actually served on flow against every
// DRR intermediate level of the flow's scheduling unit, inside the
// shard's critical section. The picks' fit checks price on peeked
// estimates; charging actuals keeps the level conservation exact
// (served ≡ granted − deficit).
func (s *shard) chargeLevels(flow uint32, bytes int) {
	fs := &s.flows[flow]
	var pb [numTiers]int32
	s.ps[fs.port].st.Charge(s.pathOf(flow, pb[:0]), int64(bytes))
}

// dequeuePicked serves one packet picked by the level-stack discipline
// from shard s, inside s's critical section (mutex or worker). port
// selects the scheduling unit (anyPort rotates over all of them). ok is
// false when the shard has nothing servable on that port.
func (e *Engine) dequeuePicked(s *shard, port int) (Dequeued, bool) {
	for {
		flow, debit, ok := s.pickLocked(port)
		if !ok {
			return Dequeued{}, false
		}
		buf := e.getBuf()
		data, segs, err := s.m.DequeuePacketAppend(queue.QueueID(flow), buf)
		s.noteDequeue(segs, err)
		if err != nil {
			// The list said active but no complete packet is available
			// (raw-segment misuse): deactivate the flow so the pick loop
			// cannot spin on it. The DRR debit is not charged — nothing
			// was served — and any banked deficit is forfeited by
			// clearActive.
			e.putBuf(buf)
			s.clearActive(flow)
			continue
		}
		s.noteCopied(len(data))
		bytes := len(data)
		if !e.cfg.StoreData {
			bytes = segs * queue.SegmentBytes
		}
		if debit != 0 {
			// Flow-level DRR: charge the served packet against the flow's
			// deficit. The picker returns the debit rather than
			// pre-deducting so the charge lands if and only if the packet
			// was actually served — and so the bound-exhaustion fallback
			// pays for its packet too, driving the deficit negative
			// instead of transmitting for free (the debt delays the
			// flow's next service until its quanta cover it).
			s.SetDeficit(int32(flow), s.Deficit(int32(flow))-debit)
		}
		if s.eg.hasLevelDRR {
			s.chargeLevels(flow, bytes)
		}
		s.syncActive(flow)
		s.noteRemoveRes(flow, true)
		return Dequeued{Flow: flow, Data: data, Bytes: bytes}, true
	}
}

// ActiveFlows returns the number of flows with queued segments.
func (e *Engine) ActiveFlows() int {
	total := 0
	for _, s := range e.shards {
		s := s
		e.run(s, func() { total += s.activeFlows })
	}
	return total
}

// --- active-list maintenance (caller holds the shard's critical section) ---

// portOf returns the scheduling unit owning flow. The flows table is
// engine-wide but each entry is only touched inside the owning shard's
// critical section.
func (s *shard) portOf(flow uint32) int { return int(s.flows[flow].port) }

func (s *shard) isActive(flow uint32) bool { return s.flows[flow].next != sched.None }

// initPortLocked builds a port's level stack on its first active flow.
func (s *shard) initPortLocked(ps *portSched) {
	var counts [numTiers]int32
	c := counts[:0]
	for k := range s.eg.levels {
		c = append(c, s.eg.levels[k].count)
	}
	ps.st.Init(ps, c)
	if s.eg.auditLevels {
		s.initLevelAuditLocked(ps)
	}
}

// initLevelAuditLocked allocates a port unit's per-level audit slices
// (tests only), sized to each level's composite node count.
func (s *shard) initLevelAuditLocked(ps *portSched) {
	ps.audits = make([][]int64, ps.st.Depth())
	for k := range ps.audits {
		ps.audits[k] = make([]int64, ps.st.Width(k))
	}
}

func (s *shard) setActive(flow uint32) {
	fs := &s.flows[flow]
	if fs.next != sched.None {
		return
	}
	p := int(fs.port)
	ps := &s.ps[p]
	if !ps.st.Ready() {
		s.initPortLocked(ps)
	}
	var pb [numTiers]int32
	ps.st.Activate(int32(flow), s.pathOf(flow, pb[:0]))
	ps.activeFlows++
	s.activeFlows++
	// First traffic for this flow: an idle-parked port wants to know.
	// The flag check is one atomic load; the enqueue to the pacer only
	// happens while the port is actually parked.
	s.ports[p].notify()
}

func (s *shard) clearActive(flow uint32) {
	fs := &s.flows[flow]
	if fs.next == sched.None {
		return
	}
	ps := &s.ps[fs.port]
	var pb [numTiers]int32
	ps.st.Deactivate(int32(flow), s.pathOf(flow, pb[:0]))
	ps.activeFlows--
	s.activeFlows--
}

// syncActive reconciles flow's list membership with its queue occupancy.
func (s *shard) syncActive(flow uint32) {
	n, err := s.m.Len(queue.QueueID(flow))
	if err == nil && n > 0 {
		s.setActive(flow)
	} else {
		s.clearActive(flow)
	}
}

// --- picking (caller holds the shard's critical section) ---

// pickLocked returns the next flow the level-stack discipline serves on
// port (anyPort rotates across ports), plus the flow-level DRR byte
// debit to charge if the packet is actually served (0 for the
// packet-granular disciplines). The scheduler is work-conserving:
// whenever any flow is active on the selected port, a flow is returned.
func (s *shard) pickLocked(port int) (uint32, int64, bool) {
	if s.activeFlows == 0 {
		return 0, 0, false
	}
	if port == anyPort {
		n := len(s.ps)
		for i := 0; i < n; i++ {
			p := int(s.portCursor) % n
			s.portCursor++
			if s.ps[p].activeFlows > 0 {
				return s.pickPort(p)
			}
		}
		return 0, 0, false
	}
	if s.ps[port].activeFlows == 0 {
		return 0, 0, false
	}
	return s.pickPort(port)
}

// pickPort runs the hierarchy for one scheduling unit: the stack's
// levels pick top-down — outermost tier first, flows within the
// innermost winner. The port has at least one active flow. A flat
// configuration's stack has depth 0, so it pays nothing for the
// hierarchy.
func (s *shard) pickPort(port int) (uint32, int64, bool) {
	f, debit, ok := s.ps[port].st.Pick()
	if !ok {
		return 0, 0, false // unreachable while activeFlows > 0
	}
	return uint32(f), debit, true
}
