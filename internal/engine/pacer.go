package engine

// The per-shard timing-wheel pacer. Served ports used to burn one
// sleeping goroutine each, which caps the port space at "as many
// timers as the runtime tolerates"; instead, every port now homes to
// exactly one pacer (port index mod shard count) and a single goroutine
// per shard services all of its ports: runnable ports are served
// round-robin, shaped ports park on a hierarchical timing wheel until
// their token bucket recovers, and idle ports cost nothing until the
// enqueue path's notify re-queues them. 10k shaped ports cost one
// timer, not 10k goroutines.
//
// A port's entire service — every shard's scheduling unit — runs on its
// home pacer, so a Sink's Transmit is never concurrent with itself (the
// contract the per-port workers provided). The pacer is not a ring
// worker: it consumes the same drainShard path as the pull API, posting
// commands on the ring datapath and locking shard mutexes on the
// synchronous one.
//
// Wheel geometry: level 0 holds one slot per tick (1ms) for the next
// 256ms; level 1 holds 256ms-wide slots for the next ~65s and cascades
// into level 0 as the cursor wraps; later deadlines clamp to the wheel
// horizon and re-schedule on expiry. Shaper waits are almost always a
// few ticks, so scheduling is O(1) and the cascade is rare.
//
// Cross-thread handoff is one mutex-guarded pending list plus a
// capacity-1 wake channel: producers (notify), the control plane
// (Serve/Pause/Resume/SetPortRate/SetFlowPort kicks) and the pacer
// itself never contend for more than an append. Everything else —
// wheel, runnable queue, per-port bookkeeping — is goroutine-local.

import (
	"sync"
	"sync/atomic"
	"time"

	"npqm/internal/queue"
)

// pacerTick is the wheel granularity. Shaped ports wake at tick
// boundaries and transmit a tick's worth of bytes per wake
// (charge-after-send debt carries the remainder), so the long-run rate
// converges to the configured one for any packet mix while sub-tick
// gaps never put the pacer to sleep.
const pacerTick = time.Millisecond

const (
	wheelL0Bits   = 8
	wheelL0Slots  = 1 << wheelL0Bits // 256 ticks of 1ms
	wheelL1Slots  = 256              // 256 slots of 256ms ≈ 65s
	wheelMaxTicks = wheelL0Slots * wheelL1Slots
)

// Pacer-local port states.
const (
	psIdle     uint8 = iota // not tracked; notify/kicks re-queue it
	psRunnable              // queued for service this round
	psWaiting               // parked on the wheel until deadline[pi]
)

// pacer is one shard's port-service goroutine plus its mailbox. The
// struct exists for every shard from New (so notify and kicks always
// have a target); the goroutine and its wheel state start lazily on the
// first Serve of a port homed here.
type pacer struct {
	e    *Engine
	home int

	// Cross-thread mailbox, padded away from the read-only header above
	// and the goroutine-local wheel state below: every enqueue-path notify
	// lands here, and without the pads those stores would drag the pacer's
	// private wheel lines around the machine. layout_test.go pins the
	// distances.
	_       [hotPad]byte
	mu      sync.Mutex
	pending []int32       // port indices kicked since the last absorb
	wake    chan struct{} // capacity 1; nudges a sleeping pacer

	// coalesced counts notifies that found the wake channel already full —
	// merged into the pending signal, not lost (the pacer re-absorbs the
	// mailbox after every wake, so a merged notify is still served; the
	// no-strand regression test holds it to that). Surfaces in
	// Stats.CoalescedWakes.
	coalesced atomic.Uint64

	started bool // a goroutine is running; guarded by e.lifeMu

	_ [hotPad]byte

	// Everything below is touched only by the pacer goroutine.
	state    []uint8
	deadline []int64 // due tick while state == psWaiting
	wslot    []int32 // wheel slot: [0,256) = L0, 256+ = L1
	wnext    []int32 // intrusive wheel-slot list links
	wprev    []int32
	l0       []int32 // slot heads (port index or -1)
	l1       []int32
	curTick  int64
	waiting  int // ports parked on the wheel
	runnable []int32
	nextRun  []int32
	pendBuf  []int32
	out      []Dequeued
	outv     []DequeuedView
	timer    *time.Timer
}

func newPacer(e *Engine, home int) *pacer {
	return &pacer{e: e, home: home, wake: make(chan struct{}, 1)}
}

// enqueue queues a port for the pacer's attention and wakes it. Called
// from any goroutine; this is the only cross-thread entry point.
func (pc *pacer) enqueue(pi int32) {
	pc.mu.Lock()
	pc.pending = append(pc.pending, pi)
	pc.mu.Unlock()
	select {
	case pc.wake <- struct{}{}:
	default:
		// The channel already carries a wake: this notify coalesces into
		// it. Not lost — the port is in pending, and the pacer drains the
		// whole mailbox on every wake — but counted, so a deployment can
		// see how much signaling the capacity-1 channel absorbs.
		pc.coalesced.Add(1)
	}
}

// start spawns the pacer goroutine once; caller holds e.lifeMu and has
// checked the engine is not closed.
func (pc *pacer) start() {
	if pc.started {
		return
	}
	pc.started = true
	pc.e.portWG.Add(1)
	go pc.e.pacerLoop(pc)
}

func (pc *pacer) nowTick() int64 {
	return int64(time.Since(pc.e.epoch) / pacerTick)
}

// pacerLoop is the per-shard service loop: absorb kicks, advance the
// wheel, serve a round of runnable ports, sleep until the next deadline
// or wake.
func (e *Engine) pacerLoop(pc *pacer) {
	defer func() {
		// Parity with the per-port workers' exit: ports homed here stop
		// reading as served once the engine shuts their pacer down.
		for _, p := range e.ports {
			if p.pc == pc {
				p.serving.Store(false)
			}
		}
		e.portWG.Done()
	}()
	n := len(e.ports)
	pc.state = make([]uint8, n)
	pc.deadline = make([]int64, n)
	pc.wslot = make([]int32, n)
	pc.wnext = make([]int32, n)
	pc.wprev = make([]int32, n)
	pc.l0 = make([]int32, wheelL0Slots)
	pc.l1 = make([]int32, wheelL1Slots)
	for i := range pc.l0 {
		pc.l0[i] = -1
	}
	for i := range pc.l1 {
		pc.l1[i] = -1
	}
	pc.curTick = pc.nowTick()
	pc.timer = time.NewTimer(time.Hour)
	if !pc.timer.Stop() {
		<-pc.timer.C
	}
	timerLive := false
	for {
		pc.absorb()
		pc.advance(pc.nowTick())
		if len(pc.runnable) > 0 {
			pc.serveRound()
			select {
			case <-e.portStop:
				return
			default:
			}
			continue
		}
		d, any := pc.nextDelay()
		if any {
			pc.timer.Reset(d)
			timerLive = true
		}
		select {
		case <-pc.timer.C:
			timerLive = false
		case <-pc.wake:
			if timerLive && !pc.timer.Stop() {
				<-pc.timer.C
			}
			timerLive = false
		case <-e.portStop:
			return
		}
	}
}

// absorb drains the cross-thread mailbox into the goroutine-local
// structures, de-duplicating against each port's current state.
func (pc *pacer) absorb() {
	pc.mu.Lock()
	pend := append(pc.pendBuf[:0], pc.pending...)
	pc.pending = pc.pending[:0]
	pc.mu.Unlock()
	pc.pendBuf = pend
	for _, pi := range pend {
		switch pc.state[pi] {
		case psRunnable:
			// Already queued this round.
		case psWaiting:
			// A kick outruns the wheel (rate change, resume, re-homed
			// flow): re-evaluate the port now.
			pc.unschedule(pi)
			pc.makeRunnable(pi)
		default:
			pc.makeRunnable(pi)
		}
	}
}

func (pc *pacer) makeRunnable(pi int32) {
	pc.state[pi] = psRunnable
	pc.runnable = append(pc.runnable, pi)
}

// schedule parks port pi on the wheel until tick t (clamped to the
// wheel horizon; a clamped port re-schedules when its slot expires).
func (pc *pacer) schedule(pi int32, t int64) {
	if t <= pc.curTick {
		pc.makeRunnable(pi)
		return
	}
	if t-pc.curTick >= wheelMaxTicks {
		t = pc.curTick + wheelMaxTicks - 1
	}
	pc.state[pi] = psWaiting
	pc.deadline[pi] = t
	var slot int32
	if t-pc.curTick < wheelL0Slots {
		slot = int32(t & (wheelL0Slots - 1))
	} else {
		slot = wheelL0Slots + int32((t>>wheelL0Bits)%wheelL1Slots)
	}
	pc.wslot[pi] = slot
	head := pc.slotHead(slot)
	pc.wnext[pi] = *head
	pc.wprev[pi] = -1
	if *head >= 0 {
		pc.wprev[*head] = pi
	}
	*head = pi
	pc.waiting++
}

func (pc *pacer) slotHead(slot int32) *int32 {
	if slot < wheelL0Slots {
		return &pc.l0[slot]
	}
	return &pc.l1[slot-wheelL0Slots]
}

// unschedule removes a waiting port from its wheel slot.
func (pc *pacer) unschedule(pi int32) {
	next, prev := pc.wnext[pi], pc.wprev[pi]
	if prev >= 0 {
		pc.wnext[prev] = next
	} else {
		*pc.slotHead(pc.wslot[pi]) = next
	}
	if next >= 0 {
		pc.wprev[next] = prev
	}
	pc.waiting--
}

// advance moves the wheel cursor to now, making due ports runnable and
// cascading level-1 slots into level 0 as the cursor wraps.
func (pc *pacer) advance(now int64) {
	if pc.waiting == 0 {
		// Empty wheel: jump, so a long-idle pacer does not replay every
		// tick it slept through.
		if now > pc.curTick {
			pc.curTick = now
		}
		return
	}
	for pc.curTick < now {
		pc.curTick++
		if pc.curTick&(wheelL0Slots-1) == 0 {
			pc.cascade(int32((pc.curTick >> wheelL0Bits) % wheelL1Slots))
		}
		slot := pc.curTick & (wheelL0Slots - 1)
		for pi := pc.l0[slot]; pi >= 0; {
			next := pc.wnext[pi]
			pc.waiting--
			pc.makeRunnable(pi)
			pi = next
		}
		pc.l0[slot] = -1
	}
}

// cascade re-distributes a level-1 slot's ports by their exact
// deadlines — into level 0, the runnable queue, or (for clamped
// far-future deadlines that wrapped) back into level 1.
func (pc *pacer) cascade(slot int32) {
	pi := pc.l1[slot]
	pc.l1[slot] = -1
	for pi >= 0 {
		next := pc.wnext[pi]
		pc.waiting--
		pc.schedule(pi, pc.deadline[pi])
		pi = next
	}
}

// nextDelay returns how long the pacer may sleep before the earliest
// waiting port is due; any is false when no port waits on the wheel.
func (pc *pacer) nextDelay() (time.Duration, bool) {
	if pc.waiting == 0 {
		return 0, false
	}
	best := int64(-1)
	for t := pc.curTick + 1; t < pc.curTick+wheelL0Slots; t++ {
		if pc.l0[t&(wheelL0Slots-1)] >= 0 {
			best = t
			break
		}
	}
	if best < 0 {
		// Sleep to the next non-empty level-1 slot's cascade time; the
		// wake cascades it and computes the exact remainder.
		cur := pc.curTick >> wheelL0Bits
		for j := int64(1); j <= wheelL1Slots; j++ {
			if pc.l1[(cur+j)%wheelL1Slots] >= 0 {
				best = (cur + j) << wheelL0Bits
				break
			}
		}
	}
	if best < 0 {
		// waiting > 0 guarantees a slot above; defensive fallback.
		best = pc.curTick + 1
	}
	d := time.Duration(best)*pacerTick - time.Since(pc.e.epoch)
	// Overshoot slightly so the firing timer lands past the tick
	// boundary instead of a hair before it.
	d += pacerTick / 4
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, true
}

// serveRound serves every runnable port once, round-robin. Ports that
// want more service re-queue onto the next round's list; shaped ports
// out of budget park on the wheel; drained ports go idle.
func (pc *pacer) serveRound() {
	run := pc.runnable
	pc.runnable = pc.nextRun[:0]
	for _, pi := range run {
		pc.state[pi] = psIdle
		pc.servePortOnce(pi)
	}
	pc.nextRun = run[:0]
}

// tickAfter converts a shaper wait into an absolute due tick, rounding
// up so the port never wakes before its bucket recovers.
func (pc *pacer) tickAfter(wait time.Duration) int64 {
	t := int64((time.Since(pc.e.epoch) + wait + pacerTick - 1) / pacerTick)
	if t <= pc.curTick {
		t = pc.curTick + 1
	}
	return t
}

// servePortOnce gives port pi one service round: up to a burst of
// packets (bounded by the shaper's byte budget for the coming tick),
// then decides where the port goes next — runnable, wheel, or idle.
func (pc *pacer) servePortOnce(pi int32) {
	e := pc.e
	p := e.ports[pi]
	if !p.serving.Load() || p.paused.Load() {
		// A paused port holds its backlog; Resume (or a fresh Serve)
		// kicks the pacer, so no state needs to be kept here.
		return
	}
	box := p.sink.Load()
	if box == nil {
		return
	}
	if box.sinkV != nil {
		pc.servePortViews(pi, p, box)
		return
	}
	shaped := p.sh.enabled()
	budget := int64(1) << 62
	if shaped {
		b, wait := p.sh.budget(time.Now(), pacerTick)
		if b <= 0 {
			p.throttled.Add(1)
			pc.schedule(pi, pc.tickAfter(wait))
			return
		}
		budget = b
	}
	sent := int64(0)
	pkts := 0
	for pkts < unshapedBatch {
		max := unshapedBatch - pkts
		if shaped {
			// Packet-at-a-time under shaping: the byte budget is checked
			// between packets, so the bucket overdraws by at most one
			// packet (the charge-after-send debt that keeps the long-run
			// rate exact).
			max = 1
		}
		pc.out = e.dequeuePort(p, pc.out[:0], max)
		if len(pc.out) == 0 {
			// Nothing servable: declare intent to park, then scan once
			// more. The scan enters every shard's critical section, so a
			// producer whose setActive preceded our scan is seen by it,
			// and one whose setActive follows our scan observes
			// idle=true (the store below happens-before our lock
			// acquisitions) and re-queues us via notify.
			p.idle.Store(true)
			pc.out = e.dequeuePort(p, pc.out[:0], max)
			if len(pc.out) == 0 {
				// Idle spells are not pacing jitter: the next departure
				// starts a fresh gap sequence.
				p.txLastNs.Store(0)
				return // parked; notify will bring the port back
			}
			p.idle.Store(false)
		}
		for i := range pc.out {
			d := pc.out[i]
			pc.out[i] = Dequeued{}
			if err := box.sink.Transmit(d); err != nil {
				// The link died mid-burst: the erroring packet belongs to
				// the sink (Transmit owns its buffer either way); the rest
				// of the batch — already dequeued — is released so the
				// buffers are not leaked. Those packets count as dequeued
				// but not transmitted, like frames lost on a failing
				// link. The port stops being served (Serve re-arms it).
				for j := i + 1; j < len(pc.out); j++ {
					e.putBuf(pc.out[j].Data)
					pc.out[j] = Dequeued{}
				}
				p.serving.Store(false)
				return
			}
			p.txPackets.Add(1)
			p.txBytes.Add(uint64(d.Bytes))
			if shaped {
				p.sh.charge(d.Bytes)
				p.noteDeparture(time.Now().UnixNano())
			}
			sent += int64(d.Bytes)
			pkts++
		}
		if shaped && sent >= budget {
			break
		}
	}
	if shaped {
		if _, wait := p.sh.budget(time.Now(), pacerTick); wait > 0 {
			p.throttled.Add(1)
			pc.schedule(pi, pc.tickAfter(wait))
			return
		}
	}
	// The burst filled (or the bucket still has credit): more backlog is
	// likely — stay runnable and let the next empty scan park the port.
	pc.makeRunnable(pi)
}

// servePortViews is servePortOnce's burst loop for a port served through
// ServeViews: packets cross as zero-copy views instead of reassembled
// buffers. Pacing, idle parking and error handling mirror the copy loop
// exactly; the only delivery difference is the reference discipline — the
// engine's reference is dropped as soon as SendView returns (success or
// error), so a sink that completes transmission asynchronously must
// Retain the view before returning.
func (pc *pacer) servePortViews(pi int32, p *port, box *sinkBox) {
	e := pc.e
	shaped := p.sh.enabled()
	budget := int64(1) << 62
	if shaped {
		b, wait := p.sh.budget(time.Now(), pacerTick)
		if b <= 0 {
			p.throttled.Add(1)
			pc.schedule(pi, pc.tickAfter(wait))
			return
		}
		budget = b
	}
	sent := int64(0)
	pkts := 0
	// One pool transaction per burst: the engine's references are dropped
	// per packet as SendView returns, but the chains ride the accumulator
	// back to the store in bulk.
	var rel queue.ViewReleaser
	defer rel.Flush()
	for pkts < unshapedBatch {
		max := unshapedBatch - pkts
		if shaped {
			// Packet-at-a-time under shaping, exactly as the copy loop:
			// the bucket overdraws by at most one packet.
			max = 1
		}
		pc.outv = e.dequeuePortViews(p, pc.outv[:0], max)
		if len(pc.outv) == 0 {
			// Park intent plus one more scan — the same idle handshake as
			// the copy loop; see servePortOnce for why the double scan
			// cannot strand a producer's notify.
			p.idle.Store(true)
			pc.outv = e.dequeuePortViews(p, pc.outv[:0], max)
			if len(pc.outv) == 0 {
				// Idle spells are not pacing jitter (see the copy loop).
				p.txLastNs.Store(0)
				return // parked; notify will bring the port back
			}
			p.idle.Store(false)
		}
		for i := range pc.outv {
			d := pc.outv[i]
			pc.outv[i] = DequeuedView{}
			err := box.sinkV.SendView(p.idx, d)
			// Drop the engine's reference whether the sink succeeded or
			// not; an erroring sink that kept the view retained it first.
			rel.Add(d.View)
			if err != nil {
				// The link died mid-burst: the rest of the batch — already
				// dequeued — is released so the lent segments return to the
				// pool. Those packets count as dequeued but not
				// transmitted, like frames lost on a failing link.
				for j := i + 1; j < len(pc.outv); j++ {
					rel.Add(pc.outv[j].View)
					pc.outv[j] = DequeuedView{}
				}
				p.serving.Store(false)
				return
			}
			p.txPackets.Add(1)
			p.txBytes.Add(uint64(d.Bytes))
			if shaped {
				p.sh.charge(d.Bytes)
				p.noteDeparture(time.Now().UnixNano())
			}
			sent += int64(d.Bytes)
			pkts++
		}
		if shaped && sent >= budget {
			break
		}
	}
	if shaped {
		if _, wait := p.sh.budget(time.Now(), pacerTick); wait > 0 {
			p.throttled.Add(1)
			pc.schedule(pi, pc.tickAfter(wait))
			return
		}
	}
	pc.makeRunnable(pi)
}
