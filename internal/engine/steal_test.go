package engine

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/queue"
	"npqm/internal/traffic"
)

// seqPayload encodes a per-flow sequence number so FIFO can be audited
// after the fact.
func seqPayload(seq uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b, seq)
	return b
}

// runSkewed drives a zipf-skewed load through the ring datapath and
// returns the per-worker max busy share plus total stolen commands. Two
// producers own disjoint flow subsets (even/odd), so per-flow sequence
// numbers are single-writer; a concurrent consumer audits per-flow FIFO
// while stealing is active, and the leftover backlog is audited again
// after the drain.
func runSkewed(t *testing.T, steal bool) (maxShare float64, stolen uint64) {
	t.Helper()
	const (
		flows      = 512
		perProd    = 15000
		producers  = 2
		segments   = 4096
		shardCount = 4
	)
	e, err := New(Config{
		Shards:      shardCount,
		NumFlows:    flows,
		NumSegments: segments,
		StoreData:   true,
		WorkSteal:   steal,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	// lastSeen[flow] is the last audited sequence number + 1; the single
	// consumer and the post-drain sweep are serialized, so plain writes.
	lastSeen := make([]uint32, flows)
	audit := func(flow uint32, data []byte) {
		seq := binary.LittleEndian.Uint32(data)
		if seq < lastSeen[flow] {
			t.Errorf("flow %d: seq %d after %d — per-flow FIFO violated", flow, seq, lastSeen[flow]-1)
		}
		lastSeen[flow] = seq + 1
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // consumer: keeps the pool drained, audits FIFO online
		defer wg.Done()
		for {
			batch := e.DequeueNextBatch(64)
			for _, d := range batch {
				audit(d.Flow, d.Data)
				e.ReleaseBuffer(d.Data)
			}
			select {
			case <-stop:
				if len(batch) == 0 {
					return
				}
			default:
				if len(batch) == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
	}()

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			dist, err := traffic.NewFlowDist(traffic.FlowDistConfig{
				Kind: traffic.FlowZipf, Flows: flows / producers,
				Skew: 1.8, Seed: uint64(p + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			seqs := make([]uint32, flows)
			for i := 0; i < perProd; i++ {
				// Disjoint flow spaces: producer p owns flows ≡ p (mod producers).
				flow := dist.Next()*producers + uint32(p)
				if err := e.EnqueueAsync(flow, seqPayload(seqs[flow])); err != nil {
					t.Error(err)
					return
				}
				seqs[flow]++
			}
		}(p)
	}
	prodWG.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after skewed run (steal=%v): %v", steal, err)
	}
	st := e.Stats()
	if st.EnqueuedSegments != st.DequeuedSegments+st.PushedOutSegments+uint64(st.QueuedSegments) {
		t.Fatalf("segment conservation: enq %d != deq %d + pushed %d + resident %d",
			st.EnqueuedSegments, st.DequeuedSegments, st.PushedOutSegments, st.QueuedSegments)
	}

	var busy, maxBusy int64
	for _, ss := range e.ShardStats() {
		busy += ss.WorkerBusyNs
		if ss.WorkerBusyNs > maxBusy {
			maxBusy = ss.WorkerBusyNs
		}
		stolen += ss.StolenCommands
	}
	if busy == 0 {
		t.Fatalf("no worker busy time recorded (steal=%v)", steal)
	}
	return float64(maxBusy) / float64(busy), stolen
}

// TestWorkStealConservationFIFO is the rebalancing race test: zipf skew,
// stealing active, a concurrent FIFO audit, and the engine-wide
// conservation invariants — meant to run under -race -shuffle=on.
func TestWorkStealConservationFIFO(t *testing.T) {
	share, stolen := runSkewed(t, true)
	t.Logf("steal=on: max busy share %.3f, stolen commands %d", share, stolen)
}

// TestWorkStealReducesMaxBusyShare holds stealing to its scaling claim:
// under zipf skew the hottest worker's share of total busy time must drop
// when stealing is on. Timing-based, so it gets a few attempts before
// failing.
func TestWorkStealReducesMaxBusyShare(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	const attempts = 3
	for i := 1; ; i++ {
		off, _ := runSkewed(t, false)
		on, stolen := runSkewed(t, true)
		t.Logf("attempt %d: max busy share off=%.3f on=%.3f, stolen=%d", i, off, on, stolen)
		if stolen > 0 && on < off {
			return
		}
		if i == attempts {
			t.Fatalf("stealing did not reduce the max busy share after %d attempts (off=%.3f on=%.3f stolen=%d)",
				attempts, off, on, stolen)
		}
	}
}

// TestBusyPollParksWhenIdle: busy-poll mode must not leak a spinning CPU —
// once traffic stops, every worker exhausts its bounded spin budget and
// parks on the ring's wake channel.
func TestBusyPollParksWhenIdle(t *testing.T) {
	e, err := New(Config{Shards: 2, NumFlows: 64, NumSegments: 256, StoreData: true, BusyPoll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for f := uint32(0); f < 16; f++ {
		if err := e.EnqueueAsync(f, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// Traffic has stopped; busyPollSpins yields bound how long a worker
	// may keep polling. Generous deadline: the budget is microseconds even
	// on a loaded machine.
	deadline := time.Now().Add(5 * time.Second)
	for {
		parked := 0
		for _, s := range e.shards {
			if s.ring.Parked() {
				parked++
			}
		}
		if parked == len(e.shards) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d busy-poll workers parked after idle deadline", parked, len(e.shards))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExecBatchCoalescesFinishes is the white-box contract of the wakeup
// coalescing: a drained batch carrying several commands of one completion
// costs that completion a single countdown decrement (and so at most one
// producer wakeup), with the merged decrements counted on the shard.
func TestExecBatchCoalescesFinishes(t *testing.T) {
	e := newTest(t, 1, 16, 64)
	defer e.Close()
	s := e.shards[0]
	w := newWorkerScratch()

	co := &call{done: make(chan struct{}, 1)}
	co.pending.Store(5) // 4 commands + the poster's hold
	co2 := &call{done: make(chan struct{}, 1)}
	co2.pending.Store(2) // 1 command + the poster's hold

	// An interleaved run: co, co, co2, co, co — the flush must merge all
	// four co decrements into one regardless of interleaving.
	cmds := []command{
		{kind: opBarrier, co: co},
		{kind: opBarrier, co: co},
		{kind: opBarrier, co: co2},
		{kind: opBarrier, co: co},
		{kind: opBarrier, co: co},
	}
	e.execBatch(s, cmds, w)

	if got := co.pending.Load(); got != 1 {
		t.Errorf("co.pending = %d after flush, want 1 (poster's hold)", got)
	}
	if got := co2.pending.Load(); got != 1 {
		t.Errorf("co2.pending = %d after flush, want 1", got)
	}
	if got := s.coalescedWakes.Load(); got != 3 {
		t.Errorf("coalescedWakes = %d, want 3 (four co decrements merged into one)", got)
	}
	// Neither completion may have been signalled: the posters still hold.
	select {
	case <-co.done:
		t.Error("co signalled while the poster's hold was outstanding")
	case <-co2.done:
		t.Error("co2 signalled while the poster's hold was outstanding")
	default:
	}
}

// TestPacerNotifyBurstNoStrand: a burst of notifies and kicks landing
// while the pacer is mid-drain overflows the capacity-1 wake channel —
// those signals must coalesce (counted), never strand a runnable port.
func TestPacerNotifyBurstNoStrand(t *testing.T) {
	e, err := New(Config{Shards: 1, NumFlows: 16, NumSegments: 512, StoreData: true, NumPorts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const flowA, flowB = 0, 1
	if err := e.SetFlowPort(flowB, 1); err != nil {
		t.Fatal(err)
	}

	var txA, txB atomic.Uint64
	slow := SinkFunc(func(d Dequeued) error {
		time.Sleep(500 * time.Microsecond) // keep the pacer mid-drain
		txA.Add(1)
		e.ReleaseBuffer(d.Data)
		return nil
	})
	fast := SinkFunc(func(d Dequeued) error {
		txB.Add(1)
		e.ReleaseBuffer(d.Data)
		return nil
	})
	if err := e.Serve(0, slow); err != nil {
		t.Fatal(err)
	}
	if err := e.Serve(1, fast); err != nil {
		t.Fatal(err)
	}

	const nA, nB = 40, 10
	for i := 0; i < nA; i++ {
		if _, err := e.EnqueuePacket(flowA, []byte("aaaa")); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-drain: port 0's sink is sleeping between packets. Land port 1's
	// traffic plus a kick storm now, so most wake sends find the channel
	// full and coalesce.
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < nB; i++ {
		if _, err := e.EnqueuePacket(flowB, []byte("bb")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := e.Resume(1); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for txA.Load() < nA || txB.Load() < nB {
		if time.Now().After(deadline) {
			t.Fatalf("stranded port: transmitted A=%d/%d B=%d/%d", txA.Load(), nA, txB.Load(), nB)
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.Stats().CoalescedWakes; got == 0 {
		t.Error("kick storm produced no coalesced wakes — the burst never overflowed the wake channel")
	}
}

// TestWorkStealSyncFallback: the steal knob must not disturb the
// synchronous datapath or the closed-mode observation surface.
func TestWorkStealSyncFallback(t *testing.T) {
	e, err := New(Config{Shards: 2, NumFlows: 32, NumSegments: 128, StoreData: true, WorkSteal: true, BusyPoll: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnqueuePacket(3, []byte("pre-start")); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	data, err := e.DequeuePacket(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "pre-start" {
		t.Fatalf("payload %q, want %q", data, "pre-start")
	}
	e.ReleaseBuffer(data)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DequeuePacket(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("DequeuePacket after Close: %v, want ErrClosed", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = queue.ErrQueueEmpty // keep the import meaningful if assertions change
}
