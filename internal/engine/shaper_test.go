package engine

// Unit tests of the token bucket, driven with an explicit clock.

import (
	"testing"
	"time"

	"npqm/internal/policy"
)

// TestShaperHighRateRefillNoOverflow is the regression for the refill
// overflow: at rates above ~8.6 GB/s the exact ns×rate product no longer
// fits int64, so the conversion must switch to float64 instead of
// wrapping negative and stalling the port. 12.5 GB/s is 100 Gbps — a
// plausible modeled line rate well inside the validator's bound.
func TestShaperHighRateRefillNoOverflow(t *testing.T) {
	epoch := time.Now()
	sh := newShaper(policy.ShaperConfig{RateBytesPerSec: 12_500_000_000, BurstBytes: 1 << 20}, epoch)
	sh.charge(1<<20 + 1000) // drain the bucket into debt
	now := epoch.Add(900 * time.Millisecond)
	if d := sh.ready(now); d != 0 {
		t.Fatalf("100 Gbps shaper not ready after 900ms idle: wait %v", d)
	}
	if _, burst, tokens := sh.occupancy(now); tokens != burst {
		t.Fatalf("bucket holds %d tokens after a long idle, want full burst %d", tokens, burst)
	}
}

func TestShaperPacingArithmetic(t *testing.T) {
	epoch := time.Now()
	sh := newShaper(policy.ShaperConfig{RateBytesPerSec: 1000, BurstBytes: 100}, epoch)
	// Fresh bucket is full: ready immediately.
	if d := sh.ready(epoch); d != 0 {
		t.Fatalf("fresh bucket not ready: %v", d)
	}
	// 600 bytes of debt beyond the 100-byte burst → 500 bytes short →
	// 500ms at 1000 B/s.
	sh.charge(600)
	if d := sh.ready(epoch); d != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", d)
	}
	// Half the wait elapses: half the debt remains.
	if d := sh.ready(epoch.Add(250 * time.Millisecond)); d != 250*time.Millisecond {
		t.Fatalf("wait after 250ms = %v, want 250ms", d)
	}
	// Debt repaid exactly: ready with an empty bucket.
	if d := sh.ready(epoch.Add(500 * time.Millisecond)); d != 0 {
		t.Fatalf("wait after 500ms = %v, want 0", d)
	}
	// An unshaped reconfiguration is always ready and never charges.
	sh.configure(policy.ShaperConfig{}, epoch)
	sh.charge(1 << 30)
	if d := sh.ready(epoch); d != 0 {
		t.Fatalf("unshaped bucket not ready: %v", d)
	}
}
