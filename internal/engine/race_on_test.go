//go:build race

package engine

// raceEnabled reports whether the race detector is active. Alloc-count
// pins are skipped under -race: the race-mode sync.Pool intentionally
// drops a fraction of Puts to expose races, so pooled paths allocate.
const raceEnabled = true
