package engine

// Tests of the port-level transmit subsystem: flow→port mapping,
// push-mode delivery through Serve, token-bucket pacing, pause/resume
// flow control, and the interplay with both datapaths and Close.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npqm/internal/policy"
	"npqm/internal/queue"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// countingSink tallies deliveries per flow and releases the buffers.
type countingSink struct {
	e  *Engine
	mu sync.Mutex
	n  int
	by map[uint32]int
}

func newCountingSink(e *Engine) *countingSink {
	return &countingSink{e: e, by: make(map[uint32]int)}
}

func (c *countingSink) Transmit(d Dequeued) error {
	c.mu.Lock()
	c.n++
	c.by[d.Flow]++
	c.mu.Unlock()
	c.e.ReleaseBuffer(d.Data)
	return nil
}

func (c *countingSink) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func TestPortConfigValidation(t *testing.T) {
	base := Config{NumSegments: 64}
	bad := []Config{
		{NumSegments: 64, NumPorts: -1},
		{NumSegments: 64, NumPorts: MaxPorts + 1},
		{NumSegments: 64, PortRate: policy.ShaperConfig{RateBytesPerSec: -5}},
		{NumSegments: 64, PortRate: policy.ShaperConfig{BurstBytes: 100}}, // burst without rate
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	e, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPorts() != 1 {
		t.Fatalf("default NumPorts = %d, want 1", e.NumPorts())
	}
}

func TestServeDeliversBacklogAndLiveTraffic(t *testing.T) {
	e, err := New(Config{Shards: 4, NumFlows: 64, NumSegments: 2048, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 3*queue.SegmentBytes)
	// Backlog before the worker exists.
	for f := uint32(0); f < 16; f++ {
		if _, err := e.EnqueuePacket(f, pkt); err != nil {
			t.Fatal(err)
		}
	}
	sink := newCountingSink(e)
	if err := e.Serve(0, sink); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "backlog delivery", func() bool { return sink.count() == 16 })
	// Live traffic must wake the parked worker.
	for f := uint32(16); f < 32; f++ {
		if _, err := e.EnqueuePacket(f, pkt); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 5*time.Second, "live delivery", func() bool { return sink.count() == 32 })
	st := e.Stats()
	if st.TransmittedPackets != 32 || st.TransmittedPackets != st.DequeuedPackets {
		t.Fatalf("transmitted %d / dequeued %d, want 32/32", st.TransmittedPackets, st.DequeuedPackets)
	}
	if st.TransmittedBytes != 32*uint64(len(pkt)) {
		t.Fatalf("transmitted %d bytes, want %d", st.TransmittedBytes, 32*len(pkt))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPortPartition(t *testing.T) {
	for _, datapath := range []string{"sync", "ring"} {
		t.Run(datapath, func(t *testing.T) {
			const ports = 4
			const flows = 64
			e, err := New(Config{Shards: 4, NumFlows: flows, NumSegments: 4096, StoreData: true, NumPorts: ports})
			if err != nil {
				t.Fatal(err)
			}
			for f := uint32(0); f < flows; f++ {
				if err := e.SetFlowPort(f, int(f)%ports); err != nil {
					t.Fatal(err)
				}
			}
			if datapath == "ring" {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
			}
			sinks := make([]*countingSink, ports)
			for p := 0; p < ports; p++ {
				sinks[p] = newCountingSink(e)
				if err := e.Serve(p, sinks[p]); err != nil {
					t.Fatal(err)
				}
			}
			pkt := make([]byte, queue.SegmentBytes)
			const per = 8
			for i := 0; i < per; i++ {
				for f := uint32(0); f < flows; f++ {
					if _, err := e.EnqueuePacket(f, pkt); err != nil {
						t.Fatal(err)
					}
				}
			}
			total := func() int {
				n := 0
				for _, s := range sinks {
					n += s.count()
				}
				return n
			}
			waitUntil(t, 10*time.Second, "all ports drained", func() bool { return total() == flows*per })
			// Strict partition: a port transmitted only its own flows.
			for p, s := range sinks {
				s.mu.Lock()
				for f, n := range s.by {
					if int(f)%ports != p {
						t.Errorf("port %d transmitted flow %d (%d packets) belonging to port %d", p, f, n, int(f)%ports)
					}
				}
				if s.n != flows/ports*per {
					t.Errorf("port %d transmitted %d packets, want %d", p, s.n, flows/ports*per)
				}
				s.mu.Unlock()
			}
			pst := e.PortStats()
			for p := 0; p < ports; p++ {
				if pst[p].TransmittedPackets != uint64(flows/ports*per) {
					t.Errorf("PortStats[%d].TransmittedPackets = %d, want %d", p, pst[p].TransmittedPackets, flows/ports*per)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShapedPortPacesDelivery(t *testing.T) {
	e, err := New(Config{
		Shards: 1, NumFlows: 8, NumSegments: 4096, StoreData: true,
		PortRate: policy.ShaperConfig{RateBytesPerSec: 1 << 20, BurstBytes: 1024}, // 1 MiB/s, 1 KiB burst
	})
	if err != nil {
		t.Fatal(err)
	}
	const pktBytes = 1024
	const packets = 60 // ~60 KiB − 1 KiB burst → ≥ ~57ms at 1 MiB/s
	pkt := make([]byte, pktBytes)
	for i := 0; i < packets; i++ {
		if _, err := e.EnqueuePacket(uint32(i%4), pkt); err != nil {
			t.Fatal(err)
		}
	}
	sink := newCountingSink(e)
	start := time.Now()
	if err := e.Serve(0, sink); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 30*time.Second, "shaped drain", func() bool { return sink.count() == packets })
	elapsed := time.Since(start)
	// The schedule says ~57ms; demand only half to stay robust on loaded
	// CI machines (which can only make it slower, never faster).
	if min := 28 * time.Millisecond; elapsed < min {
		t.Fatalf("shaped port drained %d KiB in %v, want ≥ %v at 1 MiB/s", packets*pktBytes/1024, elapsed, min)
	}
	st := e.Stats()
	if st.Throttled == 0 {
		t.Fatal("shaped drain recorded no throttled waits")
	}
	pst := e.PortStats()[0]
	if pst.RateBytesPerSec != 1<<20 || pst.BurstBytes != 1024 {
		t.Fatalf("shaper config in PortStats = %d/%d", pst.RateBytesPerSec, pst.BurstBytes)
	}
	if pst.ShaperTokens > pst.BurstBytes {
		t.Fatalf("shaper tokens %d above burst %d", pst.ShaperTokens, pst.BurstBytes)
	}
	// The pacing left an inter-departure jitter trace: most of the ~59
	// gaps run on the ~1ms/packet schedule, so the mean sits well above
	// 100µs (a loaded CI machine stretches gaps, never shrinks them) and
	// within the run's own wall clock.
	if pst.GapSamples == 0 || pst.GapSamples >= packets {
		t.Fatalf("shaped drain recorded %d gap samples, want within (0, %d)", pst.GapSamples, packets)
	}
	if pst.MeanGapNs < 100_000 || pst.MeanGapNs > uint64(elapsed.Nanoseconds()) {
		t.Fatalf("mean inter-departure gap %dns, want within [100µs, %v]", pst.MeanGapNs, elapsed)
	}
	if pst.P99GapNs == 0 {
		t.Fatal("paced drain reported a zero p99 inter-departure gap")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnshapedPortRecordsNoJitter: the jitter meter prices shaper
// pacing; an unshaped port's burst-mode departures must not feed it.
func TestUnshapedPortRecordsNoJitter(t *testing.T) {
	e, err := New(Config{Shards: 1, NumFlows: 8, NumSegments: 512, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	sink := newCountingSink(e)
	if err := e.Serve(0, sink); err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 256)
	const packets = 32
	for i := 0; i < packets; i++ {
		if _, err := e.EnqueuePacket(uint32(i%4), pkt); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 10*time.Second, "unshaped drain", func() bool { return sink.count() == packets })
	if pst := e.PortStats()[0]; pst.GapSamples != 0 || pst.MeanGapNs != 0 || pst.P99GapNs != 0 {
		t.Fatalf("unshaped port recorded jitter %+v, want none", pst)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPauseHoldsBacklogResumeReleases(t *testing.T) {
	e, err := New(Config{Shards: 2, NumFlows: 16, NumSegments: 512, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	sink := newCountingSink(e)
	if err := e.Serve(0, sink); err != nil {
		t.Fatal(err)
	}
	if err := e.Pause(0); err != nil {
		t.Fatal(err)
	}
	if paused, _ := e.Paused(0); !paused {
		t.Fatal("port not reported paused")
	}
	pkt := make([]byte, queue.SegmentBytes)
	for f := uint32(0); f < 8; f++ {
		if _, err := e.EnqueuePacket(f, pkt); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	if n := sink.count(); n != 0 {
		t.Fatalf("paused port transmitted %d packets", n)
	}
	if st := e.Stats(); st.QueuedSegments != 8 {
		t.Fatalf("paused backlog = %d segments, want 8", st.QueuedSegments)
	}
	if err := e.Resume(0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "post-resume drain", func() bool { return sink.count() == 8 })
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetFlowPortMovesBacklog(t *testing.T) {
	e, err := New(Config{Shards: 2, NumFlows: 16, NumSegments: 512, StoreData: true, NumPorts: 2})
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, queue.SegmentBytes)
	for i := 0; i < 4; i++ {
		if _, err := e.EnqueuePacket(5, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if p, err := e.FlowPort(5); err != nil || p != 0 {
		t.Fatalf("FlowPort(5) = (%d, %v), want (0, nil)", p, err)
	}
	// Only port 1 is served: nothing moves while the flow sits on port 0.
	sink := newCountingSink(e)
	if err := e.Serve(1, sink); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if n := sink.count(); n != 0 {
		t.Fatalf("port 1 transmitted %d packets of a port-0 flow", n)
	}
	if err := e.SetFlowPort(5, 1); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "re-homed backlog", func() bool { return sink.count() == 4 })
	if p, _ := e.FlowPort(5); p != 1 {
		t.Fatalf("FlowPort(5) = %d after move, want 1", p)
	}
	pst := e.PortStats()
	if pst[0].ActiveFlows != 0 {
		t.Fatalf("port 0 still reports %d active flows", pst[0].ActiveFlows)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServeErrorsAndSinkStop(t *testing.T) {
	e, err := New(Config{Shards: 1, NumFlows: 8, NumSegments: 128, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Serve(3, SinkFunc(func(Dequeued) error { return nil })); err == nil {
		t.Error("out-of-range port accepted")
	}
	if err := e.Serve(0, nil); err == nil {
		t.Error("nil sink accepted")
	}
	if err := e.SetFlowPort(999, 0); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("SetFlowPort(999) err = %v, want ErrUnknownFlow", err)
	}
	if err := e.SetFlowPort(0, 7); err == nil {
		t.Error("out-of-range target port accepted")
	}
	if err := e.SetPortRate(0, policy.ShaperConfig{RateBytesPerSec: -1}); err == nil {
		t.Error("invalid shaper config accepted")
	}
	// A sink error stops the worker mid-burst: the erroring packet
	// belongs to the sink, the rest of the picked batch is released (not
	// transmitted), and the port can be served again to finish the job.
	for i := 0; i < 10; i++ {
		if _, err := e.EnqueuePacket(uint32(1+i%4), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	var stopped atomic.Bool
	failing := SinkFunc(func(d Dequeued) error {
		e.ReleaseBuffer(d.Data)
		stopped.Store(true)
		return errors.New("link down")
	})
	if err := e.Serve(0, failing); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "sink error stop", func() bool { return stopped.Load() && !e.ports[0].serving.Load() })
	if tx := e.PortStats()[0].TransmittedPackets; tx != 0 {
		t.Fatalf("failing sink still counted %d transmissions", tx)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after mid-burst sink failure: %v", err)
	}
	sink2 := newCountingSink(e)
	if err := e.Serve(0, sink2); err != nil {
		t.Fatalf("re-Serve after sink stop: %v", err)
	}
	waitUntil(t, 5*time.Second, "remaining backlog", func() bool {
		return e.Stats().QueuedSegments == 0
	})
	if err := e.Serve(0, SinkFunc(func(Dequeued) error { return nil })); err == nil {
		t.Error("double Serve accepted")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Serve(0, SinkFunc(func(Dequeued) error { return nil })); !errors.Is(err, ErrClosed) {
		t.Errorf("Serve after Close err = %v, want ErrClosed", err)
	}
}

func TestPullAPIDrainsAllPorts(t *testing.T) {
	// The legacy pull path serves every port's flows, rotating.
	e, err := New(Config{Shards: 2, NumFlows: 32, NumSegments: 512, StoreData: true, NumPorts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for f := uint32(0); f < 32; f++ {
		if err := e.SetFlowPort(f, int(f)%3); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnqueuePacket(f, make([]byte, queue.SegmentBytes)); err != nil {
			t.Fatal(err)
		}
	}
	served := 0
	for {
		batch := e.DequeueNextBatch(7)
		if len(batch) == 0 {
			break
		}
		for _, d := range batch {
			served++
			e.ReleaseBuffer(d.Data)
		}
	}
	if served != 32 {
		t.Fatalf("pull path served %d of 32 packets across 3 ports", served)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPortsConcurrentChurn runs producers, four served ports, runtime
// reconfiguration (pause/resume, reshape, flow re-homing) and both
// datapaths under the race detector, then closes and checks conservation:
// every packet that entered either left through a port or is resident.
func TestPortsConcurrentChurn(t *testing.T) {
	for _, datapath := range []string{"sync", "ring"} {
		t.Run(datapath, func(t *testing.T) {
			const ports = 4
			const flows = 128
			e, err := New(Config{
				Shards: 4, NumFlows: flows, NumSegments: 2048, StoreData: true,
				NumPorts: ports,
				PortRate: policy.ShaperConfig{RateBytesPerSec: 1 << 28, BurstBytes: 1 << 16},
				Egress:   policy.EgressConfig{Kind: policy.EgressDRR, QuantumBytes: 256},
			})
			if err != nil {
				t.Fatal(err)
			}
			for f := uint32(0); f < flows; f++ {
				if err := e.SetFlowPort(f, int(f)%ports); err != nil {
					t.Fatal(err)
				}
			}
			if datapath == "ring" {
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
			}
			sinks := make([]*countingSink, ports)
			for p := 0; p < ports; p++ {
				sinks[p] = newCountingSink(e)
				if err := e.Serve(p, sinks[p]); err != nil {
					t.Fatal(err)
				}
			}
			const producers = 3
			const perProducer = 4000
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					pkt := make([]byte, 2*queue.SegmentBytes)
					for i := 0; i < perProducer; i++ {
						f := uint32(p*37+i*11) % flows
						_, err := e.EnqueuePacket(f, pkt)
						if err != nil && !errors.Is(err, queue.ErrNoFreeSegments) {
							t.Errorf("producer: %v", err)
							return
						}
					}
				}(p)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					p := i % ports
					switch i % 5 {
					case 0:
						_ = e.Pause(p)
					case 1:
						_ = e.Resume(p)
					case 2:
						_ = e.SetPortRate(p, policy.ShaperConfig{RateBytesPerSec: 1 << 30})
					case 3:
						_ = e.SetPortRate(p, policy.ShaperConfig{})
					default:
						f := uint32(i*3) % flows
						_ = e.SetFlowPort(f, (int(f)+1)%ports)
					}
					time.Sleep(100 * time.Microsecond)
				}
				// Leave everything running and unpaused for the drain.
				for p := 0; p < ports; p++ {
					_ = e.Resume(p)
					_ = e.SetPortRate(p, policy.ShaperConfig{})
				}
			}()
			wg.Wait()
			if datapath == "ring" {
				if err := e.Drain(); err != nil {
					t.Fatal(err)
				}
			}
			waitUntil(t, 30*time.Second, "ports to drain the backlog", func() bool {
				st := e.Stats()
				return st.QueuedSegments == 0
			})
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			delivered := uint64(0)
			for _, s := range sinks {
				delivered += uint64(s.count())
			}
			if delivered != st.DequeuedPackets || delivered != st.TransmittedPackets {
				t.Fatalf("sinks saw %d packets, engine dequeued %d, transmitted %d",
					delivered, st.DequeuedPackets, st.TransmittedPackets)
			}
			if st.EnqueuedSegments != st.DequeuedSegments {
				t.Fatalf("conservation: enq %d segments != deq %d after full drain",
					st.EnqueuedSegments, st.DequeuedSegments)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
