package engine

import (
	"errors"

	"npqm/internal/queue"
)

// This file implements the batched command path. A network processor never
// handles one packet at a time: the dispatch loop pulls a burst from the
// receive ring and issues the whole burst at once. Batching matters to the
// sharded engine for the same reason hardware pipelining matters to the
// MMS — the fixed per-command overhead is paid once per shard per burst
// instead of once per packet. On the synchronous datapath that overhead is
// a mutex acquisition; on the ring datapath it is one posted command and
// one shared completion countdown per shard touched, so a 64-packet burst
// costs the producer a handful of ring slots and a single wakeup.

// EnqueueReq is one packet of an EnqueueBatch.
type EnqueueReq struct {
	Flow uint32
	Data []byte
}

// errRingRetry marks a batch slot the worker deliberately left unprocessed
// (a stop-the-bucket condition was hit earlier in the same bucket); the
// poster replays those slots in order through the per-packet path. Never
// escapes to callers.
var errRingRetry = errors.New("engine: batch slot deferred to per-packet path")

// buckets groups batch indices by owning shard so each shard is entered
// once. The bucket slices — and the error scratch batch walks record
// outcomes in — are recycled between calls through a pool.
type buckets struct {
	byShard [][]int32
	errs    []error // all-nil between uses; handed to the caller on failure
}

func (e *Engine) getBuckets() *buckets {
	if v := e.bucketPool.Get(); v != nil {
		b := v.(*buckets)
		if len(b.byShard) == len(e.shards) {
			return b
		}
	}
	return &buckets{byShard: make([][]int32, len(e.shards))}
}

func (e *Engine) putBuckets(b *buckets) {
	for i := range b.byShard {
		b.byShard[i] = b.byShard[i][:0]
	}
	e.bucketPool.Put(b)
}

// errSlots returns the recycled error scratch, grown to n all-nil slots.
// The scratch stays pooled only while it holds no errors: a batch that
// fails hands the slice to its caller (see EnqueueBatch), so pooled
// scratches are all-nil by construction — error slots are never scrubbed on
// the happy path.
func (b *buckets) errSlots(n int) []error {
	if cap(b.errs) < n {
		b.errs = make([]error, n)
	}
	return b.errs[:n]
}

// EnqueueBatch enqueues every request in batch, bucketing by shard and
// entering each shard once. A nil errs means every packet was accepted;
// otherwise errs is aligned with the batch and errs[i] is nil when batch[i]
// was accepted. Relative order of packets on the same flow is preserved, so
// per-flow FIFO holds across batches too. It returns the total number of
// segments linked.
//
// The all-accepted path performs no allocation: outcomes are recorded in a
// pooled scratch that is recycled when it comes back clean and handed to
// the caller (replaced lazily) when it does not.
//
// When an LQD arrival needs push-out eviction the batch degrades to the
// per-packet path for the rest of that shard's bucket: eviction must run
// outside the shard's critical section (the victim may live on another
// shard), and processing later same-flow packets inline would break
// per-flow FIFO.
func (e *Engine) EnqueueBatch(batch []EnqueueReq) (segments int, errs []error) {
	if len(batch) == 0 {
		return 0, nil
	}
	if e.mode.Load() == modeClosed {
		errs = make([]error, len(batch))
		for i := range errs {
			errs[i] = ErrClosed
		}
		return 0, errs
	}
	b := e.getBuckets()
	errs = b.errSlots(len(batch))
	for i, req := range batch {
		si := e.ShardOf(req.Flow)
		b.byShard[si] = append(b.byShard[si], int32(i))
	}
	if e.mode.Load() == modeRing {
		segments = e.enqueueBatchRing(batch, errs, b)
	} else {
		segments = e.enqueueBatchSync(batch, errs, b)
	}
	for _, err := range errs {
		if err != nil {
			// The scratch escapes to the caller; drop it from the pool so
			// the recycled scratch invariant (all slots nil) holds.
			b.errs = nil
			e.putBuckets(b)
			return segments, errs
		}
	}
	e.putBuckets(b)
	return segments, nil
}

// enqueueBatchSync is the mutex-datapath bucket walk.
func (e *Engine) enqueueBatchSync(batch []EnqueueReq, errs []error, b *buckets) (segments int) {
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		slow := 0 // count of leading indices handled inside the bucket
		if e.lockSync(s) {
			for _, i := range idxs {
				n, err := s.enqueueLocked(batch[i].Flow, batch[i].Data)
				if err == errWantPushOut || //nolint:errorlint // internal sentinel, never wrapped
					(err != nil && errors.Is(err, queue.ErrNoFreeSegments) && e.store.Free() > 0) {
					// Push-out eviction or a stranded-cache flush must run
					// outside the critical section; hand the rest of the
					// bucket to the per-packet path.
					break
				}
				slow++
				if err != nil {
					errs[i] = err
					continue
				}
				segments += n
			}
			s.mu.Unlock()
		}
		// Everything the bucket walk did not finish — including the whole
		// bucket when the datapath switched under us — replays in order
		// through the per-packet path, which resolves the current mode.
		for _, i := range idxs[slow:] {
			n, err := e.EnqueuePacket(batch[i].Flow, batch[i].Data)
			if err != nil {
				errs[i] = err
				continue
			}
			segments += n
		}
	}
	return segments
}

// enqueueBatchRing posts one command per touched shard, all sharing one
// completion: the worker walks its bucket run-to-completion and the caller
// wakes once. Slots a worker could not finish inline (push-out eviction or
// a stranded pool) come back marked errRingRetry and replay in order
// through the per-packet path.
func (e *Engine) enqueueBatchRing(batch []EnqueueReq, errs []error, b *buckets) (segments int) {
	c := e.getCall()
	var want int32
	for _, idxs := range b.byShard {
		if len(idxs) > 0 {
			want++
		}
	}
	c.pending.Store(want + 1)
	posted := int32(0)
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		idxs := idxs
		cmd := command{kind: opCall, co: c, fn: func() {
			for k, i := range idxs {
				n, err := s.enqueueLocked(batch[i].Flow, batch[i].Data)
				if err == errWantPushOut || //nolint:errorlint // internal sentinel, never wrapped
					(err != nil && errors.Is(err, queue.ErrNoFreeSegments) && e.store.Free() > 0) {
					for _, j := range idxs[k:] {
						errs[j] = errRingRetry
					}
					return
				}
				if err != nil {
					errs[i] = err
					continue
				}
				c.segs.Add(int64(n))
			}
		}}
		if e.post(s, cmd) != nil {
			for _, i := range idxs {
				errs[i] = ErrClosed
			}
			continue
		}
		posted++
	}
	c.release(want - posted + 1)
	segments = int(c.segs.Load())
	e.putCall(c)
	// Replay the deferred slots in order; EnqueuePacket runs the eviction
	// or flush orchestration and re-resolves the datapath mode.
	for i := range errs {
		if errs[i] == errRingRetry { //nolint:errorlint // internal sentinel, never wrapped
			n, err := e.EnqueuePacket(batch[i].Flow, batch[i].Data)
			errs[i] = err
			if err == nil {
				segments += n
			}
		}
	}
	return segments
}

// DequeueBatch dequeues the head packet of every listed flow, bucketing by
// shard. Results are aligned with flows: pkts[i] is the reassembled payload
// (from the engine's buffer pool — Release it when done) and errs[i] is nil
// on success. A flow listed twice yields its first two packets in order.
func (e *Engine) DequeueBatch(flows []uint32) (pkts [][]byte, errs []error) {
	if len(flows) == 0 {
		return nil, nil
	}
	pkts = make([][]byte, len(flows))
	errs = make([]error, len(flows))
	if e.mode.Load() == modeClosed {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return pkts, errs
	}
	b := e.getBuckets()
	for i, flow := range flows {
		si := e.ShardOf(flow)
		b.byShard[si] = append(b.byShard[si], int32(i))
	}
	if e.mode.Load() == modeRing {
		e.dequeueBatchRing(flows, pkts, errs, b)
	} else {
		e.dequeueBatchSync(flows, pkts, errs, b)
	}
	e.putBuckets(b)
	return pkts, errs
}

// dequeueBatchSync is the mutex-datapath bucket walk.
func (e *Engine) dequeueBatchSync(flows []uint32, pkts [][]byte, errs []error, b *buckets) {
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		if !e.lockSync(s) {
			// Datapath switched under us: replay this bucket per-packet.
			for _, i := range idxs {
				data, err := e.DequeuePacket(flows[i])
				pkts[i], errs[i] = data, err
			}
			continue
		}
		for _, i := range idxs {
			buf := e.getBuf()
			out, n, err := s.m.DequeuePacketAppend(queue.QueueID(flows[i]), buf)
			s.noteDequeue(n, err)
			if err != nil {
				e.putBuf(buf)
				errs[i] = err
				continue
			}
			s.noteCopied(len(out))
			s.syncActive(flows[i])
			s.noteRemoveRes(flows[i], true)
			pkts[i] = out
		}
		s.mu.Unlock()
	}
}

// dequeueBatchRing posts one command per touched shard under a shared
// completion; each worker fills its bucket's result slots directly.
func (e *Engine) dequeueBatchRing(flows []uint32, pkts [][]byte, errs []error, b *buckets) {
	c := e.getCall()
	var want int32
	for _, idxs := range b.byShard {
		if len(idxs) > 0 {
			want++
		}
	}
	c.pending.Store(want + 1)
	posted := int32(0)
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		idxs := idxs
		cmd := command{kind: opCall, co: c, fn: func() {
			for _, i := range idxs {
				buf := e.getBuf()
				out, n, err := s.m.DequeuePacketAppend(queue.QueueID(flows[i]), buf)
				s.noteDequeue(n, err)
				if err != nil {
					e.putBuf(buf)
					errs[i] = err
					continue
				}
				s.noteCopied(len(out))
				s.syncActive(flows[i])
				s.noteRemoveRes(flows[i], true)
				pkts[i] = out
			}
		}}
		if e.post(s, cmd) != nil {
			for _, i := range idxs {
				errs[i] = ErrClosed
			}
			continue
		}
		posted++
	}
	c.release(want - posted + 1)
	e.putCall(c)
}
