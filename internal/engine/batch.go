package engine

import (
	"errors"

	"npqm/internal/queue"
)

// This file implements the batched command path. A network processor never
// handles one packet at a time: the dispatch loop pulls a burst from the
// receive ring and issues the whole burst at once. Batching matters to the
// sharded engine for the same reason hardware pipelining matters to the
// MMS — the fixed per-command overhead (here, a mutex acquisition; there,
// command-FIFO handshakes) is paid once per shard per burst instead of once
// per packet.

// EnqueueReq is one packet of an EnqueueBatch.
type EnqueueReq struct {
	Flow uint32
	Data []byte
}

// buckets groups batch indices by owning shard so each shard is locked once.
// The bucket slices are recycled between calls through a pool.
type buckets struct {
	byShard [][]int32
}

func (e *Engine) getBuckets() *buckets {
	if v := e.bucketPool.Get(); v != nil {
		b := v.(*buckets)
		if len(b.byShard) == len(e.shards) {
			return b
		}
	}
	return &buckets{byShard: make([][]int32, len(e.shards))}
}

func (e *Engine) putBuckets(b *buckets) {
	for i := range b.byShard {
		b.byShard[i] = b.byShard[i][:0]
	}
	e.bucketPool.Put(b)
}

// EnqueueBatch enqueues every request in batch, bucketing by shard and
// taking each shard lock once. Results are aligned with the batch: errs[i]
// is nil when batch[i] was accepted. Relative order of packets on the same
// flow is preserved, so per-flow FIFO holds across batches too. It returns
// the total number of segments linked.
//
// When an LQD arrival needs push-out eviction the batch degrades to the
// per-packet path for the rest of that shard's bucket: eviction must run
// with no shard lock held (the victim may live on another shard), and
// processing later same-flow packets inline would break per-flow FIFO.
func (e *Engine) EnqueueBatch(batch []EnqueueReq) (segments int, errs []error) {
	if len(batch) == 0 {
		return 0, nil
	}
	errs = make([]error, len(batch))
	b := e.getBuckets()
	for i, req := range batch {
		si := e.ShardOf(req.Flow)
		b.byShard[si] = append(b.byShard[si], int32(i))
	}
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		slow := -1 // first index needing lock-free slow-path handling
		s.mu.Lock()
		for k, i := range idxs {
			n, err := s.enqueueLocked(batch[i].Flow, batch[i].Data)
			if err == errWantPushOut || //nolint:errorlint // internal sentinel, never wrapped
				(err != nil && errors.Is(err, queue.ErrNoFreeSegments) && e.store.Free() > 0) {
				// Push-out eviction or a stranded-cache flush must run with
				// no shard lock held; hand the rest of the bucket to the
				// per-packet path.
				slow = k
				break
			}
			if err != nil {
				errs[i] = err
				continue
			}
			segments += n
		}
		s.mu.Unlock()
		if slow >= 0 {
			for _, i := range idxs[slow:] {
				n, err := e.EnqueuePacket(batch[i].Flow, batch[i].Data)
				if err != nil {
					errs[i] = err
					continue
				}
				segments += n
			}
		}
	}
	e.putBuckets(b)
	return segments, errs
}

// DequeueBatch dequeues the head packet of every listed flow, bucketing by
// shard. Results are aligned with flows: pkts[i] is the reassembled payload
// (from the engine's buffer pool — Release it when done) and errs[i] is nil
// on success. A flow listed twice yields its first two packets in order.
func (e *Engine) DequeueBatch(flows []uint32) (pkts [][]byte, errs []error) {
	if len(flows) == 0 {
		return nil, nil
	}
	pkts = make([][]byte, len(flows))
	errs = make([]error, len(flows))
	b := e.getBuckets()
	for i, flow := range flows {
		si := e.ShardOf(flow)
		b.byShard[si] = append(b.byShard[si], int32(i))
	}
	for si, idxs := range b.byShard {
		if len(idxs) == 0 {
			continue
		}
		s := e.shards[si]
		s.mu.Lock()
		for _, i := range idxs {
			buf := e.getBuf()
			out, n, err := s.m.DequeuePacketAppend(queue.QueueID(flows[i]), buf)
			s.noteDequeue(n, err)
			if err != nil {
				e.putBuf(buf)
				errs[i] = err
				continue
			}
			s.syncActive(flows[i])
			pkts[i] = out
		}
		s.mu.Unlock()
	}
	e.putBuckets(b)
	return pkts, errs
}
