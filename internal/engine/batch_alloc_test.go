package engine

import (
	"testing"

	"npqm/internal/queue"
)

// The batch enqueue path must not allocate per call when every packet is
// accepted: bucket slices and the error scratch are pooled, a nil errs is
// returned instead of a fresh all-nil slice, and the queue layer builds
// chains from a reusable run buffer. Pinned here so a stray make() on the
// burst path shows up as a test failure instead of a benchmark regression.
func TestEnqueueBatchNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts by design; alloc pin is meaningless")
	}
	// The pool holds every packet the measured runs enqueue (101 bursts of
	// 32 MTU packets, 24 segments each), so the measured function is pure
	// accepted-path EnqueueBatch with no draining in the loop.
	e := newTest(t, 4, 64, 1<<17)
	pkt := make([]byte, 1500)
	batch := make([]EnqueueReq, 32)
	for i := range batch {
		batch[i] = EnqueueReq{Flow: uint32(i % 16), Data: pkt}
	}
	// Warm the pools (buckets, error scratch, per-manager run buffers)
	// before measuring.
	if _, errs := e.EnqueueBatch(batch); errs != nil {
		t.Fatalf("warmup enqueue failed: %v", errs)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, errs := e.EnqueueBatch(batch)
		if errs != nil {
			t.Fatalf("batch enqueue failed: %v", errs)
		}
	})
	if allocs > 0 {
		t.Errorf("EnqueueBatch allocated %.1f times per burst, want 0", allocs)
	}
	// Drain everything back and check conservation end to end.
	flows := make([]uint32, len(batch))
	for i := range flows {
		flows[i] = batch[i].Flow
	}
	for e.Stats().QueuedSegments > 0 {
		pkts, _ := e.DequeueBatch(flows)
		got := false
		for _, p := range pkts {
			if p != nil {
				got = true
				e.ReleaseBuffer(p)
			}
		}
		if !got {
			break
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A batch that fails keeps the aligned-errs contract: the returned slice
// matches the batch and only the refused slots are non-nil. The scratch
// that recorded the failure must not be recycled — a later clean batch
// would otherwise report stale errors.
func TestEnqueueBatchErrAliasing(t *testing.T) {
	e := newTest(t, 2, 64, 64)
	big := make([]byte, 65*queue.SegmentBytes) // more than the whole pool
	_, errs := e.EnqueueBatch([]EnqueueReq{
		{Flow: 1, Data: make([]byte, 64)},
		{Flow: 2, Data: big},
	})
	if errs == nil || errs[1] == nil {
		t.Fatalf("oversized packet not refused: %v", errs)
	}
	held := errs // caller retains the error slice
	if _, errs := e.EnqueueBatch([]EnqueueReq{{Flow: 3, Data: make([]byte, 64)}}); errs != nil {
		t.Fatalf("clean batch returned errors: %v", errs)
	}
	if held[1] == nil {
		t.Error("held error slice was scrubbed by a later batch")
	}
}
