package engine

// The port-level transmit subsystem. The paper's queue manager feeds
// output ports: its transmission interface drains per-port FIFOs at line
// rate, with the scheduler deciding which flow each port serves next.
// This file is that interface in software. Every flow belongs to exactly
// one port (Config.NumPorts, SetFlowPort; all flows start on port 0),
// each (shard, port) pair owns a scheduling unit (see egress.go), and a
// port served through Serve gets a dedicated egress worker: it picks via
// the configured discipline, paces against the port's token-bucket shaper
// (see shaper.go), and pushes reassembled packets into the registered
// Sink — push-mode delivery with backpressure, where the old
// DequeueNextBatch pull loop survives as the unported path.
//
// Pause/Resume model link-level flow control (a paused port holds its
// backlog and transmits nothing); SetPortRate reshapes at runtime. Idle
// and paused workers park on a wake channel: the enqueue path's
// setActive notifies a parked worker with one atomic flag check, so an
// idle port costs nothing per packet elsewhere and nothing while idle.

import (
	"fmt"
	"sync/atomic"
	"time"

	"npqm/internal/policy"
)

// MaxPorts bounds Config.NumPorts: per-port scheduling state is allocated
// per shard, so the port space is a configuration constant, not a dynamic
// resource.
const MaxPorts = 4096

// Sink consumes the packets a served port transmits. Transmit may block —
// that is the backpressure path; the port worker will not pick another
// packet until it returns. Returning a non-nil error stops the port's
// worker (the port can be Served again). Transmit always runs on the
// port's worker goroutine, never concurrently with itself.
type Sink interface {
	Transmit(d Dequeued) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(d Dequeued) error

// Transmit implements Sink.
func (f SinkFunc) Transmit(d Dequeued) error { return f(d) }

// port is one output port: shaper, worker parking state, and transmit
// counters. The scheduling state lives in the shards (one portSched per
// (shard, port) pair).
type port struct {
	idx int
	sh  *shaper

	paused  atomic.Bool
	serving atomic.Bool   // a Serve worker is running
	waiting atomic.Bool   // the worker is parked awaiting traffic
	wake    chan struct{} // capacity 1; nudges a parked/paused worker

	shardCursor uint32 // rotating start shard; only the worker touches it

	txPackets atomic.Uint64
	txBytes   atomic.Uint64
	throttled atomic.Uint64 // times the worker slept on the shaper
}

// notify wakes the port's worker if (and only if) it is parked waiting
// for traffic. Called from setActive inside shard critical sections, so
// the no-worker and worker-busy cases must stay one atomic load.
func (p *port) notify() {
	if p.waiting.CompareAndSwap(true, false) {
		p.kick()
	}
}

// kick nudges the worker unconditionally (Pause/Resume/SetPortRate/
// SetFlowPort): a parked or sleeping worker re-evaluates, a running one
// sees a buffered token and re-loops once — harmless.
func (p *port) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// portAt validates a port index.
func (e *Engine) portAt(port int) (*port, error) {
	if port < 0 || port >= len(e.ports) {
		return nil, fmt.Errorf("engine: port %d out of range [0, %d)", port, len(e.ports))
	}
	return e.ports[port], nil
}

// NumPorts returns the configured output-port count.
func (e *Engine) NumPorts() int { return len(e.ports) }

// SetFlowPort moves flow onto port (all flows start on port 0). A
// backlogged flow moves with its queue: its active bit transfers to the
// new port's scheduling unit, any open visit on the old port ends, and
// banked DRR deficit is forfeited exactly as if the flow had drained.
// Safe while traffic flows; per-flow FIFO is unaffected (the flow's
// shard does not change).
func (e *Engine) SetFlowPort(flow uint32, port int) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() {
		if s.portOf(flow) == port {
			return
		}
		active := s.isActive(flow)
		if active {
			s.clearActive(flow)
		}
		s.flowPort[flow] = int32(port)
		if active {
			s.setActive(flow)
		}
	})
	p.kick()
	return nil
}

// FlowPort returns the port flow is currently mapped to.
func (e *Engine) FlowPort(flow uint32) (int, error) {
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return 0, ErrUnknownFlow
	}
	s := e.shardOf(flow)
	var port int
	e.run(s, func() { port = s.portOf(flow) })
	return port, nil
}

// SetPortRate reshapes port at runtime: rate 0 removes shaping, a
// positive rate installs a freshly filled bucket (burst defaulting per
// policy.ShaperConfig). Safe while the port transmits.
func (e *Engine) SetPortRate(port int, cfg policy.ShaperConfig) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	p.sh.configure(cfg, time.Now())
	p.kick()
	return nil
}

// Pause stops port's transmission: its worker parks, its backlog holds.
// Packets keep accumulating on the port's flows (admission still
// applies). Idempotent.
func (e *Engine) Pause(port int) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	p.paused.Store(true)
	p.kick()
	return nil
}

// Resume reverses Pause. Idempotent.
func (e *Engine) Resume(port int) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	p.paused.Store(false)
	p.kick()
	return nil
}

// Paused reports whether port is paused.
func (e *Engine) Paused(port int) (bool, error) {
	p, err := e.portAt(port)
	if err != nil {
		return false, err
	}
	return p.paused.Load(), nil
}

// Serve registers sink as port's transmitter and spawns the port's
// egress worker: it picks packets via the configured discipline, paces
// them against the port's shaper, and pushes them into sink until the
// engine closes or sink returns an error. On a sink error, packets the
// worker had already picked for the current burst are released — counted
// as dequeued but not transmitted, like frames lost on a failing link.
// One worker per port; a second Serve on a live port fails. Close waits
// for port workers to exit, so a Sink must not block forever.
func (e *Engine) Serve(port int, sink Sink) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if sink == nil {
		return fmt.Errorf("engine: nil sink for port %d", port)
	}
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.mode.Load() == modeClosed {
		return ErrClosed
	}
	if !p.serving.CompareAndSwap(false, true) {
		return fmt.Errorf("engine: port %d is already being served", port)
	}
	e.portWG.Add(1)
	go e.servePort(p, sink)
	return nil
}

// unshapedBatch is how many packets an unshaped port worker picks per
// scan — the same burst the pull loops use, so push-mode delivery pays
// the same per-shard amortization as DequeueNextBatch.
const unshapedBatch = 64

// servePort is port p's egress worker.
func (e *Engine) servePort(p *port, sink Sink) {
	defer func() {
		p.serving.Store(false)
		e.portWG.Done()
	}()
	var out []Dequeued
	for {
		if e.mode.Load() == modeClosed {
			return
		}
		if p.paused.Load() {
			if !p.park(e.portStop) {
				return
			}
			continue
		}
		shaped := p.sh.enabled()
		if shaped {
			// Pace before every pick: the packet is only removed from
			// its queue once the bucket is non-negative, so a paused or
			// slow port holds its backlog in the buffer (visible to
			// admission), not in flight.
			if d := p.sh.ready(time.Now()); d > 0 {
				p.throttled.Add(1)
				if !p.sleep(e.portStop, d) {
					return
				}
				continue
			}
		}
		budget := unshapedBatch
		if shaped {
			budget = 1
		}
		out = e.dequeuePort(p, out[:0], budget)
		if len(out) == 0 {
			// Nothing servable: declare intent to park, then scan once
			// more. The scan enters every shard's critical section, so a
			// producer whose setActive preceded our scan is seen by it,
			// and one whose setActive follows our scan observes
			// waiting=true (the store below happens-before our lock
			// acquisitions) and wakes us via notify.
			p.waiting.Store(true)
			out = e.dequeuePort(p, out[:0], budget)
			if len(out) == 0 {
				if !p.park(e.portStop) {
					return
				}
				continue
			}
			p.waiting.Store(false)
		}
		for i := range out {
			d := out[i]
			out[i] = Dequeued{}
			if err := sink.Transmit(d); err != nil {
				// The link died mid-burst: the erroring packet belongs to
				// the sink (Transmit owns its buffer either way); the rest
				// of the batch — already dequeued — is released so the
				// buffers are not leaked. Those packets count as dequeued
				// but not transmitted, like frames lost on a failing link.
				for j := i + 1; j < len(out); j++ {
					e.putBuf(out[j].Data)
					out[j] = Dequeued{}
				}
				return
			}
			p.txPackets.Add(1)
			p.txBytes.Add(uint64(d.Bytes))
			if shaped {
				p.sh.charge(d.Bytes)
			}
		}
	}
}

// park blocks until a wake or engine shutdown; false means shut down.
func (p *port) park(stop <-chan struct{}) bool {
	select {
	case <-p.wake:
		p.waiting.Store(false)
		return true
	case <-stop:
		p.waiting.Store(false)
		return false
	}
}

// sleep waits out a shaper delay, interruptible by a kick (rate change,
// pause) or shutdown; false means shut down.
func (p *port) sleep(stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.wake:
		return true
	case <-stop:
		return false
	}
}

// dequeuePort serves up to max packets from p's scheduling units,
// rotating the starting shard per call, appending to out. It is
// DequeueNextBatch with the pick restricted to one port, sharing the
// same per-shard drain (drainShard) so the datapath handling cannot
// diverge.
func (e *Engine) dequeuePort(p *port, out []Dequeued, max int) []Dequeued {
	n := len(e.shards)
	p.shardCursor++
	start := int(p.shardCursor) % n
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShard(e.shards[(start+i)%n], p.idx, out, max)
	}
	return out
}

// PortStat is one port's slice of the transmit-side statistics.
type PortStat struct {
	Port               int
	TransmittedPackets uint64
	TransmittedBytes   uint64
	Throttled          uint64 // shaper waits (worker sleeps awaiting tokens)
	Paused             bool
	Serving            bool
	ActiveFlows        int   // flows with backlog mapped to this port
	RateBytesPerSec    int64 // 0 = unshaped
	BurstBytes         int64
	ShaperTokens       int64 // current bucket credit; negative = in debt
}

// PortStats returns one entry per port. Counters are cumulative since
// New; the active-flow column is snapshotted per shard (consistent per
// shard, not a global cut).
func (e *Engine) PortStats() []PortStat {
	out := make([]PortStat, len(e.ports))
	now := time.Now()
	for i, p := range e.ports {
		rate, burst, tokens := p.sh.occupancy(now)
		out[i] = PortStat{
			Port:               i,
			TransmittedPackets: p.txPackets.Load(),
			TransmittedBytes:   p.txBytes.Load(),
			Throttled:          p.throttled.Load(),
			Paused:             p.paused.Load(),
			Serving:            p.serving.Load(),
			RateBytesPerSec:    rate,
			BurstBytes:         burst,
			ShaperTokens:       tokens,
		}
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			for i := range out {
				out[i].ActiveFlows += s.ps[i].activeFlows
			}
		})
	}
	return out
}
