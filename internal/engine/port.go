package engine

// The port-level transmit subsystem. The paper's queue manager feeds
// output ports: its transmission interface drains per-port FIFOs at line
// rate, with the scheduler deciding which flow each port serves next.
// This file is that interface in software. Every flow belongs to exactly
// one port (Config.NumPorts, SetFlowPort; all flows start on port 0),
// each (shard, port) pair owns a two-level scheduling unit (see
// egress.go), and a port served through Serve is driven by its home
// shard's pacer goroutine (see pacer.go): it picks via the configured
// class and flow disciplines, paces against the port's token-bucket
// shaper (see shaper.go), and pushes reassembled packets into the
// registered Sink — push-mode delivery with backpressure, where the old
// DequeueNextBatch pull loop survives as the unported path.
//
// Pause/Resume model link-level flow control (a paused port holds its
// backlog and transmits nothing); SetPortRate reshapes at runtime. An
// idle port drops out of its pacer's structures entirely: the enqueue
// path's setActive re-queues it with one atomic flag check, so an idle
// port costs nothing per packet elsewhere and nothing while idle.

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"npqm/internal/policy"
)

// MaxPorts bounds Config.NumPorts: per-port scheduling state is allocated
// per shard, so the port space is a configuration constant, not a dynamic
// resource.
const MaxPorts = 4096

// Sink consumes the packets a served port transmits. Transmit may block —
// that is the backpressure path; the pacer will not pick another packet
// for this port until it returns. Returning a non-nil error stops the
// port's service (the port can be Served again). Transmit always runs on
// the port's home pacer goroutine, never concurrently with itself; note
// that a Transmit that blocks indefinitely also stalls the other ports
// homed to the same pacer.
type Sink interface {
	Transmit(d Dequeued) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(d Dequeued) error

// Transmit implements Sink.
func (f SinkFunc) Transmit(d Dequeued) error { return f(d) }

// sinkBox wraps a port's consumer for atomic publication (atomic.Pointer
// needs a concrete pointed-to type; the interfaces themselves are two
// words). Exactly one of the two fields is set — sink by Serve, sinkV by
// ServeViews — and the pacer's service loop branches on which.
type sinkBox struct {
	sink  Sink
	sinkV SinkV
}

// port is one output port: shaper, pacer handoff state, and transmit
// counters. The scheduling state lives in the shards (one portSched per
// (shard, port) pair); the service loop lives in the port's home pacer.
type port struct {
	idx int
	sh  *shaper
	pc  *pacer // home pacer; all service for this port runs there

	shardCursor uint32 // rotating start shard; only the home pacer touches it

	// Control words, padded off the read-only header: idle is CASed by
	// every enqueue-path notify, so it must not share a line with fields
	// the pacer reads per packet. layout_test.go pins the distances.
	_       [hotPad]byte
	paused  atomic.Bool
	serving atomic.Bool             // Serve registered a sink; cleared on error/close
	idle    atomic.Bool             // dropped from the pacer awaiting traffic
	sink    atomic.Pointer[sinkBox] // current sink; replaced by each Serve

	// Transmit counters: written per packet by the home pacer, read by
	// PortStats/Stats. Separated from the producer-CASed control words
	// above and from the next heap neighbour below.
	_         [hotPad]byte
	txPackets atomic.Uint64
	txBytes   atomic.Uint64
	throttled atomic.Uint64 // times the port parked on the shaper wheel

	// Inter-departure jitter, tracked for shaped ports only: the pacer
	// stamps every transmit and the gap to the previous one feeds a sum
	// (for the mean) and a log2 histogram (for the p99), so PortStats
	// can report how tightly the wheel tracks the configured rate.
	// txLastNs == 0 means no previous departure — reset on idle park and
	// on Serve, so idle spells don't count as pacing jitter.
	txLastNs atomic.Int64
	gapCount atomic.Uint64
	gapSumNs atomic.Uint64
	gapHist  [gapBuckets]atomic.Uint64
	_        [hotPad]byte
}

// gapBuckets sizes the log2 inter-departure histogram: bucket b counts
// gaps whose bit length is b (gap ∈ [2^(b-1), 2^b) ns), so the top
// bucket absorbs everything from ~9 minutes up.
const gapBuckets = 40

// noteDeparture records one shaped transmit at now (UnixNano). Called
// only from the port's home pacer; the fields are atomics because
// PortStats reads them cross-goroutine.
func (p *port) noteDeparture(now int64) {
	last := p.txLastNs.Load()
	p.txLastNs.Store(now)
	if last == 0 {
		return
	}
	gap := now - last
	if gap < 0 {
		gap = 0
	}
	p.gapCount.Add(1)
	p.gapSumNs.Add(uint64(gap))
	b := bits.Len64(uint64(gap))
	if b >= gapBuckets {
		b = gapBuckets - 1
	}
	p.gapHist[b].Add(1)
}

// gapStats summarizes the recorded inter-departure gaps: sample count,
// mean, and the p99 read off the log2 histogram (reported as the upper
// bound of the bucket the 99th percentile lands in, so it is exact to a
// factor of two).
func (p *port) gapStats() (samples, meanNs, p99Ns uint64) {
	samples = p.gapCount.Load()
	if samples == 0 {
		return
	}
	meanNs = p.gapSumNs.Load() / samples
	target := (samples*99 + 99) / 100
	var cum uint64
	for b := 0; b < gapBuckets; b++ {
		cum += p.gapHist[b].Load()
		if cum >= target {
			p99Ns = (uint64(1) << b) - 1
			return
		}
	}
	p99Ns = (uint64(1) << (gapBuckets - 1)) - 1
	return
}

// notify re-queues the port on its home pacer if (and only if) it went
// idle. Called from setActive inside shard critical sections, so the
// not-serving and port-busy cases must stay one atomic load.
func (p *port) notify() {
	if p.idle.CompareAndSwap(true, false) {
		p.pc.enqueue(int32(p.idx))
	}
}

// kick queues the port for pacer attention unconditionally (Serve/Pause/
// Resume/SetPortRate/SetFlowPort): a parked or waiting port re-evaluates;
// for a runnable one the pacer de-duplicates — harmless.
func (p *port) kick() {
	p.pc.enqueue(int32(p.idx))
}

// portAt validates a port index.
func (e *Engine) portAt(port int) (*port, error) {
	if port < 0 || port >= len(e.ports) {
		return nil, fmt.Errorf("engine: port %d out of range [0, %d)", port, len(e.ports))
	}
	return e.ports[port], nil
}

// NumPorts returns the configured output-port count.
func (e *Engine) NumPorts() int { return len(e.ports) }

// SetFlowPort moves flow onto port (all flows start on port 0). A
// backlogged flow moves with its queue: its scheduling membership
// transfers to the new port's unit under its current class, any open
// visit on the old port ends, and banked DRR deficit is forfeited
// exactly as if the flow had drained. Safe while traffic flows; per-flow
// FIFO is unaffected (the flow's shard does not change).
func (e *Engine) SetFlowPort(flow uint32, port int) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return ErrUnknownFlow
	}
	s := e.shardOf(flow)
	e.run(s, func() {
		if s.portOf(flow) == port {
			return
		}
		active := s.isActive(flow)
		if active {
			s.clearActive(flow)
		}
		s.flows[flow].port = int32(port)
		if active {
			s.setActive(flow)
		}
	})
	p.kick()
	return nil
}

// FlowPort returns the port flow is currently mapped to.
func (e *Engine) FlowPort(flow uint32) (int, error) {
	if int64(flow) >= int64(e.cfg.NumFlows) {
		return 0, ErrUnknownFlow
	}
	s := e.shardOf(flow)
	var port int
	e.run(s, func() { port = s.portOf(flow) })
	return port, nil
}

// SetPortRate reshapes port at runtime: rate 0 removes shaping, a
// positive rate installs a freshly filled bucket (burst defaulting per
// policy.ShaperConfig). Safe while the port transmits.
func (e *Engine) SetPortRate(port int, cfg policy.ShaperConfig) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	p.sh.configure(cfg, time.Now())
	p.kick()
	return nil
}

// Pause stops port's transmission: it drops out of its pacer's rotation,
// its backlog holds. Packets keep accumulating on the port's flows
// (admission still applies). Idempotent.
func (e *Engine) Pause(port int) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	p.paused.Store(true)
	p.kick()
	return nil
}

// Resume reverses Pause. Idempotent.
func (e *Engine) Resume(port int) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	p.paused.Store(false)
	p.kick()
	return nil
}

// Paused reports whether port is paused.
func (e *Engine) Paused(port int) (bool, error) {
	p, err := e.portAt(port)
	if err != nil {
		return false, err
	}
	return p.paused.Load(), nil
}

// Serve registers sink as port's transmitter and hands the port to its
// home shard's pacer (starting that pacer's goroutine on first use): the
// pacer picks packets via the configured disciplines, paces them against
// the port's shaper on its timing wheel, and pushes them into sink until
// the engine closes or sink returns an error. On a sink error, packets
// already picked for the current burst are released — counted as
// dequeued but not transmitted, like frames lost on a failing link. One
// service per port; a second Serve on a live port fails. Serving any
// number of ports costs one goroutine per shard, not one per port.
func (e *Engine) Serve(port int, sink Sink) error {
	p, err := e.portAt(port)
	if err != nil {
		return err
	}
	if sink == nil {
		return fmt.Errorf("engine: nil sink for port %d", port)
	}
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.mode.Load() == modeClosed {
		return ErrClosed
	}
	if !p.serving.CompareAndSwap(false, true) {
		return fmt.Errorf("engine: port %d is already being served", port)
	}
	p.sink.Store(&sinkBox{sink: sink})
	p.txLastNs.Store(0) // a re-Serve must not count downtime as a gap
	p.pc.start()
	p.kick()
	return nil
}

// unshapedBatch is how many packets an unshaped port's service round
// picks at most — the same burst the pull loops use, so push-mode
// delivery pays the same per-shard amortization as DequeueNextBatch.
const unshapedBatch = 64

// dequeuePort serves up to max packets from p's scheduling units,
// rotating the starting shard per call, appending to out. It is
// DequeueNextBatch with the pick restricted to one port, sharing the
// same per-shard drain (drainShard) so the datapath handling cannot
// diverge.
func (e *Engine) dequeuePort(p *port, out []Dequeued, max int) []Dequeued {
	n := len(e.shards)
	p.shardCursor++
	start := int(p.shardCursor) % n
	for i := 0; i < n && len(out) < max; i++ {
		out = e.drainShard(e.shards[(start+i)%n], p.idx, out, max)
	}
	return out
}

// PortStat is one port's slice of the transmit-side statistics.
type PortStat struct {
	Port               int
	TransmittedPackets uint64
	TransmittedBytes   uint64
	Throttled          uint64 // shaper waits (wheel parks awaiting tokens)
	Paused             bool
	Serving            bool
	ActiveFlows        int   // flows with backlog mapped to this port
	RateBytesPerSec    int64 // 0 = unshaped
	BurstBytes         int64
	ShaperTokens       int64 // current bucket credit; negative = in debt

	// Inter-departure jitter, measured for shaped ports only (idle
	// spells excluded): how tightly the timing wheel tracks the
	// configured rate. P99 is read off a log2 histogram, so it is exact
	// to a factor of two.
	GapSamples uint64
	MeanGapNs  uint64
	P99GapNs   uint64
}

// PortStats returns one entry per port. Counters are cumulative since
// New; the active-flow column is snapshotted per shard (consistent per
// shard, not a global cut).
func (e *Engine) PortStats() []PortStat {
	out := make([]PortStat, len(e.ports))
	now := time.Now()
	for i, p := range e.ports {
		rate, burst, tokens := p.sh.occupancy(now)
		samples, mean, p99 := p.gapStats()
		out[i] = PortStat{
			Port:               i,
			TransmittedPackets: p.txPackets.Load(),
			TransmittedBytes:   p.txBytes.Load(),
			Throttled:          p.throttled.Load(),
			Paused:             p.paused.Load(),
			Serving:            p.serving.Load(),
			RateBytesPerSec:    rate,
			BurstBytes:         burst,
			ShaperTokens:       tokens,
			GapSamples:         samples,
			MeanGapNs:          mean,
			P99GapNs:           p99,
		}
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			for i := range out {
				out[i].ActiveFlows += s.ps[i].activeFlows
			}
		})
	}
	return out
}
